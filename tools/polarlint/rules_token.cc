// The nine v1 token-level rules, ported onto the v2 pass interface. These
// are single-file checks; the cross-TU passes live in pass_*.cc. Rule
// rationale is documented in rules.h and DESIGN.md §7.

#include <algorithm>
#include <cctype>

#include "lexer.h"
#include "rules.h"

namespace polarlint {

void Report(const SourceFile& f, size_t pos, const std::string& rule,
            const std::string& message, std::vector<Finding>* out) {
  const int line = LineOf(f.scrubbed.text, pos);
  if (LineAllows(f.scrubbed, line, rule)) return;
  out->push_back(Finding{f.display, line, rule, message});
}

namespace {

bool HasToken(const std::string& stmt, const std::string& token) {
  return !TokenHits(stmt, token).empty();
}

void CheckRawMutex(const SourceFile& f, std::vector<Finding>* out) {
  if (f.rel == "src/common/lock_rank.h") return;
  static const char* kBanned[] = {
      "std::mutex",          "std::shared_mutex",
      "std::recursive_mutex", "std::timed_mutex",
      "std::condition_variable", "std::condition_variable_any",
  };
  for (const char* token : kBanned) {
    for (size_t pos : TokenHits(f.scrubbed.text, token)) {
      Report(f, pos, "raw-mutex",
             std::string(token) +
                 " is banned: use RankedMutex/RankedSharedMutex/CondVar "
                 "from common/lock_rank.h with a declared LockRank",
             out);
    }
  }
}

void CheckUnrankedMutex(const SourceFile& f, std::vector<Finding>* out) {
  if (f.rel == "src/common/lock_rank.h") return;
  const std::string& text = f.scrubbed.text;
  for (const char* token : {"RankedMutex", "RankedSharedMutex"}) {
    for (size_t pos : TokenHits(text, token)) {
      const size_t after = SkipSpaces(text, pos + std::string(token).size());
      if (after >= text.size()) continue;
      const char c = text[after];
      // Only declarations introduce a new lock: `RankedMutex name{...};`.
      // References, pointers, template arguments and parameter lists
      // (`&`, `*`, `>`, `(`, `)`, `,`, `;`) do not.
      if (!(std::isalpha(static_cast<unsigned char>(c)) || c == '_')) {
        continue;
      }
      const size_t stmt_end = text.find(';', after);
      const std::string stmt =
          text.substr(after, stmt_end == std::string::npos
                                 ? std::string::npos
                                 : stmt_end - after);
      if (stmt.find("LockRank::") == std::string::npos) {
        Report(f, pos, "unranked-mutex",
               std::string(token) +
                   " declaration must name its LockRank:: rank in the "
                   "initializer",
               out);
      }
    }
  }
}

void CheckRawAtomic(const SourceFile& f, std::vector<Finding>* out) {
  if (StartsWith(f.rel, "src/obs/") || StartsWith(f.rel, "src/rdma/") ||
      StartsWith(f.rel, "src/dsm/")) {
    return;
  }
  for (size_t pos : TokenHits(f.scrubbed.text, "std::atomic<uint64_t>")) {
    Report(f, pos, "raw-atomic",
           "hand-rolled std::atomic<uint64_t>: counters belong in "
           "obs::Counter; non-counter cells need "
           "`// polarlint: allow(raw-atomic) <reason>`",
           out);
  }
}

void CheckHostPtrMemcpy(const SourceFile& f, std::vector<Finding>* out) {
  if (StartsWith(f.rel, "src/dsm/") || StartsWith(f.rel, "src/rdma/")) return;
  const std::string& text = f.scrubbed.text;
  for (size_t pos : TokenHits(text, "memcpy")) {
    size_t open = SkipSpaces(text, pos + 6);
    if (open >= text.size() || text[open] != '(') continue;
    // First argument: up to the top-level comma.
    int depth = 1;
    size_t j = open + 1;
    const size_t arg_begin = j;
    while (j < text.size() && depth > 0) {
      const char c = text[j];
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ',' && depth == 1) break;
      ++j;
    }
    const std::string arg = text.substr(arg_begin, j - arg_begin);
    if (arg.find("HostPtr") != std::string::npos) {
      Report(f, pos, "no-hostptr-memcpy",
             "raw memcpy into fabric-registered memory: use "
             "Dsm::HostWrite / Dsm::HostWriteSeqlocked",
             out);
    }
  }
}

void CheckNondeterminism(const SourceFile& f, std::vector<Finding>* out) {
  if (f.rel == "src/common/random.h") return;
  const std::string& text = f.scrubbed.text;
  auto call_of = [&](const char* name) {
    std::vector<size_t> calls;
    for (size_t pos : TokenHits(text, name)) {
      const size_t open = SkipSpaces(text, pos + std::string(name).size());
      if (open < text.size() && text[open] == '(') calls.push_back(pos);
    }
    return calls;
  };
  for (size_t pos : call_of("rand")) {
    Report(f, pos, "nondeterminism",
           "rand(): draw from polarmp::Random (common/random.h) so runs "
           "are seedable",
           out);
  }
  for (size_t pos : call_of("srand")) {
    Report(f, pos, "nondeterminism",
           "srand(): seed a polarmp::Random instance instead", out);
  }
  for (const char* token :
       {"std::random_device", "std::mt19937", "std::mt19937_64"}) {
    for (size_t pos : TokenHits(text, token)) {
      Report(f, pos, "nondeterminism",
             std::string(token) +
                 ": use polarmp::Random (common/random.h) so runs are "
                 "seedable",
             out);
    }
  }
  for (size_t pos : call_of("time")) {
    const size_t open = SkipSpaces(text, pos + 4);
    const size_t close = text.find(')', open);
    if (close == std::string::npos) continue;
    std::string arg = text.substr(open + 1, close - open - 1);
    arg.erase(std::remove_if(arg.begin(), arg.end(),
                             [](unsigned char c) { return std::isspace(c); }),
              arg.end());
    if (arg == "nullptr" || arg == "NULL" || arg == "0") {
      Report(f, pos, "nondeterminism",
             "time(nullptr): wall-clock seeding breaks reproducibility; "
             "use polarmp::Random",
             out);
    }
  }
}

void CheckBlockingForce(const SourceFile& f, std::vector<Finding>* out) {
  // Only the layers on the commit hot path are constrained; src/wal owns
  // the shims' definitions, and tests/benches are outside src/ anyway.
  if (!StartsWith(f.rel, "src/engine/") && !StartsWith(f.rel, "src/txn/") &&
      !StartsWith(f.rel, "src/node/")) {
    return;
  }
  for (const char* token : {"ForceTo", "ForceAll"}) {
    for (size_t pos : TokenHits(f.scrubbed.text, token)) {
      Report(f, pos, "blocking-force",
             std::string(token) +
                 " is a test/edge-only blocking shim: enqueue with "
                 "LogWriter::ForceAsync/ForceAllAsync and continue, or "
                 "Wait() on the handle if the site is inherently "
                 "synchronous",
             out);
    }
  }
}

void CheckFusionBypass(const SourceFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.rel, "src/engine/")) return;
  // The LBP and the undo log own the engine's fusion/DSM plumbing; every
  // other engine file goes through them or through the IndexCache.
  if (StartsWith(f.rel, "src/engine/buffer_pool.") ||
      StartsWith(f.rel, "src/engine/undo.")) {
    return;
  }
  for (const char* token :
       {"Dsm", "ReadSeqlocked", "WriteSeqlocked", "FetchPage",
        "FetchPageVersioned", "PushPage", "RegisterCopy", "UnregisterCopy",
        "NotifyPush", "ChargeRpc"}) {
    for (size_t pos : TokenHits(f.scrubbed.text, token)) {
      Report(f, pos, "fusion-bypass",
             std::string(token) +
                 ": engine traversal code must not touch Dsm or the "
                 "fusion RPC surface directly; go through Mtr/BufferPool "
                 "or the compute-side IndexCache (src/cache/)",
             out);
    }
  }
}

void CheckUncheckedFabricStatus(const SourceFile& f,
                                std::vector<Finding>* out) {
  const std::string& text = f.scrubbed.text;
  // Verbs whose Status/StatusOr carries the only record of a fault.
  // Declarations and definitions are naturally skipped: their name is
  // preceded by a return type, not a statement boundary.
  static const char* kVerbs[] = {
      "FetchAdd64",     "CompareSwap64",  "Load64",
      "Store64",        "ReadSeqlocked",  "WriteSeqlocked",
      "RegisterRegion", "DeregisterRegion", "AcquirePLock",
      "ReleasePLock",   "RegisterWait",   "AwaitHolder",
      "FetchPage",      "FetchPageVersioned", "PushPage",
      "RegisterCopy",   "UnregisterCopy", "NotifyPush",
      "FlushPages",     "FlushAllDirty",  "ReadSlot",
      "SetRefRemote",   "InjectRpcFault"};
  // Read/Write are too generic to ban bare: only receivers that name the
  // fabric or the DSM are in scope.
  static const char* kGated[] = {"Read", "Write"};
  auto check = [&](const char* name, bool gated) {
    for (size_t pos : TokenHits(text, name)) {
      const size_t open = SkipSpaces(text, pos + std::string(name).size());
      if (open >= text.size() || text[open] != '(') continue;  // no call
      const size_t chain = ChainStart(text, pos);
      if (gated) {
        std::string recv = text.substr(chain, pos - chain);
        std::transform(recv.begin(), recv.end(), recv.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        if (recv.find("fabric") == std::string::npos &&
            recv.find("dsm") == std::string::npos) {
          continue;
        }
      }
      size_t k = chain;
      while (k > 0 && std::isspace(static_cast<unsigned char>(text[k - 1]))) {
        --k;
      }
      // The status is discarded when the chain opens a statement (after
      // ';', '{', '}' or at file start) or sits behind a ')' — a (void)
      // cast or a brace-less if/for body, both of which drop it.
      const char prev = k == 0 ? ';' : text[k - 1];
      if (prev != ';' && prev != '{' && prev != '}' && prev != ')') continue;
      Report(f, pos, "unchecked-fabric-status",
             std::string(name) +
                 ": fabric-verb Status discarded; handle it, wrap it in "
                 "POLARMP_RETURN_IF_ERROR, or document the deliberate "
                 "discard with `// polarlint: "
                 "allow(unchecked-fabric-status) <reason>`",
             out);
    }
  };
  for (const char* name : kVerbs) check(name, /*gated=*/false);
  for (const char* name : kGated) check(name, /*gated=*/true);
}

void CheckUnguardedFields(const SourceFile& f, std::vector<Finding>* out) {
  // lock_rank.h wraps the raw std primitives; the annotation macros are
  // defined in thread_annotations.h. Neither can be stated in terms of
  // itself.
  if (f.rel == "src/common/lock_rank.h" ||
      f.rel == "src/common/thread_annotations.h") {
    return;
  }
  const Scrubbed& s = f.scrubbed;
  const bool atomics_exempt = StartsWith(f.rel, "src/obs/") ||
                              StartsWith(f.rel, "src/rdma/") ||
                              StartsWith(f.rel, "src/dsm/");

  const std::vector<ClassSpan> spans = FindClassSpans(s.text);
  std::map<size_t, ClassSpan> span_by_kw;
  for (const ClassSpan& span : spans) span_by_kw[span.kw] = span;

  for (const ClassSpan& span : spans) {
    const std::vector<MemberStmt> stmts =
        MemberStatements(s.text, span, span_by_kw);
    bool owns_mutex = false;
    for (const MemberStmt& stmt : stmts) {
      if (DeclaresOwnedMutex(stmt.text)) owns_mutex = true;
    }
    if (!owns_mutex) continue;

    for (const MemberStmt& stmt : stmts) {
      // Non-field member-level statements.
      bool skip = false;
      for (const char* token :
           {"using", "typedef", "friend", "enum", "static_assert",
            "operator"}) {
        if (HasToken(stmt.text, token)) skip = true;
      }
      if (skip) continue;
      // Annotated: part of the capability analysis. (Checked before the
      // function test — the annotation macros take parentheses.)
      if (stmt.text.find("GUARDED_BY(") != std::string::npos) continue;
      // A '(' outside template arguments marks a method declaration.
      if (StripAngles(stmt.text).find('(') != std::string::npos) continue;
      // Immutable members need no lock.
      if (HasToken(stmt.text, "const") || HasToken(stmt.text, "constexpr") ||
          HasToken(stmt.text, "static")) {
        continue;
      }
      // Synchronization and telemetry objects are internally consistent.
      bool whitelisted = false;
      for (const char* token :
           {"RankedMutex", "RankedSharedMutex", "CondVar", "obs::Counter",
            "obs::Gauge", "obs::LatencyHistogram"}) {
        if (HasToken(stmt.text, token)) whitelisted = true;
      }
      if (whitelisted) continue;
      // Atomics in the dirs that implement remote-atomic targets are the
      // raw-atomic rule's domain, not this one's.
      if (atomics_exempt &&
          stmt.text.find("std::atomic") != std::string::npos) {
        continue;
      }
      // Documented escape on the member's own lines or in the contiguous
      // comment block immediately above.
      const int first = LineOf(s.text, stmt.begin);
      const int last = LineOf(s.text, stmt.end);
      bool escaped = false;
      for (int l = first; l <= last && !escaped; ++l) {
        escaped = LineHasMarker(s, l, "unguarded", "");
      }
      if (escaped) continue;
      Report(f, stmt.begin, "unguarded-field",
             "mutable member of a RankedMutex-owning class: annotate with "
             "GUARDED_BY(<mu>), make it const, or document why not with "
             "`// polarlint: unguarded(<reason>)`",
             out);
    }
  }
}

}  // namespace

void RunTokenRules(const Corpus& corpus, std::vector<Finding>* out) {
  for (const SourceFile& f : corpus.files) {
    if (!StartsWith(f.rel, "src/")) continue;
    CheckRawMutex(f, out);
    CheckUnrankedMutex(f, out);
    CheckRawAtomic(f, out);
    CheckHostPtrMemcpy(f, out);
    CheckNondeterminism(f, out);
    CheckBlockingForce(f, out);
    CheckFusionBypass(f, out);
    CheckUncheckedFabricStatus(f, out);
    CheckUnguardedFields(f, out);
  }
}

}  // namespace polarlint
