// polarlint-fixture-path: src/engine/good_example.cc
//
// A file that does everything the project way: ranked locks, obs counters,
// annotated non-counter atomics, HostWrite for fabric memory, seedable
// randomness. Must produce zero findings — including for the banned
// spellings that appear only inside comments and string literals below.
//
// Mentioning std::mutex, rand() or std::mt19937 in a comment is fine.

#include <atomic>
#include <cstring>

#include "common/lock_rank.h"
#include "common/random.h"
#include "obs/metrics.h"

namespace polarmp {

class GoodExample {
 public:
  void Touch(const char* src, char* local_buf, uint64_t n) {
    MutexLock lock(mu_);
    // Copies between host-local buffers are unconstrained.
    std::memcpy(local_buf, src, n);
    touches_ += 1;
    ops_.Inc();
  }

  uint64_t Draw(Random* rng) { return rng->Next(); }

  const char* Describe() const {
    return "uses std::mutex and time(nullptr) only in this string";
  }

 private:
  mutable RankedMutex mu_{LockRank::kTestLow, "good_example.state"};
  CondVar cv_;
  uint64_t touches_ GUARDED_BY(mu_) = 0;
  obs::Counter ops_{"good_example.ops"};
  // polarlint: allow(raw-atomic) one-sided RDMA target, not a counter
  // polarlint: unguarded(lock-free cell; remote one-sided writes)
  std::atomic<uint64_t> rdma_cell_{0};
};

}  // namespace polarmp
