// polarlint-fixture-path: src/engine/bad_nondeterminism.cc
//
// Unseedable randomness and wall-clock seeding outside common/random.h.

#include <cstdlib>
#include <ctime>
#include <random>

namespace polarmp {

unsigned BadEntropy() {
  const auto seed = time(nullptr);  // polarlint-fixture-expect: nondeterminism
  srand(static_cast<unsigned>(seed));  // polarlint-fixture-expect: nondeterminism
  std::random_device rd;  // polarlint-fixture-expect: nondeterminism
  std::mt19937 gen(rd()); // polarlint-fixture-expect: nondeterminism
  return rand() + gen();  // polarlint-fixture-expect: nondeterminism
}

// Identifiers merely containing the banned names are fine.
struct Operand {
  int strand = 0;
  int randomize_later = 0;
  uint64_t timestamp(int x) { return static_cast<uint64_t>(x); }
};

}  // namespace polarmp
