// polarlint-fixture-path: src/pmfs/bad_request_id.cc
//
// Fixture for the fabric-request-id rule. AcquireRpc is an RPC leg (its
// parameter list names request_id), so every call of it must either run
// inside RetryTransient with the minted `request_id` threaded through, or
// sit inside another request-id-carrying leg. Minting inside the retry
// lambda defeats the dedup cache (every attempt gets a fresh id).

struct LockClient {
  int AcquireRpc(int node, unsigned long request_id);
  int AcquireRpcImpl(int node, unsigned long request_id);
  int Acquire(int node);
  int AcquireBare(int node);
  int AcquireFreshId(int node);
  int AcquireUnthreaded(int node);

  Fabric* fabric_;
  IdCounter next_request_id_;
};

// The leg forwards to its impl outside any retry — fine, its own header
// carries the id, so the retransmit path is the caller's responsibility.
int LockClient::AcquireRpc(int node, unsigned long request_id) {
  return AcquireRpcImpl(node, request_id);
}

int LockClient::AcquireRpcImpl(int node, unsigned long request_id) {
  return node + static_cast<int>(request_id);
}

// The canonical client shape: mint once, capture, retry the leg.
int LockClient::Acquire(int node) {
  const unsigned long request_id = next_request_id_.fetch_add(1);
  return RetryTransient(*fabric_,
                        [&] { return AcquireRpc(node, request_id); });
}

int LockClient::AcquireBare(int node) {
  return AcquireRpc(node, 1);  // polarlint-fixture-expect: fabric-request-id
}

int LockClient::AcquireFreshId(int node) {
  return RetryTransient(*fabric_, [&] {
    const unsigned long request_id = next_request_id_.fetch_add(1);  // polarlint-fixture-expect: fabric-request-id
    return AcquireRpc(node, request_id);
  });
}

int LockClient::AcquireUnthreaded(int node) {
  return RetryTransient(
      *fabric_, [&] { return AcquireRpc(node, 7); });  // polarlint-fixture-expect: fabric-request-id
}
