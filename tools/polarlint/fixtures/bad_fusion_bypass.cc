// polarlint-fixture-path: src/engine/traversal_fixture.cc
//
// Engine traversal code (anything in src/engine other than the LBP and the
// undo log) must not reach Dsm or the Buffer Fusion RPC surface directly:
// the guarded path goes through Mtr/BufferPool, the one-sided fast path
// through the compute-side IndexCache (src/cache/). Every banned token
// reports, whether it names a type or a call.

struct FixtureDescent {
  // Mentioning the banned names in a comment (FetchPage, NotifyPush) is
  // fine: the scrubber removes comments before matching.
  int depth = 0;
};

int EvilSearch(Dsm* dsm,  // polarlint-fixture-expect: fusion-bypass
               FixtureDescent* d) {
  char frame[4096];
  unsigned long seq = 0;
  int s = dsm->ReadSeqlocked(0, frame, &seq);  // polarlint-fixture-expect: fusion-bypass
  if (s != 0) {
    s = fusion->FetchPage(1, 0, frame);  // polarlint-fixture-expect: fusion-bypass
  }
  if (s != 0) {
    s = fusion->NotifyPush(1, 7, seq, false);  // polarlint-fixture-expect: fusion-bypass
  }
  d->depth += 1;
  return s;
}

int EvilRegister(int node) {
  int s = fusion->RegisterCopy(node, 7, 0);  // polarlint-fixture-expect: fusion-bypass
  ChargeRpc(fabric, node, 60000);  // polarlint-fixture-expect: fusion-bypass
  return s;
}

// Identifier boundaries: DsmPtr shares the Dsm prefix but is a different
// token, and the cache/Mtr route is exactly what the rule steers toward.
int GoodSearch(DsmPtr base, FixtureDescent* d) {
  d->depth += 1;
  return static_cast<int>(base.offset);
}

int EscapedEdge(Dsm* dsm) {  // polarlint: allow(fusion-bypass) fixture edge: documented escape hatch
  return dsm != nullptr ? 0 : 1;
}
