// polarlint-fixture-path: src/engine/bad_lock_order.cc
//
// Fixture for the lock-order rank check: nested acquisitions must run
// strictly down the LockRank ladder; equal ranks need SameRank::kAllow on
// BOTH mutexes. Uses the rank extremes to pin the hardcoded rank table in
// the analyzer against src/common/lock_rank.h (kObsHistogram is the ladder
// bottom at 10, kTestHigh the top at 220 — if either drifts, this fixture
// starts reporting on the wrong lines).

struct Ladder {
  void Descend();
  void Invert();
  void UnderBottom();
  void SamePeers();

  RankedMutex low_{LockRank::kTestLow, "fixture.low"};
  RankedMutex high_{LockRank::kTestHigh, "fixture.high"};
  RankedMutex bottom_{LockRank::kObsHistogram, "fixture.bottom"};
  RankedMutex peer_a_{LockRank::kTestMid, "fixture.peer_a"};
  RankedMutex peer_b_{LockRank::kTestMid, "fixture.peer_b"};
};

// Descends peer_b_ -> low_ (210 -> 200) rather than high_ -> low_: the
// clean edge must not close a cycle with Invert's low_ -> high_ edge
// (cycles are the cycle_corpus fixture's job).
void Ladder::Descend() {
  MutexLock a(peer_b_);
  MutexLock b(low_);  // 210 -> 200, strictly decreasing: fine
}

void Ladder::Invert() {
  MutexLock a(low_);
  MutexLock b(high_);  // polarlint-fixture-expect: lock-order
}

void Ladder::UnderBottom() {
  MutexLock a(bottom_);
  MutexLock b(low_);  // polarlint-fixture-expect: lock-order
}

void Ladder::SamePeers() {
  MutexLock a(peer_a_);
  MutexLock b(peer_b_);  // polarlint-fixture-expect: lock-order
}
