// polarlint-fixture-path: src/engine/bad_unguarded_field.cc
//
// Mutable members of a class that owns a RankedMutex must either join the
// capability analysis (GUARDED_BY), be immutable, be an internally
// synchronized whitelisted type, or carry a documented
// `// polarlint: unguarded(<reason>)` escape.

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "common/lock_rank.h"

namespace polarmp {

class LeakyCache {
 public:
  void Put(uint64_t key, std::string value);

 private:
  mutable RankedMutex mu_{LockRank::kTestLow, "leaky_cache.state"};
  std::map<uint64_t, std::string> entries_;  // polarlint-fixture-expect: unguarded-field
  uint64_t hits_ = 0;                        // polarlint-fixture-expect: unguarded-field
  // A multi-line declaration is still one finding, on its first line.
  std::vector<std::pair<uint64_t, uint64_t>>  // polarlint-fixture-expect: unguarded-field
      eviction_queue_;
  // An atomic outside src/obs, src/rdma and src/dsm needs the escape even
  // when the raw-atomic rule itself is silenced.
  // polarlint: allow(raw-atomic) sequence number, not a counter
  std::atomic<uint64_t> seq_{0};  // polarlint-fixture-expect: unguarded-field
};

// A class with no lock of its own is outside this rule's scope entirely —
// its members are synchronized (or not) by whoever owns it.
struct PlainAggregate {
  std::map<uint64_t, std::string> entries;
  uint64_t generation = 0;
};

}  // namespace polarmp
