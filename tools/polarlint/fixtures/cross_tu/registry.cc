// polarlint-fixture-path: src/engine/registry.cc
//
// Cross-TU capability corpus, definition half. Insert/InsertLocked/
// SizeLocked prove the clean patterns resolve across TUs (the REQUIRES
// annotations are only in registry.h). Drain is the seeded guard-removal
// mutation: it touches size_ with no guard, no REQUIRES, no assert.

void Registry::Insert(long k) {
  MutexLock lock(mu_);
  size_ += k;  // guard held locally: fine
}

// No annotation on this definition — the REQUIRES(mu_) lives on the
// declaration in registry.h and must merge across the TU boundary.
void Registry::InsertLocked(long k) { size_ += k; }

long Registry::SizeLocked() const { return size_; }

void Registry::Drain() {
  size_ = 0;  // polarlint-fixture-expect: capability
}
