// polarlint-fixture-path: src/engine/registry.h
//
// Cross-TU capability corpus, header half: the guarded field and the
// REQUIRES contracts live here; the definitions (and the violation) live
// in registry.cc. This is the seeded guard-removal scenario from the
// acceptance criteria — the symbol table must carry GUARDED_BY(mu_) from
// this header into the other TU for the violation to be visible at all.

class Registry {
 public:
  void Insert(long k);
  void InsertLocked(long k) REQUIRES(mu_);
  long SizeLocked() const REQUIRES(mu_);
  void Drain();

 private:
  mutable RankedMutex mu_{LockRank::kTestMid, "fixture.registry"};
  long size_ GUARDED_BY(mu_) = 0;
};
