// polarlint-fixture-path: src/engine/supp_host.cc
//
// tsan.supp audit corpus, code half: three functions the suppression file
// next door names. TornWrite visibly implements the seqlock protocol
// (explicit memory_order around the payload memcpy), so a race:
// suppression on it is sanctioned. MarkedOnly carries the seqlock-payload
// marker instead of visible discipline — also sanctioned. PlainTouch has
// neither, so a suppression naming it hides a real race.

struct FixtureHost {
  void TornWrite(char* base, unsigned long word);
  void MarkedOnly(unsigned long frame);
  void PlainTouch(unsigned long frame);

  unsigned long touched_ = 0;
};

void FixtureHost::TornWrite(char* base, unsigned long word) {
  // polarlint: allow(raw-atomic) seqlock word view, not a counter
  auto* seq = reinterpret_cast<std::atomic<uint64_t>*>(base);
  seq->fetch_add(1, std::memory_order_acq_rel);
  std::memcpy(base + 8, &word, sizeof(word));
  seq->fetch_add(1, std::memory_order_acq_rel);
}

// polarlint: seqlock-payload(fixture: payload bytes published under the odd
// seq window; readers retry on a seq mismatch)
void FixtureHost::MarkedOnly(unsigned long frame) { touched_ = frame; }

void FixtureHost::PlainTouch(unsigned long frame) { touched_ = frame; }
