// polarlint-fixture-path: src/dsm/exempt_example.cc
//
// src/dsm (like src/rdma) implements the host-side write path and the
// remote atomics, so raw-atomic and no-hostptr-memcpy do not apply there.
// Zero findings expected.

#include <atomic>
#include <cstring>

#include "dsm/dsm.h"

namespace polarmp {

void DsmInternals(Dsm* dsm, DsmPtr ptr, const char* src, uint64_t n) {
  std::memcpy(dsm->HostPtr(ptr), src, n);
  auto* cell = reinterpret_cast<std::atomic<uint64_t>*>(dsm->HostPtr(ptr));
  cell->fetch_add(1, std::memory_order_acq_rel);
}

// In the exempt dirs an atomic member of a mutex-owning class is also
// outside unguarded-field's scope: these atomics ARE the remote-atomic
// targets, their discipline is the fabric protocol, not a host lock.
class RemoteCell {
 private:
  RankedMutex mu_{LockRank::kTestLow, "remote_cell.alloc"};
  uint64_t next_offset_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> cell_{0};
};

}  // namespace polarmp
