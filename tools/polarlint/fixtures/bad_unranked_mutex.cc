// polarlint-fixture-path: src/engine/bad_unranked_mutex.h
//
// RankedMutex declarations must name their LockRank:: rank; references,
// pointers and template arguments are not declarations and must not be
// flagged.

#include "common/lock_rank.h"

namespace polarmp {

class BadUnrankedMutex {
 public:
  // Not declarations: no findings expected on these.
  void Use(RankedMutex& by_ref, RankedSharedMutex* by_ptr);
  void Wait(std::unique_lock<RankedMutex>& lock);

 private:
  RankedMutex unranked_;  // polarlint-fixture-expect: unranked-mutex
  RankedSharedMutex also_unranked_;  // polarlint-fixture-expect: unranked-mutex
  RankedMutex ranked_{LockRank::kTestLow, "fixture.ranked"};
  RankedSharedMutex ranked_rw_{LockRank::kTestMid, "fixture.ranked_rw"};
};

}  // namespace polarmp
