// polarlint-fixture-path: src/engine/bad_hostptr_memcpy.cc
//
// memcpy whose destination resolves through HostPtr bypasses the DSM's
// bounds check and seqlock protocol; reads FROM fabric memory into a local
// buffer are fine.

#include <cstring>

#include "dsm/dsm.h"

namespace polarmp {

// polarlint: allow(fusion-bypass) fixture exercises no-hostptr-memcpy only
void BadHostPtrCopy(Dsm* dsm, DsmPtr ptr, const char* src, char* local,
                    uint64_t n) {
  std::memcpy(dsm->HostPtr(ptr), src, n);  // polarlint-fixture-expect: no-hostptr-memcpy
  memcpy(dsm->HostPtr(ptr) + 8, src, n);  // polarlint-fixture-expect: no-hostptr-memcpy
  // Reading out of the fabric region into a local buffer is allowed.
  std::memcpy(local, dsm->HostPtr(ptr), n);
  // The blessed write path.
  dsm->HostWrite(ptr, src, n);
}

}  // namespace polarmp
