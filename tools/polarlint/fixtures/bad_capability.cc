// polarlint-fixture-path: src/engine/bad_capability.cc
//
// Fixture for the capability pass (gcc-host GUARDED_BY subset): an access
// to a GUARDED_BY(mu_) field reports unless the method holds mu_ via a
// scoped guard, declares REQUIRES(mu_), or asserts a caller-locked path
// with AssertHeld(). Manual lock()/unlock() spans count as held.

struct Counter {
  void Bump();
  void BumpLocked() REQUIRES(mu_);
  void BumpAsserted();
  void BumpManual();
  void BumpBad();
  long PeekBad() const;

  mutable RankedMutex mu_{LockRank::kTestLow, "fixture.counter"};
  long n_ GUARDED_BY(mu_) = 0;
};

void Counter::Bump() {
  MutexLock lock(mu_);
  n_ += 1;  // guard in scope: fine
}

// REQUIRES on the in-class declaration transfers to this definition.
void Counter::BumpLocked() { n_ += 1; }

void Counter::BumpAsserted() {
  mu_.AssertHeld();
  n_ += 1;  // caller-locked path, asserted: fine
}

void Counter::BumpManual() {
  mu_.lock();
  n_ += 1;  // inside a manual lock()/unlock() span: fine
  mu_.unlock();
}

void Counter::BumpBad() {
  n_ += 1;  // polarlint-fixture-expect: capability
}

long Counter::PeekBad() const {
  return n_;  // polarlint-fixture-expect: capability
}
