// polarlint-fixture-path: src/pmfs/good_guarded.cc
//
// Every way a member of a RankedMutex-owning class can satisfy
// unguarded-field. Zero findings expected.

#include <atomic>
#include <map>
#include <string>
#include <thread>

#include "common/lock_rank.h"
#include "obs/metrics.h"

namespace polarmp {

class WellGuarded {
 public:
  void Apply();
  // Method declarations (and their REQUIRES annotations) are not fields.
  void ApplyLocked() REQUIRES(mu_);

 private:
  // The lock itself, the condvar and telemetry handles are internally
  // consistent by construction.
  mutable RankedMutex mu_{LockRank::kTestLow, "well_guarded.state"};
  CondVar cv_;
  obs::Counter applies_{"well_guarded.applies"};
  mutable obs::LatencyHistogram apply_ns_{"well_guarded.apply_ns"};

  // The annotation is the preferred answer.
  std::map<uint64_t, std::string> state_ GUARDED_BY(mu_);
  uint64_t epoch_ GUARDED_BY(mu_) = 0;

  // Immutable members need no lock.
  const uint64_t capacity_ = 128;
  static constexpr uint64_t kShift = 12;

  // Documented escape, same line.
  std::thread worker_;  // polarlint: unguarded(joined in the destructor)

  // Documented escape in the contiguous comment block above, which may
  // stack with other polarlint escapes in either order.
  // polarlint: allow(raw-atomic) lock-free watermark, not a counter
  // polarlint: unguarded(lock-free watermark; monotonic CAS)
  std::atomic<uint64_t> watermark_{0};

  // The blanket allow() spelling silences the rule too.
  // polarlint: allow(unguarded-field) owned by the flusher thread only
  uint64_t scratch_ = 0;

  // A nested struct is its own scope: it owns no mutex, so its members are
  // whoever-embeds-it's problem, even though the outer class is locked.
  struct Stats {
    uint64_t merges = 0;
    uint64_t splits = 0;
  };
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace polarmp
