// polarlint-fixture-path: src/pmfs/bad_seqlock_payload.cc
//
// Fixture for the seqlock-payload rule: open-coding the seqlock stable-read
// protocol against a DSM host pointer (HostPtr + explicit memory_order)
// outside src/dsm reports at the function signature unless the torn-write
// discipline is documented with a `// polarlint: seqlock-payload(...)`
// marker above the definition.

struct FrameReader {
  unsigned long ReadBad(unsigned long frame, unsigned long* word);
  unsigned long ReadDocumented(unsigned long frame, unsigned long* word);
  unsigned long Delegated(unsigned long frame, char* dst);

  Dsm* dsm_;
};

unsigned long FrameReader::ReadBad(unsigned long frame, unsigned long* word) {  // polarlint-fixture-expect: seqlock-payload
  const char* base = dsm_->HostPtr(frame);
  // polarlint: allow(raw-atomic) seqlock word view, not a counter
  const auto* seq = reinterpret_cast<const std::atomic<uint64_t>*>(base);
  for (;;) {
    const unsigned long s1 = seq->load(std::memory_order_acquire);
    if (s1 % 2 == 1) continue;
    *word = *reinterpret_cast<const unsigned long*>(base + 8);
    if (seq->load(std::memory_order_acquire) == s1) return s1;
  }
}

// polarlint: seqlock-payload(fixture: torn reads fail the seq recheck and
// loop; the payload word is never trusted before the second load)
unsigned long FrameReader::ReadDocumented(unsigned long frame,
                                          unsigned long* word) {
  const char* base = dsm_->HostPtr(frame);
  // polarlint: allow(raw-atomic) seqlock word view, not a counter
  const auto* seq = reinterpret_cast<const std::atomic<uint64_t>*>(base);
  const unsigned long s1 = seq->load(std::memory_order_acquire);
  *word = *reinterpret_cast<const unsigned long*>(base + 8);
  return s1 + seq->load(std::memory_order_acquire);
}

// Going through the Dsm seqlock API is always fine: no HostPtr in sight.
unsigned long FrameReader::Delegated(unsigned long frame, char* dst) {
  unsigned long version = 0;
  const int s = dsm_->ReadSeqlocked(1, frame, dst, 8, &version);
  return s == 0 ? version : 0;
}
