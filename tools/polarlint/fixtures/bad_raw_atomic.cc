// polarlint-fixture-path: src/engine/bad_raw_atomic.h
//
// Literal std::atomic<uint64_t> outside src/obs (and the fabric/DSM)
// without an allow() annotation: counters belong in obs::Counter.

#include <atomic>

namespace polarmp {

class BadRawAtomic {
 private:
  std::atomic<uint64_t> hits_{0};  // polarlint-fixture-expect: raw-atomic
  // A typed alias escapes the literal-token rule on purpose (the rule
  // targets counter-shaped declarations, not every 64-bit atomic).
  std::atomic<unsigned long long> not_literal_{0};
  // polarlint: allow(raw-atomic) seqlock word, not a counter
  std::atomic<uint64_t> annotated_ok_{0};
};

}  // namespace polarmp
