// polarlint-fixture-path: src/engine/bad_raw_mutex.h
//
// Raw standard-library lock types outside common/lock_rank.h: every one of
// these must be a RankedMutex/RankedSharedMutex/CondVar with a declared
// LockRank.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace polarmp {

class BadRawMutex {
 private:
  mutable std::mutex mu_;              // polarlint-fixture-expect: raw-mutex
  std::shared_mutex rw_;               // polarlint-fixture-expect: raw-mutex
  std::condition_variable cv_;         // polarlint-fixture-expect: raw-mutex
  std::condition_variable_any any_cv_; // polarlint-fixture-expect: raw-mutex
  std::recursive_mutex rec_;           // polarlint-fixture-expect: raw-mutex
};

}  // namespace polarmp
