// polarlint-fixture-path: src/engine/crab.h
//
// Lock-order cycle corpus, header half. Both latches sit at the same rank
// with SameRank::kAllow (the page-latch crabbing pattern), so EVERY edge
// between them passes the rank check individually. The two definitions in
// crab.cc acquire them in opposite orders from functions that never run
// concurrently in any test — only the static acquired-while-held graph can
// see the inversion (the runtime checker would need the interleaving).

class Crab {
 public:
  void LeftThenRight();
  void RightThenLeft();

 private:
  RankedMutex left_{LockRank::kPageLatch, "fixture.left", SameRank::kAllow};
  RankedMutex right_{LockRank::kPageLatch, "fixture.right", SameRank::kAllow};
};
