// polarlint-fixture-path: src/engine/crab.cc
//
// Lock-order cycle corpus, definition half: the two-node inversion. The
// cycle is reported once per strongly-connected component, anchored at the
// first edge of the component in graph order (left_ -> right_ sorts before
// right_ -> left_), which is the acquisition below in LeftThenRight.

void Crab::LeftThenRight() {
  MutexLock a(left_);
  MutexLock b(right_);  // polarlint-fixture-expect: lock-order
}

void Crab::RightThenLeft() {
  MutexLock a(right_);
  MutexLock b(left_);  // the inversion: edge right_ -> left_
}
