// polarlint-fixture-path: src/txn/blocking_force_fixture.cc
//
// The blocking force shims are banned on the commit hot path (src/engine,
// src/txn, src/node): committers enqueue on the group-commit pipeline via
// ForceAsync/ForceAllAsync instead of serializing one force per caller.

struct FixtureLogWriter {
  // polarlint: allow(blocking-force) fixture declaration, not a call site
  int ForceTo(unsigned long lsn);
  // polarlint: allow(blocking-force) fixture declaration, not a call site
  int ForceAll();
  int ForceAsync(unsigned long lsn);
  int ForceAllAsync();
};

int CommitPath(FixtureLogWriter* log, unsigned long end) {
  int s = log->ForceTo(end);  // polarlint-fixture-expect: blocking-force
  if (s != 0) return s;
  return log->ForceAll();  // polarlint-fixture-expect: blocking-force
}

int CheckpointPath(FixtureLogWriter* log, unsigned long end) {
  // Identifier boundaries: the async names must NOT trip the rule even
  // though they share the ForceAll/ForceTo prefix.
  int s = log->ForceAsync(end);
  if (s != 0) return s;
  return log->ForceAllAsync();
}

int RecoveryEdge(FixtureLogWriter* log) {
  // polarlint: allow(blocking-force) recovery runs single-threaded before
  // the flusher serves committers; nothing can group with it anyway.
  return log->ForceAll();
}
