// polarlint-fixture-path: src/engine/buffer_pool.cc
//
// buffer_pool.* (like undo.*) owns the engine's fusion/DSM plumbing, so
// fusion-bypass does not apply there: the LBP is the guarded path the rule
// points everything else at. Zero findings expected.

int FixtureLoadFrame(int node, unsigned long r_addr, char* out) {
  int s = fusion->FetchPage(node, r_addr, out);
  if (s == 0) {
    s = fusion->RegisterCopy(node, 7, 0);
  }
  return s;
}

int FixtureEvictFrame(int node, unsigned long r_addr, const char* in) {
  int s = fusion->PushPage(node, r_addr, in);
  if (s == 0) {
    s = fusion->NotifyPush(node, 7, 11, false);
  }
  if (s == 0) {
    s = fusion->UnregisterCopy(node, 7);
  }
  return s;
}
