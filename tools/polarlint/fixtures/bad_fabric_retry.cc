// polarlint-fixture-path: src/pmfs/bad_fabric_retry.cc
//
// Fixture for the fabric-retry rule: idempotent fabric verbs (Read, Write,
// Load64, Store64, FetchAdd64, CompareSwap64) on a fabric receiver must
// run inside RetryTransient/RetryTransientOr so injected transients are
// absorbed with backoff instead of surfacing. Non-fabric receivers and
// code under src/rdma/ (the retry machinery itself) are out of scope.

int Good(Fabric* fabric_, FixtureFile* file) {
  unsigned long w = 0;
  // The canonical shape: the whole verb wrapped in the retry combinator.
  int s = RetryTransient(*fabric_,
                         [&] { return fabric_->Read(1, 2, 3, 0, &w, 8); });
  if (s != 0) return s;
  s = RetryTransientOr(*fabric_, 7, [&] {
    return fabric_->CompareSwap64(1, 2, 3, 0, 1, &w);
  });
  if (s != 0) return s;
  return file->Read(0, &w, 8);  // not a fabric receiver: out of scope
}

int Bad(Fabric* fabric_, Node* node) {
  unsigned long w = 0;
  int s = fabric_->Load64(1, 2, &w);  // polarlint-fixture-expect: fabric-retry
  if (s != 0) return s;
  s = node->fabric()->Store64(1, 2, 7);  // polarlint-fixture-expect: fabric-retry
  if (s != 0) return s;
  return fabric_->FetchAdd64(1, 2, 3, 1, &w);  // polarlint-fixture-expect: fabric-retry
}
