// polarlint-fixture-path: src/txn/bad_unchecked_fabric_status.cc
//
// Fixture for the unchecked-fabric-status rule: a fabric-verb call whose
// Status/StatusOr is silently discarded reports, whether as a bare
// expression statement or behind a (void) cast. Calls whose result is
// assigned, returned, tested or macro-wrapped do not, and neither do
// Read/Write on receivers that are not the fabric or the DSM.

struct FixtureFile {
  // A declaration is not a call site: preceded by its return type.
  int Read(unsigned long off, void* dst, unsigned long len);
};

int Checked(Fabric* fabric, Dsm* dsm, LockFusion* lock_fusion,
            FixtureFile* file) {
  unsigned long word = 0;
  // Consumed into a variable, returned, tested, macro-wrapped: all fine.
  int s = dsm->Load64(1, 0);
  if (s != 0) return s;
  // The consumed-but-unretried verb also violates fabric-retry (v2 pass).
  POLARMP_RETURN_IF_ERROR(fabric->Write(1, 2, 3, 0, &word, 8));  // polarlint-fixture-expect: fabric-retry
  if (lock_fusion->ReleasePLock(1, 2) != 0) {
    return 1;
  }
  // polarlint: allow(unchecked-fabric-status) fixture: best-effort release
  lock_fusion->ReleasePLock(1, 3);
  (void)file->Read(0, &word, 8);  // not a fabric/dsm receiver: out of scope
  return dsm->Read(1, 0, &word, 8);
}

void Bad(Fabric* fabric_, Dsm* dsm_, LockFusion* lock_fusion_, Node* node) {
  unsigned long word = 0;
  dsm_->Store64(1, 0, 7);  // polarlint-fixture-expect: unchecked-fabric-status
  fabric_->Read(1, 2, 3, 0, &word, 8);  // polarlint-fixture-expect: unchecked-fabric-status polarlint-fixture-expect: fabric-retry
  (void)fabric_->DeregisterRegion(1, 2);  // polarlint-fixture-expect: unchecked-fabric-status
  node->lock_fusion()->AcquirePLock(1, 2, 0, 10);  // polarlint-fixture-expect: unchecked-fabric-status
}
