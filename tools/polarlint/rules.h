#ifndef POLARLINT_RULES_H_
#define POLARLINT_RULES_H_

// The analysis passes. Each pass is a free function over a Corpus (all
// files linted together plus the cross-TU symbol table) that appends
// findings. The driver owns ordering, timing and output.
//
// Rule ids (as used in `// polarlint: allow(<rule>) <reason>` escapes and
// `polarlint-fixture-expect:` tags):
//
//   token pass (v1 rules, one file at a time):
//     raw-mutex, unranked-mutex, raw-atomic, no-hostptr-memcpy,
//     nondeterminism, blocking-force, fusion-bypass,
//     unchecked-fabric-status, unguarded-field
//
//   capability pass (cross-TU):
//     capability — an access to a GUARDED_BY(m) field from a method of the
//     declaring class that neither REQUIRES(m) nor acquires m (scoped
//     guard, .lock(), AssertHeld) earlier in its body.
//
//   lock-order pass (cross-TU):
//     lock-order — a static acquired-while-held edge that violates the
//     declared LockRank order (rank must strictly decrease), a same-rank
//     edge without SameRank::kAllow on both ends, or membership in a cycle
//     of the global acquisition graph.
//
//   fabric pass:
//     fabric-retry — an idempotent fabric verb called on a fabric endpoint
//     outside a RetryTransient/RetryTransientOr wrapper.
//     fabric-request-id — a non-idempotent fusion RPC inside RetryTransient
//     without a stable request id, or an id minted INSIDE the retry lambda
//     (a fresh id per attempt defeats the dedup cache).
//     seqlock-payload — an open-coded seqlock payload access (HostPtr +
//     explicit memory_order discipline) outside src/dsm without a
//     `// polarlint: seqlock-payload(<reason>)` marker.
//
//   tsan.supp audit (runs only with --tsan-supp):
//     tsan-supp — a suppression entry that does not resolve to a function
//     in the corpus recognized as a by-design seqlock payload site.

#include <string>
#include <vector>

#include "symtab.h"

namespace polarlint {

struct Finding {
  std::string file;  // path as reported (relative to root when possible)
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

// One acquired-while-held edge of the static lock-order graph, emitted to
// the JSON sidecar regardless of whether it violates anything.
struct LockEdge {
  std::string held;      // "Class::mutex"
  std::string held_rank;
  std::string acquired;  // "Class::mutex"
  std::string acquired_rank;
  std::string site;      // "file:line" of the inner acquisition
};

struct Corpus {
  std::vector<SourceFile> files;
  SymbolTable symtab;

  // Scrubs, builds the symbol table. Call once after files are loaded.
  void Build() { symtab.Build(&files); }
};

// Appends the finding unless the line carries an allow(<rule>) escape.
void Report(const SourceFile& f, size_t pos, const std::string& rule,
            const std::string& message, std::vector<Finding>* out);

// The nine v1 token-level rules, one file at a time.
void RunTokenRules(const Corpus& corpus, std::vector<Finding>* out);

// Cross-TU capability subset checker.
void RunCapabilityPass(const Corpus& corpus, std::vector<Finding>* out);

// Cross-TU static lock-order graph. `edges` receives the full edge list
// (for the JSON sidecar) whether or not violations are found.
void RunLockOrderPass(const Corpus& corpus, std::vector<Finding>* out,
                      std::vector<LockEdge>* edges);

// Fabric-protocol rules: fabric-retry, fabric-request-id, seqlock-payload.
void RunFabricPass(const Corpus& corpus, std::vector<Finding>* out);

// tsan.supp audit. `supp_display` is the path findings print; `supp_content`
// the file's bytes.
void RunTsanSuppAudit(const Corpus& corpus, const std::string& supp_display,
                      const std::string& supp_content,
                      std::vector<Finding>* out);

}  // namespace polarlint

#endif  // POLARLINT_RULES_H_
