#include "symtab.h"

#include <algorithm>

namespace polarlint {

std::vector<ClassSpan> FindClassSpans(const std::string& text) {
  std::vector<ClassSpan> spans;
  for (const std::string kw : {"class", "struct"}) {
    for (size_t pos : TokenHits(text, kw)) {
      // `enum class` / `enum struct` define enumerators, not members.
      size_t b = pos;
      while (b > 0 && std::isspace(static_cast<unsigned char>(text[b - 1]))) {
        --b;
      }
      size_t e = b;
      while (b > 0 && IsIdentChar(text[b - 1])) --b;
      if (text.substr(b, e - b) == "enum") continue;
      // Walk to the body's '{'. Anything that closes an enclosing construct
      // first means this is not a definition: a template parameter
      // (`template <class T>`), a function parameter (`void f(class X*)`),
      // a forward declaration.
      int paren = 0;
      int angle = 0;
      size_t open = std::string::npos;
      for (size_t j = pos + kw.size(); j < text.size(); ++j) {
        const char c = text[j];
        if (c == '(' || c == '[') {
          ++paren;
        } else if (c == ')' || c == ']') {
          if (paren == 0) break;
          --paren;
        } else if (c == '<') {
          ++angle;
        } else if (c == '>') {
          if (angle == 0) break;
          --angle;
        } else if ((c == '=' || c == ';') && paren == 0 && angle == 0) {
          break;
        } else if (c == '{' && paren == 0) {
          open = j;
          break;
        }
      }
      if (open == std::string::npos) continue;
      spans.push_back(ClassSpan{pos, open, MatchBrace(text, open)});
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const ClassSpan& a, const ClassSpan& b) { return a.kw < b.kw; });
  return spans;
}

// The class's name: the last plain identifier between the keyword and the
// body '{' (or the base-clause ':'), skipping attribute-macro calls like
// CAPABILITY("mutex") and `final`/`alignas(...)`.
std::string ClassNameOf(const std::string& text, const ClassSpan& span) {
  std::string head =
      text.substr(span.kw, span.open - span.kw);
  // Strip the first word (class/struct).
  size_t p = 0;
  while (p < head.size() && IsIdentChar(head[p])) ++p;
  std::string name;
  int paren = 0;
  for (size_t i = p; i < head.size(); ++i) {
    const char c = head[i];
    if (c == '(') ++paren;
    if (c == ')') {
      if (paren > 0) --paren;
      // A ')' at depth 0 means the previous identifier was a macro call —
      // its "name" was the macro; drop it.
      if (paren == 0) name.clear();
      continue;
    }
    if (paren > 0) continue;
    if (c == ':' && (i + 1 >= head.size() || head[i + 1] != ':')) break;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < head.size() && IsIdentChar(head[j])) ++j;
      const std::string word = head.substr(i, j - i);
      if (word != "final" && word != "alignas") name = word;
      i = j - 1;
    }
  }
  return name;
}

std::vector<MemberStmt> MemberStatements(
    const std::string& text, const ClassSpan& span,
    const std::map<size_t, ClassSpan>& span_by_kw) {
  std::vector<MemberStmt> stmts;
  size_t pos = span.open + 1;
  size_t begin = std::string::npos;
  std::string stmt;
  int paren = 0;
  auto reset = [&] {
    begin = std::string::npos;
    stmt.clear();
    paren = 0;
  };
  while (pos < span.close) {
    // Nested class/struct definition: its members belong to its own scan.
    // Skip the definition plus any declarators up to the trailing ';'.
    const auto nested = span_by_kw.find(pos);
    if (nested != span_by_kw.end() && nested->second.close < span.close) {
      pos = nested->second.close + 1;
      while (pos < span.close && text[pos] != ';') {
        if (text[pos] == '{') pos = MatchBrace(text, pos);
        ++pos;
      }
      ++pos;
      reset();
      continue;
    }
    const char c = text[pos];
    if (c == '(' || c == '[') {
      ++paren;
    } else if ((c == ')' || c == ']') && paren > 0) {
      --paren;
    } else if (c == '{' && paren == 0) {
      // Function body vs a field's brace initializer: a '(' outside
      // template argument lists means a parameter list.
      const bool is_function =
          StripAngles(stmt).find('(') != std::string::npos;
      pos = MatchBrace(text, pos) + 1;
      if (is_function) reset();
      continue;
    } else if (c == ';' && paren == 0) {
      if (begin != std::string::npos) {
        stmts.push_back(MemberStmt{begin, pos, stmt});
      }
      reset();
      ++pos;
      continue;
    } else if (c == ':' && paren == 0) {
      const std::string t = Trim(stmt);
      if (t == "public" || t == "private" || t == "protected") {
        reset();
        ++pos;
        continue;
      }
    }
    if (begin == std::string::npos &&
        !std::isspace(static_cast<unsigned char>(c))) {
      begin = pos;
    }
    stmt += c;
    ++pos;
  }
  return stmts;
}

bool DeclaresOwnedMutex(const std::string& stmt) {
  for (const std::string token : {"RankedMutex", "RankedSharedMutex"}) {
    for (size_t pos : TokenHits(stmt, token)) {
      const size_t after = SkipSpaces(stmt, pos + token.size());
      if (after < stmt.size() &&
          (std::isalpha(static_cast<unsigned char>(stmt[after])) ||
           stmt[after] == '_')) {
        return true;
      }
    }
  }
  return false;
}

namespace {

bool IsAnnotationMacro(const std::string& word) {
  static const char* kMacros[] = {
      "REQUIRES",          "REQUIRES_SHARED",  "EXCLUDES",
      "ACQUIRE",           "ACQUIRE_SHARED",   "RELEASE",
      "RELEASE_SHARED",    "RELEASE_GENERIC",  "TRY_ACQUIRE",
      "TRY_ACQUIRE_SHARED", "ASSERT_CAPABILITY", "ASSERT_SHARED_CAPABILITY",
      "RETURN_CAPABILITY", "GUARDED_BY",       "PT_GUARDED_BY",
      "ACQUIRED_BEFORE",   "ACQUIRED_AFTER",   "CAPABILITY",
      "noexcept"};
  for (const char* m : kMacros) {
    if (word == m) return true;
  }
  return false;
}

bool IsQualifierWord(const std::string& word) {
  return word == "const" || word == "noexcept" || word == "override" ||
         word == "final" || word == "mutable" ||
         word == "NO_THREAD_SAFETY_ANALYSIS";
}

// Walking BACK from `pos` (an annotation token or a body '{'), returns the
// name of the function whose declarator precedes it: skips qualifier words
// and annotation-macro groups, matches the parameter list's parens, and
// returns the identifier before them ("" if the shape is not a function).
std::string FunctionNameBefore(const std::string& text, size_t pos) {
  size_t k = pos;
  for (int guard = 0; guard < 16; ++guard) {
    while (k > 0 && std::isspace(static_cast<unsigned char>(text[k - 1]))) --k;
    if (k == 0) return "";
    if (text[k - 1] == ')') {
      // Either an annotation group or the parameter list.
      int depth = 0;
      size_t m = k;
      while (m > 0) {
        --m;
        if (text[m] == ')') ++depth;
        if (text[m] == '(' && --depth == 0) break;
      }
      if (depth != 0) return "";
      size_t e = m;
      while (e > 0 && std::isspace(static_cast<unsigned char>(text[e - 1]))) {
        --e;
      }
      size_t b = e;
      while (b > 0 && IsIdentChar(text[b - 1])) --b;
      const std::string word = text.substr(b, e - b);
      if (word.empty()) return "";
      if (IsAnnotationMacro(word)) {
        k = b;  // an annotation group; keep walking
        continue;
      }
      if (b > 0 && text[b - 1] == '~') return "~" + word;
      return word;
    }
    // Qualifier words between the parens and the annotation.
    size_t e = k;
    size_t b = e;
    while (b > 0 && IsIdentChar(text[b - 1])) --b;
    const std::string word = text.substr(b, e - b);
    if (word.empty() || !IsQualifierWord(word)) return "";
    k = b;
  }
  return "";
}

// Mutex names listed inside REQUIRES(...) / REQUIRES_SHARED(...) starting
// at `pos` (the macro token). Each comma-separated argument contributes its
// trailing identifier.
void CollectRequires(const std::string& text, size_t pos,
                     std::set<std::string>* out) {
  const size_t open = text.find('(', pos);
  if (open == std::string::npos) return;
  const size_t close = MatchParen(text, open);
  std::string arg;
  int depth = 0;
  for (size_t i = open + 1; i < close; ++i) {
    const char c = text[i];
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      const std::string name = TrailingIdent(arg);
      if (!name.empty()) out->insert(name);
      arg.clear();
      continue;
    }
    arg += c;
  }
  const std::string name = TrailingIdent(arg);
  if (!name.empty()) out->insert(name);
}

// Parses one constructor member-init list: for every `member(args)` /
// `member{args}` whose args name LockRank::, binds rank (and SameRank) to
// the class's mutex member.
void BindRanksFromInitList(const std::string& init, ClassInfo* cls) {
  size_t i = 0;
  while (i < init.size()) {
    if (!(std::isalpha(static_cast<unsigned char>(init[i])) ||
          init[i] == '_')) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < init.size() && IsIdentChar(init[j])) ++j;
    const std::string member = init.substr(i, j - i);
    size_t open = SkipSpaces(init, j);
    if (open >= init.size() || (init[open] != '(' && init[open] != '{')) {
      i = j;
      continue;
    }
    size_t close;
    if (init[open] == '(') {
      close = MatchParen(init, open);
    } else {
      close = MatchBrace(init, open);
    }
    const std::string args =
        init.substr(open + 1, close > open ? close - open - 1 : 0);
    const size_t rank_pos = args.find("LockRank::");
    if (rank_pos != std::string::npos) {
      for (MutexMember& mu : cls->mutexes) {
        if (mu.name != member) continue;
        size_t b = rank_pos + 10;
        size_t e = b;
        while (e < args.size() && IsIdentChar(args[e])) ++e;
        mu.rank = args.substr(b, e - b);
        if (args.find("SameRank::kAllow") != std::string::npos) {
          mu.same_allow = true;
        }
      }
    }
    i = close == std::string::npos ? init.size() : close + 1;
  }
}

}  // namespace

const MutexMember* ClassInfo::FindMutex(const std::string& mu_name) const {
  for (const MutexMember& mu : mutexes) {
    if (mu.name == mu_name) return &mu;
  }
  return nullptr;
}

int RankValue(const std::string& rank_name) {
  // Mirror of src/common/lock_rank.h. When linting the real tree the
  // corpus copy (parsed from the enum) overrides this; the fallback keeps
  // fixture corpora — which do not carry lock_rank.h — rank-aware.
  static const std::map<std::string, int> kRanks = {
      {"kObsHistogram", 10}, {"kObsRegistry", 20},  {"kFabric", 30},
      {"kRpc", 35},          {"kDsm", 40},          {"kStorage", 50},
      {"kUndoSegment", 60},  {"kUndoTable", 65},    {"kPmfsService", 70},
      {"kPmfsFlusher", 75},  {"kTit", 80},          {"kCacheSlot", 82},
      {"kIndexCache", 85},   {"kPlock", 90},        {"kBufferPool", 100},
      {"kFutureState", 105}, {"kLogWriter", 110},   {"kLogFlusher", 115},
      {"kLlsnOrder", 120},   {"kCommitGate", 130},  {"kPageLatch", 140},
      {"kCommitFinalize", 145}, {"kTrxManager", 150}, {"kCatalog", 160},
      {"kNodeTrees", 165},   {"kNodeBackground", 170}, {"kStandby", 175},
      {"kStandbyStop", 178}, {"kSimLockTable", 183}, {"kSimLogDevice", 184},
      {"kSimStore", 185},    {"kBaselineNode", 190}, {"kTestLow", 200},
      {"kTestMid", 210},     {"kTestHigh", 220},
  };
  const auto it = kRanks.find(rank_name);
  return it == kRanks.end() ? -1 : it->second;
}

void SymbolTable::Build(std::vector<SourceFile>* files) {
  for (size_t i = 0; i < files->size(); ++i) {
    SourceFile& f = (*files)[i];
    if (f.scrubbed.text.empty()) f.scrubbed = Scrub(f.content);
  }
  for (size_t i = 0; i < files->size(); ++i) {
    ParseFile(static_cast<int>(i), &(*files)[i]);
  }
  // Merge declaration annotations into definitions AFTER every file is
  // parsed: the .cc that defines a method is routinely read before the
  // header that declares its REQUIRES set (cross-TU resolution).
  for (FunctionDef& fn : functions_) {
    const auto cit = classes_.find(fn.class_name);
    if (cit == classes_.end()) continue;
    const auto mit = cit->second.methods.find(fn.name);
    if (mit == cit->second.methods.end()) continue;
    fn.requires_mutexes.insert(mit->second.requires_mutexes.begin(),
                               mit->second.requires_mutexes.end());
    fn.no_analysis = fn.no_analysis || mit->second.no_analysis;
  }
  // Resolve ranks declared in out-of-class constructor init lists
  // (`RpcDedupCache::RpcDedupCache(...) : mu_(LockRank::kRpc, ...)`).
  for (const FunctionDef& fn : functions_) {
    if (!fn.is_ctor() || fn.init_list.empty()) continue;
    auto it = classes_.find(fn.class_name);
    if (it != classes_.end()) BindRanksFromInitList(fn.init_list, &it->second);
  }
  for (auto& [name, cls] : classes_) {
    for (const MutexMember& mu : cls.mutexes) {
      mutex_owners_[mu.name].insert(name);
    }
  }
  for (size_t i = 0; i < functions_.size(); ++i) {
    functions_by_name_[functions_[i].name].push_back(static_cast<int>(i));
  }
}

void SymbolTable::ParseFile(int file_index, SourceFile* file) {
  const std::string& text = file->scrubbed.text;
  const std::vector<ClassSpan> spans = FindClassSpans(text);

  // Innermost class span containing a position (members of nested classes
  // belong to the nested class).
  auto innermost = [&](size_t pos) -> const ClassSpan* {
    const ClassSpan* best = nullptr;
    for (const ClassSpan& s : spans) {
      if (s.open < pos && pos < s.close &&
          (!best || s.open > best->open)) {
        best = &s;
      }
    }
    return best;
  };

  std::vector<std::string> span_names(spans.size());
  for (size_t si = 0; si < spans.size(); ++si) {
    span_names[si] = ClassNameOf(text, spans[si]);
  }
  auto class_of = [&](size_t pos) -> std::string {
    const ClassSpan* s = innermost(pos);
    if (!s) return "";
    for (size_t si = 0; si < spans.size(); ++si) {
      if (&spans[si] == s) return span_names[si];
    }
    return "";
  };

  // ---- per-class members (fields, mutexes, annotated declarations) ----
  for (size_t si = 0; si < spans.size(); ++si) {
    const ClassSpan& span = spans[si];
    const std::string& cname = span_names[si];
    if (cname.empty()) continue;
    ClassInfo& cls = classes_[cname];
    cls.name = cname;

    auto in_this_class = [&](size_t pos) {
      return innermost(pos) == &span;
    };

    // GUARDED_BY / PT_GUARDED_BY fields.
    for (const char* macro : {"GUARDED_BY", "PT_GUARDED_BY"}) {
      for (size_t pos : TokenHits(text, macro)) {
        if (pos <= span.open || pos >= span.close || !in_this_class(pos)) {
          continue;
        }
        const size_t open = SkipSpaces(text, pos + std::string(macro).size());
        if (open >= text.size() || text[open] != '(') continue;
        const size_t close = MatchParen(text, open);
        const std::string mu_expr = text.substr(open + 1, close - open - 1);
        // Field name: the identifier immediately before the macro.
        size_t e = pos;
        while (e > 0 && std::isspace(static_cast<unsigned char>(text[e - 1]))) {
          --e;
        }
        size_t b = e;
        while (b > 0 && IsIdentChar(text[b - 1])) --b;
        const std::string field = text.substr(b, e - b);
        if (field.empty()) continue;
        GuardedField gf;
        gf.name = field;
        gf.mutex = TrailingIdent(mu_expr);
        gf.pointee = std::string(macro) == "PT_GUARDED_BY";
        gf.line = LineOf(text, b);
        gf.file = file_index;
        // Overloaded across TUs: the same header parsed once per corpus, so
        // duplicates only come from same-named classes — merge by name.
        bool dup = false;
        for (const GuardedField& g : cls.guarded_fields) {
          if (g.name == gf.name) dup = true;
        }
        if (!dup) cls.guarded_fields.push_back(std::move(gf));
      }
    }

    // Owned RankedMutex / RankedSharedMutex members with inline rank.
    for (const char* token : {"RankedMutex", "RankedSharedMutex"}) {
      for (size_t pos : TokenHits(text, token)) {
        if (pos <= span.open || pos >= span.close || !in_this_class(pos)) {
          continue;
        }
        const size_t after = SkipSpaces(text, pos + std::string(token).size());
        if (after >= text.size() ||
            !(std::isalpha(static_cast<unsigned char>(text[after])) ||
              text[after] == '_')) {
          continue;  // reference, pointer, template argument...
        }
        size_t e = after;
        while (e < text.size() && IsIdentChar(text[e])) ++e;
        const std::string mu_name = text.substr(after, e - after);
        const size_t stmt_end = text.find(';', e);
        const std::string init = text.substr(
            e, stmt_end == std::string::npos ? std::string::npos
                                             : stmt_end - e);
        MutexMember mu;
        mu.name = mu_name;
        mu.shared = std::string(token) == "RankedSharedMutex";
        mu.line = LineOf(text, pos);
        mu.file = file_index;
        const size_t rank_pos = init.find("LockRank::");
        if (rank_pos != std::string::npos) {
          size_t rb = rank_pos + 10;
          size_t re = rb;
          while (re < init.size() && IsIdentChar(init[re])) ++re;
          mu.rank = init.substr(rb, re - rb);
        }
        if (init.find("SameRank::kAllow") != std::string::npos) {
          mu.same_allow = true;
        }
        bool dup = false;
        for (MutexMember& m : cls.mutexes) {
          if (m.name == mu.name) {
            dup = true;
            // Prefer the resolved copy.
            if (m.rank.empty() && !mu.rank.empty()) m = mu;
          }
        }
        if (!dup) cls.mutexes.push_back(std::move(mu));
      }
    }

    // Method declarations carrying REQUIRES / REQUIRES_SHARED /
    // NO_THREAD_SAFETY_ANALYSIS. Lambda annotations inside inline bodies
    // also match here; their FunctionNameBefore shape differs (no
    // declarator), so they resolve to "" and are skipped.
    for (const char* macro :
         {"REQUIRES", "REQUIRES_SHARED", "NO_THREAD_SAFETY_ANALYSIS"}) {
      for (size_t pos : TokenHits(text, macro)) {
        if (pos <= span.open || pos >= span.close || !in_this_class(pos)) {
          continue;
        }
        const std::string fn = FunctionNameBefore(text, pos);
        if (fn.empty() || fn == "operator") continue;
        MethodDecl& decl = cls.methods[fn];
        if (std::string(macro) == "NO_THREAD_SAFETY_ANALYSIS") {
          decl.no_analysis = true;
        } else {
          CollectRequires(text, pos, &decl.requires_mutexes);
        }
      }
    }
  }

  // ---- function definitions (bodies) ----
  // In-class inline bodies and namespace-level definitions are found with
  // one walk: every '{' is classified by the statement text before it.
  std::vector<std::pair<size_t, size_t>> body_spans;
  size_t boundary = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    const char c = text[pos];
    if (c == '#') {
      // Preprocessor directive: its own statement boundary (else `#include`
      // lines merge into the next header and `namespace X {` misclassifies).
      size_t eol = text.find('\n', pos);
      while (eol != std::string::npos && eol > 0 && text[eol - 1] == '\\') {
        eol = text.find('\n', eol + 1);  // continuation lines
      }
      pos = eol == std::string::npos ? text.size() : eol + 1;
      boundary = pos;
      continue;
    }
    if (c == ';' || c == '}') {
      boundary = pos + 1;
      ++pos;
      continue;
    }
    if (c == ':' && pos + 1 < text.size() && text[pos + 1] == ':') {
      pos += 2;
      continue;
    }
    if (c == ':') {
      // Access specifier or a ctor init list. Only reset the boundary for
      // access specifiers (`public:` etc.) — a bare label-looking word.
      const std::string t = Trim(text.substr(boundary, pos - boundary));
      if (t == "public" || t == "private" || t == "protected") {
        boundary = pos + 1;
      }
      ++pos;
      continue;
    }
    if (c == '(') {
      pos = MatchParen(text, pos) + 1;
      continue;
    }
    if (c != '{') {
      ++pos;
      continue;
    }

    // A '{'. Classify by its header.
    const std::string header = text.substr(boundary, pos - boundary);
    const std::string trimmed = Trim(header);
    const std::string first_word = [&] {
      size_t b = 0;
      while (b < trimmed.size() && !IsIdentChar(trimmed[b])) ++b;
      size_t e = b;
      while (e < trimmed.size() && IsIdentChar(trimmed[e])) ++e;
      return trimmed.substr(b, e - b);
    }();
    if (first_word == "namespace" || first_word == "extern") {
      boundary = pos + 1;
      ++pos;
      continue;  // transparent scope: keep scanning inside
    }
    if (first_word == "enum" || first_word == "class" ||
        first_word == "struct" || first_word == "union") {
      // Class bodies are scanned by this same loop (members may be inline
      // functions); enums and unions are opaque.
      const ClassSpan* s = innermost(pos + 1);
      const bool is_class_body =
          (first_word == "class" || first_word == "struct") && s &&
          s->open == pos;
      if (is_class_body) {
        boundary = pos + 1;
        ++pos;
        continue;
      }
      pos = MatchBrace(text, pos) + 1;
      boundary = pos;
      continue;
    }

    // Function definition? The header must contain a parameter list.
    const size_t close = MatchBrace(text, pos);
    std::string name;
    std::string init_list;
    std::set<std::string> requires_set;
    bool no_analysis = false;
    if (StripAngles(header).find('(') != std::string::npos &&
        trimmed.find('=') != 0) {
      // Name: the identifier before the parameter list. Walk back from the
      // '{' across qualifiers, annotation groups and a ctor init list.
      size_t probe = pos;
      // Ctor init list: a top-level ':' after the parameter list. Find the
      // parameter list as the FIRST top-level paren group in the header.
      int depth = 0;
      size_t params_close = std::string::npos;
      bool seen_params = false;
      for (size_t i = boundary; i < pos; ++i) {
        if (text[i] == '(') {
          ++depth;
          seen_params = true;
        } else if (text[i] == ')') {
          if (--depth == 0 && params_close == std::string::npos) {
            params_close = i;
          }
        } else if (text[i] == ':' && depth == 0 && seen_params &&
                   params_close != std::string::npos &&
                   (i + 1 >= text.size() || text[i + 1] != ':') &&
                   (i == 0 || text[i - 1] != ':')) {
          init_list = text.substr(i + 1, pos - i - 1);
          probe = i;
          break;
        }
      }
      name = FunctionNameBefore(text, probe);
      for (const char* macro : {"REQUIRES", "REQUIRES_SHARED"}) {
        for (size_t rp : TokenHits(header, macro)) {
          CollectRequires(header, rp, &requires_set);
        }
      }
      if (!TokenHits(header, "NO_THREAD_SAFETY_ANALYSIS").empty()) {
        no_analysis = true;
      }
    }

    static const std::set<std::string> kControl = {
        "if", "for", "while", "switch", "catch", "do", "else", "return"};
    if (!name.empty() && !kControl.count(name)) {
      FunctionDef def;
      def.name = name;
      def.file = file_index;
      def.header_begin = boundary;
      def.body_open = pos;
      def.body_close = close;
      def.requires_mutexes = std::move(requires_set);
      def.no_analysis = no_analysis;
      def.init_list = std::move(init_list);
      // Owning class: explicit qualifier wins; otherwise the enclosing
      // class span (in-class inline definition).
      size_t name_pos = header.rfind(name == "operator" ? "operator" : name);
      std::string cls;
      if (name_pos != std::string::npos) {
        size_t k = boundary + name_pos;
        if (!def.name.empty() && def.name[0] == '~' && k > 0 &&
            text[k - 1] == '~') {
          --k;
        }
        while (k > 0 && std::isspace(static_cast<unsigned char>(text[k - 1]))) {
          --k;
        }
        if (k >= 2 && text[k - 2] == ':' && text[k - 1] == ':') {
          k -= 2;
          // Skip a template argument list on the class qualifier.
          if (k > 0 && text[k - 1] == '>') {
            int adepth = 0;
            while (k > 0) {
              --k;
              if (text[k] == '>') ++adepth;
              if (text[k] == '<' && --adepth == 0) break;
            }
          }
          size_t e = k;
          while (e > 0 && std::isspace(static_cast<unsigned char>(text[e - 1]))) {
            --e;
          }
          size_t b = e;
          while (b > 0 && IsIdentChar(text[b - 1])) --b;
          cls = text.substr(b, e - b);
        }
      }
      if (cls.empty()) cls = class_of(pos);
      def.class_name = cls;
      functions_.push_back(std::move(def));
      pos = close + 1;
      boundary = pos;
      continue;
    }

    // Not a function body we analyze (aggregate initializer, lambda default
    // member init, ...): step INTO class bodies, step OVER everything else.
    const ClassSpan* s = innermost(pos + 1);
    if (s && s->open == pos) {
      boundary = pos + 1;
      ++pos;
    } else {
      pos = MatchBrace(text, pos) + 1;
      boundary = pos;
    }
  }
}

const ClassInfo* SymbolTable::FindClass(const std::string& name) const {
  const auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : &it->second;
}

std::vector<const FunctionDef*> SymbolTable::FindFunctions(
    const std::string& name) const {
  std::vector<const FunctionDef*> out;
  const auto it = functions_by_name_.find(name);
  if (it == functions_by_name_.end()) return out;
  for (int i : it->second) out.push_back(&functions_[i]);
  return out;
}

const FunctionDef* SymbolTable::FindMethod(const std::string& cls,
                                           const std::string& name) const {
  const FunctionDef* found = nullptr;
  const auto it = functions_by_name_.find(name);
  if (it == functions_by_name_.end()) return nullptr;
  for (int i : it->second) {
    if (functions_[i].class_name != cls) continue;
    if (found) return nullptr;  // ambiguous overload set
    found = &functions_[i];
  }
  return found;
}

const MutexMember* SymbolTable::ResolveMutex(const std::string& cls,
                                             const std::string& trailing,
                                             std::string* owner_out) const {
  if (trailing.empty()) return nullptr;
  const ClassInfo* ci = FindClass(cls);
  if (ci) {
    const MutexMember* mu = ci->FindMutex(trailing);
    if (mu) {
      if (owner_out) *owner_out = cls;
      return mu;
    }
  }
  const auto it = mutex_owners_.find(trailing);
  if (it == mutex_owners_.end() || it->second.size() != 1) return nullptr;
  const std::string& owner = *it->second.begin();
  const ClassInfo* oc = FindClass(owner);
  if (!oc) return nullptr;
  if (owner_out) *owner_out = owner;
  return oc->FindMutex(trailing);
}

}  // namespace polarlint
