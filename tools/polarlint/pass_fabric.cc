// Fabric-protocol rules: the static half of PR 8's retry/dedup discipline.
//
//   fabric-retry       an idempotent one-sided fabric verb (Read, Write,
//                      Load64, Store64, FetchAdd64, CompareSwap64) called on
//                      a fabric receiver outside a RetryTransient /
//                      RetryTransientOr wrapper. A bare verb turns every
//                      injected transient into a caller-visible error; the
//                      wrapper absorbs them (and only them) with backoff.
//                      src/rdma is exempt — it implements both sides.
//
//   fabric-request-id  the non-idempotent RPC discipline, three ways to
//                      break it: (a) a call to a request-id-carrying RPC leg
//                      (any method whose parameter list names `request_id`)
//                      from a body that neither wraps it in RetryTransient
//                      nor carries a request_id parameter itself — the
//                      retransmit path is missing; (b) such a call inside
//                      RetryTransient that does not pass the `request_id`
//                      token — the dedup cache never sees a stable id;
//                      (c) `next_request_id_` minted INSIDE the retry
//                      lambda — a fresh id per attempt defeats dedup
//                      entirely (the id must be minted once, before
//                      RetryTransient, and captured).
//
//   seqlock-payload    a function outside src/dsm and src/rdma that
//                      open-codes the seqlock stable-read/write protocol
//                      (HostPtr access plus explicit memory_order
//                      discipline). Each such site must carry
//                      `// polarlint: seqlock-payload(<reason>)` above its
//                      definition: the marker is what the tsan.supp audit
//                      accepts as a by-design payload race, so an
//                      unannotated open-coding either races undetected or
//                      silently widens a suppression.
//
//   tsan-supp          (only with --tsan-supp) a suppression entry that does
//                      not resolve to a corpus function recognized as a
//                      seqlock payload site: not a race: entry, naming no
//                      function in the corpus (stale), or naming one whose
//                      body shows no seqlock discipline and no marker.

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <utility>

#include "lexer.h"
#include "rules.h"

namespace polarlint {

namespace {

// Argument spans of RetryTransient / RetryTransientOr calls in `text`
// (offsets of the '(' and its matching ')').
std::vector<std::pair<size_t, size_t>> RetrySpans(const std::string& text) {
  std::vector<std::pair<size_t, size_t>> spans;
  for (const char* name : {"RetryTransient", "RetryTransientOr"}) {
    for (size_t pos : TokenHits(text, name)) {
      const size_t open = SkipSpaces(text, pos + std::string(name).size());
      if (open >= text.size() || text[open] != '(') continue;
      spans.emplace_back(open, MatchParen(text, open));
    }
  }
  return spans;
}

bool InSpan(const std::vector<std::pair<size_t, size_t>>& spans, size_t pos) {
  for (const auto& [open, close] : spans) {
    if (open < pos && pos < close) return true;
  }
  return false;
}

void CheckFabricRetry(const SourceFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.rel, "src/") || StartsWith(f.rel, "src/rdma/")) return;
  const std::string& text = f.scrubbed.text;
  const auto spans = RetrySpans(text);
  static const char* kVerbs[] = {"Read",       "Write",         "Load64",
                                 "Store64",    "FetchAdd64",    "CompareSwap64"};
  for (const char* verb : kVerbs) {
    for (size_t pos : TokenHits(text, verb)) {
      const size_t open = SkipSpaces(text, pos + std::string(verb).size());
      if (open >= text.size() || text[open] != '(') continue;  // not a call
      const size_t chain = ChainStart(text, pos);
      if (chain == pos) continue;  // bare name: a definition or local helper
      std::string recv = text.substr(chain, pos - chain);
      std::transform(recv.begin(), recv.end(), recv.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (recv.find("fabric") == std::string::npos) continue;
      if (InSpan(spans, pos)) continue;
      Report(f, pos, "fabric-retry",
             std::string(verb) +
                 ": idempotent fabric verb outside RetryTransient — an "
                 "injected transient surfaces to the caller instead of "
                 "being absorbed with backoff; wrap the call (or the "
                 "enclosing op) in RetryTransient/RetryTransientOr",
             out);
    }
  }
}

void CheckRequestId(const Corpus& corpus, std::vector<Finding>* out) {
  // RPC legs: functions whose parameter list names `request_id`.
  std::set<std::string> rpc_methods;
  for (const FunctionDef& fn : corpus.symtab.functions()) {
    const std::string& text = corpus.files[fn.file].scrubbed.text;
    const std::string header =
        text.substr(fn.header_begin, fn.body_open - fn.header_begin);
    if (!TokenHits(header, "request_id").empty()) rpc_methods.insert(fn.name);
  }
  if (rpc_methods.empty()) return;

  for (const FunctionDef& fn : corpus.symtab.functions()) {
    const SourceFile& file = corpus.files[fn.file];
    if (!StartsWith(file.rel, "src/")) continue;
    const std::string& text = file.scrubbed.text;
    const std::string header =
        text.substr(fn.header_begin, fn.body_open - fn.header_begin);
    const bool fn_has_id = !TokenHits(header, "request_id").empty();
    const std::string body =
        text.substr(fn.body_open, fn.body_close - fn.body_open + 1);
    const auto spans = RetrySpans(body);

    // (c) fresh id minted per retry attempt.
    for (size_t hit : TokenHits(body, "next_request_id_")) {
      if (!InSpan(spans, hit)) continue;
      Report(file, fn.body_open + hit, "fabric-request-id",
             "request id minted inside the RetryTransient lambda: every "
             "attempt gets a fresh id, so the dedup cache can never "
             "recognize a retransmit — mint once before RetryTransient and "
             "capture the id",
             out);
    }

    for (const std::string& m : rpc_methods) {
      if (m == fn.name) continue;  // the leg's own recursion/overloads
      for (size_t hit : TokenHits(body, m)) {
        const size_t open = SkipSpaces(body, hit + m.size());
        if (open >= body.size() || body[open] != '(') continue;
        const size_t close = MatchParen(body, open);
        const std::string args = body.substr(open + 1, close - open - 1);
        if (InSpan(spans, hit)) {
          // (b) inside the retry lambda: a stable id must be threaded in.
          if (TokenHits(args, "request_id").empty()) {
            Report(file, fn.body_open + hit, "fabric-request-id",
                   m + ": non-idempotent RPC retried without a stable "
                       "request id — pass the `request_id` minted before "
                       "RetryTransient so the service-side dedup cache can "
                       "recognize a retransmit",
                   out);
          }
        } else if (!fn_has_id) {
          // (a) invoked with no retransmit protection at all.
          Report(file, fn.body_open + hit, "fabric-request-id",
                 m + ": non-idempotent RPC invoked outside RetryTransient "
                     "and outside a request-id-carrying leg — a lost reply "
                     "has no retransmit path; mint an id and wrap the call "
                     "in RetryTransient",
                 out);
        }
      }
    }
  }
}

// The header span starts at the statement boundary after the previous
// definition, so a marker comment sits BETWEEN header_begin and the
// signature line. Accept the marker anywhere in that span.
bool HeaderHasMarker(const SourceFile& file, const FunctionDef& fn,
                     const std::string& key) {
  // Start at the signature, not header_begin: the raw span begins on the
  // PREVIOUS definition's closing line, and scanning that line would let a
  // marker above the previous function leak onto this one. (Markers above
  // the signature are still found — LineHasMarker walks the contiguous
  // comment block above the line it is given.)
  const int first = LineOf(file.scrubbed.text,
                           SkipSpaces(file.scrubbed.text, fn.header_begin));
  const int last = LineOf(file.scrubbed.text, fn.body_open);
  for (int line = first; line <= last; ++line) {
    if (LineHasMarker(file.scrubbed, line, key, "")) return true;
  }
  return false;
}

// Does this function open-code the seqlock payload protocol?
bool OpenCodesSeqlock(const Corpus& corpus, const FunctionDef& fn) {
  const std::string& text = corpus.files[fn.file].scrubbed.text;
  const std::string body =
      text.substr(fn.body_open, fn.body_close - fn.body_open + 1);
  return !TokenHits(body, "HostPtr").empty() &&
         body.find("memory_order") != std::string::npos;
}

void CheckSeqlockPayload(const Corpus& corpus, std::vector<Finding>* out) {
  for (const FunctionDef& fn : corpus.symtab.functions()) {
    const SourceFile& file = corpus.files[fn.file];
    if (!StartsWith(file.rel, "src/") || StartsWith(file.rel, "src/dsm/") ||
        StartsWith(file.rel, "src/rdma/")) {
      continue;
    }
    if (!OpenCodesSeqlock(corpus, fn)) continue;
    if (HeaderHasMarker(file, fn, "seqlock-payload")) continue;
    // Anchor at the signature, not the raw header span (which starts right
    // after the previous definition and reports a misleading line).
    Report(file, SkipSpaces(file.scrubbed.text, fn.header_begin),
           "seqlock-payload",
           (fn.class_name.empty() ? fn.name
                                  : fn.class_name + "::" + fn.name) +
               " open-codes the seqlock payload protocol (HostPtr + "
               "explicit memory_order) outside src/dsm: document the "
               "torn-write discipline with `// polarlint: "
               "seqlock-payload(<reason>)` above the definition, or go "
               "through Dsm::ReadSeqlocked/WriteSeqlocked",
           out);
  }
}

// A function the tsan.supp audit accepts as a by-design payload race: it
// carries the seqlock-payload marker, or its body visibly implements the
// protocol (explicit memory_order plus a payload memcpy / HostPtr access).
bool IsSeqlockPayloadSite(const Corpus& corpus, const FunctionDef& fn) {
  const SourceFile& file = corpus.files[fn.file];
  const std::string& text = file.scrubbed.text;
  if (HeaderHasMarker(file, fn, "seqlock-payload")) return true;
  const std::string body =
      text.substr(fn.body_open, fn.body_close - fn.body_open + 1);
  if (body.find("memory_order") == std::string::npos) return false;
  return !TokenHits(body, "memcpy").empty() ||
         !TokenHits(body, "HostPtr").empty();
}

}  // namespace

void RunFabricPass(const Corpus& corpus, std::vector<Finding>* out) {
  for (const SourceFile& f : corpus.files) CheckFabricRetry(f, out);
  CheckRequestId(corpus, out);
  CheckSeqlockPayload(corpus, out);
}

void RunTsanSuppAudit(const Corpus& corpus, const std::string& supp_display,
                      const std::string& supp_content,
                      std::vector<Finding>* out) {
  std::istringstream lines(supp_content);
  std::string raw;
  int line_no = 0;
  while (std::getline(lines, raw)) {
    ++line_no;
    const std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      out->push_back(Finding{supp_display, line_no, "tsan-supp",
                             "malformed suppression (expected type:pattern)"});
      continue;
    }
    const std::string type = line.substr(0, colon);
    // TSan patterns never contain whitespace; truncating there lets entries
    // carry trailing comments (the fixture corpus tags expectations so).
    std::string pattern = line.substr(colon + 1);
    const size_t ws = pattern.find_first_of(" \t");
    if (ws != std::string::npos) pattern = pattern.substr(0, ws);
    if (type != "race") {
      out->push_back(Finding{
          supp_display, line_no, "tsan-supp",
          type + ": only race: suppressions on seqlock payload sites are "
                 "sanctioned; anything else hides a real bug class — fix "
                 "the code or extend the audit with a reviewed rule"});
      continue;
    }
    // polarmp::Class::Func — the last two :: segments identify the site.
    // TSan matches suppressions as substrings of the frame, so the entry's
    // Func accepts any corpus function it prefixes (ReadSeqlocked covers
    // ReadSeqlockedOnce).
    std::vector<std::string> segs;
    size_t start = 0;
    for (size_t p = 0; (p = pattern.find("::", start)) != std::string::npos;
         start = p + 2) {
      segs.push_back(pattern.substr(start, p - start));
    }
    segs.push_back(pattern.substr(start));
    if (segs.size() < 2) {
      out->push_back(Finding{supp_display, line_no, "tsan-supp",
                             pattern + ": pattern must name Class::Function "
                                       "so the audit can resolve it"});
      continue;
    }
    const std::string cls = segs[segs.size() - 2];
    const std::string func = segs.back();
    bool found = false;
    bool recognized = false;
    for (const FunctionDef& fn : corpus.symtab.functions()) {
      if (fn.class_name != cls || !StartsWith(fn.name, func)) continue;
      found = true;
      if (IsSeqlockPayloadSite(corpus, fn)) recognized = true;
    }
    if (!found) {
      out->push_back(Finding{
          supp_display, line_no, "tsan-supp",
          pattern + ": stale suppression — no function " + cls + "::" + func +
              "* in the linted tree; delete the entry"});
    } else if (!recognized) {
      out->push_back(Finding{
          supp_display, line_no, "tsan-supp",
          pattern + ": suppressed function is not a recognized seqlock "
                    "payload site (no memory_order discipline over a "
                    "HostPtr/memcpy payload and no `// polarlint: "
                    "seqlock-payload(...)` marker) — the suppression hides "
                    "a real race"});
    }
  }
}

}  // namespace polarlint
