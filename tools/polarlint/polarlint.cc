// polarlint: project-specific semantic analysis for the polardb-mp tree.
//
// The toolchain has no libclang, so this is a purpose-built analyzer: a
// comment/literal scrubber and C++ tokenizer (lexer.*), a cross-TU symbol
// table of per-class member/annotation/mutex tables and every function
// definition (symtab.*), and four analysis passes over that table:
//
//   token        the nine v1 single-file rules (rules_token.cc): raw-mutex,
//                unranked-mutex, raw-atomic, no-hostptr-memcpy,
//                nondeterminism, blocking-force, fusion-bypass,
//                unchecked-fabric-status, unguarded-field.
//   capability   the gcc-host subset of clang's thread-safety analysis
//                (pass_capability.cc): every GUARDED_BY(m) field access
//                must hold m via REQUIRES, a scoped guard, .lock(), or
//                AssertHeld on the enclosing path — cross-TU, so a header
//                annotation covers the .cc body.
//   lock-order   the static acquired-while-held graph (pass_lock_order.cc):
//                declared-rank violations and SCC deadlock cycles the
//                runtime checker only catches if a test interleaves them.
//                The full edge list goes to the JSON sidecar.
//   fabric       PR 8's retry/dedup protocol rules (pass_fabric.cc):
//                fabric-retry, fabric-request-id, seqlock-payload — plus
//                the --tsan-supp suppression audit (tsan-supp).
//
// Rule ids double as escape names: `// polarlint: allow(<rule>) <reason>`
// on the finding's line, the line above, or a contiguous comment block
// above. unguarded-field and seqlock-payload have dedicated markers
// (`polarlint: unguarded(<reason>)`, `polarlint: seqlock-payload(<reason>)`)
// that the rules and the tsan.supp audit share. DESIGN.md §7 documents
// rationale, semantics, and what the capability subset deliberately does
// not prove.
//
// Usage:
//   polarlint [--root <repo-root>] [--json <sidecar>] [--tsan-supp <file>]
//             [--max-wall-ms <n>] <file-or-dir>...
//   polarlint --self-test <fixtures-dir>
//
// Exit status: 0 clean, 1 findings / self-test mismatch / wall-clock bound
// exceeded, 2 usage or IO error. Rules key off paths relative to --root
// (default: cwd); only paths under src/ are checked, so tests and benches
// stay unconstrained.
//
// Self-test mode lints each fixture under the path it declares with
//   // polarlint-fixture-path: src/engine/whatever.h
// and requires the produced findings to exactly match the lines marked
//   <violating code>  // polarlint-fixture-expect: <rule>
// A SUBDIRECTORY of the fixtures dir is one multi-file corpus linted
// together (this is what proves cross-TU resolution); a corpus file named
// tsan.supp exercises the suppression audit instead of being linted.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rules.h"

namespace {

namespace fs = std::filesystem;

using polarlint::Corpus;
using polarlint::Finding;
using polarlint::LockEdge;
using polarlint::SourceFile;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string RelativeTo(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel =
      fs::relative(fs::absolute(file), fs::absolute(root), ec);
  if (ec || rel.empty()) return file.generic_string();
  return rel.generic_string();
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// ---- analysis over one corpus ----------------------------------------------

struct PassTiming {
  std::string name;
  double ms = 0;
  size_t findings = 0;
};

struct AnalysisResult {
  std::vector<Finding> findings;
  std::vector<LockEdge> edges;
  std::vector<PassTiming> timings;
  double total_ms = 0;
};

AnalysisResult Analyze(Corpus* corpus, const std::string& supp_display,
                       const std::string& supp_content, bool run_supp) {
  AnalysisResult r;
  const auto t0 = std::chrono::steady_clock::now();

  auto timed = [&](const char* name, auto&& pass) {
    const auto p0 = std::chrono::steady_clock::now();
    const size_t before = r.findings.size();
    pass();
    r.timings.push_back(
        PassTiming{name, MsSince(p0), r.findings.size() - before});
  };

  timed("symtab", [&] { corpus->Build(); });
  timed("token", [&] { polarlint::RunTokenRules(*corpus, &r.findings); });
  timed("capability",
        [&] { polarlint::RunCapabilityPass(*corpus, &r.findings); });
  timed("lock-order",
        [&] { polarlint::RunLockOrderPass(*corpus, &r.findings, &r.edges); });
  timed("fabric", [&] { polarlint::RunFabricPass(*corpus, &r.findings); });
  if (run_supp) {
    timed("tsan-supp", [&] {
      polarlint::RunTsanSuppAudit(*corpus, supp_display, supp_content,
                                  &r.findings);
    });
  }

  std::stable_sort(r.findings.begin(), r.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  r.total_ms = MsSince(t0);
  return r;
}

// Every rule id, in report order, so the summary table shows explicit
// zeroes (CI diffs a disappearing rule as loudly as a new finding).
const char* kAllRules[] = {
    "raw-mutex",      "unranked-mutex",    "raw-atomic",
    "no-hostptr-memcpy", "nondeterminism", "blocking-force",
    "fusion-bypass",  "unchecked-fabric-status", "unguarded-field",
    "capability",     "lock-order",        "fabric-retry",
    "fabric-request-id", "seqlock-payload", "tsan-supp"};

// ---- JSON sidecar ----------------------------------------------------------

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool WriteJsonSidecar(const fs::path& path, const AnalysisResult& r,
                      size_t files_scanned) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\n  \"schema\": \"polarlint.findings.v1\",\n";
  out << "  \"files_scanned\": " << files_scanned << ",\n";
  char ms[32];
  std::snprintf(ms, sizeof ms, "%.1f", r.total_ms);
  out << "  \"total_ms\": " << ms << ",\n";
  out << "  \"passes\": [";
  for (size_t i = 0; i < r.timings.size(); ++i) {
    const PassTiming& t = r.timings[i];
    std::snprintf(ms, sizeof ms, "%.1f", t.ms);
    out << (i ? ", " : "") << "{\"name\": \"" << t.name << "\", \"ms\": " << ms
        << ", \"findings\": " << t.findings << "}";
  }
  out << "],\n";
  std::map<std::string, size_t> by_rule;
  for (const char* rule : kAllRules) by_rule[rule] = 0;
  for (const Finding& f : r.findings) ++by_rule[f.rule];
  out << "  \"rules\": {";
  bool first = true;
  for (const auto& [rule, count] : by_rule) {
    out << (first ? "" : ", ") << "\"" << rule << "\": " << count;
    first = false;
  }
  out << "},\n";
  out << "  \"findings\": [";
  for (size_t i = 0; i < r.findings.size(); ++i) {
    const Finding& f = r.findings[i];
    out << (i ? ",\n    " : "\n    ") << "{\"file\": \"" << JsonEscape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \"" << f.rule
        << "\", \"message\": \"" << JsonEscape(f.message) << "\"}";
  }
  out << (r.findings.empty() ? "" : "\n  ") << "],\n";
  out << "  \"lock_order\": {\n    \"nodes\": [";
  std::set<std::string> nodes;
  for (const LockEdge& e : r.edges) {
    nodes.insert(e.held);
    nodes.insert(e.acquired);
  }
  first = true;
  for (const std::string& n : nodes) {
    out << (first ? "" : ", ") << "\"" << JsonEscape(n) << "\"";
    first = false;
  }
  out << "],\n    \"edges\": [";
  for (size_t i = 0; i < r.edges.size(); ++i) {
    const LockEdge& e = r.edges[i];
    out << (i ? ",\n      " : "\n      ") << "{\"held\": \""
        << JsonEscape(e.held) << "\", \"held_rank\": \"" << e.held_rank
        << "\", \"acquired\": \"" << JsonEscape(e.acquired)
        << "\", \"acquired_rank\": \"" << e.acquired_rank
        << "\", \"site\": \"" << JsonEscape(e.site) << "\"}";
  }
  out << (r.edges.empty() ? "" : "\n    ") << "]\n  }\n}\n";
  return static_cast<bool>(out);
}

// ---- lint mode -------------------------------------------------------------

int RunLint(const fs::path& root, const std::vector<fs::path>& inputs,
            const fs::path& json_path, const fs::path& supp_path,
            double max_wall_ms) {
  std::vector<fs::path> paths;
  for (const fs::path& p : inputs) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          paths.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      paths.push_back(p);
    } else {
      std::fprintf(stderr, "polarlint: no such file or directory: %s\n",
                   p.string().c_str());
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());

  Corpus corpus;
  for (const fs::path& f : paths) {
    SourceFile sf;
    if (!ReadFile(f, &sf.content)) {
      std::fprintf(stderr, "polarlint: cannot read %s\n", f.string().c_str());
      return 2;
    }
    sf.rel = RelativeTo(f, root);
    sf.display = sf.rel;
    corpus.files.push_back(std::move(sf));
  }

  std::string supp_content;
  std::string supp_display;
  if (!supp_path.empty()) {
    if (!ReadFile(supp_path, &supp_content)) {
      std::fprintf(stderr, "polarlint: cannot read %s\n",
                   supp_path.string().c_str());
      return 2;
    }
    supp_display = RelativeTo(supp_path, root);
  }

  const AnalysisResult r =
      Analyze(&corpus, supp_display, supp_content, !supp_path.empty());

  for (const Finding& f : r.findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }

  // Per-pass timing and per-rule counts — check.sh surfaces this table.
  std::printf("pass         ms  findings\n");
  for (const PassTiming& t : r.timings) {
    std::printf("%-10s %6.1f  %zu\n", t.name.c_str(), t.ms, t.findings);
  }
  std::map<std::string, size_t> by_rule;
  for (const Finding& f : r.findings) ++by_rule[f.rule];
  std::printf("rule                      findings\n");
  for (const char* rule : kAllRules) {
    std::printf("%-25s %zu\n", rule, by_rule.count(rule) ? by_rule[rule] : 0);
  }
  std::printf(
      "polarlint: %zu finding(s), %zu lock-order edge(s) over %zu file(s) "
      "in %.1f ms\n",
      r.findings.size(), r.edges.size(), corpus.files.size(), r.total_ms);

  if (!json_path.empty() && !WriteJsonSidecar(json_path, r,
                                              corpus.files.size())) {
    std::fprintf(stderr, "polarlint: cannot write %s\n",
                 json_path.string().c_str());
    return 2;
  }
  if (max_wall_ms > 0 && r.total_ms > max_wall_ms) {
    std::fprintf(stderr,
                 "polarlint: wall-clock bound exceeded: %.1f ms > %.0f ms "
                 "(the analyzer must never become the slowest CI stage "
                 "unnoticed)\n",
                 r.total_ms, max_wall_ms);
    return 1;
  }
  return r.findings.empty() ? 0 : 1;
}

// ---- self-test -------------------------------------------------------------

std::string FixtureDecl(const std::string& content, const std::string& key) {
  const size_t pos = content.find(key);
  if (pos == std::string::npos) return "";
  size_t begin = pos + key.size();
  while (begin < content.size() && content[begin] == ' ') ++begin;
  size_t end = begin;
  while (end < content.size() &&
         !std::isspace(static_cast<unsigned char>(content[end]))) {
    ++end;
  }
  return content.substr(begin, end - begin);
}

// Expected findings: (file display, line, rule) for every line tagged
// `polarlint-fixture-expect: rule` (works in any comment syntax — the raw
// lines are scanned, so .supp `#` comments tag entries the same way).
using Expectation = std::tuple<std::string, int, std::string>;

void CollectExpectations(const std::string& display,
                         const std::string& content,
                         std::multiset<Expectation>* out) {
  std::istringstream lines(content);
  std::string line_text;
  int line_no = 0;
  while (std::getline(lines, line_text)) {
    ++line_no;
    size_t pos = 0;
    const std::string key = "polarlint-fixture-expect:";
    while ((pos = line_text.find(key, pos)) != std::string::npos) {
      const std::string rule = FixtureDecl(line_text.substr(pos), key);
      if (!rule.empty()) out->emplace(display, line_no, rule);
      pos += key.size();
    }
  }
}

// One fixture corpus: a single file, or every file of a subdirectory linted
// together (cross-TU). Returns true when findings matched expectations.
bool RunFixtureCorpus(const std::string& label,
                      const std::vector<fs::path>& files) {
  Corpus corpus;
  std::string supp_content;
  std::string supp_display;
  std::multiset<Expectation> expected;
  for (const fs::path& f : files) {
    std::string content;
    if (!ReadFile(f, &content)) {
      std::fprintf(stderr, "polarlint: cannot read %s\n", f.string().c_str());
      return false;
    }
    const std::string display = f.filename().string();
    CollectExpectations(display, content, &expected);
    if (f.filename() == "tsan.supp") {
      supp_content = std::move(content);
      supp_display = display;
      continue;
    }
    SourceFile sf;
    sf.rel = FixtureDecl(content, "polarlint-fixture-path:");
    if (sf.rel.empty()) sf.rel = "src/fixtures/" + display;
    sf.display = display;
    sf.content = std::move(content);
    corpus.files.push_back(std::move(sf));
  }

  const AnalysisResult r =
      Analyze(&corpus, supp_display, supp_content, !supp_display.empty());
  std::multiset<Expectation> got;
  for (const Finding& f : r.findings) got.emplace(f.file, f.line, f.rule);

  if (got != expected) {
    std::printf("FAIL %s\n", label.c_str());
    for (const auto& e : expected) {
      if (!got.count(e)) {
        std::printf("  missing expected finding: %s:%d [%s]\n",
                    std::get<0>(e).c_str(), std::get<1>(e),
                    std::get<2>(e).c_str());
      }
    }
    for (const auto& g : got) {
      if (!expected.count(g)) {
        std::printf("  unexpected finding: %s:%d [%s]\n",
                    std::get<0>(g).c_str(), std::get<1>(g),
                    std::get<2>(g).c_str());
        for (const Finding& f : r.findings) {
          if (f.file == std::get<0>(g) && f.line == std::get<1>(g) &&
              f.rule == std::get<2>(g)) {
            std::printf("    %s\n", f.message.c_str());
          }
        }
      }
    }
    return false;
  }
  std::printf("OK   %s (%zu expectation(s))\n", label.c_str(),
              expected.size());
  return true;
}

int RunSelfTest(const fs::path& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::fprintf(stderr, "polarlint: fixtures dir not found: %s\n",
                 dir.string().c_str());
    return 2;
  }
  std::vector<fs::path> singles;
  std::vector<fs::path> corpora;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && IsSourceFile(entry.path())) {
      singles.push_back(entry.path());
    } else if (entry.is_directory()) {
      corpora.push_back(entry.path());
    }
  }
  std::sort(singles.begin(), singles.end());
  std::sort(corpora.begin(), corpora.end());
  if (singles.empty() && corpora.empty()) {
    std::fprintf(stderr, "polarlint: no fixtures in %s\n",
                 dir.string().c_str());
    return 2;
  }

  bool ok = true;
  for (const fs::path& f : singles) {
    ok = RunFixtureCorpus(f.filename().string(), {f}) && ok;
  }
  for (const fs::path& d : corpora) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(d)) {
      if (!entry.is_regular_file()) continue;
      if (IsSourceFile(entry.path()) ||
          entry.path().filename() == "tsan.supp") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) continue;
    ok = RunFixtureCorpus(d.filename().string() + "/", files) && ok;
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path selftest_dir;
  fs::path json_path;
  fs::path supp_path;
  double max_wall_ms = 0;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--self-test" && i + 1 < argc) {
      selftest_dir = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--tsan-supp" && i + 1 < argc) {
      supp_path = argv[++i];
    } else if (arg == "--max-wall-ms" && i + 1 < argc) {
      max_wall_ms = std::atof(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: polarlint [--root <repo-root>] [--json <sidecar>]\n"
          "                 [--tsan-supp <file>] [--max-wall-ms <n>]\n"
          "                 <file-or-dir>...\n"
          "       polarlint --self-test <fixtures-dir>\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "polarlint: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }

  if (!selftest_dir.empty()) return RunSelfTest(selftest_dir);
  if (inputs.empty()) {
    std::fprintf(stderr, "polarlint: no inputs (try --help)\n");
    return 2;
  }
  return RunLint(root, inputs, json_path, supp_path, max_wall_ms);
}
