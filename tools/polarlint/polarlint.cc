// polarlint: project-specific static checks for the polardb-mp tree.
//
// The toolchain has no libclang, so this is a deliberate token-level
// checker: it scrubs comments and string literals out of each translation
// unit, then pattern-matches the residue. False positives are silenced with
// an annotation that doubles as documentation:
//
//   // polarlint: allow(<rule>) <reason>
//
// on the same line as the match or the line immediately above it.
//
// Rules (ids as used in allow() and fixtures):
//
//   raw-mutex          std::mutex / std::shared_mutex / std::recursive_mutex /
//                      std::timed_mutex / std::condition_variable[_any]
//                      anywhere but src/common/lock_rank.h. Every lock in the
//                      tree is a RankedMutex/RankedSharedMutex with a declared
//                      LockRank; waiting goes through polarmp::CondVar.
//
//   unranked-mutex     a RankedMutex/RankedSharedMutex member or variable
//                      declaration whose initializer does not name a
//                      LockRank:: rank.
//
//   raw-atomic         the literal type std::atomic<uint64_t> outside
//                      src/obs (which implements counters), src/rdma and
//                      src/dsm (which implement the remote atomics those
//                      cells are targets of). Counters belong in
//                      obs::Counter; genuine non-counter cells carry an
//                      allow() with the reason.
//
//   no-hostptr-memcpy  a memcpy whose destination argument mentions
//                      HostPtr, outside src/dsm and src/rdma. Host-side
//                      writes into fabric-registered memory must go through
//                      Dsm::HostWrite / Dsm::HostWriteSeqlocked so the
//                      bounds check and seqlock protocol cannot be skipped.
//
//   nondeterminism     rand() / srand() / std::random_device / std::mt19937 /
//                      time(nullptr) outside src/common/random.h. Simulation
//                      code draws from polarmp::Random so runs are seedable
//                      and reproducible.
//
//   blocking-force     LogWriter::ForceTo / ForceAll (the blocking shims
//                      over the async force pipeline) inside src/engine,
//                      src/txn or src/node. Hot paths enqueue with
//                      ForceAsync/ForceAllAsync and continue (or wait on
//                      the returned handle where the call site is
//                      inherently synchronous); the blocking names are
//                      test/edge-only so a committer can never sneak back
//                      to one-force-per-caller.
//
//   fusion-bypass      Dsm / the Buffer Fusion RPC surface (FetchPage,
//                      PushPage, RegisterCopy, UnregisterCopy, NotifyPush,
//                      seqlocked reads/writes, ChargeRpc) named from
//                      src/engine outside buffer_pool.* and undo.*, which
//                      own the engine's fusion/DSM plumbing. Traversal code
//                      reaches remote pages through Mtr/BufferPool (the
//                      guarded path) or the compute-side IndexCache
//                      (src/cache/, the version-validated one-sided path) —
//                      never by talking to the fabric itself, so every
//                      remote access stays visible to the cache's
//                      invalidation protocol and the fabric-ops accounting.
//
//   unchecked-fabric-status
//                      a fabric-verb call (one-sided DSM verbs, seqlocked
//                      reads/writes, region registration, the Lock Fusion /
//                      Buffer Fusion / TIT RPC surfaces) whose returned
//                      Status or StatusOr is discarded — either a bare
//                      expression statement or a (void) cast. Every verb can
//                      fail with an injected transient, a genuine endpoint
//                      death, or a retry-budget Busy; dropping the status
//                      silently turns a recoverable fault into corruption.
//                      Consume it, POLARMP_RETURN_IF_ERROR it, or document
//                      the deliberate discard with an allow() reason.
//                      `Read`/`Write` are only matched when the receiver
//                      chain names the fabric or the DSM (a file's Read is
//                      out of scope).
//
//   unguarded-field    a mutable data member of a class that owns a
//                      RankedMutex/RankedSharedMutex, where the member is
//                      neither GUARDED_BY/PT_GUARDED_BY-annotated, nor
//                      const/constexpr/static, nor itself a synchronization
//                      or telemetry object (RankedMutex, RankedSharedMutex,
//                      CondVar, obs::Counter, obs::Gauge,
//                      obs::LatencyHistogram), nor a
//                      std::atomic in the raw-atomic-exempt dirs (src/obs,
//                      src/rdma, src/dsm). Every escape is documented in
//                      place:
//
//                        // polarlint: unguarded(<reason>)
//
//                      on the member's line or in the contiguous comment
//                      block immediately above it. This is what keeps the
//                      Clang thread-safety annotations (see
//                      common/thread_annotations.h) honest on GCC-only
//                      builds: a new field in a locked class must either
//                      join the capability analysis or explain itself.
//
// Usage:
//   polarlint [--root <repo-root>] <file-or-dir>...
//   polarlint --self-test <fixtures-dir>
//
// Exit status: 0 clean, 1 findings (or self-test mismatch), 2 usage/IO
// error. Rules key off the path relative to --root (default: cwd); only
// paths under src/ are checked, so tests and benches stay unconstrained.
//
// Self-test mode lints each fixture file under the path it declares with
//   // polarlint-fixture-path: src/engine/whatever.h
// and requires the produced findings to exactly match the lines marked
//   <violating code>  // polarlint-fixture-expect: <rule>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;  // path as reported (relative to root when possible)
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

// Source text with comments and string/char literals blanked out (replaced
// by spaces, newlines preserved), plus the comment text per line so
// allow() annotations can be looked up after scrubbing.
struct Scrubbed {
  std::string text;
  std::vector<std::string> comment_on_line;  // index 0 unused; 1-based
  std::vector<bool> code_on_line;            // non-space scrubbed content
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Scrubbed Scrub(const std::string& src) {
  Scrubbed out;
  out.text.assign(src.size(), ' ');
  const size_t lines = 2 + std::count(src.begin(), src.end(), '\n');
  out.comment_on_line.assign(lines + 1, std::string());

  size_t i = 0;
  int line = 1;
  auto copy = [&](size_t n) {
    for (size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      out.text[i] = src[i];
      if (src[i] == '\n') ++line;
    }
  };
  auto blank = [&](size_t n, bool record_comment) {
    for (size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      if (src[i] == '\n') {
        out.text[i] = '\n';
        ++line;
      } else {
        out.text[i] = ' ';
        if (record_comment) out.comment_on_line[line].push_back(src[i]);
      }
    }
  };

  while (i < src.size()) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '/' && next == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string::npos) end = src.size();
      blank(end - i, /*record_comment=*/true);
    } else if (c == '/' && next == '*') {
      size_t end = src.find("*/", i + 2);
      end = end == std::string::npos ? src.size() : end + 2;
      blank(end - i, /*record_comment=*/true);
    } else if (c == 'R' && next == '"' && !(i > 0 && IsIdentChar(src[i - 1]))) {
      // Raw string: R"delim( ... )delim"
      size_t open = src.find('(', i + 2);
      if (open == std::string::npos) {
        copy(src.size() - i);
        break;
      }
      const std::string delim = src.substr(i + 2, open - (i + 2));
      const std::string closer = ")" + delim + "\"";
      size_t end = src.find(closer, open + 1);
      end = end == std::string::npos ? src.size() : end + closer.size();
      blank(end - i, /*record_comment=*/false);
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < src.size() && src[j] != quote) {
        if (src[j] == '\\') ++j;
        ++j;
      }
      blank(std::min(j + 1, src.size()) - i, /*record_comment=*/false);
    } else {
      copy(1);
    }
  }
  out.code_on_line.assign(out.comment_on_line.size(), false);
  int l = 1;
  for (const char c : out.text) {
    if (c == '\n') {
      ++l;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      out.code_on_line[l] = true;
    }
  }
  return out;
}

int LineOf(const std::string& text, size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() + pos, '\n'));
}

bool LineAllows(const Scrubbed& s, int line, const std::string& rule) {
  const std::string needle = "polarlint: allow(" + rule + ")";
  const auto has = [&](int l) {
    return l >= 1 && l < static_cast<int>(s.comment_on_line.size()) &&
           s.comment_on_line[l].find(needle) != std::string::npos;
  };
  // Same line or the line immediately above.
  if (has(line) || has(line - 1)) return true;
  // A contiguous comment-only block immediately above — lets several
  // stacked polarlint escape lines document one declaration.
  for (int l = line - 1; l >= 1 && l < static_cast<int>(s.code_on_line.size()) &&
                         !s.code_on_line[l] && !s.comment_on_line[l].empty();
       --l) {
    if (has(l)) return true;
  }
  return false;
}

// Occurrences of `token` in scrubbed text with identifier boundaries on
// both sides.
std::vector<size_t> TokenHits(const std::string& text,
                              const std::string& token) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t after = pos + token.size();
    const bool right_ok = after >= text.size() || !IsIdentChar(text[after]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = after;
  }
  return hits;
}

size_t SkipSpaces(const std::string& text, size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Index of the '}' matching the '{' at `open` (text.size() if unmatched).
size_t MatchBrace(const std::string& text, size_t open) {
  int depth = 0;
  for (size_t j = open; j < text.size(); ++j) {
    if (text[j] == '{') ++depth;
    if (text[j] == '}' && --depth == 0) return j;
  }
  return text.size();
}

// Removes balanced <...> spans (template argument lists) so that a '(' left
// over marks a function rather than std::function<void()> and friends.
// Unbalanced '<' (shifts, comparisons) are kept as-is.
std::string StripAngles(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '<') {
      int depth = 1;
      size_t j = i + 1;
      for (; j < s.size() && depth > 0; ++j) {
        if (s[j] == '<') ++depth;
        if (s[j] == '>') --depth;
      }
      if (depth == 0) {
        i = j - 1;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

// A class/struct definition in scrubbed text: keyword position, body braces.
struct ClassSpan {
  size_t kw = 0;
  size_t open = 0;   // '{'
  size_t close = 0;  // matching '}'
};

std::vector<ClassSpan> FindClassSpans(const std::string& text) {
  std::vector<ClassSpan> spans;
  for (const std::string kw : {"class", "struct"}) {
    for (size_t pos : TokenHits(text, kw)) {
      // `enum class` / `enum struct` define enumerators, not members.
      size_t b = pos;
      while (b > 0 && std::isspace(static_cast<unsigned char>(text[b - 1]))) {
        --b;
      }
      size_t e = b;
      while (b > 0 && IsIdentChar(text[b - 1])) --b;
      if (text.substr(b, e - b) == "enum") continue;
      // Walk to the body's '{'. Anything that closes an enclosing construct
      // first means this is not a definition: a template parameter
      // (`template <class T>`), a function parameter (`void f(class X*)`),
      // a forward declaration.
      int paren = 0;
      int angle = 0;
      size_t open = std::string::npos;
      for (size_t j = pos + kw.size(); j < text.size(); ++j) {
        const char c = text[j];
        if (c == '(' || c == '[') {
          ++paren;
        } else if (c == ')' || c == ']') {
          if (paren == 0) break;
          --paren;
        } else if (c == '<') {
          ++angle;
        } else if (c == '>') {
          if (angle == 0) break;
          --angle;
        } else if ((c == '=' || c == ';') && paren == 0 && angle == 0) {
          break;
        } else if (c == '{' && paren == 0) {
          open = j;
          break;
        }
      }
      if (open == std::string::npos) continue;
      spans.push_back(ClassSpan{pos, open, MatchBrace(text, open)});
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const ClassSpan& a, const ClassSpan& b) { return a.kw < b.kw; });
  return spans;
}

// One member-level declaration (everything between ';'s at class-body depth,
// with function bodies and nested class definitions skipped).
struct MemberStmt {
  size_t begin = 0;  // first non-space char
  size_t end = 0;    // the terminating ';'
  std::string text;
};

std::vector<MemberStmt> MemberStatements(
    const std::string& text, const ClassSpan& span,
    const std::map<size_t, ClassSpan>& span_by_kw) {
  std::vector<MemberStmt> stmts;
  size_t pos = span.open + 1;
  size_t begin = std::string::npos;
  std::string stmt;
  int paren = 0;
  auto reset = [&] {
    begin = std::string::npos;
    stmt.clear();
    paren = 0;
  };
  while (pos < span.close) {
    // Nested class/struct definition: its members belong to its own scan.
    // Skip the definition plus any declarators up to the trailing ';'.
    const auto nested = span_by_kw.find(pos);
    if (nested != span_by_kw.end() && nested->second.close < span.close) {
      pos = nested->second.close + 1;
      while (pos < span.close && text[pos] != ';') {
        if (text[pos] == '{') pos = MatchBrace(text, pos);
        ++pos;
      }
      ++pos;
      reset();
      continue;
    }
    const char c = text[pos];
    if (c == '(' || c == '[') {
      ++paren;
    } else if ((c == ')' || c == ']') && paren > 0) {
      --paren;
    } else if (c == '{' && paren == 0) {
      // Function body vs a field's brace initializer: a '(' outside
      // template argument lists means a parameter list.
      const bool is_function =
          StripAngles(stmt).find('(') != std::string::npos;
      pos = MatchBrace(text, pos) + 1;
      if (is_function) reset();
      continue;
    } else if (c == ';' && paren == 0) {
      if (begin != std::string::npos) {
        stmts.push_back(MemberStmt{begin, pos, stmt});
      }
      reset();
      ++pos;
      continue;
    } else if (c == ':' && paren == 0) {
      const std::string t = Trim(stmt);
      if (t == "public" || t == "private" || t == "protected") {
        reset();
        ++pos;
        continue;
      }
    }
    if (begin == std::string::npos &&
        !std::isspace(static_cast<unsigned char>(c))) {
      begin = pos;
    }
    stmt += c;
    ++pos;
  }
  return stmts;
}

bool HasToken(const std::string& stmt, const std::string& token) {
  return !TokenHits(stmt, token).empty();
}

// Start of the receiver chain ending at the method token at `pos`: for
// `node->lock_fusion()->Release` it walks back over `()` segments and
// identifiers joined by `.` / `->` / `::` and returns the index of `node`.
// A bare (unqualified) call returns `pos` itself. Stops conservatively at
// anything it cannot parse (e.g. a cast), leaving the chain shorter.
size_t ChainStart(const std::string& text, size_t pos) {
  size_t start = pos;
  for (;;) {
    size_t k = start;
    while (k > 0 && std::isspace(static_cast<unsigned char>(text[k - 1]))) --k;
    size_t conn = 0;
    if (k >= 1 && text[k - 1] == '.') {
      conn = 1;
    } else if (k >= 2 && text[k - 2] == '-' && text[k - 1] == '>') {
      conn = 2;
    } else if (k >= 2 && text[k - 2] == ':' && text[k - 1] == ':') {
      conn = 2;
    }
    if (conn == 0) return start;
    k -= conn;
    while (k > 0 && std::isspace(static_cast<unsigned char>(text[k - 1]))) --k;
    if (k >= 1 && text[k - 1] == ')') {
      // A call segment in the chain, e.g. the `()` of `lock_fusion()`.
      int depth = 0;
      size_t m = k;
      while (m > 0) {
        --m;
        if (text[m] == ')') ++depth;
        if (text[m] == '(' && --depth == 0) break;
      }
      if (depth != 0) return start;
      k = m;
      while (k > 0 && std::isspace(static_cast<unsigned char>(text[k - 1]))) {
        --k;
      }
    }
    if (k == 0 || !IsIdentChar(text[k - 1])) return start;
    while (k > 0 && IsIdentChar(text[k - 1])) --k;
    start = k;
  }
}

// Is `stmt` a declaration of a lock the class owns by value
// (`RankedMutex name...`, as opposed to a reference/pointer/parameter)?
bool DeclaresOwnedMutex(const std::string& stmt) {
  for (const std::string token : {"RankedMutex", "RankedSharedMutex"}) {
    for (size_t pos : TokenHits(stmt, token)) {
      const size_t after = SkipSpaces(stmt, pos + token.size());
      if (after < stmt.size() &&
          (std::isalpha(static_cast<unsigned char>(stmt[after])) ||
           stmt[after] == '_')) {
        return true;
      }
    }
  }
  return false;
}

class Linter {
 public:
  // `rel` is the repo-relative path (forward slashes) used for rule
  // scoping; `display` is what findings print.
  void LintFile(const std::string& rel, const std::string& display,
                const std::string& content) {
    if (!StartsWith(rel, "src/")) return;
    const Scrubbed s = Scrub(content);
    CheckRawMutex(rel, display, s);
    CheckUnrankedMutex(rel, display, s);
    CheckRawAtomic(rel, display, s);
    CheckHostPtrMemcpy(rel, display, s);
    CheckNondeterminism(rel, display, s);
    CheckBlockingForce(rel, display, s);
    CheckFusionBypass(rel, display, s);
    CheckUncheckedFabricStatus(rel, display, s);
    CheckUnguardedFields(rel, display, s);
  }

  const std::vector<Finding>& findings() const { return findings_; }

 private:
  void Report(const std::string& display, const Scrubbed& s, size_t pos,
              const std::string& rule, const std::string& message) {
    const int line = LineOf(s.text, pos);
    if (LineAllows(s, line, rule)) return;
    findings_.push_back(Finding{display, line, rule, message});
  }

  void CheckRawMutex(const std::string& rel, const std::string& display,
                     const Scrubbed& s) {
    if (rel == "src/common/lock_rank.h") return;
    static const char* kBanned[] = {
        "std::mutex",          "std::shared_mutex",
        "std::recursive_mutex", "std::timed_mutex",
        "std::condition_variable", "std::condition_variable_any",
    };
    for (const char* token : kBanned) {
      for (size_t pos : TokenHits(s.text, token)) {
        Report(display, s, pos, "raw-mutex",
               std::string(token) +
                   " is banned: use RankedMutex/RankedSharedMutex/CondVar "
                   "from common/lock_rank.h with a declared LockRank");
      }
    }
  }

  void CheckUnrankedMutex(const std::string& rel, const std::string& display,
                          const Scrubbed& s) {
    if (rel == "src/common/lock_rank.h") return;
    for (const char* token : {"RankedMutex", "RankedSharedMutex"}) {
      for (size_t pos : TokenHits(s.text, token)) {
        const size_t after = SkipSpaces(s.text, pos + std::string(token).size());
        if (after >= s.text.size()) continue;
        const char c = s.text[after];
        // Only declarations introduce a new lock: `RankedMutex name{...};`.
        // References, pointers, template arguments and parameter lists
        // (`&`, `*`, `>`, `(`, `)`, `,`, `;`) do not.
        if (!(std::isalpha(static_cast<unsigned char>(c)) || c == '_')) {
          continue;
        }
        const size_t stmt_end = s.text.find(';', after);
        const std::string stmt =
            s.text.substr(after, stmt_end == std::string::npos
                                     ? std::string::npos
                                     : stmt_end - after);
        if (stmt.find("LockRank::") == std::string::npos) {
          Report(display, s, pos, "unranked-mutex",
                 std::string(token) +
                     " declaration must name its LockRank:: rank in the "
                     "initializer");
        }
      }
    }
  }

  void CheckRawAtomic(const std::string& rel, const std::string& display,
                      const Scrubbed& s) {
    if (StartsWith(rel, "src/obs/") || StartsWith(rel, "src/rdma/") ||
        StartsWith(rel, "src/dsm/")) {
      return;
    }
    for (size_t pos : TokenHits(s.text, "std::atomic<uint64_t>")) {
      Report(display, s, pos, "raw-atomic",
             "hand-rolled std::atomic<uint64_t>: counters belong in "
             "obs::Counter; non-counter cells need "
             "`// polarlint: allow(raw-atomic) <reason>`");
    }
  }

  void CheckHostPtrMemcpy(const std::string& rel, const std::string& display,
                          const Scrubbed& s) {
    if (StartsWith(rel, "src/dsm/") || StartsWith(rel, "src/rdma/")) return;
    for (size_t pos : TokenHits(s.text, "memcpy")) {
      size_t open = SkipSpaces(s.text, pos + 6);
      if (open >= s.text.size() || s.text[open] != '(') continue;
      // First argument: up to the top-level comma.
      int depth = 1;
      size_t j = open + 1;
      const size_t arg_begin = j;
      while (j < s.text.size() && depth > 0) {
        const char c = s.text[j];
        if (c == '(') ++depth;
        if (c == ')') --depth;
        if (c == ',' && depth == 1) break;
        ++j;
      }
      const std::string arg = s.text.substr(arg_begin, j - arg_begin);
      if (arg.find("HostPtr") != std::string::npos) {
        Report(display, s, pos, "no-hostptr-memcpy",
               "raw memcpy into fabric-registered memory: use "
               "Dsm::HostWrite / Dsm::HostWriteSeqlocked");
      }
    }
  }

  void CheckNondeterminism(const std::string& rel, const std::string& display,
                           const Scrubbed& s) {
    if (rel == "src/common/random.h") return;
    auto call_of = [&](const char* name) {
      std::vector<size_t> calls;
      for (size_t pos : TokenHits(s.text, name)) {
        const size_t open = SkipSpaces(s.text, pos + std::string(name).size());
        if (open < s.text.size() && s.text[open] == '(') calls.push_back(pos);
      }
      return calls;
    };
    for (size_t pos : call_of("rand")) {
      Report(display, s, pos, "nondeterminism",
             "rand(): draw from polarmp::Random (common/random.h) so runs "
             "are seedable");
    }
    for (size_t pos : call_of("srand")) {
      Report(display, s, pos, "nondeterminism",
             "srand(): seed a polarmp::Random instance instead");
    }
    for (const char* token :
         {"std::random_device", "std::mt19937", "std::mt19937_64"}) {
      for (size_t pos : TokenHits(s.text, token)) {
        Report(display, s, pos, "nondeterminism",
               std::string(token) +
                   ": use polarmp::Random (common/random.h) so runs are "
                   "seedable");
      }
    }
    for (size_t pos : call_of("time")) {
      const size_t open = SkipSpaces(s.text, pos + 4);
      const size_t close = s.text.find(')', open);
      if (close == std::string::npos) continue;
      std::string arg = s.text.substr(open + 1, close - open - 1);
      arg.erase(std::remove_if(arg.begin(), arg.end(),
                               [](unsigned char c) { return std::isspace(c); }),
                arg.end());
      if (arg == "nullptr" || arg == "NULL" || arg == "0") {
        Report(display, s, pos, "nondeterminism",
               "time(nullptr): wall-clock seeding breaks reproducibility; "
               "use polarmp::Random");
      }
    }
  }

  void CheckBlockingForce(const std::string& rel, const std::string& display,
                          const Scrubbed& s) {
    // Only the layers on the commit hot path are constrained; src/wal owns
    // the shims' definitions, and tests/benches are outside src/ anyway.
    if (!StartsWith(rel, "src/engine/") && !StartsWith(rel, "src/txn/") &&
        !StartsWith(rel, "src/node/")) {
      return;
    }
    for (const char* token : {"ForceTo", "ForceAll"}) {
      for (size_t pos : TokenHits(s.text, token)) {
        Report(display, s, pos, "blocking-force",
               std::string(token) +
                   " is a test/edge-only blocking shim: enqueue with "
                   "LogWriter::ForceAsync/ForceAllAsync and continue, or "
                   "Wait() on the handle if the site is inherently "
                   "synchronous");
      }
    }
  }

  void CheckFusionBypass(const std::string& rel, const std::string& display,
                         const Scrubbed& s) {
    if (!StartsWith(rel, "src/engine/")) return;
    // The LBP and the undo log own the engine's fusion/DSM plumbing; every
    // other engine file goes through them or through the IndexCache.
    if (StartsWith(rel, "src/engine/buffer_pool.") ||
        StartsWith(rel, "src/engine/undo.")) {
      return;
    }
    for (const char* token :
         {"Dsm", "ReadSeqlocked", "WriteSeqlocked", "FetchPage",
          "FetchPageVersioned", "PushPage", "RegisterCopy", "UnregisterCopy",
          "NotifyPush", "ChargeRpc"}) {
      for (size_t pos : TokenHits(s.text, token)) {
        Report(display, s, pos, "fusion-bypass",
               std::string(token) +
                   ": engine traversal code must not touch Dsm or the "
                   "fusion RPC surface directly; go through Mtr/BufferPool "
                   "or the compute-side IndexCache (src/cache/)");
      }
    }
  }

  void CheckUncheckedFabricStatus(const std::string& rel,
                                  const std::string& display,
                                  const Scrubbed& s) {
    (void)rel;  // applies to all of src/: every layer calls into the fabric
    // Verbs whose Status/StatusOr carries the only record of a fault.
    // Declarations and definitions are naturally skipped: their name is
    // preceded by a return type, not a statement boundary.
    static const char* kVerbs[] = {
        "FetchAdd64",     "CompareSwap64",  "Load64",
        "Store64",        "ReadSeqlocked",  "WriteSeqlocked",
        "RegisterRegion", "DeregisterRegion", "AcquirePLock",
        "ReleasePLock",   "RegisterWait",   "AwaitHolder",
        "FetchPage",      "FetchPageVersioned", "PushPage",
        "RegisterCopy",   "UnregisterCopy", "NotifyPush",
        "FlushPages",     "FlushAllDirty",  "ReadSlot",
        "SetRefRemote",   "InjectRpcFault"};
    // Read/Write are too generic to ban bare: only receivers that name the
    // fabric or the DSM are in scope.
    static const char* kGated[] = {"Read", "Write"};
    auto check = [&](const char* name, bool gated) {
      for (size_t pos : TokenHits(s.text, name)) {
        const size_t open = SkipSpaces(s.text, pos + std::string(name).size());
        if (open >= s.text.size() || s.text[open] != '(') continue;  // no call
        const size_t chain = ChainStart(s.text, pos);
        if (gated) {
          std::string recv = s.text.substr(chain, pos - chain);
          std::transform(recv.begin(), recv.end(), recv.begin(),
                         [](unsigned char c) { return std::tolower(c); });
          if (recv.find("fabric") == std::string::npos &&
              recv.find("dsm") == std::string::npos) {
            continue;
          }
        }
        size_t k = chain;
        while (k > 0 &&
               std::isspace(static_cast<unsigned char>(s.text[k - 1]))) {
          --k;
        }
        // The status is discarded when the chain opens a statement (after
        // ';', '{', '}' or at file start) or sits behind a ')' — a (void)
        // cast or a brace-less if/for body, both of which drop it.
        const char prev = k == 0 ? ';' : s.text[k - 1];
        if (prev != ';' && prev != '{' && prev != '}' && prev != ')') continue;
        Report(display, s, pos, "unchecked-fabric-status",
               std::string(name) +
                   ": fabric-verb Status discarded; handle it, wrap it in "
                   "POLARMP_RETURN_IF_ERROR, or document the deliberate "
                   "discard with `// polarlint: "
                   "allow(unchecked-fabric-status) <reason>`");
      }
    };
    for (const char* name : kVerbs) check(name, /*gated=*/false);
    for (const char* name : kGated) check(name, /*gated=*/true);
  }

  void CheckUnguardedFields(const std::string& rel, const std::string& display,
                            const Scrubbed& s) {
    // lock_rank.h wraps the raw std primitives; the annotation macros are
    // defined in thread_annotations.h. Neither can be stated in terms of
    // itself.
    if (rel == "src/common/lock_rank.h" ||
        rel == "src/common/thread_annotations.h") {
      return;
    }
    const bool atomics_exempt = StartsWith(rel, "src/obs/") ||
                                StartsWith(rel, "src/rdma/") ||
                                StartsWith(rel, "src/dsm/");

    auto escape_on = [&](int l) {
      return l >= 1 && l < static_cast<int>(s.comment_on_line.size()) &&
             s.comment_on_line[l].find("polarlint: unguarded(") !=
                 std::string::npos;
    };

    const std::vector<ClassSpan> spans = FindClassSpans(s.text);
    std::map<size_t, ClassSpan> span_by_kw;
    for (const ClassSpan& span : spans) span_by_kw[span.kw] = span;

    for (const ClassSpan& span : spans) {
      const std::vector<MemberStmt> stmts =
          MemberStatements(s.text, span, span_by_kw);
      bool owns_mutex = false;
      for (const MemberStmt& stmt : stmts) {
        if (DeclaresOwnedMutex(stmt.text)) owns_mutex = true;
      }
      if (!owns_mutex) continue;

      for (const MemberStmt& stmt : stmts) {
        // Non-field member-level statements.
        bool skip = false;
        for (const char* token :
             {"using", "typedef", "friend", "enum", "static_assert",
              "operator"}) {
          if (HasToken(stmt.text, token)) skip = true;
        }
        if (skip) continue;
        // Annotated: part of the capability analysis. (Checked before the
        // function test — the annotation macros take parentheses.)
        if (stmt.text.find("GUARDED_BY(") != std::string::npos) continue;
        // A '(' outside template arguments marks a method declaration.
        if (StripAngles(stmt.text).find('(') != std::string::npos) continue;
        // Immutable members need no lock.
        if (HasToken(stmt.text, "const") || HasToken(stmt.text, "constexpr") ||
            HasToken(stmt.text, "static")) {
          continue;
        }
        // Synchronization and telemetry objects are internally consistent.
        bool whitelisted = false;
        for (const char* token :
             {"RankedMutex", "RankedSharedMutex", "CondVar", "obs::Counter",
              "obs::Gauge", "obs::LatencyHistogram"}) {
          if (HasToken(stmt.text, token)) whitelisted = true;
        }
        if (whitelisted) continue;
        // Atomics in the dirs that implement remote-atomic targets are the
        // raw-atomic rule's domain, not this one's.
        if (atomics_exempt &&
            stmt.text.find("std::atomic") != std::string::npos) {
          continue;
        }
        // Documented escape on the member's own lines or in the contiguous
        // comment block immediately above.
        const int first = LineOf(s.text, stmt.begin);
        const int last = LineOf(s.text, stmt.end);
        bool escaped = false;
        for (int l = first; l <= last && !escaped; ++l) {
          escaped = escape_on(l);
        }
        for (int l = first - 1;
             !escaped && l >= 1 && l < static_cast<int>(s.code_on_line.size()) &&
             !s.code_on_line[l] && !s.comment_on_line[l].empty();
             --l) {
          escaped = escape_on(l);
        }
        if (escaped) continue;
        Report(display, s, stmt.begin, "unguarded-field",
               "mutable member of a RankedMutex-owning class: annotate with "
               "GUARDED_BY(<mu>), make it const, or document why not with "
               "`// polarlint: unguarded(<reason>)`");
      }
    }
  }

  std::vector<Finding> findings_;
};

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string RelativeTo(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel =
      fs::relative(fs::absolute(file), fs::absolute(root), ec);
  if (ec || rel.empty()) return file.generic_string();
  return rel.generic_string();
}

int RunLint(const fs::path& root, const std::vector<fs::path>& inputs) {
  std::vector<fs::path> files;
  for (const fs::path& p : inputs) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "polarlint: no such file or directory: %s\n",
                   p.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  Linter linter;
  for (const fs::path& f : files) {
    std::string content;
    if (!ReadFile(f, &content)) {
      std::fprintf(stderr, "polarlint: cannot read %s\n", f.string().c_str());
      return 2;
    }
    const std::string rel = RelativeTo(f, root);
    linter.LintFile(rel, rel, content);
  }

  for (const Finding& f : linter.findings()) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!linter.findings().empty()) {
    std::printf("polarlint: %zu finding(s)\n", linter.findings().size());
    return 1;
  }
  return 0;
}

// ---- self-test ------------------------------------------------------------

std::string FixtureDecl(const std::string& content, const std::string& key) {
  const size_t pos = content.find(key);
  if (pos == std::string::npos) return "";
  size_t begin = pos + key.size();
  while (begin < content.size() && (content[begin] == ' ')) ++begin;
  size_t end = begin;
  while (end < content.size() && !std::isspace(static_cast<unsigned char>(
                                     content[end]))) {
    ++end;
  }
  return content.substr(begin, end - begin);
}

int RunSelfTest(const fs::path& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::fprintf(stderr, "polarlint: fixtures dir not found: %s\n",
                 dir.string().c_str());
    return 2;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && IsSourceFile(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "polarlint: no fixtures in %s\n",
                 dir.string().c_str());
    return 2;
  }

  bool ok = true;
  for (const fs::path& f : files) {
    std::string content;
    if (!ReadFile(f, &content)) {
      std::fprintf(stderr, "polarlint: cannot read %s\n", f.string().c_str());
      return 2;
    }
    std::string rel = FixtureDecl(content, "polarlint-fixture-path:");
    if (rel.empty()) rel = "src/fixtures/" + f.filename().string();

    // Expected findings: every line tagged `polarlint-fixture-expect: rule`.
    std::multiset<std::pair<int, std::string>> expected;
    {
      std::istringstream lines(content);
      std::string line_text;
      int line_no = 0;
      while (std::getline(lines, line_text)) {
        ++line_no;
        size_t pos = 0;
        const std::string key = "polarlint-fixture-expect:";
        while ((pos = line_text.find(key, pos)) != std::string::npos) {
          const std::string rule = FixtureDecl(line_text.substr(pos), key);
          if (!rule.empty()) expected.emplace(line_no, rule);
          pos += key.size();
        }
      }
    }

    Linter linter;
    linter.LintFile(rel, f.filename().string(), content);
    std::multiset<std::pair<int, std::string>> got;
    for (const Finding& finding : linter.findings()) {
      got.emplace(finding.line, finding.rule);
    }

    if (got != expected) {
      ok = false;
      std::printf("FAIL %s (as %s)\n", f.filename().string().c_str(),
                  rel.c_str());
      for (const auto& [line, rule] : expected) {
        if (!got.count({line, rule})) {
          std::printf("  missing expected finding: line %d [%s]\n", line,
                      rule.c_str());
        }
      }
      for (const auto& [line, rule] : got) {
        if (!expected.count({line, rule})) {
          std::printf("  unexpected finding: line %d [%s]\n", line,
                      rule.c_str());
        }
      }
    } else {
      std::printf("OK   %s (%zu expectation(s))\n",
                  f.filename().string().c_str(), expected.size());
    }
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path selftest_dir;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--self-test" && i + 1 < argc) {
      selftest_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: polarlint [--root <repo-root>] <file-or-dir>...\n"
          "       polarlint --self-test <fixtures-dir>\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "polarlint: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }

  if (!selftest_dir.empty()) return RunSelfTest(selftest_dir);
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "polarlint: no inputs (try --help)\n");
    return 2;
  }
  return RunLint(root, inputs);
}
