#ifndef POLARLINT_SYMTAB_H_
#define POLARLINT_SYMTAB_H_

// Cross-TU symbol table: per-class member tables (fields with their
// GUARDED_BY mutex, owned RankedMutex members with their declared rank,
// method declarations with their REQUIRES sets) plus every function
// DEFINITION in the corpus (in-class bodies and out-of-class
// `Class::Method(...) { ... }` bodies alike).
//
// This is what makes the semantic passes cross-TU: a field annotated in a
// header is resolved against accesses in the .cc that defines the class's
// methods, because both files land in one SymbolTable before any pass runs.
//
// The table is deliberately a SUBSET of C++ name lookup: classes are keyed
// by their simple name (the tree keeps these unique per subsystem; when two
// classes share a name their tables merge conservatively and ambiguous
// lookups resolve to nothing), overloads merge their annotation sets, and
// types are never fully resolved — mutex references are matched by the
// trailing identifier of the lock expression. DESIGN.md §7 spells out what
// this deliberately does not prove.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace polarlint {

// One file of the corpus being linted together.
struct SourceFile {
  std::string rel;      // repo-relative path (rule scoping)
  std::string display;  // what findings print
  std::string content;  // raw bytes
  Scrubbed scrubbed;    // filled by SymbolTable::Build
};

struct GuardedField {
  std::string name;
  std::string mutex;     // trailing identifier of the GUARDED_BY expression
  bool pointee = false;  // PT_GUARDED_BY: the pointer itself is unguarded
  int line = 0;
  int file = -1;  // index into the corpus
};

struct MutexMember {
  std::string name;
  std::string rank;        // "kPageLatch" etc., "" while unresolved
  bool shared = false;     // RankedSharedMutex
  bool same_allow = false; // SameRank::kAllow
  int line = 0;
  int file = -1;
};

// Annotations from a method DECLARATION (in-class). Overloads merge.
struct MethodDecl {
  std::set<std::string> requires_mutexes;  // REQUIRES + REQUIRES_SHARED
  bool no_analysis = false;                // NO_THREAD_SAFETY_ANALYSIS
};

struct ClassInfo {
  std::string name;
  std::vector<GuardedField> guarded_fields;
  std::vector<MutexMember> mutexes;
  std::map<std::string, MethodDecl> methods;

  const MutexMember* FindMutex(const std::string& name) const;
  bool HasGuardedFields() const { return !guarded_fields.empty(); }
};

// A function definition (a body we can analyze).
struct FunctionDef {
  std::string class_name;  // "" for free functions
  std::string name;        // "LockFusion" for a ctor, "~LockFusion" for dtor
  int file = -1;
  size_t header_begin = 0;  // start of the signature text
  size_t body_open = 0;     // '{'
  size_t body_close = 0;    // matching '}'
  std::set<std::string> requires_mutexes;  // from the definition itself
  bool no_analysis = false;
  std::string init_list;  // ctor member-init list text ("" otherwise)

  bool is_ctor() const { return !class_name.empty() && name == class_name; }
  bool is_dtor() const { return !name.empty() && name[0] == '~'; }
};

class SymbolTable {
 public:
  // Scrubs every file (filling file.scrubbed) and builds the table.
  void Build(std::vector<SourceFile>* files);

  // nullptr when the class is unknown. Classes sharing a simple name are
  // merged (conservative union).
  const ClassInfo* FindClass(const std::string& name) const;

  const std::vector<FunctionDef>& functions() const { return functions_; }

  // Functions with a given simple name (any class). Used for one-level
  // call inlining and the tsan.supp audit.
  std::vector<const FunctionDef*> FindFunctions(const std::string& name) const;
  // The definition of Class::Name, if the corpus holds exactly one.
  const FunctionDef* FindMethod(const std::string& cls,
                                const std::string& name) const;

  // Mutex resolution for the lock-order pass: `trailing` is the trailing
  // identifier of a lock expression seen inside a method of `cls` ("" for
  // free functions). Members of `cls` win; otherwise a globally unique
  // mutex member name resolves; otherwise nullptr. `owner_out` receives the
  // owning class name.
  const MutexMember* ResolveMutex(const std::string& cls,
                                  const std::string& trailing,
                                  std::string* owner_out) const;

  const std::map<std::string, ClassInfo>& classes() const { return classes_; }

 private:
  void ParseFile(int file_index, SourceFile* file);

  std::map<std::string, ClassInfo> classes_;
  std::vector<FunctionDef> functions_;
  std::map<std::string, std::vector<int>> functions_by_name_;
  // mutex member name -> owning class names (for unique-name resolution)
  std::map<std::string, std::set<std::string>> mutex_owners_;
};

// Rank values mirroring src/common/lock_rank.h. The linter keeps its own
// copy (it must run before anything compiles) and `lint_selftest` pins the
// two in sync via a fixture that uses the extremes.
int RankValue(const std::string& rank_name);

// ---- class-structure utilities (shared with the token rules) ---------------

// A class/struct definition in scrubbed text: keyword position, body braces.
struct ClassSpan {
  size_t kw = 0;
  size_t open = 0;   // '{'
  size_t close = 0;  // matching '}'
};

std::vector<ClassSpan> FindClassSpans(const std::string& text);

// The class's name (skipping attribute macros, alignas, final).
std::string ClassNameOf(const std::string& text, const ClassSpan& span);

// One member-level declaration (everything between ';'s at class-body depth,
// with function bodies and nested class definitions skipped).
struct MemberStmt {
  size_t begin = 0;  // first non-space char
  size_t end = 0;    // the terminating ';'
  std::string text;
};

std::vector<MemberStmt> MemberStatements(
    const std::string& text, const ClassSpan& span,
    const std::map<size_t, ClassSpan>& span_by_kw);

// Is `stmt` a declaration of a lock the class owns by value?
bool DeclaresOwnedMutex(const std::string& stmt);

}  // namespace polarlint

#endif  // POLARLINT_SYMTAB_H_
