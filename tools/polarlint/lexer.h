#ifndef POLARLINT_LEXER_H_
#define POLARLINT_LEXER_H_

// polarlint's front end: comment/literal scrubbing, a C++ tokenizer, and
// the handful of lexical helpers every pass shares.
//
// The scrubber blanks comments and string/char literals (newlines kept) so
// downstream scans never match inside prose, while recording per-line
// comment text so `// polarlint: allow(...)` escapes survive scrubbing.
// The tokenizer runs over the SCRUBBED text and produces identifiers,
// numbers and punctuators (multi-character operators the analyses care
// about — `::`, `->` — are single tokens) with byte offsets and 1-based
// lines, which is what the symbol table and the semantic passes walk.

#include <string>
#include <vector>

namespace polarlint {

// Source text with comments and string/char literals blanked out (replaced
// by spaces, newlines preserved), plus the comment text per line so
// allow() annotations can be looked up after scrubbing.
struct Scrubbed {
  std::string text;
  std::vector<std::string> comment_on_line;  // index 0 unused; 1-based
  std::vector<bool> code_on_line;            // non-space scrubbed content
};

Scrubbed Scrub(const std::string& src);

// ---- tokens ---------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  size_t offset = 0;  // byte offset into the scrubbed text
  int line = 0;       // 1-based
};

// Tokenizes scrubbed text. Multi-char punctuators kept whole: :: -> .* ...
// (only the ones the analyses consume; the rest split into single chars).
std::vector<Token> Tokenize(const std::string& scrubbed_text);

// ---- lexical helpers -------------------------------------------------------

bool IsIdentChar(char c);

int LineOf(const std::string& text, size_t pos);

// Occurrences of `token` in scrubbed text with identifier boundaries on
// both sides.
std::vector<size_t> TokenHits(const std::string& text,
                              const std::string& token);

size_t SkipSpaces(const std::string& text, size_t pos);

bool StartsWith(const std::string& s, const std::string& prefix);

std::string Trim(const std::string& s);

// Index of the '}' matching the '{' at `open` (text.size() if unmatched).
size_t MatchBrace(const std::string& text, size_t open);

// Index of the ')' matching the '(' at `open` (text.size() if unmatched).
size_t MatchParen(const std::string& text, size_t open);

// Removes balanced <...> spans (template argument lists) so that a '(' left
// over marks a function rather than std::function<void()> and friends.
// Unbalanced '<' (shifts, comparisons) are kept as-is.
std::string StripAngles(const std::string& s);

// Start of the receiver chain ending at the method token at `pos`: for
// `node->lock_fusion()->Release` it walks back over `()` segments and
// identifiers joined by `.` / `->` / `::` and returns the index of `node`.
// A bare (unqualified) call returns `pos` itself. Stops conservatively at
// anything it cannot parse (e.g. a cast), leaving the chain shorter.
size_t ChainStart(const std::string& text, size_t pos);

// Last identifier token inside `expr` (empty if none): the member name of
// `state_->mu`, `*ctx_->commit_mu`, or a bare `mu_`.
std::string TrailingIdent(const std::string& expr);

// True when the line (or a contiguous comment block immediately above it)
// carries `polarlint: <key>(<what>)` — the shared engine behind allow(),
// unguarded() and seqlock-payload() escapes.
bool LineHasMarker(const Scrubbed& s, int line, const std::string& key,
                   const std::string& what);

// allow(<rule>) convenience over LineHasMarker.
bool LineAllows(const Scrubbed& s, int line, const std::string& rule);

}  // namespace polarlint

#endif  // POLARLINT_LEXER_H_
