// Static lock-order graph. Extracts every RankedMutex acquisition per
// function body (scoped guards, manual .lock()/.lock_shared() with their
// .unlock() extent, REQUIRES-annotated lambdas, AssertHeld), inlines one
// call level, and builds the global acquired-while-held graph:
//
//   - an edge whose acquired rank is not strictly below the held rank is a
//     declared-rank violation (same rank needs SameRank::kAllow on BOTH
//     mutexes),
//   - a strongly connected component of two or more mutexes is a potential
//     static deadlock cycle even when every edge individually passes the
//     rank check (the same-rank kAllow pair the RUNTIME checker can only
//     catch if a test happens to interleave the two paths),
//   - self-edges on a SameRank::kAllow mutex are the sanctioned page-latch
//     crabbing pattern and are excused.
//
// Mutex identity is resolved conservatively: a member of the enclosing
// class wins; otherwise a mutex member name unique across the corpus
// resolves to its owner; anything else is dropped from the graph rather
// than guessed. The full edge list lands in the JSON sidecar for CI
// diffing regardless of violations.

#include <cctype>
#include <map>
#include <set>

#include "lexer.h"
#include "rules.h"

namespace polarlint {

namespace {

struct Acq {
  std::string node;  // "Class::mutex"
  std::string rank;  // "kPageLatch" etc., "" unresolved
  bool same_allow = false;
  size_t pos = 0;  // body-relative
  size_t end = 0;  // body-relative extent while held
  // An assertion that the lock is ALREADY held (REQUIRES lambda, AssertHeld)
  // contributes as a held-source but is not an acquisition (edge target).
  bool assertion = false;
};

struct FnLocks {
  std::vector<Acq> entry;   // held on entry (REQUIRES, AssertHeld)
  std::vector<Acq> events;  // acquisitions inside the body
};

// End of the innermost block containing `pos` (body-relative).
size_t EnclosingBlockEnd(const std::string& body, size_t pos) {
  std::vector<size_t> stack;
  for (size_t i = 0; i < pos && i < body.size(); ++i) {
    if (body[i] == '{') stack.push_back(i);
    if (body[i] == '}' && !stack.empty()) stack.pop_back();
  }
  if (stack.empty()) return body.size();
  return MatchBrace(body, stack.back());
}

Acq MakeAcq(const SymbolTable& symtab, const std::string& cls,
            const std::string& trailing, size_t pos, size_t end) {
  Acq a;
  std::string owner;
  const MutexMember* mu = symtab.ResolveMutex(cls, trailing, &owner);
  if (!mu) return a;  // node stays empty: unresolved
  a.node = owner + "::" + mu->name;
  a.rank = mu->rank;
  a.same_allow = mu->same_allow;
  a.pos = pos;
  a.end = end;
  return a;
}

FnLocks ExtractLocks(const Corpus& corpus, const FunctionDef& fn) {
  FnLocks out;
  const std::string& text = corpus.files[fn.file].scrubbed.text;
  const std::string body =
      text.substr(fn.body_open, fn.body_close - fn.body_open + 1);
  const SymbolTable& st = corpus.symtab;

  for (const std::string& req : fn.requires_mutexes) {
    Acq a = MakeAcq(st, fn.class_name, req, 0, body.size());
    if (!a.node.empty()) out.entry.push_back(a);
  }

  // Scoped guards.
  static const char* kGuards[] = {
      "MutexLock",   "UniqueLock",  "ReaderLock",  "WriterLock",
      "lock_guard",  "unique_lock", "scoped_lock", "shared_lock"};
  for (const char* g : kGuards) {
    for (size_t q : TokenHits(body, g)) {
      size_t k = SkipSpaces(body, q + std::string(g).size());
      if (k < body.size() && body[k] == '<') {
        int depth = 0;
        while (k < body.size()) {
          if (body[k] == '<') ++depth;
          if (body[k] == '>' && --depth == 0) {
            ++k;
            break;
          }
          ++k;
        }
        k = SkipSpaces(body, k);
      }
      while (k < body.size() && IsIdentChar(body[k])) ++k;
      k = SkipSpaces(body, k);
      if (k >= body.size() || (body[k] != '(' && body[k] != '{')) continue;
      const size_t close =
          body[k] == '(' ? MatchParen(body, k) : MatchBrace(body, k);
      if (close >= body.size()) continue;
      std::string first;
      int depth = 0;
      for (size_t i = k + 1; i < close; ++i) {
        const char c = body[i];
        if (c == '(' || c == '{') ++depth;
        if (c == ')' || c == '}') --depth;
        if (c == ',' && depth == 0) break;
        first += c;
      }
      Acq a = MakeAcq(st, fn.class_name, TrailingIdent(first), q,
                      EnclosingBlockEnd(body, q));
      if (!a.node.empty()) out.events.push_back(a);
    }
  }

  // Manual .lock()/.lock_shared() with extent until the matching .unlock().
  // AssertHeld/AssertAnyHeld count as held-on-entry.
  size_t dot = 0;
  while ((dot = body.find('.', dot)) != std::string::npos) {
    const size_t q = dot++;
    size_t e = q;
    while (e > 0 && std::isspace(static_cast<unsigned char>(body[e - 1]))) --e;
    size_t b = e;
    while (b > 0 && IsIdentChar(body[b - 1])) --b;
    const std::string recv = body.substr(b, e - b);
    if (recv.empty()) continue;
    size_t cb = SkipSpaces(body, q + 1);
    size_t ce = cb;
    while (ce < body.size() && IsIdentChar(body[ce])) ++ce;
    const std::string call = body.substr(cb, ce - cb);
    const size_t open = SkipSpaces(body, ce);
    if (open >= body.size() || body[open] != '(') continue;
    if (call == "lock" || call == "lock_shared") {
      size_t extent = body.size();
      for (size_t r : TokenHits(body, recv)) {
        if (r <= q) continue;
        const size_t rd = SkipSpaces(body, r + recv.size());
        if (rd < body.size() && body[rd] == '.' &&
            StartsWith(body.substr(SkipSpaces(body, rd + 1)), "unlock")) {
          extent = r;
          break;
        }
      }
      Acq a = MakeAcq(st, fn.class_name, recv, q, extent);
      if (!a.node.empty()) out.events.push_back(a);
    } else if (call == "AssertHeld" || call == "AssertAnyHeld") {
      Acq a = MakeAcq(st, fn.class_name, recv, 0, body.size());
      if (!a.node.empty()) out.entry.push_back(a);
    }
  }

  // A REQUIRES(m) lambda inside the body runs with m held (CondVar waits).
  for (const char* m : {"REQUIRES", "REQUIRES_SHARED"}) {
    for (size_t q : TokenHits(body, m)) {
      const size_t open = body.find('(', q);
      if (open == std::string::npos) continue;
      const size_t close = MatchParen(body, open);
      const std::string arg = body.substr(open + 1, close - open - 1);
      Acq a = MakeAcq(st, fn.class_name, TrailingIdent(arg), q,
                      EnclosingBlockEnd(body, q));
      a.assertion = true;
      if (!a.node.empty()) out.events.push_back(a);
    }
  }
  return out;
}

struct EdgeInfo {
  std::string held_rank;
  bool held_allow = false;
  std::string acq_rank;
  bool acq_allow = false;
  int file = -1;
  size_t pos = 0;  // file offset of the inner acquisition
};

}  // namespace

void RunLockOrderPass(const Corpus& corpus, std::vector<Finding>* out,
                      std::vector<LockEdge>* edges) {
  const auto& fns = corpus.symtab.functions();
  std::vector<FnLocks> locks;
  locks.reserve(fns.size());
  for (const FunctionDef& fn : fns) locks.push_back(ExtractLocks(corpus, fn));

  std::map<std::pair<std::string, std::string>, EdgeInfo> graph;
  auto add_edge = [&](const Acq& held, const std::string& acq_node,
                      const std::string& acq_rank, bool acq_allow, int file,
                      size_t file_pos) {
    const auto key = std::make_pair(held.node, acq_node);
    if (graph.count(key)) return;
    EdgeInfo e;
    e.held_rank = held.rank;
    e.held_allow = held.same_allow;
    e.acq_rank = acq_rank;
    e.acq_allow = acq_allow;
    e.file = file;
    e.pos = file_pos;
    graph[key] = e;
  };

  static const std::set<std::string> kKeywords = {
      "if",     "for",    "while",  "switch", "return", "sizeof",
      "catch",  "assert", "static_cast", "co_await", "new", "delete"};

  for (size_t fi = 0; fi < fns.size(); ++fi) {
    const FunctionDef& fn = fns[fi];
    const FnLocks& fl = locks[fi];
    const SourceFile& file = corpus.files[fn.file];
    const std::string& text = file.scrubbed.text;
    const std::string body =
        text.substr(fn.body_open, fn.body_close - fn.body_open + 1);

    auto held_at = [&](size_t pos) {
      std::vector<const Acq*> held;
      for (const Acq& a : fl.entry) held.push_back(&a);
      for (const Acq& a : fl.events) {
        if (a.pos < pos && pos < a.end) held.push_back(&a);
      }
      return held;
    };

    // Direct nesting edges.
    for (const Acq& ev : fl.events) {
      if (ev.assertion) continue;  // held-source only, not an acquisition
      for (const Acq* h : held_at(ev.pos)) {
        if (h == &ev) continue;
        add_edge(*h, ev.node, ev.rank, ev.same_allow, fn.file,
                 fn.body_open + ev.pos);
      }
    }

    // One-level call inlining: a call made while holding locks imports the
    // callee's own acquisitions as edges at the call site.
    size_t i = 0;
    while (i < body.size()) {
      if (!(std::isalpha(static_cast<unsigned char>(body[i])) ||
            body[i] == '_')) {
        ++i;
        continue;
      }
      size_t j = i;
      while (j < body.size() && IsIdentChar(body[j])) ++j;
      const std::string name = body.substr(i, j - i);
      const size_t open = SkipSpaces(body, j);
      const size_t at = i;
      i = j;
      if (open >= body.size() || body[open] != '(') continue;
      if (kKeywords.count(name)) continue;
      const std::vector<const Acq*> held = held_at(at);
      if (held.empty()) continue;
      // Resolve the callee: same-class method for bare calls, otherwise a
      // corpus-unique function name.
      const FunctionDef* callee = nullptr;
      const size_t chain = ChainStart(text, fn.body_open + at);
      if (chain == fn.body_open + at) {
        callee = corpus.symtab.FindMethod(fn.class_name, name);
      }
      if (!callee) {
        const auto cands = corpus.symtab.FindFunctions(name);
        if (cands.size() == 1) callee = cands[0];
      }
      if (!callee || callee == &fn) continue;
      // Find the callee's extracted events.
      for (size_t ci = 0; ci < fns.size(); ++ci) {
        if (&fns[ci] != callee) continue;
        for (const Acq& ev : locks[ci].events) {
          if (ev.assertion) continue;
          for (const Acq* h : held) {
            add_edge(*h, ev.node, ev.rank, ev.same_allow, fn.file,
                     fn.body_open + at);
          }
        }
        break;
      }
    }
  }

  // Emit the sidecar edge list and check each edge's declared ranks.
  for (const auto& [key, e] : graph) {
    const SourceFile& file = corpus.files[e.file];
    const int line = LineOf(file.scrubbed.text, e.pos);
    LockEdge le;
    le.held = key.first;
    le.held_rank = e.held_rank;
    le.acquired = key.second;
    le.acquired_rank = e.acq_rank;
    le.site = file.display + ":" + std::to_string(line);
    edges->push_back(le);

    // Same-mutex self-edges are excluded from the rank check: under
    // flow-insensitive extraction they are indistinguishable from the
    // legitimate unlock-then-relock window (BufferFusion::FlushEntryLocked),
    // cv-wait re-acquisition (PLockManager::Acquire), and thread-body
    // lambdas re-locking the spawner's mutex (StandbyReplicator::Start).
    // Actual recursive acquisition is caught deterministically at runtime
    // by RankedMutex's per-thread stack. The edge still lands in the
    // sidecar above so the graph stays complete.
    if (key.first != key.second) {
      const int held_rank = RankValue(e.held_rank);
      const int acq_rank = RankValue(e.acq_rank);
      if (held_rank < 0 || acq_rank < 0) continue;  // unranked-mutex's domain
      if (acq_rank < held_rank) continue;           // strictly decreasing: ok
      if (acq_rank == held_rank && e.held_allow && e.acq_allow) continue;
      Report(file, e.pos, "lock-order",
             "acquiring " + key.second + " (LockRank::" + e.acq_rank +
                 ") while holding " + key.first + " (LockRank::" + e.held_rank +
                 "): rank must strictly decrease (same rank needs "
                 "SameRank::kAllow on both mutexes)",
             out);
    }
  }

  // Cycle detection over the edge graph (iterative Tarjan SCC). Self-edges
  // are the crabbing pattern, judged by the rank check above; components of
  // two or more mutexes deadlock statically even when every edge passes.
  std::map<std::string, int> id;
  std::vector<std::string> names;
  std::vector<std::vector<int>> adj;
  for (const auto& [key, e] : graph) {
    for (const std::string& n : {key.first, key.second}) {
      if (!id.count(n)) {
        id[n] = static_cast<int>(names.size());
        names.push_back(n);
        adj.emplace_back();
      }
    }
    if (key.first != key.second) adj[id[key.first]].push_back(id[key.second]);
  }
  const int n = static_cast<int>(names.size());
  std::vector<int> index(n, -1), low(n, 0), comp(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0, next_comp = 0;
  for (int root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    // Iterative Tarjan: frame = (node, next child position).
    std::vector<std::pair<int, size_t>> call;
    call.emplace_back(root, 0);
    while (!call.empty()) {
      auto& [v, child] = call.back();
      if (child == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (child < adj[v].size()) {
        const int w = adj[v][child++];
        if (index[w] == -1) {
          call.emplace_back(w, 0);
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        for (;;) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = next_comp;
          if (w == v) break;
        }
        ++next_comp;
      }
      const int done = v;
      call.pop_back();
      if (!call.empty()) {
        low[call.back().first] =
            std::min(low[call.back().first], low[done]);
      }
    }
  }
  std::map<int, std::vector<int>> comps;
  for (int v = 0; v < n; ++v) comps[comp[v]].push_back(v);
  for (const auto& [c, members] : comps) {
    if (members.size() < 2) continue;
    std::string cycle;
    for (const int v : members) {
      if (!cycle.empty()) cycle += " <-> ";
      cycle += names[v];
    }
    // Anchor the finding at some edge inside the component.
    for (const auto& [key, e] : graph) {
      if (comp[id[key.first]] != c || comp[id[key.second]] != c) continue;
      const SourceFile& file = corpus.files[e.file];
      Report(file, e.pos, "lock-order",
             "static deadlock cycle in the acquired-while-held graph: " +
                 cycle + " (every edge passes the rank check individually; "
                 "break the cycle or collapse the locks)",
             out);
      break;
    }
  }
}

}  // namespace polarlint
