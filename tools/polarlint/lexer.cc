#include "lexer.h"

#include <algorithm>
#include <cctype>

namespace polarlint {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Scrubbed Scrub(const std::string& src) {
  Scrubbed out;
  out.text.assign(src.size(), ' ');
  const size_t lines = 2 + std::count(src.begin(), src.end(), '\n');
  out.comment_on_line.assign(lines + 1, std::string());

  size_t i = 0;
  int line = 1;
  auto copy = [&](size_t n) {
    for (size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      out.text[i] = src[i];
      if (src[i] == '\n') ++line;
    }
  };
  auto blank = [&](size_t n, bool record_comment) {
    for (size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      if (src[i] == '\n') {
        out.text[i] = '\n';
        ++line;
      } else {
        out.text[i] = ' ';
        if (record_comment) out.comment_on_line[line].push_back(src[i]);
      }
    }
  };

  while (i < src.size()) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '/' && next == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string::npos) end = src.size();
      blank(end - i, /*record_comment=*/true);
    } else if (c == '/' && next == '*') {
      size_t end = src.find("*/", i + 2);
      end = end == std::string::npos ? src.size() : end + 2;
      blank(end - i, /*record_comment=*/true);
    } else if (c == 'R' && next == '"' && !(i > 0 && IsIdentChar(src[i - 1]))) {
      // Raw string: R"delim( ... )delim"
      size_t open = src.find('(', i + 2);
      if (open == std::string::npos) {
        copy(src.size() - i);
        break;
      }
      const std::string delim = src.substr(i + 2, open - (i + 2));
      const std::string closer = ")" + delim + "\"";
      size_t end = src.find(closer, open + 1);
      end = end == std::string::npos ? src.size() : end + closer.size();
      blank(end - i, /*record_comment=*/false);
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < src.size() && src[j] != quote) {
        if (src[j] == '\\') ++j;
        ++j;
      }
      blank(std::min(j + 1, src.size()) - i, /*record_comment=*/false);
    } else {
      copy(1);
    }
  }
  out.code_on_line.assign(out.comment_on_line.size(), false);
  int l = 1;
  for (const char c : out.text) {
    if (c == '\n') {
      ++l;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      out.code_on_line[l] = true;
    }
  }
  return out;
}

std::vector<Token> Tokenize(const std::string& text) {
  std::vector<Token> toks;
  toks.reserve(text.size() / 6);
  size_t i = 0;
  int line = 1;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i + 1;
      while (j < text.size() && IsIdentChar(text[j])) ++j;
      toks.push_back({TokKind::kIdent, text.substr(i, j - i), i, line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      while (j < text.size() &&
             (IsIdentChar(text[j]) || text[j] == '\'' ||
              ((text[j] == '+' || text[j] == '-') &&
               (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      toks.push_back({TokKind::kNumber, text.substr(i, j - i), i, line});
      i = j;
      continue;
    }
    // Multi-char punctuators the analyses consume whole.
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if ((c == ':' && next == ':') || (c == '-' && next == '>')) {
      toks.push_back({TokKind::kPunct, text.substr(i, 2), i, line});
      i += 2;
      continue;
    }
    toks.push_back({TokKind::kPunct, std::string(1, c), i, line});
    ++i;
  }
  return toks;
}

int LineOf(const std::string& text, size_t pos) {
  return 1 +
         static_cast<int>(std::count(text.begin(), text.begin() + pos, '\n'));
}

std::vector<size_t> TokenHits(const std::string& text,
                              const std::string& token) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t after = pos + token.size();
    const bool right_ok = after >= text.size() || !IsIdentChar(text[after]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = after;
  }
  return hits;
}

size_t SkipSpaces(const std::string& text, size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

size_t MatchBrace(const std::string& text, size_t open) {
  int depth = 0;
  for (size_t j = open; j < text.size(); ++j) {
    if (text[j] == '{') ++depth;
    if (text[j] == '}' && --depth == 0) return j;
  }
  return text.size();
}

size_t MatchParen(const std::string& text, size_t open) {
  int depth = 0;
  for (size_t j = open; j < text.size(); ++j) {
    if (text[j] == '(') ++depth;
    if (text[j] == ')' && --depth == 0) return j;
  }
  return text.size();
}

std::string StripAngles(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '<') {
      int depth = 1;
      size_t j = i + 1;
      for (; j < s.size() && depth > 0; ++j) {
        if (s[j] == '<') ++depth;
        if (s[j] == '>') --depth;
      }
      if (depth == 0) {
        i = j - 1;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

size_t ChainStart(const std::string& text, size_t pos) {
  size_t start = pos;
  for (;;) {
    size_t k = start;
    while (k > 0 && std::isspace(static_cast<unsigned char>(text[k - 1]))) --k;
    size_t conn = 0;
    if (k >= 1 && text[k - 1] == '.') {
      conn = 1;
    } else if (k >= 2 && text[k - 2] == '-' && text[k - 1] == '>') {
      conn = 2;
    } else if (k >= 2 && text[k - 2] == ':' && text[k - 1] == ':') {
      conn = 2;
    }
    if (conn == 0) return start;
    k -= conn;
    while (k > 0 && std::isspace(static_cast<unsigned char>(text[k - 1]))) --k;
    if (k >= 1 && text[k - 1] == ')') {
      // A call segment in the chain, e.g. the `()` of `lock_fusion()`.
      int depth = 0;
      size_t m = k;
      while (m > 0) {
        --m;
        if (text[m] == ')') ++depth;
        if (text[m] == '(' && --depth == 0) break;
      }
      if (depth != 0) return start;
      k = m;
      while (k > 0 && std::isspace(static_cast<unsigned char>(text[k - 1]))) {
        --k;
      }
    }
    if (k == 0 || !IsIdentChar(text[k - 1])) return start;
    while (k > 0 && IsIdentChar(text[k - 1])) --k;
    start = k;
  }
}

std::string TrailingIdent(const std::string& expr) {
  size_t e = expr.size();
  while (e > 0 && !IsIdentChar(expr[e - 1])) --e;
  size_t b = e;
  while (b > 0 && IsIdentChar(expr[b - 1])) --b;
  // A trailing identifier must start with a letter or underscore.
  while (b < e && std::isdigit(static_cast<unsigned char>(expr[b]))) ++b;
  return expr.substr(b, e - b);
}

bool LineHasMarker(const Scrubbed& s, int line, const std::string& key,
                   const std::string& what) {
  std::string needle = "polarlint: " + key + "(";
  if (!what.empty()) needle += what + ")";
  const auto has = [&](int l) {
    return l >= 1 && l < static_cast<int>(s.comment_on_line.size()) &&
           s.comment_on_line[l].find(needle) != std::string::npos;
  };
  // Same line or the line immediately above.
  if (has(line) || has(line - 1)) return true;
  // A contiguous comment-only block immediately above — lets several
  // stacked polarlint escape lines document one declaration.
  for (int l = line - 1; l >= 1 && l < static_cast<int>(s.code_on_line.size()) &&
                         !s.code_on_line[l] && !s.comment_on_line[l].empty();
       --l) {
    if (has(l)) return true;
  }
  return false;
}

bool LineAllows(const Scrubbed& s, int line, const std::string& rule) {
  return LineHasMarker(s, line, "allow", rule);
}

}  // namespace polarlint
