// Capability subset checker: the core of clang's thread-safety analysis,
// reimplemented over the polarlint symbol table so GUARDED_BY/REQUIRES are
// machine-checked on gcc-only hosts.
//
// Every bare (or this->) access to a GUARDED_BY(m) field inside a method of
// the declaring class must be covered by one of:
//   - REQUIRES(m) / REQUIRES_SHARED(m) on the method's declaration or
//     definition (cross-TU: the header's annotation covers the .cc body),
//   - a scoped guard (MutexLock/UniqueLock/ReaderLock/WriterLock,
//     std::lock_guard/unique_lock/scoped_lock/shared_lock) on m earlier in
//     the body,
//   - a direct m.lock()/m.lock_shared()/m.AssertHeld()/m.AssertAnyHeld()
//     earlier in the body,
//   - a REQUIRES(m)-annotated lambda opened earlier in the body (the
//     CondVar-wait pattern).
//
// Deliberate subset (see DESIGN.md §7): flow-insensitive — "earlier in the
// body" ignores brace scopes and unlocks, so release-then-access escapes
// static detection (the runtime rank checker and tsan own that half);
// accesses through another object (`other.field_`) are out of scope because
// the object's identity is untracked; PT_GUARDED_BY pointees are not
// followed. Constructors, destructors and NO_THREAD_SAFETY_ANALYSIS
// functions are exempt, matching clang.

#include <cctype>

#include "lexer.h"
#include "rules.h"

namespace polarlint {

namespace {

// Does `args` (the inside of a guard constructor's parens) name `mu` as its
// first argument? TrailingIdent tolerates &mu, *mu, state->mu.
bool FirstArgIs(const std::string& args, const std::string& mu) {
  std::string first;
  int depth = 0;
  for (const char c : args) {
    if (c == '(' || c == '{') ++depth;
    if (c == ')' || c == '}') --depth;
    if (c == ',' && depth == 0) break;
    first += c;
  }
  return TrailingIdent(first) == mu;
}

// Is `mu` acquired (or asserted held) anywhere in `prefix`?
bool AcquiredIn(const std::string& prefix, const std::string& mu) {
  static const char* kGuards[] = {
      "MutexLock",   "UniqueLock",  "ReaderLock",  "WriterLock",
      "lock_guard",  "unique_lock", "scoped_lock", "shared_lock"};
  for (const char* g : kGuards) {
    for (size_t p : TokenHits(prefix, g)) {
      size_t q = SkipSpaces(prefix, p + std::string(g).size());
      // Optional template argument list: std::lock_guard<...>.
      if (q < prefix.size() && prefix[q] == '<') {
        int depth = 0;
        while (q < prefix.size()) {
          if (prefix[q] == '<') ++depth;
          if (prefix[q] == '>' && --depth == 0) {
            ++q;
            break;
          }
          ++q;
        }
        q = SkipSpaces(prefix, q);
      }
      // Variable name (absent for a temporary — which would be a bug, but
      // not this rule's).
      while (q < prefix.size() && IsIdentChar(prefix[q])) ++q;
      q = SkipSpaces(prefix, q);
      if (q >= prefix.size() || (prefix[q] != '(' && prefix[q] != '{')) {
        continue;
      }
      const size_t close = prefix[q] == '(' ? MatchParen(prefix, q)
                                            : MatchBrace(prefix, q);
      if (close >= prefix.size()) continue;
      if (FirstArgIs(prefix.substr(q + 1, close - q - 1), mu)) return true;
    }
  }
  for (size_t p : TokenHits(prefix, mu)) {
    size_t q = SkipSpaces(prefix, p + mu.size());
    if (q < prefix.size() && prefix[q] == '.') {
      const size_t b = q + 1;
      size_t e = b;
      while (e < prefix.size() && IsIdentChar(prefix[e])) ++e;
      const std::string call = prefix.substr(b, e - b);
      if (call == "lock" || call == "lock_shared" || call == "try_lock" ||
          call == "try_lock_shared" || call == "AssertHeld" ||
          call == "AssertAnyHeld") {
        return true;
      }
    }
  }
  for (const char* m : {"REQUIRES", "REQUIRES_SHARED"}) {
    for (size_t p : TokenHits(prefix, m)) {
      const size_t open = prefix.find('(', p);
      if (open == std::string::npos) continue;
      const size_t close = MatchParen(prefix, open);
      if (!TokenHits(prefix.substr(open + 1, close - open - 1), mu).empty()) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void RunCapabilityPass(const Corpus& corpus, std::vector<Finding>* out) {
  for (const FunctionDef& fn : corpus.symtab.functions()) {
    if (fn.class_name.empty() || fn.is_ctor() || fn.is_dtor() ||
        fn.no_analysis || StartsWith(fn.name, "operator")) {
      continue;
    }
    const ClassInfo* cls = corpus.symtab.FindClass(fn.class_name);
    if (!cls || !cls->HasGuardedFields()) continue;
    const SourceFile& file = corpus.files[fn.file];
    if (!StartsWith(file.rel, "src/")) continue;
    const std::string& text = file.scrubbed.text;
    const std::string body =
        text.substr(fn.body_open, fn.body_close - fn.body_open + 1);

    for (const GuardedField& gf : cls->guarded_fields) {
      if (gf.pointee) continue;  // PT_GUARDED_BY pointees are not followed
      if (gf.mutex.empty()) continue;
      if (fn.requires_mutexes.count(gf.mutex)) continue;  // body covered
      for (size_t hit : TokenHits(body, gf.name)) {
        const size_t pos = fn.body_open + hit;
        // Receiver must be `this` (explicit or implicit): an access through
        // another object is outside the subset.
        const size_t chain = ChainStart(text, pos);
        if (chain != pos) {
          const std::string recv = Trim(text.substr(chain, pos - chain));
          if (recv != "this->" && recv != "this .") {
            // `this->field` is the only qualified receiver in scope.
            if (recv.rfind("this", 0) != 0) continue;
          }
        }
        if (AcquiredIn(body.substr(0, hit), gf.mutex)) continue;
        Report(file, pos, "capability",
               fn.class_name + "::" + fn.name + " accesses '" + gf.name +
                   "' GUARDED_BY(" + gf.mutex + ") without holding it: add "
                   "REQUIRES(" + gf.mutex + ") to the declaration, take a "
                   "scoped guard first, or AssertHeld() on a "
                   "caller-locked path",
               out);
      }
    }
  }
}

}  // namespace polarlint
