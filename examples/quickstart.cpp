// Quickstart: a three-primary PolarDB-MP cluster in one process.
//
// Shows the core promise of the paper: every node can read AND write every
// row — no partitioning, no distributed transactions — with coherence
// provided by PMFS (transaction/buffer/lock fusion) over disaggregated
// shared memory.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "cluster/cluster.h"

using namespace polarmp;  // NOLINT — example brevity

int main() {
  // A cluster with realistic simulated latencies (RDMA ~50us, storage
  // ~1.5ms). Use ZeroLatencyProfile() for instant experimentation.
  ClusterOptions options;
  options.latency = BenchLatencyProfile();

  auto cluster_or = Cluster::Create(options);
  if (!cluster_or.ok()) {
    std::fprintf(stderr, "cluster: %s\n",
                 cluster_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Cluster> cluster = std::move(cluster_or).value();

  // Three primary nodes, all writable.
  DbNode* node1 = cluster->AddNode().value();
  DbNode* node2 = cluster->AddNode().value();
  DbNode* node3 = cluster->AddNode().value();

  // One table, visible cluster-wide.
  if (auto s = cluster->CreateTable("greetings"); !s.ok()) {
    std::fprintf(stderr, "create table: %s\n", s.status().ToString().c_str());
    return 1;
  }

  // Write on node 1.
  {
    TableHandle table = node1->OpenTable("greetings").value();
    Session session(node1, IsolationLevel::kReadCommitted);
    session.Begin().ok();
    session.Insert(table, 1, "hello from node 1");
    session.Insert(table, 2, "polardb-mp is multi-primary");
    if (auto s = session.Commit(); !s.ok()) {
      std::fprintf(stderr, "commit: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // Update the same row on node 2 — an operation that would need a
  // distributed transaction on a shared-nothing system.
  {
    TableHandle table = node2->OpenTable("greetings").value();
    Session session(node2, IsolationLevel::kReadCommitted);
    session.Begin().ok();
    session.Update(table, 2, "updated on node 2 via buffer fusion");
    session.Commit().ok();
  }

  // Read everything on node 3: the page moved node1 -> node2 -> node3
  // through the DBP with one-sided RDMA, never touching storage I/O on the
  // critical path.
  {
    TableHandle table = node3->OpenTable("greetings").value();
    Session session(node3, IsolationLevel::kReadCommitted);
    session.Begin().ok();
    session.Scan(table, 0, 100, [](int64_t key, const std::string& value) {
      std::printf("  row %ld = \"%s\"\n", static_cast<long>(key),
                  value.c_str());
      return true;
    });
    session.Commit().ok();
  }

  std::printf("\nfusion traffic: %llu DBP fetches, %llu pushes, "
              "%llu invalidations, %llu lock RPCs\n",
              static_cast<unsigned long long>(cluster->buffer_fusion()->fetches()),
              static_cast<unsigned long long>(cluster->buffer_fusion()->pushes()),
              static_cast<unsigned long long>(
                  cluster->buffer_fusion()->invalidations()),
              static_cast<unsigned long long>(
                  cluster->lock_fusion()->plock_acquire_rpcs()));
  return 0;
}
