// Bank transfers from every primary node at once.
//
// Classic consistency demo: N accounts, concurrent transfers issued on all
// three nodes against the SAME rows. The embedded row locks (§4.3.2) and
// Lock Fusion's wait-for graph keep the invariant — total balance constant —
// while deadlock victims are detected and retried.
//
// Build & run:   ./build/examples/bank_transfer

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/random.h"

using namespace polarmp;  // NOLINT — example brevity

namespace {
constexpr int kAccounts = 50;
constexpr int64_t kInitialBalance = 1'000;
constexpr int kTransfersPerWorker = 150;

int64_t ParseBalance(const std::string& s) { return std::stoll(s); }
}  // namespace

int main() {
  auto cluster = Cluster::Create(ClusterOptions()).value();
  std::vector<DbNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(cluster->AddNode().value());
  cluster->CreateTable("accounts").status().ok();

  // Seed the accounts from node 1.
  {
    TableHandle table = nodes[0]->OpenTable("accounts").value();
    Session session(nodes[0], IsolationLevel::kReadCommitted);
    session.Begin().ok();
    for (int64_t acc = 0; acc < kAccounts; ++acc) {
      session.Insert(table, acc, std::to_string(kInitialBalance));
    }
    session.Commit().ok();
  }

  std::atomic<int> committed{0}, deadlock_retries{0};
  std::vector<std::thread> workers;
  for (size_t n = 0; n < nodes.size(); ++n) {
    workers.emplace_back([&, n] {
      DbNode* node = nodes[n];
      TableHandle table = node->OpenTable("accounts").value();
      Random rng(17 * (n + 1));
      for (int t = 0; t < kTransfersPerWorker; ++t) {
        const int64_t from = static_cast<int64_t>(rng.Uniform(kAccounts));
        int64_t to = static_cast<int64_t>(rng.Uniform(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        const int64_t amount = 1 + static_cast<int64_t>(rng.Uniform(20));

        for (;;) {  // retry deadlock victims / lock timeouts
          Session session(node, IsolationLevel::kReadCommitted);
          session.Begin().ok();
          auto from_balance = session.Get(table, from);
          auto to_balance = session.Get(table, to);
          if (!from_balance.ok() || !to_balance.ok()) break;
          // Lock in a consistent order to keep deadlocks rare (they are
          // still possible across nodes; Lock Fusion aborts one victim).
          const Status s1 = session.Update(
              table, std::min(from, to),
              std::to_string(ParseBalance(from < to ? *from_balance
                                                    : *to_balance) +
                             (from < to ? -amount : amount)));
          if (!s1.ok()) {
            deadlock_retries.fetch_add(1);
            continue;
          }
          const Status s2 = session.Update(
              table, std::max(from, to),
              std::to_string(ParseBalance(from < to ? *to_balance
                                                    : *from_balance) +
                             (from < to ? amount : -amount)));
          if (!s2.ok()) {
            deadlock_retries.fetch_add(1);
            continue;
          }
          if (session.Commit().ok()) {
            committed.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  // Audit from a fourth, freshly added node.
  DbNode* auditor = cluster->AddNode().value();
  TableHandle table = auditor->OpenTable("accounts").value();
  Session session(auditor, IsolationLevel::kSnapshotIsolation);
  session.Begin().ok();
  int64_t total = 0;
  session.Scan(table, 0, kAccounts, [&](int64_t, const std::string& value) {
    total += ParseBalance(value);
    return true;
  });
  session.Commit().ok();

  const int64_t expected = kAccounts * kInitialBalance;
  std::printf("transfers committed: %d (deadlock retries: %d)\n",
              committed.load(), deadlock_retries.load());
  std::printf("total balance: %lld (expected %lld) — %s\n",
              static_cast<long long>(total),
              static_cast<long long>(expected),
              total == expected ? "CONSISTENT" : "*** BROKEN ***");
  std::printf("cross-node row-lock waits: %llu, deadlocks detected: %llu\n",
              static_cast<unsigned long long>(
                  cluster->lock_fusion()->rlock_waits()),
              static_cast<unsigned long long>(
                  cluster->lock_fusion()->deadlocks_detected()));
  return total == expected ? 0 : 1;
}
