// Bank transfers from every primary node at once.
//
// Classic consistency demo: N accounts, concurrent transfers issued on all
// three nodes against the SAME rows. The embedded row locks (§4.3.2) and
// Lock Fusion's wait-for graph keep the invariant — total balance constant —
// while deadlock victims are detected and retried.
//
// The transfer reads MUST be locking reads (Session::GetForUpdate). A plain
// snapshot Get under read committed re-creates the textbook lost update:
// two transfers read the same base balance, both compute new values, and
// one update silently overwrites the other — the total drifts. GetForUpdate
// serializes the read-modify-write cycles on the embedded row lock
// (acquired in key order to keep deadlocks rare).
//
// Build & run:   ./build/examples/bank_transfer
// Seeded run:    POLARMP_BANK_SEED=23 ./build/examples/bank_transfer
// Exit code is the self-check: 0 iff the total balance is exact.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/random.h"

using namespace polarmp;  // NOLINT — example brevity

namespace {
constexpr int kAccounts = 50;
constexpr int64_t kInitialBalance = 1'000;
constexpr int kTransfersPerWorker = 150;

int64_t ParseBalance(const std::string& s) { return std::stoll(s); }

uint64_t SeedFromEnv() {
  if (const char* v = std::getenv("POLARMP_BANK_SEED")) {
    return std::strtoull(v, nullptr, 10);
  }
  return 17;
}
}  // namespace

int main() {
  const uint64_t seed = SeedFromEnv();
  auto cluster = Cluster::Create(ClusterOptions()).value();
  std::vector<DbNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(cluster->AddNode().value());
  cluster->CreateTable("accounts").status().ok();

  // Seed the accounts from node 1.
  {
    TableHandle table = nodes[0]->OpenTable("accounts").value();
    Session session(nodes[0], IsolationLevel::kReadCommitted);
    session.Begin().ok();
    for (int64_t acc = 0; acc < kAccounts; ++acc) {
      session.Insert(table, acc, std::to_string(kInitialBalance));
    }
    session.Commit().ok();
  }

  std::atomic<int> committed{0}, conflict_retries{0};
  std::vector<std::thread> workers;
  for (size_t n = 0; n < nodes.size(); ++n) {
    workers.emplace_back([&, n] {
      DbNode* node = nodes[n];
      TableHandle table = node->OpenTable("accounts").value();
      Random rng(seed * (n + 1));
      for (int t = 0; t < kTransfersPerWorker; ++t) {
        const int64_t from = static_cast<int64_t>(rng.Uniform(kAccounts));
        int64_t to = static_cast<int64_t>(rng.Uniform(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        const int64_t amount = 1 + static_cast<int64_t>(rng.Uniform(20));
        const int64_t lo = std::min(from, to);
        const int64_t hi = std::max(from, to);

        for (;;) {  // retry deadlock victims / lock timeouts
          Session session(node, IsolationLevel::kReadCommitted);
          session.Begin().ok();
          // Locking reads in key order: the row locks pin both balances
          // until commit, so the arithmetic below cannot race anyone.
          auto lo_balance = session.GetForUpdate(table, lo);
          if (!lo_balance.ok()) {
            conflict_retries.fetch_add(1);
            continue;
          }
          auto hi_balance = session.GetForUpdate(table, hi);
          if (!hi_balance.ok()) {
            conflict_retries.fetch_add(1);
            continue;
          }
          const int64_t lo_delta = lo == from ? -amount : amount;
          const Status s1 = session.Update(
              table, lo, std::to_string(ParseBalance(*lo_balance) + lo_delta));
          if (!s1.ok()) {
            conflict_retries.fetch_add(1);
            continue;
          }
          const Status s2 = session.Update(
              table, hi, std::to_string(ParseBalance(*hi_balance) - lo_delta));
          if (!s2.ok()) {
            conflict_retries.fetch_add(1);
            continue;
          }
          if (session.Commit().ok()) {
            committed.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  // Audit from a fourth, freshly added node.
  DbNode* auditor = cluster->AddNode().value();
  TableHandle table = auditor->OpenTable("accounts").value();
  Session session(auditor, IsolationLevel::kSnapshotIsolation);
  session.Begin().ok();
  int64_t total = 0;
  session.Scan(table, 0, kAccounts, [&](int64_t, const std::string& value) {
    total += ParseBalance(value);
    return true;
  });
  session.Commit().ok();

  const int64_t expected = kAccounts * kInitialBalance;
  std::printf("seed %llu: transfers committed: %d (conflict retries: %d)\n",
              static_cast<unsigned long long>(seed), committed.load(),
              conflict_retries.load());
  std::printf("total balance: %lld (expected %lld) — %s\n",
              static_cast<long long>(total),
              static_cast<long long>(expected),
              total == expected ? "CONSISTENT" : "*** BROKEN ***");
  std::printf("cross-node row-lock waits: %llu, deadlocks detected: %llu\n",
              static_cast<unsigned long long>(
                  cluster->lock_fusion()->rlock_waits()),
              static_cast<unsigned long long>(
                  cluster->lock_fusion()->deadlocks_detected()));
  return total == expected ? 0 : 1;
}
