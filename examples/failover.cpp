// Crash and fast recovery (§5.5, Fig. 15).
//
// Two primaries on disjoint tables. Node 1 is killed mid-flight with a
// transaction open; node 2 keeps serving uninterrupted. On restart, node 1
// replays its redo from the checkpoint (fetching pages from disaggregated
// memory, not storage), rolls the in-flight transaction back and rejoins.
//
// Build & run:   ./build/examples/failover

#include <cstdio>

#include "cluster/cluster.h"

using namespace polarmp;  // NOLINT — example brevity

int main() {
  auto cluster = Cluster::Create(ClusterOptions()).value();
  DbNode* node1 = cluster->AddNode().value();
  DbNode* node2 = cluster->AddNode().value();
  cluster->CreateTable("t1").status().ok();
  cluster->CreateTable("t2").status().ok();

  // Committed data on node 1 + one in-flight transaction.
  TableHandle t1 = node1->OpenTable("t1").value();
  {
    Session session(node1, IsolationLevel::kReadCommitted);
    session.Begin().ok();
    for (int i = 0; i < 100; ++i) {
      session.Insert(t1, i, "durable-" + std::to_string(i));
    }
    session.Commit().ok();
  }
  Session in_flight(node1, IsolationLevel::kReadCommitted);
  in_flight.Begin().ok();
  in_flight.Update(t1, 1, "must-disappear");
  {
    // A later commit forces the log, making the in-flight changes durable
    // but uncommitted — exactly what recovery must roll back.
    Session forcer(node1, IsolationLevel::kReadCommitted);
    forcer.Begin().ok();
    forcer.Put(t1, 100, "forcer");
    forcer.Commit().ok();
  }

  const NodeId crashed = node1->id();
  std::printf("crashing node %u...\n", crashed);
  cluster->CrashNode(crashed).ok();
  in_flight.Disarm();  // the crash took the transaction with it

  // The survivor keeps working.
  TableHandle t2 = node2->OpenTable("t2").value();
  {
    Session session(node2, IsolationLevel::kReadCommitted);
    session.Begin().ok();
    session.Put(t2, 1, "node 2 unaffected");
    session.Commit().ok();
    std::printf("node 2 served a write during the outage\n");
  }

  std::printf("restarting node %u with recovery...\n", crashed);
  DbNode* revived = cluster->RestartNode(crashed).value();
  TableHandle t1b = revived->OpenTable("t1").value();
  {
    Session session(revived, IsolationLevel::kReadCommitted);
    session.Begin().ok();
    std::printf("  row 1  = \"%s\" (in-flight update rolled back)\n",
                session.Get(t1b, 1).value().c_str());
    std::printf("  row 99 = \"%s\" (committed data recovered)\n",
                session.Get(t1b, 99).value().c_str());
    session.Commit().ok();
  }
  return 0;
}
