// Global secondary indexes without distributed transactions (§5.4).
//
// An "orders" table with two GSIs (customer id, product id). In PolarDB-MP
// a GSI is just another B-tree every node can update directly, so an
// insert touching the base row + 2 index entries is still a single-node
// transaction. A shared-nothing system partitions the GSIs separately and
// pays a two-phase commit for the same statement.
//
// Build & run:   ./build/examples/secondary_index

#include <cstdio>

#include "cluster/cluster.h"

using namespace polarmp;  // NOLINT — example brevity

int main() {
  auto cluster = Cluster::Create(ClusterOptions()).value();
  DbNode* node1 = cluster->AddNode().value();
  DbNode* node2 = cluster->AddNode().value();

  // Two GSIs: column 0 = customer id, column 1 = product id.
  cluster->CreateTable("orders", /*num_indexes=*/2).status().ok();
  TableHandle orders1 = node1->OpenTable("orders").value();
  TableHandle orders2 = node2->OpenTable("orders").value();

  // Insert orders on node 1. Values carry the indexed columns up front
  // (EncodeIndexedValue), followed by an opaque payload.
  {
    Session session(node1, IsolationLevel::kReadCommitted);
    session.Begin().ok();
    //                         order id        customer  product
    session.Insert(orders1, 1001, EncodeIndexedValue({7, 42}, "2x widget"));
    session.Insert(orders1, 1002, EncodeIndexedValue({7, 43}, "1x gadget"));
    session.Insert(orders1, 1003, EncodeIndexedValue({9, 42}, "5x widget"));
    session.Commit().ok();
  }

  // Query by customer — on the OTHER node, through the GSI.
  {
    Session session(node2, IsolationLevel::kReadCommitted);
    session.Begin().ok();
    auto orders_of_7 = session.LookupByIndex(orders2, /*index=*/0, 7).value();
    std::printf("customer 7 has %zu orders:", orders_of_7.size());
    for (int64_t pk : orders_of_7) std::printf(" %lld", static_cast<long long>(pk));
    std::printf("\n");
    auto buyers_of_42 = session.LookupByIndex(orders2, /*index=*/1, 42).value();
    std::printf("product 42 appears in %zu orders\n", buyers_of_42.size());
    session.Commit().ok();
  }

  // Move order 1002 to customer 9 on node 2; both GSIs follow, still one
  // single-node transaction.
  {
    Session session(node2, IsolationLevel::kReadCommitted);
    session.Begin().ok();
    session.Update(orders2, 1002, EncodeIndexedValue({9, 43}, "1x gadget"));
    session.Commit().ok();
  }

  {
    Session session(node1, IsolationLevel::kReadCommitted);
    session.Begin().ok();
    std::printf("after reassignment: customer 7 -> %zu orders, "
                "customer 9 -> %zu orders\n",
                session.LookupByIndex(orders1, 0, 7).value().size(),
                session.LookupByIndex(orders1, 0, 9).value().size());
    session.Commit().ok();
  }
  return 0;
}
