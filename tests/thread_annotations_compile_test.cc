// Compile-time proof that the capability-annotation vocabulary composes:
// a class annotated the project way (DESIGN.md §7) must build warning-free
// under Clang's -Werror=thread-safety (check.sh wthread) AND under plain
// gcc, where the macros in common/thread_annotations.h expand to nothing.
//
// Everything here is exercised by the analysis at compile time; the single
// runtime test at the bottom only keeps the TU honest (the methods do what
// the annotations say).

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

#include <map>
#include <string>

#include <gtest/gtest.h>

namespace polarmp {
namespace {

// The canonical shapes: GUARDED_BY fields, REQUIRES helpers that drop and
// retake the lock themselves, EXCLUDES entry points, ASSERT_CAPABILITY
// re-entry, TRY_ACQUIRE, CondVar waits at both levels, and reader/writer
// annotations over a RankedSharedMutex.
class AnnotatedCounter {
 public:
  AnnotatedCounter() = default;

  void Add(uint64_t delta) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    AddLocked(delta);
  }

  // REQUIRES helper that opens an unlocked window mid-flight, operating on
  // the mutex directly (guards passed by reference are opaque to the
  // analysis).
  void AddSlowly(uint64_t delta) REQUIRES(mu_) {
    mu_.unlock();
    // ... simulate off-lock work ...
    mu_.lock();
    AddLocked(delta);
  }

  bool TryAdd(uint64_t delta) EXCLUDES(mu_) {
    if (!mu_.try_lock()) return false;
    AddLocked(delta);
    mu_.unlock();
    return true;
  }

  // ASSERT_CAPABILITY re-entry: AssertHeld() is annotated
  // ASSERT_CAPABILITY(this), so after the runtime check the analysis
  // treats the lock as held — no REQUIRES contract needed on the caller
  // (dynamic-frame latches use this shape at their choke points).
  void AddAsserted(uint64_t delta) {
    mu_.AssertHeld();
    AddLocked(delta);
  }

  void WaitForAtLeast(uint64_t target) EXCLUDES(mu_) {
    UniqueLock lock(mu_);
    while (value_ < target) cv_.wait(lock);
  }

  // CV wait inside a REQUIRES helper: wait on the mutex itself (CondVar is
  // condition_variable_any, any BasicLockable works).
  void WaitForAtLeastLocked(uint64_t target) REQUIRES(mu_) {
    while (value_ < target) cv_.wait(mu_);
  }

  uint64_t value() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  void AddLocked(uint64_t delta) REQUIRES(mu_) {
    value_ += delta;
    cv_.notify_all();
  }

  mutable RankedMutex mu_{LockRank::kTestLow, "annotations.counter"};
  CondVar cv_;
  uint64_t value_ GUARDED_BY(mu_) = 0;
};

class AnnotatedDirectory {
 public:
  void Put(const std::string& key, std::string value) EXCLUDES(mu_) {
    WriterLock lock(mu_);
    entries_[key] = std::move(value);
  }

  bool Contains(const std::string& key) const EXCLUDES(mu_) {
    ReaderLock lock(mu_);
    return entries_.count(key) != 0;
  }

  size_t SizeLocked() const REQUIRES_SHARED(mu_) { return entries_.size(); }

  size_t Size() const EXCLUDES(mu_) {
    ReaderLock lock(mu_);
    return SizeLocked();
  }

 private:
  mutable RankedSharedMutex mu_{LockRank::kTestMid, "annotations.directory"};
  std::map<std::string, std::string> entries_ GUARDED_BY(mu_);
};

TEST(ThreadAnnotationsCompileTest, AnnotatedShapesBehave) {
  AnnotatedCounter counter;
  counter.Add(2);
  EXPECT_TRUE(counter.TryAdd(3));
  counter.WaitForAtLeast(5);
  EXPECT_EQ(counter.value(), 5u);

  AnnotatedDirectory dir;
  dir.Put("k", "v");
  EXPECT_TRUE(dir.Contains("k"));
  EXPECT_FALSE(dir.Contains("missing"));
  EXPECT_EQ(dir.Size(), 1u);
}

}  // namespace
}  // namespace polarmp
