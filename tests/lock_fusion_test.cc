#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "obs/metrics.h"
#include "pmfs/lock_fusion.h"

namespace polarmp {
namespace {

class LockFusionTest : public ::testing::Test {
 protected:
  LockFusionTest() : fabric_(ZeroLatencyProfile()), fusion_(&fabric_) {
    fusion_.AddNode(1, [this](PageId p) { Push(&negotiations_1_, p); });
    fusion_.AddNode(2, [this](PageId p) { Push(&negotiations_2_, p); });
  }

  // Negotiation handlers run on waiter threads while test bodies poll, so
  // the vectors are mutex-guarded.
  void Push(std::vector<PageId>* v, PageId p) {
    std::lock_guard lock(neg_mu_);
    v->push_back(p);
  }
  std::vector<PageId> Negotiations(const std::vector<PageId>& v) {
    std::lock_guard lock(neg_mu_);
    return v;
  }
  void AwaitNegotiation(const std::vector<PageId>& v) {
    while (Negotiations(v).empty()) std::this_thread::yield();
  }

  Fabric fabric_;
  LockFusion fusion_;
  std::mutex neg_mu_;
  std::vector<PageId> negotiations_1_;
  std::vector<PageId> negotiations_2_;
};

TEST_F(LockFusionTest, SharedLocksCompatible) {
  const PageId page{1, 1};
  ASSERT_TRUE(fusion_.AcquirePLock(1, page, LockMode::kShared, 1000).ok());
  ASSERT_TRUE(fusion_.AcquirePLock(2, page, LockMode::kShared, 1000).ok());
  EXPECT_TRUE(fusion_.HoldsPLock(1, page, LockMode::kShared));
  EXPECT_TRUE(fusion_.HoldsPLock(2, page, LockMode::kShared));
  EXPECT_TRUE(Negotiations(negotiations_1_).empty());
  EXPECT_TRUE(Negotiations(negotiations_2_).empty());
}

TEST_F(LockFusionTest, ExclusiveConflictNegotiates) {
  const PageId page{1, 1};
  ASSERT_TRUE(fusion_.AcquirePLock(1, page, LockMode::kExclusive, 1000).ok());

  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    ASSERT_TRUE(fusion_.AcquirePLock(2, page, LockMode::kExclusive, 5000).ok());
    granted = true;
  });
  // The waiter's conflict sends node 1 a negotiation message.
  AwaitNegotiation(negotiations_1_);
  EXPECT_EQ(Negotiations(negotiations_1_)[0], page);
  EXPECT_FALSE(granted.load());
  ASSERT_TRUE(fusion_.ReleasePLock(1, page).ok());
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_TRUE(fusion_.HoldsPLock(2, page, LockMode::kExclusive));
}

TEST_F(LockFusionTest, AlreadyHeldIsIdempotent) {
  const PageId page{1, 1};
  ASSERT_TRUE(fusion_.AcquirePLock(1, page, LockMode::kExclusive, 1000).ok());
  ASSERT_TRUE(fusion_.AcquirePLock(1, page, LockMode::kShared, 1000).ok());
  ASSERT_TRUE(fusion_.AcquirePLock(1, page, LockMode::kExclusive, 1000).ok());
  // One release clears the node's (single) hold.
  ASSERT_TRUE(fusion_.ReleasePLock(1, page).ok());
  EXPECT_FALSE(fusion_.HoldsPLock(1, page, LockMode::kShared));
}

TEST_F(LockFusionTest, UpgradeWaitsForOtherSharers) {
  const PageId page{1, 1};
  ASSERT_TRUE(fusion_.AcquirePLock(1, page, LockMode::kShared, 1000).ok());
  ASSERT_TRUE(fusion_.AcquirePLock(2, page, LockMode::kShared, 1000).ok());
  std::atomic<bool> upgraded{false};
  std::thread upgrader([&] {
    ASSERT_TRUE(fusion_.AcquirePLock(1, page, LockMode::kExclusive, 5000).ok());
    upgraded = true;
  });
  AwaitNegotiation(negotiations_2_);
  EXPECT_FALSE(upgraded.load());
  ASSERT_TRUE(fusion_.ReleasePLock(2, page).ok());
  upgrader.join();
  EXPECT_TRUE(fusion_.HoldsPLock(1, page, LockMode::kExclusive));
}

TEST_F(LockFusionTest, TimeoutReturnsBusy) {
  const PageId page{1, 1};
  ASSERT_TRUE(fusion_.AcquirePLock(1, page, LockMode::kExclusive, 1000).ok());
  const Status s = fusion_.AcquirePLock(2, page, LockMode::kExclusive, 50);
  EXPECT_TRUE(s.IsBusy());
  // Holder unaffected.
  EXPECT_TRUE(fusion_.HoldsPLock(1, page, LockMode::kExclusive));
  // After release the page is grantable again.
  ASSERT_TRUE(fusion_.ReleasePLock(1, page).ok());
  EXPECT_TRUE(fusion_.AcquirePLock(2, page, LockMode::kExclusive, 1000).ok());
}

TEST_F(LockFusionTest, FifoOrdering) {
  const PageId page{1, 1};
  fusion_.AddNode(3, [](PageId) {});
  ASSERT_TRUE(fusion_.AcquirePLock(1, page, LockMode::kExclusive, 1000).ok());
  std::vector<int> grant_order;
  std::mutex mu;
  std::thread t2([&] {
    ASSERT_TRUE(fusion_.AcquirePLock(2, page, LockMode::kExclusive, 5000).ok());
    {
      std::lock_guard lock(mu);
      grant_order.push_back(2);
    }
    ASSERT_TRUE(fusion_.ReleasePLock(2, page).ok());
  });
  AwaitNegotiation(negotiations_1_);
  std::thread t3([&] {
    ASSERT_TRUE(fusion_.AcquirePLock(3, page, LockMode::kExclusive, 5000).ok());
    std::lock_guard lock(mu);
    grant_order.push_back(3);
  });
  // Give node 3 time to enqueue behind node 2.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(fusion_.ReleasePLock(1, page).ok());
  t2.join();
  t3.join();
  ASSERT_EQ(grant_order.size(), 2u);
  EXPECT_EQ(grant_order[0], 2);
  EXPECT_EQ(grant_order[1], 3);
}

TEST_F(LockFusionTest, RemoveNodeReleasesSharedKeepsExclusiveGhost) {
  const PageId spage{1, 1}, xpage{1, 2};
  ASSERT_TRUE(fusion_.AcquirePLock(1, spage, LockMode::kShared, 1000).ok());
  ASSERT_TRUE(fusion_.AcquirePLock(1, xpage, LockMode::kExclusive, 1000).ok());
  fusion_.RemoveNode(1);
  // Shared hold gone: node 2 can take X immediately.
  EXPECT_TRUE(fusion_.AcquirePLock(2, spage, LockMode::kExclusive, 100).ok());
  // Exclusive hold is a ghost: node 2 must wait for recovery.
  EXPECT_TRUE(fusion_.AcquirePLock(2, xpage, LockMode::kShared, 50).IsBusy());
  fusion_.ReleaseAllHolds(1);
  EXPECT_TRUE(fusion_.AcquirePLock(2, xpage, LockMode::kShared, 100).ok());
}

TEST_F(LockFusionTest, RlockWaitNotify) {
  const GTrxId waiter = MakeGTrxId(1, 1, 1);
  const GTrxId holder = MakeGTrxId(2, 1, 1);
  ASSERT_TRUE(fusion_.RegisterWait(waiter, holder).ok());
  std::atomic<bool> woke{false};
  std::thread t([&] {
    ASSERT_TRUE(fusion_.AwaitHolder(waiter, 5000).ok());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  fusion_.NotifyTrxFinished(holder);
  t.join();
  EXPECT_TRUE(woke.load());
}

TEST_F(LockFusionTest, RlockNotifyBeforeAwaitStillWakes) {
  const GTrxId waiter = MakeGTrxId(1, 1, 1);
  const GTrxId holder = MakeGTrxId(2, 1, 1);
  ASSERT_TRUE(fusion_.RegisterWait(waiter, holder).ok());
  fusion_.NotifyTrxFinished(holder);  // lands before AwaitHolder
  EXPECT_TRUE(fusion_.AwaitHolder(waiter, 1000).ok());
}

TEST_F(LockFusionTest, RlockTimeout) {
  const GTrxId waiter = MakeGTrxId(1, 1, 1);
  const GTrxId holder = MakeGTrxId(2, 1, 1);
  ASSERT_TRUE(fusion_.RegisterWait(waiter, holder).ok());
  EXPECT_TRUE(fusion_.AwaitHolder(waiter, 30).IsBusy());
  // The edge was cleaned up: registering again succeeds.
  ASSERT_TRUE(fusion_.RegisterWait(waiter, holder).ok());
  fusion_.CancelWait(waiter);
}

TEST_F(LockFusionTest, DeadlockDetected) {
  const GTrxId a = MakeGTrxId(1, 1, 1);
  const GTrxId b = MakeGTrxId(2, 1, 1);
  const GTrxId c = MakeGTrxId(2, 2, 1);
  ASSERT_TRUE(fusion_.RegisterWait(a, b).ok());
  ASSERT_TRUE(fusion_.RegisterWait(b, c).ok());
  // c → a closes the cycle.
  EXPECT_TRUE(fusion_.RegisterWait(c, a).IsAborted());
  EXPECT_EQ(fusion_.deadlocks_detected(), 1u);
  // Non-cyclic edge still fine.
  ASSERT_TRUE(fusion_.RegisterWait(c, MakeGTrxId(1, 9, 1)).ok());
  fusion_.CancelWait(a);
  fusion_.CancelWait(b);
  fusion_.CancelWait(c);
}


// Acquire/release traffic flows through the process-wide registry
// families (deltas: other tests' LockFusion instances share them), and
// the blocking acquire records a wait-latency sample.
TEST_F(LockFusionTest, CountersVisibleThroughRegistry) {
  auto& reg = obs::MetricsRegistry::Global();
  const uint64_t acq0 = reg.CounterTotal("lock_fusion.plock_acquire_rpcs");
  const uint64_t rel0 = reg.CounterTotal("lock_fusion.plock_release_rpcs");
  const uint64_t waits0 = reg.HistogramTotal("lock_fusion.plock_wait_ns").count();

  const PageId page{1, 77};
  ASSERT_TRUE(fusion_.AcquirePLock(1, page, LockMode::kExclusive, 1000).ok());
  ASSERT_TRUE(fusion_.ReleasePLock(1, page).ok());

  EXPECT_EQ(reg.CounterTotal("lock_fusion.plock_acquire_rpcs"), acq0 + 1);
  EXPECT_EQ(reg.CounterTotal("lock_fusion.plock_release_rpcs"), rel0 + 1);
  EXPECT_EQ(reg.HistogramTotal("lock_fusion.plock_wait_ns").count(),
            waits0 + 1);
  // Registry totals agree with the instance's own shim getters for the
  // traffic this test added.
  EXPECT_GE(reg.CounterTotal("lock_fusion.plock_acquire_rpcs"),
            fusion_.plock_acquire_rpcs());
}

// ResetCounters must be callable while another thread hammers the
// counters (the original implementation read them lock-free but reset
// under the mutex; with registry handles both sides are atomic).
TEST_F(LockFusionTest, ResetRacesWithAcquisitionsSafely) {
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    const PageId page{1, 88};
    while (!stop.load(std::memory_order_acquire)) {
      fusion_.AcquirePLock(1, page, LockMode::kShared, 1000).ok();
      fusion_.ReleasePLock(1, page).ok();
    }
  });
  for (int i = 0; i < 1000; ++i) {
    fusion_.ResetCounters();
    (void)fusion_.plock_acquire_rpcs();
    (void)fusion_.plock_release_rpcs();
  }
  stop.store(true, std::memory_order_release);
  worker.join();
}

}  // namespace
}  // namespace polarmp
