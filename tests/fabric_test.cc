#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dsm/dsm.h"
#include "obs/metrics.h"
#include "rdma/fabric.h"
#include "rdma/rpc.h"

namespace polarmp {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : fabric_(ZeroLatencyProfile()) {}
  Fabric fabric_;
};

TEST_F(FabricTest, RegisterReadWrite) {
  uint64_t buf[4] = {1, 2, 3, 4};
  ASSERT_TRUE(fabric_.RegisterRegion(5, 0, buf, sizeof(buf)).ok());
  uint64_t out = 0;
  ASSERT_TRUE(fabric_.Read(6, 5, 0, 8, &out, 8).ok());
  EXPECT_EQ(out, 2u);
  const uint64_t in = 99;
  ASSERT_TRUE(fabric_.Write(6, 5, 0, 24, &in, 8).ok());
  EXPECT_EQ(buf[3], 99u);
  EXPECT_EQ(fabric_.remote_reads(), 1u);
  EXPECT_EQ(fabric_.remote_writes(), 1u);
}

// The fabric's counters are registry handles: the process-wide
// "fabric.*" families see every instance's traffic (delta-based — other
// tests' fabrics contribute to the same families).
TEST_F(FabricTest, CountersVisibleThroughRegistry) {
  auto& reg = obs::MetricsRegistry::Global();
  const uint64_t reads0 = reg.CounterTotal("fabric.remote_reads");
  const uint64_t writes0 = reg.CounterTotal("fabric.remote_writes");
  const uint64_t read_samples0 = reg.HistogramTotal("fabric.read_ns").count();

  uint64_t buf[2] = {11, 22};
  ASSERT_TRUE(fabric_.RegisterRegion(5, 0, buf, sizeof(buf)).ok());
  uint64_t out = 0;
  ASSERT_TRUE(fabric_.Read(6, 5, 0, 0, &out, 8).ok());
  ASSERT_TRUE(fabric_.Write(6, 5, 0, 8, &out, 8).ok());
  // Local access stays invisible to the remote families.
  ASSERT_TRUE(fabric_.Read(5, 5, 0, 0, &out, 8).ok());

  EXPECT_EQ(reg.CounterTotal("fabric.remote_reads"), reads0 + 1);
  EXPECT_EQ(reg.CounterTotal("fabric.remote_writes"), writes0 + 1);
  // Each remote read lands one latency sample in fabric.read_ns.
  EXPECT_EQ(reg.HistogramTotal("fabric.read_ns").count(), read_samples0 + 1);
}

TEST_F(FabricTest, LocalAccessNotCountedRemote) {
  uint64_t buf = 7;
  ASSERT_TRUE(fabric_.RegisterRegion(5, 0, &buf, 8).ok());
  uint64_t out = 0;
  ASSERT_TRUE(fabric_.Read(5, 5, 0, 0, &out, 8).ok());
  EXPECT_EQ(fabric_.remote_reads(), 0u);
}

TEST_F(FabricTest, OutOfBoundsRejected) {
  uint64_t buf = 0;
  ASSERT_TRUE(fabric_.RegisterRegion(5, 0, &buf, 8).ok());
  uint64_t out;
  EXPECT_FALSE(fabric_.Read(6, 5, 0, 4, &out, 8).ok());
}

TEST_F(FabricTest, UnknownRegionAndEndpoint) {
  uint64_t out;
  EXPECT_TRUE(fabric_.Read(6, 5, 0, 0, &out, 8).IsUnavailable());
  uint64_t buf = 0;
  ASSERT_TRUE(fabric_.RegisterRegion(5, 0, &buf, 8).ok());
  EXPECT_TRUE(fabric_.Read(6, 5, 9, 0, &out, 8).IsNotFound());
}

TEST_F(FabricTest, AtomicsWork) {
  std::atomic<uint64_t> counter{10};
  ASSERT_TRUE(fabric_.RegisterRegion(5, 0, &counter, 8).ok());
  auto prev = fabric_.FetchAdd64(6, 5, 0, 0, 5);
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(prev.value(), 10u);
  EXPECT_EQ(counter.load(), 15u);

  auto cas = fabric_.CompareSwap64(6, 5, 0, 0, 15, 100);
  ASSERT_TRUE(cas.ok());
  EXPECT_EQ(cas.value(), 15u);  // observed pre-swap value
  EXPECT_EQ(counter.load(), 100u);

  auto cas_fail = fabric_.CompareSwap64(6, 5, 0, 0, 15, 200);
  ASSERT_TRUE(cas_fail.ok());
  EXPECT_EQ(cas_fail.value(), 100u);
  EXPECT_EQ(counter.load(), 100u);

  ASSERT_TRUE(fabric_.Store64(6, 5, 0, 0, 7).ok());
  auto load = fabric_.Load64(6, 5, 0, 0);
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load.value(), 7u);
}

TEST_F(FabricTest, DeregisterEndpointKillsAccess) {
  uint64_t buf = 0;
  ASSERT_TRUE(fabric_.RegisterRegion(5, 0, &buf, 8).ok());
  EXPECT_TRUE(fabric_.EndpointAlive(5));
  fabric_.DeregisterEndpoint(5);
  EXPECT_FALSE(fabric_.EndpointAlive(5));
  uint64_t out;
  EXPECT_TRUE(fabric_.Read(6, 5, 0, 0, &out, 8).IsUnavailable());
  // Re-register revives it.
  ASSERT_TRUE(fabric_.RegisterRegion(5, 0, &buf, 8).ok());
  EXPECT_TRUE(fabric_.Read(6, 5, 0, 0, &out, 8).ok());
}

TEST_F(FabricTest, ConcurrentFetchAddIsAtomic) {
  std::atomic<uint64_t> counter{0};
  ASSERT_TRUE(fabric_.RegisterRegion(5, 0, &counter, 8).ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(fabric_.FetchAdd64(6, 5, 0, 0, 1).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load(), 4000u);
}

TEST(RpcTest, CallDispatchesToHandler) {
  Fabric fabric(ZeroLatencyProfile());
  uint64_t dummy = 0;
  ASSERT_TRUE(fabric.RegisterRegion(9, 0, &dummy, 8).ok());
  Rpc rpc(&fabric);
  ASSERT_TRUE(rpc.RegisterHandler(9, 1,
                                  [](const std::string& req, std::string* resp) {
                                    *resp = "echo:" + req;
                                    return Status::OK();
                                  })
                  .ok());
  std::string resp;
  ASSERT_TRUE(rpc.Call(2, 9, 1, "hi", &resp).ok());
  EXPECT_EQ(resp, "echo:hi");
  EXPECT_EQ(fabric.rpcs(), 1u);
  EXPECT_TRUE(rpc.Call(2, 9, 2, "hi", &resp).IsNotFound());
  fabric.DeregisterEndpoint(9);
  EXPECT_TRUE(rpc.Call(2, 9, 1, "hi", &resp).IsUnavailable());
}

TEST(DsmTest, AllocateReadWrite) {
  Fabric fabric(ZeroLatencyProfile());
  Dsm dsm(&fabric, 2, 1 << 20);
  auto p1 = dsm.Allocate(100);
  ASSERT_TRUE(p1.ok());
  auto p2 = dsm.Allocate(100);
  ASSERT_TRUE(p2.ok());
  // Least-loaded placement spreads across servers.
  EXPECT_NE(p1->server, p2->server);

  const char data[] = "hello dsm";
  ASSERT_TRUE(dsm.Write(1, *p1, data, sizeof(data)).ok());
  char out[16] = {0};
  ASSERT_TRUE(dsm.Read(2, *p1, out, sizeof(data)).ok());
  EXPECT_STREQ(out, "hello dsm");
  EXPECT_EQ(dsm.allocated_bytes(), 208u);  // 8-byte aligned
}

TEST(DsmTest, Atomics) {
  Fabric fabric(ZeroLatencyProfile());
  Dsm dsm(&fabric, 1, 1 << 16);
  auto p = dsm.Allocate(8);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(dsm.Store64(1, *p, 41).ok());
  auto prev = dsm.FetchAdd64(1, *p, 1);
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(prev.value(), 41u);
  EXPECT_EQ(dsm.Load64(1, *p).value(), 42u);
}

TEST(DsmTest, OutOfMemory) {
  Fabric fabric(ZeroLatencyProfile());
  Dsm dsm(&fabric, 1, 128);
  ASSERT_TRUE(dsm.Allocate(100).ok());
  EXPECT_FALSE(dsm.Allocate(100).ok());
}

TEST(DsmTest, ResetClears) {
  Fabric fabric(ZeroLatencyProfile());
  Dsm dsm(&fabric, 1, 1 << 16);
  auto p = dsm.Allocate(8);
  ASSERT_TRUE(dsm.Store64(1, *p, 42).ok());
  dsm.Reset();
  EXPECT_EQ(dsm.allocated_bytes(), 0u);
  auto p2 = dsm.Allocate(8);
  EXPECT_EQ(dsm.Load64(1, *p2).value(), 0u);
}

}  // namespace
}  // namespace polarmp
