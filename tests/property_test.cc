#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "cluster/cluster.h"
#include "common/random.h"
#include "engine/undo.h"

namespace polarmp {
namespace {

// ---------------------------------------------------------------------------
// Page model check: a random op sequence against a Page must match a
// std::map model, across page sizes (TEST_P sweep).
// ---------------------------------------------------------------------------
class PagePropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PagePropertyTest, RandomOpsMatchModel) {
  const uint32_t page_size = GetParam();
  auto buf = std::make_unique<char[]>(page_size);
  Page page(buf.get(), page_size);
  page.Init(PageId{1, 1}, 0, kInvalidPageNo, kInvalidPageNo);
  std::map<int64_t, std::string> model;
  Random rng(page_size);

  for (int op = 0; op < 3000; ++op) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(64));
    const uint64_t dice = rng.Uniform(10);
    if (dice < 6) {  // upsert with random-size value
      const std::string value(rng.Uniform(page_size / 16) + 1,
                              static_cast<char>('a' + key % 26));
      const std::string image =
          EncodeRow(key, kInvalidGTrxId, kCsnMin, kNullUndoPtr, 0, value);
      const Status s = page.WriteRow(image);
      if (s.ok()) {
        model[key] = value;
      } else {
        // Full page is acceptable; the model must not change.
        EXPECT_TRUE(s.code() == StatusCode::kInternal) << s.ToString();
      }
    } else if (dice < 8) {  // remove
      const Status s = page.RemoveRow(key);
      EXPECT_EQ(s.ok(), model.erase(key) > 0);
    } else {  // point lookup
      const int slot = page.FindSlot(key);
      auto it = model.find(key);
      ASSERT_EQ(slot >= 0, it != model.end()) << "key " << key;
      if (slot >= 0) {
        EXPECT_EQ(page.RowAt(slot).value().value.ToString(), it->second);
      }
    }
    // Structural invariants after every op.
    ASSERT_EQ(page.nslots(), static_cast<int>(model.size()));
  }
  // Final: full ordered equality.
  auto it = model.begin();
  for (int slot = 0; slot < page.nslots(); ++slot, ++it) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(page.KeyAt(slot), it->first);
    EXPECT_EQ(page.RowAt(slot).value().value.ToString(), it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, PagePropertyTest,
                         ::testing::Values(512u, 1024u, 4096u, 8192u));

// ---------------------------------------------------------------------------
// Log record property: encode/decode round trip over randomized records,
// including records embedded mid-stream.
// ---------------------------------------------------------------------------
TEST(LogRecordProperty, RandomRoundTripThroughStream) {
  Random rng(7);
  std::vector<LogRecord> originals;
  std::string stream;
  for (int i = 0; i < 500; ++i) {
    LogRecord rec;
    rec.type = static_cast<LogRecordType>(1 + rng.Uniform(10));
    rec.node = static_cast<NodeId>(rng.Uniform(1024));
    rec.llsn = rng.Next();
    rec.page_id = PageId{static_cast<SpaceId>(rng.Next() & 0xFFFFFFFF),
                         static_cast<PageNo>(rng.Next() & 0xFFFFFFFF)};
    rec.trx = rng.Next();
    rec.aux = rng.Next();
    rec.body = std::string(rng.Uniform(300), static_cast<char>(rng.Uniform(256)));
    originals.push_back(rec);
    rec.AppendTo(&stream);
  }
  size_t pos = 0;
  for (const LogRecord& expected : originals) {
    size_t consumed = 0;
    auto rec = LogRecord::Decode(std::string_view(stream).substr(pos),
                                 &consumed);
    ASSERT_TRUE(rec.ok());
    pos += consumed;
    EXPECT_EQ(rec->type, expected.type);
    EXPECT_EQ(rec->node, expected.node);
    EXPECT_EQ(rec->llsn, expected.llsn);
    EXPECT_EQ(rec->page_id, expected.page_id);
    EXPECT_EQ(rec->trx, expected.trx);
    EXPECT_EQ(rec->aux, expected.aux);
    EXPECT_EQ(rec->body, expected.body);
  }
  EXPECT_EQ(pos, stream.size());
}

// ---------------------------------------------------------------------------
// Undo record property: round trip with random contents.
// ---------------------------------------------------------------------------
TEST(UndoRecordProperty, RandomRoundTrip) {
  Random rng(11);
  for (int i = 0; i < 300; ++i) {
    UndoRecord rec;
    rec.type = static_cast<UndoType>(1 + rng.Uniform(3));
    rec.space = static_cast<SpaceId>(rng.Next());
    rec.key = static_cast<int64_t>(rng.Next());
    rec.trx = rng.Next();
    rec.trx_prev = rng.Next();
    rec.prev_trx = rng.Next();
    rec.prev_cts = rng.Next();
    rec.prev_undo = rng.Next();
    rec.prev_flags = static_cast<uint8_t>(rng.Uniform(256));
    rec.prev_value = std::string(rng.Uniform(200), 'u');
    auto decoded = UndoRecord::Decode(rec.Encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->type, rec.type);
    EXPECT_EQ(decoded->space, rec.space);
    EXPECT_EQ(decoded->key, rec.key);
    EXPECT_EQ(decoded->trx, rec.trx);
    EXPECT_EQ(decoded->trx_prev, rec.trx_prev);
    EXPECT_EQ(decoded->prev_trx, rec.prev_trx);
    EXPECT_EQ(decoded->prev_cts, rec.prev_cts);
    EXPECT_EQ(decoded->prev_undo, rec.prev_undo);
    EXPECT_EQ(decoded->prev_flags, rec.prev_flags);
    EXPECT_EQ(decoded->prev_value, rec.prev_value);
  }
}

// ---------------------------------------------------------------------------
// Whole-engine property: a random single-session workload against a model,
// swept across page sizes (forces different split behaviour).
// ---------------------------------------------------------------------------
class EnginePropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EnginePropertyTest, RandomCrudMatchesModelAcrossRestart) {
  ClusterOptions opts;
  opts.page_size = GetParam();
  opts.node.lbp.page_size = GetParam();
  auto cluster = Cluster::Create(opts).value();
  DbNode* node = cluster->AddNode().value();
  ASSERT_TRUE(cluster->CreateTable("prop").ok());
  TableHandle table = node->OpenTable("prop").value();

  std::map<int64_t, std::string> model;
  Random rng(GetParam() * 31);
  for (int txn = 0; txn < 120; ++txn) {
    Session s(node, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(s.Begin().ok());
    std::map<int64_t, std::optional<std::string>> txn_writes;
    const int ops = 1 + static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < ops; ++i) {
      const int64_t key = static_cast<int64_t>(rng.Uniform(150));
      if (rng.Percent(70)) {
        const std::string value(rng.Uniform(GetParam() / 16) + 1,
                                static_cast<char>('a' + key % 26));
        ASSERT_TRUE(s.Put(table, key, value).ok());
        txn_writes[key] = value;
      } else {
        const Status st = s.Delete(table, key);
        const bool exists = txn_writes.count(key)
                                ? txn_writes[key].has_value()
                                : model.count(key) > 0;
        ASSERT_EQ(st.ok(), exists) << st.ToString();
        if (st.ok()) txn_writes[key] = std::nullopt;
      }
    }
    if (rng.Percent(80)) {
      ASSERT_TRUE(s.Commit().ok());
      for (auto& [key, value] : txn_writes) {
        if (value.has_value()) {
          model[key] = *value;
        } else {
          model.erase(key);
        }
      }
    } else {
      ASSERT_TRUE(s.Rollback().ok());  // model unchanged
    }
  }

  auto verify = [&](DbNode* n) {
    TableHandle t = n->OpenTable("prop").value();
    Session s(n, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(s.Begin().ok());
    std::map<int64_t, std::string> found;
    ASSERT_TRUE(s.Scan(t, 0, 1'000, [&](int64_t k, const std::string& v) {
                   found[k] = v;
                   return true;
                 })
                    .ok());
    ASSERT_TRUE(s.Commit().ok());
    EXPECT_EQ(found, model);
  };
  verify(node);

  // The same model must survive a crash + recovery.
  const NodeId id = node->id();
  ASSERT_TRUE(cluster->CrashNode(id).ok());
  auto restarted = cluster->RestartNode(id);
  ASSERT_TRUE(restarted.ok());
  verify(restarted.value());
}

INSTANTIATE_TEST_SUITE_P(PageSizes, EnginePropertyTest,
                         ::testing::Values(1024u, 4096u, 8192u));

// ---------------------------------------------------------------------------
// Snapshot-isolation invariant: concurrent increments from all nodes with
// SI + retry never lose an update (first-committer-wins makes read-modify-
// write linearizable).
// ---------------------------------------------------------------------------
TEST(SnapshotIsolationProperty, NoLostUpdatesAcrossNodes) {
  auto cluster = Cluster::Create(ClusterOptions()).value();
  std::vector<DbNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(cluster->AddNode().value());
  ASSERT_TRUE(cluster->CreateTable("counters").ok());
  {
    TableHandle t = nodes[0]->OpenTable("counters").value();
    Session s(nodes[0], IsolationLevel::kReadCommitted);
    ASSERT_TRUE(s.Begin().ok());
    for (int64_t c = 0; c < 4; ++c) ASSERT_TRUE(s.Insert(t, c, "0").ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  constexpr int kIncrementsPerWorker = 40;
  std::vector<std::thread> workers;
  for (size_t n = 0; n < nodes.size(); ++n) {
    workers.emplace_back([&, n] {
      DbNode* node = nodes[n];
      TableHandle t = node->OpenTable("counters").value();
      Random rng(n + 1);
      for (int i = 0; i < kIncrementsPerWorker; ++i) {
        const int64_t counter = static_cast<int64_t>(rng.Uniform(4));
        for (;;) {  // retry SI conflicts
          Session s(node, IsolationLevel::kSnapshotIsolation);
          ASSERT_TRUE(s.Begin().ok());
          auto v = s.Get(t, counter);
          if (!v.ok()) continue;
          const Status st =
              s.Update(t, counter, std::to_string(std::stoll(*v) + 1));
          if (!st.ok()) continue;  // aborted: retry
          if (s.Commit().ok()) break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  TableHandle t = nodes[0]->OpenTable("counters").value();
  Session s(nodes[0], IsolationLevel::kReadCommitted);
  ASSERT_TRUE(s.Begin().ok());
  int64_t total = 0;
  for (int64_t c = 0; c < 4; ++c) total += std::stoll(s.Get(t, c).value());
  ASSERT_TRUE(s.Commit().ok());
  EXPECT_EQ(total,
            static_cast<int64_t>(nodes.size()) * kIncrementsPerWorker);
}

}  // namespace
}  // namespace polarmp
