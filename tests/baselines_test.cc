#include <gtest/gtest.h>

#include <thread>

#include "baselines/aurora_mm.h"
#include "baselines/shared_nothing.h"
#include "baselines/single_primary.h"
#include "baselines/taurus_mm.h"
#include "workload/driver.h"
#include "workload/production.h"
#include "workload/sysbench.h"
#include "workload/tatp.h"
#include "workload/tpcc.h"

namespace polarmp {
namespace {

// Shared conformance checks every Database implementation must pass.
void BasicCrud(Database* db) {
  ASSERT_TRUE(db->CreateTable("crud", 0).ok());
  auto conn = db->Connect(0);
  ASSERT_TRUE(conn.ok());
  Connection* c = conn->get();

  ASSERT_TRUE(c->Begin().ok());
  ASSERT_TRUE(c->Insert("crud", 1, "one").ok());
  EXPECT_TRUE(c->Insert("crud", 1, "dup").IsAlreadyExists());
  ASSERT_TRUE(c->Update("crud", 1, "uno").ok());
  EXPECT_TRUE(c->Update("crud", 2, "x").IsNotFound());
  ASSERT_TRUE(c->Put("crud", 2, "two").ok());
  EXPECT_EQ(c->Get("crud", 1).value(), "uno");
  ASSERT_TRUE(c->Commit().ok());

  ASSERT_TRUE(c->Begin().ok());
  EXPECT_EQ(c->Get("crud", 2).value(), "two");
  ASSERT_TRUE(c->Delete("crud", 2).ok());
  EXPECT_TRUE(c->Get("crud", 2).status().IsNotFound());
  ASSERT_TRUE(c->Rollback().ok());

  ASSERT_TRUE(c->Begin().ok());
  EXPECT_EQ(c->Get("crud", 2).value(), "two");  // rollback kept it
  int count = 0;
  ASSERT_TRUE(c->Scan("crud", 0, 100, [&](int64_t, const std::string&) {
                 ++count;
                 return true;
               })
                  .ok());
  EXPECT_EQ(count, 2);
  ASSERT_TRUE(c->Commit().ok());
}

TEST(BaselineConformance, PolarMp) {
  auto db = PolarMpDatabase::Create(ClusterOptions(), 2);
  ASSERT_TRUE(db.ok());
  BasicCrud(db->get());
}

TEST(BaselineConformance, SinglePrimary) {
  auto db = SinglePrimaryDatabase::Create(ClusterOptions());
  ASSERT_TRUE(db.ok());
  BasicCrud(db->get());
  EXPECT_TRUE((*db)->AddNode().code() == StatusCode::kNotSupported);
}

TEST(BaselineConformance, AuroraMm) {
  AuroraMmDatabase db(ZeroLatencyProfile(), 2);
  BasicCrud(&db);
}

TEST(BaselineConformance, TaurusMm) {
  TaurusMmDatabase::Options opts;
  opts.profile = ZeroLatencyProfile();
  opts.nodes = 2;
  TaurusMmDatabase db(opts);
  BasicCrud(&db);
}

TEST(BaselineConformance, SharedNothing) {
  SharedNothingDatabase::Options opts;
  opts.profile = ZeroLatencyProfile();
  opts.nodes = 2;
  SharedNothingDatabase db(opts);
  BasicCrud(&db);
  EXPECT_TRUE(db.AddNode().code() == StatusCode::kNotSupported);
}

TEST(AuroraMmTest, ConflictingPageWritesAbort) {
  AuroraMmDatabase db(ZeroLatencyProfile(), 2);
  ASSERT_TRUE(db.CreateTable("t", 0).ok());
  auto c0 = db.Connect(0);
  auto c1 = db.Connect(1);
  // Seed a row so both transactions touch the same page.
  ASSERT_TRUE((*c0)->Begin().ok());
  ASSERT_TRUE((*c0)->Put("t", 1, "seed").ok());
  ASSERT_TRUE((*c0)->Commit().ok());

  ASSERT_TRUE((*c0)->Begin().ok());
  ASSERT_TRUE((*c1)->Begin().ok());
  ASSERT_TRUE((*c0)->Put("t", 2, "a").ok());  // same page as key 3
  ASSERT_TRUE((*c1)->Put("t", 3, "b").ok());
  ASSERT_TRUE((*c0)->Commit().ok());
  // The second committer observed the pre-commit page version: OCC abort,
  // surfaced as Aurora's "deadlock error".
  EXPECT_TRUE((*c1)->Commit().IsAborted());
  EXPECT_EQ(db.occ_aborts(), 1u);
}

TEST(AuroraMmTest, DisjointSegmentsBothCommit) {
  AuroraMmDatabase db(ZeroLatencyProfile(), 2);
  ASSERT_TRUE(db.CreateTable("t", 0).ok());
  auto c0 = db.Connect(0);
  auto c1 = db.Connect(1);
  ASSERT_TRUE((*c0)->Begin().ok());
  ASSERT_TRUE((*c1)->Begin().ok());
  ASSERT_TRUE((*c0)->Put("t", 1, "a").ok());
  // Different storage segment: no conflict.
  ASSERT_TRUE(
      (*c1)->Put("t", 1 + kSimRowsPerPage * kSimPagesPerSegment, "b").ok());
  EXPECT_TRUE((*c0)->Commit().ok());
  EXPECT_TRUE((*c1)->Commit().ok());
  EXPECT_EQ(db.occ_aborts(), 0u);
}

TEST(AuroraMmTest, SameNodeConcurrentWritesNeverOccAbort) {
  // Intra-node concurrency is serialized by node-local locking in the real
  // system; only cross-node conflicts reach the OCC validator.
  AuroraMmDatabase db(ZeroLatencyProfile(), 2);
  ASSERT_TRUE(db.CreateTable("t", 0).ok());
  auto c0 = db.Connect(0);
  auto c0b = db.Connect(0);
  ASSERT_TRUE((*c0)->Begin().ok());
  ASSERT_TRUE((*c0b)->Begin().ok());
  ASSERT_TRUE((*c0)->Put("t", 1, "a").ok());
  ASSERT_TRUE((*c0b)->Put("t", 2, "b").ok());  // same page, same node
  EXPECT_TRUE((*c0)->Commit().ok());
  EXPECT_TRUE((*c0b)->Commit().ok());
  EXPECT_EQ(db.occ_aborts(), 0u);
}

TEST(TaurusMmTest, StalePageAccessPaysReplay) {
  TaurusMmDatabase::Options opts;
  opts.profile = ZeroLatencyProfile();
  opts.nodes = 2;
  TaurusMmDatabase db(opts);
  ASSERT_TRUE(db.CreateTable("t", 0).ok());
  auto c0 = db.Connect(0);
  auto c1 = db.Connect(1);
  // Node 0 commits 5 updates to one page.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*c0)->Begin().ok());
    ASSERT_TRUE((*c0)->Put("t", 1, "v" + std::to_string(i)).ok());
    ASSERT_TRUE((*c0)->Commit().ok());
  }
  // Node 1's first access replays the 5 versions it is behind.
  ASSERT_TRUE((*c1)->Begin().ok());
  EXPECT_EQ((*c1)->Get("t", 1).value(), "v4");
  ASSERT_TRUE((*c1)->Commit().ok());
  EXPECT_EQ(db.replayed_records(), 5u);
}

TEST(TaurusMmTest, WriteConflictBlocksUntilCommit) {
  TaurusMmDatabase::Options opts;
  opts.profile = ZeroLatencyProfile();
  opts.nodes = 2;
  opts.lock_timeout_ms = 2'000;
  TaurusMmDatabase db(opts);
  ASSERT_TRUE(db.CreateTable("t", 0).ok());
  auto c0 = db.Connect(0);
  auto c1 = db.Connect(1);
  ASSERT_TRUE((*c0)->Begin().ok());
  ASSERT_TRUE((*c0)->Put("t", 1, "a").ok());
  std::atomic<bool> done{false};
  std::thread blocked([&] {
    ASSERT_TRUE((*c1)->Begin().ok());
    ASSERT_TRUE((*c1)->Put("t", 1, "b").ok());
    ASSERT_TRUE((*c1)->Commit().ok());
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(done.load());
  ASSERT_TRUE((*c0)->Commit().ok());
  blocked.join();
  EXPECT_TRUE(done.load());
}

TEST(SharedNothingTest, GsiUpdatesBecomeDistributed) {
  SharedNothingDatabase::Options opts;
  opts.profile = ZeroLatencyProfile();
  opts.nodes = 4;
  SharedNothingDatabase db(opts);
  ASSERT_TRUE(db.CreateTable("orders", 2).ok());
  auto conn = db.Connect(0);
  int multi = 0;
  for (int64_t k = 1; k <= 20; ++k) {
    ASSERT_TRUE((*conn)->Begin().ok());
    ASSERT_TRUE(
        (*conn)
            ->Insert("orders", k,
                     EncodeIndexedValue({static_cast<uint64_t>(k * 7),
                                         static_cast<uint64_t>(k * 13)},
                                        "payload"))
            .ok());
    ASSERT_TRUE((*conn)->Commit().ok());
  }
  multi = static_cast<int>(db.two_phase_commits());
  // Base row + 2 GSI entries hash to 3 partitions: almost every insert is
  // a distributed transaction.
  EXPECT_GT(multi, 15);
}

TEST(SharedNothingTest, NoGsiSinglePartitionCommits) {
  SharedNothingDatabase::Options opts;
  opts.profile = ZeroLatencyProfile();
  opts.nodes = 4;
  SharedNothingDatabase db(opts);
  ASSERT_TRUE(db.CreateTable("plain", 0).ok());
  auto conn = db.Connect(0);
  for (int64_t k = 1; k <= 10; ++k) {
    ASSERT_TRUE((*conn)->Begin().ok());
    ASSERT_TRUE((*conn)->Insert("plain", k, "v").ok());
    ASSERT_TRUE((*conn)->Commit().ok());
  }
  EXPECT_EQ(db.two_phase_commits(), 0u);
  EXPECT_EQ(db.single_partition_commits(), 10u);
}

// Driver smoke tests: each workload sets up and sustains traffic on a small
// PolarDB-MP cluster with zero simulated latency.
class WorkloadSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = PolarMpDatabase::Create(ClusterOptions(), 2);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  void RunSmoke(Workload* workload) {
    ASSERT_TRUE(workload->Setup(db_.get()).ok());
    DriverOptions opts;
    opts.num_nodes = 2;
    opts.threads_per_node = 2;
    opts.warmup_ms = 100;
    opts.duration_ms = 500;
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
    // A single transaction can take hundreds of milliseconds under TSan on a
    // loaded host; a 500 ms window then flakily commits nothing. Widen the
    // windows so the smoke assertion measures the workload, not the tool.
    opts.warmup_ms *= 4;
    opts.duration_ms *= 8;
#endif
    const DriverResult result = RunWorkload(db_.get(), workload, opts);
    EXPECT_GT(result.committed, 0u) << result.ToString();
    EXPECT_EQ(result.errors, 0u) << result.ToString();
  }

  std::unique_ptr<PolarMpDatabase> db_;
};

TEST_F(WorkloadSmokeTest, SysbenchReadWrite) {
  SysbenchOptions opts;
  opts.num_nodes = 2;
  opts.tables_per_group = 2;
  opts.rows_per_table = 200;
  opts.shared_pct = 30;
  SysbenchWorkload workload(opts);
  RunSmoke(&workload);
}

TEST_F(WorkloadSmokeTest, SysbenchWriteOnlyFullyShared) {
  SysbenchOptions opts;
  opts.num_nodes = 2;
  opts.tables_per_group = 2;
  opts.rows_per_table = 200;
  opts.shared_pct = 100;
  opts.mix = SysbenchOptions::Mix::kWriteOnly;
  SysbenchWorkload workload(opts);
  RunSmoke(&workload);
}

TEST_F(WorkloadSmokeTest, Tpcc) {
  TpccOptions opts;
  opts.num_nodes = 2;
  opts.warehouses_per_node = 1;
  opts.customers_per_district = 20;
  opts.items = 100;
  TpccWorkload workload(opts);
  RunSmoke(&workload);
  EXPECT_GT(workload.new_orders(), 0u);
}

TEST_F(WorkloadSmokeTest, Tatp) {
  TatpOptions opts;
  opts.num_nodes = 2;
  opts.subscribers_per_node = 500;
  TatpWorkload workload(opts);
  RunSmoke(&workload);
}

TEST_F(WorkloadSmokeTest, Production) {
  ProductionOptions opts;
  opts.num_nodes = 2;
  opts.orders_per_node = 500;
  ProductionWorkload workload(opts);
  RunSmoke(&workload);
}

TEST(DriverTest, TimelineCoversRun) {
  auto db = PolarMpDatabase::Create(ClusterOptions(), 1);
  ASSERT_TRUE(db.ok());
  ProductionOptions wopts;
  wopts.num_nodes = 1;
  wopts.orders_per_node = 200;
  ProductionWorkload workload(wopts);
  ASSERT_TRUE(workload.Setup(db->get()).ok());
  DriverOptions opts;
  opts.num_nodes = 1;
  opts.threads_per_node = 1;
  opts.warmup_ms = 0;
  opts.duration_ms = 1'200;
  const DriverResult result = RunWorkload(db->get(), &workload, opts);
  ASSERT_GE(result.per_second.size(), 2u);
  EXPECT_GT(result.per_second[0], 0u);
  EXPECT_GT(result.throughput, 0.0);
}

}  // namespace
}  // namespace polarmp
