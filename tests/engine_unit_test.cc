#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "cluster/cluster.h"
#include "engine/undo.h"
#include "wal/recovery.h"

namespace polarmp {
namespace {

// ---------------------------------------------------------------------------
// UndoStore
// ---------------------------------------------------------------------------
class UndoStoreTest : public ::testing::Test {
 protected:
  UndoStoreTest()
      : fabric_(ZeroLatencyProfile()),
        dsm_(&fabric_, 1, 1 << 20),
        undo_(&dsm_, 4096) {
    EXPECT_TRUE(undo_.AddNode(1).ok());
  }

  UndoRecord MakeRecord(int64_t key, const std::string& value) {
    UndoRecord rec;
    rec.type = UndoType::kUpdate;
    rec.space = 9;
    rec.key = key;
    rec.trx = MakeGTrxId(1, 1, 1);
    rec.prev_value = value;
    return rec;
  }

  Fabric fabric_;
  Dsm dsm_;
  UndoStore undo_;
};

TEST_F(UndoStoreTest, AppendAndReadBack) {
  auto res = undo_.Append(1, MakeRecord(7, "old-value"));
  ASSERT_TRUE(res.ok());
  auto rec = undo_.Read(1, res->ptr);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->key, 7);
  EXPECT_EQ(rec->prev_value, "old-value");
  // Remote read (from another node's endpoint) returns the same data.
  auto remote = undo_.Read(2, res->ptr);
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(remote->prev_value, "old-value");
}

TEST_F(UndoStoreTest, PurgedRecordsUnreadable) {
  auto r1 = undo_.Append(1, MakeRecord(1, "a"));
  auto r2 = undo_.Append(1, MakeRecord(2, "b"));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(undo_.FreeUpTo(1, r2->offset).ok());
  EXPECT_TRUE(undo_.Read(1, r1->ptr).status().IsNotFound());
  EXPECT_TRUE(undo_.Read(1, r2->ptr).ok());
}

TEST_F(UndoStoreTest, RingWrapsWithPurge) {
  // Fill, purge, refill several times: logical offsets keep growing while
  // the physical ring is reused; records never tear across the wrap.
  uint64_t last_offset = 0;
  for (int round = 0; round < 10; ++round) {
    std::vector<std::pair<UndoPtr, std::string>> live;
    for (int i = 0; i < 8; ++i) {
      const std::string value(200, static_cast<char>('a' + round));
      auto res = undo_.Append(1, MakeRecord(i, value));
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      EXPECT_GE(res->offset, last_offset);
      last_offset = res->offset;
      live.emplace_back(res->ptr, value);
    }
    for (auto& [ptr, value] : live) {
      auto rec = undo_.Read(1, ptr);
      ASSERT_TRUE(rec.ok());
      EXPECT_EQ(rec->prev_value, value);
    }
    ASSERT_TRUE(undo_.FreeUpTo(1, undo_.head(1)).ok());
  }
}

TEST_F(UndoStoreTest, FullWithoutPurgeFailsCleanly) {
  Status st = Status::OK();
  for (int i = 0; i < 100 && st.ok(); ++i) {
    st = undo_.Append(1, MakeRecord(i, std::string(200, 'x'))).status();
  }
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// BufferPool / PLockManager through a live node (hooks wired by DbNode).
// ---------------------------------------------------------------------------
class NodeEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions opts;
    opts.page_size = 1024;
    opts.node.lbp.page_size = 1024;
    opts.node.lbp.frames = 8;  // tiny LBP to force eviction
    auto cluster = Cluster::Create(opts);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    node_ = cluster_->AddNode().value();
    ASSERT_TRUE(cluster_->CreateTable("t").ok());
    table_ = node_->OpenTable("t").value();
  }

  std::unique_ptr<Cluster> cluster_;
  DbNode* node_ = nullptr;
  TableHandle table_;
};

TEST_F(NodeEngineTest, TinyBufferPoolEvictsAndReloads) {
  // Far more pages than the 8-frame LBP can hold.
  Session s(node_, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(s.Begin().ok());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(s.Insert(table_, i, std::string(100, 'x')).ok());
  }
  ASSERT_TRUE(s.Commit().ok());
  // Every row readable (reload through DBP/storage after eviction).
  Session r(node_, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(r.Begin().ok());
  for (int i = 0; i < 400; i += 37) {
    EXPECT_TRUE(r.Get(table_, i).ok()) << i;
  }
  ASSERT_TRUE(r.Commit().ok());
  EXPECT_GT(node_->buffer_pool()->dbp_fetches() +
                node_->buffer_pool()->storage_loads(),
            0u);
}

TEST_F(NodeEngineTest, LazyPlockStatsAccumulate) {
  Session s(node_, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(s.Begin().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(s.Put(table_, 1, "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(s.Commit().ok());
  // Repeat access to one page: local grants dominate fusion acquires.
  EXPECT_GT(node_->plock_manager()->local_grants(),
            node_->plock_manager()->fusion_acquires());
}

// ---------------------------------------------------------------------------
// Log stream invariant: per-node LLSNs are monotone in the stream (§4.4),
// even under concurrent committers.
// ---------------------------------------------------------------------------
TEST(LogStreamInvariant, LlsnMonotonePerStreamUnderConcurrency) {
  ClusterOptions opts;
  auto cluster = Cluster::Create(opts).value();
  DbNode* node = cluster->AddNode().value();
  ASSERT_TRUE(cluster->CreateTable("t").ok());
  TableHandle table = node->OpenTable("t").value();
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 100; ++i) {
        Session s(node, IsolationLevel::kReadCommitted);
        ASSERT_TRUE(s.Begin().ok());
        ASSERT_TRUE(s.Put(table, w * 1000 + i, "x").ok());
        ASSERT_TRUE(s.Commit().ok());
      }
    });
  }
  for (auto& t : writers) t.join();
  ASSERT_TRUE(node->log_writer()->ForceAll().ok());

  std::string stream;
  ASSERT_TRUE(
      cluster->log_store()->ReadAt(node->id(), 0, 64 << 20, &stream).ok());
  size_t pos = 0;
  Llsn last = 0;
  int records = 0;
  while (pos < stream.size()) {
    size_t consumed = 0;
    auto rec = LogRecord::Decode(std::string_view(stream).substr(pos),
                                 &consumed);
    ASSERT_TRUE(rec.ok());
    pos += consumed;
    ++records;
    if (rec->llsn > 0) {
      EXPECT_GE(rec->llsn, last) << "at record " << records;
      last = rec->llsn;
    }
  }
  EXPECT_GT(records, 400);
}

// ---------------------------------------------------------------------------
// Recovery idempotence: running redo replay twice over the same logs yields
// the same page images (records gated by page LLSN).
// ---------------------------------------------------------------------------
TEST(RecoveryIdempotence, ReplayTwiceSameResult) {
  ClusterOptions opts;
  opts.page_size = 1024;
  opts.node.lbp.page_size = 1024;
  auto cluster = Cluster::Create(opts).value();
  DbNode* n1 = cluster->AddNode().value();
  DbNode* n2 = cluster->AddNode().value();
  ASSERT_TRUE(cluster->CreateTable("t").ok());
  for (int i = 0; i < 60; ++i) {
    DbNode* node = i % 2 == 0 ? n1 : n2;
    TableHandle table = node->OpenTable("t").value();
    Session s(node, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(s.Begin().ok());
    ASSERT_TRUE(s.Put(table, i % 10, "i" + std::to_string(i)).ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  const std::vector<NodeId> nodes = cluster->log_store()->AllLogs();
  UndoStore scratch_undo(cluster->dsm(), 1 << 20);
  Recovery first(cluster->log_store(), cluster->page_store(), &scratch_undo,
                 nullptr, 1024);
  ASSERT_TRUE(first.RedoReplay(nodes).ok());
  ASSERT_TRUE(first.FlushPages().ok());
  const auto stats1 = first.stats();

  Recovery second(cluster->log_store(), cluster->page_store(), &scratch_undo,
                  nullptr, 1024);
  ASSERT_TRUE(second.RedoReplay(nodes).ok());
  // Second replay applies nothing new: every record is at or below the
  // page LLSNs the first replay left in storage.
  EXPECT_EQ(second.stats().page_records_applied, 0u);
  EXPECT_EQ(second.stats().records_scanned, stats1.records_scanned);
}

// ---------------------------------------------------------------------------
// LogWriter edge: forcing beyond the buffered end is an error, not a hang.
// ---------------------------------------------------------------------------
TEST(LogWriterEdge, ForceBeyondBufferFails) {
  LogStore store(ZeroLatencyProfile());
  LogWriter writer(1, &store);
  const Lsn end = writer.Add({MakeTrxCommit(1, 1, 2)});
  EXPECT_FALSE(writer.ForceTo(end + 1000).ok());
  EXPECT_TRUE(writer.ForceTo(end).ok());
}

}  // namespace
}  // namespace polarmp
