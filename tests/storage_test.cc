#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "storage/log_store.h"
#include "storage/page_store.h"
#include "wal/log_record.h"
#include "wal/log_writer.h"

namespace polarmp {
namespace {

TEST(PageStoreTest, SpaceLifecycle) {
  PageStore store(ZeroLatencyProfile(), 512);
  EXPECT_FALSE(store.SpaceExists(1));
  ASSERT_TRUE(store.CreateSpace(1).ok());
  EXPECT_TRUE(store.SpaceExists(1));
  EXPECT_TRUE(store.CreateSpace(1).IsAlreadyExists());
  ASSERT_TRUE(store.DropSpace(1).ok());
  EXPECT_FALSE(store.SpaceExists(1));
}

TEST(PageStoreTest, ReadWritePages) {
  PageStore store(ZeroLatencyProfile(), 512);
  ASSERT_TRUE(store.CreateSpace(1).ok());
  std::string page(512, 'x');
  const PageId id{1, 7};
  EXPECT_FALSE(store.PageExists(id));
  std::string out(512, 0);
  EXPECT_TRUE(store.ReadPage(id, out.data()).IsNotFound());
  ASSERT_TRUE(store.WritePage(id, page.data()).ok());
  ASSERT_TRUE(store.ReadPage(id, out.data()).ok());
  EXPECT_EQ(out, page);
  EXPECT_EQ(store.writes(), 1u);
  EXPECT_EQ(store.reads(), 2u);
}

TEST(PageStoreTest, AllocPageNoMonotonic) {
  PageStore store(ZeroLatencyProfile(), 512);
  ASSERT_TRUE(store.CreateSpace(1).ok());
  EXPECT_EQ(store.AllocPageNo(1).value(), 0u);
  EXPECT_EQ(store.AllocPageNo(1).value(), 1u);
  EXPECT_EQ(store.MaxPageNo(1).value(), 2u);
  EXPECT_FALSE(store.AllocPageNo(9).ok());
}

TEST(LogStoreTest, AppendAndRead) {
  LogStore store(ZeroLatencyProfile());
  ASSERT_TRUE(store.CreateLog(1).ok());
  auto lsn1 = store.Append(1, "hello");
  ASSERT_TRUE(lsn1.ok());
  EXPECT_EQ(lsn1.value(), 0u);
  auto lsn2 = store.Append(1, "world");
  EXPECT_EQ(lsn2.value(), 5u);
  EXPECT_EQ(store.DurableLsn(1).value(), 10u);
  std::string out;
  ASSERT_TRUE(store.ReadAt(1, 2, 6, &out).ok());
  EXPECT_EQ(out, "llowor");
  ASSERT_TRUE(store.ReadAt(1, 10, 4, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(LogStoreTest, TruncateAndCheckpoint) {
  LogStore store(ZeroLatencyProfile());
  ASSERT_TRUE(store.CreateLog(1).ok());
  ASSERT_TRUE(store.Append(1, "0123456789").ok());
  ASSERT_TRUE(store.SetCheckpoint(1, 4).ok());
  EXPECT_EQ(store.GetCheckpoint(1).value(), 4u);
  // Checkpoints never regress.
  ASSERT_TRUE(store.SetCheckpoint(1, 2).ok());
  EXPECT_EQ(store.GetCheckpoint(1).value(), 4u);
  ASSERT_TRUE(store.Truncate(1, 4).ok());
  std::string out;
  EXPECT_TRUE(store.ReadAt(1, 2, 2, &out).IsCorruption());
  ASSERT_TRUE(store.ReadAt(1, 4, 3, &out).ok());
  EXPECT_EQ(out, "456");
}

TEST(LogStoreTest, Epochs) {
  LogStore store(ZeroLatencyProfile());
  EXPECT_EQ(store.GetNodeEpoch(3), 0u);
  EXPECT_EQ(store.BumpNodeEpoch(3), 1u);
  EXPECT_EQ(store.BumpNodeEpoch(3), 2u);
  EXPECT_EQ(store.GetNodeEpoch(3), 2u);
}

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord rec = MakeWriteRow(7, 42, PageId{3, 9}, "row-image-bytes");
  const std::string enc = rec.Encode();
  size_t consumed = 0;
  auto dec = LogRecord::Decode(enc, &consumed);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(consumed, enc.size());
  EXPECT_EQ(dec->type, LogRecordType::kWriteRow);
  EXPECT_EQ(dec->node, 7);
  EXPECT_EQ(dec->llsn, 42u);
  EXPECT_EQ(dec->page_id, (PageId{3, 9}));
  EXPECT_EQ(dec->body, "row-image-bytes");
}

TEST(LogRecordTest, AllConstructors) {
  EXPECT_TRUE(MakeInitPage(1, 2, PageId{1, 0}, 3, 4, 5).IsPageRecord());
  EXPECT_TRUE(MakeRemoveRow(1, 2, PageId{1, 0}, -9).IsPageRecord());
  EXPECT_TRUE(MakeSetPageLinks(1, 2, PageId{1, 0}, 4, 5).IsPageRecord());
  EXPECT_TRUE(MakeLoadRows(1, 2, PageId{1, 0}, "x").IsPageRecord());
  EXPECT_TRUE(MakeTruncateRows(1, 2, PageId{1, 0}, 10).IsPageRecord());
  EXPECT_FALSE(MakeUndoAppend(1, 2, 30, "u").IsPageRecord());
  EXPECT_FALSE(MakeTrxCommit(1, 99, 100).IsPageRecord());
  EXPECT_FALSE(MakeTrxRollbackEnd(1, 99).IsPageRecord());
  // Commit record carries trx + cts in aux.
  const LogRecord commit = MakeTrxCommit(1, 99, 100);
  size_t n;
  auto dec = LogRecord::Decode(commit.Encode(), &n);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec->trx, 99u);
  EXPECT_EQ(dec->aux, 100u);
}

TEST(LogRecordTest, ShortBufferRejected) {
  LogRecord rec = MakeWriteRow(1, 1, PageId{1, 1}, "abcdef");
  const std::string enc = rec.Encode();
  size_t consumed;
  EXPECT_FALSE(LogRecord::Decode(std::string_view(enc).substr(0, 10),
                                 &consumed)
                   .ok());
  EXPECT_FALSE(
      LogRecord::Decode(std::string_view(enc).substr(0, enc.size() - 1),
                        &consumed)
          .ok());
}

TEST(LogWriterTest, BufferAndForce) {
  LogStore store(ZeroLatencyProfile());
  LogWriter writer(1, &store);
  const Lsn end = writer.Add({MakeTrxCommit(1, 5, 6)});
  EXPECT_GT(end, 0u);
  EXPECT_EQ(writer.durable_lsn(), 0u);
  EXPECT_EQ(writer.buffered_lsn(), end);
  ASSERT_TRUE(writer.ForceTo(end).ok());
  EXPECT_EQ(writer.durable_lsn(), end);
  EXPECT_EQ(store.DurableLsn(1).value(), end);
}

TEST(LogWriterTest, GroupCommitManyThreads) {
  LogStore store(ZeroLatencyProfile());
  LogWriter writer(2, &store);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&writer, t] {
      for (int i = 0; i < 50; ++i) {
        const Lsn end = writer.Add(
            {MakeTrxCommit(2, static_cast<GTrxId>(t * 1000 + i), 1)});
        ASSERT_TRUE(writer.ForceTo(end).ok());
        ASSERT_GE(writer.durable_lsn(), end);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(writer.durable_lsn(), writer.buffered_lsn());
  // The stream decodes cleanly end to end.
  std::string all;
  ASSERT_TRUE(store.ReadAt(2, 0, 1 << 20, &all).ok());
  size_t pos = 0;
  int count = 0;
  while (pos < all.size()) {
    size_t consumed;
    auto rec = LogRecord::Decode(std::string_view(all).substr(pos), &consumed);
    ASSERT_TRUE(rec.ok());
    pos += consumed;
    ++count;
  }
  EXPECT_EQ(count, 400);
}

TEST(LogWriterTest, ResumesFromExistingStream) {
  LogStore store(ZeroLatencyProfile());
  ASSERT_TRUE(store.CreateLog(4).ok());
  ASSERT_TRUE(store.Append(4, "prefix").ok());
  LogWriter writer(4, &store);
  EXPECT_EQ(writer.durable_lsn(), 6u);
  const Lsn end = writer.Add({MakeTrxCommit(4, 1, 2)});
  ASSERT_TRUE(writer.ForceTo(end).ok());
  EXPECT_EQ(store.DurableLsn(4).value(), end);
}

}  // namespace
}  // namespace polarmp
