#include <gtest/gtest.h>

#include <memory>

#include "engine/page.h"

namespace polarmp {
namespace {

constexpr uint32_t kPageSize = 1024;

class PageTest : public ::testing::Test {
 protected:
  PageTest() : buf_(new char[kPageSize]), page_(buf_.get(), kPageSize) {
    page_.Init(PageId{1, 2}, 0, kInvalidPageNo, kInvalidPageNo);
  }

  std::string Row(int64_t key, const std::string& value,
                  GTrxId trx = kInvalidGTrxId) {
    return EncodeRow(key, trx, kCsnInit, kNullUndoPtr, 0, value);
  }

  std::unique_ptr<char[]> buf_;
  Page page_;
};

TEST_F(PageTest, InitSetsHeader) {
  EXPECT_EQ(page_.id(), (PageId{1, 2}));
  EXPECT_EQ(page_.llsn(), 0u);
  EXPECT_TRUE(page_.is_leaf());
  EXPECT_EQ(page_.nslots(), 0);
  EXPECT_EQ(page_.prev(), kInvalidPageNo);
  EXPECT_EQ(page_.next(), kInvalidPageNo);
}

TEST_F(PageTest, InsertKeepsSortedOrder) {
  ASSERT_TRUE(page_.WriteRow(Row(30, "c")).ok());
  ASSERT_TRUE(page_.WriteRow(Row(10, "a")).ok());
  ASSERT_TRUE(page_.WriteRow(Row(20, "b")).ok());
  ASSERT_EQ(page_.nslots(), 3);
  EXPECT_EQ(page_.KeyAt(0), 10);
  EXPECT_EQ(page_.KeyAt(1), 20);
  EXPECT_EQ(page_.KeyAt(2), 30);
  EXPECT_EQ(page_.RowAt(1).value().value.ToString(), "b");
}

TEST_F(PageTest, FindSlotAndLowerBound) {
  for (int64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(page_.WriteRow(Row(k * 10, "v")).ok());
  }
  EXPECT_EQ(page_.FindSlot(50), 5);
  EXPECT_EQ(page_.FindSlot(55), -1);
  EXPECT_EQ(page_.LowerBound(55), 6);
  EXPECT_EQ(page_.LowerBound(-1), 0);
  EXPECT_EQ(page_.LowerBound(1000), 10);
}

TEST_F(PageTest, UpsertReplacesInPlace) {
  ASSERT_TRUE(page_.WriteRow(Row(5, "first")).ok());
  ASSERT_TRUE(page_.WriteRow(Row(5, "2nd")).ok());  // shrink
  EXPECT_EQ(page_.nslots(), 1);
  EXPECT_EQ(page_.RowAt(0).value().value.ToString(), "2nd");
  ASSERT_TRUE(page_.WriteRow(Row(5, "a-much-longer-value")).ok());  // grow
  EXPECT_EQ(page_.RowAt(0).value().value.ToString(), "a-much-longer-value");
  EXPECT_EQ(page_.nslots(), 1);
}

TEST_F(PageTest, RemoveRow) {
  ASSERT_TRUE(page_.WriteRow(Row(1, "a")).ok());
  ASSERT_TRUE(page_.WriteRow(Row(2, "b")).ok());
  ASSERT_TRUE(page_.WriteRow(Row(3, "c")).ok());
  ASSERT_TRUE(page_.RemoveRow(2).ok());
  EXPECT_EQ(page_.nslots(), 2);
  EXPECT_EQ(page_.KeyAt(0), 1);
  EXPECT_EQ(page_.KeyAt(1), 3);
  EXPECT_TRUE(page_.RemoveRow(2).IsNotFound());
}

TEST_F(PageTest, MetaSettersInPlace) {
  ASSERT_TRUE(page_.WriteRow(Row(1, "abc")).ok());
  page_.SetRowTrx(0, MakeGTrxId(1, 2, 3));
  page_.SetRowCts(0, 77);
  page_.SetRowUndoPtr(0, MakeUndoPtr(1, 123));
  page_.SetRowFlags(0, kRowTombstone);
  const RowView row = page_.RowAt(0).value();
  EXPECT_EQ(row.g_trx_id, MakeGTrxId(1, 2, 3));
  EXPECT_EQ(row.cts, 77u);
  EXPECT_EQ(row.undo_ptr, MakeUndoPtr(1, 123));
  EXPECT_TRUE(row.tombstone());
  EXPECT_EQ(row.value.ToString(), "abc");  // value untouched
}

TEST_F(PageTest, FillsUntilFullThenCompacts) {
  int inserted = 0;
  while (page_.WriteRow(Row(inserted, std::string(20, 'x'))).ok()) {
    ++inserted;
  }
  EXPECT_GT(inserted, 10);
  // Deleting makes room again (garbage reclaimed by compaction).
  ASSERT_TRUE(page_.RemoveRow(0).ok());
  ASSERT_TRUE(page_.RemoveRow(1).ok());
  EXPECT_TRUE(page_.WriteRow(Row(1000, std::string(20, 'y'))).ok());
}

TEST_F(PageTest, GarbageReclaimedOnShrinkGrow) {
  ASSERT_TRUE(page_.WriteRow(Row(1, std::string(100, 'a'))).ok());
  const size_t before = page_.FreeSpace();
  ASSERT_TRUE(page_.WriteRow(Row(1, std::string(10, 'b'))).ok());
  EXPECT_EQ(page_.FreeSpace(), before + 90);  // garbage counted as free
}

TEST_F(PageTest, CopyAndTruncate) {
  for (int64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(page_.WriteRow(Row(k, "v" + std::to_string(k))).ok());
  }
  const std::string upper = page_.CopyRowsInRange(4, 8);
  page_.TruncateFromKey(4);
  EXPECT_EQ(page_.nslots(), 4);
  EXPECT_EQ(page_.KeyAt(3), 3);

  // Load the copied rows into a sibling.
  auto buf2 = std::make_unique<char[]>(kPageSize);
  Page right(buf2.get(), kPageSize);
  right.Init(PageId{1, 3}, 0, 2, kInvalidPageNo);
  ASSERT_TRUE(right.LoadRows(upper).ok());
  EXPECT_EQ(right.nslots(), 4);
  EXPECT_EQ(right.KeyAt(0), 4);
  EXPECT_EQ(right.RowAt(3).value().value.ToString(), "v7");
}

TEST_F(PageTest, MoveUpperHalf) {
  for (int64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(page_.WriteRow(Row(k, "val")).ok());
  }
  auto buf2 = std::make_unique<char[]>(kPageSize);
  Page right(buf2.get(), kPageSize);
  right.Init(PageId{1, 3}, 0, kInvalidPageNo, kInvalidPageNo);
  const int64_t sep = page_.MoveUpperHalfTo(&right);
  EXPECT_EQ(sep, 5);
  EXPECT_EQ(page_.nslots(), 5);
  EXPECT_EQ(right.nslots(), 5);
  EXPECT_EQ(right.KeyAt(0), 5);
}

TEST_F(PageTest, NegativeKeysSortCorrectly) {
  ASSERT_TRUE(page_.WriteRow(Row(5, "p")).ok());
  ASSERT_TRUE(page_.WriteRow(Row(-5, "n")).ok());
  ASSERT_TRUE(page_.WriteRow(Row(0, "z")).ok());
  EXPECT_EQ(page_.KeyAt(0), -5);
  EXPECT_EQ(page_.KeyAt(1), 0);
  EXPECT_EQ(page_.KeyAt(2), 5);
}

TEST_F(PageTest, LlsnStamp) {
  page_.set_llsn(12345);
  EXPECT_EQ(page_.llsn(), 12345u);
  EXPECT_EQ(Page::PeekLlsn(buf_.get()), 12345u);
}

TEST(RowTest, EncodeDecodeRoundTrip) {
  const std::string image = EncodeRow(-42, MakeGTrxId(2, 3, 4), 99,
                                      MakeUndoPtr(2, 1000), kRowTombstone,
                                      "payload");
  auto row = DecodeRow(image.data(), image.size());
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->key, -42);
  EXPECT_EQ(row->g_trx_id, MakeGTrxId(2, 3, 4));
  EXPECT_EQ(row->cts, 99u);
  EXPECT_EQ(row->undo_ptr, MakeUndoPtr(2, 1000));
  EXPECT_TRUE(row->tombstone());
  EXPECT_EQ(row->value.ToString(), "payload");
  EXPECT_EQ(RowSizeAt(image.data()), image.size());
}

TEST(RowTest, DecodeRejectsShortBuffers) {
  const std::string image = EncodeRow(1, 0, 0, 0, 0, "abc");
  EXPECT_FALSE(DecodeRow(image.data(), 10).ok());
  EXPECT_FALSE(DecodeRow(image.data(), image.size() - 1).ok());
}

TEST(RowTest, UndoPtrPacking) {
  const UndoPtr p = MakeUndoPtr(1000, (uint64_t{1} << 54) - 1);
  EXPECT_EQ(UndoPtrNode(p), 1000);
  EXPECT_EQ(UndoPtrOffset(p), (uint64_t{1} << 54) - 1);
}

}  // namespace
}  // namespace polarmp
