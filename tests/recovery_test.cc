#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace polarmp {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions opts;
    opts.page_size = 1024;
    opts.node.lbp.page_size = 1024;
    opts.node.checkpoint_interval_ms = 100;
    auto cluster = Cluster::Create(opts);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
  }

  DbNode* AddNode() {
    auto node = cluster_->AddNode();
    EXPECT_TRUE(node.ok());
    return node.value();
  }

  TableHandle Open(DbNode* node, const std::string& name = "t") {
    auto table = node->OpenTable(name);
    EXPECT_TRUE(table.ok());
    return table.value();
  }

  Status Write1(DbNode* node, const TableHandle& t, int64_t key,
                const std::string& value) {
    Session s(node, IsolationLevel::kReadCommitted);
    POLARMP_RETURN_IF_ERROR(s.Begin());
    POLARMP_RETURN_IF_ERROR(s.Put(t, key, value));
    return s.Commit();
  }

  StatusOr<std::string> Read1(DbNode* node, const TableHandle& t,
                              int64_t key) {
    Session s(node, IsolationLevel::kReadCommitted);
    POLARMP_RETURN_IF_ERROR(s.Begin());
    auto v = s.Get(t, key);
    POLARMP_RETURN_IF_ERROR(s.Commit());
    return v;
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(RecoveryTest, CommittedDataSurvivesNodeCrash) {
  DbNode* n1 = AddNode();
  ASSERT_TRUE(cluster_->CreateTable("t").ok());
  TableHandle t1 = Open(n1);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(Write1(n1, t1, i, "v" + std::to_string(i)).ok());
  }
  const NodeId id = n1->id();
  ASSERT_TRUE(cluster_->CrashNode(id).ok());
  auto restarted = cluster_->RestartNode(id);
  ASSERT_TRUE(restarted.ok());
  TableHandle t2 = Open(restarted.value());
  for (int i = 0; i < 200; ++i) {
    auto v = Read1(restarted.value(), t2, i);
    ASSERT_TRUE(v.ok()) << "key " << i << ": " << v.status().ToString();
    EXPECT_EQ(v.value(), "v" + std::to_string(i));
  }
}

TEST_F(RecoveryTest, UncommittedTransactionRolledBackOnRestart) {
  DbNode* n1 = AddNode();
  ASSERT_TRUE(cluster_->CreateTable("t").ok());
  TableHandle t1 = Open(n1);
  ASSERT_TRUE(Write1(n1, t1, 1, "committed").ok());
  // Leave a transaction in flight across the crash: its redo (undo-append +
  // row write) is forced by a later committed transaction's group commit.
  {
    Session in_flight(n1, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(in_flight.Begin().ok());
    ASSERT_TRUE(in_flight.Update(t1, 1, "uncommitted").ok());
    ASSERT_TRUE(in_flight.Insert(t1, 999, "ghost-row").ok());
    ASSERT_TRUE(Write1(n1, t1, 2, "forcer").ok());  // forces the log
    const NodeId id = n1->id();
    // Crash with the transaction still open. The Session destructor would
    // roll back through a dead node, so disarm it first.
    ASSERT_TRUE(cluster_->CrashNode(id).ok());
    // NOTE: `in_flight` must not touch the dead node; we intentionally leak
    // the logical transaction (the crash dropped it) and only destroy the
    // local object after restart.
    auto restarted = cluster_->RestartNode(id);
    ASSERT_TRUE(restarted.ok());
    TableHandle t2 = Open(restarted.value());
    EXPECT_EQ(Read1(restarted.value(), t2, 1).value(), "committed");
    EXPECT_TRUE(Read1(restarted.value(), t2, 999).status().IsNotFound());
    EXPECT_EQ(Read1(restarted.value(), t2, 2).value(), "forcer");
    in_flight.Disarm();
  }
}

TEST_F(RecoveryTest, SurvivorUnaffectedByPeerCrash) {
  // Fig. 15 setup: the two nodes access different tables, so the
  // survivor's traffic never hits the crashed node's ghost-fenced pages.
  DbNode* n1 = AddNode();
  DbNode* n2 = AddNode();
  ASSERT_TRUE(cluster_->CreateTable("t1").ok());
  ASSERT_TRUE(cluster_->CreateTable("t2").ok());
  TableHandle t1 = Open(n1, "t1");
  TableHandle t2 = Open(n2, "t2");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(Write1(n1, t1, i, "n1").ok());
    ASSERT_TRUE(Write1(n2, t2, 1000 + i, "n2").ok());
  }
  const NodeId id1 = n1->id();
  ASSERT_TRUE(cluster_->CrashNode(id1).ok());
  // Node 2 keeps serving its partition (the Fig. 15 scenario).
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(Write1(n2, t2, 2000 + i, "during-crash").ok());
    EXPECT_EQ(Read1(n2, t2, 1000 + i).value(), "n2");
  }
  auto restarted = cluster_->RestartNode(id1);
  ASSERT_TRUE(restarted.ok());
  TableHandle t1b = Open(restarted.value(), "t1");
  TableHandle t2b = Open(restarted.value(), "t2");
  EXPECT_EQ(Read1(restarted.value(), t1b, 10).value(), "n1");
  // Cross-visibility after recovery.
  EXPECT_EQ(Read1(restarted.value(), t2b, 2000).value(), "during-crash");
  Session s(n2, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(s.Begin().ok());
  TableHandle t1_on_n2 = Open(n2, "t1");
  EXPECT_EQ(s.Get(t1_on_n2, 10).value(), "n1");
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(RecoveryTest, RecoveryUsesDbpFastPath) {
  DbNode* n1 = AddNode();
  DbNode* n2 = AddNode();
  ASSERT_TRUE(cluster_->CreateTable("t").ok());
  TableHandle t1 = Open(n1);
  (void)n2;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(Write1(n1, t1, i, std::string(100, 'x')).ok());
  }
  // Deterministically publish the working set to the DBP, then produce a
  // log tail the recovery must replay.
  ASSERT_TRUE(n1->Checkpoint().ok());
  for (int i = 50; i < 100; ++i) {
    ASSERT_TRUE(Write1(n1, t1, i, std::string(100, 'y')).ok());
  }
  const uint64_t storage_reads_before = cluster_->page_store()->reads();
  const NodeId id = n1->id();
  ASSERT_TRUE(cluster_->CrashNode(id).ok());
  auto restarted = cluster_->RestartNode(id);
  ASSERT_TRUE(restarted.ok());
  // Most recovery pages should come from the DBP, not storage (§5.5).
  const uint64_t storage_reads = cluster_->page_store()->reads() -
                                 storage_reads_before;
  EXPECT_LT(storage_reads, 20u);
}

TEST_F(RecoveryTest, CrashedNodesGhostLocksFenceDirtyPages) {
  DbNode* n1 = AddNode();
  DbNode* n2 = AddNode();
  ASSERT_TRUE(cluster_->CreateTable("t").ok());
  TableHandle t1 = Open(n1);
  TableHandle t2 = Open(n2);
  ASSERT_TRUE(Write1(n1, t1, 1, "v1").ok());
  const NodeId id = n1->id();
  ASSERT_TRUE(cluster_->CrashNode(id).ok());
  // n1 held the leaf's X PLock lazily; n2 must still read the committed
  // value — either the ghost fence forces a wait until restart, or the
  // page had already reached the DBP. Restart first, then verify.
  auto restarted = cluster_->RestartNode(id);
  ASSERT_TRUE(restarted.ok());
  EXPECT_EQ(Read1(n2, t2, 1).value(), "v1");
}

TEST_F(RecoveryTest, FullClusterRestartFromLogs) {
  DbNode* n1 = AddNode();
  DbNode* n2 = AddNode();
  ASSERT_TRUE(cluster_->CreateTable("t").ok());
  TableHandle t1 = Open(n1);
  TableHandle t2 = Open(n2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(Write1(i % 2 == 0 ? n1 : n2, i % 2 == 0 ? t1 : t2, i,
                       "v" + std::to_string(i))
                    .ok());
  }
  const NodeId id1 = n1->id(), id2 = n2->id();
  ASSERT_TRUE(cluster_->CrashNode(id1).ok());
  ASSERT_TRUE(cluster_->CrashNode(id2).ok());
  // Lose the DSM tier too: recovery must work from storage + logs alone.
  auto stats = cluster_->RecoverAll(/*dsm_lost=*/true);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  DbNode* fresh = AddNode();
  TableHandle t = Open(fresh);
  for (int i = 0; i < 100; ++i) {
    auto v = Read1(fresh, t, i);
    ASSERT_TRUE(v.ok()) << "key " << i;
    EXPECT_EQ(v.value(), "v" + std::to_string(i));
  }
}

TEST_F(RecoveryTest, FullClusterRestartRollsBackInFlight) {
  DbNode* n1 = AddNode();
  ASSERT_TRUE(cluster_->CreateTable("t").ok());
  TableHandle t1 = Open(n1);
  ASSERT_TRUE(Write1(n1, t1, 1, "keep").ok());
  {
    Session in_flight(n1, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(in_flight.Begin().ok());
    ASSERT_TRUE(in_flight.Update(t1, 1, "drop-me").ok());
    ASSERT_TRUE(Write1(n1, t1, 2, "forcer").ok());
    ASSERT_TRUE(cluster_->CrashNode(n1->id()).ok());
    in_flight.Disarm();
  }
  auto stats = cluster_->RecoverAll(/*dsm_lost=*/true);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->uncommitted_trxs, 1u);
  DbNode* fresh = AddNode();
  TableHandle t = Open(fresh);
  EXPECT_EQ(Read1(fresh, t, 1).value(), "keep");
  EXPECT_EQ(Read1(fresh, t, 2).value(), "forcer");
}

TEST_F(RecoveryTest, RepeatedCrashRestartCycles) {
  DbNode* node = AddNode();
  ASSERT_TRUE(cluster_->CreateTable("t").ok());
  const NodeId id = node->id();
  for (int cycle = 0; cycle < 3; ++cycle) {
    TableHandle t = Open(cluster_->node(id));
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(Write1(cluster_->node(id), t, cycle * 100 + i,
                         "c" + std::to_string(cycle))
                      .ok());
    }
    ASSERT_TRUE(cluster_->CrashNode(id).ok());
    ASSERT_TRUE(cluster_->RestartNode(id).ok());
  }
  TableHandle t = Open(cluster_->node(id));
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 30; i += 7) {
      EXPECT_EQ(Read1(cluster_->node(id), t, cycle * 100 + i).value(),
                "c" + std::to_string(cycle));
    }
  }
}

}  // namespace
}  // namespace polarmp
