#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

#include "dsm/dsm.h"
#include "pmfs/lock_fusion.h"
#include "rdma/fabric.h"
#include "rdma/fault_injector.h"
#include "rdma/retry_policy.h"

namespace polarmp {
namespace {

// Fault-injection semantics: scripted faults fire deterministically, retry
// wrappers absorb transients and degrade to Busy on exhaustion, duplicated
// RPCs dedup on request ids, torn seqlocked writes never surface a mixed
// image.
class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : fabric_(ZeroLatencyProfile()), dsm_(&fabric_, 1, 1 << 20) {}
  ~FaultInjectionTest() override { fabric_.fault_injector()->Disarm(); }

  Fabric fabric_;
  Dsm dsm_;
};

TEST_F(FaultInjectionTest, TransientFaultRetriedTransparently) {
  auto frame = dsm_.Allocate(64);
  ASSERT_TRUE(frame.ok());
  fabric_.ResetCounters();
  fabric_.fault_injector()->ScriptFault(FaultOp::kRead, FaultKind::kUnavailable,
                                        /*count=*/2);
  uint64_t out = 0;
  EXPECT_TRUE(dsm_.Read(/*from=*/1, frame.value(), &out, 8).ok());
  EXPECT_EQ(fabric_.retries(), 2u);
  EXPECT_EQ(fabric_.faults_injected(), 2u);
}

TEST_F(FaultInjectionTest, RetryExhaustionDegradesToBusy) {
  auto frame = dsm_.Allocate(64);
  ASSERT_TRUE(frame.ok());
  fabric_.ResetCounters();
  // More scripted faults than the retry budget (4 attempts): the wrapper
  // must give up with backpressure, NOT a hard failure and NOT an abort.
  fabric_.fault_injector()->ScriptFault(FaultOp::kRead, FaultKind::kUnavailable,
                                        /*count=*/100);
  uint64_t out = 0;
  const Status s = dsm_.Read(/*from=*/1, frame.value(), &out, 8);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_NE(s.message().find("retry budget exhausted"), std::string::npos);
  // The exhausted status must NOT look retryable to an upstream wrapper.
  EXPECT_FALSE(IsInjectedTransient(s));
  EXPECT_EQ(fabric_.retries(), 3u);  // attempts 2..4 of the default budget
  EXPECT_EQ(fabric_.faults_injected(), 4u);
  // Once the remaining scripted faults are cleared, reads work again.
  fabric_.fault_injector()->Disarm();
  EXPECT_TRUE(dsm_.Read(/*from=*/1, frame.value(), &out, 8).ok());
}

TEST_F(FaultInjectionTest, GenuineUnavailableNotRetried) {
  auto frame = dsm_.Allocate(64);
  ASSERT_TRUE(frame.ok());
  fabric_.ResetCounters();
  // Kill the memory server: a REAL endpoint-down Unavailable must pass
  // through without burning retry budget — takeover, not retry, handles it.
  fabric_.DeregisterEndpoint(Dsm::ServerEndpoint(0));
  uint64_t out = 0;
  const Status s = dsm_.Read(/*from=*/1, frame.value(), &out, 8);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_FALSE(IsInjectedTransient(s));
  EXPECT_EQ(fabric_.retries(), 0u);
}

TEST_F(FaultInjectionTest, AtomicFaultInjectedBeforeExecution) {
  auto ptr = dsm_.Allocate(8);
  ASSERT_TRUE(ptr.ok());
  dsm_.HostWrite(ptr.value(), "\0\0\0\0\0\0\0\0", 8);
  fabric_.ResetCounters();
  fabric_.fault_injector()->ScriptFault(FaultOp::kAtomic,
                                        FaultKind::kUnavailable, /*count=*/1);
  // The failed attempt must not have mutated the word: after the retry the
  // counter reads exactly one increment.
  auto prev = dsm_.FetchAdd64(/*from=*/1, ptr.value(), 1);
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(prev.value(), 0u);
  EXPECT_EQ(dsm_.Load64(/*from=*/1, ptr.value()).value(), 1u);
  EXPECT_EQ(fabric_.retries(), 1u);
}

TEST_F(FaultInjectionTest, DuplicatedWriteIsIdempotent) {
  auto ptr = dsm_.Allocate(16);
  ASSERT_TRUE(ptr.ok());
  fabric_.fault_injector()->ScriptFault(FaultOp::kWrite, FaultKind::kDuplicate,
                                        /*count=*/1);
  const uint64_t v = 0xABCDABCD;
  ASSERT_TRUE(dsm_.Write(/*from=*/1, ptr.value(), &v, 8).ok());
  uint64_t out = 0;
  ASSERT_TRUE(dsm_.Read(/*from=*/1, ptr.value(), &out, 8).ok());
  EXPECT_EQ(out, v);  // applied twice = applied once for one-sided writes
}

TEST_F(FaultInjectionTest, TornSeqlockedWriteNeverSurfacesMixedImage) {
  constexpr uint64_t kLen = 256;
  auto frame = dsm_.Allocate(8 + kLen);
  ASSERT_TRUE(frame.ok());
  std::string a(kLen, 'A');
  dsm_.HostWriteSeqlocked(frame.value(), a.data(), kLen);

  // The writer's torn window: first half lands, the seqlock stays odd for
  // delay_ns, then the rest lands. Readers must spin past the window and
  // only ever observe all-'A' or all-'B'.
  fabric_.fault_injector()->ScriptFault(FaultOp::kSeqlockedWrite,
                                        FaultKind::kTorn, /*count=*/1,
                                        /*delay_ns=*/2'000'000);
  std::string b(kLen, 'B');
  std::thread writer([&] {
    ASSERT_TRUE(dsm_.WriteSeqlocked(/*from=*/1, frame.value(), b.data(), kLen)
                    .ok());
  });
  std::string got(kLen, '?');
  for (int i = 0; i < 100000; ++i) {
    ASSERT_TRUE(
        dsm_.ReadSeqlocked(/*from=*/2, frame.value(), got.data(), kLen).ok());
    const bool all_a = got == a;
    const bool all_b = got == b;
    ASSERT_TRUE(all_a || all_b) << "torn image surfaced at iteration " << i;
    if (all_b) break;
  }
  writer.join();
  ASSERT_TRUE(
      dsm_.ReadSeqlocked(/*from=*/2, frame.value(), got.data(), kLen).ok());
  EXPECT_EQ(got, b);
}

// ---- RPC request-id dedup on Lock Fusion ----------------------------------

TEST_F(FaultInjectionTest, LostRpcReplyDedupedNotReExecuted) {
  LockFusion lf(&fabric_);
  lf.AddNode(1, [](PageId) {});
  fabric_.ResetCounters();
  // Lose the REPLY: the service executed, the client retransmits the same
  // request id, and the dedup window answers from the recorded outcome
  // instead of double-acquiring.
  fabric_.fault_injector()->ScriptFault(FaultOp::kRpcReply,
                                        FaultKind::kUnavailable, /*count=*/1);
  const PageId page{1, 7};
  ASSERT_TRUE(
      lf.AcquirePLock(1, page, LockMode::kExclusive, /*timeout_ms=*/100).ok());
  EXPECT_EQ(fabric_.rpc_dedup_hits(), 1u);
  EXPECT_EQ(fabric_.retries(), 1u);
  // Exactly one hold was created: one release succeeds, a second finds none.
  EXPECT_TRUE(lf.ReleasePLock(1, page).ok());
  EXPECT_TRUE(lf.ReleasePLock(1, page).IsNotFound());
}

TEST_F(FaultInjectionTest, LostRpcRequestRetransmittedAndExecutedOnce) {
  LockFusion lf(&fabric_);
  lf.AddNode(1, [](PageId) {});
  fabric_.ResetCounters();
  // Lose the REQUEST: the service never ran, so the retransmit executes it
  // for the first time — no dedup hit.
  fabric_.fault_injector()->ScriptFault(FaultOp::kRpcRequest,
                                        FaultKind::kUnavailable, /*count=*/1);
  const PageId page{1, 9};
  ASSERT_TRUE(
      lf.AcquirePLock(1, page, LockMode::kExclusive, /*timeout_ms=*/100).ok());
  EXPECT_EQ(fabric_.rpc_dedup_hits(), 0u);
  EXPECT_EQ(fabric_.retries(), 1u);
  EXPECT_TRUE(lf.ReleasePLock(1, page).ok());
}

TEST_F(FaultInjectionTest, RpcTimeoutDegradesToBusyAfterBudget) {
  LockFusion lf(&fabric_);
  lf.AddNode(1, [](PageId) {});
  fabric_.fault_injector()->ScriptFault(FaultOp::kRpcRequest,
                                        FaultKind::kTimeout, /*count=*/100);
  const Status s =
      lf.AcquirePLock(1, PageId{1, 3}, LockMode::kShared, /*timeout_ms=*/100);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_FALSE(IsInjectedTransient(s));
}

// Seeded plans draw identical fault streams: chaos runs replay.
TEST_F(FaultInjectionTest, SeededPlanIsDeterministic) {
  FaultInjector a, b;
  a.Arm(DefaultChaosPlan(42));
  b.Arm(DefaultChaosPlan(42));
  for (int i = 0; i < 5000; ++i) {
    const FaultDecision da = a.Decide(FaultOp::kWrite);
    const FaultDecision db = b.Decide(FaultOp::kWrite);
    EXPECT_EQ(static_cast<int>(da.kind), static_cast<int>(db.kind));
  }
  FaultInjector c;
  c.Arm(DefaultChaosPlan(43));
  int diverged = 0;
  for (int i = 0; i < 5000; ++i) {
    if (a.Decide(FaultOp::kRead).kind != c.Decide(FaultOp::kRead).kind) {
      ++diverged;
    }
  }
  EXPECT_GT(diverged, 0);  // different seeds, different streams
}

}  // namespace
}  // namespace polarmp
