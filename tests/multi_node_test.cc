#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cluster/cluster.h"

namespace polarmp {
namespace {

// Cross-node tests: buffer coherence through the DBP, PLock negotiation,
// remote TIT visibility, cross-node row locks and concurrent stress.
class MultiNodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions opts;
    opts.page_size = 1024;
    opts.node.lbp.page_size = 1024;
    opts.node.trx.lock_wait_timeout_ms = 2000;
    auto cluster = Cluster::Create(opts);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    for (int i = 0; i < 3; ++i) {
      auto node = cluster_->AddNode();
      ASSERT_TRUE(node.ok());
      nodes_.push_back(node.value());
    }
    auto info = cluster_->CreateTable("t");
    ASSERT_TRUE(info.ok());
    for (DbNode* node : nodes_) {
      auto table = node->OpenTable("t");
      ASSERT_TRUE(table.ok());
      tables_.push_back(table.value());
    }
  }

  Status Write1(int node, int64_t key, const std::string& value) {
    Session s(nodes_[node], IsolationLevel::kReadCommitted);
    POLARMP_RETURN_IF_ERROR(s.Begin());
    POLARMP_RETURN_IF_ERROR(s.Put(tables_[node], key, value));
    return s.Commit();
  }

  StatusOr<std::string> Read1(int node, int64_t key) {
    Session s(nodes_[node], IsolationLevel::kReadCommitted);
    POLARMP_RETURN_IF_ERROR(s.Begin());
    auto v = s.Get(tables_[node], key);
    POLARMP_RETURN_IF_ERROR(s.Commit());
    return v;
  }

  std::unique_ptr<Cluster> cluster_;
  std::vector<DbNode*> nodes_;
  std::vector<TableHandle> tables_;
};

TEST_F(MultiNodeTest, WriteOnOneNodeVisibleOnOthers) {
  ASSERT_TRUE(Write1(0, 1, "from-node-1").ok());
  EXPECT_EQ(Read1(1, 1).value(), "from-node-1");
  EXPECT_EQ(Read1(2, 1).value(), "from-node-1");
}

TEST_F(MultiNodeTest, PingPongUpdatesStayCoherent) {
  ASSERT_TRUE(Write1(0, 1, "v0").ok());
  for (int i = 1; i <= 20; ++i) {
    const int writer = i % 3;
    ASSERT_TRUE(Write1(writer, 1, "v" + std::to_string(i)).ok());
    for (int reader = 0; reader < 3; ++reader) {
      EXPECT_EQ(Read1(reader, 1).value(), "v" + std::to_string(i))
          << "iteration " << i << " reader " << reader;
    }
  }
  // Buffer Fusion really moved pages (invalidations happened).
  EXPECT_GT(cluster_->buffer_fusion()->invalidations(), 0u);
  EXPECT_GT(cluster_->buffer_fusion()->fetches(), 0u);
}

TEST_F(MultiNodeTest, LazyPLockRetentionGrantsLocally) {
  // Repeated same-node access should hit the local PLock cache.
  ASSERT_TRUE(Write1(0, 1, "x").ok());
  const uint64_t fusion_before = nodes_[0]->plock_manager()->fusion_acquires();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(Write1(0, 1, "x" + std::to_string(i)).ok());
  }
  const uint64_t fusion_after = nodes_[0]->plock_manager()->fusion_acquires();
  EXPECT_GT(nodes_[0]->plock_manager()->local_grants(), 0u);
  // Warm path needs no (or very few) fusion round trips.
  EXPECT_LE(fusion_after - fusion_before, 4u);
}

TEST_F(MultiNodeTest, CrossNodeRowLockWaits) {
  ASSERT_TRUE(Write1(0, 1, "base").ok());
  Session a(nodes_[0], IsolationLevel::kReadCommitted);
  ASSERT_TRUE(a.Begin().ok());
  ASSERT_TRUE(a.Update(tables_[0], 1, "locked-by-a").ok());

  std::atomic<bool> b_done{false};
  std::thread blocked([&] {
    Session b(nodes_[1], IsolationLevel::kReadCommitted);
    ASSERT_TRUE(b.Begin().ok());
    ASSERT_TRUE(b.Update(tables_[1], 1, "from-b").ok());
    ASSERT_TRUE(b.Commit().ok());
    b_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(b_done.load());
  ASSERT_TRUE(a.Commit().ok());
  blocked.join();
  EXPECT_EQ(Read1(2, 1).value(), "from-b");
  EXPECT_GT(cluster_->lock_fusion()->rlock_waits(), 0u);
}

TEST_F(MultiNodeTest, CrossNodeDeadlockResolved) {
  ASSERT_TRUE(Write1(0, 1, "r1").ok());
  ASSERT_TRUE(Write1(0, 2, "r2").ok());
  std::atomic<int> aborted{0}, committed{0};
  auto worker = [&](int node, int64_t first, int64_t second) {
    Session s(nodes_[node], IsolationLevel::kReadCommitted);
    ASSERT_TRUE(s.Begin().ok());
    ASSERT_TRUE(s.Update(tables_[node], first, "w").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const Status st = s.Update(tables_[node], second, "w");
    if (st.ok()) {
      ASSERT_TRUE(s.Commit().ok());
      committed.fetch_add(1);
    } else {
      EXPECT_TRUE(st.IsAborted() || st.IsBusy()) << st.ToString();
      aborted.fetch_add(1);
    }
  };
  std::thread t1(worker, 0, 1, 2);
  std::thread t2(worker, 1, 2, 1);
  t1.join();
  t2.join();
  EXPECT_GE(committed.load(), 1);
  EXPECT_EQ(committed.load() + aborted.load(), 2);
}

TEST_F(MultiNodeTest, ReadCommittedSeesRemoteCommitsViaRemoteTit) {
  // A row whose CTS has not been backfilled on the reader node forces the
  // remote one-sided TIT read (Algorithm 1 lines 9-21).
  ASSERT_TRUE(Write1(0, 42, "remote").ok());
  const uint64_t reads_before = cluster_->fabric()->remote_reads();
  EXPECT_EQ(Read1(1, 42).value(), "remote");
  EXPECT_GT(cluster_->fabric()->remote_reads(), reads_before);
}

TEST_F(MultiNodeTest, ConcurrentDisjointWritersScaleCorrectly) {
  constexpr int kPerNode = 100;
  std::vector<std::thread> threads;
  for (int n = 0; n < 3; ++n) {
    threads.emplace_back([&, n] {
      for (int i = 0; i < kPerNode; ++i) {
        const int64_t key = n * 10000 + i;
        ASSERT_TRUE(Write1(n, key, "n" + std::to_string(n)).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int n = 0; n < 3; ++n) {
    for (int i = 0; i < kPerNode; i += 17) {
      EXPECT_EQ(Read1((n + 1) % 3, n * 10000 + i).value(),
                "n" + std::to_string(n));
    }
  }
}

TEST_F(MultiNodeTest, ConcurrentConflictingCountersAreAtomic) {
  // Three nodes increment the same logical counter under row locks; no
  // increment may be lost (2PL guarantees it even under RC here because
  // each increment re-reads under the lock... we emulate with blind writes
  // of a per-node tally and verify total writes).
  ASSERT_TRUE(Write1(0, 7, "0").ok());
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int n = 0; n < 3; ++n) {
    threads.emplace_back([&, n] {
      for (int i = 0; i < 30; ++i) {
        Session s(nodes_[n], IsolationLevel::kReadCommitted);
        ASSERT_TRUE(s.Begin().ok());
        auto cur = s.Get(tables_[n], 7);
        if (!cur.ok()) {
          ASSERT_TRUE(s.Rollback().ok());
          continue;
        }
        // Update holds the row lock; the value we write is derived from a
        // re-read inside the same transaction via the visible version.
        const Status st =
            s.Update(tables_[n], 7, std::to_string(std::stoi(*cur) + 1));
        if (!st.ok()) continue;  // aborted by timeout/deadlock; retry later
        auto after = s.Get(tables_[n], 7);
        ASSERT_TRUE(after.ok());
        if (s.Commit().ok()) total.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // RC-level check: the final value equals SOME interleaving, but since
  // Update locked before writing a stale derived value is possible under
  // RC; we only assert coherence (a committed value is readable and the
  // row survived concurrent cross-node traffic).
  auto final_value = Read1(0, 7);
  ASSERT_TRUE(final_value.ok());
  EXPECT_GE(std::stoi(*final_value), 1);
  EXPECT_GT(total.load(), 0);
}

TEST_F(MultiNodeTest, OnlineNodeAddition) {
  ASSERT_TRUE(Write1(0, 1, "before").ok());
  auto node = cluster_->AddNode();
  ASSERT_TRUE(node.ok());
  auto table = node.value()->OpenTable("t");
  ASSERT_TRUE(table.ok());
  Session s(node.value(), IsolationLevel::kReadCommitted);
  ASSERT_TRUE(s.Begin().ok());
  EXPECT_EQ(s.Get(*table, 1).value(), "before");
  ASSERT_TRUE(s.Put(*table, 2, "from-new-node").ok());
  ASSERT_TRUE(s.Commit().ok());
  EXPECT_EQ(Read1(0, 2).value(), "from-new-node");
}

TEST_F(MultiNodeTest, GracefulNodeStopReleasesEverything) {
  ASSERT_TRUE(Write1(2, 1, "x").ok());
  const NodeId id = nodes_[2]->id();
  ASSERT_TRUE(cluster_->StopNode(id).ok());
  nodes_.pop_back();
  tables_.pop_back();
  // Remaining nodes can write the same rows (no stuck PLocks/row locks).
  ASSERT_TRUE(Write1(0, 1, "y").ok());
  EXPECT_EQ(Read1(1, 1).value(), "y");
}

}  // namespace
}  // namespace polarmp
