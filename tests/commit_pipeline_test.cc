// Deterministic tests for the pipelined group-commit log writer and the
// async, future-based commit API (ISSUE 6): group formation, completion
// ordering, the async-commit crash window, and force-error delivery.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "node/session.h"
#include "wal/log_writer.h"

namespace polarmp {
namespace {

ClusterOptions QuietClusterOptions() {
  // Background activity (heartbeats, checkpoints, LBP/DBP flushes) forces
  // the log on its own; push it out past the test horizon so the only
  // forces observed are the ones the test issues.
  ClusterOptions opts;
  opts.node.background_interval_ms = 60'000;
  opts.node.checkpoint_interval_ms = 60'000;
  opts.node.lbp_flush_interval_ms = 60'000;
  opts.dbp_flush_interval_ms = 60'000;
  return opts;
}

class CommitPipelineTest : public ::testing::Test {
 protected:
  // Node options (async_commit among them) are cluster-wide, so each test
  // builds its own cluster.
  DbNode* MakeClusterWithNode(bool async_commit) {
    ClusterOptions opts = QuietClusterOptions();
    opts.node.trx.async_commit = async_commit;
    auto cluster = Cluster::Create(opts);
    EXPECT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    auto node = cluster_->AddNode();
    EXPECT_TRUE(node.ok());
    return node.value();
  }

  TableHandle Open(DbNode* node) {
    auto table = node->OpenTable("t");
    EXPECT_TRUE(table.ok());
    return table.value();
  }

  Status Write1(DbNode* node, const TableHandle& t, int64_t key,
                const std::string& value) {
    Session s(node, IsolationLevel::kReadCommitted);
    POLARMP_RETURN_IF_ERROR(s.Begin());
    POLARMP_RETURN_IF_ERROR(s.Put(t, key, value));
    return s.Commit();
  }

  StatusOr<std::string> Read1(DbNode* node, const TableHandle& t,
                              int64_t key) {
    Session s(node, IsolationLevel::kReadCommitted);
    POLARMP_RETURN_IF_ERROR(s.Begin());
    auto v = s.Get(t, key);
    POLARMP_RETURN_IF_ERROR(s.Commit());
    return v;
  }

  std::unique_ptr<Cluster> cluster_;
};

// N committers queued behind a paused flusher ride ONE device force.
TEST_F(CommitPipelineTest, GroupFormationOneForcePerBatch) {
  constexpr int kCommitters = 6;
  DbNode* node = MakeClusterWithNode(/*async_commit=*/false);
  ASSERT_TRUE(cluster_->CreateTable("t").ok());
  TableHandle t = Open(node);
  LogWriter* writer = node->log_writer();

  writer->PauseFlusher();
  const uint64_t forces_before = writer->forces();
  std::vector<std::thread> committers;
  for (int i = 0; i < kCommitters; ++i) {
    committers.emplace_back(
        [&, i] { ASSERT_TRUE(Write1(node, t, 100 + i, "gv").ok()); });
  }
  // Every committer parks one force request on the paused flusher.
  while (writer->pending_forces() < static_cast<size_t>(kCommitters)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(writer->forces(), forces_before);
  writer->ResumeFlusher();
  for (auto& c : committers) c.join();

  // One batch claim, one storage append, six completions.
  EXPECT_EQ(writer->forces(), forces_before + 1);
  EXPECT_EQ(writer->pending_forces(), 0u);
  for (int i = 0; i < kCommitters; ++i) {
    auto v = Read1(node, t, 100 + i);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), "gv");
  }
}

// Force completions fire in LSN order of their targets, regardless of the
// order the handles were enqueued in.
TEST_F(CommitPipelineTest, CompletionsFollowLsnOrder) {
  LogStore store(ZeroLatencyProfile());
  LogWriter writer(7, &store);
  writer.PauseFlusher();

  constexpr int kRecords = 8;
  std::vector<Lsn> ends;
  for (int i = 0; i < kRecords; ++i) {
    ends.push_back(writer.Add({MakeTrxCommit(7, 100 + i, 1)}));
  }
  std::mutex order_mu;
  std::vector<Lsn> completed;
  // Enqueue in REVERSE target order; completions must still run ascending.
  for (int i = kRecords - 1; i >= 0; --i) {
    const Lsn target = ends[i];
    writer.ForceAsync(target, [&, target](Status s) {
      ASSERT_TRUE(s.ok());
      std::lock_guard<std::mutex> lock(order_mu);
      completed.push_back(target);
    });
  }
  EXPECT_EQ(writer.pending_forces(), static_cast<size_t>(kRecords));
  writer.ResumeFlusher();
  ASSERT_TRUE(writer.ForceAll().ok());

  std::lock_guard<std::mutex> lock(order_mu);
  ASSERT_EQ(completed.size(), static_cast<size_t>(kRecords));
  EXPECT_EQ(completed, ends);
}

// The async-commit crash window: a commit acknowledged at force-enqueue but
// never forced is rolled back by recovery — the provisional CTS is never
// finalized and the pre-crash value survives.
TEST_F(CommitPipelineTest, AsyncCommitCrashWindowRollsBack) {
  DbNode* node = MakeClusterWithNode(/*async_commit=*/true);
  ASSERT_TRUE(cluster_->CreateTable("t").ok());
  TableHandle t = Open(node);

  ASSERT_TRUE(Write1(node, t, 1, "durable-old").ok());
  ASSERT_TRUE(node->log_writer()->ForceAll().ok());

  // Hold the flusher so the next commit's force can never land, then commit:
  // async mode acknowledges OK at enqueue anyway.
  node->log_writer()->PauseFlusher();
  ASSERT_TRUE(Write1(node, t, 1, "acked-not-durable").ok());

  const NodeId id = node->id();
  ASSERT_TRUE(cluster_->CrashNode(id).ok());
  auto restarted = cluster_->RestartNode(id);
  ASSERT_TRUE(restarted.ok());
  DbNode* revived = restarted.value();

  TableHandle t2 = Open(revived);
  auto v = Read1(revived, t2, 1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "durable-old");
}

// A LogStore append failure is delivered to EVERY queued committer, the
// buffer survives, and a retry force succeeds.
TEST_F(CommitPipelineTest, ForceErrorReachesEveryWaiter) {
  LogStore store(ZeroLatencyProfile());
  LogWriter writer(9, &store);
  writer.PauseFlusher();

  const Lsn end1 = writer.Add({MakeTrxCommit(9, 1, 1)});
  const Lsn end2 = writer.Add({MakeTrxCommit(9, 2, 2)});
  std::atomic<int> io_errors{0};
  writer.ForceAsync(end1, [&](Status s) {
    EXPECT_TRUE(s.IsIOError()) << s.ToString();
    io_errors.fetch_add(1);
  });
  LogWriter::ForceHandle handle = writer.ForceAsync(end2);

  store.FailNextAppends(1);
  writer.ResumeFlusher();

  const Status second = handle.Wait();
  EXPECT_TRUE(second.IsIOError()) << second.ToString();
  EXPECT_EQ(io_errors.load(), 1);
  EXPECT_EQ(writer.durable_lsn(), 0u);
  EXPECT_EQ(writer.buffered_lsn(), end2);

  // The failed batch went back into the buffer: a retry forces all of it.
  ASSERT_TRUE(writer.ForceTo(end2).ok());
  EXPECT_EQ(writer.durable_lsn(), end2);
  EXPECT_EQ(store.DurableLsn(9).value(), end2);
}

}  // namespace
}  // namespace polarmp
