#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "pmfs/buffer_fusion.h"

namespace polarmp {
namespace {

constexpr uint32_t kPageSize = 256;

class BufferFusionTest : public ::testing::Test {
 protected:
  BufferFusionTest()
      : fabric_(ZeroLatencyProfile()),
        dsm_(&fabric_, 1, 1 << 20),
        page_store_(ZeroLatencyProfile(), kPageSize) {
    BufferFusion::Options opts;
    opts.capacity_pages = 8;
    opts.page_size = kPageSize;
    opts.flush_interval_ms = 5;
    bf_ = std::make_unique<BufferFusion>(&fabric_, &dsm_, &page_store_, opts);
    EXPECT_TRUE(page_store_.CreateSpace(1).ok());
    // Nodes 1 and 2 with one invalid flag each.
    EXPECT_TRUE(fabric_.RegisterRegion(1, kLbpFlagsRegion, flags1_, 16).ok());
    EXPECT_TRUE(fabric_.RegisterRegion(2, kLbpFlagsRegion, flags2_, 16).ok());
    bf_->AddNode(1);
    bf_->AddNode(2);
  }

  std::string MakePage(char fill, Llsn llsn) {
    std::string p(kPageSize, fill);
    // Keep a valid LLSN stamp at the page-header offset (8).
    std::memcpy(p.data() + 8, &llsn, 8);
    return p;
  }

  Fabric fabric_;
  Dsm dsm_;
  PageStore page_store_;
  std::unique_ptr<BufferFusion> bf_;
  std::atomic<uint64_t> flags1_[2] = {0, 0};
  std::atomic<uint64_t> flags2_[2] = {0, 0};
};

TEST_F(BufferFusionTest, RegisterPushFetch) {
  const PageId page{1, 0};
  auto reg1 = bf_->RegisterCopy(1, page, 0);
  ASSERT_TRUE(reg1.ok());
  EXPECT_FALSE(reg1->present);

  const std::string content = MakePage('a', 5);
  ASSERT_TRUE(bf_->PushPage(1, reg1->frame, content.data()).ok());
  ASSERT_TRUE(bf_->NotifyPush(1, page, 5, /*clean_load=*/false).ok());

  auto reg2 = bf_->RegisterCopy(2, page, 0);
  ASSERT_TRUE(reg2.ok());
  EXPECT_TRUE(reg2->present);
  EXPECT_EQ(reg2->frame, reg1->frame);  // stable r_addr

  std::string out(kPageSize, 0);
  ASSERT_TRUE(bf_->FetchPage(2, reg2->frame, out.data()).ok());
  EXPECT_EQ(out, content);
}

TEST_F(BufferFusionTest, PushInvalidatesOtherCopies) {
  const PageId page{1, 0};
  auto reg1 = bf_->RegisterCopy(1, page, 0);
  auto reg2 = bf_->RegisterCopy(2, page, 8);  // node 2's flag is flags2_[1]
  ASSERT_TRUE(reg1.ok());
  ASSERT_TRUE(reg2.ok());

  const std::string content = MakePage('b', 3);
  ASSERT_TRUE(bf_->PushPage(1, reg1->frame, content.data()).ok());
  ASSERT_TRUE(bf_->NotifyPush(1, page, 3, /*clean_load=*/false).ok());
  EXPECT_EQ(flags2_[1].load(), 1u);  // node 2 invalidated
  EXPECT_EQ(flags1_[0].load(), 0u);  // pusher untouched
  EXPECT_EQ(bf_->invalidations(), 1u);
}

TEST_F(BufferFusionTest, CleanLoadPushDoesNotInvalidate) {
  const PageId page{1, 0};
  auto reg1 = bf_->RegisterCopy(1, page, 0);
  auto reg2 = bf_->RegisterCopy(2, page, 8);
  const std::string content = MakePage('c', 2);
  ASSERT_TRUE(bf_->PushPage(1, reg1->frame, content.data()).ok());
  ASSERT_TRUE(bf_->NotifyPush(1, page, 2, /*clean_load=*/true).ok());
  EXPECT_EQ(flags2_[1].load(), 0u);
  EXPECT_EQ(bf_->LastFlushedLlsn(page), 2u);  // counted as already durable
}

TEST_F(BufferFusionTest, BackgroundFlusherWritesStorage) {
  const PageId page{1, 0};
  auto reg = bf_->RegisterCopy(1, page, 0);
  const std::string content = MakePage('d', 9);
  ASSERT_TRUE(bf_->PushPage(1, reg->frame, content.data()).ok());
  ASSERT_TRUE(bf_->NotifyPush(1, page, 9, /*clean_load=*/false).ok());
  bf_->Start();
  for (int i = 0; i < 200 && bf_->LastFlushedLlsn(page) < 9; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  bf_->Stop();
  EXPECT_GE(bf_->LastFlushedLlsn(page), 9u);
  std::string out(kPageSize, 0);
  ASSERT_TRUE(page_store_.ReadPage(page, out.data()).ok());
  EXPECT_EQ(out, content);
}

TEST_F(BufferFusionTest, SynchronousFlushPages) {
  const PageId page{1, 0};
  auto reg = bf_->RegisterCopy(1, page, 0);
  const std::string content = MakePage('e', 4);
  ASSERT_TRUE(bf_->PushPage(1, reg->frame, content.data()).ok());
  ASSERT_TRUE(bf_->NotifyPush(1, page, 4, /*clean_load=*/false).ok());
  ASSERT_TRUE(bf_->FlushPages(1, {page}).ok());
  EXPECT_EQ(bf_->LastFlushedLlsn(page), 4u);
  EXPECT_TRUE(page_store_.PageExists(page));
}

TEST_F(BufferFusionTest, HostWriteInvalidatesAndServesRecoveryReads) {
  const PageId page{1, 0};
  ASSERT_TRUE(bf_->RegisterCopy(2, page, 8).ok());
  const std::string content = MakePage('f', 11);
  ASSERT_TRUE(bf_->HostWritePage(page, content.data(), 11, /*flushed=*/true).ok());
  EXPECT_EQ(flags2_[1].load(), 1u);
  EXPECT_TRUE(bf_->HasValidPage(page));
  std::string out(kPageSize, 0);
  ASSERT_TRUE(bf_->ReadPageForRecovery(1, page, out.data()).ok());
  EXPECT_EQ(out, content);
  EXPECT_EQ(bf_->LastFlushedLlsn(page), 11u);
}

TEST_F(BufferFusionTest, EvictionNeedsCleanCopyFreeEntries) {
  // Fill the 8-frame DBP with copy-free clean pages, then one more page
  // must trigger an eviction rather than failing.
  for (PageNo i = 0; i < 8; ++i) {
    const PageId page{1, i};
    auto reg = bf_->RegisterCopy(1, page, 0);
    ASSERT_TRUE(reg.ok());
    const std::string content = MakePage('g', i + 1);
    ASSERT_TRUE(bf_->PushPage(1, reg->frame, content.data()).ok());
    ASSERT_TRUE(bf_->NotifyPush(1, page, i + 1, /*clean_load=*/true).ok());
    ASSERT_TRUE(bf_->UnregisterCopy(1, page).ok());
  }
  auto reg = bf_->RegisterCopy(1, PageId{1, 100}, 0);
  ASSERT_TRUE(reg.ok());
  EXPECT_FALSE(reg->present);
}

TEST_F(BufferFusionTest, RemoveNodeDropsCopies) {
  const PageId page{1, 0};
  ASSERT_TRUE(bf_->RegisterCopy(1, page, 0).ok());
  ASSERT_TRUE(bf_->RegisterCopy(2, page, 8).ok());
  bf_->RemoveNode(2);
  auto reg1 = bf_->RegisterCopy(1, page, 0);
  const std::string content = MakePage('h', 20);
  ASSERT_TRUE(bf_->PushPage(1, reg1->frame, content.data()).ok());
  ASSERT_TRUE(bf_->NotifyPush(1, page, 20, /*clean_load=*/false).ok());
  EXPECT_EQ(flags2_[1].load(), 0u);  // no longer a copy holder
}

}  // namespace
}  // namespace polarmp
