#include <gtest/gtest.h>

#include <thread>
#include <vector>
#include <vector>

#include "pmfs/tso.h"
#include "pmfs/transaction_fusion.h"
#include "txn/tit.h"

namespace polarmp {
namespace {

class TitTest : public ::testing::Test {
 protected:
  TitTest() : fabric_(ZeroLatencyProfile()), tit_(&fabric_, 64) {
    EXPECT_TRUE(tit_.AddNode(1).ok());
    EXPECT_TRUE(tit_.AddNode(2).ok());
  }
  Fabric fabric_;
  Tit tit_;
};

TEST_F(TitTest, AllocPublishRead) {
  auto gid = tit_.AllocSlot(1, 100);
  ASSERT_TRUE(gid.ok());
  EXPECT_EQ(GTrxNode(*gid), 1);

  // Active: cts INIT, matching version.
  auto read = tit_.ReadSlot(2, *gid);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->cts, kCsnInit);
  EXPECT_EQ(read->version, GTrxVersion(*gid));

  tit_.PublishCts(*gid, 555);
  read = tit_.ReadSlot(2, *gid);
  EXPECT_EQ(read->cts, 555u);
}

TEST_F(TitTest, SlotReuseBumpsVersion) {
  auto g1 = tit_.AllocSlot(1, 100);
  ASSERT_TRUE(g1.ok());
  tit_.PublishCts(*g1, 10);
  tit_.FreeSlot(*g1);
  // Allocate until the same slot is reused.
  GTrxId g2 = kInvalidGTrxId;
  for (int i = 0; i < 200; ++i) {
    auto g = tit_.AllocSlot(1, 200 + i);
    ASSERT_TRUE(g.ok());
    if (GTrxSlot(*g) == GTrxSlot(*g1)) {
      g2 = *g;
      break;
    }
    tit_.FreeSlot(*g);
  }
  ASSERT_NE(g2, kInvalidGTrxId);
  EXPECT_GT(GTrxVersion(g2), GTrxVersion(*g1));
  // A read against the OLD gid sees the version mismatch (Algorithm 1's
  // "slot reused ⇒ committed and visible to all" case).
  auto read = tit_.ReadSlot(2, *g1);
  ASSERT_TRUE(read.ok());
  EXPECT_NE(read->version, GTrxVersion(*g1));
}

TEST_F(TitTest, RefFlagProtocol) {
  auto gid = tit_.AllocSlot(1, 1);
  ASSERT_TRUE(gid.ok());
  EXPECT_FALSE(tit_.ReadAndClearRef(*gid));
  ASSERT_TRUE(tit_.SetRefRemote(2, *gid).ok());
  EXPECT_TRUE(tit_.ReadAndClearRef(*gid));
  EXPECT_FALSE(tit_.ReadAndClearRef(*gid));  // cleared
}

TEST_F(TitTest, ExhaustionAndLiveCount) {
  std::vector<GTrxId> gids;
  for (uint32_t i = 0; i < 64; ++i) {
    auto g = tit_.AllocSlot(1, i + 1);
    ASSERT_TRUE(g.ok());
    gids.push_back(*g);
  }
  EXPECT_EQ(tit_.LiveSlots(1), 64u);
  EXPECT_FALSE(tit_.AllocSlot(1, 999).ok());
  tit_.FreeSlot(gids[10]);
  EXPECT_TRUE(tit_.AllocSlot(1, 999).ok());
}

TEST_F(TitTest, DeadOwnerUnavailable) {
  auto gid = tit_.AllocSlot(1, 1);
  ASSERT_TRUE(gid.ok());
  fabric_.DeregisterEndpoint(1);
  EXPECT_TRUE(tit_.ReadSlot(2, *gid).status().IsUnavailable());
  EXPECT_TRUE(tit_.SetRefRemote(2, *gid).IsUnavailable());
}

TEST_F(TitTest, ResetBumpsAllVersions) {
  auto gid = tit_.AllocSlot(1, 1);
  ASSERT_TRUE(gid.ok());
  tit_.ResetNode(1);
  auto read = tit_.ReadSlot(2, *gid);
  ASSERT_TRUE(read.ok());
  EXPECT_NE(read->version, GTrxVersion(*gid));  // old gid resolves "reused"
  EXPECT_EQ(tit_.LiveSlots(1), 0u);
}

TEST_F(TitTest, BaseVersionSeedsFreshTable) {
  Fabric fabric(ZeroLatencyProfile());
  Tit tit(&fabric, 8);
  ASSERT_TRUE(tit.AddNode(5, uint64_t{3} << 20).ok());
  auto gid = tit.AllocSlot(5, 1);
  ASSERT_TRUE(gid.ok());
  EXPECT_GT(GTrxVersion(*gid), uint32_t{3} << 20);
}

TEST_F(TitTest, ConcurrentAllocDistinctSlots) {
  std::vector<std::thread> threads;
  std::mutex mu;
  std::vector<GTrxId> all;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 10; ++i) {
        auto g = tit_.AllocSlot(2, t * 100 + i + 1);
        ASSERT_TRUE(g.ok());
        std::lock_guard lock(mu);
        all.push_back(*g);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<uint32_t> slots;
  for (GTrxId g : all) slots.insert(GTrxSlot(g));
  EXPECT_EQ(slots.size(), all.size());  // no slot double-allocated
}

TEST(TsoTest, MonotoneTimestamps) {
  Fabric fabric(ZeroLatencyProfile());
  Tso tso(&fabric);
  auto c1 = tso.NextCts(1);
  auto c2 = tso.NextCts(2);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c1.value(), kCsnFirst);
  EXPECT_EQ(c2.value(), kCsnFirst + 1);
  EXPECT_EQ(tso.CurrentCts(1).value(), kCsnFirst + 1);
}

TEST(TsoClientTest, LinearLamportCoalescesConcurrentFetches) {
  // With a realistic TSO round-trip latency, concurrent readers piggyback
  // on in-flight fetches: one fetch serves every request that arrived
  // before the fetch started.
  LatencyProfile profile = ZeroLatencyProfile();
  profile.rdma_read_ns = 300'000;  // sleeps, giving peers time to arrive
  Fabric fabric(profile);
  Tso tso(&fabric);
  TsoClient client(&tso, 1, /*use_linear_lamport=*/true);
  constexpr int kThreads = 4, kReads = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kReads; ++i) {
        ASSERT_TRUE(client.ReadTimestamp().ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(client.fetches() + client.reuses(), kThreads * kReads);
  EXPECT_GT(client.reuses(), 0u);
  EXPECT_LT(client.fetches(), static_cast<uint64_t>(kThreads) * kReads);
}

TEST(TsoClientTest, WithoutLltEveryReadFetches) {
  Fabric fabric(ZeroLatencyProfile());
  Tso tso(&fabric);
  TsoClient client(&tso, 1, /*use_linear_lamport=*/false);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.ReadTimestamp().ok());
  }
  EXPECT_EQ(client.fetches(), 10u);
  EXPECT_EQ(client.reuses(), 0u);
}

TEST(TransactionFusionTest, GlobalMinViewAggregation) {
  Fabric fabric(ZeroLatencyProfile());
  TransactionFusion fusion(&fabric);
  fusion.AddNode(1);
  fusion.AddNode(2);
  // Unreported nodes pin the minimum at its initial value.
  ASSERT_TRUE(fusion.ReportMinView(1, 100).ok());
  EXPECT_EQ(fusion.GlobalMinViewLocal(), kCsnFirst);
  ASSERT_TRUE(fusion.ReportMinView(2, 50).ok());
  EXPECT_EQ(fusion.GlobalMinViewLocal(), 50u);
  ASSERT_TRUE(fusion.ReportMinView(2, 120).ok());
  EXPECT_EQ(fusion.GlobalMinViewLocal(), 100u);
  // One-sided read path agrees.
  EXPECT_EQ(fusion.GlobalMinView(1).value(), 100u);
  // Removing the laggard lets the minimum advance.
  fusion.RemoveNode(1);
  EXPECT_EQ(fusion.GlobalMinViewLocal(), 120u);
  // Late/stale reports never regress the broadcast value.
  ASSERT_TRUE(fusion.ReportMinView(2, 60).ok());
  EXPECT_EQ(fusion.GlobalMinViewLocal(), 120u);
}

}  // namespace
}  // namespace polarmp
