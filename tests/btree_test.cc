#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cluster/cluster.h"
#include "common/random.h"

namespace polarmp {
namespace {

// Engine-level B-tree tests on a single-node cluster with a small page size
// to force deep trees and frequent splits.
class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions opts;
    opts.page_size = 512;
    opts.node.lbp.page_size = 512;
    opts.node.lbp.frames = 256;
    auto cluster = Cluster::Create(opts);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    auto node = cluster_->AddNode();
    ASSERT_TRUE(node.ok());
    node_ = node.value();
    auto table = cluster_->CreateTable("t");
    ASSERT_TRUE(table.ok());
    tree_ = node_->TreeForSpace(table->primary_space);
  }

  std::string Image(int64_t key, const std::string& value) {
    return EncodeRow(key, kInvalidGTrxId, kCsnMin, kNullUndoPtr, 0, value);
  }

  Status RawInsert(int64_t key, const std::string& value) {
    Mtr mtr(node_->engine());
    const std::string image = Image(key, value);
    auto pos = tree_->SearchLeafForWrite(&mtr, key, image.size());
    POLARMP_RETURN_IF_ERROR(pos.status());
    POLARMP_RETURN_IF_ERROR(mtr.LogWriteRow(pos->guard, image));
    mtr.Commit();
    return Status::OK();
  }

  StatusOr<std::string> RawGet(int64_t key) {
    Mtr mtr(node_->engine());
    auto pos = tree_->SearchLeaf(&mtr, key, LockMode::kShared);
    POLARMP_RETURN_IF_ERROR(pos.status());
    if (!pos->found) return Status::NotFound("absent");
    auto row = mtr.PageAt(pos->guard).RowAt(pos->slot);
    POLARMP_RETURN_IF_ERROR(row.status());
    std::string out = row->value.ToString();
    mtr.Commit();
    return out;
  }

  std::unique_ptr<Cluster> cluster_;
  DbNode* node_ = nullptr;
  BTree* tree_ = nullptr;
};

TEST_F(BTreeTest, InsertAndGetFewKeys) {
  ASSERT_TRUE(RawInsert(1, "one").ok());
  ASSERT_TRUE(RawInsert(2, "two").ok());
  EXPECT_EQ(RawGet(1).value(), "one");
  EXPECT_EQ(RawGet(2).value(), "two");
  EXPECT_TRUE(RawGet(3).status().IsNotFound());
}

TEST_F(BTreeTest, ManyInsertsForceMultiLevelSplits) {
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(RawInsert(i * 7 % kN, "v" + std::to_string(i * 7 % kN)).ok())
        << "at " << i;
  }
  for (int i = 0; i < kN; ++i) {
    auto v = RawGet(i * 7 % kN);
    ASSERT_TRUE(v.ok()) << "key " << i * 7 % kN;
    EXPECT_EQ(v.value(), "v" + std::to_string(i * 7 % kN));
  }
}

TEST_F(BTreeTest, DescendingInsertOrder) {
  for (int i = 500; i > 0; --i) {
    ASSERT_TRUE(RawInsert(i, std::to_string(i)).ok());
  }
  for (int i = 1; i <= 500; ++i) {
    EXPECT_EQ(RawGet(i).value(), std::to_string(i));
  }
}

TEST_F(BTreeTest, ScanRangeInOrder) {
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(RawInsert(i * 2, "e" + std::to_string(i * 2)).ok());
  }
  std::vector<int64_t> keys;
  ASSERT_TRUE(tree_->ScanRange(100, 200, [&](const RowView& row) {
                     keys.push_back(row.key);
                     return true;
                   })
                  .ok());
  ASSERT_EQ(keys.size(), 51u);  // 100,102,...,200
  EXPECT_EQ(keys.front(), 100);
  EXPECT_EQ(keys.back(), 200);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_F(BTreeTest, ScanEarlyStop) {
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(RawInsert(i, "x").ok());
  int seen = 0;
  ASSERT_TRUE(tree_->ScanRange(0, 99, [&](const RowView&) {
                     return ++seen < 10;
                   })
                  .ok());
  EXPECT_EQ(seen, 10);
}

TEST_F(BTreeTest, ScanAcrossLeafChainAfterSplits) {
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(RawInsert(i, "abcdefgh").ok());
  int64_t expect = 0;
  ASSERT_TRUE(tree_->ScanRange(0, 999, [&](const RowView& row) {
                     EXPECT_EQ(row.key, expect++);
                     return true;
                   })
                  .ok());
  EXPECT_EQ(expect, 1000);
}

TEST_F(BTreeTest, UpdatesAfterSplitsLandOnRightLeaf) {
  for (int i = 0; i < 800; ++i) ASSERT_TRUE(RawInsert(i, "initial##").ok());
  for (int i = 0; i < 800; i += 3) {
    ASSERT_TRUE(RawInsert(i, "updated!!" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 800; ++i) {
    const std::string expected =
        (i % 3 == 0) ? "updated!!" + std::to_string(i) : "initial##";
    EXPECT_EQ(RawGet(i).value(), expected) << i;
  }
}

TEST_F(BTreeTest, VariableSizedValues) {
  polarmp::Random rng(42);
  std::map<int64_t, std::string> model;
  for (int i = 0; i < 500; ++i) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(200));
    const std::string value(rng.Uniform(60) + 1,
                            static_cast<char>('a' + key % 26));
    model[key] = value;
    ASSERT_TRUE(RawInsert(key, value).ok());
  }
  for (const auto& [key, value] : model) {
    EXPECT_EQ(RawGet(key).value(), value);
  }
}

TEST_F(BTreeTest, InternalEntryHelpers) {
  const std::string entry = BTree::EncodeInternalEntry(42, 7);
  auto row = DecodeRow(entry.data(), entry.size());
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->key, 42);
  EXPECT_EQ(row->value.size(), 4u);
}

}  // namespace
}  // namespace polarmp
