// Unit tests for the observability subsystem (src/obs): registry/handle
// lifecycle, family aggregation across handles, concurrent
// snapshot-while-writing, JSON shape and TraceSpan recording.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace polarmp {
namespace {

// Every test uses its own registry so nothing leaks into (or depends on)
// the process-wide Global() that production components attach to.
TEST(MetricsRegistryTest, FamilyRegistrationAndTotals) {
  obs::MetricsRegistry reg;
  obs::Counter a("comp.ops", &reg);
  obs::Counter b("comp.ops", &reg);  // second handle, same family
  obs::Counter other("other.ops", &reg);

  a.Inc();
  a.Inc(4);
  b.Inc(10);
  other.Inc();

  EXPECT_EQ(a.Value(), 5u);
  EXPECT_EQ(b.Value(), 10u);
  EXPECT_EQ(reg.CounterTotal("comp.ops"), 15u);
  EXPECT_EQ(reg.CounterTotal("other.ops"), 1u);
  EXPECT_EQ(reg.CounterTotal("never.registered"), 0u);

  const std::vector<std::string> families = reg.CounterFamilies();
  EXPECT_EQ(families, (std::vector<std::string>{"comp.ops", "other.ops"}));
}

TEST(MetricsRegistryTest, DestroyedHandleFoldsIntoRetiredTotal) {
  obs::MetricsRegistry reg;
  obs::Counter keep("comp.ops", &reg);
  keep.Inc(7);
  {
    obs::Counter scoped("comp.ops", &reg);
    scoped.Inc(100);
    EXPECT_EQ(reg.CounterTotal("comp.ops"), 107u);
  }
  // The handle is gone but the family total is cumulative.
  EXPECT_EQ(reg.CounterTotal("comp.ops"), 107u);
  keep.Inc();
  EXPECT_EQ(reg.CounterTotal("comp.ops"), 108u);
}

TEST(MetricsRegistryTest, HistogramFamiliesMergeHandlesAndRetired) {
  obs::MetricsRegistry reg;
  obs::LatencyHistogram keep("comp.wait_ns", &reg);
  keep.Record(100);
  {
    obs::LatencyHistogram scoped("comp.wait_ns", &reg);
    scoped.Record(200);
    scoped.Record(300);
  }
  const Histogram total = reg.HistogramTotal("comp.wait_ns");
  EXPECT_EQ(total.count(), 3u);
  EXPECT_GE(total.max(), 300u);
  EXPECT_EQ(reg.HistogramFamilies(),
            std::vector<std::string>{"comp.wait_ns"});
  EXPECT_EQ(reg.HistogramTotal("never.registered").count(), 0u);
}

TEST(MetricsRegistryTest, ResetAllZeroesLiveAndRetired) {
  obs::MetricsRegistry reg;
  obs::Counter c("comp.ops", &reg);
  obs::LatencyHistogram h("comp.wait_ns", &reg);
  c.Inc(3);
  h.Record(42);
  { obs::Counter dead("comp.ops", &reg); dead.Inc(9); }

  reg.ResetAll();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(reg.CounterTotal("comp.ops"), 0u);
  EXPECT_EQ(reg.HistogramTotal("comp.wait_ns").count(), 0u);
  // Families survive a reset (zeroed, not deleted).
  EXPECT_EQ(reg.CounterFamilies(), std::vector<std::string>{"comp.ops"});
}

TEST(MetricsRegistryTest, SnapshotWhileWritingFromManyThreads) {
  obs::MetricsRegistry reg;
  obs::Counter c("comp.ops", &reg);
  obs::LatencyHistogram h("comp.wait_ns", &reg);

  constexpr int kThreads = 8;
  constexpr int kIters = 5'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kIters; ++i) {
        c.Inc();
        h.Record(static_cast<uint64_t>(i) + 1);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Snapshot concurrently with the writers; totals must be internally
  // consistent (monotone, no torn values) and the final total exact.
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const uint64_t now = reg.CounterTotal("comp.ops");
    EXPECT_GE(now, last);
    last = now;
    (void)reg.SnapshotJson();
    (void)reg.HistogramTotal("comp.wait_ns");
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(reg.CounterTotal("comp.ops"),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.HistogramTotal("comp.wait_ns").count(),
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistryTest, SnapshotJsonShape) {
  obs::MetricsRegistry reg;
  obs::Counter c("fabric.rpcs", &reg);
  obs::LatencyHistogram h("fabric.rpc_ns", &reg);
  c.Inc(3);
  h.Record(1000);
  h.Record(2000);

  const std::string json = reg.SnapshotJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"fabric.rpcs\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fabric.rpc_ns\""), std::string::npos) << json;
  for (const char* key : {"count", "min", "max", "mean", "p50", "p90", "p99"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << "missing histogram key " << key << " in " << json;
  }
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, GlobalIsSingletonAndUsedByDefault) {
  obs::MetricsRegistry& g1 = obs::MetricsRegistry::Global();
  obs::MetricsRegistry& g2 = obs::MetricsRegistry::Global();
  EXPECT_EQ(&g1, &g2);

  const uint64_t before = g1.CounterTotal("obs_test.default_attach");
  obs::Counter c("obs_test.default_attach");  // no registry arg -> Global()
  c.Inc();
  EXPECT_EQ(g1.CounterTotal("obs_test.default_attach"), before + 1);
}

TEST(TraceSpanTest, RecordsIntoSinkOnDestruction) {
  obs::MetricsRegistry reg;
  obs::LatencyHistogram h("span.test_ns", &reg);
  { obs::TraceSpan span(&h); }
  EXPECT_EQ(reg.HistogramTotal("span.test_ns").count(), 1u);
}

TEST(TraceSpanTest, FinishIsIdempotentAndCancelDrops) {
  obs::MetricsRegistry reg;
  obs::LatencyHistogram h("span.test_ns", &reg);
  {
    obs::TraceSpan span(&h);
    span.Finish();
    span.Finish();  // no double-record
  }
  EXPECT_EQ(reg.HistogramTotal("span.test_ns").count(), 1u);
  {
    obs::TraceSpan span(&h);
    span.Cancel();
  }
  EXPECT_EQ(reg.HistogramTotal("span.test_ns").count(), 1u);
}

TEST(TraceSpanTest, NullSinkIsNoOpAndMoveTransfersOwnership) {
  obs::TraceSpan null_span(nullptr);
  null_span.Finish();  // must not crash

  obs::MetricsRegistry reg;
  obs::LatencyHistogram h("span.test_ns", &reg);
  {
    obs::TraceSpan a(&h);
    obs::TraceSpan b(std::move(a));
    // Only `b` records; the moved-from span is inert.
  }
  EXPECT_EQ(reg.HistogramTotal("span.test_ns").count(), 1u);
}

}  // namespace
}  // namespace polarmp
