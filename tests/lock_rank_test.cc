// The runtime lock-rank checker (common/lock_rank.h): in-order descent
// passes; inversions, recursive acquisition and unpolicied same-rank
// acquisition abort the process with both lock stacks printed.
//
// Death tests fork, so they run with the "threadsafe" style to stay valid
// in the multi-threaded gtest process.

#include "common/lock_rank.h"

#include <thread>

#include <gtest/gtest.h>

namespace polarmp {
namespace {

#if POLARMP_LOCK_RANK_CHECKS

class LockRankDeathTest : public ::testing::Test {
 protected:
  LockRankDeathTest() {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }

  RankedMutex low_{LockRank::kTestLow, "test.low"};
  RankedMutex mid_{LockRank::kTestMid, "test.mid"};
  RankedMutex high_{LockRank::kTestHigh, "test.high"};
};

TEST_F(LockRankDeathTest, DescendingAcquisitionPasses) {
  // high -> mid -> low is the declared order; releases may interleave.
  std::lock_guard h(high_);
  std::lock_guard m(mid_);
  std::lock_guard l(low_);
  SUCCEED();
}

TEST_F(LockRankDeathTest, ReacquireAfterReleasePasses) {
  {
    std::lock_guard m(mid_);
  }
  std::lock_guard h(high_);
  std::lock_guard m(mid_);
  SUCCEED();
}

TEST_F(LockRankDeathTest, InversionDies) {
  EXPECT_DEATH(
      {
        std::lock_guard l(low_);
        std::lock_guard h(high_);  // acquiring a higher rank while holding low
      },
      "rank inversion");
}

TEST_F(LockRankDeathTest, InversionAcrossOneLevelDies) {
  EXPECT_DEATH(
      {
        std::lock_guard m(mid_);
        std::lock_guard h(high_);
      },
      "rank inversion");
}

TEST_F(LockRankDeathTest, RecursiveAcquisitionDies) {
  EXPECT_DEATH(
      {
        std::lock_guard a(mid_);
        mid_.lock();  // same mutex again: deadlock at runtime, abort here
      },
      "recursive acquisition");
}

TEST_F(LockRankDeathTest, SameRankWithoutPolicyDies) {
  RankedMutex peer{LockRank::kTestMid, "test.mid_peer"};
  EXPECT_DEATH(
      {
        std::lock_guard a(mid_);
        std::lock_guard b(peer);  // equal rank, neither marked SameRank::kAllow
      },
      "same-rank acquisition");
}

TEST_F(LockRankDeathTest, SameRankWithPolicyPasses) {
  // Page-latch style: multiple holds of one rank are legal when every
  // participant declares SameRank::kAllow (B-tree crabbing).
  RankedSharedMutex latch_a{LockRank::kTestMid, "test.latch_a",
                            SameRank::kAllow};
  RankedSharedMutex latch_b{LockRank::kTestMid, "test.latch_b",
                            SameRank::kAllow};
  std::lock_guard h(high_);
  latch_a.lock_shared();
  latch_b.lock_shared();
  latch_b.unlock_shared();
  latch_a.unlock_shared();
  SUCCEED();
}

TEST_F(LockRankDeathTest, SharedHoldStillOrdersDies) {
  RankedSharedMutex rw{LockRank::kTestLow, "test.low_rw"};
  EXPECT_DEATH(
      {
        rw.lock_shared();  // shared holds count fully against the order
        std::lock_guard h(high_);
      },
      "rank inversion");
}

TEST_F(LockRankDeathTest, HeldStackIsPerThread) {
  // A lock held here must not constrain another thread's acquisitions.
  std::lock_guard l(low_);
  std::thread t([] {
    RankedMutex other_high{LockRank::kTestHigh, "test.other_high"};
    std::lock_guard h(other_high);
  });
  t.join();
  SUCCEED();
}

TEST_F(LockRankDeathTest, TryLockFailurePopsStack) {
  std::thread holder([&] {
    std::lock_guard m(mid_);
    // Hold mid_ long enough for the main thread's try_lock to fail.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::lock_guard h(high_);
  if (!mid_.try_lock()) {
    // The failed try_lock must leave no phantom entry: acquiring low_ (and
    // later mid_ again) would abort if mid_ were still recorded as held.
    std::lock_guard l(low_);
  } else {
    mid_.unlock();
  }
  holder.join();
  std::lock_guard m(mid_);
  SUCCEED();
}

TEST_F(LockRankDeathTest, AssertHeldPassesWhileHolding) {
  MutexLock lock(mid_);
  mid_.AssertHeld();
  SUCCEED();
}

TEST_F(LockRankDeathTest, AssertHeldDiesWhenNotHeld) {
  EXPECT_DEATH(mid_.AssertHeld(), "is not held by this thread");
}

TEST_F(LockRankDeathTest, AssertHeldDiesAfterRelease) {
  EXPECT_DEATH(
      {
        { MutexLock lock(mid_); }
        mid_.AssertHeld();
      },
      "is not held by this thread");
}

TEST_F(LockRankDeathTest, AssertHeldDiesFromOtherThread) {
  // Held by this thread, asserted from another: the held-stack is
  // thread-local, so the assert must fail over there.
  MutexLock lock(mid_);
  EXPECT_DEATH(
      {
        std::thread t([&] { mid_.AssertHeld(); });
        t.join();
      },
      "is not held by this thread");
}

TEST_F(LockRankDeathTest, SharedAssertsDistinguishModes) {
  RankedSharedMutex rw{LockRank::kTestMid, "test.rw_assert"};
  {
    WriterLock w(rw);
    rw.AssertHeld();     // exclusive satisfies the exclusive assert
    rw.AssertAnyHeld();  // ...and the any-mode assert
  }
  {
    ReaderLock r(rw);
    rw.AssertAnyHeld();  // shared satisfies the any-mode assert
  }
  EXPECT_DEATH(rw.AssertAnyHeld(), "is not held by this thread");
}

TEST_F(LockRankDeathTest, GuardTypesDriveTheRankChecker) {
  // The annotated RAII guards are the std guards' replacements; the rank
  // checker must see straight through them, in both directions.
  {
    MutexLock h(high_);
    UniqueLock m(mid_);
    m.unlock();
    m.lock();
    MutexLock l(low_);
  }
  RankedSharedMutex rw{LockRank::kTestMid, "test.rw_guards"};
  {
    MutexLock h(high_);
    {
      WriterLock w(rw);
    }
    ReaderLock r(rw);
  }
  EXPECT_DEATH(
      {
        MutexLock l(low_);
        MutexLock m(mid_);  // inversion through the annotated guards
      },
      "rank inversion");
}

#endif  // POLARMP_LOCK_RANK_CHECKS

}  // namespace
}  // namespace polarmp
