#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster.h"

namespace polarmp {
namespace {

// Compute-side index cache: version-validated one-sided routing, remote and
// local SMO invalidation, lease interplay, eviction and the disabled mode.
class IndexCacheTest : public ::testing::Test {
 protected:
  void StartCluster(int nodes, uint32_t cache_slots, bool cache_enabled,
                    uint32_t lbp_frames = 64) {
    ClusterOptions opts;
    opts.page_size = 1024;
    opts.node.lbp.page_size = 1024;
    opts.node.lbp.frames = lbp_frames;
    opts.node.cache.enabled = cache_enabled;
    opts.node.cache.slots = cache_slots;
    opts.node.trx.lock_wait_timeout_ms = 2000;
    auto cluster = Cluster::Create(opts);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    for (int i = 0; i < nodes; ++i) {
      auto node = cluster_->AddNode();
      ASSERT_TRUE(node.ok());
      nodes_.push_back(node.value());
    }
    ASSERT_TRUE(cluster_->CreateTable("t").ok());
    for (DbNode* node : nodes_) {
      auto table = node->OpenTable("t");
      ASSERT_TRUE(table.ok());
      tables_.push_back(table.value());
    }
  }

  Status InsertRange(int node, int64_t begin, int64_t end,
                     const std::string& tag, int value_len = 4) {
    Session s(nodes_[node], IsolationLevel::kReadCommitted);
    POLARMP_RETURN_IF_ERROR(s.Begin());
    for (int64_t k = begin; k < end; ++k) {
      std::string v = tag + std::to_string(k);
      if (static_cast<int>(v.size()) < value_len) {
        v.resize(value_len, '.');
      }
      POLARMP_RETURN_IF_ERROR(s.Insert(tables_[node], k, v));
    }
    return s.Commit();
  }

  StatusOr<std::string> Read1(int node, int64_t key) {
    Session s(nodes_[node], IsolationLevel::kReadCommitted);
    POLARMP_RETURN_IF_ERROR(s.Begin());
    auto v = s.Get(tables_[node], key);
    POLARMP_RETURN_IF_ERROR(s.Commit());
    return v;
  }

  std::string Expected(int64_t key, const std::string& tag,
                       int value_len = 4) {
    std::string v = tag + std::to_string(key);
    if (static_cast<int>(v.size()) < value_len) v.resize(value_len, '.');
    return v;
  }

  std::unique_ptr<Cluster> cluster_;
  std::vector<DbNode*> nodes_;
  std::vector<TableHandle> tables_;
};

TEST_F(IndexCacheTest, WarmRoutesSkipInternalPages) {
  StartCluster(1, 64, /*cache_enabled=*/true);
  ASSERT_TRUE(InsertRange(0, 0, 600, "a").ok());
  IndexCache* cache = nodes_[0]->index_cache();
  // First pass installs the internal image(s); later passes route through
  // them without touching the guarded path for internal levels.
  for (int pass = 0; pass < 3; ++pass) {
    for (int64_t k = 0; k < 600; k += 17) {
      auto v = Read1(0, k);
      ASSERT_TRUE(v.ok()) << "pass " << pass << " key " << k;
      EXPECT_EQ(v.value(), Expected(k, "a"));
    }
  }
  EXPECT_GT(cache->installs(), 0u);
  EXPECT_GT(cache->hits(), 0u);
}

TEST_F(IndexCacheTest, DisabledCacheStaysCold) {
  StartCluster(1, 64, /*cache_enabled=*/false);
  ASSERT_TRUE(InsertRange(0, 0, 300, "a").ok());
  for (int64_t k = 0; k < 300; k += 13) {
    auto v = Read1(0, k);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), Expected(k, "a"));
  }
  EXPECT_EQ(nodes_[0]->index_cache()->installs(), 0u);
  EXPECT_EQ(nodes_[0]->index_cache()->hits(), 0u);
}

// The acceptance scenario: a remote node runs an SMO (leaf splits update
// the internal level) and pushes the result; the reader's cached internal
// image is one-sided invalidated, the next route REJECTS the stale version
// and refreshes with a one-sided seqlock-validated read — after which every
// key, including ones that moved during the split, is found.
TEST_F(IndexCacheTest, RemoteSplitInvalidatesCachedRouteAfterPush) {
  StartCluster(2, 64, /*cache_enabled=*/true);
  ASSERT_TRUE(InsertRange(0, 0, 600, "a").ok());

  // Warm node 0's cache (installs the root/internal images).
  for (int64_t k = 0; k < 600; k += 17) {
    ASSERT_TRUE(Read1(0, k).ok());
  }
  IndexCache* cache = nodes_[0]->index_cache();
  ASSERT_GT(cache->installs(), 0u);
  const uint64_t stale_before = cache->stale_rejects();
  const uint64_t refresh_before = cache->one_sided_refreshes();

  // Node 1 splits leaves (dense appends) and force-pushes the dirty pages,
  // which one-sided writes node 0's cache invalid flags.
  ASSERT_TRUE(InsertRange(1, 600, 1000, "b").ok());
  ASSERT_TRUE(nodes_[1]->Checkpoint().ok());

  // Node 0 reads across the whole (grown) key space through its cache.
  for (int64_t k = 0; k < 1000; k += 7) {
    auto v = Read1(0, k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(v.value(), Expected(k, k < 600 ? "a" : "b"));
  }
  // The stale image was rejected by the version check and refreshed with
  // one-sided reads — not via Buffer Fusion RPCs.
  EXPECT_GT(cache->stale_rejects(), stale_before);
  EXPECT_GT(cache->one_sided_refreshes(), refresh_before);
}

// Without a push the reader's image is stale with no flag set: routes land
// at-or-left of the key's home and the B-link right-walk heals them. Pure
// correctness assertion — no counter can (or should) fire here.
TEST_F(IndexCacheTest, StaleRouteHealsByRightWalkWithoutPush) {
  StartCluster(2, 64, /*cache_enabled=*/true);
  ASSERT_TRUE(InsertRange(0, 0, 600, "a").ok());
  for (int64_t k = 0; k < 600; k += 17) {
    ASSERT_TRUE(Read1(0, k).ok());
  }
  // Leaf splits on node 1, dirty pages NOT checkpointed.
  ASSERT_TRUE(InsertRange(1, 600, 900, "b").ok());
  for (int64_t k = 0; k < 900; k += 11) {
    auto v = Read1(0, k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(v.value(), Expected(k, k < 600 ? "a" : "b"));
  }
}

TEST_F(IndexCacheTest, LocalSplitInvalidatesOwnRoute) {
  StartCluster(1, 64, /*cache_enabled=*/true);
  ASSERT_TRUE(InsertRange(0, 0, 400, "a").ok());
  for (int64_t k = 0; k < 400; k += 17) {
    ASSERT_TRUE(Read1(0, k).ok());
  }
  // Local SMOs mark this node's own cached images stale (the LBP copy is
  // ahead of the DBP until the background push).
  ASSERT_TRUE(InsertRange(0, 400, 800, "b").ok());
  for (int64_t k = 0; k < 800; k += 7) {
    auto v = Read1(0, k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(v.value(), Expected(k, k < 400 ? "a" : "b"));
  }
}

// Writers route through the cache too, and mixed read/write traffic under
// continuous remote splits stays correct.
TEST_F(IndexCacheTest, CachedRoutesServeWritesUnderRemoteChurn) {
  StartCluster(2, 64, /*cache_enabled=*/true);
  ASSERT_TRUE(InsertRange(0, 0, 400, "a").ok());
  for (int64_t k = 0; k < 400; k += 17) {
    ASSERT_TRUE(Read1(0, k).ok());
  }
  for (int round = 0; round < 4; ++round) {
    const int64_t base = 400 + round * 100;
    ASSERT_TRUE(InsertRange(1, base, base + 100, "b").ok());
    if (round % 2 == 0) {
      ASSERT_TRUE(nodes_[1]->Checkpoint().ok());
    }
    // Updates through node 0's (possibly stale) routes.
    Session s(nodes_[0], IsolationLevel::kReadCommitted);
    ASSERT_TRUE(s.Begin().ok());
    for (int64_t k = base; k < base + 100; k += 9) {
      ASSERT_TRUE(s.Put(tables_[0], k, "w" + std::to_string(k)).ok());
    }
    ASSERT_TRUE(s.Commit().ok());
    for (int64_t k = base; k < base + 100; k += 9) {
      auto v = Read1(1, k);
      ASSERT_TRUE(v.ok()) << "key " << k;
      EXPECT_EQ(v.value(), "w" + std::to_string(k));
    }
  }
}

// A deep tree with a tiny cache churns slots; every eviction hands a
// possible PLock lease back through the on-evict hook and routing stays
// correct throughout.
TEST_F(IndexCacheTest, TinyCacheEvictsAndStaysCorrect) {
  StartCluster(1, 2, /*cache_enabled=*/true);
  // 40-byte values force ~3 levels at 1 KiB pages: multiple internal pages
  // compete for the 2 slots.
  ASSERT_TRUE(InsertRange(0, 0, 1400, "a", 40).ok());
  for (int pass = 0; pass < 2; ++pass) {
    for (int64_t k = 0; k < 1400; k += 13) {
      auto v = Read1(0, k);
      ASSERT_TRUE(v.ok()) << "key " << k;
      EXPECT_EQ(v.value(), Expected(k, "a", 40));
    }
  }
  EXPECT_GT(nodes_[0]->index_cache()->evictions(), 0u);
}

// LBP eviction of a cache-resident internal page demotes its PLock to a
// lease instead of releasing it; the next guarded descent (a split) re-pins
// it locally without a fusion round trip.
TEST_F(IndexCacheTest, LbpEvictionLeavesLeaseForCachedPages) {
  StartCluster(1, 64, /*cache_enabled=*/true, /*lbp_frames=*/8);
  ASSERT_TRUE(InsertRange(0, 0, 400, "a").ok());
  PLockManager* plock = nodes_[0]->plock_manager();
  // Routed reads skip pinning internal pages, so the root's LBP frame goes
  // LRU-cold and gets evicted while the cache still holds its image.
  for (int pass = 0; pass < 3; ++pass) {
    for (int64_t k = 0; k < 400; k += 5) {
      ASSERT_TRUE(Read1(0, k).ok());
    }
  }
  EXPECT_GT(plock->lease_demotes(), 0u);
  // Splits descend the guarded path and re-pin the leased internals.
  ASSERT_TRUE(InsertRange(0, 400, 800, "b").ok());
  EXPECT_GT(plock->lease_regrants(), 0u);
  for (int64_t k = 0; k < 800; k += 23) {
    auto v = Read1(0, k);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), Expected(k, k < 400 ? "a" : "b"));
  }
}

// Crash + recovery drops the cache; post-recovery traffic rebuilds it and
// reads stay correct (restart re-registers the flag region).
TEST_F(IndexCacheTest, SurvivesCrashRecovery) {
  StartCluster(2, 64, /*cache_enabled=*/true);
  ASSERT_TRUE(InsertRange(0, 0, 500, "a").ok());
  for (int64_t k = 0; k < 500; k += 17) {
    ASSERT_TRUE(Read1(0, k).ok());
  }
  ASSERT_GT(nodes_[0]->index_cache()->installs(), 0u);

  const NodeId crashed = nodes_[0]->id();
  ASSERT_TRUE(cluster_->CrashNode(crashed).ok());
  auto restarted = cluster_->RestartNode(crashed);
  ASSERT_TRUE(restarted.ok());
  nodes_[0] = restarted.value();
  tables_[0] = nodes_[0]->OpenTable("t").value();

  for (int64_t k = 0; k < 500; k += 17) {
    auto v = Read1(0, k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(v.value(), Expected(k, "a"));
  }
  EXPECT_GT(nodes_[0]->index_cache()->installs(), 0u);
}

}  // namespace
}  // namespace polarmp
