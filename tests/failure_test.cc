#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "cluster/cluster.h"
#include "common/random.h"

namespace polarmp {
namespace {

// Failure injection: crash nodes at random points under load and verify
// the durability contract — every ACKNOWLEDGED commit survives, every
// unacknowledged transaction either fully survives or fully disappears.
class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions opts;
    opts.page_size = 1024;
    opts.node.lbp.page_size = 1024;
    opts.node.checkpoint_interval_ms = 100;
    auto cluster = Cluster::Create(opts);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(FailureTest, AcknowledgedCommitsSurviveRepeatedCrashes) {
  DbNode* node = cluster_->AddNode().value();
  ASSERT_TRUE(cluster_->CreateTable("t").ok());
  std::set<int64_t> acknowledged;
  Random rng(3);
  int64_t next_key = 0;
  const NodeId id = node->id();

  for (int cycle = 0; cycle < 4; ++cycle) {
    DbNode* n = cluster_->node(id);
    TableHandle table = n->OpenTable("t").value();
    // A bursts of transactions, one left open at the crash point.
    const int txns = 20 + static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < txns; ++i) {
      Session s(n, IsolationLevel::kReadCommitted);
      ASSERT_TRUE(s.Begin().ok());
      const int64_t a = next_key++, b = next_key++;
      ASSERT_TRUE(s.Insert(table, a, "ack").ok());
      ASSERT_TRUE(s.Insert(table, b, "ack").ok());
      if (s.Commit().ok()) {
        acknowledged.insert(a);
        acknowledged.insert(b);
      }
    }
    Session in_flight(n, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(in_flight.Begin().ok());
    const int64_t ghost = next_key++;
    ASSERT_TRUE(in_flight.Insert(table, ghost, "never-acked").ok());
    ASSERT_TRUE(cluster_->CrashNode(id).ok());
    in_flight.Disarm();
    ASSERT_TRUE(cluster_->RestartNode(id).ok());

    // Every acknowledged row is present; the in-flight row is gone.
    DbNode* revived = cluster_->node(id);
    TableHandle t2 = revived->OpenTable("t").value();
    Session check(revived, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(check.Begin().ok());
    for (int64_t key : acknowledged) {
      ASSERT_TRUE(check.Get(t2, key).ok()) << "lost acknowledged key " << key
                                           << " in cycle " << cycle;
    }
    EXPECT_TRUE(check.Get(t2, ghost).status().IsNotFound());
    ASSERT_TRUE(check.Commit().ok());
  }
}

TEST_F(FailureTest, CrashUnderConcurrentLoadKeepsAcknowledgedWrites) {
  DbNode* victim = cluster_->AddNode().value();
  DbNode* survivor = cluster_->AddNode().value();
  ASSERT_TRUE(cluster_->CreateTable("tv").ok());
  ASSERT_TRUE(cluster_->CreateTable("ts").ok());

  std::mutex acked_mu;
  std::set<int64_t> acked_victim, acked_survivor;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> key_source{0};
  const NodeId victim_id = victim->id();

  std::thread victim_writer([&] {
    TableHandle t = victim->OpenTable("tv").value();
    while (!stop.load()) {
      Session s(victim, IsolationLevel::kReadCommitted);
      if (!s.Begin().ok()) break;
      const int64_t key = key_source.fetch_add(1);
      if (!s.Insert(t, key, "v").ok()) {
        s.Disarm();  // node may be dying under us
        break;
      }
      if (s.Commit().ok()) {
        std::lock_guard lock(acked_mu);
        acked_victim.insert(key);
      } else {
        s.Disarm();
        break;
      }
    }
  });
  std::thread survivor_writer([&] {
    TableHandle t = survivor->OpenTable("ts").value();
    while (!stop.load()) {
      Session s(survivor, IsolationLevel::kReadCommitted);
      if (!s.Begin().ok()) break;
      const int64_t key = key_source.fetch_add(1);
      if (!s.Insert(t, key, "s").ok()) continue;
      if (s.Commit().ok()) {
        std::lock_guard lock(acked_mu);
        acked_survivor.insert(key);
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  victim_writer.join();  // stop issuing before yanking the node
  ASSERT_TRUE(cluster_->CrashNode(victim_id).ok());
  survivor_writer.join();
  auto revived = cluster_->RestartNode(victim_id);
  ASSERT_TRUE(revived.ok());

  TableHandle tv = revived.value()->OpenTable("tv").value();
  TableHandle ts = survivor->OpenTable("ts").value();
  Session check(survivor, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(check.Begin().ok());
  for (int64_t key : acked_victim) {
    EXPECT_TRUE(check.Get(tv, key).ok()) << "lost victim-acked key " << key;
  }
  for (int64_t key : acked_survivor) {
    EXPECT_TRUE(check.Get(ts, key).ok()) << "lost survivor key " << key;
  }
  ASSERT_TRUE(check.Commit().ok());
}

// The headline robustness scenario (ISSUE 8): 3 primaries under load, one
// crashes, a SURVIVOR takes its state over while the others keep
// committing — no global halt, zero acknowledged commits lost, and the
// ghost of the victim's in-flight transaction is rolled back.
TEST_F(FailureTest, OnlineTakeoverKeepsClusterAvailable) {
  DbNode* victim = cluster_->AddNode().value();
  DbNode* s1 = cluster_->AddNode().value();
  DbNode* s2 = cluster_->AddNode().value();
  ASSERT_TRUE(cluster_->CreateTable("tv").ok());
  ASSERT_TRUE(cluster_->CreateTable("t1").ok());
  ASSERT_TRUE(cluster_->CreateTable("t2").ok());

  std::mutex acked_mu;
  std::set<int64_t> acked_victim, acked_s1, acked_s2;
  std::atomic<bool> stop_victim{false}, stop_all{false};
  std::atomic<int64_t> key_source{0};
  const NodeId victim_id = victim->id();

  std::thread victim_writer([&] {
    TableHandle t = victim->OpenTable("tv").value();
    while (!stop_victim.load()) {
      Session s(victim, IsolationLevel::kReadCommitted);
      if (!s.Begin().ok()) break;
      const int64_t key = key_source.fetch_add(1);
      if (!s.Insert(t, key, "v").ok()) {
        s.Disarm();
        break;
      }
      if (s.Commit().ok()) {
        std::lock_guard lock(acked_mu);
        acked_victim.insert(key);
      } else {
        s.Disarm();
        break;
      }
    }
  });
  auto survivor_loop = [&](DbNode* node, const char* table,
                           std::set<int64_t>* acked) {
    TableHandle t = node->OpenTable(table).value();
    while (!stop_all.load()) {
      Session s(node, IsolationLevel::kReadCommitted);
      if (!s.Begin().ok()) break;
      const int64_t key = key_source.fetch_add(1);
      if (!s.Insert(t, key, "s").ok()) continue;
      if (s.Commit().ok()) {
        std::lock_guard lock(acked_mu);
        acked->insert(key);
      }
    }
  };
  std::thread s1_writer(survivor_loop, s1, "t1", &acked_s1);
  std::thread s2_writer(survivor_loop, s2, "t2", &acked_s2);

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // Quiesce only the victim's client, leave an in-flight ghost, then yank
  // the node — survivors keep writing throughout.
  stop_victim.store(true);
  victim_writer.join();
  Session in_flight(victim, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(in_flight.Begin().ok());
  TableHandle tv_pre = victim->OpenTable("tv").value();
  const int64_t ghost = key_source.fetch_add(1);
  ASSERT_TRUE(in_flight.Insert(tv_pre, ghost, "never-acked").ok());
  ASSERT_TRUE(cluster_->CrashNode(victim_id).ok());
  in_flight.Disarm();

  // Dead-node detection via the fabric liveness map.
  const std::vector<NodeId> dead = cluster_->DeadNodes();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], victim_id);

  // Survivor s1 takes over while s2 (and s1's own writer) keep committing.
  const size_t s2_acked_before = [&] {
    std::lock_guard lock(acked_mu);
    return acked_s2.size();
  }();
  auto stats = cluster_->TakeoverNode(victim_id, s1->id());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(cluster_->takeovers(), 1u);
  EXPECT_TRUE(cluster_->DeadNodes().empty());
  // No double takeover.
  EXPECT_TRUE(cluster_->TakeoverNode(victim_id, s1->id()).status()
                  .IsAlreadyExists());

  // Survivors never stalled: they kept acknowledging during the takeover.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop_all.store(true);
  s1_writer.join();
  s2_writer.join();
  {
    std::lock_guard lock(acked_mu);
    EXPECT_GT(acked_s2.size(), s2_acked_before);
  }

  // Every acknowledged key — victim's included — reads back through a
  // survivor; the ghost is gone.
  TableHandle tv = s2->OpenTable("tv").value();
  TableHandle t1 = s2->OpenTable("t1").value();
  TableHandle t2 = s2->OpenTable("t2").value();
  Session check(s2, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(check.Begin().ok());
  for (int64_t key : acked_victim) {
    EXPECT_TRUE(check.Get(tv, key).ok()) << "lost victim-acked key " << key;
  }
  for (int64_t key : acked_s1) {
    EXPECT_TRUE(check.Get(t1, key).ok()) << "lost s1 key " << key;
  }
  for (int64_t key : acked_s2) {
    EXPECT_TRUE(check.Get(t2, key).ok()) << "lost s2 key " << key;
  }
  EXPECT_TRUE(check.Get(tv, ghost).status().IsNotFound());
  ASSERT_TRUE(check.Commit().ok());

  // The node can come back later; restart is a no-op replay (checkpoint
  // already advanced by the takeover) and the cluster accepts its writes.
  auto revived = cluster_->RestartNode(victim_id);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  TableHandle tr = revived.value()->OpenTable("tv").value();
  Session again(revived.value(), IsolationLevel::kReadCommitted);
  ASSERT_TRUE(again.Begin().ok());
  ASSERT_TRUE(again.Insert(tr, key_source.fetch_add(1), "back").ok());
  ASSERT_TRUE(again.Commit().ok());
}

TEST_F(FailureTest, FullClusterCrashWithDsmLossKeepsAcknowledged) {
  DbNode* n1 = cluster_->AddNode().value();
  DbNode* n2 = cluster_->AddNode().value();
  ASSERT_TRUE(cluster_->CreateTable("t").ok());
  std::set<int64_t> acked;
  for (int i = 0; i < 60; ++i) {
    DbNode* node = i % 2 == 0 ? n1 : n2;
    TableHandle t = node->OpenTable("t").value();
    Session s(node, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(s.Begin().ok());
    ASSERT_TRUE(s.Insert(t, i, "ack").ok());
    if (s.Commit().ok()) acked.insert(i);
  }
  const NodeId id1 = n1->id(), id2 = n2->id();
  ASSERT_TRUE(cluster_->CrashNode(id1).ok());
  ASSERT_TRUE(cluster_->CrashNode(id2).ok());
  ASSERT_TRUE(cluster_->RecoverAll(/*dsm_lost=*/true).ok());

  DbNode* fresh = cluster_->AddNode().value();
  TableHandle t = fresh->OpenTable("t").value();
  Session check(fresh, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(check.Begin().ok());
  for (int64_t key : acked) {
    EXPECT_TRUE(check.Get(t, key).ok()) << "lost key " << key;
  }
  ASSERT_TRUE(check.Commit().ok());
}

TEST_F(FailureTest, UndoSegmentExhaustionSurfacesCleanly) {
  // A long-running transaction pins the undo tail; a tiny segment must
  // surface Internal("undo segment full"), not corrupt anything.
  ClusterOptions opts;
  opts.undo_segment_bytes = 16 << 10;
  auto cluster = Cluster::Create(opts).value();
  DbNode* node = cluster->AddNode().value();
  ASSERT_TRUE(cluster->CreateTable("t").ok());
  TableHandle t = node->OpenTable("t").value();

  Session pinner(node, IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(pinner.Begin().ok());
  ASSERT_TRUE(pinner.Insert(t, 1'000'000, "pin").ok());  // holds undo tail

  Session writer(node, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(writer.Begin().ok());
  Status st = Status::OK();
  for (int i = 0; i < 500 && st.ok(); ++i) {
    st = writer.Put(t, i, std::string(100, 'x'));
  }
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  (void)writer.Rollback();
  // The pinner can still finish.
  EXPECT_TRUE(pinner.Commit().ok());
}

}  // namespace
}  // namespace polarmp
