#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "engine/plock_manager.h"

namespace polarmp {
namespace {

// PLockManager lease + eviction-race tests against a real LockFusion over a
// zero-latency fabric. Negotiation callbacks are wired straight into the
// managers, exactly as DbNode does it.
class PLockLeaseTest : public ::testing::Test {
 protected:
  PLockLeaseTest()
      : fabric_(ZeroLatencyProfile()),
        fusion_(&fabric_),
        a_(1, &fusion_),
        b_(2, &fusion_) {
    fusion_.AddNode(1, [this](PageId p) { a_.OnNegotiate(p); });
    fusion_.AddNode(2, [this](PageId p) { b_.OnNegotiate(p); });
  }

  Fabric fabric_;
  LockFusion fusion_;
  PLockManager a_;
  PLockManager b_;
};

// The eviction race from the issue: ForceRelease must refuse (Busy) while a
// Pin for the same page is queued at Lock Fusion (acquiring in flight) and
// while references are held, and succeed only on an idle hold.
TEST_F(PLockLeaseTest, ForceReleaseVsConcurrentPinRace) {
  const PageId page{1, 7};
  // b holds X with a live reference, so a's Pin(S) queues in the fusion
  // FIFO (the negotiation request parks behind b's refs).
  ASSERT_TRUE(b_.Pin(page, LockMode::kExclusive, 1000).ok());

  std::atomic<bool> granted{false};
  std::thread pinner([&] {
    ASSERT_TRUE(a_.Pin(page, LockMode::kShared, 10'000).ok());
    granted = true;
  });

  // While the acquire is in flight, eviction must step aside: poll until
  // the entry exists in the acquiring state and reports Busy.
  for (;;) {
    const Status st = a_.ForceRelease(page);
    if (st.IsBusy()) break;
    ASSERT_TRUE(st.ok()) << st.ToString();
    std::this_thread::yield();
  }
  EXPECT_FALSE(granted.load());
  EXPECT_FALSE(a_.HeldLocally(page, LockMode::kShared));

  // b drains its reference; the negotiated release runs and a is granted.
  b_.Unpin(page);
  pinner.join();
  ASSERT_TRUE(granted.load());
  EXPECT_TRUE(a_.HeldLocally(page, LockMode::kShared));

  // Still referenced: eviction keeps refusing.
  EXPECT_TRUE(a_.ForceRelease(page).IsBusy());
  a_.Unpin(page);
  // Idle now (lazily retained): eviction releases for real.
  EXPECT_TRUE(a_.ForceRelease(page).ok());
  EXPECT_FALSE(a_.HeldLocally(page, LockMode::kShared));
  EXPECT_FALSE(fusion_.HoldsPLock(1, page, LockMode::kShared));
}

TEST_F(PLockLeaseTest, DemoteToLeaseKeepsFusionGrantForLocalRegrant) {
  const PageId page{1, 3};
  ASSERT_TRUE(a_.Pin(page, LockMode::kExclusive, 1000).ok());
  a_.Unpin(page);  // lazily retained, refs == 0
  const uint64_t fusion_before = a_.fusion_acquires();

  ASSERT_TRUE(a_.DemoteToLease(page).ok());
  EXPECT_EQ(a_.lease_demotes(), 1u);
  // The fusion-side grant stays with the node.
  EXPECT_TRUE(a_.HeldLocally(page, LockMode::kExclusive));
  EXPECT_TRUE(fusion_.HoldsPLock(1, page, LockMode::kExclusive));

  // Repeat acquisition on the leased page never leaves the node.
  ASSERT_TRUE(a_.Pin(page, LockMode::kExclusive, 1000).ok());
  EXPECT_EQ(a_.lease_regrants(), 1u);
  EXPECT_EQ(a_.fusion_acquires(), fusion_before);
  a_.Unpin(page);
}

TEST_F(PLockLeaseTest, DemoteToLeaseBusyWhileReferenced) {
  const PageId page{1, 4};
  ASSERT_TRUE(a_.Pin(page, LockMode::kShared, 1000).ok());
  EXPECT_TRUE(a_.DemoteToLease(page).IsBusy());
  a_.Unpin(page);
  EXPECT_TRUE(a_.DemoteToLease(page).ok());
  EXPECT_TRUE(a_.HeldLocally(page, LockMode::kShared));
}

// A lease is just an idle retained hold: a conflicting remote acquisition
// revokes it through the normal negotiation path, immediately.
TEST_F(PLockLeaseTest, LeaseRevokedByRemoteConflict) {
  const PageId page{1, 5};
  ASSERT_TRUE(a_.Pin(page, LockMode::kExclusive, 1000).ok());
  a_.Unpin(page);
  ASSERT_TRUE(a_.DemoteToLease(page).ok());

  // b's conflicting acquire negotiates a's lease away without waiting.
  ASSERT_TRUE(b_.Pin(page, LockMode::kExclusive, 5000).ok());
  EXPECT_FALSE(a_.HeldLocally(page, LockMode::kShared));
  EXPECT_TRUE(fusion_.HoldsPLock(2, page, LockMode::kExclusive));
  b_.Unpin(page);
}

TEST_F(PLockLeaseTest, ReleaseLeaseHandsGrantBack) {
  const PageId page{1, 6};
  ASSERT_TRUE(a_.Pin(page, LockMode::kExclusive, 1000).ok());
  a_.Unpin(page);
  ASSERT_TRUE(a_.DemoteToLease(page).ok());

  // The cache evicted the page: nothing local justifies the hold anymore.
  a_.ReleaseLease(page);
  EXPECT_FALSE(a_.HeldLocally(page, LockMode::kShared));
  EXPECT_FALSE(fusion_.HoldsPLock(1, page, LockMode::kExclusive));
}

TEST_F(PLockLeaseTest, ReleaseLeaseIgnoresPlainRetainedHold) {
  const PageId page{1, 8};
  ASSERT_TRUE(a_.Pin(page, LockMode::kExclusive, 1000).ok());
  a_.Unpin(page);
  // Never demoted: ReleaseLease must not touch a normal retained hold.
  a_.ReleaseLease(page);
  EXPECT_TRUE(a_.HeldLocally(page, LockMode::kExclusive));
  EXPECT_TRUE(fusion_.HoldsPLock(1, page, LockMode::kExclusive));
}

// A Pin that lands between the demote and the eviction's ReleaseLease turns
// the lease back into an active hold; the late ReleaseLease must then leave
// the (re-used) hold alone.
TEST_F(PLockLeaseTest, PinBetweenDemoteAndReleaseLeaseWins) {
  const PageId page{1, 9};
  ASSERT_TRUE(a_.Pin(page, LockMode::kExclusive, 1000).ok());
  a_.Unpin(page);
  ASSERT_TRUE(a_.DemoteToLease(page).ok());
  ASSERT_TRUE(a_.Pin(page, LockMode::kExclusive, 1000).ok());
  EXPECT_EQ(a_.lease_regrants(), 1u);
  a_.ReleaseLease(page);  // no longer a lease: must be a no-op
  EXPECT_TRUE(a_.HeldLocally(page, LockMode::kExclusive));
  a_.Unpin(page);
  EXPECT_TRUE(a_.HeldLocally(page, LockMode::kExclusive));
}

// Lease revocation racing eviction: one thread keeps pinning/unpinning,
// one keeps evicting (demote + handback), while a remote node periodically
// grabs the page exclusively. Every outcome must be OK or Busy and the
// page must keep being acquirable; at the end the hold is fully released.
TEST_F(PLockLeaseTest, EvictionVsPinVsRevocationStress) {
  const PageId page{1, 10};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> a_pins{0};

  std::thread pinner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (a_.Pin(page, LockMode::kShared, 2000).ok()) {
        a_pins.fetch_add(1, std::memory_order_relaxed);
        a_.Unpin(page);
      }
    }
  });
  std::thread evictor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const Status st = a_.DemoteToLease(page);
      ASSERT_TRUE(st.ok() || st.IsBusy()) << st.ToString();
      a_.ReleaseLease(page);
      const Status fr = a_.ForceRelease(page);
      ASSERT_TRUE(fr.ok() || fr.IsBusy()) << fr.ToString();
    }
  });

  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(b_.Pin(page, LockMode::kExclusive, 10'000).ok());
    b_.Unpin(page);
    const Status st = b_.ForceRelease(page);
    ASSERT_TRUE(st.ok() || st.IsBusy()) << st.ToString();
  }
  // With b quiet, a's pinner is guaranteed to get through; don't stop the
  // threads before it has proven so at least once.
  while (a_pins.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  stop.store(true);
  pinner.join();
  evictor.join();
  EXPECT_GT(a_pins.load(), 0u);

  // Quiesce: drain whatever hold is left on a's side.
  for (;;) {
    const Status st = a_.ForceRelease(page);
    if (st.ok()) break;
    std::this_thread::yield();
  }
  EXPECT_FALSE(a_.HeldLocally(page, LockMode::kShared));
}

}  // namespace
}  // namespace polarmp
