#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "cluster/cluster.h"
#include "cluster/standby.h"

namespace polarmp {
namespace {

class StandbyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions opts;
    opts.node.lbp_flush_interval_ms = 20;  // fast heartbeats for the test
    auto cluster = Cluster::Create(opts);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    StandbyReplicator::Options sopts;
    sopts.poll_interval_ms = 5;
    sopts.page_size = cluster_->options().page_size;
    standby_ = std::make_unique<StandbyReplicator>(cluster_->log_store(),
                                                   sopts);
    standby_->Start();
  }

  std::map<int64_t, std::string> StandbyContents(SpaceId space) {
    std::map<int64_t, std::string> out;
    EXPECT_TRUE(standby_
                    ->ScanTable(space,
                                [&](const RowView& row) {
                                  if (!row.tombstone()) {
                                    out[row.key] = row.value.ToString();
                                  }
                                  return true;
                                })
                    .ok());
    return out;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<StandbyReplicator> standby_;
};

TEST_F(StandbyTest, ReplicatesSingleNodeWrites) {
  DbNode* node = cluster_->AddNode().value();
  auto info = cluster_->CreateTable("t");
  ASSERT_TRUE(info.ok());
  TableHandle table = node->OpenTable("t").value();
  Session s(node, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(s.Begin().ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(s.Insert(table, i, "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(s.Commit().ok());

  ASSERT_TRUE(standby_->WaitForCatchUp(10'000));
  auto contents = StandbyContents(info->primary_space);
  ASSERT_EQ(contents.size(), 50u);
  EXPECT_EQ(contents[7], "v7");
  EXPECT_EQ(contents[49], "v49");
}

TEST_F(StandbyTest, MergesInterleavedMultiNodeStreams) {
  DbNode* n1 = cluster_->AddNode().value();
  DbNode* n2 = cluster_->AddNode().value();
  auto info = cluster_->CreateTable("t");
  ASSERT_TRUE(info.ok());
  TableHandle t1 = n1->OpenTable("t").value();
  TableHandle t2 = n2->OpenTable("t").value();
  // Interleave writes to the SAME rows from both nodes so the standby must
  // merge the two streams in LLSN order per page.
  for (int round = 0; round < 30; ++round) {
    DbNode* node = round % 2 == 0 ? n1 : n2;
    const TableHandle& table = round % 2 == 0 ? t1 : t2;
    Session s(node, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(s.Begin().ok());
    ASSERT_TRUE(s.Put(table, round % 5, "round-" + std::to_string(round)).ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  ASSERT_TRUE(standby_->WaitForCatchUp(10'000));
  auto contents = StandbyContents(info->primary_space);
  ASSERT_EQ(contents.size(), 5u);
  // Key k's last writer was round 25+k (rounds 25..29 hit keys 0..4).
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(contents[k], "round-" + std::to_string(25 + k)) << k;
  }
}

TEST_F(StandbyTest, HeartbeatsUnblockIdleStreams) {
  DbNode* n1 = cluster_->AddNode().value();
  DbNode* n2 = cluster_->AddNode().value();
  auto info = cluster_->CreateTable("t");
  ASSERT_TRUE(info.ok());
  // Warm both nodes' LLSN clocks so heartbeats are meaningful.
  for (DbNode* node : {n1, n2}) {
    TableHandle table = node->OpenTable("t").value();
    Session s(node, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(s.Begin().ok());
    ASSERT_TRUE(s.Put(table, node->id(), "warm").ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  // Now only node 1 writes; node 2 idles. Without heartbeats the standby's
  // LLSN bound would stall at node 2's horizon.
  TableHandle t1 = n1->OpenTable("t").value();
  Session s(n1, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(s.Begin().ok());
  for (int i = 100; i < 140; ++i) {
    ASSERT_TRUE(s.Put(t1, i, "only-n1").ok());
  }
  ASSERT_TRUE(s.Commit().ok());
  ASSERT_TRUE(standby_->WaitForCatchUp(10'000));
  auto contents = StandbyContents(info->primary_space);
  EXPECT_EQ(contents.count(139), 1u);
  EXPECT_GT(standby_->records_applied(), 40u);
}

TEST_F(StandbyTest, SplitsReplicateStructurally) {
  DbNode* node = cluster_->AddNode().value();
  auto info = cluster_->CreateTable("t");
  ASSERT_TRUE(info.ok());
  TableHandle table = node->OpenTable("t").value();
  // Enough rows to force multi-level splits on 8 KB pages.
  for (int batch = 0; batch < 10; ++batch) {
    Session s(node, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(s.Begin().ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(
          s.Insert(table, batch * 200 + i, std::string(64, 'x')).ok());
    }
    ASSERT_TRUE(s.Commit().ok());
  }
  ASSERT_TRUE(standby_->WaitForCatchUp(15'000));
  auto contents = StandbyContents(info->primary_space);
  EXPECT_EQ(contents.size(), 2000u);  // leaf chain complete across splits
}

TEST_F(StandbyTest, LagDrainsToZero) {
  DbNode* node = cluster_->AddNode().value();
  ASSERT_TRUE(cluster_->CreateTable("t").ok());
  TableHandle table = node->OpenTable("t").value();
  Session s(node, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Put(table, 1, "x").ok());
  ASSERT_TRUE(s.Commit().ok());
  ASSERT_TRUE(standby_->WaitForCatchUp(10'000));
  EXPECT_EQ(standby_->LagBytes(), 0u);
}

}  // namespace
}  // namespace polarmp
