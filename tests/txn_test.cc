#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "cluster/cluster.h"

namespace polarmp {
namespace {

// Transaction-layer tests (MVCC visibility, isolation, locks, rollback,
// GSIs) on a single-node cluster.
class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override { SetUpWithIndexes(0); }

  void SetUpWithIndexes(uint32_t num_indexes) {
    ClusterOptions opts;
    opts.page_size = 1024;
    opts.node.lbp.page_size = 1024;
    opts.node.trx.lock_wait_timeout_ms = 300;
    auto cluster = Cluster::Create(opts);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    auto node = cluster_->AddNode();
    ASSERT_TRUE(node.ok());
    node_ = node.value();
    auto info = cluster_->CreateTable("t", num_indexes);
    ASSERT_TRUE(info.ok());
    auto table = node_->OpenTable("t");
    ASSERT_TRUE(table.ok());
    table_ = table.value();
  }

  Session NewSession(IsolationLevel iso = IsolationLevel::kReadCommitted) {
    Session s(node_, iso);
    EXPECT_TRUE(s.Begin().ok());
    return s;
  }

  std::unique_ptr<Cluster> cluster_;
  DbNode* node_ = nullptr;
  TableHandle table_;
};

TEST_F(TxnTest, CommitMakesVisible) {
  Session w = NewSession();
  ASSERT_TRUE(w.Insert(table_, 1, "hello").ok());
  // Uncommitted row invisible to another transaction...
  Session r = NewSession();
  EXPECT_TRUE(r.Get(table_, 1).status().IsNotFound());
  // ...but visible to its own.
  EXPECT_EQ(w.Get(table_, 1).value(), "hello");
  ASSERT_TRUE(w.Commit().ok());
  // Read-committed refreshes its view per statement.
  EXPECT_EQ(r.Get(table_, 1).value(), "hello");
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(TxnTest, RollbackRestoresPreviousVersion) {
  {
    Session s = NewSession();
    ASSERT_TRUE(s.Insert(table_, 1, "v1").ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  {
    Session s = NewSession();
    ASSERT_TRUE(s.Update(table_, 1, "v2").ok());
    ASSERT_TRUE(s.Rollback().ok());
  }
  Session r = NewSession();
  EXPECT_EQ(r.Get(table_, 1).value(), "v1");
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(TxnTest, RollbackOfInsertRemovesRow) {
  {
    Session s = NewSession();
    ASSERT_TRUE(s.Insert(table_, 5, "temp").ok());
    ASSERT_TRUE(s.Rollback().ok());
  }
  Session r = NewSession();
  EXPECT_TRUE(r.Get(table_, 5).status().IsNotFound());
  // The key is insertable again.
  ASSERT_TRUE(r.Insert(table_, 5, "second").ok());
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(TxnTest, InsertDuplicateFails) {
  Session s = NewSession();
  ASSERT_TRUE(s.Insert(table_, 1, "a").ok());
  ASSERT_TRUE(s.Commit().ok());
  Session s2 = NewSession();
  EXPECT_TRUE(s2.Insert(table_, 1, "b").IsAlreadyExists());
  ASSERT_TRUE(s2.Rollback().ok());
}

TEST_F(TxnTest, UpdateDeleteRequireExistence) {
  Session s = NewSession();
  EXPECT_TRUE(s.Update(table_, 9, "x").IsNotFound());
  EXPECT_TRUE(s.Delete(table_, 9).IsNotFound());
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(TxnTest, DeleteThenReinsert) {
  Session s = NewSession();
  ASSERT_TRUE(s.Insert(table_, 1, "first").ok());
  ASSERT_TRUE(s.Commit().ok());
  Session s2 = NewSession();
  ASSERT_TRUE(s2.Delete(table_, 1).ok());
  ASSERT_TRUE(s2.Commit().ok());
  Session s3 = NewSession();
  EXPECT_TRUE(s3.Get(table_, 1).status().IsNotFound());
  ASSERT_TRUE(s3.Insert(table_, 1, "again").ok());
  ASSERT_TRUE(s3.Commit().ok());
  Session s4 = NewSession();
  EXPECT_EQ(s4.Get(table_, 1).value(), "again");
  ASSERT_TRUE(s4.Commit().ok());
}

TEST_F(TxnTest, SnapshotIsolationSeesFixedSnapshot) {
  Session w = NewSession();
  ASSERT_TRUE(w.Insert(table_, 1, "v1").ok());
  ASSERT_TRUE(w.Commit().ok());

  Session si = NewSession(IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ(si.Get(table_, 1).value(), "v1");  // snapshot pinned here

  Session w2 = NewSession();
  ASSERT_TRUE(w2.Update(table_, 1, "v2").ok());
  ASSERT_TRUE(w2.Commit().ok());

  // SI keeps reading the old version; RC sees the new one.
  EXPECT_EQ(si.Get(table_, 1).value(), "v1");
  Session rc = NewSession();
  EXPECT_EQ(rc.Get(table_, 1).value(), "v2");
  ASSERT_TRUE(si.Commit().ok());
  ASSERT_TRUE(rc.Commit().ok());
}

TEST_F(TxnTest, SnapshotIsolationWriteWriteConflictAborts) {
  Session setup = NewSession();
  ASSERT_TRUE(setup.Insert(table_, 1, "base").ok());
  ASSERT_TRUE(setup.Commit().ok());

  Session a = NewSession(IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ(a.Get(table_, 1).value(), "base");  // pin snapshot

  Session b = NewSession();
  ASSERT_TRUE(b.Update(table_, 1, "from-b").ok());
  ASSERT_TRUE(b.Commit().ok());

  // First-committer-wins: a's write sees a version beyond its snapshot.
  EXPECT_TRUE(a.Update(table_, 1, "from-a").IsAborted());
}

TEST_F(TxnTest, ReadCommittedLostUpdateAllowed) {
  Session setup = NewSession();
  ASSERT_TRUE(setup.Insert(table_, 1, "base").ok());
  ASSERT_TRUE(setup.Commit().ok());
  Session a = NewSession();
  EXPECT_EQ(a.Get(table_, 1).value(), "base");
  Session b = NewSession();
  ASSERT_TRUE(b.Update(table_, 1, "b").ok());
  ASSERT_TRUE(b.Commit().ok());
  // RC just overwrites the latest committed version.
  ASSERT_TRUE(a.Update(table_, 1, "a").ok());
  ASSERT_TRUE(a.Commit().ok());
  Session r = NewSession();
  EXPECT_EQ(r.Get(table_, 1).value(), "a");
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(TxnTest, RowLockBlocksSecondWriterUntilCommit) {
  Session setup = NewSession();
  ASSERT_TRUE(setup.Insert(table_, 1, "base").ok());
  ASSERT_TRUE(setup.Commit().ok());

  Session a = NewSession();
  ASSERT_TRUE(a.Update(table_, 1, "a").ok());

  std::atomic<bool> b_done{false};
  std::thread blocked([&] {
    Session b(node_, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(b.Begin().ok());
    ASSERT_TRUE(b.Update(table_, 1, "b").ok());  // waits for a
    ASSERT_TRUE(b.Commit().ok());
    b_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(b_done.load());
  ASSERT_TRUE(a.Commit().ok());
  blocked.join();
  EXPECT_TRUE(b_done.load());
  Session r = NewSession();
  EXPECT_EQ(r.Get(table_, 1).value(), "b");
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(TxnTest, RowLockReleasedByRollback) {
  Session setup = NewSession();
  ASSERT_TRUE(setup.Insert(table_, 1, "base").ok());
  ASSERT_TRUE(setup.Commit().ok());
  Session a = NewSession();
  ASSERT_TRUE(a.Update(table_, 1, "a").ok());
  std::thread unlocker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(a.Rollback().ok());
  });
  Session b = NewSession();
  ASSERT_TRUE(b.Update(table_, 1, "b").ok());
  ASSERT_TRUE(b.Commit().ok());
  unlocker.join();
  Session r = NewSession();
  EXPECT_EQ(r.Get(table_, 1).value(), "b");
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(TxnTest, LockWaitTimeoutReturnsBusy) {
  Session setup = NewSession();
  ASSERT_TRUE(setup.Insert(table_, 1, "base").ok());
  ASSERT_TRUE(setup.Commit().ok());
  Session a = NewSession();
  ASSERT_TRUE(a.Update(table_, 1, "a").ok());
  Session b = NewSession();
  EXPECT_TRUE(b.Update(table_, 1, "b").IsBusy());  // 300 ms timeout
  ASSERT_TRUE(a.Commit().ok());
}

TEST_F(TxnTest, DeadlockVictimAborted) {
  Session setup = NewSession();
  ASSERT_TRUE(setup.Insert(table_, 1, "r1").ok());
  ASSERT_TRUE(setup.Insert(table_, 2, "r2").ok());
  ASSERT_TRUE(setup.Commit().ok());

  Session a = NewSession();
  ASSERT_TRUE(a.Update(table_, 1, "a1").ok());
  std::atomic<int> outcomes{0};
  std::thread tb([&] {
    Session b(node_, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(b.Begin().ok());
    ASSERT_TRUE(b.Update(table_, 2, "b2").ok());
    const Status s = b.Update(table_, 1, "b1");  // waits for a
    if (s.ok()) {
      ASSERT_TRUE(b.Commit().ok());
    }
    outcomes.fetch_add(s.ok() ? 1 : 100);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // a → row2 closes the cycle; exactly one transaction must abort.
  const Status s = a.Update(table_, 2, "a2");
  if (s.ok()) {
    ASSERT_TRUE(a.Commit().ok());
    outcomes.fetch_add(1);
  } else {
    EXPECT_TRUE(s.IsAborted() || s.IsBusy());
    outcomes.fetch_add(100);
  }
  tb.join();
  // One winner (+1) and one victim (+100) in either order.
  EXPECT_EQ(outcomes.load(), 101);
}

TEST_F(TxnTest, ScanSkipsInvisibleAndDeleted) {
  Session setup = NewSession();
  for (int64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(setup.Insert(table_, k, "v" + std::to_string(k)).ok());
  }
  ASSERT_TRUE(setup.Commit().ok());
  Session d = NewSession();
  ASSERT_TRUE(d.Delete(table_, 3).ok());
  ASSERT_TRUE(d.Commit().ok());
  Session w = NewSession();
  ASSERT_TRUE(w.Insert(table_, 100, "uncommitted").ok());

  Session r = NewSession();
  std::vector<int64_t> keys;
  ASSERT_TRUE(r.Scan(table_, 0, 1000, [&](int64_t k, const std::string&) {
                 keys.push_back(k);
                 return true;
               })
                  .ok());
  EXPECT_EQ(keys.size(), 9u);  // 10 inserted − 1 deleted; 100 invisible
  EXPECT_TRUE(std::find(keys.begin(), keys.end(), 3) == keys.end());
  EXPECT_TRUE(std::find(keys.begin(), keys.end(), 100) == keys.end());
  ASSERT_TRUE(w.Rollback().ok());
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(TxnTest, LongVersionChainReconstruction) {
  Session setup = NewSession();
  ASSERT_TRUE(setup.Insert(table_, 1, "v0").ok());
  ASSERT_TRUE(setup.Commit().ok());
  Session old_reader = NewSession(IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ(old_reader.Get(table_, 1).value(), "v0");
  for (int i = 1; i <= 50; ++i) {
    Session w = NewSession();
    ASSERT_TRUE(w.Update(table_, 1, "v" + std::to_string(i)).ok());
    ASSERT_TRUE(w.Commit().ok());
  }
  // The old snapshot still reconstructs v0 through 50 undo records.
  EXPECT_EQ(old_reader.Get(table_, 1).value(), "v0");
  ASSERT_TRUE(old_reader.Commit().ok());
}

TEST_F(TxnTest, TombstonesPhysicallyPurged) {
  Session s = NewSession();
  for (int64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(s.Insert(table_, k, "doomed").ok());
  }
  ASSERT_TRUE(s.Commit().ok());
  Session d = NewSession();
  for (int64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(d.Delete(table_, k).ok());
  }
  ASSERT_TRUE(d.Commit().ok());
  // The purge runs once the deletes are globally visible.
  for (int i = 0; i < 200; ++i) {
    if (node_->trx_manager()->purged_rows() >= 20) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(node_->trx_manager()->purged_rows(), 20u);
  // Physically gone: a raw engine scan sees no rows at all.
  int raw_rows = 0;
  ASSERT_TRUE(node_->TreeForSpace(table_.info.primary_space)
                  ->ScanRange(0, 100,
                              [&](const RowView&) {
                                ++raw_rows;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(raw_rows, 0);
  // And the keys are insertable again.
  Session again = NewSession();
  ASSERT_TRUE(again.Insert(table_, 3, "reborn").ok());
  ASSERT_TRUE(again.Commit().ok());
}

TEST_F(TxnTest, PurgeSkipsReinsertedRows) {
  Session s = NewSession();
  ASSERT_TRUE(s.Insert(table_, 1, "first").ok());
  ASSERT_TRUE(s.Commit().ok());
  Session d = NewSession();
  ASSERT_TRUE(d.Delete(table_, 1).ok());
  ASSERT_TRUE(d.Commit().ok());
  // Reinsert immediately: the queued purge for the old tombstone must not
  // remove the live row.
  Session r = NewSession();
  ASSERT_TRUE(r.Insert(table_, 1, "second").ok());
  ASSERT_TRUE(r.Commit().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  Session check = NewSession();
  EXPECT_EQ(check.Get(table_, 1).value(), "second");
  ASSERT_TRUE(check.Commit().ok());
}

TEST_F(TxnTest, TitSlotsRecycledAfterCommit) {
  for (int i = 0; i < 50; ++i) {
    Session s = NewSession();
    ASSERT_TRUE(s.Insert(table_, 1000 + i, "x").ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  // Let the background tick report views and recycle.
  for (int i = 0; i < 100; ++i) {
    if (cluster_->services()->tit->LiveSlots(node_->id()) == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(cluster_->services()->tit->LiveSlots(node_->id()), 0u);
}

class TxnGsiTest : public TxnTest {
 protected:
  void SetUp() override { SetUpWithIndexes(2); }
};

TEST_F(TxnGsiTest, IndexMaintainedOnInsertUpdateDelete) {
  Session s = NewSession();
  // Row 1: col0=7, col1=9.
  ASSERT_TRUE(s.Insert(table_, 1, EncodeIndexedValue({7, 9}, "payload1")).ok());
  ASSERT_TRUE(s.Insert(table_, 2, EncodeIndexedValue({7, 8}, "payload2")).ok());
  ASSERT_TRUE(s.Commit().ok());

  Session r = NewSession();
  auto pks = r.LookupByIndex(table_, 0, 7);
  ASSERT_TRUE(pks.ok());
  EXPECT_EQ(pks->size(), 2u);
  pks = r.LookupByIndex(table_, 1, 9);
  ASSERT_TRUE(pks.ok());
  ASSERT_EQ(pks->size(), 1u);
  EXPECT_EQ((*pks)[0], 1);
  ASSERT_TRUE(r.Commit().ok());

  // Update moves row 1's col1 from 9 to 8.
  Session u = NewSession();
  ASSERT_TRUE(u.Update(table_, 1, EncodeIndexedValue({7, 8}, "payload1b")).ok());
  ASSERT_TRUE(u.Commit().ok());
  Session r2 = NewSession();
  EXPECT_TRUE(r2.LookupByIndex(table_, 1, 9)->empty());
  EXPECT_EQ(r2.LookupByIndex(table_, 1, 8)->size(), 2u);
  ASSERT_TRUE(r2.Commit().ok());

  // Delete removes all index entries.
  Session d = NewSession();
  ASSERT_TRUE(d.Delete(table_, 1).ok());
  ASSERT_TRUE(d.Commit().ok());
  Session r3 = NewSession();
  EXPECT_EQ(r3.LookupByIndex(table_, 0, 7)->size(), 1u);
  EXPECT_EQ(r3.LookupByIndex(table_, 1, 8)->size(), 1u);
  ASSERT_TRUE(r3.Commit().ok());
}

// Deterministic repro of the bank_transfer balance drift (ROADMAP): under
// read committed, a read-modify-write built on plain snapshot Gets loses
// updates — both transactions read the same base, both write, one delta
// vanishes. This is expected RC behavior, which is exactly why the example
// was wrong to rely on it; the fixed example (and the test below) use
// GetForUpdate.
TEST_F(TxnTest, PlainReadModifyWriteLosesUpdates) {
  {
    Session s = NewSession();
    ASSERT_TRUE(s.Insert(table_, 1, "100").ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  Session a = NewSession();
  Session b = NewSession();
  const int64_t base_a = std::stoll(a.Get(table_, 1).value());
  const int64_t base_b = std::stoll(b.Get(table_, 1).value());
  ASSERT_EQ(base_a, 100);
  ASSERT_EQ(base_b, 100);
  ASSERT_TRUE(a.Update(table_, 1, std::to_string(base_a + 10)).ok());
  ASSERT_TRUE(a.Commit().ok());
  ASSERT_TRUE(b.Update(table_, 1, std::to_string(base_b - 5)).ok());
  ASSERT_TRUE(b.Commit().ok());
  Session r = NewSession();
  // The +10 is gone: 95, not 105. (Documents the hazard, not a defect.)
  EXPECT_EQ(r.Get(table_, 1).value(), "95");
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(TxnTest, GetForUpdateSerializesReadModifyWrite) {
  {
    Session s = NewSession();
    ASSERT_TRUE(s.Insert(table_, 1, "100").ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  Session a = NewSession();
  const auto locked = a.GetForUpdate(table_, 1);
  ASSERT_TRUE(locked.ok());
  ASSERT_EQ(*locked, "100");
  // The second RMW cycle blocks on the row lock until `a` commits, then
  // reads a's result — no lost update.
  std::thread other([&] {
    Session b(node_, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(b.Begin().ok());
    const auto base = b.GetForUpdate(table_, 1);
    ASSERT_TRUE(base.ok());
    EXPECT_EQ(*base, "110");
    ASSERT_TRUE(
        b.Update(table_, 1, std::to_string(std::stoll(*base) - 5)).ok());
    ASSERT_TRUE(b.Commit().ok());
  });
  ASSERT_TRUE(a.Update(table_, 1, std::to_string(std::stoll(*locked) + 10))
                  .ok());
  ASSERT_TRUE(a.Commit().ok());
  other.join();
  Session r = NewSession();
  EXPECT_EQ(r.Get(table_, 1).value(), "105");
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(TxnTest, GetForUpdateBasicsAndRollback) {
  EXPECT_TRUE(NewSession().GetForUpdate(table_, 9).status().IsNotFound());
  {
    Session s = NewSession();
    ASSERT_TRUE(s.Insert(table_, 1, "v1").ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  // Lock write rolls back cleanly: the prior version survives, unlocked.
  {
    Session s = NewSession();
    EXPECT_EQ(s.GetForUpdate(table_, 1).value(), "v1");
    // Idempotent within the transaction (own-gid fast path).
    EXPECT_EQ(s.GetForUpdate(table_, 1).value(), "v1");
    ASSERT_TRUE(s.Rollback().ok());
  }
  Session r = NewSession();
  EXPECT_EQ(r.Get(table_, 1).value(), "v1");
  EXPECT_EQ(r.GetForUpdate(table_, 1).value(), "v1");  // lock acquirable
  ASSERT_TRUE(r.Commit().ok());
  // A deleted row reads NotFound, same as Get.
  {
    Session s = NewSession();
    ASSERT_TRUE(s.Delete(table_, 1).ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  EXPECT_TRUE(NewSession().GetForUpdate(table_, 1).status().IsNotFound());
}

TEST_F(TxnGsiTest, RollbackRevertsIndexEntries) {
  Session s = NewSession();
  ASSERT_TRUE(s.Insert(table_, 1, EncodeIndexedValue({5, 6}, "p")).ok());
  ASSERT_TRUE(s.Rollback().ok());
  Session r = NewSession();
  EXPECT_TRUE(r.LookupByIndex(table_, 0, 5)->empty());
  EXPECT_TRUE(r.LookupByIndex(table_, 1, 6)->empty());
  ASSERT_TRUE(r.Commit().ok());
}

}  // namespace
}  // namespace polarmp
