#include <gtest/gtest.h>

#include <thread>

#include "cluster/cluster.h"

namespace polarmp {
namespace {

// Behaviours that must hold under BOTH isolation levels, parameterized
// (TEST_P) so every scenario runs under read committed and snapshot
// isolation, on a two-node cluster so visibility always crosses the TIT.
class IsolationSweepTest : public ::testing::TestWithParam<IsolationLevel> {
 protected:
  void SetUp() override {
    ClusterOptions opts;
    opts.node.trx.lock_wait_timeout_ms = 500;
    auto cluster = Cluster::Create(opts);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    n1_ = cluster_->AddNode().value();
    n2_ = cluster_->AddNode().value();
    ASSERT_TRUE(cluster_->CreateTable("t").ok());
    t1_ = n1_->OpenTable("t").value();
    t2_ = n2_->OpenTable("t").value();
  }

  Session New(DbNode* node) {
    Session s(node, GetParam());
    EXPECT_TRUE(s.Begin().ok());
    return s;
  }

  std::unique_ptr<Cluster> cluster_;
  DbNode* n1_ = nullptr;
  DbNode* n2_ = nullptr;
  TableHandle t1_, t2_;
};

TEST_P(IsolationSweepTest, NoDirtyReadsAcrossNodes) {
  Session w = New(n1_);
  ASSERT_TRUE(w.Insert(t1_, 1, "uncommitted").ok());
  Session r = New(n2_);
  EXPECT_TRUE(r.Get(t2_, 1).status().IsNotFound());  // never dirty-read
  ASSERT_TRUE(w.Commit().ok());
  ASSERT_TRUE(r.Commit().ok());
}

TEST_P(IsolationSweepTest, OwnWritesAlwaysVisible) {
  Session s = New(n1_);
  ASSERT_TRUE(s.Insert(t1_, 1, "mine").ok());
  EXPECT_EQ(s.Get(t1_, 1).value(), "mine");
  ASSERT_TRUE(s.Update(t1_, 1, "mine-v2").ok());
  EXPECT_EQ(s.Get(t1_, 1).value(), "mine-v2");
  ASSERT_TRUE(s.Delete(t1_, 1).ok());
  EXPECT_TRUE(s.Get(t1_, 1).status().IsNotFound());
  ASSERT_TRUE(s.Rollback().ok());
}

TEST_P(IsolationSweepTest, CommittedWritesVisibleToNewTransactions) {
  {
    Session w = New(n1_);
    ASSERT_TRUE(w.Insert(t1_, 5, "done").ok());
    ASSERT_TRUE(w.Commit().ok());
  }
  Session r = New(n2_);
  EXPECT_EQ(r.Get(t2_, 5).value(), "done");
  ASSERT_TRUE(r.Commit().ok());
}

TEST_P(IsolationSweepTest, WriteLocksExcludeAcrossNodes) {
  {
    Session seed = New(n1_);
    ASSERT_TRUE(seed.Insert(t1_, 1, "seed").ok());
    ASSERT_TRUE(seed.Commit().ok());
  }
  Session a = New(n1_);
  ASSERT_TRUE(a.Update(t1_, 1, "a").ok());
  Session b = New(n2_);
  const Status st = b.Update(t2_, 1, "b");
  // Either blocked-then-timeout (Busy) or — under SI after a's commit wins —
  // Aborted; it must NOT succeed while a's lock is held.
  EXPECT_FALSE(st.ok()) << st.ToString();
  ASSERT_TRUE(a.Commit().ok());
}

TEST_P(IsolationSweepTest, ScanMatchesPointReads) {
  {
    Session w = New(n1_);
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(w.Insert(t1_, i, "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(w.Commit().ok());
  }
  Session r = New(n2_);
  int scanned = 0;
  ASSERT_TRUE(r.Scan(t2_, 0, 100, [&](int64_t k, const std::string& v) {
                 EXPECT_EQ(v, r.Get(t2_, k).value());
                 ++scanned;
                 return true;
               })
                  .ok());
  EXPECT_EQ(scanned, 30);
  ASSERT_TRUE(r.Commit().ok());
}

TEST_P(IsolationSweepTest, RollbackLeavesNoTrace) {
  {
    Session w = New(n1_);
    ASSERT_TRUE(w.Insert(t1_, 1, "keep").ok());
    ASSERT_TRUE(w.Commit().ok());
  }
  {
    Session w = New(n2_);
    ASSERT_TRUE(w.Update(t2_, 1, "discard").ok());
    ASSERT_TRUE(w.Insert(t2_, 2, "discard").ok());
    ASSERT_TRUE(w.Delete(t2_, 1).ok());
    ASSERT_TRUE(w.Rollback().ok());
  }
  Session r = New(n1_);
  EXPECT_EQ(r.Get(t1_, 1).value(), "keep");
  EXPECT_TRUE(r.Get(t1_, 2).status().IsNotFound());
  ASSERT_TRUE(r.Commit().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Levels, IsolationSweepTest,
    ::testing::Values(IsolationLevel::kReadCommitted,
                      IsolationLevel::kSnapshotIsolation),
    [](const ::testing::TestParamInfo<IsolationLevel>& info) {
      return info.param == IsolationLevel::kReadCommitted
                 ? "ReadCommitted"
                 : "SnapshotIsolation";
    });

// Regression test for the SI lost-update window that used to live between
// fetching a commit timestamp and publishing it to the TIT (DESIGN.md §6).
// Before the fix, the CTS was fetched from the TSO before the log force
// but published only after it; a snapshot created inside that window
// resolved the committer as still active, read around its version, and a
// later update from that snapshot slipped past first-committer-wins.
//
// The fix publishes a *provisional* CTS (kCsnProvisionalBit set) to the
// TIT before the force and finalizes it with a second TSO fetch afterwards
// (transaction.cc: PublishProvisionalCts → ForceAsync → PublishCts, the
// last on the commit finalizer thread when the group force lands). Readers
// that observe the provisional bit treat the version as
// committed-after-snapshot immediately; the finalized CTS necessarily
// exceeds any snapshot begun during the force, so the conflict check
// aborts the stale update.
//
// The simulated fabric's latency profile makes the interleaving
// deterministic: log_append_ns stretches the force to 200ms of simulated
// wall time, holding the window open while the reader starts.
TEST(SnapshotIsolationWindowTest, CommitPublicationWindowLosesUpdate) {
  ClusterOptions opts;
  opts.latency.log_append_ns = 200'000'000;  // 200ms force: the open window
  auto cluster = Cluster::Create(opts).value();
  DbNode* n1 = cluster->AddNode().value();
  DbNode* n2 = cluster->AddNode().value();
  ASSERT_TRUE(cluster->CreateTable("t").ok());
  TableHandle t1 = n1->OpenTable("t").value();
  TableHandle t2 = n2->OpenTable("t").value();

  {
    Session seed(n1, IsolationLevel::kSnapshotIsolation);
    ASSERT_TRUE(seed.Begin().ok());
    ASSERT_TRUE(seed.Insert(t1, 1, "v0").ok());
    ASSERT_TRUE(seed.Commit().ok());
  }

  // Writer: its commit fetches the CTS immediately, then sits in the log
  // force for ~200ms before publishing the CTS to the TIT.
  Session w(n1, IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(w.Begin().ok());
  ASSERT_TRUE(w.Update(t1, 1, "v1").ok());
  std::thread committer([&] { EXPECT_TRUE(w.Commit().ok()); });

  // Reader: begins inside the window, so its snapshot CTS is newer than the
  // writer's, yet the TIT still reports the writer as active — the read
  // resolves the pre-image.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Session r(n2, IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(r.Begin().ok());
  EXPECT_EQ(r.Get(t2, 1).value(), "v0");

  committer.join();  // publication done; no row lock remains to wait on

  // First-committer-wins demands this update abort: the writer committed a
  // version of row 1 that this snapshot never saw. Today the conflict check
  // resolves the writer's CTS (fetched before the reader's snapshot) as
  // visible and lets the lost update through.
  const Status st = r.Update(t2, 1, "v2-from-v0");
  if (st.ok()) {
    ASSERT_TRUE(r.Commit().ok());
  }
  EXPECT_TRUE(st.IsAborted())
      << "SI lost-update window: update built on stale read succeeded ("
      << st.ToString() << ")";
}

// Cross-node GSI coherence: index maintained on one node, queried on
// another, with concurrent updates moving entries between buckets.
TEST(CrossNodeGsiTest, IndexCoherentAcrossNodes) {
  auto cluster = Cluster::Create(ClusterOptions()).value();
  DbNode* n1 = cluster->AddNode().value();
  DbNode* n2 = cluster->AddNode().value();
  ASSERT_TRUE(cluster->CreateTable("orders", 1).ok());
  TableHandle t1 = n1->OpenTable("orders").value();
  TableHandle t2 = n2->OpenTable("orders").value();

  {
    Session s(n1, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(s.Begin().ok());
    for (int64_t k = 1; k <= 20; ++k) {
      ASSERT_TRUE(
          s.Insert(t1, k, EncodeIndexedValue({static_cast<uint64_t>(k % 4)}, "payload")).ok());
    }
    ASSERT_TRUE(s.Commit().ok());
  }
  // Move every bucket-0 order to bucket 9, from node 2.
  {
    Session s(n2, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(s.Begin().ok());
    auto bucket0 = s.LookupByIndex(t2, 0, 0).value();
    EXPECT_EQ(bucket0.size(), 5u);
    for (int64_t pk : bucket0) {
      ASSERT_TRUE(s.Update(t2, pk, EncodeIndexedValue({9}, "moved")).ok());
    }
    ASSERT_TRUE(s.Commit().ok());
  }
  // Node 1 sees the index move.
  Session s(n1, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(s.Begin().ok());
  EXPECT_TRUE(s.LookupByIndex(t1, 0, 0).value().empty());
  EXPECT_EQ(s.LookupByIndex(t1, 0, 9).value().size(), 5u);
  EXPECT_EQ(s.LookupByIndex(t1, 0, 1).value().size(), 5u);
  ASSERT_TRUE(s.Commit().ok());
}

}  // namespace
}  // namespace polarmp
