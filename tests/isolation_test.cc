#include <gtest/gtest.h>

#include <thread>

#include "cluster/cluster.h"

namespace polarmp {
namespace {

// Behaviours that must hold under BOTH isolation levels, parameterized
// (TEST_P) so every scenario runs under read committed and snapshot
// isolation, on a two-node cluster so visibility always crosses the TIT.
class IsolationSweepTest : public ::testing::TestWithParam<IsolationLevel> {
 protected:
  void SetUp() override {
    ClusterOptions opts;
    opts.node.trx.lock_wait_timeout_ms = 500;
    auto cluster = Cluster::Create(opts);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    n1_ = cluster_->AddNode().value();
    n2_ = cluster_->AddNode().value();
    ASSERT_TRUE(cluster_->CreateTable("t").ok());
    t1_ = n1_->OpenTable("t").value();
    t2_ = n2_->OpenTable("t").value();
  }

  Session New(DbNode* node) {
    Session s(node, GetParam());
    EXPECT_TRUE(s.Begin().ok());
    return s;
  }

  std::unique_ptr<Cluster> cluster_;
  DbNode* n1_ = nullptr;
  DbNode* n2_ = nullptr;
  TableHandle t1_, t2_;
};

TEST_P(IsolationSweepTest, NoDirtyReadsAcrossNodes) {
  Session w = New(n1_);
  ASSERT_TRUE(w.Insert(t1_, 1, "uncommitted").ok());
  Session r = New(n2_);
  EXPECT_TRUE(r.Get(t2_, 1).status().IsNotFound());  // never dirty-read
  ASSERT_TRUE(w.Commit().ok());
  ASSERT_TRUE(r.Commit().ok());
}

TEST_P(IsolationSweepTest, OwnWritesAlwaysVisible) {
  Session s = New(n1_);
  ASSERT_TRUE(s.Insert(t1_, 1, "mine").ok());
  EXPECT_EQ(s.Get(t1_, 1).value(), "mine");
  ASSERT_TRUE(s.Update(t1_, 1, "mine-v2").ok());
  EXPECT_EQ(s.Get(t1_, 1).value(), "mine-v2");
  ASSERT_TRUE(s.Delete(t1_, 1).ok());
  EXPECT_TRUE(s.Get(t1_, 1).status().IsNotFound());
  ASSERT_TRUE(s.Rollback().ok());
}

TEST_P(IsolationSweepTest, CommittedWritesVisibleToNewTransactions) {
  {
    Session w = New(n1_);
    ASSERT_TRUE(w.Insert(t1_, 5, "done").ok());
    ASSERT_TRUE(w.Commit().ok());
  }
  Session r = New(n2_);
  EXPECT_EQ(r.Get(t2_, 5).value(), "done");
  ASSERT_TRUE(r.Commit().ok());
}

TEST_P(IsolationSweepTest, WriteLocksExcludeAcrossNodes) {
  {
    Session seed = New(n1_);
    ASSERT_TRUE(seed.Insert(t1_, 1, "seed").ok());
    ASSERT_TRUE(seed.Commit().ok());
  }
  Session a = New(n1_);
  ASSERT_TRUE(a.Update(t1_, 1, "a").ok());
  Session b = New(n2_);
  const Status st = b.Update(t2_, 1, "b");
  // Either blocked-then-timeout (Busy) or — under SI after a's commit wins —
  // Aborted; it must NOT succeed while a's lock is held.
  EXPECT_FALSE(st.ok()) << st.ToString();
  ASSERT_TRUE(a.Commit().ok());
}

TEST_P(IsolationSweepTest, ScanMatchesPointReads) {
  {
    Session w = New(n1_);
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(w.Insert(t1_, i, "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(w.Commit().ok());
  }
  Session r = New(n2_);
  int scanned = 0;
  ASSERT_TRUE(r.Scan(t2_, 0, 100, [&](int64_t k, const std::string& v) {
                 EXPECT_EQ(v, r.Get(t2_, k).value());
                 ++scanned;
                 return true;
               })
                  .ok());
  EXPECT_EQ(scanned, 30);
  ASSERT_TRUE(r.Commit().ok());
}

TEST_P(IsolationSweepTest, RollbackLeavesNoTrace) {
  {
    Session w = New(n1_);
    ASSERT_TRUE(w.Insert(t1_, 1, "keep").ok());
    ASSERT_TRUE(w.Commit().ok());
  }
  {
    Session w = New(n2_);
    ASSERT_TRUE(w.Update(t2_, 1, "discard").ok());
    ASSERT_TRUE(w.Insert(t2_, 2, "discard").ok());
    ASSERT_TRUE(w.Delete(t2_, 1).ok());
    ASSERT_TRUE(w.Rollback().ok());
  }
  Session r = New(n1_);
  EXPECT_EQ(r.Get(t1_, 1).value(), "keep");
  EXPECT_TRUE(r.Get(t1_, 2).status().IsNotFound());
  ASSERT_TRUE(r.Commit().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Levels, IsolationSweepTest,
    ::testing::Values(IsolationLevel::kReadCommitted,
                      IsolationLevel::kSnapshotIsolation),
    [](const ::testing::TestParamInfo<IsolationLevel>& info) {
      return info.param == IsolationLevel::kReadCommitted
                 ? "ReadCommitted"
                 : "SnapshotIsolation";
    });

// Cross-node GSI coherence: index maintained on one node, queried on
// another, with concurrent updates moving entries between buckets.
TEST(CrossNodeGsiTest, IndexCoherentAcrossNodes) {
  auto cluster = Cluster::Create(ClusterOptions()).value();
  DbNode* n1 = cluster->AddNode().value();
  DbNode* n2 = cluster->AddNode().value();
  ASSERT_TRUE(cluster->CreateTable("orders", 1).ok());
  TableHandle t1 = n1->OpenTable("orders").value();
  TableHandle t2 = n2->OpenTable("orders").value();

  {
    Session s(n1, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(s.Begin().ok());
    for (int64_t k = 1; k <= 20; ++k) {
      ASSERT_TRUE(
          s.Insert(t1, k, EncodeIndexedValue({static_cast<uint64_t>(k % 4)}, "payload")).ok());
    }
    ASSERT_TRUE(s.Commit().ok());
  }
  // Move every bucket-0 order to bucket 9, from node 2.
  {
    Session s(n2, IsolationLevel::kReadCommitted);
    ASSERT_TRUE(s.Begin().ok());
    auto bucket0 = s.LookupByIndex(t2, 0, 0).value();
    EXPECT_EQ(bucket0.size(), 5u);
    for (int64_t pk : bucket0) {
      ASSERT_TRUE(s.Update(t2, pk, EncodeIndexedValue({9}, "moved")).ok());
    }
    ASSERT_TRUE(s.Commit().ok());
  }
  // Node 1 sees the index move.
  Session s(n1, IsolationLevel::kReadCommitted);
  ASSERT_TRUE(s.Begin().ok());
  EXPECT_TRUE(s.LookupByIndex(t1, 0, 0).value().empty());
  EXPECT_EQ(s.LookupByIndex(t1, 0, 9).value().size(), 5u);
  EXPECT_EQ(s.LookupByIndex(t1, 0, 1).value().size(), 5u);
  ASSERT_TRUE(s.Commit().ok());
}

}  // namespace
}  // namespace polarmp
