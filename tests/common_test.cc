#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/sim_latency.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace polarmp {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesStringify) {
  for (int c = 0; c <= 10; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::Aborted("boom"));
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsAborted());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

Status Fails() { return Status::IOError("io"); }
Status Propagates() {
  POLARMP_RETURN_IF_ERROR(Fails());
  return Status::OK();
}
StatusOr<int> Gives(int x) { return x; }
Status UsesAssign(int* out) {
  POLARMP_ASSIGN_OR_RETURN(*out, Gives(7));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfError) { EXPECT_FALSE(Propagates().ok()); }

TEST(StatusMacrosTest, AssignOrReturn) {
  int out = 0;
  ASSERT_TRUE(UsesAssign(&out).ok());
  EXPECT_EQ(out, 7);
}

TEST(SliceTest, CompareAndEquality) {
  Slice a("abc"), b("abd"), c("abc"), d("ab");
  EXPECT_LT(a.compare(b), 0);
  EXPECT_GT(b.compare(a), 0);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, d);
  EXPECT_GT(a.compare(d), 0);
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(DecodeFixed16(buf.data()), 0xBEEF);
  EXPECT_EQ(DecodeFixed32(buf.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(DecodeFixed64(buf.data() + 6), 0x0123456789ABCDEFull);
}

TEST(TypesTest, PageIdPackUnpack) {
  PageId id{0xABCD1234u, 0x5678u};
  EXPECT_EQ(PageId::Unpack(id.Pack()), id);
}

TEST(TypesTest, GTrxIdPacking) {
  const GTrxId g = MakeGTrxId(1023, 0x3FFFFF, 0xFFFFFFFFu);
  EXPECT_EQ(GTrxNode(g), 1023);
  EXPECT_EQ(GTrxSlot(g), 0x3FFFFFu);
  EXPECT_EQ(GTrxVersion(g), 0xFFFFFFFFu);
  const GTrxId g2 = MakeGTrxId(3, 17, 42);
  EXPECT_EQ(GTrxNode(g2), 3);
  EXPECT_EQ(GTrxSlot(g2), 17u);
  EXPECT_EQ(GTrxVersion(g2), 42u);
  EXPECT_NE(g2, kInvalidGTrxId);
}

TEST(TypesTest, LockModeConflicts) {
  EXPECT_FALSE(LockModesConflict(LockMode::kShared, LockMode::kShared));
  EXPECT_TRUE(LockModesConflict(LockMode::kShared, LockMode::kExclusive));
  EXPECT_TRUE(LockModesConflict(LockMode::kExclusive, LockMode::kExclusive));
}

TEST(HistogramTest, PercentilesAndMerge) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.Add(i * 1000);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000000u);
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500000.0, 70000.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(95)), 950000.0, 80000.0);
  Histogram h2;
  h2.Add(5);
  h2.Merge(h);
  EXPECT_EQ(h2.count(), 1001u);
  EXPECT_EQ(h2.min(), 5u);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(RandomTest, UniformBounds) {
  Random rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(100), 100u);
    const int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, SeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(ZipfTest, SkewsTowardHead) {
  ZipfGenerator zipf(10000, 0.99, 7);
  uint64_t head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = zipf.Next();
    EXPECT_LT(v, 10000u);
    if (v < 100) ++head;
  }
  // With theta=0.99 the top 1% of keys draw a large share of accesses.
  EXPECT_GT(head, static_cast<uint64_t>(n) / 4);
}

TEST(SimLatencyTest, ZeroProfileIsFree) {
  ResetSimDelayCounters();
  SimDelay(0);
  EXPECT_EQ(TotalSimDelayCount(), 0u);
}

TEST(SimLatencyTest, CountsAndScales) {
  ResetSimDelayCounters();
  SetSimTimeScale(1.0);
  SimDelay(1000);
  EXPECT_EQ(TotalSimDelayCount(), 1u);
  EXPECT_EQ(TotalSimDelayNanos(), 1000u);
  SetSimTimeScale(0.5);
  SimDelay(1000);
  EXPECT_EQ(TotalSimDelayNanos(), 1500u);
  SetSimTimeScale(1.0);
  ResetSimDelayCounters();
}

}  // namespace
}  // namespace polarmp
