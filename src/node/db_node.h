#ifndef POLARMP_NODE_DB_NODE_H_
#define POLARMP_NODE_DB_NODE_H_

#include <map>
#include <memory>
#include <thread>

#include "cache/index_cache.h"
#include "common/lock_rank.h"
#include "engine/btree.h"
#include "node/catalog.h"
#include "txn/transaction.h"
#include "wal/recovery.h"

namespace polarmp {

// Shared cluster infrastructure every node plugs into (the disaggregated
// services plus PMFS).
struct ClusterServices {
  Fabric* fabric = nullptr;
  Dsm* dsm = nullptr;
  PageStore* page_store = nullptr;
  LogStore* log_store = nullptr;
  TransactionFusion* txn_fusion = nullptr;
  BufferFusion* buffer_fusion = nullptr;
  LockFusion* lock_fusion = nullptr;
  Tit* tit = nullptr;
  UndoStore* undo = nullptr;
  Catalog* catalog = nullptr;
};

struct NodeOptions {
  BufferPool::Options lbp;
  // Compute-side index cache (internal B-tree pages, one-sided refresh).
  // `cache.page_size` is ignored: the cache always follows `lbp.page_size`.
  IndexCache::Options cache;
  uint64_t plock_timeout_ms = 10'000;
  TrxManager::Options trx;
  bool linear_lamport = true;        // §4.1 timestamp-fetch optimization
  bool lazy_plock_release = true;    // §4.3.1 lazy releasing
  uint64_t background_interval_ms = 20;
  uint64_t checkpoint_interval_ms = 500;
  // §4.2: "the dirty pages are periodically flushed to the DBP in the
  // background" — this cadence keeps the DBP warm so a crashed node's
  // recovery reads from disaggregated memory, not storage (§5.5).
  uint64_t lbp_flush_interval_ms = 200;
};

// A resolved table: clustered tree + GSI trees. For tables with GSIs the
// row value must start with one fixed 8-byte column per index (see
// EncodeIndexedValue); Session maintains the index trees transparently.
struct TableHandle {
  TableInfo info;
  BTree* primary = nullptr;
  std::vector<BTree*> indexes;
};

// Builds a value whose leading columns feed the table's GSIs.
std::string EncodeIndexedValue(const std::vector<uint64_t>& index_cols,
                               Slice payload);
// Extracts GSI column `i` from such a value.
uint64_t DecodeIndexColumn(Slice value, size_t i);
// Packs (column value, primary key) into a GSI entry key:
// 40 bits of column, 24 bits of pk (documented engine limit).
int64_t MakeIndexEntryKey(uint64_t column, int64_t pk);

// A complete PolarDB-MP primary node: engine (LBP + PLock manager + B-trees
// + log writer + LLSN clock), transaction manager, PMFS clients and the
// background threads (min-view reporting/recycling and checkpoints).
class DbNode {
 public:
  DbNode(NodeId id, const ClusterServices& services,
         const NodeOptions& options);
  ~DbNode();

  DbNode(const DbNode&) = delete;
  DbNode& operator=(const DbNode&) = delete;

  // Joins the cluster. With `run_recovery`, replays this node's log from
  // its checkpoint first (restart after crash).
  Status Start(bool run_recovery);
  // Graceful shutdown: checkpoint, release every lock, leave the fabric.
  Status Stop();
  // Crash simulation: drops all volatile state without flushing; PMFS
  // retains the node's exclusive PLocks as ghosts until recovery.
  void Crash();

  NodeId id() const { return id_; }
  bool running() const { return running_; }

  TrxManager* trx_manager() { return &trx_mgr_; }
  EngineContext* engine() { return &engine_ctx_; }
  TsoClient* tso_client() { return &tso_client_; }
  BufferPool* buffer_pool() { return &lbp_; }
  PLockManager* plock_manager() { return &plock_; }
  IndexCache* index_cache() { return &cache_; }
  LogWriter* log_writer() { return &log_writer_; }

  // The tree for a tablespace (wrapper created lazily; the tree itself must
  // already exist via CreateTreesFor on some node).
  BTree* TreeForSpace(SpaceId space);

  // Formats the trees of a freshly catalogued table (creator node only).
  Status CreateTreesFor(const TableInfo& info);

  StatusOr<TableHandle> OpenTable(const std::string& name);

  // Sharp checkpoint: force log, push dirty pages to the DBP, flush them to
  // storage, advance the durable checkpoint LSN.
  Status Checkpoint();

 private:
  void BackgroundLoop();
  Status RunRecovery();

  const NodeId id_;
  const ClusterServices services_;
  const NodeOptions options_;

  // polarlint: unguarded(internally synchronized)
  LlsnClock llsn_;
  RankedMutex llsn_order_mu_{LockRank::kLlsnOrder, "db_node.llsn_order"};
  // polarlint: unguarded(internally synchronized)
  LogWriter log_writer_;
  // polarlint: unguarded(internally synchronized)
  BufferPool lbp_;
  // polarlint: unguarded(internally synchronized)
  PLockManager plock_;
  // polarlint: unguarded(internally synchronized)
  IndexCache cache_;
  RankedSharedMutex commit_mu_{LockRank::kCommitGate, "db_node.commit_gate"};
  // polarlint: unguarded(wired once in the constructor, read-only after)
  EngineContext engine_ctx_;
  // polarlint: unguarded(internally synchronized)
  TsoClient tso_client_;
  // polarlint: unguarded(internally synchronized)
  TrxManager trx_mgr_;

  RankedMutex trees_mu_{LockRank::kNodeTrees, "db_node.trees"};
  // Guards the map only: BTree objects are never erased, so a BTree* looked
  // up under trees_mu_ stays valid after the lock is dropped.
  std::map<SpaceId, std::unique_ptr<BTree>> trees_ GUARDED_BY(trees_mu_);

  // polarlint: unguarded(set in Start; joined in Stop/Crash after the
  // bg_stop_ handshake, necessarily outside the lock)
  std::thread background_;
  RankedMutex bg_mu_{LockRank::kNodeBackground, "db_node.background"};
  CondVar bg_cv_;
  bool bg_stop_ GUARDED_BY(bg_mu_) = false;
  // Control-plane flags: Start/Stop/Crash are externally serialized (one
  // operator per node); only the owning thread writes them.
  // polarlint: unguarded(control-plane flag; lifecycle calls are serialized)
  bool running_ = false;
  // polarlint: unguarded(control-plane flag; lifecycle calls are serialized)
  bool crashed_ = false;
};

}  // namespace polarmp

#endif  // POLARMP_NODE_DB_NODE_H_
