#include "node/catalog.h"

namespace polarmp {

StatusOr<TableInfo> Catalog::CreateTable(const std::string& name,
                                         uint32_t num_indexes) {
  MutexLock lock(mu_);
  if (by_name_.count(name) != 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  TableInfo info;
  info.id = next_table_id_++;
  info.name = name;
  info.primary_space = next_space_id_++;
  for (uint32_t i = 0; i < num_indexes; ++i) {
    info.index_spaces.push_back(next_space_id_++);
  }
  by_name_[name] = info;
  return info;
}

Status Catalog::DropTable(const std::string& name) {
  MutexLock lock(mu_);
  if (by_name_.erase(name) == 0) {
    return Status::NotFound("table missing: " + name);
  }
  return Status::OK();
}

StatusOr<TableInfo> Catalog::GetByName(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("table missing: " + name);
  }
  return it->second;
}

StatusOr<TableInfo> Catalog::GetById(TableId id) const {
  MutexLock lock(mu_);
  for (const auto& [name, info] : by_name_) {
    if (info.id == id) return info;
  }
  return Status::NotFound("table id missing: " + std::to_string(id));
}

std::vector<TableInfo> Catalog::AllTables() const {
  MutexLock lock(mu_);
  std::vector<TableInfo> out;
  out.reserve(by_name_.size());
  for (const auto& [name, info] : by_name_) out.push_back(info);
  return out;
}

}  // namespace polarmp
