#include "node/session.h"

#include "common/coding.h"
#include "obs/trace.h"

namespace polarmp {

Session::~Session() {
  if (trx_ != nullptr) {
    const Status s = Rollback();
    if (!s.ok()) {
      POLARMP_LOG(Warn) << "session rollback on destroy failed: "
                        << s.ToString();
    }
  }
}

Session::Session(Session&& other) noexcept
    : node_(other.node_), iso_(other.iso_), trx_(other.trx_) {
  other.trx_ = nullptr;
}

Status Session::Begin() {
  POLARMP_CHECK(trx_ == nullptr) << "transaction already open";
  POLARMP_ASSIGN_OR_RETURN(trx_, node_->trx_manager()->Begin(iso_));
  return Status::OK();
}

Status Session::Commit() {
  POLARMP_CHECK(trx_ != nullptr);
  // Whole client-observed commit latency (the outermost commit-path
  // segment; "txn_fusion.commit*_ns" decompose the interior).
  static obs::LatencyHistogram commit_ns("session.commit_ns");
  obs::TraceSpan span(&commit_ns);
  const Status s = node_->trx_manager()->Commit(trx_);
  if (!s.ok() && trx_->state() == TrxState::kActive) {
    // Commit failed before the commit point (e.g. log force error): the
    // transaction is still active and must be undone.
    POLARMP_LOG(Warn) << "commit failed pre-commit-point, rolling back: "
                      << s.ToString();
    const Status rb = node_->trx_manager()->Rollback(trx_);
    if (!rb.ok()) {
      POLARMP_LOG(Warn) << "rollback after failed commit failed: "
                        << rb.ToString();
    }
  }
  node_->trx_manager()->Release(trx_);
  trx_ = nullptr;
  return s;
}

Status Session::Rollback() {
  POLARMP_CHECK(trx_ != nullptr);
  const Status s = node_->trx_manager()->Rollback(trx_);
  node_->trx_manager()->Release(trx_);
  trx_ = nullptr;
  return s;
}

Status Session::FailAndRollback(Status st) {
  if (trx_ != nullptr) {
    const Status rb = Rollback();
    if (!rb.ok()) {
      POLARMP_LOG(Warn) << "rollback after failure failed: " << rb.ToString();
    }
  }
  return st;
}

Status Session::MaintainIndexes(const TableHandle& table, int64_t key,
                                const std::optional<RowVersion>& prev,
                                Slice value, bool tombstone) {
  char pk_buf[8];
  EncodeFixed64(pk_buf, static_cast<uint64_t>(key));
  const Slice pk_value(pk_buf, 8);
  for (size_t i = 0; i < table.indexes.size(); ++i) {
    std::optional<uint64_t> old_col;
    if (prev.has_value()) old_col = DecodeIndexColumn(prev->value, i);
    std::optional<uint64_t> new_col;
    if (!tombstone) new_col = DecodeIndexColumn(value, i);
    if (old_col == new_col) continue;
    if (old_col.has_value()) {
      POLARMP_RETURN_IF_ERROR(node_->trx_manager()->WriteRow(
          trx_, table.indexes[i], MakeIndexEntryKey(*old_col, key), Slice(),
          /*tombstone=*/true, /*must_not_exist=*/false,
          /*require_exists=*/false, nullptr));
    }
    if (new_col.has_value()) {
      POLARMP_RETURN_IF_ERROR(node_->trx_manager()->WriteRow(
          trx_, table.indexes[i], MakeIndexEntryKey(*new_col, key), pk_value,
          /*tombstone=*/false, /*must_not_exist=*/false,
          /*require_exists=*/false, nullptr));
    }
  }
  return Status::OK();
}

Status Session::Write(const TableHandle& table, int64_t key, Slice value,
                      bool tombstone, bool must_not_exist,
                      bool require_exists) {
  POLARMP_CHECK(trx_ != nullptr) << "no open transaction";
  std::optional<RowVersion> prev;
  Status st = node_->trx_manager()->WriteRow(trx_, table.primary, key, value,
                                             tombstone, must_not_exist,
                                             require_exists, &prev);
  if (st.IsAborted() || st.IsBusy()) return FailAndRollback(st);
  POLARMP_RETURN_IF_ERROR(st);
  if (!table.indexes.empty()) {
    st = MaintainIndexes(table, key, prev, value, tombstone);
    if (!st.ok()) return FailAndRollback(st);
  }
  return Status::OK();
}

Status Session::Insert(const TableHandle& table, int64_t key, Slice value) {
  return Write(table, key, value, /*tombstone=*/false, /*must_not_exist=*/true,
               /*require_exists=*/false);
}

Status Session::Update(const TableHandle& table, int64_t key, Slice value) {
  return Write(table, key, value, /*tombstone=*/false,
               /*must_not_exist=*/false, /*require_exists=*/true);
}

Status Session::Put(const TableHandle& table, int64_t key, Slice value) {
  return Write(table, key, value, /*tombstone=*/false,
               /*must_not_exist=*/false, /*require_exists=*/false);
}

Status Session::Delete(const TableHandle& table, int64_t key) {
  return Write(table, key, Slice(), /*tombstone=*/true,
               /*must_not_exist=*/false, /*require_exists=*/true);
}

StatusOr<std::string> Session::Get(const TableHandle& table, int64_t key) {
  POLARMP_CHECK(trx_ != nullptr) << "no open transaction";
  return node_->trx_manager()->ReadRow(trx_, table.primary, key);
}

StatusOr<std::string> Session::GetForUpdate(const TableHandle& table,
                                            int64_t key) {
  POLARMP_CHECK(trx_ != nullptr) << "no open transaction";
  auto value =
      node_->trx_manager()->ReadRowForUpdate(trx_, table.primary, key);
  if (value.status().IsAborted() || value.status().IsBusy()) {
    return FailAndRollback(value.status());
  }
  return value;
}

Status Session::Scan(
    const TableHandle& table, int64_t lo, int64_t hi,
    const std::function<bool(int64_t, const std::string&)>& fn) {
  POLARMP_CHECK(trx_ != nullptr) << "no open transaction";
  return node_->trx_manager()->ScanRows(trx_, table.primary, lo, hi, fn);
}

StatusOr<std::vector<int64_t>> Session::LookupByIndex(const TableHandle& table,
                                                      size_t index,
                                                      uint64_t column) {
  POLARMP_CHECK(trx_ != nullptr) << "no open transaction";
  POLARMP_CHECK_LT(index, table.indexes.size());
  const int64_t lo = MakeIndexEntryKey(column, 0);
  const int64_t hi = MakeIndexEntryKey(column, 0xFFFFFF);
  std::vector<int64_t> pks;
  POLARMP_RETURN_IF_ERROR(node_->trx_manager()->ScanRows(
      trx_, table.indexes[index], lo, hi,
      [&](int64_t entry_key, const std::string& pk_value) {
        (void)entry_key;
        pks.push_back(static_cast<int64_t>(DecodeFixed64(pk_value.data())));
        return true;
      }));
  return pks;
}

}  // namespace polarmp
