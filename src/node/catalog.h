#ifndef POLARMP_NODE_CATALOG_H_
#define POLARMP_NODE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/status.h"
#include "common/types.h"

namespace polarmp {

// A table: one clustered tree plus zero or more global secondary indexes
// (GSIs), each its own tree in its own tablespace. In PolarDB-MP a GSI is
// just another tree every node can update directly — no partition-local
// index, no distributed transaction (§5.4).
struct TableInfo {
  TableId id = 0;
  std::string name;
  SpaceId primary_space = 0;
  std::vector<SpaceId> index_spaces;
};

// Cluster-wide table registry. In production this lives in shared storage;
// here it is a shared in-process object. Creation is serialized; readers
// get copies.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  StatusOr<TableInfo> CreateTable(const std::string& name,
                                  uint32_t num_indexes);
  Status DropTable(const std::string& name);
  StatusOr<TableInfo> GetByName(const std::string& name) const;
  StatusOr<TableInfo> GetById(TableId id) const;
  std::vector<TableInfo> AllTables() const;

 private:
  mutable RankedMutex mu_{LockRank::kCatalog, "catalog.tables"};
  TableId next_table_id_ GUARDED_BY(mu_) = 1;
  SpaceId next_space_id_ GUARDED_BY(mu_) = 1;
  std::map<std::string, TableInfo> by_name_ GUARDED_BY(mu_);
};

}  // namespace polarmp

#endif  // POLARMP_NODE_CATALOG_H_
