#ifndef POLARMP_NODE_SESSION_H_
#define POLARMP_NODE_SESSION_H_

#include <string>
#include <vector>

#include "node/db_node.h"

namespace polarmp {

// A client session bound to one primary node. Wraps the transaction
// lifecycle and performs GSI maintenance: every index entry update is just
// another row write on this node — no distributed transaction, which is
// exactly the §5.4 argument against partitioned GSIs.
//
// Usage:
//   Session s(node, IsolationLevel::kReadCommitted);
//   s.Begin();
//   s.Insert(table, key, value);
//   s.Commit();
//
// After Commit/Rollback the session can Begin() again. Errors with code
// Aborted or Busy mean the transaction was/must be rolled back; the session
// rolls it back automatically and the caller may retry from Begin().
class Session {
 public:
  Session(DbNode* node, IsolationLevel iso) : node_(node), iso_(iso) {}
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&& other) noexcept;

  Status Begin();
  Status Commit();
  Status Rollback();
  bool in_transaction() const { return trx_ != nullptr; }
  // Crash-test support: forget the open transaction WITHOUT rolling back
  // (the node died and took it along; recovery owns it now).
  void Disarm() { trx_ = nullptr; }

  // INSERT: fails AlreadyExists if a live row exists.
  Status Insert(const TableHandle& table, int64_t key, Slice value);
  // UPDATE: fails NotFound if the row does not exist.
  Status Update(const TableHandle& table, int64_t key, Slice value);
  // UPSERT: insert-or-replace.
  Status Put(const TableHandle& table, int64_t key, Slice value);
  // DELETE: tombstones the row; NotFound if absent.
  Status Delete(const TableHandle& table, int64_t key);
  // Snapshot point read.
  StatusOr<std::string> Get(const TableHandle& table, int64_t key);
  // Locking read (SELECT ... FOR UPDATE): returns the latest committed
  // value and holds the row lock until commit/rollback, so a
  // read-modify-write built on it cannot lose updates to a concurrent
  // writer. On Aborted/Busy the transaction is rolled back (like writes).
  StatusOr<std::string> GetForUpdate(const TableHandle& table, int64_t key);
  // Snapshot range scan over [lo, hi]; fn returns false to stop.
  Status Scan(const TableHandle& table, int64_t lo, int64_t hi,
              const std::function<bool(int64_t, const std::string&)>& fn);
  // Primary keys whose GSI column `index` equals `column`.
  StatusOr<std::vector<int64_t>> LookupByIndex(const TableHandle& table,
                                               size_t index, uint64_t column);

 private:
  // Shared write path: primary row + GSI deltas. On row-level failure the
  // transaction is rolled back (2PL: a failed statement poisons it).
  Status Write(const TableHandle& table, int64_t key, Slice value,
               bool tombstone, bool must_not_exist, bool require_exists);
  Status MaintainIndexes(const TableHandle& table, int64_t key,
                         const std::optional<RowVersion>& prev, Slice value,
                         bool tombstone);
  Status FailAndRollback(Status st);

  DbNode* node_;
  IsolationLevel iso_;
  Transaction* trx_ = nullptr;
};

}  // namespace polarmp

#endif  // POLARMP_NODE_SESSION_H_
