#include "node/db_node.h"

#include <algorithm>
#include <chrono>

#include "common/coding.h"

namespace polarmp {

namespace {

// Cache slots hold LBP page images, so the cache's page size always follows
// the LBP's (whatever the option struct says).
IndexCache::Options MakeCacheOptions(const NodeOptions& options) {
  IndexCache::Options o = options.cache;
  o.page_size = options.lbp.page_size;
  return o;
}

}  // namespace

std::string EncodeIndexedValue(const std::vector<uint64_t>& index_cols,
                               Slice payload) {
  std::string out;
  out.reserve(index_cols.size() * 8 + payload.size());
  for (uint64_t col : index_cols) PutFixed64(&out, col);
  out.append(payload.data(), payload.size());
  return out;
}

uint64_t DecodeIndexColumn(Slice value, size_t i) {
  POLARMP_CHECK_GE(value.size(), (i + 1) * 8);
  return DecodeFixed64(value.data() + i * 8);
}

int64_t MakeIndexEntryKey(uint64_t column, int64_t pk) {
  return static_cast<int64_t>(((column & 0xFFFFFFFFFFull) << 24) |
                              (static_cast<uint64_t>(pk) & 0xFFFFFFull));
}

DbNode::DbNode(NodeId id, const ClusterServices& services,
               const NodeOptions& options)
    : id_(id),
      services_(services),
      options_(options),
      log_writer_(id, services.log_store),
      lbp_(id, services.fabric, services.buffer_fusion, services.page_store,
           &llsn_, options.lbp),
      plock_(id, services.lock_fusion, options.lazy_plock_release),
      cache_(id, services.fabric, services.buffer_fusion,
             MakeCacheOptions(options)),
      tso_client_(services.txn_fusion->tso(), id, options.linear_lamport),
      trx_mgr_(&engine_ctx_, services.tit, &tso_client_, services.txn_fusion,
               services.lock_fusion, services.undo, options.trx) {
  engine_ctx_.node = id_;
  engine_ctx_.plock = &plock_;
  engine_ctx_.lbp = &lbp_;
  engine_ctx_.cache = &cache_;
  engine_ctx_.log = &log_writer_;
  engine_ctx_.llsn = &llsn_;
  engine_ctx_.commit_mu = &commit_mu_;
  engine_ctx_.llsn_order_mu = &llsn_order_mu_;
  engine_ctx_.plock_timeout_ms = options.plock_timeout_ms;

  // Wire the cross-component hooks: WAL rule on page push, PLock release
  // flushes the dirty page, LBP eviction releases the PLock.
  // Eviction is inherently synchronous (the page cannot leave before its
  // redo), so the WAL-rule hook rides the async pipeline and waits on the
  // handle — it still groups with whatever committers are queued.
  lbp_.SetForceLog(
      [this](Lsn lsn) { return log_writer_.ForceAsync(lsn).Wait(); });
  plock_.SetBeforeRelease(
      [this](PageId page) { return lbp_.FlushPageForRelease(page); });
  lbp_.SetReleasePLock([this](PageId page) {
    // If the index cache still holds the page, keep the fusion-side grant
    // as a lease: the next descent through the cached image re-pins without
    // leaving the node. (A lease is just an idle retained hold, so a remote
    // conflict revokes it through the normal negotiation path.)
    return cache_.Contains(page) ? plock_.DemoteToLease(page)
                                 : plock_.ForceRelease(page);
  });
  cache_.SetOnEvict([this](PageId page) { plock_.ReleaseLease(page); });
  lbp_.SetNotePush([this](PageId page) { cache_.NotePushed(page); });
  trx_mgr_.SetTreeResolver([this](SpaceId space) { return TreeForSpace(space); });
}

DbNode::~DbNode() {
  if (running_) {
    const Status s = Stop();
    if (!s.ok()) {
      POLARMP_LOG(Warn) << "node " << id_ << " stop failed: " << s.ToString();
    }
  }
}

Status DbNode::Start(bool run_recovery) {
  POLARMP_CHECK(!running_);
  const uint64_t epoch = services_.log_store->BumpNodeEpoch(id_);
  POLARMP_RETURN_IF_ERROR(services_.tit->AddNode(id_, epoch << 20));
  services_.tit->MarkDeparted(id_, false);
  POLARMP_RETURN_IF_ERROR(services_.undo->AddNode(id_));
  services_.lock_fusion->AddNode(
      id_, [this](PageId page) { plock_.OnNegotiate(page); });
  services_.buffer_fusion->AddNode(id_);

  if (run_recovery) {
    POLARMP_RETURN_IF_ERROR(RunRecovery());
  }

  services_.txn_fusion->AddNode(id_);
  {
    MutexLock lock(bg_mu_);
    bg_stop_ = false;
  }
  background_ = std::thread([this] { BackgroundLoop(); });
  running_ = true;
  crashed_ = false;
  return Status::OK();
}

Status DbNode::RunRecovery() {
  Recovery::Options opts;
  opts.reader = id_;
  Recovery recovery(services_.log_store, services_.page_store, services_.undo,
                    services_.buffer_fusion, options_.lbp.page_size, opts);
  POLARMP_ASSIGN_OR_RETURN(auto uncommitted, recovery.RedoReplay({id_}));
  POLARMP_RETURN_IF_ERROR(recovery.FlushPages());
  // Roll back in-flight transactions through the live engine (the pages
  // involved are still fenced by this node's ghost PLocks).
  for (const auto& trx : uncommitted) {
    POLARMP_RETURN_IF_ERROR(
        trx_mgr_.RollbackRecovered(trx.gid, trx.last_undo));
  }
  POLARMP_RETURN_IF_ERROR(log_writer_.ForceAllAsync().Wait());
  POLARMP_RETURN_IF_ERROR(Checkpoint());
  // Committed-before-crash rows now resolve as "slot reused" ⇒ visible.
  services_.tit->ResetNode(id_);
  // Drop the ghost holds (and whatever the rollback pinned): every change
  // is flushed, so other nodes may touch the pages again.
  for (PageId page : lbp_.DirtyPages()) {
    POLARMP_RETURN_IF_ERROR(lbp_.FlushPageForRelease(page));
  }
  plock_.DropAll();
  services_.lock_fusion->ReleaseAllHolds(id_);
  if (!uncommitted.empty()) {
    POLARMP_LOG(Info) << "node " << id_ << " recovery: rolled back "
                      << uncommitted.size() << " transactions, "
                      << recovery.stats().page_records_applied
                      << " records applied ("
                      << recovery.stats().pages_from_dbp << " pages via DBP, "
                      << recovery.stats().pages_from_storage
                      << " via storage)";
  }
  return Status::OK();
}

Status DbNode::Stop() {
  POLARMP_CHECK(running_);
  {
    MutexLock lock(bg_mu_);
    bg_stop_ = true;
    bg_cv_.notify_all();
  }
  background_.join();
  // Let in-flight force completions finalize against the live engine before
  // the checkpoint snapshots state.
  trx_mgr_.DrainCommitQueue();
  POLARMP_RETURN_IF_ERROR(Checkpoint());
  // Committed rows we wrote stay resolvable through the registry-held TIT.
  services_.tit->MarkDeparted(id_, true);
  cache_.DropAll();
  plock_.DropAll();
  services_.lock_fusion->RemoveNode(id_);
  services_.lock_fusion->ReleaseAllHolds(id_);
  services_.buffer_fusion->RemoveNode(id_);
  services_.txn_fusion->RemoveNode(id_);
  services_.fabric->DeregisterEndpoint(id_);
  running_ = false;
  return Status::OK();
}

void DbNode::Crash() {
  POLARMP_CHECK(running_);
  {
    MutexLock lock(bg_mu_);
    bg_stop_ = true;
    bg_cv_.notify_all();
  }
  background_.join();
  // Quiesce the commit pipeline first: pending forces drain with Aborted
  // (running their FinishCommit continuations against the still-live
  // engine), the volatile log buffer evaporates, and no flusher callback
  // can fire once the services deregister below.
  log_writer_.Abandon();
  // The abandoned forces' FinishCommit continuations (all Aborted) must run
  // while the engine is still alive; after this no commit work is queued.
  trx_mgr_.DrainCommitQueue();
  // Volatile state evaporates; PMFS keeps the exclusive PLocks as ghosts
  // and the DBP keeps every pushed page — that is the §5.5 recovery story.
  services_.fabric->DeregisterEndpoint(id_);
  services_.lock_fusion->RemoveNode(id_);
  services_.buffer_fusion->RemoveNode(id_);
  services_.txn_fusion->RemoveNode(id_);
  lbp_.DropAll();
  cache_.DropAll();
  plock_.DropAll();
  trx_mgr_.DropAll();
  running_ = false;
  crashed_ = true;
}

BTree* DbNode::TreeForSpace(SpaceId space) {
  MutexLock lock(trees_mu_);
  auto it = trees_.find(space);
  if (it == trees_.end()) {
    it = trees_
             .emplace(space, std::make_unique<BTree>(
                                 &engine_ctx_, services_.page_store, space))
             .first;
  }
  return it->second.get();
}

Status DbNode::CreateTreesFor(const TableInfo& info) {
  std::vector<SpaceId> spaces{info.primary_space};
  spaces.insert(spaces.end(), info.index_spaces.begin(),
                info.index_spaces.end());
  for (SpaceId space : spaces) {
    POLARMP_RETURN_IF_ERROR(services_.page_store->CreateSpace(space));
    POLARMP_RETURN_IF_ERROR(TreeForSpace(space)->Create());
    // Bootstrap hygiene: push the fresh root to the DBP and hand its PLock
    // back immediately. A lazily-retained bootstrap lock would ghost-fence
    // the whole table for every other node if this node crashed.
    const PageId root{space, 0};
    POLARMP_RETURN_IF_ERROR(log_writer_.ForceAllAsync().Wait());
    POLARMP_RETURN_IF_ERROR(lbp_.FlushPageForRelease(root));
    const Status released = plock_.ForceRelease(root);
    if (!released.ok() && !released.IsBusy()) return released;
  }
  return Status::OK();
}

StatusOr<TableHandle> DbNode::OpenTable(const std::string& name) {
  POLARMP_ASSIGN_OR_RETURN(TableInfo info, services_.catalog->GetByName(name));
  TableHandle handle;
  handle.info = info;
  handle.primary = TreeForSpace(info.primary_space);
  for (SpaceId space : info.index_spaces) {
    handle.indexes.push_back(TreeForSpace(space));
  }
  return handle;
}

Status DbNode::Checkpoint() {
  Lsn ckpt_candidate;
  std::vector<PageId> dirty;
  {
    // Exclusive against mtr commits: the snapshot sees either none or all
    // of any mini-transaction (log bytes + dirty marks).
    WriterLock barrier(commit_mu_);
    ckpt_candidate = log_writer_.buffered_lsn();
    dirty = lbp_.DirtyPages();
  }
  ckpt_candidate = std::min(ckpt_candidate, trx_mgr_.OldestActiveFirstLsn());
  POLARMP_RETURN_IF_ERROR(log_writer_.ForceAllAsync().Wait());
  for (PageId page : dirty) {
    POLARMP_RETURN_IF_ERROR(lbp_.FlushPageForRelease(page));
  }
  // Changes this node logged below the candidate may live only in the DBP
  // (pushed on an earlier negotiation); they must reach storage before the
  // checkpoint moves, or a DSM loss would strand them beyond replay.
  POLARMP_RETURN_IF_ERROR(services_.buffer_fusion->FlushAllDirty(id_));
  return services_.log_store->SetCheckpoint(id_, ckpt_candidate);
}

void DbNode::BackgroundLoop() {
  auto last_checkpoint = std::chrono::steady_clock::now();
  auto last_lbp_flush = last_checkpoint;
  for (;;) {
    {
      UniqueLock lock(bg_mu_);
      bg_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.background_interval_ms),
                      [&] { return bg_stop_; });
      if (bg_stop_) return;
    }
    trx_mgr_.BackgroundTick();
    const auto now = std::chrono::steady_clock::now();
    if (now - last_lbp_flush >=
        std::chrono::milliseconds(options_.lbp_flush_interval_ms)) {
      last_lbp_flush = now;
      // LLSN heartbeat: lets log consumers (standby replication, recovery
      // merges) advance their LLSN_bound past this stream when it idles.
      // Fold in the cluster watermark first so an idle node's horizon
      // tracks its busy peers. The order mutex keeps the mark monotone
      // with commits.
      auto watermark =
          services_.txn_fusion->MergeLlsnWatermark(id_, llsn_.Current());
      if (watermark.ok()) llsn_.Observe(watermark.value());
      {
        MutexLock order_guard(llsn_order_mu_);
        log_writer_.Add({MakeLlsnMark(id_, llsn_.Current())});
      }
      // Fire-and-forget: the heartbeat only needs the LLSN mark durable
      // eventually; the next tick retries anyway, so nothing waits here.
      const NodeId hb_node = id_;
      log_writer_.ForceAllAsync([hb_node](Status hb) {
        if (!hb.ok() && !hb.IsAborted()) {
          POLARMP_LOG(Warn) << "node " << hb_node
                            << " heartbeat force failed: " << hb.ToString();
        }
      });
      // Background dirty-page push (§4.2): keeps the DBP current so peers
      // and crash recovery find the latest pages in disaggregated memory.
      for (PageId page : lbp_.DirtyPages()) {
        const Status s = lbp_.FlushPageForRelease(page);
        if (!s.ok()) {
          POLARMP_LOG(Warn) << "node " << id_ << " background push failed: "
                            << s.ToString();
        }
      }
    }
    if (now - last_checkpoint >=
        std::chrono::milliseconds(options_.checkpoint_interval_ms)) {
      last_checkpoint = now;
      const Status s = Checkpoint();
      if (!s.ok()) {
        POLARMP_LOG(Warn) << "node " << id_
                          << " checkpoint failed: " << s.ToString();
      }
    }
  }
}

}  // namespace polarmp
