#ifndef POLARMP_WAL_LOG_RECORD_H_
#define POLARMP_WAL_LOG_RECORD_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"

namespace polarmp {

// Redo record catalogue. Records are page-scoped and physiological
// (ARIES-style, §4.4): replay applies a record to its page iff the page's
// LLSN stamp is older than the record's, which makes replay idempotent and
// lets logs from different nodes interleave freely except per page.
enum class LogRecordType : uint8_t {
  kInitPage = 1,      // format page: body = {level u8, prev u32, next u32}
  kWriteRow = 2,      // upsert serialized row: body = row image
  kRemoveRow = 3,     // physically remove row: body = key i64
  kSetPageLinks = 4,  // body = {prev u32, next u32}
  kUndoAppend = 5,    // rebuild undo store: aux = store offset, body = bytes
  kTrxCommit = 6,     // trx = g_trx_id, aux = CTS
  kTrxRollbackEnd = 7,  // trx = g_trx_id: rollback fully logged
  kLoadRows = 8,      // upsert a batch of row images (splits): body = images
  kTruncateRows = 9,  // drop rows with key >= aux-as-key (splits)
  kLlsnMark = 10,     // heartbeat carrying the node's current LLSN, so
                      // log consumers (standby, recovery) can advance the
                      // LLSN_bound past idle streams
};

struct LogRecord {
  LogRecordType type = LogRecordType::kInitPage;
  NodeId node = 0;       // generating node (undo-store owner for kUndoAppend)
  Llsn llsn = 0;         // 0 for pure-transaction records
  PageId page_id;        // page records only
  GTrxId trx = kInvalidGTrxId;  // transaction records only
  uint64_t aux = 0;      // CTS (kTrxCommit) or undo offset (kUndoAppend)
  std::string body;

  bool IsPageRecord() const {
    return type == LogRecordType::kInitPage ||
           type == LogRecordType::kWriteRow ||
           type == LogRecordType::kRemoveRow ||
           type == LogRecordType::kSetPageLinks ||
           type == LogRecordType::kLoadRows ||
           type == LogRecordType::kTruncateRows;
  }

  void AppendTo(std::string* dst) const;
  std::string Encode() const;

  // Parses one record from the front of `data`; sets *consumed to the bytes
  // used. Returns InvalidArgument if `data` holds less than one full record
  // (the caller then fetches a larger chunk).
  static StatusOr<LogRecord> Decode(std::string_view data, size_t* consumed);

  // Size this record will occupy in the stream.
  size_t EncodedSize() const;
};

// Convenience constructors for the common shapes.
LogRecord MakeInitPage(NodeId node, Llsn llsn, PageId page, uint8_t level,
                       PageNo prev, PageNo next);
LogRecord MakeWriteRow(NodeId node, Llsn llsn, PageId page,
                       std::string row_image);
LogRecord MakeRemoveRow(NodeId node, Llsn llsn, PageId page, int64_t key);
LogRecord MakeSetPageLinks(NodeId node, Llsn llsn, PageId page, PageNo prev,
                           PageNo next);
LogRecord MakeUndoAppend(NodeId node, Llsn llsn, uint64_t offset,
                         std::string bytes);
LogRecord MakeTrxCommit(NodeId node, GTrxId trx, Csn cts);
LogRecord MakeTrxRollbackEnd(NodeId node, GTrxId trx);
LogRecord MakeLoadRows(NodeId node, Llsn llsn, PageId page,
                       std::string images);
LogRecord MakeLlsnMark(NodeId node, Llsn llsn);
LogRecord MakeTruncateRows(NodeId node, Llsn llsn, PageId page,
                           int64_t from_key);

}  // namespace polarmp

#endif  // POLARMP_WAL_LOG_RECORD_H_
