#ifndef POLARMP_WAL_LOG_WRITER_H_
#define POLARMP_WAL_LOG_WRITER_H_

#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "obs/metrics.h"
#include "storage/log_store.h"
#include "wal/log_record.h"

namespace polarmp {

// Per-node redo log front end: buffers encoded records in LSN order and
// forces them to the LogStore with group commit (concurrent committers
// piggyback on one storage append, as InnoDB's log does).
class LogWriter {
 public:
  LogWriter(NodeId node, LogStore* store);

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  NodeId node() const { return node_; }

  // Buffers `records`; returns the end LSN after them (force target).
  Lsn Add(const std::vector<LogRecord>& records);
  Lsn AddEncoded(const std::string& encoded);

  // Blocks until everything up to `lsn` is durable. Group commit: a caller
  // that arrives while a force is in flight waits and re-checks.
  Status ForceTo(Lsn lsn);
  Status ForceAll();

  Lsn durable_lsn() const;
  Lsn buffered_lsn() const;

  // ---- telemetry ------------------------------------------------------------
  // Shims over this instance's registry handles ("log_writer.*");
  // "log_writer.force_ns" is the commit path's durability segment
  // (including time spent piggybacking on another committer's force).
  uint64_t appends() const { return appends_.Value(); }
  uint64_t forces() const { return forces_.Value(); }
  void ResetCounters();

 private:
  const NodeId node_;
  LogStore* const store_;

  mutable RankedMutex mu_{LockRank::kLogWriter, "log_writer.buffer"};
  CondVar cv_;
  std::string buffer_ GUARDED_BY(mu_);       // encoded bytes not yet durable
  Lsn buffer_start_ GUARDED_BY(mu_) = 0;     // LSN of buffer_[0]
  Lsn durable_ GUARDED_BY(mu_) = 0;
  bool force_in_flight_ GUARDED_BY(mu_) = false;

  obs::Counter appends_{"log_writer.appends"};
  obs::Counter forces_{"log_writer.forces"};
  obs::LatencyHistogram force_ns_{"log_writer.force_ns"};
};

}  // namespace polarmp

#endif  // POLARMP_WAL_LOG_WRITER_H_
