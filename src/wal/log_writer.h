#ifndef POLARMP_WAL_LOG_WRITER_H_
#define POLARMP_WAL_LOG_WRITER_H_

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/status_future.h"
#include "obs/metrics.h"
#include "storage/log_store.h"
#include "wal/log_record.h"

namespace polarmp {

// Per-node redo log front end: buffers encoded records in LSN order and
// forces them to the LogStore with a pipelined group commit.
//
// Committers append records (Add/AddEncoded) and enqueue a force target
// with ForceAsync instead of blocking; a dedicated flusher thread claims
// the whole buffer, performs ONE storage append for every queued committer,
// and completes their handles/callbacks in LSN order. While an append is on
// the wire the buffer keeps accumulating the next batch, so consecutive
// forces pipeline back-to-back — commit throughput is bounded by
// force-latency per *group*, not per committer.
//
// API contract:
//  * ForceAsync(lsn) -> ForceHandle: completed (OK) once everything up to
//    `lsn` is durable, or with the error that failed the force. Handles for
//    targets already durable complete inline.
//  * ForceAsync(lsn, cb): callback form. The callback runs on the flusher
//    thread with NO LogWriter locks held (it may acquire engine locks), or
//    inline on the caller for the already-durable fast path.
//  * Callbacks and handles complete in LSN order of their targets.
//  * ForceTo/ForceAll are blocking shims over ForceAsync kept for the edges
//    (tests, tools); hot paths in src/engine, src/txn and src/node must use
//    the async API (enforced by polarlint's blocking-force rule).
class LogWriter {
 public:
  using ForceHandle = StatusFuture;
  using ForceCallback = std::function<void(Status)>;

  LogWriter(NodeId node, LogStore* store);
  ~LogWriter();

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  NodeId node() const { return node_; }

  // Buffers `records`; returns the end LSN after them (force target).
  Lsn Add(const std::vector<LogRecord>& records);
  Lsn AddEncoded(const std::string& encoded);

  // Enqueues a durability request up to `lsn` and returns immediately.
  ForceHandle ForceAsync(Lsn lsn);
  void ForceAsync(Lsn lsn, ForceCallback cb);
  ForceHandle ForceAllAsync();
  void ForceAllAsync(ForceCallback cb);

  // Blocking shims over the async API — test/edge use only (see polarlint
  // rule "blocking-force"); equivalent to ForceAsync(lsn).Wait().
  Status ForceTo(Lsn lsn);
  Status ForceAll();

  Lsn durable_lsn() const;
  Lsn buffered_lsn() const;

  // ---- test / crash-simulation hooks ---------------------------------------

  // Holds the flusher between batches: no NEW force starts until Resume
  // (an in-flight one completes first). Lets tests form deterministic
  // groups: pause, enqueue N committers, resume, observe one force.
  void PauseFlusher();
  void ResumeFlusher();

  // Crash support: drops the volatile buffer and fails every pending and
  // future force with Aborted. Blocks until the flusher has quiesced, so on
  // return no completion callback is running or will run — callers tear
  // down the engine safely after this. An append already on the wire is
  // allowed to land (as it could in a real crash) and its waiters complete
  // normally before the drain.
  void Abandon();

  // Pending force requests not yet completed (test introspection; also
  // exported as the "log_writer.force_queue_depth" gauge).
  size_t pending_forces() const;

  // ---- telemetry ------------------------------------------------------------
  // Shims over this instance's registry handles ("log_writer.*"):
  //  * force_ns      — device time of one storage append (the actual force)
  //  * commit_wait_ns— a committer's enqueue-to-completion wait on its group
  //  * group_size    — committers amortized by one force
  uint64_t appends() const { return appends_.Value(); }
  uint64_t forces() const { return forces_.Value(); }
  void ResetCounters();

 private:
  struct Waiter {
    Lsn target = 0;
    uint64_t seq = 0;          // enqueue order, tie-break within one target
    uint64_t enqueue_ns = 0;   // commit_wait_ns start
    ForceCallback cb;          // exactly one of cb / promise is used
    std::unique_ptr<StatusPromise> promise;
  };

  void FlusherLoop();
  // Pops every waiter with target <= durable (ascending LSN order).
  std::vector<Waiter> TakeReady(Lsn durable) REQUIRES(flusher_mu_);
  // Completes `ready` outside all locks, recording commit_wait_ns.
  void Complete(std::vector<Waiter> ready, const Status& status);

  const NodeId node_;
  LogStore* const store_;

  mutable RankedMutex mu_{LockRank::kLogWriter, "log_writer.buffer"};
  std::string buffer_ GUARDED_BY(mu_);       // encoded bytes not yet durable
  Lsn buffer_start_ GUARDED_BY(mu_) = 0;     // LSN of buffer_[0]
  Lsn durable_ GUARDED_BY(mu_) = 0;

  // Flusher queue state. flusher_mu_ ranks ABOVE mu_ (the flusher claims
  // the buffer while holding it); committer paths take them one at a time.
  mutable RankedMutex flusher_mu_{LockRank::kLogFlusher, "log_writer.flusher"};
  CondVar flusher_cv_;
  std::vector<Waiter> waiters_ GUARDED_BY(flusher_mu_);
  uint64_t next_seq_ GUARDED_BY(flusher_mu_) = 0;
  bool stop_ GUARDED_BY(flusher_mu_) = false;
  bool paused_ GUARDED_BY(flusher_mu_) = false;
  bool abandoned_ GUARDED_BY(flusher_mu_) = false;
  // True while the flusher is forcing or running completions; Pause/Abandon
  // wait on it to quiesce.
  bool flusher_busy_ GUARDED_BY(flusher_mu_) = false;

  // polarlint: unguarded(joined in the destructor after the stop_ handshake)
  std::thread flusher_;

  obs::Counter appends_{"log_writer.appends"};
  obs::Counter forces_{"log_writer.forces"};
  obs::LatencyHistogram force_ns_{"log_writer.force_ns"};
  obs::LatencyHistogram commit_wait_ns_{"log_writer.commit_wait_ns"};
  obs::LatencyHistogram group_size_{"log_writer.group_size"};
  obs::Gauge force_queue_depth_{"log_writer.force_queue_depth"};
};

}  // namespace polarmp

#endif  // POLARMP_WAL_LOG_WRITER_H_
