#include "wal/log_writer.h"

#include <algorithm>

#include "obs/trace.h"

namespace polarmp {

LogWriter::LogWriter(NodeId node, LogStore* store)
    : node_(node), store_(store) {
  if (!store_->LogExists(node_)) {
    const Status s = store_->CreateLog(node_);
    POLARMP_CHECK(s.ok()) << s.ToString();
  }
  const auto durable = store_->DurableLsn(node_);
  POLARMP_CHECK(durable.ok());
  durable_ = durable.value();
  buffer_start_ = durable_;
  flusher_ = std::thread([this] { FlusherLoop(); });
}

LogWriter::~LogWriter() {
  {
    MutexLock lock(flusher_mu_);
    stop_ = true;
    flusher_cv_.notify_all();
  }
  flusher_.join();
}

Lsn LogWriter::Add(const std::vector<LogRecord>& records) {
  std::string encoded;
  for (const LogRecord& rec : records) rec.AppendTo(&encoded);
  return AddEncoded(encoded);
}

Lsn LogWriter::AddEncoded(const std::string& encoded) {
  appends_.Inc();
  MutexLock lock(mu_);
  buffer_ += encoded;
  return buffer_start_ + buffer_.size();
}

void LogWriter::ForceAsync(Lsn lsn, ForceCallback cb) {
  bool already_durable = false;
  bool beyond_buffer = false;
  {
    MutexLock lock(mu_);
    if (durable_ >= lsn) {
      already_durable = true;
    } else if (lsn > buffer_start_ + buffer_.size()) {
      beyond_buffer = true;
    }
  }
  // Fast paths complete inline on the caller's thread.
  if (already_durable) {
    cb(Status::OK());
    return;
  }
  if (beyond_buffer) {
    cb(Status::Internal("force target beyond buffered log"));
    return;
  }
  Waiter w;
  w.target = lsn;
  w.enqueue_ns = obs::TraceSpan::NowNanos();
  w.cb = std::move(cb);
  {
    MutexLock lock(flusher_mu_);
    if (!abandoned_ && !stop_) {
      w.seq = next_seq_++;
      force_queue_depth_.Add(1);
      waiters_.push_back(std::move(w));
      flusher_cv_.notify_all();
      return;
    }
  }
  w.cb(Status::Aborted("log writer abandoned"));
}

LogWriter::ForceHandle LogWriter::ForceAsync(Lsn lsn) {
  bool already_durable = false;
  bool beyond_buffer = false;
  {
    MutexLock lock(mu_);
    if (durable_ >= lsn) {
      already_durable = true;
    } else if (lsn > buffer_start_ + buffer_.size()) {
      beyond_buffer = true;
    }
  }
  // A null handle reports done/OK, which is exactly the fast path.
  if (already_durable) return ForceHandle();
  if (beyond_buffer) {
    StatusPromise promise;
    ForceHandle handle = promise.future();
    promise.Set(Status::Internal("force target beyond buffered log"));
    return handle;
  }
  Waiter w;
  w.target = lsn;
  w.enqueue_ns = obs::TraceSpan::NowNanos();
  w.promise = std::make_unique<StatusPromise>();
  ForceHandle handle = w.promise->future();
  bool rejected = false;
  {
    MutexLock lock(flusher_mu_);
    if (abandoned_ || stop_) {
      rejected = true;
    } else {
      w.seq = next_seq_++;
      force_queue_depth_.Add(1);
      waiters_.push_back(std::move(w));
      flusher_cv_.notify_all();
    }
  }
  if (rejected) w.promise->Set(Status::Aborted("log writer abandoned"));
  return handle;
}

LogWriter::ForceHandle LogWriter::ForceAllAsync() {
  return ForceAsync(buffered_lsn());
}

void LogWriter::ForceAllAsync(ForceCallback cb) {
  ForceAsync(buffered_lsn(), std::move(cb));
}

Status LogWriter::ForceTo(Lsn lsn) { return ForceAsync(lsn).Wait(); }

Status LogWriter::ForceAll() { return ForceAllAsync().Wait(); }

void LogWriter::PauseFlusher() {
  UniqueLock lock(flusher_mu_);
  paused_ = true;
  // Wait out an in-flight cycle: after return no new force starts.
  flusher_cv_.wait(lock,
                   [&]() REQUIRES(flusher_mu_) { return !flusher_busy_; });
}

void LogWriter::ResumeFlusher() {
  MutexLock lock(flusher_mu_);
  paused_ = false;
  flusher_cv_.notify_all();
}

void LogWriter::Abandon() {
  {
    // The volatile buffer evaporates, as it would in a real crash. The
    // durable prefix (and an append already on the wire) stays truthful.
    MutexLock lock(mu_);
    buffer_.clear();
  }
  UniqueLock lock(flusher_mu_);
  abandoned_ = true;
  flusher_cv_.notify_all();
  // Quiesce: an in-flight force finishes (completing its waiters normally —
  // those bytes made it out), then the flusher drains the rest with
  // Aborted. On return no completion callback is running or pending.
  flusher_cv_.wait(lock, [&]() REQUIRES(flusher_mu_) {
    return !flusher_busy_ && waiters_.empty();
  });
}

size_t LogWriter::pending_forces() const {
  MutexLock lock(flusher_mu_);
  return waiters_.size();
}

std::vector<LogWriter::Waiter> LogWriter::TakeReady(Lsn durable) {
  std::vector<Waiter> ready;
  auto it = waiters_.begin();
  while (it != waiters_.end()) {
    if (it->target <= durable) {
      ready.push_back(std::move(*it));
      it = waiters_.erase(it);
    } else {
      ++it;
    }
  }
  // Completion order contract: ascending LSN (enqueue order breaks ties).
  std::sort(ready.begin(), ready.end(), [](const Waiter& a, const Waiter& b) {
    return a.target != b.target ? a.target < b.target : a.seq < b.seq;
  });
  return ready;
}

void LogWriter::Complete(std::vector<Waiter> ready, const Status& status) {
  // Runs with NO LogWriter locks held: callbacks may take engine locks
  // (finalizing a commit acquires the TIT and the transaction table).
  for (Waiter& w : ready) {
    commit_wait_ns_.Record(obs::TraceSpan::NowNanos() - w.enqueue_ns);
    force_queue_depth_.Add(-1);
    if (w.promise != nullptr) w.promise->Set(status);
    if (w.cb) w.cb(status);
  }
}

void LogWriter::FlusherLoop() {
  for (;;) {
    bool draining = false;
    {
      UniqueLock lock(flusher_mu_);
      flusher_cv_.wait(lock, [&]() REQUIRES(flusher_mu_) {
        return stop_ || abandoned_ || (!paused_ && !waiters_.empty());
      });
      draining = stop_ || abandoned_;
      if (!draining && waiters_.empty()) continue;
      flusher_busy_ = true;
    }

    if (draining) {
      std::vector<Waiter> doomed;
      bool exit_now = false;
      {
        MutexLock lock(flusher_mu_);
        doomed.swap(waiters_);
      }
      Complete(std::move(doomed), Status::Aborted("log writer abandoned"));
      {
        MutexLock lock(flusher_mu_);
        flusher_busy_ = false;
        exit_now = stop_;
        flusher_cv_.notify_all();
      }
      if (exit_now) return;
      // Abandoned but not yet destroyed: new requests are rejected at
      // enqueue, so just park until the destructor stops us.
      UniqueLock lock(flusher_mu_);
      flusher_cv_.wait(lock, [&]() REQUIRES(flusher_mu_) { return stop_; });
      continue;
    }

    // 1. Complete requests an earlier force already satisfied.
    Lsn durable_now;
    {
      MutexLock lock(mu_);
      durable_now = durable_;
    }
    std::vector<Waiter> ready;
    bool need_force = false;
    {
      MutexLock lock(flusher_mu_);
      ready = TakeReady(durable_now);
      need_force = !waiters_.empty();
    }
    Complete(std::move(ready), Status::OK());

    if (need_force) {
      // 2. Claim the WHOLE buffer: one storage append covers every queued
      //    committer (group commit). While it is on the wire, committers
      //    keep buffering and enqueueing — the next batch accumulates
      //    behind this one (the pipeline).
      std::string batch;
      Lsn batch_start = 0;
      {
        MutexLock lock(mu_);
        batch.swap(buffer_);
        batch_start = buffer_start_;
        buffer_start_ += batch.size();
      }
      if (batch.empty()) {
        // Unreachable through the public API (targets are validated against
        // the buffered end at enqueue; Abandon drains via the branch above).
        // Fail rather than spin if bookkeeping ever diverges.
        std::vector<Waiter> stuck;
        {
          MutexLock lock(flusher_mu_);
          stuck.swap(waiters_);
        }
        Complete(std::move(stuck),
                 Status::Internal("force target beyond buffered log"));
      } else {
        forces_.Inc();
        Status force_status = Status::OK();
        Lsn new_durable = 0;
        {
          // force_ns is the device force alone; the committers' wait is
          // commit_wait_ns (split per the latency-accounting fix).
          obs::TraceSpan span(&force_ns_);
          auto appended = store_->Append(node_, batch);
          if (appended.ok()) {
            POLARMP_CHECK_EQ(appended.value(), batch_start)
                << "log stream diverged from writer bookkeeping";
            new_durable = batch_start + batch.size();
          } else {
            force_status = appended.status();
            span.Cancel();
          }
        }
        if (force_status.ok()) {
          {
            MutexLock lock(mu_);
            durable_ = new_durable;
          }
          std::vector<Waiter> landed;
          {
            MutexLock lock(flusher_mu_);
            landed = TakeReady(new_durable);
          }
          if (!landed.empty()) group_size_.Record(landed.size());
          Complete(std::move(landed), Status::OK());
        } else {
          // Restore the batch so a later force can retry the bytes, then
          // fail every queued committer: the durability they asked for did
          // not happen, and retry policy lives above the log writer.
          {
            MutexLock lock(mu_);
            buffer_.insert(0, batch);
            buffer_start_ = batch_start;
          }
          std::vector<Waiter> failed;
          {
            MutexLock lock(flusher_mu_);
            failed.swap(waiters_);
          }
          Complete(std::move(failed), force_status);
        }
      }
    }

    {
      MutexLock lock(flusher_mu_);
      flusher_busy_ = false;
      flusher_cv_.notify_all();
    }
  }
}

void LogWriter::ResetCounters() {
  appends_.Reset();
  forces_.Reset();
  force_ns_.Reset();
  commit_wait_ns_.Reset();
  group_size_.Reset();
}

Lsn LogWriter::durable_lsn() const {
  MutexLock lock(mu_);
  return durable_;
}

Lsn LogWriter::buffered_lsn() const {
  MutexLock lock(mu_);
  return buffer_start_ + buffer_.size();
}

}  // namespace polarmp
