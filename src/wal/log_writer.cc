#include "wal/log_writer.h"

#include "obs/trace.h"

namespace polarmp {

LogWriter::LogWriter(NodeId node, LogStore* store)
    : node_(node), store_(store) {
  if (!store_->LogExists(node_)) {
    const Status s = store_->CreateLog(node_);
    POLARMP_CHECK(s.ok()) << s.ToString();
  }
  const auto durable = store_->DurableLsn(node_);
  POLARMP_CHECK(durable.ok());
  durable_ = durable.value();
  buffer_start_ = durable_;
}

Lsn LogWriter::Add(const std::vector<LogRecord>& records) {
  std::string encoded;
  for (const LogRecord& rec : records) rec.AppendTo(&encoded);
  return AddEncoded(encoded);
}

Lsn LogWriter::AddEncoded(const std::string& encoded) {
  appends_.Inc();
  MutexLock lock(mu_);
  buffer_ += encoded;
  return buffer_start_ + buffer_.size();
}

Status LogWriter::ForceTo(Lsn lsn) {
  UniqueLock lock(mu_);
  if (durable_ >= lsn) return Status::OK();
  // Span covers the whole wait, including piggybacking on a force already
  // in flight — that is the latency a committer actually observes.
  obs::TraceSpan span(&force_ns_);
  while (durable_ < lsn) {
    if (force_in_flight_) {
      // Another committer's force will cover us; wait for it to land.
      cv_.wait(lock, [&] { return durable_ >= lsn || !force_in_flight_; });
      continue;
    }
    if (buffer_.empty()) {
      return Status::Internal("force target beyond buffered log");
    }
    // Take the whole buffer in one append (group commit).
    std::string batch;
    batch.swap(buffer_);
    const Lsn batch_start = buffer_start_;
    buffer_start_ += batch.size();
    force_in_flight_ = true;
    forces_.Inc();
    lock.unlock();

    const auto appended = store_->Append(node_, batch);

    lock.lock();
    force_in_flight_ = false;
    if (!appended.ok()) {
      // Restore the batch so a retry can re-force it.
      buffer_.insert(0, batch);
      buffer_start_ = batch_start;
      cv_.notify_all();
      return appended.status();
    }
    POLARMP_CHECK_EQ(appended.value(), batch_start)
        << "log stream diverged from writer bookkeeping";
    durable_ = batch_start + batch.size();
    cv_.notify_all();
  }
  return Status::OK();
}

Status LogWriter::ForceAll() {
  Lsn target;
  {
    MutexLock lock(mu_);
    target = buffer_start_ + buffer_.size();
  }
  return ForceTo(target);
}

void LogWriter::ResetCounters() {
  appends_.Reset();
  forces_.Reset();
  force_ns_.Reset();
}

Lsn LogWriter::durable_lsn() const {
  MutexLock lock(mu_);
  return durable_;
}

Lsn LogWriter::buffered_lsn() const {
  MutexLock lock(mu_);
  return buffer_start_ + buffer_.size();
}

}  // namespace polarmp
