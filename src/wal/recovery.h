#ifndef POLARMP_WAL_RECOVERY_H_
#define POLARMP_WAL_RECOVERY_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/undo.h"
#include "pmfs/buffer_fusion.h"
#include "storage/log_store.h"
#include "storage/page_store.h"
#include "wal/log_record.h"

namespace polarmp {

struct RecoveryStats {
  uint64_t records_scanned = 0;
  uint64_t page_records_applied = 0;
  uint64_t page_records_skipped = 0;  // page LLSN already newer
  uint64_t undo_bytes_rebuilt = 0;
  uint64_t pages_from_dbp = 0;
  uint64_t pages_from_storage = 0;
  uint64_t committed_trxs = 0;
  uint64_t uncommitted_trxs = 0;
  uint64_t offline_rolled_back = 0;
};

// Crash recovery (§4.4).
//
// Redo replay follows the paper's chunked merge: read one chunk from every
// participating node's log, compute LLSN_bound — the smallest last-read
// LLSN across the chunks, which no remaining record can undershoot because
// each node's stream is LLSN-monotone — apply every record with
// llsn <= LLSN_bound, carry the rest into the next round. A record applies
// to its page iff the page's LLSN stamp is older, which makes replay
// idempotent and, combined with the bound, replays every page's records in
// generation order.
//
// Pages are sourced from the DBP when it survived (a node crash leaves the
// disaggregated memory intact — the §5.5 fast path) and from shared
// storage otherwise. kUndoAppend records rebuild the undo store before any
// rollback runs.
class Recovery {
 public:
  struct Options {
    uint64_t chunk_bytes = 1 << 20;
    // Endpoint charged for DBP page fetches (the recovering node).
    EndpointId reader = kPmfsEndpoint;
    // Replay kUndoAppend records into the undo store. A full restart needs
    // this (the store may be empty/lost); an online takeover must NOT — the
    // dead node's undo segment survived in DSM and survivors are concurrently
    // reading it, so rewriting identical bytes would only manufacture races.
    bool rebuild_undo = true;
  };

  // `buffer_fusion` may be null (full-cluster restart with DSM lost).
  Recovery(LogStore* log_store, PageStore* page_store, UndoStore* undo_store,
           BufferFusion* buffer_fusion, uint32_t page_size, Options options);
  Recovery(LogStore* log_store, PageStore* page_store, UndoStore* undo_store,
           BufferFusion* buffer_fusion, uint32_t page_size)
      : Recovery(log_store, page_store, undo_store, buffer_fusion, page_size,
                 Options()) {}

  Recovery(const Recovery&) = delete;
  Recovery& operator=(const Recovery&) = delete;

  struct UncommittedTrx {
    GTrxId gid = kInvalidGTrxId;
    UndoPtr last_undo = kNullUndoPtr;
  };

  // Phase 1+2: replays `nodes`' logs from their checkpoints and rebuilds
  // their undo segments. Returns the transactions that must be rolled back
  // (undo seen, no commit/rollback-end record).
  StatusOr<std::vector<UncommittedTrx>> RedoReplay(
      const std::vector<NodeId>& nodes);

  // Phase 3 (full-cluster restart only): applies undo chains directly to
  // the recovered pages, bypassing the live engine. Single-node restarts
  // use TrxManager::RollbackRecovered instead.
  Status OfflineRollback(const std::vector<UncommittedTrx>& trxs);

  // Phase 4a: writes every recovered page back (storage + DBP when
  // present) so the live engine / a re-run sees the recovered state.
  Status FlushPages();
  // Phase 4b: advances each node's durable checkpoint to its log end. For
  // single-node restarts this runs only after the live rollback completed
  // (its undo-append records must stay replayable until then).
  Status AdvanceCheckpoints(const std::vector<NodeId>& nodes);

  const RecoveryStats& stats() const { return stats_; }

 private:
  struct CachedPage {
    std::unique_ptr<char[]> data;
    bool dirty = false;
    bool exists = false;  // false: never materialized anywhere yet
  };

  StatusOr<CachedPage*> GetPage(PageId page_id);
  Status ApplyRecord(const LogRecord& rec);
  // Descends the recovered tree of `space` to the leaf owning `key`.
  StatusOr<CachedPage*> FindLeaf(SpaceId space, int64_t key);
  Llsn NextRecoveryLlsn() { return ++recovery_llsn_; }

  LogStore* log_store_;
  PageStore* page_store_;
  UndoStore* undo_store_;
  BufferFusion* buffer_fusion_;
  const uint32_t page_size_;
  const Options options_;

  std::unordered_map<uint64_t, CachedPage> cache_;
  Llsn recovery_llsn_ = 0;  // max-merged during replay
  RecoveryStats stats_;
};

}  // namespace polarmp

#endif  // POLARMP_WAL_RECOVERY_H_
