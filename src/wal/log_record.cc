#include "wal/log_record.h"

#include "common/coding.h"

namespace polarmp {

namespace {
// type(1) + node(2) + llsn(8) + page(8) + trx(8) + aux(8) + body_len(4)
constexpr size_t kHeaderSize = 39;
}  // namespace

size_t LogRecord::EncodedSize() const { return kHeaderSize + body.size(); }

void LogRecord::AppendTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type));
  PutFixed16(dst, node);
  PutFixed64(dst, llsn);
  PutFixed64(dst, page_id.Pack());
  PutFixed64(dst, trx);
  PutFixed64(dst, aux);
  PutFixed32(dst, static_cast<uint32_t>(body.size()));
  dst->append(body);
}

std::string LogRecord::Encode() const {
  std::string out;
  out.reserve(EncodedSize());
  AppendTo(&out);
  return out;
}

StatusOr<LogRecord> LogRecord::Decode(std::string_view data,
                                      size_t* consumed) {
  if (data.size() < kHeaderSize) {
    return Status::InvalidArgument("short log header");
  }
  LogRecord rec;
  const char* p = data.data();
  rec.type = static_cast<LogRecordType>(static_cast<uint8_t>(p[0]));
  rec.node = DecodeFixed16(p + 1);
  rec.llsn = DecodeFixed64(p + 3);
  rec.page_id = PageId::Unpack(DecodeFixed64(p + 11));
  rec.trx = DecodeFixed64(p + 19);
  rec.aux = DecodeFixed64(p + 27);
  const uint32_t body_len = DecodeFixed32(p + 35);
  if (data.size() < kHeaderSize + body_len) {
    return Status::InvalidArgument("short log body");
  }
  rec.body.assign(p + kHeaderSize, body_len);
  *consumed = kHeaderSize + body_len;
  return rec;
}

LogRecord MakeInitPage(NodeId node, Llsn llsn, PageId page, uint8_t level,
                       PageNo prev, PageNo next) {
  LogRecord rec;
  rec.type = LogRecordType::kInitPage;
  rec.node = node;
  rec.llsn = llsn;
  rec.page_id = page;
  rec.body.push_back(static_cast<char>(level));
  PutFixed32(&rec.body, prev);
  PutFixed32(&rec.body, next);
  return rec;
}

LogRecord MakeWriteRow(NodeId node, Llsn llsn, PageId page,
                       std::string row_image) {
  LogRecord rec;
  rec.type = LogRecordType::kWriteRow;
  rec.node = node;
  rec.llsn = llsn;
  rec.page_id = page;
  rec.body = std::move(row_image);
  return rec;
}

LogRecord MakeRemoveRow(NodeId node, Llsn llsn, PageId page, int64_t key) {
  LogRecord rec;
  rec.type = LogRecordType::kRemoveRow;
  rec.node = node;
  rec.llsn = llsn;
  rec.page_id = page;
  PutFixed64(&rec.body, static_cast<uint64_t>(key));
  return rec;
}

LogRecord MakeSetPageLinks(NodeId node, Llsn llsn, PageId page, PageNo prev,
                           PageNo next) {
  LogRecord rec;
  rec.type = LogRecordType::kSetPageLinks;
  rec.node = node;
  rec.llsn = llsn;
  rec.page_id = page;
  PutFixed32(&rec.body, prev);
  PutFixed32(&rec.body, next);
  return rec;
}

LogRecord MakeUndoAppend(NodeId node, Llsn llsn, uint64_t offset,
                         std::string bytes) {
  LogRecord rec;
  rec.type = LogRecordType::kUndoAppend;
  rec.node = node;
  rec.llsn = llsn;
  rec.aux = offset;
  rec.body = std::move(bytes);
  return rec;
}

LogRecord MakeTrxCommit(NodeId node, GTrxId trx, Csn cts) {
  LogRecord rec;
  rec.type = LogRecordType::kTrxCommit;
  rec.node = node;
  rec.trx = trx;
  rec.aux = cts;
  return rec;
}

LogRecord MakeTrxRollbackEnd(NodeId node, GTrxId trx) {
  LogRecord rec;
  rec.type = LogRecordType::kTrxRollbackEnd;
  rec.node = node;
  rec.trx = trx;
  return rec;
}

LogRecord MakeLoadRows(NodeId node, Llsn llsn, PageId page,
                       std::string images) {
  LogRecord rec;
  rec.type = LogRecordType::kLoadRows;
  rec.node = node;
  rec.llsn = llsn;
  rec.page_id = page;
  rec.body = std::move(images);
  return rec;
}

LogRecord MakeLlsnMark(NodeId node, Llsn llsn) {
  LogRecord rec;
  rec.type = LogRecordType::kLlsnMark;
  rec.node = node;
  rec.llsn = llsn;
  return rec;
}

LogRecord MakeTruncateRows(NodeId node, Llsn llsn, PageId page,
                           int64_t from_key) {
  LogRecord rec;
  rec.type = LogRecordType::kTruncateRows;
  rec.node = node;
  rec.llsn = llsn;
  rec.page_id = page;
  rec.aux = static_cast<uint64_t>(from_key);
  return rec;
}

}  // namespace polarmp
