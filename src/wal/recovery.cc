#include "wal/recovery.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <set>

#include "common/coding.h"
#include "engine/btree.h"
#include "engine/page.h"

namespace polarmp {

Recovery::Recovery(LogStore* log_store, PageStore* page_store,
                   UndoStore* undo_store, BufferFusion* buffer_fusion,
                   uint32_t page_size, Options options)
    : log_store_(log_store),
      page_store_(page_store),
      undo_store_(undo_store),
      buffer_fusion_(buffer_fusion),
      page_size_(page_size),
      options_(options) {}

StatusOr<Recovery::CachedPage*> Recovery::GetPage(PageId page_id) {
  auto it = cache_.find(page_id.Pack());
  if (it != cache_.end()) return &it->second;
  CachedPage cp;
  cp.data = std::make_unique<char[]>(page_size_);
  std::memset(cp.data.get(), 0, page_size_);
  // DBP first — a node crash leaves disaggregated memory intact, which is
  // what makes recovery fast (§5.5); storage is the fallback.
  if (buffer_fusion_ != nullptr && buffer_fusion_->HasValidPage(page_id)) {
    POLARMP_RETURN_IF_ERROR(buffer_fusion_->ReadPageForRecovery(
        options_.reader, page_id, cp.data.get()));
    cp.exists = true;
    ++stats_.pages_from_dbp;
  } else {
    const Status s = page_store_->ReadPage(page_id, cp.data.get());
    if (s.ok()) {
      cp.exists = true;
      ++stats_.pages_from_storage;
    } else if (!s.IsNotFound()) {
      return s;
    }
  }
  auto [pos, inserted] = cache_.emplace(page_id.Pack(), std::move(cp));
  (void)inserted;
  return &pos->second;
}

Status Recovery::ApplyRecord(const LogRecord& rec) {
  ++stats_.records_scanned;
  switch (rec.type) {
    case LogRecordType::kUndoAppend: {
      if (options_.rebuild_undo) {
        POLARMP_RETURN_IF_ERROR(
            undo_store_->WriteRaw(rec.node, rec.aux, rec.body));
        stats_.undo_bytes_rebuilt += rec.body.size();
      }
      return Status::OK();
    }
    case LogRecordType::kTrxCommit:
    case LogRecordType::kTrxRollbackEnd:
    case LogRecordType::kLlsnMark:
      return Status::OK();  // tracked by the caller / pure horizon marker
    default:
      break;
  }
  POLARMP_ASSIGN_OR_RETURN(CachedPage* cp, GetPage(rec.page_id));
  Page page(cp->data.get(), page_size_);
  if (cp->exists && page.llsn() >= rec.llsn) {
    ++stats_.page_records_skipped;
    return Status::OK();
  }
  switch (rec.type) {
    case LogRecordType::kInitPage: {
      if (rec.body.size() < 9) return Status::Corruption("bad kInitPage");
      const uint8_t level = static_cast<uint8_t>(rec.body[0]);
      const PageNo prev = DecodeFixed32(rec.body.data() + 1);
      const PageNo next = DecodeFixed32(rec.body.data() + 5);
      page.Init(rec.page_id, level, prev, next);
      break;
    }
    case LogRecordType::kWriteRow:
      POLARMP_RETURN_IF_ERROR(page.WriteRow(rec.body));
      break;
    case LogRecordType::kRemoveRow: {
      if (rec.body.size() < 8) return Status::Corruption("bad kRemoveRow");
      const int64_t key = static_cast<int64_t>(DecodeFixed64(rec.body.data()));
      const Status s = page.RemoveRow(key);
      if (!s.ok() && !s.IsNotFound()) return s;
      break;
    }
    case LogRecordType::kSetPageLinks: {
      if (rec.body.size() < 8) return Status::Corruption("bad kSetPageLinks");
      page.set_links(DecodeFixed32(rec.body.data()),
                     DecodeFixed32(rec.body.data() + 4));
      break;
    }
    case LogRecordType::kLoadRows:
      POLARMP_RETURN_IF_ERROR(page.LoadRows(rec.body));
      break;
    case LogRecordType::kTruncateRows:
      page.TruncateFromKey(static_cast<int64_t>(rec.aux));
      break;
    default:
      return Status::Corruption("unknown record type");
  }
  page.set_llsn(rec.llsn);
  cp->exists = true;
  cp->dirty = true;
  recovery_llsn_ = std::max(recovery_llsn_, rec.llsn);
  ++stats_.page_records_applied;
  return Status::OK();
}

StatusOr<std::vector<Recovery::UncommittedTrx>> Recovery::RedoReplay(
    const std::vector<NodeId>& nodes) {
  struct Stream {
    NodeId node;
    Lsn next_read = 0;
    Lsn end = 0;
    std::string partial;       // undecoded tail of the last chunk
    std::deque<LogRecord> pending;
    Llsn last_read_llsn = 0;   // max LLSN decoded so far
    bool exhausted = false;
  };
  std::vector<Stream> streams;
  for (NodeId node : nodes) {
    if (!log_store_->LogExists(node)) continue;
    Stream s;
    s.node = node;
    POLARMP_ASSIGN_OR_RETURN(s.next_read, log_store_->GetCheckpoint(node));
    POLARMP_ASSIGN_OR_RETURN(s.end, log_store_->DurableLsn(node));
    s.exhausted = s.next_read >= s.end;
    streams.push_back(std::move(s));
    POLARMP_RETURN_IF_ERROR(undo_store_->AddNode(node));
  }

  std::unordered_map<GTrxId, UndoPtr> last_undo;
  std::set<GTrxId> finished;

  auto all_done = [&] {
    for (const Stream& s : streams) {
      if (!s.exhausted || !s.pending.empty()) return false;
    }
    return true;
  };

  while (!all_done()) {
    // Fill phase: one chunk per non-exhausted stream (the paper's "only
    // reads a chunk of data from each file" batching).
    for (Stream& s : streams) {
      if (s.exhausted || !s.pending.empty()) continue;
      std::string chunk;
      POLARMP_RETURN_IF_ERROR(log_store_->ReadAt(
          s.node, s.next_read, options_.chunk_bytes, &chunk));
      s.next_read += chunk.size();
      s.partial += chunk;
      size_t pos = 0;
      while (pos < s.partial.size()) {
        size_t consumed = 0;
        auto rec = LogRecord::Decode(
            std::string_view(s.partial).substr(pos), &consumed);
        if (!rec.ok()) break;  // incomplete tail; next chunk completes it
        if (rec.value().llsn > 0) {
          s.last_read_llsn = std::max(s.last_read_llsn, rec.value().llsn);
        }
        s.pending.push_back(std::move(rec).value());
        pos += consumed;
      }
      s.partial.erase(0, pos);
      if (s.next_read >= s.end) {
        if (!s.partial.empty()) {
          return Status::Corruption("torn record at end of node log " +
                                    std::to_string(s.node));
        }
        s.exhausted = true;
      }
    }
    // LLSN_bound: every unread record's LLSN exceeds it (§4.4).
    Llsn bound = UINT64_MAX;
    for (const Stream& s : streams) {
      if (!s.exhausted) bound = std::min(bound, s.last_read_llsn);
    }
    // Apply phase: gather every record at or below the bound from all
    // streams, then apply them IN LLSN ORDER — the partial order only
    // guarantees per-page correctness if same-page records from different
    // nodes interleave by LLSN, not stream by stream (§4.4: the batch below
    // LLSN_bound is sorted before application).
    std::vector<LogRecord> batch;
    for (Stream& s : streams) {
      while (!s.pending.empty()) {
        const LogRecord& front = s.pending.front();
        const bool is_txn_record = front.llsn == 0;
        if (!is_txn_record && front.llsn > bound) break;
        batch.push_back(std::move(s.pending.front()));
        s.pending.pop_front();
      }
    }
    std::stable_sort(batch.begin(), batch.end(),
                     [](const LogRecord& a, const LogRecord& b) {
                       return a.llsn < b.llsn;
                     });
    const bool progressed = !batch.empty();
    for (const LogRecord& rec : batch) {
      if (rec.type == LogRecordType::kTrxCommit) {
        finished.insert(rec.trx);
        ++stats_.committed_trxs;
        ++stats_.records_scanned;
      } else if (rec.type == LogRecordType::kTrxRollbackEnd) {
        finished.insert(rec.trx);
        ++stats_.records_scanned;
      } else {
        POLARMP_RETURN_IF_ERROR(ApplyRecord(rec));
        if (rec.type == LogRecordType::kUndoAppend) {
          auto undo_rec = UndoRecord::Decode(rec.body);
          POLARMP_RETURN_IF_ERROR(undo_rec.status());
          last_undo[undo_rec.value().trx] = MakeUndoPtr(rec.node, rec.aux);
        }
      }
    }
    if (!progressed && !all_done()) {
      // Should be impossible: either a fill added data or a bound advanced.
      bool any_fillable = false;
      for (const Stream& s : streams) {
        if (!s.exhausted && s.pending.empty()) any_fillable = true;
      }
      if (!any_fillable) {
        return Status::Internal("recovery merge stalled");
      }
    }
  }

  std::vector<UncommittedTrx> uncommitted;
  for (const auto& [gid, ptr] : last_undo) {
    if (finished.count(gid) == 0) {
      uncommitted.push_back(UncommittedTrx{gid, ptr});
      ++stats_.uncommitted_trxs;
    }
  }
  return uncommitted;
}

StatusOr<Recovery::CachedPage*> Recovery::FindLeaf(SpaceId space,
                                                   int64_t key) {
  POLARMP_ASSIGN_OR_RETURN(CachedPage* cp, GetPage(PageId{space, 0}));
  for (int depth = 0; depth < 64; ++depth) {
    Page page(cp->data.get(), page_size_);
    if (!cp->exists) return Status::Corruption("recovered tree missing page");
    if (page.is_leaf()) return cp;
    const PageNo child = BTree::RouteChild(page, key);
    POLARMP_ASSIGN_OR_RETURN(cp, GetPage(PageId{space, child}));
  }
  return Status::Corruption("recovered tree too deep");
}

Status Recovery::OfflineRollback(const std::vector<UncommittedTrx>& trxs) {
  for (const UncommittedTrx& trx : trxs) {
    UndoPtr cursor = trx.last_undo;
    while (cursor != kNullUndoPtr) {
      POLARMP_ASSIGN_OR_RETURN(
          UndoRecord rec,
          undo_store_->Read(UndoPtrNode(cursor), cursor));
      if (rec.trx != trx.gid) {
        return Status::Corruption("undo chain crosses transactions");
      }
      POLARMP_ASSIGN_OR_RETURN(CachedPage* cp, FindLeaf(rec.space, rec.key));
      Page page(cp->data.get(), page_size_);
      if (rec.type == UndoType::kInsert) {
        const Status s = page.RemoveRow(rec.key);
        if (!s.ok() && !s.IsNotFound()) return s;
      } else {
        const int slot = page.FindSlot(rec.key);
        bool restore = true;
        if (slot >= 0) {
          auto row = page.RowAt(slot);
          restore = row.ok() && row.value().g_trx_id == trx.gid;
        }
        if (restore) {
          const std::string image =
              EncodeRow(rec.key, rec.prev_trx, rec.prev_cts, rec.prev_undo,
                        rec.prev_flags, rec.prev_value);
          POLARMP_RETURN_IF_ERROR(page.WriteRow(image));
        }
      }
      page.set_llsn(NextRecoveryLlsn());
      cp->dirty = true;
      cursor = rec.trx_prev;
    }
    ++stats_.offline_rolled_back;
  }
  return Status::OK();
}

Status Recovery::FlushPages() {
  for (auto& [key, cp] : cache_) {
    if (!cp.dirty) continue;
    const PageId page_id = PageId::Unpack(key);
    POLARMP_RETURN_IF_ERROR(page_store_->WritePage(page_id, cp.data.get()));
    if (buffer_fusion_ != nullptr) {
      POLARMP_RETURN_IF_ERROR(buffer_fusion_->HostWritePage(
          page_id, cp.data.get(), Page::PeekLlsn(cp.data.get()),
          /*flushed=*/true));
    }
    cp.dirty = false;
  }
  return Status::OK();
}

Status Recovery::AdvanceCheckpoints(const std::vector<NodeId>& nodes) {
  for (NodeId node : nodes) {
    if (!log_store_->LogExists(node)) continue;
    POLARMP_ASSIGN_OR_RETURN(Lsn end, log_store_->DurableLsn(node));
    POLARMP_RETURN_IF_ERROR(log_store_->SetCheckpoint(node, end));
  }
  return Status::OK();
}

}  // namespace polarmp
