#ifndef POLARMP_WAL_LLSN_H_
#define POLARMP_WAL_LLSN_H_

#include <atomic>

#include "common/types.h"

namespace polarmp {

// Logical log sequence number clock (§4.4).
//
// Each node keeps a local LLSN that (a) increments on every log-generating
// page update and (b) max-merges with the LLSN of every page the node reads
// (from storage or the DBP). Because a page can only be updated under an
// exclusive PLock, and the updated page reaches the next writer through the
// DBP *before* the PLock moves, the LLSNs stamped on any single page's logs
// are strictly increasing in generation order across nodes — a partial
// order that is total per page, which is all recovery needs.
//
// LLSN assignment and the log-buffer append are atomic per node (the
// kLlsnOrder mutex in Mtr::Commit), so the pipelined group-commit flusher
// — which claims the whole buffer per device force — always writes batches
// whose LLSNs are already in stream order; force grouping never reorders
// them, and completion callbacks fire in LSN (hence per-page LLSN) order.
class LlsnClock {
 public:
  LlsnClock() : value_(0) {}

  // Called when generating a log record for a page update; returns the LLSN
  // to stamp on both the record and the page.
  Llsn Advance() { return value_.fetch_add(1, std::memory_order_acq_rel) + 1; }

  // Called when reading a page whose stamp is `observed` ("if a node reads a
  // page ... it updates its local LLSN to match the accessed page's LLSN").
  void Observe(Llsn observed) {
    Llsn cur = value_.load(std::memory_order_relaxed);
    while (observed > cur &&
           !value_.compare_exchange_weak(cur, observed,
                                         std::memory_order_acq_rel)) {
    }
  }

  Llsn Current() const { return value_.load(std::memory_order_acquire); }

 private:
  std::atomic<Llsn> value_;
};

}  // namespace polarmp

#endif  // POLARMP_WAL_LLSN_H_
