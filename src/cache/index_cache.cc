#include "cache/index_cache.h"

#include <cstring>

#include "engine/btree.h"
#include "engine/page.h"

namespace polarmp {

IndexCache::IndexCache(NodeId node, Fabric* fabric,
                       BufferFusion* buffer_fusion, const Options& options)
    : node_(node),
      fabric_(fabric),
      buffer_fusion_(buffer_fusion),
      options_(options),
      table_(options.slots) {
  if (!enabled()) return;
  slots_.reserve(options_.slots);
  for (uint32_t i = 0; i < options_.slots; ++i) {
    auto s = std::make_unique<Slot>(i);
    s->data = std::make_unique<char[]>(options_.page_size);
    slots_.push_back(std::move(s));
  }
  // polarlint: allow(raw-atomic) one-sided RDMA target (kCacheFlagsRegion)
  invalid_flags_.reset(new std::atomic<uint64_t>[options_.slots]);
  for (uint32_t i = 0; i < options_.slots; ++i) {
    invalid_flags_[i].store(0, std::memory_order_relaxed);
  }
  const Status s = fabric_->RegisterRegion(node_, kCacheFlagsRegion,
                                           invalid_flags_.get(),
                                           options_.slots * sizeof(uint64_t));
  POLARMP_CHECK(s.ok()) << s.ToString();
}

IndexCache::~IndexCache() {
  if (!enabled()) return;
  // polarlint: allow(unchecked-fabric-status) teardown: the fabric may
  // already have dropped the endpoint; there is no caller to report to.
  (void)fabric_->DeregisterRegion(node_, kCacheFlagsRegion);
}

IndexCache::RouteResult IndexCache::Route(SpaceId space, int64_t key) {
  RouteResult result;  // starts at the root (page 0)
  if (!enabled()) return result;
  // Trees are shallow; 16 hops bounds the walk against any pathology.
  for (int depth = 0; depth < 16 && !result.leaf; ++depth) {
    PageNo child = kInvalidPageNo;
    bool to_leaf = false;
    if (!RouteHop(PageId{space, result.page_no}, key, &child, &to_leaf)) {
      break;
    }
    result.page_no = child;
    result.leaf = to_leaf;
    ++result.levels_skipped;
  }
  return result;
}

bool IndexCache::RouteHop(PageId page, int64_t key, PageNo* child,
                          bool* to_leaf) {
  // A refresh consumes one attempt and revalidates; bounded so a flag that
  // keeps getting re-set (hot remote writer) degrades to the guarded path
  // instead of spinning.
  for (int attempt = 0; attempt < 4; ++attempt) {
    Slot* slot = nullptr;
    bool refresh = false;
    {
      MutexLock lock(mu_);
      const uint32_t idx = table_.Lookup(page.Pack());
      if (idx == IndirectionTable::kNoSlot) {
        misses_.Inc();
        return false;
      }
      slot = slots_[idx].get();
      slot->last_used = ++tick_;
      refresh = invalid_flags_[idx].load(std::memory_order_acquire) != 0;
      // Latch under mu_ (85 → 82): while any latch mode is held the
      // binding cannot change, because rebinding needs the exclusive
      // latch, which is likewise only acquired under mu_.
      if (refresh) {
        stale_rejects_.Inc();
        slot->latch.lock();
      } else {
        slot->latch.lock_shared();
      }
    }
    if (refresh) {
      Status st = Status::OK();
      // Another thread may have refreshed while we waited for the latch.
      if (invalid_flags_[slot->index].load(std::memory_order_acquire) != 0) {
        st = RefreshSlot(slot);
      }
      slot->latch.unlock();
      if (!st.ok()) return false;  // DSM unreachable: guarded path instead
      continue;                    // revalidate and route
    }
    Page image(slot->data.get(), options_.page_size);
    if (image.level() == 0) {
      // The refresh pulled a version from BEFORE the page became internal
      // (only possible for the root, whose level grows in place; the DBP
      // lags until the splitting node pushes). A leaf image cannot route;
      // miss to the guarded path — the eventual push re-flags the slot.
      slot->latch.unlock_shared();
      misses_.Inc();
      return false;
    }
    *child = BTree::RouteChild(image, key);
    *to_leaf = image.level() == 1;
    slot->latch.unlock_shared();
    hits_.Inc();
    return true;
  }
  return false;
}

Status IndexCache::RefreshSlot(Slot* slot) {
  // Clear-before-read: a push that lands after the clear re-flags the
  // slot, so a refresh can never mask a newer version. Reading a version
  // that is itself already stale (e.g. the local LBP holds a dirty, newer
  // image) is benign — stale routes land left of the key's home and the
  // B-link right-walk heals them.
  invalid_flags_[slot->index].store(0, std::memory_order_release);
  uint64_t seq = 0;
  one_sided_refreshes_.Inc();
  const Status s = buffer_fusion_->FetchPageVersioned(
      node_, slot->r_addr, slot->data.get(), &seq);
  if (!s.ok()) {
    invalid_flags_[slot->index].store(1, std::memory_order_release);
    return s;
  }
  if (seq == slot->seq) {
    refresh_unchanged_.Inc();
  } else {
    slot->seq = seq;
  }
  return Status::OK();
}

Status IndexCache::Install(PageId page, const char* bytes, uint8_t level) {
  if (!enabled() || level == 0) return Status::OK();
  PageId evicted{};
  bool have_evicted = false;
  Status result = Status::OK();
  {
    UniqueLock lock(mu_);
    const uint32_t bound = table_.Lookup(page.Pack());
    if (bound != IndirectionTable::kNoSlot) {
      // Already bound: refresh the image in place. The caller holds the
      // page's PLock, so `bytes` is the page's CURRENT image — at least as
      // new as anything a one-sided refresh could have pulled (a lagging
      // DBP root may even have left an unroutable leaf-level image here;
      // this is what heals it). Clearing the flag is safe for the same
      // reason: any push that set it predates the caller's image.
      Slot* slot = slots_[bound].get();
      slot->latch.lock();
      slot->last_used = ++tick_;
      invalid_flags_[bound].store(0, std::memory_order_release);
      slot->seq = kUnknownSeq;
      lock.unlock();
      std::memcpy(slot->data.get(), bytes, options_.page_size);
      slot->latch.unlock();
      return Status::OK();
    }
    const auto backoff = not_in_dbp_.find(page.Pack());
    if (backoff != not_in_dbp_.end()) {
      // The page was not in the DBP last time; retrying RegisterCopy on
      // every descent would spend the RPC pair below for nothing. Visits
      // advance the clock so the backoff expires under pure-miss traffic
      // too (routes may never tick it forward).
      if (++tick_ - backoff->second < kRegisterBackoffTicks) {
        register_backoffs_.Inc();
        return Status::OK();
      }
      not_in_dbp_.erase(backoff);
    }
    const uint32_t idx = PickVictimLocked();
    Slot* slot = slots_[idx].get();
    // Exclusive latch under mu_ waits out in-flight routes through the
    // victim's old binding before it vanishes.
    slot->latch.lock();
    const uint64_t old_key = table_.PageAtSlot(idx);
    if (old_key != IndirectionTable::kNoPage) {
      table_.Unbind(idx);
      // Unregister under mu_: a concurrent Install of the same page cannot
      // register between the unbind and this unregister, so the unregister
      // can never erase a fresh registration and orphan its invalid flag
      // (which would silently lose invalidations).
      // polarlint: allow(unchecked-fabric-status) best-effort eviction: a
      // failed unregister leaves a stale copy entry whose future
      // invalidations hit an unbound slot — harmless, and retrying under
      // mu_ would stall the read path.
      (void)buffer_fusion_->UnregisterCopy(node_, PageId::Unpack(old_key),
                                           kCacheFlagsRegion);
      evictions_.Inc();
      evicted = PageId::Unpack(old_key);
      have_evicted = true;
    }
    auto reg = buffer_fusion_->RegisterCopy(node_, page, FlagOffset(idx),
                                            kCacheFlagsRegion);
    if (!reg.ok() || !reg.value().present) {
      // Without valid DBP content there is nothing to refresh against, so
      // the page is not cacheable right now. (By the caller contract the
      // page sits in the local LBP, whose load already pushed it, so the
      // !present case is rare.)
      if (reg.ok()) {
        // polarlint: allow(unchecked-fabric-status) undo of a registration
        // we just made and will not use; a leak here only costs a stale
        // copy entry, and the caller already takes the uncached path.
        (void)buffer_fusion_->UnregisterCopy(node_, page, kCacheFlagsRegion);
        // Keep the backoff set bounded; internal pages number far fewer
        // than slots in any healthy tree, so a reset is essentially free.
        if (not_in_dbp_.size() >= options_.slots) not_in_dbp_.clear();
        not_in_dbp_[page.Pack()] = tick_;
      }
      slot->latch.unlock();
      result = reg.ok() ? Status::OK() : reg.status();
    } else {
      invalid_flags_[idx].store(0, std::memory_order_release);
      slot->r_addr = reg.value().frame;
      slot->seq = kUnknownSeq;
      slot->last_used = ++tick_;
      table_.Bind(page.Pack(), idx);
      installs_.Inc();
      lock.unlock();
      // Bytes land under the exclusive latch with mu_ released; routes that
      // already found the new binding block on the latch until the image is
      // complete. The caller's PLock guarantees no remote push (and hence
      // no missed invalidation) races this copy.
      std::memcpy(slot->data.get(), bytes, options_.page_size);
      slot->latch.unlock();
    }
  }
  // The evicted page may hold a PLock lease; hand it back only after every
  // cache lock is released (kPlock = 90 sits above our ranks).
  if (have_evicted && on_evict_) on_evict_(evicted);
  return result;
}

uint32_t IndexCache::PickVictimLocked() {
  uint32_t victim = 0;
  uint64_t oldest = UINT64_MAX;
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    if (table_.PageAtSlot(i) == IndirectionTable::kNoPage) return i;
    if (slots_[i]->last_used < oldest) {
      oldest = slots_[i]->last_used;
      victim = i;
    }
  }
  return victim;
}

void IndexCache::NotePushed(PageId page) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  not_in_dbp_.erase(page.Pack());
}

void IndexCache::InvalidateLocal(PageId page) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  const uint32_t idx = table_.Lookup(page.Pack());
  if (idx == IndirectionTable::kNoSlot) return;
  invalid_flags_[idx].store(1, std::memory_order_release);
  local_invalidations_.Inc();
}

bool IndexCache::Contains(PageId page) const {
  if (!enabled()) return false;
  MutexLock lock(mu_);
  return table_.Lookup(page.Pack()) != IndirectionTable::kNoSlot;
}

void IndexCache::DropAll() {
  if (!enabled()) return;
  MutexLock lock(mu_);
  not_in_dbp_.clear();
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    if (table_.PageAtSlot(i) == IndirectionTable::kNoPage) continue;
    // Exclusive latch waits out in-flight routes before the binding goes.
    slots_[i]->latch.lock();
    table_.Unbind(i);
    invalid_flags_[i].store(0, std::memory_order_relaxed);
    slots_[i]->latch.unlock();
  }
}

}  // namespace polarmp
