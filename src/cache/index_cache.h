#ifndef POLARMP_CACHE_INDEX_CACHE_H_
#define POLARMP_CACHE_INDEX_CACHE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/indirection.h"
#include "common/lock_rank.h"
#include "obs/metrics.h"
#include "pmfs/buffer_fusion.h"

namespace polarmp {

// Compute-side cache of internal B-tree pages with version-validated
// one-sided refresh (the compute-local caching tier the RDMA-disaggregation
// literature argues for; see DESIGN.md "Compute-side caching").
//
// The cache holds ROUTING state only: images of internal pages (level >= 1)
// used to skip the per-level PLock pin + LBP access during descents. Leaf
// pages are never cached here — a leaf's latest version can live solely in
// another node's dirty LBP, and only the PLock negotiation forces that node
// to push it, so leaf access stays on the fully guarded path. Internal
// images may be stale without harming correctness: splits only move keys
// RIGHT (there are no merges), so a stale route lands at or left of the
// key's home leaf and the B-link right-walk in BTree::SearchLeaf heals it.
//
// Coherence: each slot registers with Buffer Fusion as a page copy under
// kCacheFlagsRegion, exactly like an LBP frame registers under
// kLbpFlagsRegion. A remote push one-sided-writes the slot's invalid flag;
// the next route through the slot sees the flag, rejects the stale image
// and refreshes it with a single version-validated Dsm::ReadSeqlocked from
// the page's stable DBP frame — no Buffer Fusion RPC, no PLock. The
// returned seqlock word doubles as a content version: refreshes that
// observe the install-time word are counted as spurious
// (index_cache.refresh_unchanged).
//
// Locking protocol (ranks descend on acquisition):
//   * mu_ (kIndexCache = 85) guards the indirection table and slot LRU
//     metadata. It is held across the Buffer Fusion un/register pair during
//     installs (kPmfsService = 70 < 85) so an eviction's UnregisterCopy can
//     never interleave with a concurrent re-registration of the same page
//     and orphan the fresh registration's invalid flag.
//   * Each slot's latch (kCacheSlot = 82) shields the slot's bytes and
//     r_addr/seq metadata. It is always ACQUIRED UNDER mu_ (85 → 82, legal)
//     and released after mu_; holding it in any mode keeps the slot's
//     binding stable, because rebinding requires the exclusive latch which
//     is likewise only acquired under mu_. Routes read under the shared
//     latch; refreshes and installs write under the exclusive latch.
//   * Latch holders never wait on mu_, so an installer blocking on a
//     victim's latch while holding mu_ cannot deadlock.
//   * The eviction callback (→ PLockManager::ReleaseLease, kPlock = 90)
//     runs only after every cache lock is released.
class IndexCache {
 public:
  struct Options {
    bool enabled = true;
    // Number of page slots. 0 disables the cache outright.
    uint32_t slots = 1024;
    uint32_t page_size = 8192;
  };

  struct RouteResult {
    // Deepest page reachable through cached internal images for the key
    // (the tree root if nothing routed).
    PageNo page_no = 0;
    // True when page_no is a leaf (the last hop routed through a level-1
    // image; non-root pages never change level, so this is a guarantee,
    // not a guess).
    bool leaf = false;
    // Internal pages the guarded descent no longer needs to visit.
    uint32_t levels_skipped = 0;
  };

  IndexCache(NodeId node, Fabric* fabric, BufferFusion* buffer_fusion,
             const Options& options);
  ~IndexCache();

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  bool enabled() const { return options_.enabled && options_.slots > 0; }

  // Called when a cached page is evicted to make room (after all cache
  // locks are released). DbNode points this at PLockManager::ReleaseLease
  // so a lease retained for the evicted page is handed back.
  void SetOnEvict(std::function<void(PageId)> on_evict) {
    on_evict_ = std::move(on_evict);
  }

  // Routes `key` from the tree root (page 0 of `space`) down through cached
  // internal images. Stops at the first page with no valid cached image.
  // Never performs an RPC; flagged slots are refreshed with one one-sided
  // read each. Safe without any PLock: stale routes are healed by the
  // caller's B-link right-walk.
  RouteResult Route(SpaceId space, int64_t key);

  // Installs an internal page's image (page_size bytes). No-op for leaves,
  // for already-cached pages, and when disabled. CALLER CONTRACT: the
  // caller holds the page's PLock (any mode) and frame latch, and `bytes`
  // is the page's current image — the PLock is what guarantees no remote
  // push (and hence no missed invalidation) can race the registration.
  // (The slot-latch handoff across the mu_ release is invisible to the
  // static analysis; the dynamic rank checker still covers it.)
  Status Install(PageId page, const char* bytes,
                 uint8_t level) NO_THREAD_SAFETY_ANALYSIS;

  // The local node just pushed `page` to the DBP: the page is fetchable
  // now, so any not-in-DBP install backoff for it is retired. Wired to
  // BufferPool::SetNotePush by DbNode. Purely local — no fabric op.
  void NotePushed(PageId page);

  // Marks this node's own cached image of `page` stale (local SMO: the
  // split just rewrote the page in the LBP; the DBP copy is behind until
  // the dirty push, and the flag keeps routes from trusting our image
  // meanwhile). Purely local — no fabric op.
  void InvalidateLocal(PageId page);

  bool Contains(PageId page) const;

  // Drops every binding (crash/stop). Local only: the server side is
  // cleaned up by BufferFusion::RemoveNode, which erases this node's
  // copies in every flag region.
  void DropAll() NO_THREAD_SAFETY_ANALYSIS;

  uint32_t page_size() const { return options_.page_size; }

  // Telemetry shims over this instance's registry handles ("index_cache.*").
  uint64_t hits() const { return hits_.Value(); }
  uint64_t misses() const { return misses_.Value(); }
  uint64_t installs() const { return installs_.Value(); }
  uint64_t evictions() const { return evictions_.Value(); }
  uint64_t stale_rejects() const { return stale_rejects_.Value(); }
  uint64_t one_sided_refreshes() const {
    return one_sided_refreshes_.Value();
  }
  uint64_t refresh_unchanged() const { return refresh_unchanged_.Value(); }
  uint64_t register_backoffs() const { return register_backoffs_.Value(); }

 private:
  // Install-time sentinel: the DBP seqlock word for our locally sourced
  // image is unknown until the first refresh observes one.
  static constexpr uint64_t kUnknownSeq = UINT64_MAX;

  // A page whose RegisterCopy came back !present (the DBP has no content —
  // typically a locally created split page that has not been pushed yet)
  // cannot be cached. Without a backoff every guarded descent through it
  // would burn the RegisterCopy/UnregisterCopy RPC pair again; instead the
  // page sits out this many ticks before the next attempt. Ticks advance
  // with cache activity (including backed-off visits), so the retry lands
  // soon after the page's eventual push makes it cacheable.
  static constexpr uint64_t kRegisterBackoffTicks = 1024;

  struct Slot {
    const uint32_t index;
    // polarlint: unguarded(written under the slot's exclusive latch, read
    // under the shared latch)
    std::unique_ptr<char[]> data;
    // polarlint: unguarded(slot-latch protocol, as data)
    DsmPtr r_addr;
    // polarlint: unguarded(slot-latch protocol, as data)
    uint64_t seq = kUnknownSeq;
    // polarlint: unguarded(guarded by IndexCache::mu_)
    uint64_t last_used = 0;
    // Shields bytes + r_addr/seq. Acquired only under mu_ (85 → 82).
    RankedSharedMutex latch{LockRank::kCacheSlot, "index_cache.slot"};

    explicit Slot(uint32_t idx) : index(idx) {}
  };

  // One routing hop: resolves `page` through the table, validates (or
  // refreshes) the slot and routes `key` through the image. Returns false
  // on a miss (no binding, refresh failure, or validation livelock). Same
  // latch-across-scope caveat as Install.
  bool RouteHop(PageId page, int64_t key, PageNo* child,
                bool* to_leaf) NO_THREAD_SAFETY_ANALYSIS;

  // Re-reads the slot's page from its DBP frame (one one-sided
  // seqlock-validated read). Slot exclusive latch held by the caller.
  Status RefreshSlot(Slot* slot);

  // Picks a free slot, else the LRU bound slot.
  uint32_t PickVictimLocked() REQUIRES(mu_);

  uint64_t FlagOffset(uint32_t idx) const { return idx * sizeof(uint64_t); }

  const NodeId node_;
  Fabric* const fabric_;
  BufferFusion* const buffer_fusion_;
  const Options options_;

  // polarlint: unguarded(installed once by DbNode before traffic)
  std::function<void(PageId)> on_evict_;

  mutable RankedMutex mu_{LockRank::kIndexCache, "index_cache.table"};
  IndirectionTable table_ GUARDED_BY(mu_);
  uint64_t tick_ GUARDED_BY(mu_) = 0;
  // packed PageId -> tick of the last !present RegisterCopy attempt.
  std::unordered_map<uint64_t, uint64_t> not_in_dbp_ GUARDED_BY(mu_);
  // Sized in the constructor and never resized; element state follows the
  // slot-latch protocol above.
  // polarlint: unguarded(vector frozen after construction)
  std::vector<std::unique_ptr<Slot>> slots_;
  // polarlint: allow(raw-atomic) one-sided RDMA target (kCacheFlagsRegion)
  // polarlint: unguarded(lock-free flag array; remote one-sided writes)
  std::unique_ptr<std::atomic<uint64_t>[]> invalid_flags_;

  obs::Counter hits_{"index_cache.hits"};
  obs::Counter misses_{"index_cache.misses"};
  obs::Counter installs_{"index_cache.installs"};
  obs::Counter evictions_{"index_cache.evictions"};
  obs::Counter stale_rejects_{"index_cache.stale_rejects"};
  obs::Counter one_sided_refreshes_{"index_cache.one_sided_refreshes"};
  obs::Counter refresh_unchanged_{"index_cache.refresh_unchanged"};
  obs::Counter local_invalidations_{"index_cache.local_invalidations"};
  obs::Counter register_backoffs_{"index_cache.register_backoffs"};
};

}  // namespace polarmp

#endif  // POLARMP_CACHE_INDEX_CACHE_H_
