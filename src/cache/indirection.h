#ifndef POLARMP_CACHE_INDIRECTION_H_
#define POLARMP_CACHE_INDIRECTION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace polarmp {

// Page-id → cache-slot indirection for the compute-side index cache.
//
// Every hop of a cached traversal re-resolves the next page id through this
// table instead of following a stored pointer to another slot. That is what
// makes invalidation safe under SMOs: when a split replaces a page's
// content, dropping or rebinding the one table entry retires every path
// through the stale image at once — there are no slot-to-slot pointers that
// could dangle or have to be chased and patched (torn-pointer problem).
//
// The table is passive: no locking of its own. IndexCache guards it with
// its table mutex (LockRank::kIndexCache) and keeps the two directions
// (page→slot map, slot→page reverse array) in sync under that lock.
class IndirectionTable {
 public:
  static constexpr uint32_t kNoSlot = UINT32_MAX;
  static constexpr uint64_t kNoPage = UINT64_MAX;

  explicit IndirectionTable(uint32_t slots) : reverse_(slots, kNoPage) {}

  IndirectionTable(const IndirectionTable&) = delete;
  IndirectionTable& operator=(const IndirectionTable&) = delete;

  // Slot bound to `page_key` (a PageId::Pack() value), or kNoSlot.
  uint32_t Lookup(uint64_t page_key) const {
    auto it = map_.find(page_key);
    return it == map_.end() ? kNoSlot : it->second;
  }

  // Binds `page_key` to `slot`. The slot must be unbound and the page must
  // not be bound elsewhere — rebinding goes through Unbind first so a
  // binding can never silently alias two slots.
  void Bind(uint64_t page_key, uint32_t slot) {
    POLARMP_CHECK_LT(slot, reverse_.size());
    POLARMP_CHECK_EQ(reverse_[slot], kNoPage);
    POLARMP_CHECK(map_.find(page_key) == map_.end());
    map_[page_key] = slot;
    reverse_[slot] = page_key;
  }

  // Releases `slot`'s binding (no-op if unbound).
  void Unbind(uint32_t slot) {
    POLARMP_CHECK_LT(slot, reverse_.size());
    const uint64_t page_key = reverse_[slot];
    if (page_key == kNoPage) return;
    map_.erase(page_key);
    reverse_[slot] = kNoPage;
  }

  // Page bound to `slot` (a PageId::Pack() value), or kNoPage.
  uint64_t PageAtSlot(uint32_t slot) const {
    POLARMP_CHECK_LT(slot, reverse_.size());
    return reverse_[slot];
  }

  size_t bound() const { return map_.size(); }

 private:
  std::unordered_map<uint64_t, uint32_t> map_;
  std::vector<uint64_t> reverse_;
};

}  // namespace polarmp

#endif  // POLARMP_CACHE_INDIRECTION_H_
