#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <thread>

namespace polarmp {
namespace obs {

namespace {

MetricsRegistry* ResolveRegistry(MetricsRegistry* registry) {
  return registry != nullptr ? registry : &MetricsRegistry::Global();
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

}  // namespace

// ---- Counter ----------------------------------------------------------------

Counter::Counter(std::string family, MetricsRegistry* registry)
    : family_(std::move(family)), registry_(ResolveRegistry(registry)) {
  registry_->Attach(this);
}

Counter::~Counter() { registry_->Detach(this); }

// ---- Gauge ------------------------------------------------------------------

Gauge::Gauge(std::string family, MetricsRegistry* registry)
    : family_(std::move(family)), registry_(ResolveRegistry(registry)) {
  registry_->Attach(this);
}

Gauge::~Gauge() { registry_->Detach(this); }

// ---- LatencyHistogram -------------------------------------------------------

LatencyHistogram::LatencyHistogram(std::string family,
                                   MetricsRegistry* registry)
    : family_(std::move(family)), registry_(ResolveRegistry(registry)) {
  registry_->Attach(this);
}

LatencyHistogram::~LatencyHistogram() { registry_->Detach(this); }

size_t LatencyHistogram::ShardIndex() {
  // Thread-stable stripe: same thread always lands on the same shard, so
  // the shard mutex is effectively uncontended.
  static thread_local const size_t index =
      std::hash<std::thread::id>()(std::this_thread::get_id()) % kShards;
  return index;
}

void LatencyHistogram::Record(uint64_t value_ns) {
  Shard& shard = shards_[ShardIndex()];
  MutexLock lock(shard.mu);
  shard.hist.Add(value_ns);
}

Histogram LatencyHistogram::Merged() const {
  Histogram out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    out.Merge(shard.hist);
  }
  return out;
}

void LatencyHistogram::Reset() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.hist.Clear();
  }
}

// ---- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so that handles with static storage duration (and worker threads
  // still recording at exit) can never outlive the registry.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

void MetricsRegistry::Attach(Counter* c) {
  MutexLock lock(mu_);
  counters_[c->family()].live.push_back(c);
}

void MetricsRegistry::Detach(Counter* c) {
  MutexLock lock(mu_);
  auto it = counters_.find(c->family());
  if (it == counters_.end()) return;
  auto& live = it->second.live;
  live.erase(std::remove(live.begin(), live.end(), c), live.end());
  it->second.retired += c->Value();
}

void MetricsRegistry::Attach(Gauge* g) {
  MutexLock lock(mu_);
  gauges_[g->family()].live.push_back(g);
}

void MetricsRegistry::Detach(Gauge* g) {
  MutexLock lock(mu_);
  auto it = gauges_.find(g->family());
  if (it == gauges_.end()) return;
  auto& live = it->second.live;
  live.erase(std::remove(live.begin(), live.end(), g), live.end());
}

void MetricsRegistry::Attach(LatencyHistogram* h) {
  MutexLock lock(mu_);
  histograms_[h->family()].live.push_back(h);
}

void MetricsRegistry::Detach(LatencyHistogram* h) {
  MutexLock lock(mu_);
  auto it = histograms_.find(h->family());
  if (it == histograms_.end()) return;
  auto& live = it->second.live;
  live.erase(std::remove(live.begin(), live.end(), h), live.end());
  it->second.retired.Merge(h->Merged());
}

uint64_t MetricsRegistry::CounterTotal(const std::string& family) const {
  MutexLock lock(mu_);
  auto it = counters_.find(family);
  if (it == counters_.end()) return 0;
  uint64_t total = it->second.retired;
  for (const Counter* c : it->second.live) total += c->Value();
  return total;
}

int64_t MetricsRegistry::GaugeTotal(const std::string& family) const {
  MutexLock lock(mu_);
  auto it = gauges_.find(family);
  if (it == gauges_.end()) return 0;
  int64_t total = 0;
  for (const Gauge* g : it->second.live) total += g->Value();
  return total;
}

Histogram MetricsRegistry::HistogramTotal(const std::string& family) const {
  MutexLock lock(mu_);
  auto it = histograms_.find(family);
  if (it == histograms_.end()) return Histogram();
  Histogram out;
  out.Merge(it->second.retired);
  for (const LatencyHistogram* h : it->second.live) out.Merge(h->Merged());
  return out;
}

std::vector<std::string> MetricsRegistry::CounterFamilies() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, family] : counters_) out.push_back(name);
  return out;
}

std::vector<std::string> MetricsRegistry::GaugeFamilies() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(gauges_.size());
  for (const auto& [name, family] : gauges_) out.push_back(name);
  return out;
}

std::vector<std::string> MetricsRegistry::HistogramFamilies() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(histograms_.size());
  for (const auto& [name, family] : histograms_) out.push_back(name);
  return out;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, family] : counters_) {
    family.retired = 0;
    for (Counter* c : family.live) c->Reset();
  }
  for (auto& [name, family] : histograms_) {
    family.retired.Clear();
    for (LatencyHistogram* h : family.live) h->Reset();
  }
}

std::string MetricsRegistry::SnapshotJson() const {
  MutexLock lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, family] : counters_) {
    uint64_t total = family.retired;
    for (const Counter* c : family.live) total += c->Value();
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": ";
    AppendUint(&out, total);
  }
  out += first ? "},\n" : "\n  },\n";
  // Gauges report the current level, so ResetAll leaves them alone — a
  // reset cannot make an in-flight queue empty.
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, family] : gauges_) {
    int64_t total = 0;
    for (const Gauge* g : family.live) total += g->Value();
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": ";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(total));
    out += buf;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, family] : histograms_) {
    Histogram merged;
    merged.Merge(family.retired);
    for (const LatencyHistogram* h : family.live) merged.Merge(h->Merged());
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ": {\"count\": %" PRIu64 ", \"min\": %" PRIu64
                  ", \"max\": %" PRIu64
                  ", \"mean\": %.1f, \"p50\": %" PRIu64 ", \"p90\": %" PRIu64
                  ", \"p99\": %" PRIu64 "}",
                  merged.count(), merged.min(), merged.max(), merged.Mean(),
                  merged.Percentile(50), merged.Percentile(90),
                  merged.Percentile(99));
    out += buf;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

}  // namespace obs
}  // namespace polarmp
