#ifndef POLARMP_OBS_METRICS_H_
#define POLARMP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/lock_rank.h"

namespace polarmp {
namespace obs {

class MetricsRegistry;

// Component-scoped handle onto a named counter family.
//
// Every PolarDB-MP evaluation argument is a ratio of RDMA ops to RPCs to
// storage I/Os on some critical path, so the process needs one place where
// all of those counts can be read together. A component owns a Counter per
// instrument (a member, constructed with the family name); the constructor
// attaches it to the registry, increments are a single relaxed fetch-add on
// the handle's own cache line, and a registry snapshot sums every live
// handle of the family plus the counts of handles that have since been
// destroyed ("retired"). Per-instance getters keep their exact old
// semantics by reading only their own handle.
//
// The registry must outlive the handle (trivially true for the process-wide
// MetricsRegistry::Global(), which is never destroyed).
class Counter {
 public:
  // `registry == nullptr` attaches to MetricsRegistry::Global().
  explicit Counter(std::string family, MetricsRegistry* registry = nullptr);
  ~Counter();

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  const std::string& family() const { return family_; }

 private:
  const std::string family_;
  MetricsRegistry* const registry_;
  std::atomic<uint64_t> value_{0};
};

// Component-scoped handle onto a named gauge family: a signed level that
// moves both ways (queue depths, in-flight counts), where the family value
// is the SUM of the live handles' current levels. Unlike Counter, a
// destroyed handle's level simply disappears — a gauge measures what exists
// now, so there is nothing to retire. Same registry/lifetime rules as
// Counter.
class Gauge {
 public:
  // `registry == nullptr` attaches to MetricsRegistry::Global().
  explicit Gauge(std::string family, MetricsRegistry* registry = nullptr);
  ~Gauge();

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& family() const { return family_; }

 private:
  const std::string family_;
  MetricsRegistry* const registry_;
  std::atomic<int64_t> value_{0};
};

// Component-scoped handle onto a named latency-histogram family
// (nanosecond samples).
//
// The underlying Histogram is not thread-safe, so writes are striped over
// kShards shards keyed by the calling thread's id — concurrent recorders
// from different threads almost never contend on the same shard mutex —
// and snapshots merge all shards. Same registry/lifetime rules as Counter.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::string family,
                            MetricsRegistry* registry = nullptr);
  ~LatencyHistogram();

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t value_ns);
  // Merged view over all shards of this handle only.
  Histogram Merged() const;
  void Reset();

  const std::string& family() const { return family_; }

 private:
  static constexpr int kShards = 16;
  struct alignas(64) Shard {
    mutable RankedMutex mu{LockRank::kObsHistogram, "obs.histogram_shard"};
    Histogram hist GUARDED_BY(mu);
  };

  static size_t ShardIndex();

  const std::string family_;
  MetricsRegistry* const registry_;
  Shard shards_[kShards];
};

// Process-wide registry of counter and histogram families.
//
// Families are created implicitly by the first handle that names them and
// aggregate every handle registered under the same name; a handle's
// destructor folds its final value into the family so totals are stable
// across component churn (benches that build and tear down several
// clusters in one process keep a cumulative process-wide view).
//
// Family naming convention: "component.instrument", e.g.
// "fabric.remote_reads", "lock_fusion.plock_wait_ns". Histogram families
// end in "_ns" since every TraceSpan records nanoseconds.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide default registry (never destroyed, so handles with
  // static storage duration can detach safely at exit).
  static MetricsRegistry& Global();

  // Live handles + retired total for the family; 0 if never registered.
  uint64_t CounterTotal(const std::string& family) const;
  // Sum of the family's live gauge levels; 0 if never registered.
  int64_t GaugeTotal(const std::string& family) const;
  // Merge over the family's live handles + retired samples.
  Histogram HistogramTotal(const std::string& family) const;

  std::vector<std::string> CounterFamilies() const;
  std::vector<std::string> GaugeFamilies() const;
  std::vector<std::string> HistogramFamilies() const;

  // Zeroes every live handle and every retired total/sample. Meant for
  // benches that want a clean slate between measurement windows.
  void ResetAll();

  // Snapshot of every family as JSON:
  //   {"counters": {"fabric.rpcs": 12, ...},
  //    "gauges": {"log_writer.force_queue_depth": 3, ...},
  //    "histograms": {"fabric.read_ns": {"count": 3, "min": ..., "max": ...,
  //                                      "mean": ..., "p50": ..., "p90": ...,
  //                                      "p99": ...}, ...}}
  // Safe to call while other threads are recording (counts are relaxed
  // reads; histogram shards are locked one at a time).
  std::string SnapshotJson() const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class LatencyHistogram;

  struct CounterFamily {
    std::vector<Counter*> live;
    uint64_t retired = 0;
  };
  struct GaugeFamily {
    std::vector<Gauge*> live;
  };
  struct HistogramFamily {
    std::vector<LatencyHistogram*> live;
    Histogram retired;
  };

  void Attach(Counter* c);
  void Detach(Counter* c);
  void Attach(Gauge* g);
  void Detach(Gauge* g);
  void Attach(LatencyHistogram* h);
  void Detach(LatencyHistogram* h);

  mutable RankedMutex mu_{LockRank::kObsRegistry, "obs.registry"};
  std::map<std::string, CounterFamily> counters_ GUARDED_BY(mu_);
  std::map<std::string, GaugeFamily> gauges_ GUARDED_BY(mu_);
  std::map<std::string, HistogramFamily> histograms_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace polarmp

#endif  // POLARMP_OBS_METRICS_H_
