#ifndef POLARMP_OBS_TRACE_H_
#define POLARMP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace polarmp {
namespace obs {

// RAII timer over a critical-path segment: constructed at segment entry,
// records the elapsed nanoseconds into a LatencyHistogram family when it
// goes out of scope (or at an explicit Finish()). Used to decompose the
// commit path (session -> transaction fusion -> log writer -> fabric) and
// the PLock acquire -> negotiate -> grant path, the breakdowns §6 reasons
// with.
//
// In the simulation, elapsed wall time includes SimDelay charges, so span
// histograms report the same simulated costs the throughput figures pay.
//
// A null sink makes the span a no-op, which lets call sites time only the
// interesting branch:
//   obs::TraceSpan span(remote ? &read_ns_ : nullptr);
class TraceSpan {
 public:
  explicit TraceSpan(LatencyHistogram* sink)
      : sink_(sink), start_ns_(NowNanos()) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan(TraceSpan&& other) noexcept
      : sink_(other.sink_), start_ns_(other.start_ns_) {
    other.sink_ = nullptr;
  }

  ~TraceSpan() { Finish(); }

  // Records the sample now; further Finish()/destruction is a no-op.
  void Finish() {
    if (sink_ == nullptr) return;
    sink_->Record(NowNanos() - start_ns_);
    sink_ = nullptr;
  }

  // Drops the span without recording (e.g. an error path whose latency
  // would pollute the distribution).
  void Cancel() { sink_ = nullptr; }

  uint64_t elapsed_ns() const { return NowNanos() - start_ns_; }

  static uint64_t NowNanos() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  LatencyHistogram* sink_;
  uint64_t start_ns_;
};

}  // namespace obs
}  // namespace polarmp

#endif  // POLARMP_OBS_TRACE_H_
