#include "engine/undo.h"

#include <cstring>

#include "common/coding.h"

namespace polarmp {

std::string UndoRecord::Encode() const {
  std::string out;
  out.reserve(EncodedSize());
  out.push_back(static_cast<char>(type));
  PutFixed32(&out, space);
  PutFixed64(&out, static_cast<uint64_t>(key));
  PutFixed64(&out, trx);
  PutFixed64(&out, trx_prev);
  PutFixed64(&out, prev_trx);
  PutFixed64(&out, prev_cts);
  PutFixed64(&out, prev_undo);
  out.push_back(static_cast<char>(prev_flags));
  PutFixed32(&out, static_cast<uint32_t>(prev_value.size()));
  out.append(prev_value);
  return out;
}

size_t UndoRecord::EncodedSize() const {
  return kHeaderSize + prev_value.size();
}

StatusOr<UndoRecord> UndoRecord::Decode(Slice data) {
  if (data.size() < kHeaderSize) {
    return Status::Corruption("short undo record");
  }
  const char* p = data.data();
  UndoRecord rec;
  rec.type = static_cast<UndoType>(static_cast<uint8_t>(p[0]));
  rec.space = DecodeFixed32(p + 1);
  rec.key = static_cast<int64_t>(DecodeFixed64(p + 5));
  rec.trx = DecodeFixed64(p + 13);
  rec.trx_prev = DecodeFixed64(p + 21);
  rec.prev_trx = DecodeFixed64(p + 29);
  rec.prev_cts = DecodeFixed64(p + 37);
  rec.prev_undo = DecodeFixed64(p + 45);
  rec.prev_flags = static_cast<uint8_t>(p[53]);
  const uint32_t vlen = DecodeFixed32(p + 54);
  if (data.size() < kHeaderSize + vlen) {
    return Status::Corruption("short undo record value");
  }
  rec.prev_value.assign(p + kHeaderSize, vlen);
  return rec;
}

UndoStore::UndoStore(Dsm* dsm, uint64_t segment_bytes)
    : dsm_(dsm), capacity_(segment_bytes) {}

Status UndoStore::AddNode(NodeId node) {
  MutexLock lock(mu_);
  if (segments_.count(node) != 0) {
    return Status::OK();  // restart keeps the old segment (recovery rebuilds)
  }
  POLARMP_ASSIGN_OR_RETURN(DsmPtr base, dsm_->Allocate(capacity_));
  auto seg = std::make_unique<Segment>();
  seg->base = base;
  segments_[node] = std::move(seg);
  return Status::OK();
}

StatusOr<UndoStore::AppendResult> UndoStore::Append(NodeId node,
                                                    const UndoRecord& rec) {
  Segment* seg;
  {
    MutexLock lock(mu_);
    auto it = segments_.find(node);
    if (it == segments_.end()) {
      return Status::NotFound("undo segment missing: node " +
                              std::to_string(node));
    }
    seg = it->second.get();
  }
  std::string bytes = rec.Encode();
  POLARMP_CHECK_LT(bytes.size(), capacity_ / 4) << "undo record too large";

  MutexLock lock(seg->append_mu);
  uint64_t off = seg->head.load(std::memory_order_relaxed);
  const uint64_t phys = off % capacity_;
  if (phys + bytes.size() > capacity_) {
    off += capacity_ - phys;  // skip the tail pad; records never wrap
  }
  const uint64_t tail = seg->tail.load(std::memory_order_acquire);
  if (off + bytes.size() - tail > capacity_) {
    return Status::Internal("undo segment full (purge lagging)");
  }
  // The append is the node's one-sided write into DSM.
  POLARMP_RETURN_IF_ERROR(dsm_->Write(
      node, DsmPtr{seg->base.server, seg->base.offset + off % capacity_},
      bytes.data(), bytes.size()));
  seg->head.store(off + bytes.size(), std::memory_order_release);
  return AppendResult{MakeUndoPtr(node, off), off, std::move(bytes)};
}

// polarlint: seqlock-payload(record header is re-validated after the copy;
// a torn read loses the length-field race and retries via the caller)
StatusOr<UndoRecord> UndoStore::Read(EndpointId from, UndoPtr ptr) const {
  const NodeId owner = UndoPtrNode(ptr);
  const uint64_t off = UndoPtrOffset(ptr);
  Segment* seg;
  {
    MutexLock lock(mu_);
    auto it = segments_.find(owner);
    if (it == segments_.end()) {
      return Status::NotFound("undo segment missing: node " +
                              std::to_string(owner));
    }
    seg = it->second.get();
  }
  if (off < seg->tail.load(std::memory_order_acquire)) {
    return Status::NotFound("undo record purged");
  }
  if (off + UndoRecord::kHeaderSize >
      seg->head.load(std::memory_order_acquire)) {
    return Status::Corruption("undo pointer beyond segment head");
  }
  // A node keeps a local image of its own undo log (as the paper's nodes
  // keep undo pages in their buffer pool); only cross-node history walks
  // pay RDMA latency. Data always lives host-side in the DSM segment.
  const bool remote = from != static_cast<EndpointId>(owner);
  const char* base = dsm_->HostPtr(seg->base);
  const char* hdr = base + off % capacity_;
  if (remote) SimDelay(dsm_->fabric_profile().rdma_read_ns);
  const uint32_t vlen = DecodeFixed32(hdr + 54);
  std::string bytes(hdr, UndoRecord::kHeaderSize + vlen);
  if (remote && vlen > 0) SimDelay(dsm_->fabric_profile().rdma_read_ns);
  return UndoRecord::Decode(bytes);
}

Status UndoStore::FreeUpTo(NodeId node, uint64_t offset) {
  MutexLock lock(mu_);
  auto it = segments_.find(node);
  if (it == segments_.end()) {
    return Status::NotFound("undo segment missing");
  }
  uint64_t cur = it->second->tail.load(std::memory_order_relaxed);
  while (offset > cur && !it->second->tail.compare_exchange_weak(
                             cur, offset, std::memory_order_acq_rel)) {
  }
  return Status::OK();
}

Status UndoStore::WriteRaw(NodeId node, uint64_t offset, Slice bytes) {
  Segment* seg;
  {
    MutexLock lock(mu_);
    auto it = segments_.find(node);
    if (it == segments_.end()) {
      return Status::NotFound("undo segment missing");
    }
    seg = it->second.get();
  }
  MutexLock lock(seg->append_mu);
  POLARMP_CHECK_LE(offset % capacity_ + bytes.size(), capacity_);
  dsm_->HostWrite(DsmPtr{seg->base.server, seg->base.offset + offset % capacity_},
                  bytes.data(), bytes.size());
  uint64_t head = seg->head.load(std::memory_order_relaxed);
  const uint64_t end = offset + bytes.size();
  while (end > head && !seg->head.compare_exchange_weak(
                           head, end, std::memory_order_acq_rel)) {
  }
  return Status::OK();
}

uint64_t UndoStore::head(NodeId node) const {
  MutexLock lock(mu_);
  auto it = segments_.find(node);
  return it == segments_.end() ? 0
                               : it->second->head.load(std::memory_order_acquire);
}

uint64_t UndoStore::tail(NodeId node) const {
  MutexLock lock(mu_);
  auto it = segments_.find(node);
  return it == segments_.end() ? 0
                               : it->second->tail.load(std::memory_order_acquire);
}

}  // namespace polarmp
