#ifndef POLARMP_ENGINE_BTREE_H_
#define POLARMP_ENGINE_BTREE_H_

#include <functional>

#include "engine/mtr.h"
#include "obs/metrics.h"
#include "storage/page_store.h"

namespace polarmp {

// Clustered B-tree over int64 keys. The root is pinned at page 0 of the
// tree's tablespace; root splits reinitialize it in place one level up.
//
// Cross-node physical consistency follows the paper (§4.3.1): every page
// access holds the page's PLock at the right mode through the mtr, and
// structure modifications (splits) run in their own mini-transaction that
// additionally holds an index-wide virtual X PLock, so "no transaction,
// whether within the same node or on other nodes, encounters an
// inconsistent B-tree structure".
//
// Deadlock avoidance is by ordering: descents acquire top-down, leaf-chain
// walks acquire left-to-right, SMOs take the index lock first. Page merges
// are not implemented (deletes tombstone rows and purge removes them;
// empty pages persist) — a common engine simplification.
//
// Keys must be > INT64_MIN (reserved as the internal-node sentinel).
class BTree {
 public:
  BTree(EngineContext* ctx, PageStore* page_store, SpaceId space)
      : ctx_(ctx), page_store_(page_store), space_(space) {}

  SpaceId space() const { return space_; }

  // Formats the root leaf. Must be called exactly once per tree, by the
  // node that creates the table (the catalog serializes this).
  Status Create();

  struct LeafPos {
    size_t guard = 0;  // mtr guard index of the leaf
    int slot = 0;      // lower-bound slot for the key
    bool found = false;  // slot holds exactly `key`
  };

  // Descends to the leaf owning `key`; the leaf guard (at `mode`) joins
  // `mtr`. Internal pages are acquired shared and released while crabbing.
  StatusOr<LeafPos> SearchLeaf(Mtr* mtr, int64_t key, LockMode mode);

  // SearchLeaf with an exclusive leaf guard guaranteed to have room for a
  // `need_bytes` row (splitting in separate mini-transactions as needed).
  StatusOr<LeafPos> SearchLeafForWrite(Mtr* mtr, int64_t key,
                                       size_t need_bytes);

  // Streams rows with lo <= key <= hi in key order under shared guards.
  // `fn` returns false to stop early. Visibility is the caller's job.
  Status ScanRange(int64_t lo, int64_t hi,
                   const std::function<bool(const RowView&)>& fn);

  // Internal-entry helpers (exposed for recovery and tests).
  static std::string EncodeInternalEntry(int64_t key, PageNo child);
  static PageNo RouteChild(const Page& page, int64_t key);

  // ---- telemetry ------------------------------------------------------------
  // Shims over this instance's registry handles ("btree.*" families); SMO
  // durations land in "btree.smo_ns".
  uint64_t leaf_searches() const { return leaf_searches_.Value(); }
  uint64_t splits() const { return splits_.Value(); }
  void ResetCounters();

 private:
  PageId RootId() const { return PageId{space_, 0}; }
  PageId IndexLockId() const { return PageId{space_, kIndexLockPageNo}; }

  // One SMO round: splits the deepest ancestor (or the leaf) whose fullness
  // blocks inserting `need_bytes` at `key`. Own mini-transaction.
  Status SplitOnce(int64_t key, size_t need_bytes);
  Status SplitRoot(Mtr* smo, size_t root_guard);
  Status SplitNonRoot(Mtr* smo, size_t node_guard, size_t parent_guard);

  EngineContext* ctx_;
  PageStore* page_store_;
  const SpaceId space_;

  obs::Counter leaf_searches_{"btree.leaf_searches"};
  obs::Counter splits_{"btree.splits"};
  obs::LatencyHistogram smo_ns_{"btree.smo_ns"};
};

}  // namespace polarmp

#endif  // POLARMP_ENGINE_BTREE_H_
