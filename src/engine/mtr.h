#ifndef POLARMP_ENGINE_MTR_H_
#define POLARMP_ENGINE_MTR_H_

#include <vector>

#include "common/lock_rank.h"
#include "engine/buffer_pool.h"
#include "engine/plock_manager.h"
#include "wal/log_writer.h"

namespace polarmp {

class IndexCache;

// Everything a mini-transaction needs from its node. Owned by DbNode.
struct EngineContext {
  NodeId node = 0;
  PLockManager* plock = nullptr;
  BufferPool* lbp = nullptr;
  // Compute-side cache of internal B-tree pages (may be null or disabled;
  // the B-tree routes through it when present).
  IndexCache* cache = nullptr;
  LogWriter* log = nullptr;
  LlsnClock* llsn = nullptr;
  // Serializes mtr commits against checkpoint snapshots (shared for mtr
  // commit, exclusive for the checkpoint's dirty-set capture).
  RankedSharedMutex* commit_mu = nullptr;
  // Makes (LLSN assignment, log-buffer append) one atomic step per node, so
  // LLSNs are monotone WITHIN the node's log stream — the property §4.4
  // states ("LLSNs within a single log file are always incremental") and
  // every LLSN_bound merge (recovery, standby) depends on. Heartbeat marks
  // take it too.
  RankedMutex* llsn_order_mu = nullptr;
  uint64_t plock_timeout_ms = 10'000;
};

// Mini-transaction (§4.3.1): the unit of physical atomicity. Holds page
// guards (PLock reference + frame pin + frame latch), applies mutations to
// the in-memory pages through Log* methods that simultaneously record the
// page-scoped redo, and at Commit() publishes the records to the node's log
// buffer, marks the frames dirty and releases every guard. PLocks are held
// until commit, which is what keeps cross-node readers from observing a
// half-done structure change.
//
// Discipline (enforced by the B-tree code): acquire all guards BEFORE the
// first Log* call, so acquisition failures never strand half-applied
// mutations; never acquire the same page twice in one mtr (use FindGuard).
class Mtr {
 public:
  explicit Mtr(EngineContext* ctx) : ctx_(ctx) {}
  ~Mtr();

  Mtr(const Mtr&) = delete;
  Mtr& operator=(const Mtr&) = delete;

  // Acquires PLock + frame + latch at `mode`; returns a guard index.
  StatusOr<size_t> GetPage(PageId page, LockMode mode);
  // Acquires a brand-new page exclusively without loading content; the
  // caller must LogInitPage before any other use.
  StatusOr<size_t> CreatePage(PageId page);
  // PLock-only exclusive guard on a virtual page (the per-tree index lock).
  StatusOr<size_t> LockVirtual(PageId page);

  // Index of an existing guard for `page`, or -1.
  int FindGuard(PageId page) const;

  // Page wrapper over guard `g`'s frame (valid while the mtr holds it).
  Page PageAt(size_t g);
  PageId PageIdAt(size_t g) const;

  // Early release of an *unmodified* guard (descent crabbing).
  void ReleasePage(size_t g);

  // Logged mutations: apply to the page and record the redo. The mutation
  // and the replay path share the same Page methods.
  Status LogInitPage(size_t g, uint8_t level, PageNo prev, PageNo next);
  Status LogWriteRow(size_t g, Slice row_image);
  Status LogRemoveRow(size_t g, int64_t key);
  Status LogSetLinks(size_t g, PageNo prev, PageNo next);
  Status LogLoadRows(size_t g, std::string images);
  Status LogTruncateRows(size_t g, int64_t from_key);
  // Non-page record riding in this mtr (undo-store appends).
  void LogUndoAppend(uint64_t offset, std::string bytes);

  bool modified() const { return !records_.empty(); }

  // Publishes records to the log buffer, marks pages dirty, releases all
  // guards. Returns the end LSN of this mtr's records (0 if read-only).
  Lsn Commit();

  // LSN of this mtr's first byte in the log (valid after Commit; 0 if
  // read-only). Transactions track it for checkpoint gating.
  Lsn commit_start_lsn() const { return commit_start_lsn_; }

 private:
  struct Guard {
    PageId page;
    LockMode mode = LockMode::kShared;
    BufferPool::Handle handle;  // invalid for virtual locks
    bool latched = false;
    bool modified = false;
    bool released = false;
    bool virtual_lock = false;
  };

  StatusOr<size_t> Acquire(PageId page, LockMode mode, bool create,
                           bool virtual_lock);
  void ReleaseGuard(Guard* guard);
  // Queues a record (llsn assigned at Commit); g = SIZE_MAX for non-page
  // records.
  void RecordFor(size_t g, LogRecord rec);

  EngineContext* ctx_;
  std::vector<Guard> guards_;
  // Records carry llsn 0 until Commit assigns the real values (txn-control
  // records keep 0). record_guard_[i] is the guard whose page record i
  // stamps, or SIZE_MAX for non-page records.
  std::vector<LogRecord> records_;
  std::vector<size_t> record_guard_;
  bool committed_ = false;
  Lsn commit_start_lsn_ = 0;
};

}  // namespace polarmp

#endif  // POLARMP_ENGINE_MTR_H_
