#ifndef POLARMP_ENGINE_BUFFER_POOL_H_
#define POLARMP_ENGINE_BUFFER_POOL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/lock_rank.h"
#include "engine/page.h"
#include "obs/metrics.h"
#include "pmfs/buffer_fusion.h"
#include "wal/llsn.h"

namespace polarmp {

// Local buffer pool (LBP, §4.2 Fig. 4): each frame carries the paper's two
// extra metadata fields — a `valid` flag (here an invalid flag so Buffer
// Fusion can set it with a one-sided write; the flags array is the node's
// kLbpFlagsRegion) and `r_addr`, the page's DBP frame address.
//
// Callers must hold the page's PLock before touching a page here; that is
// what makes the invalid flag stable during access (a remote push — the
// only writer of the flag — requires the X PLock this node would have to
// give up first).
//
// Invariant maintained with the PLock manager: a dirty frame implies this
// node holds the page's X PLock, so pushes to the DBP are always performed
// by the lock holder.
class BufferPool {
 public:
  struct Options {
    uint32_t frames = 1024;
    uint32_t page_size = 8192;
  };

  // Handle to a pinned frame. Valid until Unpin.
  struct Handle {
    uint32_t frame = UINT32_MAX;
    char* data = nullptr;
    bool valid() const { return data != nullptr; }
  };

  BufferPool(NodeId node, Fabric* fabric, BufferFusion* buffer_fusion,
             PageStore* page_store, LlsnClock* llsn_clock,
             const Options& options);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // WAL rule hook: forces the node's redo log up to the given LSN before a
  // dirty page leaves the node.
  void SetForceLog(std::function<Status(Lsn)> force_log) {
    force_log_ = std::move(force_log);
  }
  // Eviction hook: fully releases this node's PLock on the page (returns
  // Busy if the PLock is in use and the eviction should pick another
  // victim).
  void SetReleasePLock(std::function<Status(PageId)> release_plock) {
    release_plock_ = std::move(release_plock);
  }
  // Called after a page's content reaches the DBP (any push, clean or
  // dirty). The index cache uses it to retire its not-in-DBP install
  // backoff so the page becomes cacheable as soon as it is fetchable.
  void SetNotePush(std::function<void(PageId)> note_push) {
    note_push_ = std::move(note_push);
  }

  // Pins the page's frame, loading/refreshing content as needed:
  //   * cached + valid        → return it
  //   * cached + invalidated  → one-sided fetch from r_addr
  //   * absent                → RegisterCopy; fetch from DBP if present,
  //                             else storage read + push (clean load)
  // Caller must hold the PLock. `create` skips the load for brand-new pages
  // (B-tree page allocation); the caller formats and logs kInitPage.
  StatusOr<Handle> GetPage(PageId page_id, bool create);

  // Pins the frame only if the page is cached and valid; no loads, no RPCs.
  // Used by commit-time CTS backfill ("provided these rows are still in the
  // buffer", §4.1). Returns an invalid handle otherwise.
  Handle TryGetCached(PageId page_id);

  void Unpin(const Handle& handle);

  // Thread-level page latch (intra-node concurrency, §4.3.1: "internal page
  // concurrency control within a single node is still the same as before").
  // Which frame's latch is taken — and in which mode — is decided at
  // runtime, which the static analysis cannot follow; the crabbing handoff
  // is checked dynamically instead (Unlatch asserts the hold via the
  // rank-checker's held stack, and Mtr asserts it when guards transfer).
  void Latch(const Handle& handle, LockMode mode) NO_THREAD_SAFETY_ANALYSIS;
  void Unlatch(const Handle& handle, LockMode mode) NO_THREAD_SAFETY_ANALYSIS;

  // Crabbing/transfer assertion: dies unless this thread holds the frame's
  // latch (in any mode for kShared, exclusively for kExclusive).
  void AssertLatched(const Handle& handle, LockMode mode) const;

  // Marks the frame dirty with the LSN its redo is buffered at.
  void MarkDirty(const Handle& handle, Lsn newest_lsn);

  // Pushes the page to the DBP if dirty (forcing the log first) and marks
  // it clean. Used on negotiated PLock release and by checkpoints. No-op if
  // the page is not cached or not dirty.
  Status FlushPageForRelease(PageId page_id);

  // Drops the page's frame without flushing (crash simulation helper).
  void DropAll();

  // Checkpoint support: every dirty page currently cached.
  std::vector<PageId> DirtyPages() const;

  NodeId node() const { return node_; }
  uint32_t page_size() const { return options_.page_size; }
  Fabric* fabric() const { return fabric_; }

  // Telemetry shims over this instance's registry handles
  // ("buffer_pool.*").
  uint64_t hits() const { return hits_.Value(); }
  uint64_t dbp_fetches() const { return dbp_fetches_.Value(); }
  uint64_t storage_loads() const { return storage_loads_.Value(); }
  uint64_t invalid_refetches() const { return invalid_refetches_.Value(); }

 private:
  // Frame metadata is guarded by the pool-wide mu_ and by a per-frame
  // protocol (pins shield a frame from eviction; `installing` hands the
  // frame to a single loader with mu_ dropped; page bytes are additionally
  // serialized by `latch`). GUARDED_BY in a nested struct cannot name the
  // outer pool's mu_, so the fields carry lint escapes instead and the
  // protocol is enforced by the runtime checks.
  struct Frame {
    // polarlint: unguarded(bytes protected by pins+installing+latch protocol)
    std::unique_ptr<char[]> data;
    // polarlint: unguarded(guarded by BufferPool::mu_)
    PageId page_id;
    // polarlint: unguarded(guarded by BufferPool::mu_)
    bool used = false;
    // polarlint: unguarded(guarded by BufferPool::mu_)
    bool installing = false;  // load in progress; waiters block
    // polarlint: unguarded(written only by the installing loader)
    DsmPtr r_addr;
    // polarlint: unguarded(guarded by BufferPool::mu_)
    bool dirty = false;
    // polarlint: unguarded(guarded by BufferPool::mu_)
    Lsn newest_lsn = 0;
    // polarlint: unguarded(guarded by BufferPool::mu_)
    uint32_t pins = 0;
    // polarlint: unguarded(guarded by BufferPool::mu_)
    uint64_t last_used = 0;
    // Same-rank: a descent latches parent and child simultaneously
    // (crabbing); ordering among page latches comes from the B-tree
    // discipline, not the rank checker.
    RankedSharedMutex latch{LockRank::kPageLatch, "buffer_pool.page_latch",
                            SameRank::kAllow};
  };

  // Finds a victim frame (unpinned), evicting its current page. May drop
  // and reacquire mu_ while waiting for pins or evicting (invisible to the
  // static analysis; the contract is held-on-entry, held-on-exit). Returns
  // the frame index.
  StatusOr<uint32_t> AllocFrameLocked() REQUIRES(mu_);

  // Evicts frame `idx` (pins==0): flush if dirty, release PLock, unregister
  // the DBP copy. Drops mu_ around the RPCs and reacquires it before
  // returning.
  Status EvictLocked(uint32_t idx) REQUIRES(mu_);

  // Loads content into an installing frame. Called without mu_.
  Status LoadFrame(uint32_t idx, PageId page_id, bool create) EXCLUDES(mu_);

  // Pushes frame `idx`'s page to DBP (log force + seqlock write + notify).
  // Called without mu_; frame must be protected from concurrent writers
  // (pins drained or caller holds the only write path).
  Status PushFrame(uint32_t idx, bool clean_load) EXCLUDES(mu_);

  uint64_t FlagOffset(uint32_t idx) const { return idx * sizeof(uint64_t); }

  const NodeId node_;
  Fabric* const fabric_;
  BufferFusion* const buffer_fusion_;
  PageStore* const page_store_;
  LlsnClock* const llsn_clock_;
  const Options options_;

  // polarlint: unguarded(installed once by DbNode before traffic)
  std::function<Status(Lsn)> force_log_;
  // polarlint: unguarded(installed once by DbNode before traffic)
  std::function<Status(PageId)> release_plock_;
  // polarlint: unguarded(installed once by DbNode before traffic)
  std::function<void(PageId)> note_push_;

  mutable RankedMutex mu_{LockRank::kBufferPool, "buffer_pool.frames"};
  CondVar cv_;
  // Sized in the constructor and never resized; the vector itself is
  // immutable after that, element state follows the Frame protocol above.
  // polarlint: unguarded(vector frozen after construction)
  std::vector<std::unique_ptr<Frame>> frames_;
  // polarlint: allow(raw-atomic) one-sided RDMA target (kLbpFlagsRegion)
  // polarlint: unguarded(lock-free flag array; remote one-sided writes)
  std::unique_ptr<std::atomic<uint64_t>[]> invalid_flags_;
  std::unordered_map<uint64_t, uint32_t> page_to_frame_ GUARDED_BY(mu_);
  uint64_t tick_ GUARDED_BY(mu_) = 0;

  obs::Counter hits_{"buffer_pool.hits"};
  obs::Counter dbp_fetches_{"buffer_pool.dbp_fetches"};
  obs::Counter storage_loads_{"buffer_pool.storage_loads"};
  obs::Counter invalid_refetches_{"buffer_pool.invalid_refetches"};
};

}  // namespace polarmp

#endif  // POLARMP_ENGINE_BUFFER_POOL_H_


