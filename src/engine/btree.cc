#include "engine/btree.h"

#include "cache/index_cache.h"
#include "common/coding.h"
#include "obs/trace.h"

namespace polarmp {

namespace {
// Internal entries never grow, so a parent "has room" for a split if it can
// take one more separator entry.
constexpr size_t kInternalEntrySize = kRowHeaderSize + 4;
}  // namespace

std::string BTree::EncodeInternalEntry(int64_t key, PageNo child) {
  char buf[4];
  EncodeFixed32(buf, child);
  return EncodeRow(key, kInvalidGTrxId, kCsnInit, kNullUndoPtr, 0,
                   Slice(buf, 4));
}

PageNo BTree::RouteChild(const Page& page, int64_t key) {
  int idx = page.LowerBound(key);
  if (idx >= page.nslots() || page.KeyAt(idx) != key) --idx;
  POLARMP_CHECK_GE(idx, 0) << "internal page missing sentinel entry";
  const auto row = page.RowAt(idx);
  POLARMP_CHECK(row.ok());
  POLARMP_CHECK_EQ(row.value().value.size(), 4u);
  return DecodeFixed32(row.value().value.data());
}

Status BTree::Create() {
  POLARMP_ASSIGN_OR_RETURN(PageNo root_no, page_store_->AllocPageNo(space_));
  POLARMP_CHECK_EQ(root_no, 0u) << "tree root must be the space's first page";
  Mtr mtr(ctx_);
  POLARMP_ASSIGN_OR_RETURN(size_t g, mtr.CreatePage(RootId()));
  POLARMP_RETURN_IF_ERROR(
      mtr.LogInitPage(g, /*level=*/0, kInvalidPageNo, kInvalidPageNo));
  mtr.Commit();
  return Status::OK();
}

StatusOr<BTree::LeafPos> BTree::SearchLeaf(Mtr* mtr, int64_t key,
                                           LockMode mode) {
  POLARMP_CHECK_GT(key, INT64_MIN);
  leaf_searches_.Inc();
  IndexCache* cache =
      ctx_->cache != nullptr && ctx_->cache->enabled() ? ctx_->cache : nullptr;
  // Cleared the first time a cached route proves unconfirmable; the retry
  // then descends from the (authoritative) root.
  bool use_route = cache != nullptr;
  for (int attempt = 0; attempt < 64; ++attempt) {
    size_t g;
    bool routed = false;
    if (use_route) {
      // Fast path: route through cached internal-page images and start the
      // guarded descent at the deepest routed page. A stale image can only
      // land the descent at or LEFT of the key's home leaf (splits move
      // keys right; there are no merges), and the leaf-chain walk below
      // heals that — or rejects the route when it cannot prove the landing.
      const IndexCache::RouteResult route = cache->Route(space_, key);
      if (route.page_no != 0) {
        routed = true;
        // A level-1 image's children are leaves, and non-root pages never
        // change level, so a leaf route can take the final mode directly.
        const LockMode start_mode = route.leaf ? mode : LockMode::kShared;
        POLARMP_ASSIGN_OR_RETURN(
            g, mtr->GetPage(PageId{space_, route.page_no}, start_mode));
      }
    }
    if (!routed) {
      // Root level is unknown before reading it; start shared and upgrade by
      // re-acquiring if the root itself turns out to be the target leaf.
      POLARMP_ASSIGN_OR_RETURN(g, mtr->GetPage(RootId(), LockMode::kShared));
      Page root = mtr->PageAt(g);
      if (root.is_leaf() && mode == LockMode::kExclusive) {
        mtr->ReleasePage(g);
        POLARMP_ASSIGN_OR_RETURN(g, mtr->GetPage(RootId(), mode));
        Page reread = mtr->PageAt(g);
        if (!reread.is_leaf()) {
          // Root split under us; restart the descent.
          mtr->ReleasePage(g);
          continue;
        }
      }
    }
    size_t cur = g;
    bool restart = false;
    while (!restart) {
      Page page = mtr->PageAt(cur);
      if (page.is_leaf()) {
        // A routed landing additionally probes past EMPTY leaves (a stale
        // route can land on a purged-empty leaf whose contents say nothing
        // about its key range; an unrouted descent arrived through the
        // page's current parent, so an empty leaf IS the key's home).
        const bool beyond =
            page.nslots() > 0 ? key > page.KeyAt(page.nslots() - 1) : routed;
        if (beyond && page.next() != kInvalidPageNo) {
          // The key is beyond this leaf but the leaf has a right sibling:
          // the parent image this node routed through may be stale against
          // a concurrent remote split that moved the upper half right. Page
          // coherence is per page, so a two-page (parent, child) read is
          // never atomic cluster-wide; the leaf chain is the B-link-style
          // escape hatch. Walk right only if the sibling's low key admits
          // the key — otherwise the key's home is this leaf and walking
          // would desynchronize from SplitOnce's structure-ordered descent
          // (writers would probe the sibling while splits land here).
          // Left-to-right matches the split's own acquisition order, so
          // the peek cannot deadlock.
          POLARMP_ASSIGN_OR_RETURN(
              size_t sib, mtr->GetPage(PageId{space_, page.next()}, mode));
          Page right = mtr->PageAt(sib);
          if (right.nslots() > 0 && key >= right.KeyAt(0)) {
            mtr->ReleasePage(cur);
            cur = sib;
            continue;
          }
          mtr->ReleasePage(sib);
          if (routed && page.nslots() == 0) {
            // Empty leaf, and the sibling cannot prove the key's home is
            // here (it is empty too, or its low key exceeds the key). Only
            // the real parent can arbitrate; drop the route and re-descend.
            mtr->ReleasePage(cur);
            use_route = false;
            restart = true;
            continue;
          }
        }
        if (routed && page.nslots() > 0 && key > page.KeyAt(page.nslots() - 1) &&
            page.next() != kInvalidPageNo) {
          // key > every row here and the right sibling's low key exceeds
          // the key. On an unrouted descent the parent proved this leaf
          // owns the key (the key is simply absent); a routed landing has
          // no such proof — the home could be a sibling whose smallest
          // PRESENT row exceeds the key. A write must land in the true
          // home, so re-descend from the root.
          mtr->ReleasePage(cur);
          use_route = false;
          restart = true;
          continue;
        }
        LeafPos pos;
        pos.guard = cur;
        pos.slot = page.LowerBound(key);
        pos.found = pos.slot < page.nslots() && page.KeyAt(pos.slot) == key;
        return pos;
      }
      const PageNo child_no = RouteChild(page, key);
      const LockMode child_mode =
          page.level() == 1 ? mode : LockMode::kShared;
      if (cache != nullptr) {
        // Guarded-descent install: we hold the page's PLock + shared frame
        // latch, so no remote push (and hence no missed invalidation) can
        // race the registration.
        (void)cache->Install(mtr->PageIdAt(cur), page.raw(), page.level());
      }
      POLARMP_ASSIGN_OR_RETURN(
          size_t child, mtr->GetPage(PageId{space_, child_no}, child_mode));
      mtr->ReleasePage(cur);
      cur = child;
    }
  }
  return Status::Internal("btree descent did not converge");
}

StatusOr<BTree::LeafPos> BTree::SearchLeafForWrite(Mtr* mtr, int64_t key,
                                                   size_t need_bytes) {
  POLARMP_CHECK_LE(need_bytes, static_cast<size_t>(ctx_->lbp->page_size()) / 4)
      << "row too large for page";
  for (int attempt = 0; attempt < 64; ++attempt) {
    POLARMP_ASSIGN_OR_RETURN(LeafPos pos,
                             SearchLeaf(mtr, key, LockMode::kExclusive));
    Page leaf = mtr->PageAt(pos.guard);
    bool fits;
    if (pos.found) {
      // Replacement: in-place if not growing, else needs free room.
      const auto row = leaf.RowAt(pos.slot);
      POLARMP_RETURN_IF_ERROR(row.status());
      const size_t old_size = kRowHeaderSize + row.value().value.size();
      fits = old_size >= need_bytes || leaf.HasRoomFor(need_bytes);
    } else {
      fits = leaf.HasRoomFor(need_bytes);
    }
    if (fits) return pos;
    mtr->ReleasePage(pos.guard);
    POLARMP_RETURN_IF_ERROR(SplitOnce(key, need_bytes));
  }
  return Status::Internal("btree split loop did not converge");
}

Status BTree::SplitOnce(int64_t key, size_t need_bytes) {
  splits_.Inc();
  obs::TraceSpan span(&smo_ns_);
  Mtr smo(ctx_);
  // The index-wide virtual X lock serializes structure modifications
  // cluster-wide (§4.3.1), so a cheap SHARED discovery descent is safe:
  // no other SMO can change the structure underneath us, and concurrent
  // leaf writes can only change fullness, which the X phase re-verifies.
  POLARMP_RETURN_IF_ERROR(smo.LockVirtual(IndexLockId()).status());

  // Phase 1 — discovery: record each level's page number and fullness.
  struct PathEntry {
    PageNo page_no;
    bool has_room;
  };
  std::vector<PathEntry> path;
  {
    POLARMP_ASSIGN_OR_RETURN(size_t g,
                             smo.GetPage(RootId(), LockMode::kShared));
    for (;;) {
      Page page = smo.PageAt(g);
      const bool leaf_level = page.is_leaf();
      path.push_back(PathEntry{
          page.id().page_no,
          leaf_level ? page.HasRoomFor(need_bytes)
                     : page.HasRoomFor(kInternalEntrySize)});
      if (leaf_level) {
        smo.ReleasePage(g);
        break;
      }
      const PageNo child_no = RouteChild(page, key);
      POLARMP_ASSIGN_OR_RETURN(
          size_t child, smo.GetPage(PageId{space_, child_no}, LockMode::kShared));
      smo.ReleasePage(g);
      g = child;
    }
  }
  if (path.back().has_room) {
    smo.Commit();  // someone already made room
    return Status::OK();
  }
  // Deepest node that must split this round: the leaf, unless an ancestor
  // cannot take one more separator entry.
  size_t split_idx = path.size() - 1;
  while (split_idx > 0 && !path[split_idx - 1].has_room) --split_idx;

  // Phase 2 — exclusive guards only where the modification lands (real
  // engines never root-fence a leaf split: X on the whole path would
  // invalidate every node's cached upper levels on every split).
  Status st;
  std::vector<PageId> smo_pages;
  if (split_idx == 0) {
    POLARMP_ASSIGN_OR_RETURN(size_t root_guard,
                             smo.GetPage(RootId(), LockMode::kExclusive));
    if (smo.PageAt(root_guard).HasRoomFor(
            path.size() == 1 ? need_bytes : kInternalEntrySize)) {
      smo.Commit();  // raced with a concurrent writer freeing space
      return Status::OK();
    }
    st = SplitRoot(&smo, root_guard);
    smo_pages.push_back(RootId());
  } else {
    POLARMP_ASSIGN_OR_RETURN(
        size_t parent_guard,
        smo.GetPage(PageId{space_, path[split_idx - 1].page_no},
                    LockMode::kExclusive));
    POLARMP_ASSIGN_OR_RETURN(
        size_t node_guard,
        smo.GetPage(PageId{space_, path[split_idx].page_no},
                    LockMode::kExclusive));
    Page parent = smo.PageAt(parent_guard);
    Page node = smo.PageAt(node_guard);
    const bool node_full =
        split_idx == path.size() - 1
            ? !node.HasRoomFor(need_bytes)
            : !node.HasRoomFor(kInternalEntrySize);
    if (!node_full || !parent.HasRoomFor(kInternalEntrySize)) {
      smo.Commit();  // fullness changed under us; the caller re-descends
      return Status::OK();
    }
    st = SplitNonRoot(&smo, node_guard, parent_guard);
    smo_pages.push_back(PageId{space_, path[split_idx - 1].page_no});
    smo_pages.push_back(PageId{space_, path[split_idx].page_no});
  }
  if (!st.ok()) return st;
  smo.Commit();
  if (ctx_->cache != nullptr) {
    // The split rewrote these pages in our LBP; our own cached images (if
    // any) are behind until the dirty push lands in the DBP. Flag them so
    // routes stop trusting the images (purely local, no fabric op).
    for (PageId p : smo_pages) ctx_->cache->InvalidateLocal(p);
  }
  return Status::OK();
}

Status BTree::SplitNonRoot(Mtr* smo, size_t node_guard, size_t parent_guard) {
  Page node = smo->PageAt(node_guard);
  const int n = node.nslots();
  POLARMP_CHECK_GE(n, 2);
  const int split_slot = n / 2;
  const int64_t separator = node.KeyAt(split_slot);
  std::string upper = node.CopyRowsInRange(split_slot, n);
  const uint8_t level = node.level();
  const PageNo old_next = node.next();
  const PageNo node_no = node.id().page_no;
  const PageNo node_prev = node.prev();

  POLARMP_ASSIGN_OR_RETURN(PageNo right_no, page_store_->AllocPageNo(space_));

  // Acquire everything before the first logged mutation.
  POLARMP_ASSIGN_OR_RETURN(size_t right_guard,
                           smo->CreatePage(PageId{space_, right_no}));
  int next_guard = -1;
  if (level == 0 && old_next != kInvalidPageNo) {
    // Left-to-right acquisition matches the scan order (deadlock-free).
    POLARMP_ASSIGN_OR_RETURN(
        size_t ng, smo->GetPage(PageId{space_, old_next}, LockMode::kExclusive));
    next_guard = static_cast<int>(ng);
  }

  const PageNo right_prev = level == 0 ? node_no : kInvalidPageNo;
  const PageNo right_next = level == 0 ? old_next : kInvalidPageNo;
  POLARMP_RETURN_IF_ERROR(
      smo->LogInitPage(right_guard, level, right_prev, right_next));
  POLARMP_RETURN_IF_ERROR(smo->LogLoadRows(right_guard, std::move(upper)));
  POLARMP_RETURN_IF_ERROR(smo->LogTruncateRows(node_guard, separator));
  if (level == 0) {
    POLARMP_RETURN_IF_ERROR(smo->LogSetLinks(node_guard, node_prev, right_no));
    if (next_guard >= 0) {
      Page next_page = smo->PageAt(next_guard);
      POLARMP_RETURN_IF_ERROR(smo->LogSetLinks(
          static_cast<size_t>(next_guard), right_no, next_page.next()));
    }
  }
  return smo->LogWriteRow(parent_guard,
                          EncodeInternalEntry(separator, right_no));
}

Status BTree::SplitRoot(Mtr* smo, size_t root_guard) {
  Page root = smo->PageAt(root_guard);
  const int n = root.nslots();
  POLARMP_CHECK_GE(n, 2);
  const int split_slot = n / 2;
  const int64_t separator = root.KeyAt(split_slot);
  std::string lower = root.CopyRowsInRange(0, split_slot);
  std::string upper = root.CopyRowsInRange(split_slot, n);
  const uint8_t level = root.level();

  POLARMP_ASSIGN_OR_RETURN(PageNo left_no, page_store_->AllocPageNo(space_));
  POLARMP_ASSIGN_OR_RETURN(PageNo right_no, page_store_->AllocPageNo(space_));
  POLARMP_ASSIGN_OR_RETURN(size_t left_guard,
                           smo->CreatePage(PageId{space_, left_no}));
  POLARMP_ASSIGN_OR_RETURN(size_t right_guard,
                           smo->CreatePage(PageId{space_, right_no}));

  const bool leaf_level = level == 0;
  POLARMP_RETURN_IF_ERROR(smo->LogInitPage(
      left_guard, level, kInvalidPageNo, leaf_level ? right_no : kInvalidPageNo));
  POLARMP_RETURN_IF_ERROR(smo->LogLoadRows(left_guard, std::move(lower)));
  POLARMP_RETURN_IF_ERROR(smo->LogInitPage(
      right_guard, level, leaf_level ? left_no : kInvalidPageNo, kInvalidPageNo));
  POLARMP_RETURN_IF_ERROR(smo->LogLoadRows(right_guard, std::move(upper)));

  POLARMP_RETURN_IF_ERROR(smo->LogInitPage(
      root_guard, static_cast<uint8_t>(level + 1), kInvalidPageNo,
      kInvalidPageNo));
  POLARMP_RETURN_IF_ERROR(smo->LogWriteRow(
      root_guard, EncodeInternalEntry(INT64_MIN, left_no)));
  return smo->LogWriteRow(root_guard,
                          EncodeInternalEntry(separator, right_no));
}

Status BTree::ScanRange(int64_t lo, int64_t hi,
                        const std::function<bool(const RowView&)>& fn) {
  POLARMP_CHECK_GT(lo, INT64_MIN);
  // The callback must never run under a leaf latch: point reads from inside
  // a scan callback are common (Session::Scan resolves visibility that way)
  // and would re-latch the leaf the scan is parked on — a second shared
  // acquisition of the same latch, which deadlocks the moment a writer
  // queues between the two (and which the lock-rank checker rejects as a
  // recursive acquisition). So the scan copies out one batch of rows per
  // latch hold, releases everything, invokes the callback, then re-descends
  // from the next key.
  struct RowCopy {
    int64_t key;
    GTrxId g_trx_id;
    Csn cts;
    UndoPtr undo_ptr;
    uint8_t flags;
    std::string value;
  };
  constexpr size_t kBatchRows = 128;

  int64_t cursor = lo;
  for (;;) {
    std::vector<RowCopy> batch;
    bool range_done = false;
    {
      Mtr mtr(ctx_);
      POLARMP_ASSIGN_OR_RETURN(LeafPos pos,
                               SearchLeaf(&mtr, cursor, LockMode::kShared));
      size_t cur = pos.guard;
      int slot = pos.slot;
      while (batch.size() < kBatchRows) {
        Page page = mtr.PageAt(cur);
        for (; slot < page.nslots() && batch.size() < kBatchRows; ++slot) {
          if (page.KeyAt(slot) > hi) {
            range_done = true;
            break;
          }
          POLARMP_ASSIGN_OR_RETURN(RowView row, page.RowAt(slot));
          batch.push_back(RowCopy{row.key, row.g_trx_id, row.cts,
                                  row.undo_ptr, row.flags,
                                  row.value.ToString()});
        }
        if (range_done || slot < page.nslots()) break;
        const PageNo next = page.next();
        if (next == kInvalidPageNo) {
          range_done = true;
          break;
        }
        POLARMP_ASSIGN_OR_RETURN(
            size_t next_guard,
            mtr.GetPage(PageId{space_, next}, LockMode::kShared));
        mtr.ReleasePage(cur);
        cur = next_guard;
        slot = 0;
      }
      mtr.Commit();
    }

    for (const RowCopy& c : batch) {
      RowView row;
      row.key = c.key;
      row.g_trx_id = c.g_trx_id;
      row.cts = c.cts;
      row.undo_ptr = c.undo_ptr;
      row.flags = c.flags;
      row.value = Slice(c.value);
      if (!fn(row)) return Status::OK();
    }
    if (range_done) return Status::OK();
    const int64_t last = batch.back().key;
    if (last >= hi || last == INT64_MAX) return Status::OK();
    cursor = last + 1;
  }
}

void BTree::ResetCounters() {
  leaf_searches_.Reset();
  splits_.Reset();
  smo_ns_.Reset();
}

}  // namespace polarmp
