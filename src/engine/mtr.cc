#include "engine/mtr.h"

#include "rdma/rpc.h"

namespace polarmp {

Mtr::~Mtr() {
  POLARMP_CHECK(records_.empty() || committed_)
      << "mini-transaction destroyed with unpublished redo";
  for (Guard& g : guards_) ReleaseGuard(&g);
}

StatusOr<size_t> Mtr::Acquire(PageId page, LockMode mode, bool create,
                              bool virtual_lock) {
  POLARMP_CHECK_EQ(FindGuard(page), -1)
      << "page acquired twice in one mtr: " << page.ToString();
  // Doorbell batch: the PLock pin and the LBP miss's RegisterCopy (plus a
  // clean-load NotifyPush, when one happens) ride one fabric operation.
  RpcBatch batch(ctx_->lbp->fabric(), ctx_->node, kPmfsEndpoint);
  POLARMP_RETURN_IF_ERROR(
      ctx_->plock->Pin(page, mode, ctx_->plock_timeout_ms));
  Guard guard;
  guard.page = page;
  guard.mode = mode;
  guard.virtual_lock = virtual_lock;
  if (!virtual_lock) {
    auto handle = ctx_->lbp->GetPage(page, create);
    if (!handle.ok()) {
      ctx_->plock->Unpin(page);
      return handle.status();
    }
    guard.handle = handle.value();
    ctx_->lbp->Latch(guard.handle, mode);
    guard.latched = true;
  }
  guards_.push_back(guard);
  return guards_.size() - 1;
}

StatusOr<size_t> Mtr::GetPage(PageId page, LockMode mode) {
  return Acquire(page, mode, /*create=*/false, /*virtual_lock=*/false);
}

StatusOr<size_t> Mtr::CreatePage(PageId page) {
  return Acquire(page, LockMode::kExclusive, /*create=*/true,
                 /*virtual_lock=*/false);
}

StatusOr<size_t> Mtr::LockVirtual(PageId page) {
  return Acquire(page, LockMode::kExclusive, /*create=*/false,
                 /*virtual_lock=*/true);
}

int Mtr::FindGuard(PageId page) const {
  for (size_t i = 0; i < guards_.size(); ++i) {
    if (!guards_[i].released && guards_[i].page == page) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Page Mtr::PageAt(size_t g) {
  Guard& guard = guards_[g];
  POLARMP_CHECK(!guard.released && !guard.virtual_lock);
  return Page(guard.handle.data, ctx_->lbp->page_size());
}

PageId Mtr::PageIdAt(size_t g) const { return guards_[g].page; }

void Mtr::ReleasePage(size_t g) {
  Guard& guard = guards_[g];
  POLARMP_CHECK(!guard.modified) << "cannot early-release a modified page";
  ReleaseGuard(&guard);
}

void Mtr::ReleaseGuard(Guard* guard) {
  if (guard->released) return;
  if (guard->latched) {
    ctx_->lbp->Unlatch(guard->handle, guard->mode);
    guard->latched = false;
  }
  if (guard->handle.valid()) {
    ctx_->lbp->Unpin(guard->handle);
  }
  ctx_->plock->Unpin(guard->page);
  if (guard->virtual_lock) {
    // Virtual (index) locks have no temporal-locality payoff and would
    // ghost-fence the whole tree if the node crashed while retaining them;
    // give them back to Lock Fusion eagerly. Busy (another local thread
    // already reacquiring) is fine.
    const Status s = ctx_->plock->ForceRelease(guard->page);
    if (!s.ok() && !s.IsBusy()) {
      POLARMP_LOG(Warn) << "virtual lock release failed: " << s.ToString();
    }
  }
  guard->released = true;
}

// Applies are recorded with llsn 0; Commit assigns the real LLSNs
// atomically with the buffer append (stream monotonicity, §4.4).
void Mtr::RecordFor(size_t g, LogRecord rec) {
  if (g != SIZE_MAX) {
    // A logged mutation is only safe under the guard's exclusive latch; the
    // static analysis cannot see which frame a guard latched (runtime
    // indirection), so assert the hold here — the choke point every page
    // mutation funnels through.
    Guard& guard = guards_[g];
    POLARMP_CHECK(guard.mode == LockMode::kExclusive);
    if (guard.latched) {
      ctx_->lbp->AssertLatched(guard.handle, LockMode::kExclusive);
    }
    guard.modified = true;
  }
  records_.push_back(std::move(rec));
  record_guard_.push_back(g);
}

Status Mtr::LogInitPage(size_t g, uint8_t level, PageNo prev, PageNo next) {
  Page page = PageAt(g);
  page.Init(guards_[g].page, level, prev, next);
  RecordFor(g, MakeInitPage(ctx_->node, 0, guards_[g].page, level, prev, next));
  return Status::OK();
}

Status Mtr::LogWriteRow(size_t g, Slice row_image) {
  Page page = PageAt(g);
  POLARMP_RETURN_IF_ERROR(page.WriteRow(row_image));
  RecordFor(g, MakeWriteRow(ctx_->node, 0, guards_[g].page,
                            row_image.ToString()));
  return Status::OK();
}

Status Mtr::LogRemoveRow(size_t g, int64_t key) {
  Page page = PageAt(g);
  POLARMP_RETURN_IF_ERROR(page.RemoveRow(key));
  RecordFor(g, MakeRemoveRow(ctx_->node, 0, guards_[g].page, key));
  return Status::OK();
}

Status Mtr::LogSetLinks(size_t g, PageNo prev, PageNo next) {
  Page page = PageAt(g);
  page.set_links(prev, next);
  RecordFor(g, MakeSetPageLinks(ctx_->node, 0, guards_[g].page, prev, next));
  return Status::OK();
}

Status Mtr::LogLoadRows(size_t g, std::string images) {
  Page page = PageAt(g);
  POLARMP_RETURN_IF_ERROR(page.LoadRows(images));
  RecordFor(g, MakeLoadRows(ctx_->node, 0, guards_[g].page,
                            std::move(images)));
  return Status::OK();
}

Status Mtr::LogTruncateRows(size_t g, int64_t from_key) {
  Page page = PageAt(g);
  page.TruncateFromKey(from_key);
  RecordFor(g, MakeTruncateRows(ctx_->node, 0, guards_[g].page, from_key));
  return Status::OK();
}

void Mtr::LogUndoAppend(uint64_t offset, std::string bytes) {
  RecordFor(SIZE_MAX, MakeUndoAppend(ctx_->node, 0, offset, std::move(bytes)));
}

Lsn Mtr::Commit() {
  POLARMP_CHECK(!committed_);
  committed_ = true;
  Lsn end_lsn = 0;
  if (!records_.empty()) {
    // Shared against checkpoints: a checkpoint's dirty-set snapshot sees
    // either none or all of this mtr (log append + dirty marks together).
    ReaderLock checkpoint_guard(*ctx_->commit_mu);
    {
      // LLSN assignment, page stamping and the buffer append are one
      // atomic step per node so the stream stays LLSN-monotone (§4.4) —
      // the invariant every LLSN_bound merge (recovery, standby) depends
      // on. The pages are still exclusively latched, so stamping is safe.
      MutexLock order_guard(*ctx_->llsn_order_mu);
      std::string encoded;
      for (size_t i = 0; i < records_.size(); ++i) {
        records_[i].llsn = ctx_->llsn->Advance();
        if (record_guard_[i] != SIZE_MAX) {
          PageAt(record_guard_[i]).set_llsn(records_[i].llsn);
        }
        records_[i].AppendTo(&encoded);
      }
      end_lsn = ctx_->log->AddEncoded(encoded);
      commit_start_lsn_ = end_lsn - encoded.size();
    }
    for (Guard& g : guards_) {
      if (g.modified) ctx_->lbp->MarkDirty(g.handle, end_lsn);
    }
  }
  for (Guard& g : guards_) ReleaseGuard(&g);
  return end_lsn;
}

}  // namespace polarmp
