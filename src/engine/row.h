#ifndef POLARMP_ENGINE_ROW_H_
#define POLARMP_ENGINE_ROW_H_

#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace polarmp {

// Pointer to an undo record in the DSM undo store:
// owner node (10 bits) | offset within the node's undo segment (54 bits).
// kNullUndoPtr (0) = no previous version recorded; offset 0 is never used.
using UndoPtr = uint64_t;
inline constexpr UndoPtr kNullUndoPtr = 0;

inline constexpr UndoPtr MakeUndoPtr(NodeId node, uint64_t offset) {
  return (static_cast<uint64_t>(node) << 54) | offset;
}
inline constexpr NodeId UndoPtrNode(UndoPtr p) {
  return static_cast<NodeId>(p >> 54);
}
inline constexpr uint64_t UndoPtrOffset(UndoPtr p) {
  return p & ((uint64_t{1} << 54) - 1);
}

// Row flag bits.
inline constexpr uint8_t kRowTombstone = 0x1;

// On-page row format (§4.1: "PolarDB-MP adds two extra metadata fields for
// each row to store the g_trx_id and CTS"; §4.3.2: the g_trx_id field
// doubles as the embedded row lock — a row is locked iff its last writer is
// still active):
//
//   key(8) | g_trx_id(8) | cts(8) | undo_ptr(8) | flags(1) | vlen(4) | value
//
// Internal B-tree pages reuse the same format with zeroed metadata and a
// 4-byte child page number as the value.
inline constexpr size_t kRowHeaderSize = 8 + 8 + 8 + 8 + 1 + 4;

// Offsets of the in-place-mutable metadata fields within a row image.
inline constexpr size_t kRowKeyOffset = 0;
inline constexpr size_t kRowTrxOffset = 8;
inline constexpr size_t kRowCtsOffset = 16;
inline constexpr size_t kRowUndoOffset = 24;
inline constexpr size_t kRowFlagsOffset = 32;
inline constexpr size_t kRowVlenOffset = 33;

// Decoded, non-owning view of a row inside a page (valid while the caller
// holds the page latch).
struct RowView {
  int64_t key = 0;
  GTrxId g_trx_id = kInvalidGTrxId;
  Csn cts = kCsnInit;
  UndoPtr undo_ptr = kNullUndoPtr;
  uint8_t flags = 0;
  Slice value;

  bool tombstone() const { return (flags & kRowTombstone) != 0; }
};

// Builds a serialized row image.
std::string EncodeRow(int64_t key, GTrxId g_trx_id, Csn cts, UndoPtr undo_ptr,
                      uint8_t flags, Slice value);

// Decodes a row image in place. `data` must start at the row and contain at
// least the full row (header + value).
StatusOr<RowView> DecodeRow(const char* data, size_t max_len);

// Size of the row starting at `data` (header must be in range).
size_t RowSizeAt(const char* data);

// Owning copy of a row version, used by the MVCC layer when reconstructing
// history from undo records.
struct RowVersion {
  int64_t key = 0;
  GTrxId g_trx_id = kInvalidGTrxId;
  Csn cts = kCsnInit;
  UndoPtr undo_ptr = kNullUndoPtr;
  uint8_t flags = 0;
  std::string value;

  bool tombstone() const { return (flags & kRowTombstone) != 0; }

  static RowVersion FromView(const RowView& v) {
    return RowVersion{v.key,      v.g_trx_id, v.cts,
                      v.undo_ptr, v.flags,    v.value.ToString()};
  }
};

}  // namespace polarmp

#endif  // POLARMP_ENGINE_ROW_H_
