#ifndef POLARMP_ENGINE_PLOCK_MANAGER_H_
#define POLARMP_ENGINE_PLOCK_MANAGER_H_

#include <atomic>
#include <functional>
#include <unordered_map>

#include "common/lock_rank.h"
#include "obs/metrics.h"
#include "pmfs/lock_fusion.h"

namespace polarmp {

// Node-side PLock cache implementing the paper's lazy releasing (§4.3.1,
// Fig. 5): "Instead of releasing its PLock back to Lock Fusion immediately
// after use, a node decreases the reference count ... If the same node
// needs to acquire the PLock again, and the requested lock type is not
// stronger than the currently held type, the PLock can be granted locally."
//
// When Lock Fusion sends a negotiation message (another node wants a
// conflicting mode), new local grants are refused — "it must communicate
// with Lock Fusion, which manages the granting of locks in FIFO order" —
// and the hold is released once the reference count drains, after the
// dirty page (if any) has been pushed to the DBP by the before-release
// hook.
class PLockManager {
 public:
  // `lazy_release` enables the paper's lazy releasing (§4.3.1); disabling
  // it releases every PLock back to Lock Fusion as soon as its reference
  // count drains (the ablation baseline).
  PLockManager(NodeId node, LockFusion* fusion, bool lazy_release = true)
      : node_(node), fusion_(fusion), lazy_release_(lazy_release) {}

  PLockManager(const PLockManager&) = delete;
  PLockManager& operator=(const PLockManager&) = delete;

  // Pushes the page to the DBP if dirty; runs before the PLock goes back to
  // Lock Fusion.
  void SetBeforeRelease(std::function<Status(PageId)> hook) {
    before_release_ = std::move(hook);
  }

  // Acquires (or locally re-grants) the PLock and takes a reference.
  // CALLER RULE: do not hold a reference on `page` while requesting a
  // stronger mode for it (pick the final mode before pinning).
  Status Pin(PageId page, LockMode mode, uint64_t timeout_ms);

  // Takes a reference only if the lock is already held locally at a
  // sufficient mode with no pending negotiation; never contacts Lock
  // Fusion. Used by best-effort paths like commit-time CTS backfill.
  bool TryPinLocal(PageId page, LockMode mode);

  // Drops a reference; triggers the negotiated release when it drains.
  void Unpin(PageId page);

  // Lock Fusion negotiation callback (registered via LockFusion::AddNode).
  void OnNegotiate(PageId page);

  // Eviction support: releases the node's hold entirely. Returns Busy if
  // the page has references or an acquire in flight (pick another victim).
  Status ForceRelease(PageId page);

  // Eviction support for pages the index cache still holds: instead of
  // releasing the hold back to Lock Fusion, keeps it as a LEASE — the
  // fusion-side grant stays with this node (refs == 0), so the next Pin on
  // the page is a pure local regrant that never leaves the node. Lock
  // Fusion revokes leases through the normal negotiation path (a lease is
  // just an idle retained hold, so OnNegotiate releases it immediately).
  // Same Busy conditions as ForceRelease; with lazy releasing disabled
  // (the ablation baseline retains no idle holds) it degrades to a full
  // ForceRelease.
  Status DemoteToLease(PageId page);

  // Hands a lease back to Lock Fusion (the index cache evicted the page,
  // so nothing local justifies the hold anymore). No-op unless the page's
  // hold is an idle lease.
  void ReleaseLease(PageId page);

  bool HeldLocally(PageId page, LockMode mode) const;

  // Crash simulation: forget all local state (Lock Fusion's RemoveNode
  // drops the server side).
  void DropAll();

  // Human-readable dump of all local entries (deadlock forensics).
  std::string DebugDump() const;

  // Telemetry shims over this instance's registry handles ("plock.*").
  uint64_t local_grants() const { return local_grants_.Value(); }
  uint64_t fusion_acquires() const { return fusion_acquires_.Value(); }
  uint64_t negotiated_releases() const {
    return negotiated_releases_.Value();
  }
  uint64_t lease_demotes() const { return lease_demotes_.Value(); }
  uint64_t lease_regrants() const { return lease_regrants_.Value(); }

 private:
  struct Entry {
    bool held = false;
    LockMode mode = LockMode::kShared;
    uint32_t refs = 0;
    bool release_requested = false;
    bool acquiring = false;
    bool releasing = false;
    // Idle hold kept because the index cache holds the page (see
    // DemoteToLease). Cleared by the Pin that re-uses it.
    bool leased = false;
  };

  static bool Sufficient(LockMode held, LockMode wanted) {
    return held == LockMode::kExclusive || held == wanted;
  }

  // Runs the release protocol for `page`. The entry must be held with
  // refs==0 and releasing already set to true. Drops mu_ around the hook
  // and the fusion RPC, reacquiring it before returning (invisible to the
  // static analysis; the contract is held-on-entry, held-on-exit). With
  // `run_hook` the dirty page is pushed first (negotiated releases);
  // eviction already flushed and must skip it (the frame is mid-eviction
  // and the hook would deadlock waiting on it).
  void ReleaseLocked(PageId page, bool run_hook) REQUIRES(mu_);

  // Gives the held mode back to Lock Fusion while an acquire for a
  // stronger mode is still queued there: the entry survives (held=false)
  // so the acquiring thread keeps its bookkeeping. Without this, a
  // negotiated release requested while refs==0 and acquiring==true would
  // never run — the lazily-retained weak hold then deadlocks the fusion
  // FIFO (our own queued upgrade waits behind the waiter our hold blocks).
  // Same drop-and-reacquire shape as ReleaseLocked.
  void PartialReleaseLocked(PageId page) REQUIRES(mu_);

  const NodeId node_;
  LockFusion* const fusion_;
  const bool lazy_release_;
  // polarlint: unguarded(installed once by DbNode before traffic)
  std::function<Status(PageId)> before_release_;

  mutable RankedMutex mu_{LockRank::kPlock, "plock.entries"};
  CondVar cv_;
  std::unordered_map<uint64_t, Entry> entries_ GUARDED_BY(mu_);

  obs::Counter local_grants_{"plock.local_grants"};
  obs::Counter fusion_acquires_{"plock.fusion_acquires"};
  obs::Counter negotiated_releases_{"plock.negotiated_releases"};
  obs::Counter lease_demotes_{"plock.lease_demotes"};
  obs::Counter lease_regrants_{"plock.lease_regrants"};
};

}  // namespace polarmp

#endif  // POLARMP_ENGINE_PLOCK_MANAGER_H_
