#include "engine/row.h"

#include "common/coding.h"

namespace polarmp {

std::string EncodeRow(int64_t key, GTrxId g_trx_id, Csn cts, UndoPtr undo_ptr,
                      uint8_t flags, Slice value) {
  std::string out;
  out.reserve(kRowHeaderSize + value.size());
  PutFixed64(&out, static_cast<uint64_t>(key));
  PutFixed64(&out, g_trx_id);
  PutFixed64(&out, cts);
  PutFixed64(&out, undo_ptr);
  out.push_back(static_cast<char>(flags));
  PutFixed32(&out, static_cast<uint32_t>(value.size()));
  out.append(value.data(), value.size());
  return out;
}

StatusOr<RowView> DecodeRow(const char* data, size_t max_len) {
  if (max_len < kRowHeaderSize) {
    return Status::Corruption("row header out of range");
  }
  RowView v;
  v.key = static_cast<int64_t>(DecodeFixed64(data + kRowKeyOffset));
  v.g_trx_id = DecodeFixed64(data + kRowTrxOffset);
  v.cts = DecodeFixed64(data + kRowCtsOffset);
  v.undo_ptr = DecodeFixed64(data + kRowUndoOffset);
  v.flags = static_cast<uint8_t>(data[kRowFlagsOffset]);
  const uint32_t vlen = DecodeFixed32(data + kRowVlenOffset);
  if (max_len < kRowHeaderSize + vlen) {
    return Status::Corruption("row value out of range");
  }
  v.value = Slice(data + kRowHeaderSize, vlen);
  return v;
}

size_t RowSizeAt(const char* data) {
  return kRowHeaderSize + DecodeFixed32(data + kRowVlenOffset);
}

}  // namespace polarmp
