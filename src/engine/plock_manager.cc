#include "engine/plock_manager.h"

#include "rdma/rpc.h"

namespace polarmp {

Status PLockManager::Pin(PageId page, LockMode mode, uint64_t timeout_ms) {
  const uint64_t key = page.Pack();
  UniqueLock lock(mu_);
  for (;;) {
    Entry& e = entries_[key];
    if (e.releasing) {
      cv_.wait(lock);
      continue;
    }
    if (e.held && Sufficient(e.mode, mode)) {
      if (e.release_requested) {
        // Fusion fairness: a negotiated hold cannot grant locally; wait for
        // the release to complete, then acquire fresh behind the FIFO queue.
        if (e.refs == 0 && !e.acquiring) {
          // Nothing will trigger the release (the last Unpin predated the
          // negotiation); run it from here.
          e.releasing = true;
          ReleaseLocked(page, /*run_hook=*/true);
        } else {
          cv_.wait(lock);
        }
        continue;
      }
      ++e.refs;
      local_grants_.Inc();
      if (e.leased) {
        // The lease paid off: a repeat acquisition on a cache-resident
        // page granted without leaving the node.
        e.leased = false;
        lease_regrants_.Inc();
      }
      return Status::OK();
    }
    if (e.acquiring) {
      cv_.wait(lock);
      continue;
    }
    if (e.held && !Sufficient(e.mode, mode) && e.refs == 0) {
      // Upgrade of an idle retained hold: give the weak mode back first.
      // Queuing an in-place upgrade while keeping the S hold deadlocks when
      // two nodes do it symmetrically (each X waits on the other's S); a
      // release-then-reacquire serializes cleanly through the FIFO queue.
      e.releasing = true;
      ReleaseLocked(page, /*run_hook=*/true);
      continue;
    }
    // Fresh acquire or upgrade (refs held by peers) through Lock Fusion.
    e.acquiring = true;
    lock.unlock();
    const Status st = fusion_->AcquirePLock(node_, page, mode, timeout_ms);
    fusion_acquires_.Inc();
    lock.lock();
    Entry& e2 = entries_[key];  // may have rehashed
    e2.acquiring = false;
    cv_.notify_all();
    if (!st.ok()) {
      if (!e2.held && e2.refs == 0 && !e2.releasing &&
          !e2.release_requested) {
        entries_.erase(key);
      }
      return st;
    }
    e2.held = true;
    e2.mode = std::max(e2.mode, mode);
    ++e2.refs;
    return Status::OK();
  }
}

bool PLockManager::TryPinLocal(PageId page, LockMode mode) {
  MutexLock lock(mu_);
  auto it = entries_.find(page.Pack());
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (!e.held || e.releasing || e.release_requested ||
      !Sufficient(e.mode, mode)) {
    return false;
  }
  ++e.refs;
  local_grants_.Inc();
  if (e.leased) {
    e.leased = false;
    lease_regrants_.Inc();
  }
  return true;
}

void PLockManager::Unpin(PageId page) {
  const uint64_t key = page.Pack();
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  POLARMP_CHECK(it != entries_.end());
  Entry& e = it->second;
  POLARMP_CHECK_GT(e.refs, 0u);
  --e.refs;
  if (e.refs == 0 && (e.release_requested || !lazy_release_) &&
      !e.releasing) {
    if (!e.acquiring) {
      e.releasing = true;
      ReleaseLocked(page, /*run_hook=*/true);
    } else if (e.held) {
      PartialReleaseLocked(page);
    }
  }
  cv_.notify_all();
}

void PLockManager::OnNegotiate(PageId page) {
  const uint64_t key = page.Pack();
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;  // already released
  Entry& e = it->second;
  e.release_requested = true;
  if (e.held && e.refs == 0 && !e.releasing) {
    if (!e.acquiring) {
      e.releasing = true;
      ReleaseLocked(page, /*run_hook=*/true);
    } else {
      PartialReleaseLocked(page);
    }
  }
}

Status PLockManager::ForceRelease(PageId page) {
  const uint64_t key = page.Pack();
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return Status::OK();
  Entry& e = it->second;
  if (!e.held) {
    if (e.acquiring || e.releasing) {
      return Status::Busy("PLock entry busy");
    }
    entries_.erase(it);
    return Status::OK();
  }
  if (e.refs > 0 || e.acquiring || e.releasing) {
    return Status::Busy("PLock in use");
  }
  e.releasing = true;
  // The evicting caller already flushed the frame; running the hook here
  // would deadlock on the frame's mid-eviction state.
  ReleaseLocked(page, /*run_hook=*/false);
  return Status::OK();
}

Status PLockManager::DemoteToLease(PageId page) {
  const uint64_t key = page.Pack();
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return Status::OK();
  Entry& e = it->second;
  if (!e.held) {
    if (e.acquiring || e.releasing) {
      return Status::Busy("PLock entry busy");
    }
    entries_.erase(it);
    return Status::OK();
  }
  if (e.refs > 0 || e.acquiring || e.releasing) {
    return Status::Busy("PLock in use");
  }
  if (!lazy_release_) {
    // The ablation baseline retains no idle holds; give it back like a
    // plain eviction (the caller already flushed the frame).
    e.releasing = true;
    ReleaseLocked(page, /*run_hook=*/false);
    return Status::OK();
  }
  e.leased = true;
  lease_demotes_.Inc();
  return Status::OK();
}

void PLockManager::ReleaseLease(PageId page) {
  const uint64_t key = page.Pack();
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  if (!e.leased) return;
  if (e.held && e.refs == 0 && !e.acquiring && !e.releasing) {
    e.releasing = true;
    // The page is long gone from the LBP; the hook is a harmless no-op
    // there, and running it keeps the release path uniform.
    ReleaseLocked(page, /*run_hook=*/true);
    return;
  }
  // The hold became active again (or is mid-transition); it is no longer
  // a lease, just a normal retained hold.
  e.leased = false;
}

void PLockManager::ReleaseLocked(PageId page, bool run_hook) {
  negotiated_releases_.Inc();
  mu_.unlock();
  {
    // Doorbell batch: the hook's dirty-push NotifyPush and the release RPC
    // ride one fabric operation.
    RpcBatch batch(fusion_->fabric(), node_, kPmfsEndpoint);
    if (run_hook && before_release_) {
      const Status s = before_release_(page);
      if (!s.ok()) {
        POLARMP_LOG(Warn) << "before-release hook failed for page "
                          << page.ToString() << ": " << s.ToString();
      }
    }
    const Status s = fusion_->ReleasePLock(node_, page);
    if (!s.ok() && !s.IsNotFound()) {
      POLARMP_LOG(Warn) << "PLock release failed: " << s.ToString();
    }
  }
  mu_.lock();
  entries_.erase(page.Pack());
  cv_.notify_all();
}

void PLockManager::PartialReleaseLocked(PageId page) {
  Entry& e = entries_[page.Pack()];
  e.releasing = true;
  mu_.unlock();
  {
    RpcBatch batch(fusion_->fabric(), node_, kPmfsEndpoint);
    if (before_release_) {
      const Status s = before_release_(page);
      if (!s.ok()) {
        POLARMP_LOG(Warn) << "before-release hook failed for page "
                          << page.ToString() << ": " << s.ToString();
      }
    }
    const Status s = fusion_->ReleasePLock(node_, page);
    if (!s.ok() && !s.IsNotFound()) {
      POLARMP_LOG(Warn) << "partial PLock release failed: " << s.ToString();
    }
  }
  mu_.lock();
  Entry& e2 = entries_[page.Pack()];
  e2.releasing = false;
  e2.release_requested = false;
  if (e2.acquiring) {
    // The queued acquire has not landed yet; we no longer hold anything.
    e2.held = false;
    e2.mode = LockMode::kShared;
  }
  // else: the queued acquire was granted while we released — its fresh
  // hold stands; leave it untouched.
  cv_.notify_all();
}

bool PLockManager::HeldLocally(PageId page, LockMode mode) const {
  MutexLock lock(mu_);
  auto it = entries_.find(page.Pack());
  if (it == entries_.end()) return false;
  return it->second.held && Sufficient(it->second.mode, mode);
}

std::string PLockManager::DebugDump() const {
  MutexLock lock(mu_);
  std::string out = "PLockManager node " + std::to_string(node_) + ":\n";
  for (const auto& [key, e] : entries_) {
    out += "  page " + PageId::Unpack(key).ToString() +
           " held=" + std::to_string(e.held) +
           " mode=" + (e.mode == LockMode::kExclusive ? "X" : "S") +
           " refs=" + std::to_string(e.refs) +
           " rel_req=" + std::to_string(e.release_requested) +
           " acq=" + std::to_string(e.acquiring) +
           " rel=" + std::to_string(e.releasing) +
           " leased=" + std::to_string(e.leased) + "\n";
  }
  return out;
}

void PLockManager::DropAll() {
  MutexLock lock(mu_);
  entries_.clear();
  cv_.notify_all();
}

}  // namespace polarmp
