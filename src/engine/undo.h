#ifndef POLARMP_ENGINE_UNDO_H_
#define POLARMP_ENGINE_UNDO_H_

#include <atomic>
#include <map>
#include <string>

#include "common/lock_rank.h"
#include "dsm/dsm.h"
#include "engine/row.h"

namespace polarmp {

// The row operation an undo record reverses.
enum class UndoType : uint8_t {
  kInsert = 1,  // row did not exist before: rollback removes it
  kUpdate = 2,  // restore previous image/metadata
  kDelete = 3,  // clear the tombstone, restore previous image
};

// Undo record: the previous version of one row plus chain links. Serves
// both MVCC version reconstruction (walk `prev_undo` of the *row*) and
// transaction rollback (walk `trx_prev` of the *transaction*).
struct UndoRecord {
  UndoType type = UndoType::kUpdate;
  SpaceId space = 0;
  int64_t key = 0;
  GTrxId trx = kInvalidGTrxId;   // transaction that wrote this record
  UndoPtr trx_prev = kNullUndoPtr;  // that transaction's previous record

  // Snapshot of the row before the operation (meaningless for kInsert).
  GTrxId prev_trx = kInvalidGTrxId;
  Csn prev_cts = kCsnInit;
  UndoPtr prev_undo = kNullUndoPtr;
  uint8_t prev_flags = 0;
  std::string prev_value;

  std::string Encode() const;
  static StatusOr<UndoRecord> Decode(Slice data);
  size_t EncodedSize() const;
  static constexpr size_t kHeaderSize = 58;
};

// Undo store: one append-only ring segment per node, living in DSM so that
// any node can reconstruct any row's history with one-sided reads (the
// paper keeps undo in shared storage pages reachable through Buffer Fusion;
// a DSM-resident store exercises the same remote-read path with the same
// RDMA pricing, and recovery rebuilds it from kUndoAppend redo records —
// "undo logs are also protected by its redo logs", §4.4).
class UndoStore {
 public:
  UndoStore(Dsm* dsm, uint64_t segment_bytes);

  UndoStore(const UndoStore&) = delete;
  UndoStore& operator=(const UndoStore&) = delete;

  Status AddNode(NodeId node);

  struct AppendResult {
    UndoPtr ptr;        // stable pointer to the record
    uint64_t offset;    // logical offset (for the kUndoAppend redo record)
    std::string bytes;  // encoded record (for the kUndoAppend redo record)
  };

  // Appends a record to `node`'s segment (called by that node's workers;
  // charged as a DSM write). Fails with Internal if the live window would
  // exceed the segment (undo retention outran purge).
  StatusOr<AppendResult> Append(NodeId node, const UndoRecord& rec);

  // Reads a record from any node's segment; `from` prices the access.
  // NotFound if the record was purged.
  StatusOr<UndoRecord> Read(EndpointId from, UndoPtr ptr) const;

  // Purge: declare everything below `offset` in `node`'s segment dead.
  Status FreeUpTo(NodeId node, uint64_t offset);

  // Recovery: raw replay of a kUndoAppend record.
  Status WriteRaw(NodeId node, uint64_t offset, Slice bytes);

  uint64_t head(NodeId node) const;
  uint64_t tail(NodeId node) const;

 private:
  struct Segment {
    // polarlint: unguarded(written once when the segment is created)
    DsmPtr base;
    // Logical append offset (0..7 reserved) and purge watermark; lock-free
    // readers on the history-walk path.
    // polarlint: allow(raw-atomic) ring cursors, not counters
    // polarlint: unguarded(lock-free ring cursor)
    std::atomic<uint64_t> head{8};
    // polarlint: allow(raw-atomic) ring cursors, not counters
    // polarlint: unguarded(lock-free ring cursor)
    std::atomic<uint64_t> tail{8};
    // Serializes appenders only; readers go through the atomic cursors.
    RankedMutex append_mu{LockRank::kUndoSegment, "undo.segment_append"};
  };

  // Maps a logical offset + length to a non-wrapping physical range,
  // applying the skip-padding rule used by Append.
  uint64_t Physical(uint64_t offset) const { return offset % capacity_; }

  Dsm* const dsm_;
  const uint64_t capacity_;
  mutable RankedMutex mu_{LockRank::kUndoTable, "undo.segments"};
  // Guards the map only: Segment objects are never erased, so a Segment*
  // looked up under mu_ stays valid after the lock is dropped.
  std::map<NodeId, std::unique_ptr<Segment>> segments_ GUARDED_BY(mu_);
};

}  // namespace polarmp

#endif  // POLARMP_ENGINE_UNDO_H_
