#ifndef POLARMP_ENGINE_PAGE_H_
#define POLARMP_ENGINE_PAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/row.h"

namespace polarmp {

inline constexpr PageNo kInvalidPageNo = UINT32_MAX;
// Virtual page number used for the per-tree index PLock that serializes
// structure modifications (§4.3.1 mini-transactions).
inline constexpr PageNo kIndexLockPageNo = UINT32_MAX - 1;

// Slotted B-tree page over a raw buffer (the LBP frame / DBP frame / storage
// page are all this layout):
//
//   [header 40B][row heap, grows up ...free... slot dir, grows down]
//
// The slot directory holds 2-byte heap offsets sorted by row key. The
// header carries the LLSN stamp that orders this page's redo across nodes
// (§4.4) and the leaf chain links.
//
// Page does not own its buffer and has no locking; callers hold the frame
// latch. All mutators are used both by the live engine and by redo replay,
// which is what keeps replay physiological and idempotent.
class Page {
 public:
  static constexpr size_t kHeaderSize = 40;

  Page(char* buf, uint32_t page_size) : buf_(buf), page_size_(page_size) {}

  // Formats the buffer as an empty page.
  void Init(PageId id, uint8_t level, PageNo prev, PageNo next);

  // --- header accessors ---
  PageId id() const;
  Llsn llsn() const;
  void set_llsn(Llsn llsn);
  uint8_t level() const;
  bool is_leaf() const { return level() == 0; }
  uint16_t nslots() const;
  PageNo prev() const;
  PageNo next() const;
  void set_links(PageNo prev, PageNo next);

  // --- row access ---
  // Lower-bound slot index for `key` (first slot with row key >= key).
  int LowerBound(int64_t key) const;
  // Exact-match slot index, or -1.
  int FindSlot(int64_t key) const;

  StatusOr<RowView> RowAt(int slot) const;
  int64_t KeyAt(int slot) const;

  // In-place metadata mutation (fixed-width fields; no size change).
  void SetRowTrx(int slot, GTrxId trx);
  void SetRowCts(int slot, Csn cts);
  void SetRowUndoPtr(int slot, UndoPtr undo);
  void SetRowFlags(int slot, uint8_t flags);

  // Upserts a serialized row image: replaces the row with the same key or
  // inserts a new slot. Fails with kInternal("page full") if there is no
  // room even after compaction; callers then split.
  Status WriteRow(Slice row_image);
  // Physically removes the row with `key` (no-op NotFound if absent).
  Status RemoveRow(int64_t key);

  // True if WriteRow of `row_size` bytes would succeed.
  bool HasRoomFor(size_t row_size) const;
  // Free bytes (contiguous + reclaimable garbage).
  size_t FreeSpace() const;
  size_t UsedSpace() const;

  // Moves the upper half of the rows (by slot order) into `right`, which
  // must be an empty initialized page. Returns the first key moved (the
  // separator). Used by splits.
  int64_t MoveUpperHalfTo(Page* right);

  // Copies every row (slot order) into `out` as concatenated images.
  void CopyAllRows(std::string* out) const;
  // Copies rows in slot range [from, to) as concatenated images.
  std::string CopyRowsInRange(int from, int to) const;
  // Drops every row with key >= from_key (split left-half truncation).
  void TruncateFromKey(int64_t from_key);
  // Bulk-loads rows from concatenated images into an empty page.
  Status LoadRows(Slice images);

  char* raw() { return buf_; }
  const char* raw() const { return buf_; }
  uint32_t page_size() const { return page_size_; }

  // Reads just the LLSN stamp out of a raw page buffer.
  static Llsn PeekLlsn(const char* buf);

 private:
  uint16_t SlotOffset(int slot) const;
  void SetSlotOffset(int slot, uint16_t off);
  size_t SlotDirStart() const { return page_size_ - 2 * nslots(); }
  uint32_t heap_top() const;
  void set_heap_top(uint32_t v);
  uint32_t garbage() const;
  void set_garbage(uint32_t v);
  void set_nslots(uint16_t n);

  // Rewrites the heap dropping dead space. Slot order preserved.
  void Compact();
  // Reformats the heap + slot directory from the given row images (already
  // in slot order).
  void RebuildFrom(const std::vector<std::string>& rows);

  char* buf_;
  uint32_t page_size_;
};

}  // namespace polarmp

#endif  // POLARMP_ENGINE_PAGE_H_
