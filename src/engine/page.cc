#include "engine/page.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace polarmp {

namespace {
constexpr size_t kSpaceOff = 0;
constexpr size_t kPageNoOff = 4;
constexpr size_t kLlsnOff = 8;
constexpr size_t kLevelOff = 16;
constexpr size_t kNslotsOff = 18;
constexpr size_t kPrevOff = 20;
constexpr size_t kNextOff = 24;
constexpr size_t kHeapTopOff = 28;
constexpr size_t kGarbageOff = 32;
}  // namespace

void Page::Init(PageId id, uint8_t level, PageNo prev, PageNo next) {
  std::memset(buf_, 0, page_size_);
  EncodeFixed32(buf_ + kSpaceOff, id.space);
  EncodeFixed32(buf_ + kPageNoOff, id.page_no);
  EncodeFixed64(buf_ + kLlsnOff, 0);
  buf_[kLevelOff] = static_cast<char>(level);
  EncodeFixed16(buf_ + kNslotsOff, 0);
  EncodeFixed32(buf_ + kPrevOff, prev);
  EncodeFixed32(buf_ + kNextOff, next);
  EncodeFixed32(buf_ + kHeapTopOff, static_cast<uint32_t>(kHeaderSize));
  EncodeFixed32(buf_ + kGarbageOff, 0);
}

PageId Page::id() const {
  return PageId{DecodeFixed32(buf_ + kSpaceOff), DecodeFixed32(buf_ + kPageNoOff)};
}
Llsn Page::llsn() const { return DecodeFixed64(buf_ + kLlsnOff); }
void Page::set_llsn(Llsn llsn) { EncodeFixed64(buf_ + kLlsnOff, llsn); }
Llsn Page::PeekLlsn(const char* buf) { return DecodeFixed64(buf + kLlsnOff); }
uint8_t Page::level() const { return static_cast<uint8_t>(buf_[kLevelOff]); }
uint16_t Page::nslots() const { return DecodeFixed16(buf_ + kNslotsOff); }
void Page::set_nslots(uint16_t n) { EncodeFixed16(buf_ + kNslotsOff, n); }
PageNo Page::prev() const { return DecodeFixed32(buf_ + kPrevOff); }
PageNo Page::next() const { return DecodeFixed32(buf_ + kNextOff); }
void Page::set_links(PageNo prev, PageNo next) {
  EncodeFixed32(buf_ + kPrevOff, prev);
  EncodeFixed32(buf_ + kNextOff, next);
}
uint32_t Page::heap_top() const { return DecodeFixed32(buf_ + kHeapTopOff); }
void Page::set_heap_top(uint32_t v) { EncodeFixed32(buf_ + kHeapTopOff, v); }
uint32_t Page::garbage() const { return DecodeFixed32(buf_ + kGarbageOff); }
void Page::set_garbage(uint32_t v) { EncodeFixed32(buf_ + kGarbageOff, v); }

uint16_t Page::SlotOffset(int slot) const {
  return DecodeFixed16(buf_ + page_size_ - 2 * (slot + 1));
}
void Page::SetSlotOffset(int slot, uint16_t off) {
  EncodeFixed16(buf_ + page_size_ - 2 * (slot + 1), off);
}

int64_t Page::KeyAt(int slot) const {
  return static_cast<int64_t>(
      DecodeFixed64(buf_ + SlotOffset(slot) + kRowKeyOffset));
}

int Page::LowerBound(int64_t key) const {
  int lo = 0, hi = nslots();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (KeyAt(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int Page::FindSlot(int64_t key) const {
  const int idx = LowerBound(key);
  if (idx < nslots() && KeyAt(idx) == key) return idx;
  return -1;
}

StatusOr<RowView> Page::RowAt(int slot) const {
  POLARMP_CHECK_GE(slot, 0);
  POLARMP_CHECK_LT(slot, nslots());
  const uint16_t off = SlotOffset(slot);
  return DecodeRow(buf_ + off, page_size_ - off);
}

void Page::SetRowTrx(int slot, GTrxId trx) {
  EncodeFixed64(buf_ + SlotOffset(slot) + kRowTrxOffset, trx);
}
void Page::SetRowCts(int slot, Csn cts) {
  EncodeFixed64(buf_ + SlotOffset(slot) + kRowCtsOffset, cts);
}
void Page::SetRowUndoPtr(int slot, UndoPtr undo) {
  EncodeFixed64(buf_ + SlotOffset(slot) + kRowUndoOffset, undo);
}
void Page::SetRowFlags(int slot, uint8_t flags) {
  buf_[SlotOffset(slot) + kRowFlagsOffset] = static_cast<char>(flags);
}

size_t Page::FreeSpace() const {
  return (SlotDirStart() - heap_top()) + garbage();
}

size_t Page::UsedSpace() const { return page_size_ - FreeSpace() - kHeaderSize; }

bool Page::HasRoomFor(size_t row_size) const {
  // Worst case needs a new slot entry as well.
  return FreeSpace() >= row_size + 2;
}

Status Page::WriteRow(Slice row_image) {
  POLARMP_CHECK_GE(row_image.size(), kRowHeaderSize);
  const int64_t key =
      static_cast<int64_t>(DecodeFixed64(row_image.data() + kRowKeyOffset));
  const int existing = FindSlot(key);

  if (existing >= 0) {
    const uint16_t off = SlotOffset(existing);
    const size_t old_size = RowSizeAt(buf_ + off);
    if (old_size >= row_image.size()) {
      // Shrinking or equal: rewrite in place, trailing bytes become garbage.
      std::memcpy(buf_ + off, row_image.data(), row_image.size());
      set_garbage(garbage() + static_cast<uint32_t>(old_size - row_image.size()));
      return Status::OK();
    }
    // Growing: retire the old image, append a new one.
    if (heap_top() + row_image.size() > SlotDirStart()) {
      if (FreeSpace() < row_image.size()) {
        return Status::Internal("page full");
      }
      set_garbage(garbage() + static_cast<uint32_t>(old_size));
      // Mark old slot dead by compacting without it: simplest is to record
      // garbage then compact; temporarily point the slot at the new image
      // after compaction below.
      // Remove old image from live set by zero-length trick: rewrite via
      // full compaction path.
      std::vector<std::string> rows;
      rows.reserve(nslots());
      for (int i = 0; i < nslots(); ++i) {
        if (i == existing) {
          rows.emplace_back(row_image.data(), row_image.size());
        } else {
          const uint16_t o = SlotOffset(i);
          rows.emplace_back(buf_ + o, RowSizeAt(buf_ + o));
        }
      }
      RebuildFrom(rows);
      return Status::OK();
    }
    const uint32_t new_off = heap_top();
    std::memcpy(buf_ + new_off, row_image.data(), row_image.size());
    set_heap_top(new_off + static_cast<uint32_t>(row_image.size()));
    set_garbage(garbage() + static_cast<uint32_t>(old_size));
    SetSlotOffset(existing, static_cast<uint16_t>(new_off));
    return Status::OK();
  }

  // Fresh insert.
  if (heap_top() + row_image.size() + 2 * (nslots() + 1u) > page_size_) {
    if (FreeSpace() < row_image.size() + 2) {
      return Status::Internal("page full");
    }
    Compact();
  }
  const uint32_t off = heap_top();
  std::memcpy(buf_ + off, row_image.data(), row_image.size());
  set_heap_top(off + static_cast<uint32_t>(row_image.size()));

  const int pos = LowerBound(key);
  const int n = nslots();
  // Shift slot entries [pos, n) down by one (directory grows downward, so
  // shifting "down" means moving toward lower addresses).
  for (int i = n; i > pos; --i) {
    SetSlotOffset(i, SlotOffset(i - 1));
  }
  set_nslots(static_cast<uint16_t>(n + 1));
  SetSlotOffset(pos, static_cast<uint16_t>(off));
  return Status::OK();
}

Status Page::RemoveRow(int64_t key) {
  const int slot = FindSlot(key);
  if (slot < 0) return Status::NotFound("row missing in page");
  const uint16_t off = SlotOffset(slot);
  set_garbage(garbage() + static_cast<uint32_t>(RowSizeAt(buf_ + off)));
  const int n = nslots();
  for (int i = slot; i < n - 1; ++i) {
    SetSlotOffset(i, SlotOffset(i + 1));
  }
  set_nslots(static_cast<uint16_t>(n - 1));
  return Status::OK();
}

void Page::Compact() {
  std::vector<std::string> rows;
  rows.reserve(nslots());
  for (int i = 0; i < nslots(); ++i) {
    const uint16_t o = SlotOffset(i);
    rows.emplace_back(buf_ + o, RowSizeAt(buf_ + o));
  }
  RebuildFrom(rows);
}

void Page::RebuildFrom(const std::vector<std::string>& rows) {
  uint32_t top = static_cast<uint32_t>(kHeaderSize);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::memcpy(buf_ + top, rows[i].data(), rows[i].size());
    SetSlotOffset(static_cast<int>(i), static_cast<uint16_t>(top));
    top += static_cast<uint32_t>(rows[i].size());
  }
  set_nslots(static_cast<uint16_t>(rows.size()));
  set_heap_top(top);
  set_garbage(0);
}

int64_t Page::MoveUpperHalfTo(Page* right) {
  const int n = nslots();
  POLARMP_CHECK_GE(n, 2);
  const int split = n / 2;
  int64_t separator = KeyAt(split);
  std::vector<std::string> lower, upper;
  lower.reserve(split);
  upper.reserve(n - split);
  for (int i = 0; i < n; ++i) {
    const uint16_t o = SlotOffset(i);
    auto& dst = (i < split) ? lower : upper;
    dst.emplace_back(buf_ + o, RowSizeAt(buf_ + o));
  }
  right->RebuildFrom(upper);
  RebuildFrom(lower);
  return separator;
}

std::string Page::CopyRowsInRange(int from, int to) const {
  std::string out;
  for (int i = from; i < to && i < nslots(); ++i) {
    const uint16_t o = SlotOffset(i);
    out.append(buf_ + o, RowSizeAt(buf_ + o));
  }
  return out;
}

void Page::TruncateFromKey(int64_t from_key) {
  const int keep = LowerBound(from_key);
  std::vector<std::string> rows;
  rows.reserve(keep);
  for (int i = 0; i < keep; ++i) {
    const uint16_t o = SlotOffset(i);
    rows.emplace_back(buf_ + o, RowSizeAt(buf_ + o));
  }
  RebuildFrom(rows);
}

void Page::CopyAllRows(std::string* out) const {
  for (int i = 0; i < nslots(); ++i) {
    const uint16_t o = SlotOffset(i);
    out->append(buf_ + o, RowSizeAt(buf_ + o));
  }
}

Status Page::LoadRows(Slice images) {
  size_t pos = 0;
  while (pos < images.size()) {
    if (images.size() - pos < kRowHeaderSize) {
      return Status::Corruption("truncated row image batch");
    }
    const size_t sz = RowSizeAt(images.data() + pos);
    if (pos + sz > images.size()) {
      return Status::Corruption("truncated row image batch");
    }
    POLARMP_RETURN_IF_ERROR(WriteRow(Slice(images.data() + pos, sz)));
    pos += sz;
  }
  return Status::OK();
}

}  // namespace polarmp
