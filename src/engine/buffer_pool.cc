#include "engine/buffer_pool.h"

#include <cstring>

#include "rdma/rpc.h"

namespace polarmp {

namespace {
constexpr int kEvictionAttempts = 8;
}  // namespace

BufferPool::BufferPool(NodeId node, Fabric* fabric,
                       BufferFusion* buffer_fusion, PageStore* page_store,
                       LlsnClock* llsn_clock, const Options& options)
    : node_(node),
      fabric_(fabric),
      buffer_fusion_(buffer_fusion),
      page_store_(page_store),
      llsn_clock_(llsn_clock),
      options_(options),
      // polarlint: allow(raw-atomic) one-sided RDMA target (kLbpFlagsRegion)
      invalid_flags_(new std::atomic<uint64_t>[options.frames]) {
  frames_.reserve(options_.frames);
  for (uint32_t i = 0; i < options_.frames; ++i) {
    auto f = std::make_unique<Frame>();
    f->data = std::make_unique<char[]>(options_.page_size);
    frames_.push_back(std::move(f));
    invalid_flags_[i].store(0, std::memory_order_relaxed);
  }
  const Status s = fabric_->RegisterRegion(
      node_, kLbpFlagsRegion, invalid_flags_.get(),
      options_.frames * sizeof(uint64_t));
  POLARMP_CHECK(s.ok()) << s.ToString();
}

BufferPool::~BufferPool() {
  // polarlint: allow(unchecked-fabric-status) teardown: the fabric may
  // already have dropped the endpoint; there is no caller to report to.
  (void)fabric_->DeregisterRegion(node_, kLbpFlagsRegion);
}

StatusOr<BufferPool::Handle> BufferPool::GetPage(PageId page_id, bool create) {
  const uint64_t key = page_id.Pack();
  UniqueLock lock(mu_);
  for (;;) {
    auto it = page_to_frame_.find(key);
    if (it != page_to_frame_.end()) {
      const uint32_t idx = it->second;
      Frame& f = *frames_[idx];
      if (f.installing) {
        cv_.wait(lock);
        continue;
      }
      ++f.pins;
      f.last_used = ++tick_;
      lock.unlock();
      if (invalid_flags_[idx].load(std::memory_order_acquire) != 0) {
        // Another node pushed a newer version while we held no PLock on the
        // page; fetch the latest from the DBP (Fig. 4 invalid + r_addr path).
        Status refetch = Status::OK();
        {
          WriterLock frame_latch(f.latch);
          if (invalid_flags_[idx].load(std::memory_order_acquire) != 0) {
            invalid_refetches_.Inc();
            refetch = buffer_fusion_->FetchPage(node_, f.r_addr, f.data.get());
            if (refetch.ok()) {
              invalid_flags_[idx].store(0, std::memory_order_release);
              llsn_clock_->Observe(Page::PeekLlsn(f.data.get()));
            }
          }
        }
        if (!refetch.ok()) {
          Unpin(Handle{idx, f.data.get()});
          return refetch;
        }
      } else {
        hits_.Inc();
      }
      return Handle{idx, f.data.get()};
    }

    POLARMP_ASSIGN_OR_RETURN(uint32_t idx, AllocFrameLocked());
    // The eviction inside AllocFrameLocked may have dropped mu_; someone
    // else could have installed the page meanwhile.
    if (page_to_frame_.count(key) != 0) {
      frames_[idx]->used = false;
      cv_.notify_all();
      continue;
    }
    Frame& f = *frames_[idx];
    f.used = true;
    f.installing = true;
    f.page_id = page_id;
    f.pins = 1;
    f.dirty = false;
    f.newest_lsn = 0;
    f.last_used = ++tick_;
    invalid_flags_[idx].store(0, std::memory_order_release);
    page_to_frame_[key] = idx;
    lock.unlock();

    const Status load = LoadFrame(idx, page_id, create);

    lock.lock();
    f.installing = false;
    cv_.notify_all();
    if (!load.ok()) {
      page_to_frame_.erase(key);
      f.used = false;
      f.pins = 0;
      return load;
    }
    return Handle{idx, f.data.get()};
  }
}

Status BufferPool::LoadFrame(uint32_t idx, PageId page_id, bool create) {
  Frame& f = *frames_[idx];
  POLARMP_ASSIGN_OR_RETURN(
      BufferFusion::RegisterResult reg,
      buffer_fusion_->RegisterCopy(node_, page_id, FlagOffset(idx)));
  f.r_addr = reg.frame;
  if (create) {
    std::memset(f.data.get(), 0, options_.page_size);
    return Status::OK();
  }
  if (reg.present) {
    dbp_fetches_.Inc();
    POLARMP_RETURN_IF_ERROR(
        buffer_fusion_->FetchPage(node_, f.r_addr, f.data.get()));
  } else {
    storage_loads_.Inc();
    POLARMP_RETURN_IF_ERROR(page_store_->ReadPage(page_id, f.data.get()));
    // "Once loaded by a node, the page is registered to the DBP and
    // remotely written to it" (§4.2).
    POLARMP_RETURN_IF_ERROR(PushFrame(idx, /*clean_load=*/true));
  }
  llsn_clock_->Observe(Page::PeekLlsn(f.data.get()));
  return Status::OK();
}

Status BufferPool::PushFrame(uint32_t idx, bool clean_load) {
  Frame& f = *frames_[idx];
  if (!clean_load) {
    // WAL rule (§4.2/§4.4): logs covering the page reach storage before the
    // page can leave this node.
    POLARMP_RETURN_IF_ERROR(force_log_(f.newest_lsn));
  }
  const Llsn llsn = Page::PeekLlsn(f.data.get());
  POLARMP_RETURN_IF_ERROR(
      buffer_fusion_->PushPage(node_, f.r_addr, f.data.get()));
  POLARMP_RETURN_IF_ERROR(
      buffer_fusion_->NotifyPush(node_, f.page_id, llsn, clean_load));
  if (note_push_) note_push_(f.page_id);
  return Status::OK();
}

StatusOr<uint32_t> BufferPool::AllocFrameLocked() {
  for (int attempt = 0; attempt < kEvictionAttempts; ++attempt) {
    // Free frame?
    uint32_t victim = UINT32_MAX;
    uint64_t oldest = UINT64_MAX;
    for (uint32_t i = 0; i < frames_.size(); ++i) {
      Frame& f = *frames_[i];
      if (!f.used && !f.installing) return i;
      if (f.used && !f.installing && f.pins == 0 && f.last_used < oldest) {
        oldest = f.last_used;
        victim = i;
      }
    }
    if (victim == UINT32_MAX) {
      cv_.wait_for(mu_, std::chrono::milliseconds(10));
      continue;
    }
    const Status s = EvictLocked(victim);
    if (s.ok()) return victim;
    // Busy victim (e.g., its PLock is mid-acquire): try another.
  }
  return Status::Internal("LBP exhausted: no evictable frame");
}

Status BufferPool::EvictLocked(uint32_t idx) {
  Frame& f = *frames_[idx];
  POLARMP_CHECK_EQ(f.pins, 0u);
  const PageId old_page = f.page_id;
  f.installing = true;
  const bool was_dirty = f.dirty;
  mu_.unlock();

  Status st = Status::OK();
  {
    // Doorbell batch: the eviction's control-plane RPCs (push notify, PLock
    // release, copy unregister) ride one fabric operation.
    RpcBatch batch(fabric_, node_, kPmfsEndpoint);
    if (was_dirty) {
      st = PushFrame(idx, /*clean_load=*/false);
    }
    if (st.ok() && release_plock_) {
      st = release_plock_(old_page);
    }
    if (st.ok()) {
      st = buffer_fusion_->UnregisterCopy(node_, old_page);
    }
  }

  mu_.lock();
  f.installing = false;
  cv_.notify_all();
  if (!st.ok()) return st;
  f.dirty = false;
  page_to_frame_.erase(old_page.Pack());
  f.used = false;
  return Status::OK();
}

BufferPool::Handle BufferPool::TryGetCached(PageId page_id) {
  MutexLock lock(mu_);
  auto it = page_to_frame_.find(page_id.Pack());
  if (it == page_to_frame_.end()) return Handle{};
  Frame& f = *frames_[it->second];
  if (f.installing) return Handle{};
  if (invalid_flags_[it->second].load(std::memory_order_acquire) != 0) {
    return Handle{};  // stale copy: pointless to backfill
  }
  ++f.pins;
  f.last_used = ++tick_;
  return Handle{it->second, f.data.get()};
}

void BufferPool::Unpin(const Handle& handle) {
  MutexLock lock(mu_);
  Frame& f = *frames_[handle.frame];
  POLARMP_CHECK_GT(f.pins, 0u);
  --f.pins;
  if (f.pins == 0) cv_.notify_all();
}

void BufferPool::Latch(const Handle& handle, LockMode mode) {
  Frame& f = *frames_[handle.frame];
  if (mode == LockMode::kExclusive) {
    f.latch.lock();
  } else {
    f.latch.lock_shared();
  }
}

void BufferPool::Unlatch(const Handle& handle, LockMode mode) {
  Frame& f = *frames_[handle.frame];
  if (mode == LockMode::kExclusive) {
    f.latch.unlock();
  } else {
    f.latch.unlock_shared();
  }
}

void BufferPool::AssertLatched(const Handle& handle, LockMode mode) const {
  const Frame& f = *frames_[handle.frame];
  if (mode == LockMode::kExclusive) {
    f.latch.AssertHeld();
  } else {
    f.latch.AssertAnyHeld();
  }
}

void BufferPool::MarkDirty(const Handle& handle, Lsn newest_lsn) {
  // The mini-transaction must still hold the frame exclusively: a dirty
  // marking outside the X latch could interleave with a concurrent push and
  // publish a torn page.
  frames_[handle.frame]->latch.AssertHeld();
  MutexLock lock(mu_);
  Frame& f = *frames_[handle.frame];
  f.dirty = true;
  if (newest_lsn > f.newest_lsn) f.newest_lsn = newest_lsn;
}

Status BufferPool::FlushPageForRelease(PageId page_id) {
  UniqueLock lock(mu_);
  for (;;) {
    auto it = page_to_frame_.find(page_id.Pack());
    if (it == page_to_frame_.end()) return Status::OK();
    Frame& f = *frames_[it->second];
    if (f.installing) {
      cv_.wait(lock);
      continue;
    }
    if (!f.dirty) return Status::OK();
    const uint32_t idx = it->second;
    ++f.pins;  // shield from eviction
    lock.unlock();

    // Shared latch keeps mini-transactions from mutating mid-push; the
    // dirty/clean transition happens under the same latch hold.
    f.latch.lock_shared();
    const Status st = PushFrame(idx, /*clean_load=*/false);
    if (st.ok()) {
      MutexLock relock(mu_);
      f.dirty = false;
    }
    f.latch.unlock_shared();

    lock.lock();
    POLARMP_CHECK_GT(f.pins, 0u);
    --f.pins;
    cv_.notify_all();
    return st;
  }
}

void BufferPool::DropAll() {
  MutexLock lock(mu_);
  page_to_frame_.clear();
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    Frame& f = *frames_[i];
    f.used = false;
    f.installing = false;
    f.dirty = false;
    f.pins = 0;
    f.newest_lsn = 0;
    invalid_flags_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<PageId> BufferPool::DirtyPages() const {
  MutexLock lock(mu_);
  std::vector<PageId> out;
  for (const auto& f : frames_) {
    if (f->used && f->dirty) out.push_back(f->page_id);
  }
  return out;
}

}  // namespace polarmp
