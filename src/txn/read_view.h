#ifndef POLARMP_TXN_READ_VIEW_H_
#define POLARMP_TXN_READ_VIEW_H_

#include "common/types.h"

namespace polarmp {

// A transaction's read view (§4.1): its own g_trx_id plus a CTS fetched
// from the TSO. A row version is visible iff it was committed at or before
// the view's CTS (or is the transaction's own write).
//
// Under read committed the view is refreshed at every statement (via the
// Linear Lamport cache); under snapshot isolation it is fixed at the first
// read.
struct ReadView {
  GTrxId own = kInvalidGTrxId;
  Csn cts = kCsnInit;

  bool VisibleCts(Csn row_cts) const { return row_cts <= cts; }
};

}  // namespace polarmp

#endif  // POLARMP_TXN_READ_VIEW_H_
