#ifndef POLARMP_TXN_TIT_H_
#define POLARMP_TXN_TIT_H_

#include <atomic>
#include <map>
#include <memory>

#include "common/lock_rank.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "rdma/fabric.h"

namespace polarmp {

// Fabric region at each node endpoint holding its TIT slots.
inline constexpr uint32_t kTitRegion = 1;

// Transaction Information Table (§4.1, Fig. 3).
//
// Every node keeps a fixed array of slots {pointer, CTS, version, ref} in
// RDMA-registered memory. Transaction metadata is fully decentralized: a
// node allocates slots for its own transactions locally, and any node can
// read any slot with a one-sided RDMA read, addressed by the slot index
// carried in the row's g_trx_id.
//
// Slot lifecycle and the lock-free read protocol:
//   * allocation claims a free slot (pointer CAS), bumps `version`
//     (release), THEN resets `cts` to kCsnInit;
//   * readers load `cts` first, `version` second. With those orders, a
//     version match guarantees the cts belongs to the expected transaction,
//     and any mismatch means the slot was recycled — which by the recycle
//     rule implies the old transaction's changes are visible to every view
//     (Algorithm 1's kCsnMin case);
//   * a slot is recycled only when its CTS (or, for rolled-back
//     transactions, the TSO value observed at rollback completion) is below
//     the global minimum view broadcast by Transaction Fusion.
//
// `ref` is the waiting-transaction flag of the RLock protocol (§4.3.2):
// waiters set it remotely; a finishing transaction that sees it set pings
// Lock Fusion to wake them.
class Tit {
 public:
  struct alignas(64) Slot {
    // Slot fields are targets of one-sided RDMA reads/CASes from remote
    // nodes, so they must stay raw per-field atomics (Fig. 3's layout).
    // polarlint: allow(raw-atomic) one-sided RDMA target
    std::atomic<uint64_t> version{0};
    // polarlint: allow(raw-atomic) one-sided RDMA target
    std::atomic<uint64_t> cts{kCsnInit};
    // polarlint: allow(raw-atomic) one-sided RDMA target
    std::atomic<uint64_t> ref{0};
    // polarlint: allow(raw-atomic) one-sided RDMA target
    std::atomic<uint64_t> trx_ptr{0};  // local trx id; 0 = free slot
  };

  struct SlotRead {
    Csn cts = kCsnInit;
    uint32_t version = 0;
  };

  Tit(Fabric* fabric, uint32_t slots_per_node);
  ~Tit();

  Tit(const Tit&) = delete;
  Tit& operator=(const Tit&) = delete;

  // Allocates (or re-registers after restart) the node's table. A fresh
  // table seeds every slot's version with `base_version` (derived from the
  // node's durable restart epoch) so g_trx_ids minted before a full-cluster
  // restart can never collide with post-restart slot versions.
  Status AddNode(NodeId node, uint64_t base_version = 0);

  // Graceful-departure flag: a departed node's table stays readable (its
  // memory lives in this registry) so rows written by its committed
  // transactions remain resolvable after the node leaves. A *crashed* node
  // is not departed: its TIT reads fail Unavailable until recovery, which
  // is what keeps its in-flight transactions' rows conservatively locked.
  void MarkDeparted(NodeId node, bool departed);

  // True once the node has been marked departed (graceful stop or completed
  // takeover/recovery). A crashed-but-unrecovered node reads false, which
  // is how Cluster::DeadNodes distinguishes "needs takeover" from "already
  // re-baselined".
  bool IsDeparted(NodeId node) const;

  // Restart path: frees every slot while bumping versions, so g_trx_ids
  // minted before the crash resolve as "slot reused" (their transactions
  // were either committed — correct — or rolled back by recovery before the
  // node serves reads).
  void ResetNode(NodeId node);

  // ---- owner-node operations ----
  // Claims a free slot for local transaction `trx_local_id`.
  StatusOr<GTrxId> AllocSlot(NodeId node, TrxId trx_local_id);
  // Marks the slot "in commit" (CTS fetched, log force in flight) by storing
  // the CTS with kCsnProvisionalBit set. Called BEFORE the log force;
  // readers that observe the bit resolve the transaction as active, because
  // the finalizing CTS is fetched after the force and therefore exceeds
  // every view created while the bit was visible. Closes the SI
  // commit-publication lost-update window (DESIGN.md §6).
  void PublishProvisionalCts(GTrxId trx, Csn cts);
  // Publishes the final commit timestamp (the INIT/provisional→CTS
  // transition).
  void PublishCts(GTrxId trx, Csn cts);
  // Waiting-transaction flag (read/cleared by the owner at finish).
  bool ReadAndClearRef(GTrxId trx);
  // Recycles the slot (caller enforced the global-min-view rule).
  void FreeSlot(GTrxId trx);
  // Number of live (allocated) slots on the node, for telemetry/tests.
  uint32_t LiveSlots(NodeId node) const;

  // ---- any-node operations ----
  // One-sided read of {cts, version}; Unavailable if the owner is down.
  StatusOr<SlotRead> ReadSlot(EndpointId from, GTrxId trx) const;
  // One-sided write setting the owner's ref flag (Fig. 6 step 1).
  Status SetRefRemote(EndpointId from, GTrxId trx) const;

  uint32_t slots_per_node() const { return slots_per_node_; }

  // ---- telemetry ------------------------------------------------------------
  // Shims over this instance's registry handles ("tit.*" families); the
  // cross-node read-latency distribution is "tit.remote_read_ns".
  uint64_t slot_allocs() const { return slot_allocs_.Value(); }
  uint64_t remote_slot_reads() const { return remote_slot_reads_.Value(); }
  uint64_t remote_ref_sets() const { return remote_ref_sets_.Value(); }
  void ResetCounters();

 private:
  struct Table {
    std::unique_ptr<Slot[]> slots;
    std::atomic<uint32_t> alloc_hint{0};
  };

  StatusOr<Table*> FindTable(NodeId node) const;

  Fabric* const fabric_;
  const uint32_t slots_per_node_;
  mutable RankedMutex mu_{LockRank::kTit, "tit.tables"};
  // Guards the maps only: Table objects are never erased, so a Table*
  // returned by FindTable stays valid (and its slots are lock-free atomics)
  // after mu_ is dropped.
  std::map<NodeId, std::unique_ptr<Table>> tables_ GUARDED_BY(mu_);
  std::map<NodeId, bool> departed_ GUARDED_BY(mu_);

  obs::Counter slot_allocs_{"tit.slot_allocs"};
  mutable obs::Counter remote_slot_reads_{"tit.remote_slot_reads"};
  mutable obs::Counter remote_ref_sets_{"tit.remote_ref_sets"};
  mutable obs::LatencyHistogram remote_read_ns_{"tit.remote_read_ns"};
};

}  // namespace polarmp

#endif  // POLARMP_TXN_TIT_H_
