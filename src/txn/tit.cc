#include "txn/tit.h"

#include "obs/trace.h"

namespace polarmp {

Tit::Tit(Fabric* fabric, uint32_t slots_per_node)
    : fabric_(fabric), slots_per_node_(slots_per_node) {}

Tit::~Tit() = default;

Status Tit::AddNode(NodeId node, uint64_t base_version) {
  MutexLock lock(mu_);
  auto it = tables_.find(node);
  if (it == tables_.end()) {
    auto table = std::make_unique<Table>();
    table->slots = std::make_unique<Slot[]>(slots_per_node_);
    for (uint32_t i = 0; i < slots_per_node_; ++i) {
      table->slots[i].version.store(base_version, std::memory_order_relaxed);
    }
    it = tables_.emplace(node, std::move(table)).first;
  }
  // (Re-)register with the fabric; a restart re-exposes the same memory.
  const Status s = fabric_->RegisterRegion(
      node, kTitRegion, it->second->slots.get(),
      slots_per_node_ * sizeof(Slot));
  if (!s.ok() && !s.IsAlreadyExists()) return s;
  return Status::OK();
}

void Tit::ResetNode(NodeId node) {
  MutexLock lock(mu_);
  auto it = tables_.find(node);
  if (it == tables_.end()) return;
  Slot* slots = it->second->slots.get();
  for (uint32_t i = 0; i < slots_per_node_; ++i) {
    // Same order as allocation: version first, then cts, so concurrent
    // remote readers resolve to "slot reused".
    slots[i].version.fetch_add(1, std::memory_order_release);
    slots[i].cts.store(kCsnInit, std::memory_order_release);
    slots[i].ref.store(0, std::memory_order_release);
    slots[i].trx_ptr.store(0, std::memory_order_release);
  }
}

StatusOr<Tit::Table*> Tit::FindTable(NodeId node) const {
  MutexLock lock(mu_);
  auto it = tables_.find(node);
  if (it == tables_.end()) {
    return Status::NotFound("TIT missing for node " + std::to_string(node));
  }
  return it->second.get();
}

StatusOr<GTrxId> Tit::AllocSlot(NodeId node, TrxId trx_local_id) {
  POLARMP_ASSIGN_OR_RETURN(Table* table, FindTable(node));
  const uint32_t start =
      table->alloc_hint.fetch_add(1, std::memory_order_relaxed);
  for (uint32_t i = 0; i < slots_per_node_; ++i) {
    const uint32_t idx = (start + i) % slots_per_node_;
    Slot& slot = table->slots[idx];
    uint64_t expected = 0;
    if (!slot.trx_ptr.compare_exchange_strong(expected, trx_local_id,
                                              std::memory_order_acq_rel)) {
      continue;  // occupied
    }
    const uint64_t version =
        slot.version.fetch_add(1, std::memory_order_release) + 1;
    slot.cts.store(kCsnInit, std::memory_order_release);
    slot.ref.store(0, std::memory_order_release);
    slot_allocs_.Inc();
    return MakeGTrxId(node, idx, static_cast<uint32_t>(version));
  }
  // Transient backpressure, not a fault: slot recycling (min-view advance)
  // lags the commit rate. Busy tells clients to retry, matching lock-wait
  // timeouts — Begin() already runs on-demand recycle passes before giving
  // up, so by here the table is genuinely saturated.
  return Status::Busy("TIT exhausted on node " + std::to_string(node));
}

void Tit::PublishProvisionalCts(GTrxId trx, Csn cts) {
  auto table = FindTable(GTrxNode(trx));
  POLARMP_CHECK(table.ok());
  Slot& slot = table.value()->slots[GTrxSlot(trx)];
  POLARMP_CHECK_EQ(
      static_cast<uint32_t>(slot.version.load(std::memory_order_acquire)),
      GTrxVersion(trx));
  slot.cts.store(MakeProvisionalCsn(cts), std::memory_order_release);
}

void Tit::PublishCts(GTrxId trx, Csn cts) {
  auto table = FindTable(GTrxNode(trx));
  POLARMP_CHECK(table.ok());
  Slot& slot = table.value()->slots[GTrxSlot(trx)];
  POLARMP_CHECK_EQ(
      static_cast<uint32_t>(slot.version.load(std::memory_order_acquire)),
      GTrxVersion(trx));
  POLARMP_CHECK(!CsnIsProvisional(cts));
  slot.cts.store(cts, std::memory_order_release);
}

bool Tit::ReadAndClearRef(GTrxId trx) {
  auto table = FindTable(GTrxNode(trx));
  POLARMP_CHECK(table.ok());
  Slot& slot = table.value()->slots[GTrxSlot(trx)];
  return slot.ref.exchange(0, std::memory_order_acq_rel) != 0;
}

void Tit::FreeSlot(GTrxId trx) {
  auto table = FindTable(GTrxNode(trx));
  if (!table.ok()) return;
  Slot& slot = table.value()->slots[GTrxSlot(trx)];
  slot.trx_ptr.store(0, std::memory_order_release);
}

uint32_t Tit::LiveSlots(NodeId node) const {
  auto table = FindTable(node);
  if (!table.ok()) return 0;
  uint32_t live = 0;
  for (uint32_t i = 0; i < slots_per_node_; ++i) {
    if (table.value()->slots[i].trx_ptr.load(std::memory_order_acquire) != 0) {
      ++live;
    }
  }
  return live;
}

void Tit::MarkDeparted(NodeId node, bool departed) {
  MutexLock lock(mu_);
  departed_[node] = departed;
}

bool Tit::IsDeparted(NodeId node) const {
  MutexLock lock(mu_);
  auto it = departed_.find(node);
  return it != departed_.end() && it->second;
}

StatusOr<Tit::SlotRead> Tit::ReadSlot(EndpointId from, GTrxId trx) const {
  const NodeId owner = GTrxNode(trx);
  if (!fabric_->EndpointAlive(owner)) {
    bool departed;
    {
      MutexLock lock(mu_);
      auto it = departed_.find(owner);
      departed = it != departed_.end() && it->second;
    }
    if (!departed) {
      return Status::Unavailable("TIT owner down: node " +
                                 std::to_string(owner));
    }
    // Gracefully departed: its table (kept by this registry) stands in for
    // the node's registered memory.
  }
  POLARMP_ASSIGN_OR_RETURN(Table* table, FindTable(owner));
  const bool remote = from != static_cast<EndpointId>(owner);
  obs::TraceSpan span(remote ? &remote_read_ns_ : nullptr);
  if (remote) {
    remote_slot_reads_.Inc();
    SimDelay(fabric_->profile().rdma_read_ns);
  }
  const Slot& slot = table->slots[GTrxSlot(trx)];
  SlotRead out;
  // cts before version — see the class comment for why this order makes a
  // version match authenticate the cts.
  out.cts = slot.cts.load(std::memory_order_acquire);
  out.version =
      static_cast<uint32_t>(slot.version.load(std::memory_order_acquire));
  return out;
}

Status Tit::SetRefRemote(EndpointId from, GTrxId trx) const {
  const NodeId owner = GTrxNode(trx);
  if (!fabric_->EndpointAlive(owner)) {
    return Status::Unavailable("TIT owner down: node " +
                               std::to_string(owner));
  }
  POLARMP_ASSIGN_OR_RETURN(Table* table, FindTable(owner));
  if (from != static_cast<EndpointId>(owner)) {
    remote_ref_sets_.Inc();
    SimDelay(fabric_->profile().rdma_write_ns);
  }
  table->slots[GTrxSlot(trx)].ref.store(1, std::memory_order_release);
  return Status::OK();
}

void Tit::ResetCounters() {
  slot_allocs_.Reset();
  remote_slot_reads_.Reset();
  remote_ref_sets_.Reset();
  remote_read_ns_.Reset();
}

}  // namespace polarmp
