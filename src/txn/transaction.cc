#include "txn/transaction.h"

#include "obs/trace.h"

#include <algorithm>
#include <thread>

namespace polarmp {

TrxManager::TrxManager(EngineContext* engine, Tit* tit, TsoClient* tso,
                       TransactionFusion* txn_fusion, LockFusion* lock_fusion,
                       UndoStore* undo, const Options& options)
    : engine_(engine),
      tit_(tit),
      tso_(tso),
      txn_fusion_(txn_fusion),
      lock_fusion_(lock_fusion),
      undo_(undo),
      options_(options) {
  finalizer_ = std::thread([this] { FinalizerLoop(); });
}

TrxManager::~TrxManager() {
  std::deque<FinalizeItem> leftovers;
  {
    MutexLock lock(finalize_mu_);
    finalize_stop_ = true;
    leftovers.swap(finalize_queue_);
    finalize_cv_.notify_all();
  }
  finalizer_.join();
  // Anything still queued at destruction lost its engine: complete the
  // callbacks without touching state (graceful Stop and Crash both drain
  // the queue earlier, so this is normally empty).
  for (FinalizeItem& item : leftovers) {
    if (item.done) item.done(Status::Aborted("trx manager shutdown"));
  }
}

void TrxManager::EnqueueFinalize(FinalizeItem item) {
  {
    MutexLock lock(finalize_mu_);
    if (!finalize_stop_) {
      finalize_queue_.push_back(std::move(item));
      finalize_cv_.notify_all();
      return;
    }
  }
  if (item.done) item.done(Status::Aborted("trx manager shutdown"));
}

void TrxManager::FinalizerLoop() {
  UniqueLock lock(finalize_mu_);
  for (;;) {
    finalize_cv_.wait(lock, [this]() REQUIRES(finalize_mu_) {
      return finalize_stop_ || !finalize_queue_.empty();
    });
    if (finalize_queue_.empty()) {
      if (finalize_stop_) return;
      continue;
    }
    FinalizeItem item = std::move(finalize_queue_.front());
    finalize_queue_.pop_front();
    finalize_busy_ = true;
    lock.unlock();
    // Off-lock: FinishCommit may block (page latches, even a log force via
    // eviction — safe here, the flusher is free to serve it).
    FinishCommit(item.trx, item.provisional_cts, std::move(item.force_status),
                 std::move(item.done));
    commit_ns_.Record(obs::TraceSpan::NowNanos() - item.commit_start_ns);
    lock.lock();
    finalize_busy_ = false;
    if (finalize_queue_.empty()) finalize_cv_.notify_all();
  }
}

void TrxManager::DrainCommitQueue() {
  UniqueLock lock(finalize_mu_);
  finalize_cv_.wait(lock, [this]() REQUIRES(finalize_mu_) {
    return finalize_queue_.empty() && !finalize_busy_;
  });
}

StatusOr<Transaction*> TrxManager::Begin(IsolationLevel iso) {
  UniqueLock lock(mu_);
  const TrxId local_id = next_local_id_++;
  lock.unlock();
  auto gid_or = tit_->AllocSlot(node(), local_id);
  for (int attempt = 0; !gid_or.ok() && attempt < 64; ++attempt) {
    // TIT full: recycling lags the commit rate. Run the recycle pass
    // synchronously (report view, read global minimum, free slots) and
    // retry — the paper's background reclamation, on demand.
    BackgroundTick();
    gid_or = tit_->AllocSlot(node(), local_id);
    if (!gid_or.ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  POLARMP_ASSIGN_OR_RETURN(GTrxId gid, std::move(gid_or));
  auto trx = std::make_unique<Transaction>(local_id, gid, iso);
  trx->view_.own = gid;
  Transaction* ptr = trx.get();
  lock.lock();
  active_[local_id] = std::move(trx);
  return ptr;
}

Status TrxManager::RefreshView(Transaction* trx) {
  if (trx->iso_ == IsolationLevel::kSnapshotIsolation && trx->has_view()) {
    return Status::OK();  // snapshot fixed at first statement
  }
  POLARMP_ASSIGN_OR_RETURN(Csn cts, tso_->ReadTimestamp());
  std::atomic_ref<Csn>(trx->view_.cts).store(cts, std::memory_order_release);
  return Status::OK();
}

Csn TrxManager::GetCtsForVersion(GTrxId g_trx, Csn row_cts) const {
  // Algorithm 1.
  if (row_cts != kCsnInit) return row_cts;          // CTS already backfilled
  if (g_trx == kInvalidGTrxId) return kCsnMin;      // bulk-loaded row
  auto slot = tit_->ReadSlot(node(), g_trx);
  if (!slot.ok()) {
    // Owner unreachable (crashed): conservatively treat as active until its
    // recovery rolls the transaction back or republishes the TIT.
    return kCsnMax;
  }
  if (slot.value().version != GTrxVersion(g_trx)) {
    // Slot reused ⇒ the transaction committed and is globally visible.
    return kCsnMin;
  }
  if (slot.value().cts == kCsnInit) return kCsnMax;  // still active
  if (CsnIsProvisional(slot.value().cts)) {
    // In commit (CTS fetched, log force in flight). The committer finalizes
    // the slot with a CTS fetched AFTER its force, so every view that can
    // observe the provisional bit predates the final CTS and must not admit
    // the version — resolving as active is exact, not conservative.
    return kCsnMax;
  }
  return slot.value().cts;
}

bool TrxManager::IsTrxActive(GTrxId g_trx) const {
  return GetCtsForVersion(g_trx, kCsnInit) == kCsnMax;
}

StatusOr<std::optional<RowVersion>> TrxManager::VisibleVersion(
    const Transaction* trx, const RowView& row) const {
  RowVersion version = RowVersion::FromView(row);
  for (int depth = 0; depth < 4096; ++depth) {
    if (version.g_trx_id == trx->gid()) return std::optional(version);
    const Csn cts = GetCtsForVersion(version.g_trx_id, version.cts);
    if (cts != kCsnMax && trx->view().VisibleCts(cts)) {
      return std::optional(version);
    }
    if (version.undo_ptr == kNullUndoPtr) return std::optional<RowVersion>();
    auto rec_or = undo_->Read(node(), version.undo_ptr);
    if (!rec_or.ok()) {
      if (rec_or.status().IsNotFound()) {
        // The history this snapshot needs was purged (or its owner's
        // segment is gone): the classic "snapshot too old". Abort so the
        // client restarts with a fresh view — the row itself is intact.
        return Status::Aborted("snapshot too old: " +
                               std::string(rec_or.status().message()));
      }
      return rec_or.status();
    }
    UndoRecord rec = std::move(rec_or).value();
    if (rec.type == UndoType::kInsert) {
      // The row did not exist before this insert.
      return std::optional<RowVersion>();
    }
    version.g_trx_id = rec.prev_trx;
    version.cts = rec.prev_cts;
    version.undo_ptr = rec.prev_undo;
    version.flags = rec.prev_flags;
    version.value = std::move(rec.prev_value);
  }
  return Status::Internal("version chain too deep");
}

StatusOr<std::string> TrxManager::ReadRow(Transaction* trx, BTree* tree,
                                          int64_t key) {
  POLARMP_RETURN_IF_ERROR(RefreshView(trx));
  Mtr mtr(engine_);
  POLARMP_ASSIGN_OR_RETURN(BTree::LeafPos pos,
                           tree->SearchLeaf(&mtr, key, LockMode::kShared));
  if (!pos.found) return Status::NotFound("no row for key");
  Page leaf = mtr.PageAt(pos.guard);
  POLARMP_ASSIGN_OR_RETURN(RowView row, leaf.RowAt(pos.slot));
  POLARMP_ASSIGN_OR_RETURN(std::optional<RowVersion> version,
                           VisibleVersion(trx, row));
  mtr.Commit();
  if (!version.has_value() || version->tombstone()) {
    return Status::NotFound("no visible version");
  }
  return std::move(version->value);
}

Status TrxManager::ScanRows(
    Transaction* trx, BTree* tree, int64_t lo, int64_t hi,
    const std::function<bool(int64_t, const std::string&)>& fn) {
  POLARMP_RETURN_IF_ERROR(RefreshView(trx));
  Status inner = Status::OK();
  const Status scan = tree->ScanRange(lo, hi, [&](const RowView& row) {
    auto version = VisibleVersion(trx, row);
    if (!version.ok()) {
      inner = version.status();
      return false;
    }
    if (!version.value().has_value() || version.value()->tombstone()) {
      return true;
    }
    return fn(version.value()->key, version.value()->value);
  });
  POLARMP_RETURN_IF_ERROR(scan);
  return inner;
}

Status TrxManager::WaitForRowLock(Transaction* trx, GTrxId holder) {
  lock_waits_.Inc();
  // Fig. 6: (1) register the wait-for edge, (2) raise the holder's ref flag,
  // (3) re-check the holder (it may have finished between our row check and
  // the flag write), (4) block until notified. The register-before-recheck
  // order closes the missed-wakeup race.
  const Status reg = lock_fusion_->RegisterWait(trx->gid(), holder);
  if (reg.IsAborted()) {
    deadlock_aborts_.Inc();
    return reg;
  }
  POLARMP_RETURN_IF_ERROR(reg);
  // polarlint: allow(unchecked-fabric-status) best-effort flag raise; the
  // IsTrxActive recheck below covers a failed write (we just wait longer)
  (void)tit_->SetRefRemote(node(), holder);
  if (!IsTrxActive(holder)) {
    lock_fusion_->CancelWait(trx->gid());
    return Status::OK();
  }
  return lock_fusion_->AwaitHolder(trx->gid(), options_.lock_wait_timeout_ms);
}

Status TrxManager::WriteRow(Transaction* trx, BTree* tree, int64_t key,
                            Slice value, bool tombstone, bool must_not_exist,
                            bool require_exists,
                            std::optional<RowVersion>* prev) {
  POLARMP_CHECK_EQ(trx->state_, TrxState::kActive);
  POLARMP_RETURN_IF_ERROR(RefreshView(trx));
  const uint8_t flags = tombstone ? kRowTombstone : 0;

  GTrxId waited_for = kInvalidGTrxId;
  for (int attempt = 0; attempt < options_.write_retry_limit; ++attempt) {
    GTrxId conflict_holder = kInvalidGTrxId;
    {
      Mtr mtr(engine_);
      const size_t need = kRowHeaderSize + value.size();
      POLARMP_ASSIGN_OR_RETURN(BTree::LeafPos pos,
                               tree->SearchLeafForWrite(&mtr, key, need));
      Page leaf = mtr.PageAt(pos.guard);

      UndoRecord undo_rec;
      undo_rec.space = tree->space();
      undo_rec.key = key;
      undo_rec.trx = trx->gid();
      undo_rec.trx_prev = trx->last_undo();

      if (pos.found) {
        POLARMP_ASSIGN_OR_RETURN(RowView row, leaf.RowAt(pos.slot));
        // A backfilled row CTS proves the writer committed even when its
        // TIT is unreachable; only unresolved rows consult the TIT.
        Csn row_commit_cts =
            row.g_trx_id == trx->gid()
                ? trx->view().cts  // own write, trivially "visible"
                : GetCtsForVersion(row.g_trx_id, row.cts);
        if (options_.async_commit && row.g_trx_id != trx->gid() &&
            row_commit_cts == kCsnMax && row.cts == kCsnInit) {
          // Early lock release (async-commit mode): a row whose owner is
          // commit-PENDING (provisional CTS published, force on the wire)
          // is writable without waiting — the overwrite's own commit record
          // lands later in the same per-node log, so it can never become
          // durable before its predecessor's. For the SI conflict check
          // below the owner counts as committed at its provisional
          // timestamp. Readers keep resolving it as active (not durable).
          auto slot = tit_->ReadSlot(node(), row.g_trx_id);
          if (slot.ok() && slot.value().version == GTrxVersion(row.g_trx_id) &&
              CsnIsProvisional(slot.value().cts)) {
            row_commit_cts = CsnProvisionalValue(slot.value().cts);
          }
        }
        if (row.g_trx_id != trx->gid() && row_commit_cts == kCsnMax) {
          // Embedded row lock held by another live transaction (§4.3.2).
          conflict_holder = row.g_trx_id;
        } else {
          if (trx->iso_ == IsolationLevel::kSnapshotIsolation &&
              row.g_trx_id != trx->gid() &&
              (!trx->view().VisibleCts(row_commit_cts) ||
               row.g_trx_id == waited_for)) {
            // First-committer-wins under snapshot isolation. The waited_for
            // arm is first-UPDATER-wins: a holder we blocked on overlapped
            // this transaction in real time, so its commit must conflict
            // even when its published CTS predates our view. Since the
            // provisional-CTS protocol (see Commit) finalizes slots with a
            // post-force timestamp, overlapping committers normally fail the
            // VisibleCts arm already; this arm remains as a backstop for the
            // degraded path where the finalizing TSO fetch failed and the
            // slot kept its pre-force CTS.
            return Status::Aborted("write-write conflict (SI)");
          }
          if (must_not_exist && !row.tombstone()) {
            return Status::AlreadyExists("key exists");
          }
          if (require_exists && row.tombstone()) {
            return Status::NotFound("row deleted");
          }
          undo_rec.type =
              row.tombstone() ? UndoType::kDelete : UndoType::kUpdate;
          undo_rec.prev_trx = row.g_trx_id;
          undo_rec.prev_cts = row.cts;
          undo_rec.prev_undo = row.undo_ptr;
          undo_rec.prev_flags = row.flags;
          undo_rec.prev_value = row.value.ToString();
          if (prev != nullptr) {
            *prev = row.tombstone() ? std::optional<RowVersion>()
                                    : std::optional(RowVersion::FromView(row));
          }
        }
      } else {
        if (require_exists) return Status::NotFound("no row for key");
        undo_rec.type = UndoType::kInsert;
        if (prev != nullptr) *prev = std::nullopt;
      }

      if (conflict_holder == kInvalidGTrxId) {
        POLARMP_ASSIGN_OR_RETURN(UndoStore::AppendResult undo_res,
                                 undo_->Append(node(), undo_rec));
        mtr.LogUndoAppend(undo_res.offset, undo_res.bytes);
        const std::string image = EncodeRow(key, trx->gid(), kCsnInit,
                                            undo_res.ptr, flags, value);
        POLARMP_RETURN_IF_ERROR(mtr.LogWriteRow(pos.guard, image));
        mtr.Commit();
        if (trx->first_lsn_ == 0) {
          std::atomic_ref<Lsn>(trx->first_lsn_)
              .store(mtr.commit_start_lsn(), std::memory_order_release);
        }
        trx->last_undo_ = undo_res.ptr;
        std::atomic_ref<uint64_t>(trx->first_undo_offset_)
            .store(std::min(trx->first_undo_offset_, undo_res.offset),
                   std::memory_order_release);
        trx->touched_.push_back(Transaction::TouchedRow{
            mtr.PageIdAt(pos.guard), key, tree->space(), tombstone});
        return Status::OK();
      }
      // Conflict: fall through with all guards released (the Mtr destructor
      // runs now; never block on a row lock while holding page latches).
    }
    const Status wait = WaitForRowLock(trx, conflict_holder);
    if (!wait.ok()) return wait;
    waited_for = conflict_holder;
  }
  return Status::Busy("row write did not converge");
}

StatusOr<std::string> TrxManager::ReadRowForUpdate(Transaction* trx,
                                                   BTree* tree, int64_t key) {
  POLARMP_CHECK_EQ(trx->state_, TrxState::kActive);
  POLARMP_RETURN_IF_ERROR(RefreshView(trx));

  GTrxId waited_for = kInvalidGTrxId;
  for (int attempt = 0; attempt < options_.write_retry_limit; ++attempt) {
    GTrxId conflict_holder = kInvalidGTrxId;
    {
      Mtr mtr(engine_);
      // The lock image is the same size as the current row, so an in-place
      // rewrite always fits: the header size is only the split hint.
      POLARMP_ASSIGN_OR_RETURN(
          BTree::LeafPos pos,
          tree->SearchLeafForWrite(&mtr, key, kRowHeaderSize));
      if (!pos.found) return Status::NotFound("no row for key");
      Page leaf = mtr.PageAt(pos.guard);
      POLARMP_ASSIGN_OR_RETURN(RowView row, leaf.RowAt(pos.slot));

      if (row.g_trx_id == trx->gid()) {
        // Already locked (or written) by this transaction.
        if (row.tombstone()) return Status::NotFound("row deleted");
        return row.value.ToString();
      }
      const Csn row_commit_cts = GetCtsForVersion(row.g_trx_id, row.cts);
      if (row_commit_cts == kCsnMax) {
        // Embedded row lock held by another live transaction (§4.3.2).
        conflict_holder = row.g_trx_id;
      } else {
        if (trx->iso_ == IsolationLevel::kSnapshotIsolation &&
            (!trx->view().VisibleCts(row_commit_cts) ||
             row.g_trx_id == waited_for)) {
          // Same first-committer/first-updater-wins rule as WriteRow: a
          // locking read that admitted a version invisible to the snapshot
          // would let the transaction build on state it cannot have seen.
          return Status::Aborted("write-write conflict (SI)");
        }
        if (row.tombstone()) return Status::NotFound("row deleted");

        UndoRecord undo_rec;
        undo_rec.space = tree->space();
        undo_rec.key = key;
        undo_rec.trx = trx->gid();
        undo_rec.trx_prev = trx->last_undo();
        undo_rec.type = UndoType::kUpdate;
        undo_rec.prev_trx = row.g_trx_id;
        undo_rec.prev_cts = row.cts;
        undo_rec.prev_undo = row.undo_ptr;
        undo_rec.prev_flags = row.flags;
        undo_rec.prev_value = row.value.ToString();
        // Copy out before LogWriteRow: row.value points into the page.
        std::string value = row.value.ToString();

        POLARMP_ASSIGN_OR_RETURN(UndoStore::AppendResult undo_res,
                                 undo_->Append(node(), undo_rec));
        mtr.LogUndoAppend(undo_res.offset, undo_res.bytes);
        const std::string image = EncodeRow(key, trx->gid(), kCsnInit,
                                            undo_res.ptr, row.flags, value);
        POLARMP_RETURN_IF_ERROR(mtr.LogWriteRow(pos.guard, image));
        mtr.Commit();
        if (trx->first_lsn_ == 0) {
          std::atomic_ref<Lsn>(trx->first_lsn_)
              .store(mtr.commit_start_lsn(), std::memory_order_release);
        }
        trx->last_undo_ = undo_res.ptr;
        std::atomic_ref<uint64_t>(trx->first_undo_offset_)
            .store(std::min(trx->first_undo_offset_, undo_res.offset),
                   std::memory_order_release);
        trx->touched_.push_back(Transaction::TouchedRow{
            mtr.PageIdAt(pos.guard), key, tree->space(), /*tombstone=*/false});
        return value;
      }
    }
    const Status wait = WaitForRowLock(trx, conflict_holder);
    if (!wait.ok()) return wait;
    waited_for = conflict_holder;
  }
  return Status::Busy("locking read did not converge");
}

Status TrxManager::Commit(Transaction* trx) {
  return CommitAsync(trx).Wait();
}

TrxManager::CommitFuture TrxManager::CommitAsync(Transaction* trx) {
  auto promise = std::make_shared<StatusPromise>();
  CommitFuture future = promise->future();
  CommitAsync(trx, [promise](Status s) { promise->Set(std::move(s)); });
  return future;
}

void TrxManager::CommitAsync(Transaction* trx, CommitCallback done) {
  POLARMP_CHECK_EQ(trx->state_, TrxState::kActive);
  if (!trx->has_writes()) {
    trx->state_ = TrxState::kCommitted;
    // Read-only: no row ever carries this gid; the slot can recycle now.
    tit_->FreeSlot(trx->gid());
    FinishWaiters(trx);
    all_commits_.Inc();
    done(Status::OK());
    return;
  }
  commits_.Inc();
  all_commits_.Inc();
  const uint64_t commit_start_ns = obs::TraceSpan::NowNanos();
  obs::TraceSpan enqueue_span(&commit_enqueue_ns_);
  // 1. Commit timestamp from the TSO (one-sided RDMA fetch-add).
  obs::TraceSpan tso_span(&commit_tso_ns_);
  auto cts_or = tso_->CommitTimestamp();
  if (!cts_or.ok()) {
    tso_span.Cancel();
    enqueue_span.Cancel();
    // Nothing published, still kActive: the caller rolls back.
    done(cts_or.status());
    return;
  }
  tso_span.Finish();
  const Csn cts = cts_or.value();
  // Mark the slot "in commit" BEFORE the force: views created from here on
  // resolve this transaction as active instead of reading around its
  // versions and later admitting its CTS (the SI commit-publication
  // lost-update window, DESIGN.md §6).
  tit_->PublishProvisionalCts(trx->gid(), cts);
  trx->state_.store(TrxState::kCommitting, std::memory_order_release);
  {
    MutexLock lock(mu_);
    trx->commit_pending_ = true;
  }
  // 2. Durability: buffer the commit record and ENQUEUE the force ("before
  //    committing a transaction, the corresponding redo logs are
  //    synchronized to the storage", §4.4). The flusher amortizes one
  //    storage append over every committer queued behind this handle; the
  //    completion (FinishCommit) finalizes visibility. The record carries
  //    the provisional CTS; recovery backfills rows with it.
  const Lsn end =
      engine_->log->Add({MakeTrxCommit(node(), trx->gid(), cts)});
  const uint64_t log_start_ns = obs::TraceSpan::NowNanos();
  enqueue_span.Finish();
  if (options_.async_commit) {
    // Client-visible commit point = enqueue. Acknowledge now; the force
    // completion finalizes in the background, and a force FAILURE rolls
    // back an already-acknowledged commit (the documented crash window of
    // this mode).
    engine_->log->ForceAsync(
        end, [this, trx, cts, commit_start_ns, log_start_ns](Status s) {
          commit_log_ns_.Record(obs::TraceSpan::NowNanos() - log_start_ns);
          EnqueueFinalize({trx, cts, std::move(s), nullptr, commit_start_ns});
        });
    done(Status::OK());
    return;
  }
  // The force callback runs on the flusher thread and must not block:
  // FinishCommit is handed to the finalizer thread, which completes `done`.
  engine_->log->ForceAsync(
      end, [this, trx, cts, commit_start_ns, log_start_ns,
            done = std::move(done)](Status s) mutable {
        commit_log_ns_.Record(obs::TraceSpan::NowNanos() - log_start_ns);
        EnqueueFinalize(
            {trx, cts, std::move(s), std::move(done), commit_start_ns});
      });
}

void TrxManager::FinishCommit(Transaction* trx, Csn provisional_cts,
                              Status force_status, CommitCallback done) {
  if (!force_status.ok()) {
    if (force_status.IsAborted()) {
      // Crash drain (LogWriter::Abandon): the buffer is gone and the node
      // is tearing down — record the outcome, touch no engine state.
      trx->state_.store(TrxState::kRolledBack, std::memory_order_release);
      FinishCommitBookkeeping(trx);
      if (done) done(std::move(force_status));
      return;
    }
    // Force failed: nothing durable, nothing published beyond the
    // provisional CTS (which no reader ever admits). Re-activate so the
    // row images can be undone.
    trx->state_.store(TrxState::kActive, std::memory_order_release);
    if (options_.async_commit) {
      // The client already saw OK at enqueue: an acknowledged commit is
      // lost. Undo it right here — this is the finalizer thread, which may
      // block on the page writes rollback performs.
      POLARMP_LOG(Warn) << "async commit of trx " << trx->gid()
                        << " failed after acknowledgement, rolling back: "
                        << force_status.ToString();
      const Status undo = Rollback(trx);
      if (!undo.ok()) {
        POLARMP_LOG(Warn) << "abort of failed async commit " << trx->gid()
                          << " failed: " << undo.ToString();
      }
    }
    FinishCommitBookkeeping(trx);
    if (done) done(std::move(force_status));
    return;
  }
  obs::TraceSpan finalize_span(&commit_finalize_ns_);
  // 3. Visibility: finalize the TIT slot with a CTS fetched AFTER the force.
  //    Every view that observed the provisional bit was created before this
  //    fetch, so the final CTS exceeds its view CTS and the transaction
  //    stays invisible to it forever — that is what makes the reader-side
  //    "provisional ⇒ active" resolution exact. If the TSO fails here the
  //    transaction is already durable: fall back to the provisional value,
  //    degrading to the seed's narrow window rather than losing the commit.
  Csn final_cts = provisional_cts;
  if (auto fts = tso_->CommitTimestamp(); fts.ok()) final_cts = fts.value();
  trx->cts_ = final_cts;
  tit_->PublishCts(trx->gid(), final_cts);
  trx->state_.store(TrxState::kCommitted, std::memory_order_release);
  // 4. Best-effort CTS backfill into still-buffered rows (§4.1).
  BackfillCts(trx);
  // 5. Wake cross-node waiters if any flagged themselves (§4.3.2).
  FinishWaiters(trx);
  finalize_span.Finish();
  // 6. Hand the slot to the recycler once globally visible; tombstoned
  //    rows join the purge queue for physical removal. Clearing
  //    commit_pending_ (and honoring a Release that arrived while the
  //    force was in flight) must precede `done`: once the caller observes
  //    completion it may Release, and exactly one side performs the erase.
  {
    MutexLock lock(mu_);
    finished_.push_back(FinishedTrx{trx->gid(), final_cts,
                                    trx->first_undo_offset(),
                                    undo_->head(node())});
    for (const auto& touched : trx->touched_) {
      if (touched.tombstone) {
        purge_queue_.push_back(
            PurgeCandidate{touched.space, touched.key, final_cts});
      }
    }
    trx->commit_pending_ = false;
    if (trx->released_) active_.erase(trx->local_id());  // destroys trx
  }
  if (done) done(Status::OK());
}

void TrxManager::FinishCommitBookkeeping(Transaction* trx) {
  MutexLock lock(mu_);
  trx->commit_pending_ = false;
  if (trx->released_) active_.erase(trx->local_id());  // destroys trx
}

void TrxManager::BackfillCts(Transaction* trx) {
  for (const auto& touched : trx->touched_) {
    if (!engine_->plock->TryPinLocal(touched.page, LockMode::kExclusive)) {
      continue;
    }
    BufferPool::Handle handle = engine_->lbp->TryGetCached(touched.page);
    if (!handle.valid()) {
      engine_->plock->Unpin(touched.page);
      continue;
    }
    engine_->lbp->Latch(handle, LockMode::kExclusive);
    Page page(handle.data, engine_->lbp->page_size());
    const int slot = page.FindSlot(touched.key);
    if (slot >= 0) {
      auto row = page.RowAt(slot);
      if (row.ok() && row.value().g_trx_id == trx->gid()) {
        // Unlogged metadata refinement: after a crash the CTS is
        // re-derivable (TIT mismatch ⇒ visible to all), so no redo needed.
        page.SetRowCts(slot, trx->cts_);
      }
    }
    engine_->lbp->Unlatch(handle, LockMode::kExclusive);
    engine_->lbp->Unpin(handle);
    engine_->plock->Unpin(touched.page);
  }
}

void TrxManager::FinishWaiters(Transaction* trx) {
  if (tit_->ReadAndClearRef(trx->gid())) {
    lock_fusion_->NotifyTrxFinished(trx->gid());
  }
}

Status TrxManager::Rollback(Transaction* trx) {
  POLARMP_CHECK_EQ(trx->state_, TrxState::kActive);
  // Resolver for the tree a rolled-back record belongs to is installed by
  // DbNode (tree_resolver_); without writes there is nothing to undo.
  UndoPtr cursor = trx->last_undo();
  while (cursor != kNullUndoPtr) {
    POLARMP_ASSIGN_OR_RETURN(UndoRecord rec, undo_->Read(node(), cursor));
    POLARMP_CHECK_EQ(rec.trx, trx->gid());
    BTree* tree = tree_resolver_(rec.space);
    if (tree == nullptr) {
      return Status::Internal("no tree for space " + std::to_string(rec.space));
    }
    // Rollback holds row locks other transactions wait on; transient page
    // contention (Busy) must be retried, never surfaced.
    for (int attempt = 0;; ++attempt) {
      const Status applied = [&]() -> Status {
        Mtr mtr(engine_);
        const size_t need = kRowHeaderSize + rec.prev_value.size();
        POLARMP_ASSIGN_OR_RETURN(BTree::LeafPos pos,
                                 tree->SearchLeafForWrite(&mtr, rec.key, need));
        if (rec.type == UndoType::kInsert) {
          if (pos.found) {
            POLARMP_RETURN_IF_ERROR(mtr.LogRemoveRow(pos.guard, rec.key));
          }
        } else {
          const std::string image =
              EncodeRow(rec.key, rec.prev_trx, rec.prev_cts, rec.prev_undo,
                        rec.prev_flags, rec.prev_value);
          POLARMP_RETURN_IF_ERROR(mtr.LogWriteRow(pos.guard, image));
        }
        mtr.Commit();
        return Status::OK();
      }();
      if (applied.ok()) break;
      if (!applied.IsBusy()) return applied;
      if (attempt > 0 && attempt % 16 == 0) {
        POLARMP_LOG(Warn) << "rollback of trx " << trx->gid()
                          << " retrying under contention: "
                          << applied.ToString();
      }
    }
    cursor = rec.trx_prev;
  }
  if (trx->has_writes()) {
    engine_->log->Add({MakeTrxRollbackEnd(node(), trx->gid())});
  }
  trx->state_ = TrxState::kRolledBack;
  FinishWaiters(trx);
  // Gate recycling on the TSO value observed now: any reader that captured
  // one of this transaction's row images has a view below it.
  auto now = tso_->ReadTimestamp();
  MutexLock lock(mu_);
  finished_.push_back(FinishedTrx{trx->gid(), now.ok() ? now.value() : kCsnMax,
                                  trx->first_undo_offset(),
                                  undo_->head(node())});
  return Status::OK();
}

void TrxManager::Release(Transaction* trx) {
  MutexLock lock(mu_);
  auto it = active_.find(trx->local_id());
  // Already dropped (crash teardown raced the release): nothing to do.
  if (it == active_.end()) return;
  if (trx->commit_pending_) {
    // A force completion (or deferred abort) still owns the object; flag
    // the release and let whoever clears commit_pending_ erase it.
    trx->released_ = true;
    return;
  }
  POLARMP_CHECK(it->second->state_ != TrxState::kActive)
      << "release of active transaction";
  active_.erase(it);
}

void TrxManager::BackgroundTick() {
  // 1. Report this node's minimum view (§4.1 "TIT recycle").
  Csn min_view = kCsnMax;
  {
    MutexLock lock(mu_);
    for (const auto& [id, trx] : active_) {
      if (trx->state_ == TrxState::kActive && trx->has_view()) {
        min_view = std::min(min_view, trx->view_cts());
      }
    }
  }
  if (min_view == kCsnMax) {
    // No active views: any future view will read the TSO at >= current, so
    // everything committed at or below the current value is globally
    // visible. Reporting current+1 lets the strict `<` recycle gate pass
    // for the newest commit while staying exact for rollback gating.
    auto now = tso_->ReadTimestamp();
    if (!now.ok()) return;
    min_view = now.value() + 1;
  }
  (void)txn_fusion_->ReportMinView(node(), min_view);

  // 2. Read the consolidated minimum (one-sided) and recycle.
  auto gmin_or = txn_fusion_->GlobalMinView(node());
  if (!gmin_or.ok()) return;
  const Csn gmin = gmin_or.value();

  uint64_t purge_to = UINT64_MAX;
  {
    MutexLock lock(mu_);
    for (const auto& [id, trx] : active_) {
      if (trx->first_undo_offset() != UINT64_MAX) {
        purge_to = std::min(purge_to, trx->first_undo_offset());
      }
    }
    auto it = finished_.begin();
    while (it != finished_.end()) {
      if (it->recycle_after < gmin) {
        tit_->FreeSlot(it->gid);
        it = finished_.erase(it);
      } else {
        if (it->first_undo_offset != UINT64_MAX) {
          purge_to = std::min(purge_to, it->first_undo_offset);
        }
        ++it;
      }
    }
  }
  // 3. Purge undo below every possibly-needed record.
  if (purge_to == UINT64_MAX) purge_to = undo_->head(node());
  (void)undo_->FreeUpTo(node(), purge_to);

  // 4. Physically remove tombstones that are visible-to-all (row GC).
  std::vector<PurgeCandidate> ready;
  {
    MutexLock lock(mu_);
    auto it = purge_queue_.begin();
    while (it != purge_queue_.end()) {
      if (it->delete_cts < gmin) {
        ready.push_back(*it);
        it = purge_queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const PurgeCandidate& candidate : ready) {
    const Status s = PurgeRow(candidate.space, candidate.key, gmin);
    if (!s.ok() && !s.IsNotFound() && !s.IsBusy()) {
      POLARMP_LOG(Warn) << "tombstone purge failed: " << s.ToString();
    }
  }
}

Status TrxManager::PurgeRow(SpaceId space, int64_t key, Csn gmin) {
  BTree* tree = tree_resolver_(space);
  if (tree == nullptr) return Status::NotFound("no tree for space");
  Mtr mtr(engine_);
  POLARMP_ASSIGN_OR_RETURN(BTree::LeafPos pos,
                           tree->SearchLeaf(&mtr, key, LockMode::kExclusive));
  if (!pos.found) return Status::OK();  // already gone
  POLARMP_ASSIGN_OR_RETURN(RowView row, mtr.PageAt(pos.guard).RowAt(pos.slot));
  // Only remove if the row is STILL a tombstone whose delete is globally
  // visible (it may have been re-inserted, or deleted again more recently).
  if (!row.tombstone()) return Status::OK();
  const Csn cts = GetCtsForVersion(row.g_trx_id, row.cts);
  if (cts == kCsnMax || cts >= gmin) return Status::OK();
  POLARMP_RETURN_IF_ERROR(mtr.LogRemoveRow(pos.guard, key));
  mtr.Commit();
  purged_rows_.Inc();
  return Status::OK();
}

Lsn TrxManager::OldestActiveFirstLsn() const {
  MutexLock lock(mu_);
  Lsn oldest = UINT64_MAX;
  for (const auto& [id, trx] : active_) {
    // kCommitting still gates the checkpoint: its redo (commit record
    // included) may not be durable until the in-flight force lands.
    const TrxState state = trx->state_.load(std::memory_order_acquire);
    if ((state == TrxState::kActive || state == TrxState::kCommitting) &&
        trx->first_lsn() != 0) {
      oldest = std::min(oldest, trx->first_lsn());
    }
  }
  return oldest;
}

Status TrxManager::RollbackRecovered(GTrxId gid, UndoPtr last_undo) {
  UndoPtr cursor = last_undo;
  while (cursor != kNullUndoPtr) {
    POLARMP_ASSIGN_OR_RETURN(UndoRecord rec, undo_->Read(node(), cursor));
    if (rec.trx != gid) {
      return Status::Corruption("undo chain crosses transactions");
    }
    BTree* tree = tree_resolver_(rec.space);
    if (tree == nullptr) {
      return Status::Internal("no tree for space " +
                              std::to_string(rec.space));
    }
    Mtr mtr(engine_);
    const size_t need = kRowHeaderSize + rec.prev_value.size();
    POLARMP_ASSIGN_OR_RETURN(BTree::LeafPos pos,
                             tree->SearchLeafForWrite(&mtr, rec.key, need));
    if (rec.type == UndoType::kInsert) {
      if (pos.found) {
        POLARMP_RETURN_IF_ERROR(mtr.LogRemoveRow(pos.guard, rec.key));
      }
    } else {
      // Only restore if the row still carries the dead transaction's id
      // (a re-run of recovery may find it already restored).
      bool restore = true;
      if (pos.found) {
        auto row = mtr.PageAt(pos.guard).RowAt(pos.slot);
        restore = row.ok() && row.value().g_trx_id == gid;
      }
      if (restore) {
        const std::string image =
            EncodeRow(rec.key, rec.prev_trx, rec.prev_cts, rec.prev_undo,
                      rec.prev_flags, rec.prev_value);
        POLARMP_RETURN_IF_ERROR(mtr.LogWriteRow(pos.guard, image));
      }
    }
    mtr.Commit();
    cursor = rec.trx_prev;
  }
  engine_->log->Add({MakeTrxRollbackEnd(node(), gid)});
  lock_fusion_->NotifyTrxFinished(gid);
  return Status::OK();
}

void TrxManager::DropAll() {
  // Queued force completions reference Transaction objects that die with
  // active_: let the finalizer run them against the still-live engine
  // before anything is dropped.
  DrainCommitQueue();
  MutexLock lock(mu_);
  active_.clear();
  finished_.clear();
}

}  // namespace polarmp
