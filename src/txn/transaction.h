#ifndef POLARMP_TXN_TRANSACTION_H_
#define POLARMP_TXN_TRANSACTION_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/lock_rank.h"
#include "engine/btree.h"
#include "engine/undo.h"
#include "obs/metrics.h"
#include "pmfs/lock_fusion.h"
#include "pmfs/transaction_fusion.h"
#include "txn/read_view.h"
#include "txn/tit.h"

namespace polarmp {

enum class TrxState : uint8_t { kActive, kCommitted, kRolledBack };

// A transaction executing on one node (PolarDB-MP never needs distributed
// transactions: every node sees all data, §1).
class Transaction {
 public:
  Transaction(TrxId local_id, GTrxId gid, IsolationLevel iso)
      : local_id_(local_id), gid_(gid), iso_(iso) {}

  TrxId local_id() const { return local_id_; }
  GTrxId gid() const { return gid_; }
  IsolationLevel isolation() const { return iso_; }
  TrxState state() const { return state_.load(std::memory_order_acquire); }
  Csn cts() const { return cts_; }

  const ReadView& view() const { return view_; }
  // view_.cts is written by the owner thread (RefreshView) while the
  // TrxManager background thread scans it for the minimum view, so the
  // cross-thread accesses go through std::atomic_ref.
  bool has_view() const { return view_cts() != kCsnInit; }
  Csn view_cts() const {
    return std::atomic_ref<Csn>(const_cast<Csn&>(view_.cts))
        .load(std::memory_order_acquire);
  }

  UndoPtr last_undo() const { return last_undo_; }
  // Owner-written, scanned by the background purge pass (atomic_ref, like
  // view_cts() and first_lsn()).
  uint64_t first_undo_offset() const {
    return std::atomic_ref<uint64_t>(const_cast<uint64_t&>(first_undo_offset_))
        .load(std::memory_order_acquire);
  }
  bool has_writes() const { return last_undo_ != kNullUndoPtr; }
  // LSN of the transaction's first redo byte (checkpoints must not pass it
  // while the transaction is active); 0 if it has not written. Written by
  // the owner thread, scanned by the background checkpoint pass — same
  // atomic_ref discipline as view_cts().
  Lsn first_lsn() const {
    return std::atomic_ref<Lsn>(const_cast<Lsn&>(first_lsn_))
        .load(std::memory_order_acquire);
  }

 private:
  friend class TrxManager;

  struct TouchedRow {
    PageId page;  // leaf the row lived on at write time (backfill hint)
    int64_t key;
    SpaceId space;
    bool tombstone;
  };

  const TrxId local_id_;
  const GTrxId gid_;
  const IsolationLevel iso_;
  std::atomic<TrxState> state_{TrxState::kActive};
  ReadView view_;
  Csn cts_ = kCsnInit;

  UndoPtr last_undo_ = kNullUndoPtr;
  uint64_t first_undo_offset_ = UINT64_MAX;  // lowest undo offset written
  Lsn first_lsn_ = 0;
  std::vector<TouchedRow> touched_;
};

// Per-node transaction manager: TIT slot lifecycle, MVCC visibility
// (Algorithm 1), the embedded-row-lock write protocol (§4.3.2), the commit
// pipeline (CTS fetch → redo force → TIT publish → CTS backfill → waiter
// notification) and undo-based rollback. The background tick drives
// min-view reporting, TIT recycling and undo purge.
class TrxManager {
 public:
  struct Options {
    uint64_t lock_wait_timeout_ms = 2'000;
    int write_retry_limit = 64;
  };

  TrxManager(EngineContext* engine, Tit* tit, TsoClient* tso,
             TransactionFusion* txn_fusion, LockFusion* lock_fusion,
             UndoStore* undo, const Options& options);

  TrxManager(const TrxManager&) = delete;
  TrxManager& operator=(const TrxManager&) = delete;

  // Maps a tablespace to its tree so Rollback can route undo records.
  // Installed by DbNode before any transaction runs.
  void SetTreeResolver(std::function<BTree*(SpaceId)> resolver) {
    tree_resolver_ = std::move(resolver);
  }

  NodeId node() const { return engine_->node; }

  StatusOr<Transaction*> Begin(IsolationLevel iso);
  Status Commit(Transaction* trx);
  Status Rollback(Transaction* trx);
  // After Commit/Rollback the pointer stays valid until Release.
  void Release(Transaction* trx);

  // ---- row operations (engine-facing; Session wraps them) ----

  // Writes `value` (or a tombstone) for `key`, acquiring the embedded row
  // lock, emitting undo and redo. `must_not_exist` gives INSERT semantics
  // (AlreadyExists if a committed, non-deleted version exists).
  // On success *prev (if non-null) receives the previous committed version
  // (absent for fresh inserts), which callers use for GSI maintenance.
  // Errors: Aborted (deadlock victim), Busy (lock wait timeout), NotFound
  // (update/delete of a missing row — when `require_exists`).
  Status WriteRow(Transaction* trx, BTree* tree, int64_t key, Slice value,
                  bool tombstone, bool must_not_exist, bool require_exists,
                  std::optional<RowVersion>* prev);

  // MVCC point read. NotFound if no visible version (or visible tombstone).
  StatusOr<std::string> ReadRow(Transaction* trx, BTree* tree, int64_t key);

  // MVCC range scan: visible versions of rows with lo <= key <= hi.
  Status ScanRows(Transaction* trx, BTree* tree, int64_t lo, int64_t hi,
                  const std::function<bool(int64_t, const std::string&)>& fn);

  // Algorithm 1 (GetCTSForRow) generalized to any reconstructed version.
  Csn GetCtsForVersion(GTrxId g_trx, Csn row_cts) const;

  // Drives min-view reporting, TIT recycling and undo purge; called by the
  // node's background thread.
  void BackgroundTick();

  // Checkpoint gate: the lowest first-redo LSN among active writing
  // transactions (UINT64_MAX if none).
  Lsn OldestActiveFirstLsn() const;

  // Recovery: rolls back a pre-crash transaction identified by its gid and
  // last undo pointer, through the normal (logged, locked) engine path.
  Status RollbackRecovered(GTrxId gid, UndoPtr last_undo);

  // Crash support: forget all volatile transaction state.
  void DropAll();

  // Telemetry shims over this node's registry handles ("txn.*" counters;
  // the commit-path decomposition feeds "txn_fusion.commit*_ns").
  uint64_t purged_rows() const { return purged_rows_.Value(); }
  uint64_t lock_waits() const { return lock_waits_.Value(); }
  uint64_t deadlock_aborts() const { return deadlock_aborts_.Value(); }

 private:
  // Refreshes the statement view per the isolation level.
  Status RefreshView(Transaction* trx);

  // True if the transaction behind `g_trx` is still active (conservative on
  // unreachable owners).
  bool IsTrxActive(GTrxId g_trx) const;

  // Fig. 6 wait protocol. OK = holder finished, retry the row; Aborted =
  // deadlock victim; Busy = timeout.
  Status WaitForRowLock(Transaction* trx, GTrxId holder);

  // Reconstructs the newest version visible to `view`, starting from the
  // on-page row. Returns nullopt if no visible version exists.
  StatusOr<std::optional<RowVersion>> VisibleVersion(
      const Transaction* trx, const RowView& row) const;

  // Best-effort commit-time CTS backfill (§4.1).
  void BackfillCts(Transaction* trx);

  // Physically removes `key`'s row if it is a globally-visible tombstone.
  Status PurgeRow(SpaceId space, int64_t key, Csn gmin);

  void FinishWaiters(Transaction* trx);

  EngineContext* const engine_;
  Tit* const tit_;
  TsoClient* const tso_;
  TransactionFusion* const txn_fusion_;
  LockFusion* const lock_fusion_;
  UndoStore* const undo_;
  const Options options_;
  // polarlint: unguarded(installed once by DbNode before transactions run)
  std::function<BTree*(SpaceId)> tree_resolver_;

  mutable RankedMutex mu_{LockRank::kTrxManager, "txn.active"};
  TrxId next_local_id_ GUARDED_BY(mu_) = 1;
  std::map<TrxId, std::unique_ptr<Transaction>> active_ GUARDED_BY(mu_);

  struct FinishedTrx {
    GTrxId gid;
    Csn recycle_after;          // recycle when global min view exceeds this
    uint64_t first_undo_offset;  // UINT64_MAX if no undo
    uint64_t end_undo_offset;    // undo head when the trx finished
  };
  std::vector<FinishedTrx> finished_ GUARDED_BY(mu_);

  // Tombstone purge queue: rows deleted by committed transactions become
  // physically removable once globally visible (the row-level analogue of
  // TIT recycling; without it deleted rows would pin page space forever).
  struct PurgeCandidate {
    SpaceId space;
    int64_t key;
    Csn delete_cts;
  };
  std::vector<PurgeCandidate> purge_queue_ GUARDED_BY(mu_);
  obs::Counter purged_rows_{"txn.purged_rows"};

  obs::Counter lock_waits_{"txn.lock_waits"};
  obs::Counter deadlock_aborts_{"txn.deadlock_aborts"};
  obs::Counter commits_{"txn_fusion.commits"};

  // Commit-path segments (§4.1/§4.4): CTS fetch (one-sided TSO fetch-add),
  // redo force to storage, TIT publish + waiter wakeup, and the whole path.
  obs::LatencyHistogram commit_ns_{"txn_fusion.commit_ns"};
  obs::LatencyHistogram commit_tso_ns_{"txn_fusion.commit_tso_ns"};
  obs::LatencyHistogram commit_log_ns_{"txn_fusion.commit_log_ns"};
  obs::LatencyHistogram commit_publish_ns_{"txn_fusion.commit_publish_ns"};
};

}  // namespace polarmp

#endif  // POLARMP_TXN_TRANSACTION_H_
