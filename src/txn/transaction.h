#ifndef POLARMP_TXN_TRANSACTION_H_
#define POLARMP_TXN_TRANSACTION_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/status_future.h"
#include "engine/btree.h"
#include "engine/undo.h"
#include "obs/metrics.h"
#include "pmfs/lock_fusion.h"
#include "pmfs/transaction_fusion.h"
#include "txn/read_view.h"
#include "txn/tit.h"

namespace polarmp {

enum class TrxState : uint8_t {
  kActive,
  // Commit enqueued on the log writer's force pipeline: provisional CTS
  // published, redo buffered, waiting for the group force to land. The
  // flusher's completion (TrxManager::FinishCommit) moves it on.
  kCommitting,
  kCommitted,
  kRolledBack,
};

// A transaction executing on one node (PolarDB-MP never needs distributed
// transactions: every node sees all data, §1).
class Transaction {
 public:
  Transaction(TrxId local_id, GTrxId gid, IsolationLevel iso)
      : local_id_(local_id), gid_(gid), iso_(iso) {}

  TrxId local_id() const { return local_id_; }
  GTrxId gid() const { return gid_; }
  IsolationLevel isolation() const { return iso_; }
  TrxState state() const { return state_.load(std::memory_order_acquire); }
  Csn cts() const { return cts_; }

  const ReadView& view() const { return view_; }
  // view_.cts is written by the owner thread (RefreshView) while the
  // TrxManager background thread scans it for the minimum view, so the
  // cross-thread accesses go through std::atomic_ref.
  bool has_view() const { return view_cts() != kCsnInit; }
  Csn view_cts() const {
    return std::atomic_ref<Csn>(const_cast<Csn&>(view_.cts))
        .load(std::memory_order_acquire);
  }

  UndoPtr last_undo() const { return last_undo_; }
  // Owner-written, scanned by the background purge pass (atomic_ref, like
  // view_cts() and first_lsn()).
  uint64_t first_undo_offset() const {
    return std::atomic_ref<uint64_t>(const_cast<uint64_t&>(first_undo_offset_))
        .load(std::memory_order_acquire);
  }
  bool has_writes() const { return last_undo_ != kNullUndoPtr; }
  // LSN of the transaction's first redo byte (checkpoints must not pass it
  // while the transaction is active); 0 if it has not written. Written by
  // the owner thread, scanned by the background checkpoint pass — same
  // atomic_ref discipline as view_cts().
  Lsn first_lsn() const {
    return std::atomic_ref<Lsn>(const_cast<Lsn&>(first_lsn_))
        .load(std::memory_order_acquire);
  }

 private:
  friend class TrxManager;

  struct TouchedRow {
    PageId page;  // leaf the row lived on at write time (backfill hint)
    int64_t key;
    SpaceId space;
    bool tombstone;
  };

  const TrxId local_id_;
  const GTrxId gid_;
  const IsolationLevel iso_;
  std::atomic<TrxState> state_{TrxState::kActive};
  ReadView view_;
  Csn cts_ = kCsnInit;

  UndoPtr last_undo_ = kNullUndoPtr;
  uint64_t first_undo_offset_ = UINT64_MAX;  // lowest undo offset written
  Lsn first_lsn_ = 0;
  std::vector<TouchedRow> touched_;

  // Commit-pipeline lifecycle, both guarded by TrxManager::mu_: while
  // commit_pending_ a queued force completion (FinishCommit, on the
  // finalizer thread) still needs this object, so Release defers the erase
  // and sets released_ instead; whoever clears commit_pending_ performs it.
  // polarlint: unguarded(guarded by TrxManager::mu_, annotated there)
  bool commit_pending_ = false;
  // polarlint: unguarded(guarded by TrxManager::mu_, annotated there)
  bool released_ = false;
};

// Per-node transaction manager: TIT slot lifecycle, MVCC visibility
// (Algorithm 1), the embedded-row-lock write protocol (§4.3.2), the
// pipelined commit (enqueue: CTS fetch → provisional publish → redo append
// → force enqueue; finalize, on force completion: post-force CTS → TIT
// publish → CTS backfill → waiter notification) and undo-based rollback.
// Force completions are handed off the flusher thread to a dedicated
// finalizer thread (FIFO, so finalization follows force order): the
// flusher's callbacks must never block, but finalization writes pages
// (backfill, failed-async rollback) and a page eviction forces the log.
// The background tick drives min-view reporting, TIT recycling and undo
// purge.
class TrxManager {
 public:
  struct Options {
    uint64_t lock_wait_timeout_ms = 2'000;
    int write_retry_limit = 64;
    // Opt-in async-commit mode: the client-visible commit point moves to
    // force-ENQUEUE time — CommitAsync completes its callback/future as
    // soon as the commit record is on the group-commit pipeline, row locks
    // release early (writers may overwrite a kCommitting row), and the CTS
    // is finalized in the background when the force lands. Trades the
    // durability wait for a crash window: a commit acknowledged but not yet
    // forced is rolled back by recovery (its provisional CTS is never
    // finalized, so no reader ever admitted it). Default off = classic
    // durable commit (the blocking point is the group force).
    bool async_commit = false;
  };

  TrxManager(EngineContext* engine, Tit* tit, TsoClient* tso,
             TransactionFusion* txn_fusion, LockFusion* lock_fusion,
             UndoStore* undo, const Options& options);
  ~TrxManager();

  TrxManager(const TrxManager&) = delete;
  TrxManager& operator=(const TrxManager&) = delete;

  // Maps a tablespace to its tree so Rollback can route undo records.
  // Installed by DbNode before any transaction runs.
  void SetTreeResolver(std::function<BTree*(SpaceId)> resolver) {
    tree_resolver_ = std::move(resolver);
  }

  NodeId node() const { return engine_->node; }

  // Commit completion primitive. The future/callback completes with the
  // commit's outcome Status at the client-visible commit point: once the
  // group force lands (default), or at force-enqueue (async_commit mode).
  using CommitFuture = StatusFuture;
  using CommitCallback = std::function<void(Status)>;

  StatusOr<Transaction*> Begin(IsolationLevel iso);

  // Async commit: fetches the CTS, publishes it provisionally, buffers the
  // commit record and enqueues a force handle on the log writer's pipeline;
  // returns without blocking. CTS finalization, backfill and waiter wakeup
  // run in FinishCommit on the commit finalizer thread when the force
  // completes. The callback form runs `done` on the finalizer thread (no
  // TrxManager locks held) or inline on the caller for no-write/early-error
  // paths. On a non-OK completion in the default mode the transaction is
  // back in kActive and the caller must Rollback it (Session does).
  CommitFuture CommitAsync(Transaction* trx);
  void CommitAsync(Transaction* trx, CommitCallback done);

  // Blocking shim over CommitAsync — equivalent to CommitAsync(trx).Wait().
  // In async_commit mode this still returns at the enqueue point, so the
  // call is cheap; existing callers (Session) work unchanged in both modes.
  Status Commit(Transaction* trx);

  Status Rollback(Transaction* trx);
  // After Commit/Rollback the pointer stays valid until Release. With a
  // commit still in flight (async mode) the destruction is deferred to the
  // force completion; callers must not touch the pointer after Release.
  void Release(Transaction* trx);

  // ---- row operations (engine-facing; Session wraps them) ----

  // Writes `value` (or a tombstone) for `key`, acquiring the embedded row
  // lock, emitting undo and redo. `must_not_exist` gives INSERT semantics
  // (AlreadyExists if a committed, non-deleted version exists).
  // On success *prev (if non-null) receives the previous committed version
  // (absent for fresh inserts), which callers use for GSI maintenance.
  // Errors: Aborted (deadlock victim), Busy (lock wait timeout), NotFound
  // (update/delete of a missing row — when `require_exists`).
  Status WriteRow(Transaction* trx, BTree* tree, int64_t key, Slice value,
                  bool tombstone, bool must_not_exist, bool require_exists,
                  std::optional<RowVersion>* prev);

  // MVCC point read. NotFound if no visible version (or visible tombstone).
  StatusOr<std::string> ReadRow(Transaction* trx, BTree* tree, int64_t key);

  // Locking point read (SELECT ... FOR UPDATE): acquires the embedded row
  // lock by re-publishing the current committed version under this
  // transaction's gid (regular kUpdate undo restores it on rollback), then
  // returns that value. Unlike ReadRow this reads the LATEST committed
  // version, not the snapshot — which is the point: read-modify-write
  // cycles built on plain ReadRow lose updates under read committed (two
  // transactions read the same base, both write), while a ForUpdate read
  // serializes them on the row lock. Errors mirror WriteRow: Aborted
  // (deadlock victim / SI conflict), Busy (lock wait timeout), NotFound
  // (missing row or visible tombstone).
  StatusOr<std::string> ReadRowForUpdate(Transaction* trx, BTree* tree,
                                         int64_t key);

  // MVCC range scan: visible versions of rows with lo <= key <= hi.
  Status ScanRows(Transaction* trx, BTree* tree, int64_t lo, int64_t hi,
                  const std::function<bool(int64_t, const std::string&)>& fn);

  // Algorithm 1 (GetCTSForRow) generalized to any reconstructed version.
  Csn GetCtsForVersion(GTrxId g_trx, Csn row_cts) const;

  // Drives min-view reporting, TIT recycling and undo purge; called by the
  // node's background thread.
  void BackgroundTick();

  // Checkpoint gate: the lowest first-redo LSN among active writing
  // transactions (UINT64_MAX if none).
  Lsn OldestActiveFirstLsn() const;

  // Recovery: rolls back a pre-crash transaction identified by its gid and
  // last undo pointer, through the normal (logged, locked) engine path.
  Status RollbackRecovered(GTrxId gid, UndoPtr last_undo);

  // Crash support: forget all volatile transaction state. Drains the
  // finalize queue first (queued completions reference the Transactions
  // that die here).
  void DropAll();

  // Blocks until every queued force completion has finished finalizing.
  // Teardown barrier: after LogWriter::Abandon drained the force queue,
  // this drains the resulting FinishCommit continuations while the engine
  // is still alive.
  void DrainCommitQueue();

  // Telemetry shims over this node's registry handles ("txn.*" counters;
  // the commit-path decomposition feeds "txn_fusion.commit*_ns").
  uint64_t purged_rows() const { return purged_rows_.Value(); }
  uint64_t lock_waits() const { return lock_waits_.Value(); }
  uint64_t deadlock_aborts() const { return deadlock_aborts_.Value(); }

 private:
  // Refreshes the statement view per the isolation level.
  Status RefreshView(Transaction* trx);

  // True if the transaction behind `g_trx` is still active (conservative on
  // unreachable owners).
  bool IsTrxActive(GTrxId g_trx) const;

  // Fig. 6 wait protocol. OK = holder finished, retry the row; Aborted =
  // deadlock victim; Busy = timeout.
  Status WaitForRowLock(Transaction* trx, GTrxId holder);

  // Reconstructs the newest version visible to `view`, starting from the
  // on-page row. Returns nullopt if no visible version exists.
  StatusOr<std::optional<RowVersion>> VisibleVersion(
      const Transaction* trx, const RowView& row) const;

  // Best-effort commit-time CTS backfill (§4.1).
  void BackfillCts(Transaction* trx);

  // Force-completion continuation: runs on the commit finalizer thread with
  // no locks held (NEVER on the flusher thread — it writes pages, and a
  // page eviction forces the log, which would deadlock the flusher against
  // itself). Finalizes the CTS (fetched AFTER the force), publishes it,
  // backfills rows, wakes waiters and completes `done`; on a force error it
  // re-activates and, in async mode, rolls the acknowledged commit back.
  void FinishCommit(Transaction* trx, Csn provisional_cts, Status force_status,
                    CommitCallback done);

  // A force completion queued for the finalizer thread.
  struct FinalizeItem {
    Transaction* trx = nullptr;
    Csn provisional_cts = kCsnInit;
    Status force_status;
    CommitCallback done;           // null for async-mode commits
    uint64_t commit_start_ns = 0;  // feeds txn_fusion.commit_ns
  };

  // Hands a force completion to the finalizer thread. Called from the
  // flusher's completion callback (which must not block); if the manager is
  // already stopping, completes `done` with Aborted inline.
  void EnqueueFinalize(FinalizeItem item);
  void FinalizerLoop();

  // Clears trx->commit_pending_ and performs a Release that arrived while
  // the commit was in flight.
  void FinishCommitBookkeeping(Transaction* trx);

  // Physically removes `key`'s row if it is a globally-visible tombstone.
  Status PurgeRow(SpaceId space, int64_t key, Csn gmin);

  void FinishWaiters(Transaction* trx);

  EngineContext* const engine_;
  Tit* const tit_;
  TsoClient* const tso_;
  TransactionFusion* const txn_fusion_;
  LockFusion* const lock_fusion_;
  UndoStore* const undo_;
  const Options options_;
  // polarlint: unguarded(installed once by DbNode before transactions run)
  std::function<BTree*(SpaceId)> tree_resolver_;

  mutable RankedMutex mu_{LockRank::kTrxManager, "txn.active"};
  TrxId next_local_id_ GUARDED_BY(mu_) = 1;
  std::map<TrxId, std::unique_ptr<Transaction>> active_ GUARDED_BY(mu_);

  struct FinishedTrx {
    GTrxId gid;
    Csn recycle_after;          // recycle when global min view exceeds this
    uint64_t first_undo_offset;  // UINT64_MAX if no undo
    uint64_t end_undo_offset;    // undo head when the trx finished
  };
  std::vector<FinishedTrx> finished_ GUARDED_BY(mu_);

  // Tombstone purge queue: rows deleted by committed transactions become
  // physically removable once globally visible (the row-level analogue of
  // TIT recycling; without it deleted rows would pin page space forever).
  struct PurgeCandidate {
    SpaceId space;
    int64_t key;
    Csn delete_cts;
  };
  std::vector<PurgeCandidate> purge_queue_ GUARDED_BY(mu_);
  obs::Counter purged_rows_{"txn.purged_rows"};

  // Commit finalizer: force completions queue here (FIFO = force order) and
  // a dedicated thread runs FinishCommit for each. Kept apart from mu_ so
  // enqueue — called from the flusher's completion path — contends only
  // with the finalizer itself.
  RankedMutex finalize_mu_{LockRank::kCommitFinalize, "txn.finalize"};
  CondVar finalize_cv_;
  std::deque<FinalizeItem> finalize_queue_ GUARDED_BY(finalize_mu_);
  bool finalize_stop_ GUARDED_BY(finalize_mu_) = false;
  bool finalize_busy_ GUARDED_BY(finalize_mu_) = false;
  // polarlint: unguarded(joined by the destructor, touched by no one else)
  std::thread finalizer_;

  obs::Counter lock_waits_{"txn.lock_waits"};
  obs::Counter deadlock_aborts_{"txn.deadlock_aborts"};
  obs::Counter commits_{"txn_fusion.commits"};
  // All committed transactions INCLUDING read-only ones (which skip the
  // commit pipeline above). Benches derive fabric_ops_per_txn from this.
  obs::Counter all_commits_{"trx.commits"};

  // Commit-path segments, pipelined decomposition: enqueue (CTS fetch +
  // provisional publish + record append + force enqueue, on the committer
  // thread), log (force-enqueue to force-landed), finalize (post-force CTS
  // fetch + TIT publish + backfill + waiter wakeup, on the finalizer
  // thread), and the whole path. The TSO fetch keeps its own sub-segment.
  obs::LatencyHistogram commit_ns_{"txn_fusion.commit_ns"};
  obs::LatencyHistogram commit_tso_ns_{"txn_fusion.commit_tso_ns"};
  obs::LatencyHistogram commit_enqueue_ns_{"txn_fusion.commit_enqueue_ns"};
  obs::LatencyHistogram commit_log_ns_{"txn_fusion.commit_log_ns"};
  obs::LatencyHistogram commit_finalize_ns_{"txn_fusion.commit_finalize_ns"};
};

}  // namespace polarmp

#endif  // POLARMP_TXN_TRANSACTION_H_
