#include "baselines/sim_store.h"

#include <chrono>

namespace polarmp {

void SimLogDevice::CommitForce(int node) {
  if (profile_.log_append_ns == 0) return;  // instant-load profiles
  UniqueLock lock(mu_);
  NodeState& st = nodes_[node];  // map nodes are reference-stable
  const uint64_t ticket = st.next_seq++;
  for (;;) {
    if (st.durable_seq > ticket) return;  // a force covered our append
    if (!st.force_in_flight) {
      st.force_in_flight = true;
      // Everything appended up to now rides this one device write.
      const uint64_t covers = st.next_seq;
      const uint64_t group = covers - st.durable_seq;
      lock.unlock();
      SimDelay(profile_.log_append_ns);
      lock.lock();
      forces_.Inc();
      group_size_.Record(group);
      st.durable_seq = covers;
      st.force_in_flight = false;
      cv_.notify_all();
      return;  // covers > ticket by construction
    }
    cv_.wait(lock, [&]() REQUIRES(mu_) { return !st.force_in_flight; });
  }
}

StatusOr<uint32_t> SimStore::CreateTable(const std::string& name) {
  MutexLock lock(mu_);
  if (table_ids_.count(name) != 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  const uint32_t id = static_cast<uint32_t>(table_ids_.size());
  table_ids_[name] = id;
  return id;
}

StatusOr<uint32_t> SimStore::TableId(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = table_ids_.find(name);
  if (it == table_ids_.end()) {
    return Status::NotFound("table missing: " + name);
  }
  return it->second;
}

StatusOr<std::string> SimStore::GetRow(uint32_t table, int64_t key) const {
  row_reads_.Inc();
  MutexLock lock(mu_);
  auto it = rows_.find({table, key});
  if (it == rows_.end()) return Status::NotFound("row missing");
  return it->second;
}

bool SimStore::RowExists(uint32_t table, int64_t key) const {
  MutexLock lock(mu_);
  return rows_.count({table, key}) != 0;
}

void SimStore::PutRow(uint32_t table, int64_t key, const std::string& value) {
  row_writes_.Inc();
  MutexLock lock(mu_);
  rows_[{table, key}] = value;
}

void SimStore::EraseRow(uint32_t table, int64_t key) {
  row_writes_.Inc();
  MutexLock lock(mu_);
  rows_.erase({table, key});
}

Status SimStore::ScanRows(
    uint32_t table, int64_t lo, int64_t hi,
    const std::function<bool(int64_t, const std::string&)>& fn) const {
  // Snapshot first: callbacks re-enter the store (page touches, lock
  // acquisition) and must not run under mu_.
  std::vector<std::pair<int64_t, std::string>> snapshot;
  {
    MutexLock lock(mu_);
    for (auto it = rows_.lower_bound({table, lo});
         it != rows_.end() && it->first.first == table &&
         it->first.second <= hi;
         ++it) {
      snapshot.emplace_back(it->first.second, it->second);
    }
  }
  for (const auto& [key, value] : snapshot) {
    if (!fn(key, value)) break;
  }
  return Status::OK();
}

uint64_t SimStore::PageVersion(SimPageKey page) const {
  MutexLock lock(mu_);
  auto it = page_versions_.find(page);
  return it == page_versions_.end() ? 0 : it->second.version;
}

void SimStore::BumpPageVersion(SimPageKey page) {
  MutexLock lock(mu_);
  ++page_versions_[page].version;
}

bool SimStore::ValidateAndBump(
    const std::map<SimPageKey, uint64_t>& observed, int node) {
  occ_validations_.Inc();
  MutexLock lock(mu_);
  for (const auto& [page, version] : observed) {
    auto it = page_versions_.find(page);
    if (it == page_versions_.end()) continue;
    if (it->second.version != version && it->second.last_writer != node) {
      occ_aborts_.Inc();
      return false;
    }
  }
  for (const auto& [page, version] : observed) {
    PageState& state = page_versions_[page];
    ++state.version;
    state.last_writer = node;
  }
  return true;
}

void SimStore::ResetCounters() {
  row_reads_.Reset();
  row_writes_.Reset();
  occ_validations_.Reset();
  occ_aborts_.Reset();
}

bool SimLockTable::CanGrant(const Entry& e, uint64_t owner,
                            LockMode mode) const {
  for (const auto& [holder, held] : e.holders) {
    if (holder == owner) continue;
    if (LockModesConflict(held, mode)) return false;
  }
  return true;
}

Status SimLockTable::Acquire(uint64_t resource, uint64_t owner, LockMode mode,
                             uint64_t timeout_ms, bool charge_rpc) {
  if (charge_rpc) SimDelay(profile_.rpc_ns);
  UniqueLock lock(mu_);
  acquires_.Inc();
  Entry& e = locks_[resource];
  auto held = e.holders.find(owner);
  if (held != e.holders.end() &&
      (held->second == LockMode::kExclusive || held->second == mode)) {
    return Status::OK();
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  bool waited = false;
  while (!CanGrant(e, owner, mode)) {
    waited = true;
    ++e.waiters;
    const auto result = cv_.wait_until(lock, deadline);
    --e.waiters;
    if (result == std::cv_status::timeout && !CanGrant(e, owner, mode)) {
      if (e.holders.empty() && e.waiters == 0) locks_.erase(resource);
      return Status::Busy("baseline lock timeout");
    }
  }
  if (waited) waits_.Inc();
  auto& slot = e.holders[owner];
  slot = std::max(slot, mode);
  by_owner_[owner].insert(resource);
  return Status::OK();
}

void SimLockTable::ReleaseAll(uint64_t owner, bool charge_rpc) {
  if (charge_rpc) SimDelay(profile_.rpc_ns);
  MutexLock lock(mu_);
  auto it = by_owner_.find(owner);
  if (it == by_owner_.end()) return;
  for (uint64_t resource : it->second) {
    auto lit = locks_.find(resource);
    if (lit == locks_.end()) continue;
    lit->second.holders.erase(owner);
    if (lit->second.holders.empty() && lit->second.waiters == 0) {
      locks_.erase(lit);
    }
  }
  by_owner_.erase(it);
  cv_.notify_all();
}

}  // namespace polarmp
