#ifndef POLARMP_BASELINES_AURORA_MM_H_
#define POLARMP_BASELINES_AURORA_MM_H_

#include <atomic>

#include "baselines/database.h"
#include "baselines/sim_store.h"
#include "common/lock_rank.h"
#include "obs/metrics.h"

namespace polarmp {

// Aurora Multi-Master behavioral model (§2.3, §5.3).
//
// Shared storage + optimistic concurrency control: nodes execute
// transactions against locally cached pages with no cross-node locking; at
// commit the storage tier validates that no other node modified the same
// *pages* since they were read, and on conflict the transaction aborts
// ("it reports such write conflicts to the application as a deadlock
// error"). There is no cache-coherence protocol: a node discovers remote
// writes only by observing a page-version change at its next access,
// paying a storage read to refresh — no RDMA shared memory, no DBP.
class AuroraMmDatabase : public Database {
 public:
  AuroraMmDatabase(const LatencyProfile& profile, int nodes);

  const char* name() const override { return "Aurora-MM"; }
  int num_nodes() const override { return nodes_; }
  Status AddNode() override {
    ++nodes_;
    node_caches_.emplace_back(new NodeCache());
    return Status::OK();
  }
  Status CreateTable(const std::string& name, uint32_t num_indexes) override;
  StatusOr<std::unique_ptr<Connection>> Connect(int node_index) override;

  uint64_t occ_aborts() const { return occ_aborts_.Value(); }

 private:
  friend class AuroraConnection;

  struct NodeCache {
    // Held while reading store page versions (SimStore mu_, kSimStore).
    RankedMutex mu{LockRank::kBaselineNode, "aurora.node_cache"};
    std::unordered_map<SimPageKey, uint64_t, SimPageKeyHash> versions
        GUARDED_BY(mu);
  };

  // Charges a storage read iff the node's cached page version is stale
  // (or absent); returns the version observed.
  uint64_t TouchPage(int node, SimPageKey page);

  SimStore store_;
  int nodes_;
  std::vector<std::unique_ptr<NodeCache>> node_caches_;
  obs::Counter occ_aborts_{"aurora_mm.occ_aborts"};
  // polarlint: allow(raw-atomic) transaction-id allocator, not a counter
  std::atomic<uint64_t> next_trx_{1};
};

}  // namespace polarmp

#endif  // POLARMP_BASELINES_AURORA_MM_H_
