#ifndef POLARMP_BASELINES_DATABASE_H_
#define POLARMP_BASELINES_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"

namespace polarmp {

// System-agnostic interface the workload driver runs against. PolarDB-MP
// implements it over the real engine; the comparison baselines (§5.3/§5.4)
// implement it over behavioral cost models that share the same latency
// profile, so cross-system comparisons measure architecture, not
// implementation accidents.
//
// Transactions follow the Session contract: Begin → ops → Commit/Rollback.
// Ops returning Aborted (deadlock / OCC conflict — what Aurora-MM "reports
// to the application as a deadlock error") or Busy (lock-wait timeout)
// have already rolled the transaction back; the driver counts the abort
// and retries with a fresh transaction.
class Connection {
 public:
  virtual ~Connection() = default;

  virtual Status Begin() = 0;
  virtual Status Commit() = 0;
  virtual Status Rollback() = 0;

  virtual Status Insert(const std::string& table, int64_t key,
                        Slice value) = 0;
  virtual Status Update(const std::string& table, int64_t key,
                        Slice value) = 0;
  virtual Status Put(const std::string& table, int64_t key, Slice value) = 0;
  virtual Status Delete(const std::string& table, int64_t key) = 0;
  virtual StatusOr<std::string> Get(const std::string& table, int64_t key) = 0;
  virtual Status Scan(
      const std::string& table, int64_t lo, int64_t hi,
      const std::function<bool(int64_t, const std::string&)>& fn) = 0;
};

class Database {
 public:
  virtual ~Database() = default;

  virtual const char* name() const = 0;
  virtual int num_nodes() const = 0;
  // Online scale-out (Fig. 10). Not all baselines support it.
  virtual Status AddNode() = 0;
  virtual Status CreateTable(const std::string& name, uint32_t num_indexes) = 0;
  // A connection bound to node `node_index` (0-based, modulo num_nodes).
  virtual StatusOr<std::unique_ptr<Connection>> Connect(int node_index) = 0;
};

// PolarDB-MP behind the Database interface (a thin adapter over Cluster).
class PolarMpDatabase : public Database {
 public:
  static StatusOr<std::unique_ptr<PolarMpDatabase>> Create(
      const ClusterOptions& options, int initial_nodes);

  const char* name() const override { return "PolarDB-MP"; }
  int num_nodes() const override;
  Status AddNode() override;
  Status CreateTable(const std::string& name, uint32_t num_indexes) override;
  StatusOr<std::unique_ptr<Connection>> Connect(int node_index) override;

  Cluster* cluster() { return cluster_.get(); }

 private:
  explicit PolarMpDatabase(std::unique_ptr<Cluster> cluster)
      : cluster_(std::move(cluster)) {}

  std::unique_ptr<Cluster> cluster_;
};

}  // namespace polarmp

#endif  // POLARMP_BASELINES_DATABASE_H_
