#ifndef POLARMP_BASELINES_SINGLE_PRIMARY_H_
#define POLARMP_BASELINES_SINGLE_PRIMARY_H_

#include "baselines/database.h"

namespace polarmp {

// The classic primary-secondary deployment (§2.1): one primary node
// processes everything; there is nothing to scale out to. Implemented as a
// one-node PolarDB-MP cluster (the multi-primary machinery degenerates to
// zero cross-node traffic), with every connection routed to the primary
// and AddNode rejected — "scaling out to improve performance is not an
// option in such architecture".
class SinglePrimaryDatabase : public Database {
 public:
  static StatusOr<std::unique_ptr<SinglePrimaryDatabase>> Create(
      const ClusterOptions& options);

  const char* name() const override { return "Single-Primary"; }
  int num_nodes() const override { return 1; }
  Status AddNode() override {
    return Status::NotSupported("single-primary cannot scale out writes");
  }
  Status CreateTable(const std::string& name, uint32_t num_indexes) override {
    return inner_->CreateTable(name, num_indexes);
  }
  StatusOr<std::unique_ptr<Connection>> Connect(int node_index) override {
    (void)node_index;
    return inner_->Connect(0);  // everything lands on the primary
  }

 private:
  explicit SinglePrimaryDatabase(std::unique_ptr<PolarMpDatabase> inner)
      : inner_(std::move(inner)) {}

  std::unique_ptr<PolarMpDatabase> inner_;
};

}  // namespace polarmp

#endif  // POLARMP_BASELINES_SINGLE_PRIMARY_H_
