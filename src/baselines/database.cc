#include "baselines/database.h"

#include <unordered_map>

namespace polarmp {

namespace {

// Connection over a live PolarDB-MP node: one Session plus a table-handle
// cache so name resolution happens once.
class PolarMpConnection : public Connection {
 public:
  explicit PolarMpConnection(DbNode* node)
      : node_(node), session_(node, IsolationLevel::kReadCommitted) {}

  Status Begin() override { return session_.Begin(); }
  Status Commit() override { return session_.Commit(); }
  Status Rollback() override {
    if (!session_.in_transaction()) return Status::OK();  // auto-rolled-back
    return session_.Rollback();
  }

  Status Insert(const std::string& table, int64_t key, Slice value) override {
    POLARMP_ASSIGN_OR_RETURN(TableHandle * handle, Resolve(table));
    return session_.Insert(*handle, key, value);
  }
  Status Update(const std::string& table, int64_t key, Slice value) override {
    POLARMP_ASSIGN_OR_RETURN(TableHandle * handle, Resolve(table));
    return session_.Update(*handle, key, value);
  }
  Status Put(const std::string& table, int64_t key, Slice value) override {
    POLARMP_ASSIGN_OR_RETURN(TableHandle * handle, Resolve(table));
    return session_.Put(*handle, key, value);
  }
  Status Delete(const std::string& table, int64_t key) override {
    POLARMP_ASSIGN_OR_RETURN(TableHandle * handle, Resolve(table));
    return session_.Delete(*handle, key);
  }
  StatusOr<std::string> Get(const std::string& table, int64_t key) override {
    POLARMP_ASSIGN_OR_RETURN(TableHandle * handle, Resolve(table));
    return session_.Get(*handle, key);
  }
  Status Scan(const std::string& table, int64_t lo, int64_t hi,
              const std::function<bool(int64_t, const std::string&)>& fn)
      override {
    POLARMP_ASSIGN_OR_RETURN(TableHandle * handle, Resolve(table));
    return session_.Scan(*handle, lo, hi, fn);
  }

 private:
  StatusOr<TableHandle*> Resolve(const std::string& table) {
    auto it = tables_.find(table);
    if (it == tables_.end()) {
      POLARMP_ASSIGN_OR_RETURN(TableHandle handle, node_->OpenTable(table));
      it = tables_.emplace(table, handle).first;
    }
    return &it->second;
  }

  DbNode* node_;
  Session session_;
  std::unordered_map<std::string, TableHandle> tables_;
};

}  // namespace

StatusOr<std::unique_ptr<PolarMpDatabase>> PolarMpDatabase::Create(
    const ClusterOptions& options, int initial_nodes) {
  POLARMP_ASSIGN_OR_RETURN(std::unique_ptr<Cluster> cluster,
                           Cluster::Create(options));
  for (int i = 0; i < initial_nodes; ++i) {
    POLARMP_RETURN_IF_ERROR(cluster->AddNode().status());
  }
  return std::unique_ptr<PolarMpDatabase>(
      new PolarMpDatabase(std::move(cluster)));
}

int PolarMpDatabase::num_nodes() const {
  return static_cast<int>(
      const_cast<Cluster*>(cluster_.get())->live_nodes().size());
}

Status PolarMpDatabase::AddNode() { return cluster_->AddNode().status(); }

Status PolarMpDatabase::CreateTable(const std::string& name,
                                    uint32_t num_indexes) {
  return cluster_->CreateTable(name, num_indexes).status();
}

StatusOr<std::unique_ptr<Connection>> PolarMpDatabase::Connect(
    int node_index) {
  auto nodes = cluster_->live_nodes();
  if (nodes.empty()) return Status::Unavailable("no live nodes");
  DbNode* node = nodes[static_cast<size_t>(node_index) % nodes.size()];
  return std::unique_ptr<Connection>(new PolarMpConnection(node));
}

}  // namespace polarmp
