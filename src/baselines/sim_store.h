#ifndef POLARMP_BASELINES_SIM_STORE_H_
#define POLARMP_BASELINES_SIM_STORE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lock_rank.h"
#include "common/sim_latency.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace polarmp {

// Substrate shared by the Aurora-MM / Taurus-MM / shared-nothing baselines.
//
// These baselines are *behavioral cost models*: they execute the workload's
// transactions with correct local semantics (committed reads, write
// buffering, 2PL or OCC validation) while charging the same latency profile
// PolarDB-MP pays, so throughput comparisons isolate the architectural
// difference the paper evaluates (abort-on-conflict vs page-store+replay
// coherence vs 2PC vs RDMA shared memory). Rows live in one shared map;
// the page abstraction — fixed-size key groups with a version counter —
// exists to model page-granular conflicts and page-granular coherence,
// which is where both Aurora-MM's aborts and Taurus-MM's replay costs come
// from.
inline constexpr int64_t kSimRowsPerPage = 160;  // ~16 KB page / ~100 B row
// Aurora-MM's cross-node write conflicts are detected by the storage tier
// at a granularity coarser than a row — pages plus the index/structural
// pages every insert or delete drags in. The model validates writes at
// segment granularity (a run of adjacent pages) to capture that false
// sharing; intra-node concurrency uses ordinary local locking and never
// OCC-aborts, as in the real system.
inline constexpr int64_t kSimPagesPerSegment = 32;

struct SimPageKey {
  uint32_t table = 0;
  int64_t page = 0;
  bool operator==(const SimPageKey& o) const {
    return table == o.table && page == o.page;
  }
  bool operator<(const SimPageKey& o) const {
    return table != o.table ? table < o.table : page < o.page;
  }
};

struct SimPageKeyHash {
  size_t operator()(const SimPageKey& k) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(k.table) << 40) ^
                                 static_cast<uint64_t>(k.page) *
                                     0x9E3779B97F4A7C15ull);
  }
};

// Per-node redo-log device shared by the baselines' commit paths.
//
// Every modeled system group-commits: concurrent committers on one node
// ride a single device force instead of serializing one log_append_ns
// each. PolarDB-MP's side runs a pipelined group-commit log writer, so the
// cost models must charge the same way for the throughput comparison to
// stay an architecture comparison. CommitForce(node) takes a ticket, joins
// the force already on the wire for that node when its append precedes the
// device write, and otherwise starts (or waits for) the next one.
class SimLogDevice {
 public:
  explicit SimLogDevice(const LatencyProfile& profile) : profile_(profile) {}

  // Models appending this committer's log and forcing the device, grouped
  // with concurrent committers of the same node: blocks for ~one
  // log_append_ns plus queueing behind an in-flight force.
  void CommitForce(int node);

  // Device forces actually charged ("sim_store.log_forces"; group sizes in
  // the "sim_store.log_group_size" histogram).
  uint64_t forces() const { return forces_.Value(); }

 private:
  struct NodeState {
    uint64_t next_seq = 0;     // next ticket to hand out
    uint64_t durable_seq = 0;  // tickets below this are durable
    bool force_in_flight = false;
  };

  const LatencyProfile profile_;
  RankedMutex mu_{LockRank::kSimLogDevice, "sim_store.log_device"};
  CondVar cv_;
  std::map<int, NodeState> nodes_ GUARDED_BY(mu_);
  obs::Counter forces_{"sim_store.log_forces"};
  obs::LatencyHistogram group_size_{"sim_store.log_group_size"};
};

// Shared row + page-version store.
class SimStore {
 public:
  explicit SimStore(const LatencyProfile& profile) : profile_(profile) {}

  const LatencyProfile& profile() const { return profile_; }

  // The shared group-commit log device (one per cluster model, keyed by
  // node inside).
  SimLogDevice* log_device() { return &log_device_; }

  StatusOr<uint32_t> CreateTable(const std::string& name);
  StatusOr<uint32_t> TableId(const std::string& name) const;

  SimPageKey PageOf(uint32_t table, int64_t key) const {
    return SimPageKey{table, key / kSimRowsPerPage};
  }

  // Committed-state row access (callers hold whatever locks their protocol
  // requires; the map itself is internally consistent).
  StatusOr<std::string> GetRow(uint32_t table, int64_t key) const;
  bool RowExists(uint32_t table, int64_t key) const;
  void PutRow(uint32_t table, int64_t key, const std::string& value);
  void EraseRow(uint32_t table, int64_t key);
  Status ScanRows(uint32_t table, int64_t lo, int64_t hi,
                  const std::function<bool(int64_t, const std::string&)>& fn)
      const;

  // Page version counters (bumped by committed writes).
  uint64_t PageVersion(SimPageKey page) const;
  void BumpPageVersion(SimPageKey page);
  // Atomic OCC validation for `node`: fails iff some observed page has
  // since been modified BY A DIFFERENT NODE (intra-node interleavings are
  // serialized by node-local locking in the real system). On success bumps
  // all versions with `node` as the writer.
  bool ValidateAndBump(const std::map<SimPageKey, uint64_t>& observed,
                       int node);

  // ---- telemetry ------------------------------------------------------------
  // Shims over this instance's registry handles ("sim_store.*" families).
  uint64_t row_reads() const { return row_reads_.Value(); }
  uint64_t row_writes() const { return row_writes_.Value(); }
  uint64_t occ_validations() const { return occ_validations_.Value(); }
  uint64_t occ_aborts() const { return occ_aborts_.Value(); }
  void ResetCounters();

 private:
  struct PageState {
    uint64_t version = 0;
    int last_writer = -1;
  };

  const LatencyProfile profile_;
  // polarlint: unguarded(internally synchronized; owns its own RankedMutex)
  SimLogDevice log_device_{profile_};
  mutable RankedMutex mu_{LockRank::kSimStore, "sim_store.rows"};
  std::map<std::string, uint32_t> table_ids_ GUARDED_BY(mu_);
  // (table, key) -> value
  std::map<std::pair<uint32_t, int64_t>, std::string> rows_ GUARDED_BY(mu_);
  std::unordered_map<SimPageKey, PageState, SimPageKeyHash> page_versions_
      GUARDED_BY(mu_);

  mutable obs::Counter row_reads_{"sim_store.row_reads"};
  obs::Counter row_writes_{"sim_store.row_writes"};
  obs::Counter occ_validations_{"sim_store.occ_validations"};
  obs::Counter occ_aborts_{"sim_store.occ_aborts"};
};

// Blocking FIFO lock table keyed by an opaque 64-bit resource id, used for
// the baselines' page (Taurus) and row (shared-nothing) locks. Owners are
// transaction ids. Timeout-based deadlock resolution (the conventional
// fallback in both systems).
class SimLockTable {
 public:
  explicit SimLockTable(const LatencyProfile& profile) : profile_(profile) {}

  // Blocks until granted; charges one RPC per remote acquisition attempt
  // (`charge_rpc`). Busy on timeout. Re-entrant for the same owner
  // (upgrades S→X when possible).
  Status Acquire(uint64_t resource, uint64_t owner, LockMode mode,
                 uint64_t timeout_ms, bool charge_rpc);
  // Releases all of `owner`'s locks (commit/abort); charges one RPC.
  void ReleaseAll(uint64_t owner, bool charge_rpc);

  // Shims over registry handles ("sim_store.lock_*" families); safe to
  // read lock-free while workers are acquiring.
  uint64_t acquires() const { return acquires_.Value(); }
  uint64_t waits() const { return waits_.Value(); }

 private:
  struct Entry {
    std::map<uint64_t, LockMode> holders;
    uint64_t waiters = 0;
  };
  bool CanGrant(const Entry& e, uint64_t owner, LockMode mode) const
      REQUIRES(mu_);

  const LatencyProfile profile_;
  RankedMutex mu_{LockRank::kSimLockTable, "sim_store.lock_table"};
  CondVar cv_;
  std::unordered_map<uint64_t, Entry> locks_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::set<uint64_t>> by_owner_ GUARDED_BY(mu_);
  obs::Counter acquires_{"sim_store.lock_acquires"};
  obs::Counter waits_{"sim_store.lock_waits"};
};

}  // namespace polarmp

#endif  // POLARMP_BASELINES_SIM_STORE_H_
