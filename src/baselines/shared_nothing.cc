#include "baselines/shared_nothing.h"

#include <optional>
#include <set>

#include "common/coding.h"

#include "node/db_node.h"  // EncodeIndexedValue / DecodeIndexColumn helpers

namespace polarmp {

std::string IndexTableName(const std::string& table, size_t i) {
  return table + "#idx" + std::to_string(i);
}

class SharedNothingConnection : public Connection {
 public:
  SharedNothingConnection(SharedNothingDatabase* db, SimStore* store,
                          SimLockTable* locks, int node,
                          uint64_t lock_timeout_ms)
      : db_(db),
        store_(store),
        locks_(locks),
        node_(node),
        lock_timeout_ms_(lock_timeout_ms) {}

  ~SharedNothingConnection() override {
    if (active_) locks_->ReleaseAll(trx_, /*charge_rpc=*/false);
  }

  Status Begin() override {
    POLARMP_CHECK(!active_);
    active_ = true;
    trx_ = db_->next_trx_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  Status Rollback() override {
    locks_->ReleaseAll(trx_, /*charge_rpc=*/true);
    Clear();
    return Status::OK();
  }

  Status Commit() override {
    POLARMP_CHECK(active_);
    if (!writes_.empty()) {
      SimDelay(store_->profile().baseline_commit_overhead_ns);
      if (participants_.size() <= 1) {
        store_->log_device()->CommitForce(node_);
        db_->single_partition_commits_.Inc();
      } else {
        // Two-phase commit across participants: prepare round (RPC +
        // forced prepare record on each participant's group-commit log),
        // then the coordinator's decision record and the commit round.
        for (int participant : participants_) {
          SimDelay(store_->profile().rpc_ns);
          store_->log_device()->CommitForce(participant);
        }
        store_->log_device()->CommitForce(node_);
        for (size_t i = 0; i < participants_.size(); ++i) {
          SimDelay(store_->profile().rpc_ns);
        }
        db_->two_phase_commits_.Inc();
      }
      for (const auto& [row, value] : writes_) {
        if (value.has_value()) {
          store_->PutRow(row.first, row.second, *value);
        } else {
          store_->EraseRow(row.first, row.second);
        }
      }
    }
    locks_->ReleaseAll(trx_, /*charge_rpc=*/true);
    Clear();
    return Status::OK();
  }

  Status Insert(const std::string& table, int64_t key, Slice value) override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    POLARMP_RETURN_IF_ERROR(LockRow(tid, key));
    if (Exists(tid, key)) return Status::AlreadyExists("key exists");
    writes_[{tid, key}] = value.ToString();
    return MaintainIndexes(table, key, std::nullopt, value.ToString());
  }

  Status Update(const std::string& table, int64_t key, Slice value) override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    POLARMP_RETURN_IF_ERROR(LockRow(tid, key));
    auto prev = CurrentValue(tid, key);
    if (!prev.has_value()) return Status::NotFound("no row");
    writes_[{tid, key}] = value.ToString();
    return MaintainIndexes(table, key, prev, value.ToString());
  }

  Status Put(const std::string& table, int64_t key, Slice value) override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    POLARMP_RETURN_IF_ERROR(LockRow(tid, key));
    auto prev = CurrentValue(tid, key);
    writes_[{tid, key}] = value.ToString();
    return MaintainIndexes(table, key, prev, value.ToString());
  }

  Status Delete(const std::string& table, int64_t key) override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    POLARMP_RETURN_IF_ERROR(LockRow(tid, key));
    auto prev = CurrentValue(tid, key);
    if (!prev.has_value()) return Status::NotFound("no row");
    writes_[{tid, key}] = std::nullopt;
    return MaintainIndexes(table, key, prev, std::nullopt);
  }

  StatusOr<std::string> Get(const std::string& table, int64_t key) override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    ChargeRouting(tid, key, /*is_write=*/false);
    auto cur = CurrentValue(tid, key);
    if (!cur.has_value()) return Status::NotFound("no row");
    return *cur;
  }

  Status Scan(const std::string& table, int64_t lo, int64_t hi,
              const std::function<bool(int64_t, const std::string&)>& fn)
      override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    // A range scan fans out to every partition (scatter-gather).
    for (int n = 0; n < db_->num_nodes(); ++n) {
      if (n != node_) SimDelay(store_->profile().rpc_ns);
    }
    return store_->ScanRows(tid, lo, hi, fn);
  }

 private:
  void ChargeRouting(uint32_t tid, int64_t key, bool is_write) {
    SimDelay(store_->profile().baseline_op_overhead_ns);
    const int owner = db_->OwnerOf(tid, key);
    if (owner != node_) SimDelay(store_->profile().rpc_ns);
    if (is_write) participants_.insert(owner);
  }

  Status LockRow(uint32_t tid, int64_t key) {
    ChargeRouting(tid, key, /*is_write=*/true);
    const uint64_t resource =
        (static_cast<uint64_t>(tid) << 40) ^ static_cast<uint64_t>(key);
    const Status s = locks_->Acquire(resource, trx_, LockMode::kExclusive,
                                     lock_timeout_ms_, /*charge_rpc=*/false);
    if (s.IsBusy()) {
      locks_->ReleaseAll(trx_, /*charge_rpc=*/true);
      Clear();
      return Status::Busy("lock timeout (shared-nothing)");
    }
    return s;
  }

  std::optional<std::string> CurrentValue(uint32_t tid, int64_t key) {
    auto it = writes_.find({tid, key});
    if (it != writes_.end()) return it->second;
    auto v = store_->GetRow(tid, key);
    if (!v.ok()) return std::nullopt;
    return std::move(v).value();
  }

  bool Exists(uint32_t tid, int64_t key) {
    return CurrentValue(tid, key).has_value();
  }

  // Partitioned-GSI maintenance: each changed index column updates an
  // entry in the index's own partition — the distributed-transaction
  // amplification Fig. 13 measures.
  Status MaintainIndexes(const std::string& table, int64_t key,
                         const std::optional<std::string>& prev,
                         const std::optional<std::string>& next) {
    const uint32_t num_indexes = db_->IndexesOf(table);
    for (uint32_t i = 0; i < num_indexes; ++i) {
      std::optional<uint64_t> old_col, new_col;
      if (prev.has_value()) old_col = DecodeIndexColumn(*prev, i);
      if (next.has_value()) new_col = DecodeIndexColumn(*next, i);
      if (old_col == new_col) continue;
      POLARMP_ASSIGN_OR_RETURN(uint32_t itid,
                               store_->TableId(IndexTableName(table, i)));
      if (old_col.has_value()) {
        const int64_t entry = MakeIndexEntryKey(*old_col, key);
        POLARMP_RETURN_IF_ERROR(LockRow(itid, entry));
        writes_[{itid, entry}] = std::nullopt;
      }
      if (new_col.has_value()) {
        const int64_t entry = MakeIndexEntryKey(*new_col, key);
        POLARMP_RETURN_IF_ERROR(LockRow(itid, entry));
        char pk[8];
        EncodeFixed64(pk, static_cast<uint64_t>(key));
        writes_[{itid, entry}] = std::string(pk, 8);
      }
    }
    return Status::OK();
  }

  void Clear() {
    active_ = false;
    writes_.clear();
    participants_.clear();
  }

  SharedNothingDatabase* db_;
  SimStore* store_;
  SimLockTable* locks_;
  const int node_;
  const uint64_t lock_timeout_ms_;
  bool active_ = false;
  uint64_t trx_ = 0;
  std::map<std::pair<uint32_t, int64_t>, std::optional<std::string>> writes_;
  std::set<int> participants_;
};

SharedNothingDatabase::SharedNothingDatabase(const Options& options)
    : options_(options), store_(options.profile), locks_(options.profile) {}

Status SharedNothingDatabase::CreateTable(const std::string& name,
                                          uint32_t num_indexes) {
  POLARMP_RETURN_IF_ERROR(store_.CreateTable(name).status());
  for (uint32_t i = 0; i < num_indexes; ++i) {
    POLARMP_RETURN_IF_ERROR(
        store_.CreateTable(IndexTableName(name, i)).status());
  }
  MutexLock lock(meta_mu_);
  table_indexes_[name] = num_indexes;
  return Status::OK();
}

uint32_t SharedNothingDatabase::IndexesOf(const std::string& table) {
  MutexLock lock(meta_mu_);
  auto it = table_indexes_.find(table);
  return it == table_indexes_.end() ? 0 : it->second;
}

StatusOr<std::unique_ptr<Connection>> SharedNothingDatabase::Connect(
    int node_index) {
  return std::unique_ptr<Connection>(new SharedNothingConnection(
      this, &store_, &locks_, node_index % options_.nodes,
      options_.lock_timeout_ms));
}

}  // namespace polarmp
