#include "baselines/aurora_mm.h"

#include <optional>

namespace polarmp {

class AuroraConnection : public Connection {
 public:
  AuroraConnection(AuroraMmDatabase* db, SimStore* store, int node)
      : db_(db), store_(store), node_(node) {}

  Status Begin() override {
    POLARMP_CHECK(!active_);
    active_ = true;
    return Status::OK();
  }

  Status Rollback() override {
    Clear();
    return Status::OK();
  }

  Status Commit() override {
    POLARMP_CHECK(active_);
    if (writes_.empty()) {
      Clear();
      return Status::OK();
    }
    // Commit = engine work + ship the log to the storage quorum...
    SimDelay(store_->profile().baseline_commit_overhead_ns);
    store_->log_device()->CommitForce(node_);
    // ...which validates page versions and aborts on any concurrent
    // modification of the same pages (OCC, page granularity).
    if (!store_->ValidateAndBump(write_pages_, node_)) {
      db_->occ_aborts_.Inc();
      Clear();
      return Status::Aborted("deadlock error (Aurora-MM write conflict)");
    }
    for (const auto& [row, value] : writes_) {
      if (value.has_value()) {
        store_->PutRow(row.first, row.second, *value);
      } else {
        store_->EraseRow(row.first, row.second);
      }
    }
    // Our own cache is current for the pages we just bumped.
    auto& cache = *db_->node_caches_[node_];
    MutexLock lock(cache.mu);
    for (const auto& [page, version] : write_pages_) {
      cache.versions[page] = version + 1;
    }
    Clear();
    return Status::OK();
  }

  Status Insert(const std::string& table, int64_t key, Slice value) override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    ObservePage(tid, key, /*write=*/true);
    if (Exists(tid, key)) return Status::AlreadyExists("key exists");
    writes_[{tid, key}] = value.ToString();
    return Status::OK();
  }

  Status Update(const std::string& table, int64_t key, Slice value) override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    ObservePage(tid, key, /*write=*/true);
    if (!Exists(tid, key)) return Status::NotFound("no row");
    writes_[{tid, key}] = value.ToString();
    return Status::OK();
  }

  Status Put(const std::string& table, int64_t key, Slice value) override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    ObservePage(tid, key, /*write=*/true);
    writes_[{tid, key}] = value.ToString();
    return Status::OK();
  }

  Status Delete(const std::string& table, int64_t key) override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    ObservePage(tid, key, /*write=*/true);
    if (!Exists(tid, key)) return Status::NotFound("no row");
    writes_[{tid, key}] = std::nullopt;
    return Status::OK();
  }

  StatusOr<std::string> Get(const std::string& table, int64_t key) override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    ObservePage(tid, key, /*write=*/false);
    auto it = writes_.find({tid, key});
    if (it != writes_.end()) {
      if (!it->second.has_value()) return Status::NotFound("deleted");
      return *it->second;
    }
    return store_->GetRow(tid, key);
  }

  Status Scan(const std::string& table, int64_t lo, int64_t hi,
              const std::function<bool(int64_t, const std::string&)>& fn)
      override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    SimPageKey last{UINT32_MAX, 0};
    return store_->ScanRows(tid, lo, hi,
                            [&](int64_t key, const std::string& value) {
                              const SimPageKey page = store_->PageOf(tid, key);
                              if (!(page == last)) {
                                db_->TouchPage(node_, page);
                                last = page;
                              }
                              return fn(key, value);
                            });
  }

 private:
  void ObservePage(uint32_t tid, int64_t key, bool write) {
    SimDelay(store_->profile().baseline_op_overhead_ns);
    const SimPageKey page = store_->PageOf(tid, key);
    const uint64_t version = db_->TouchPage(node_, page);
    if (write) {
      write_pages_.emplace(page, version);
      ObserveSegment(tid, key);
    }
  }

  // The storage tier validates at segment granularity; segments ride in
  // the same version space tagged by negative page numbers.
  void ObserveSegment(uint32_t tid, int64_t key) {
    const int64_t leaf = key / kSimRowsPerPage;
    const SimPageKey seg{tid, -(leaf / kSimPagesPerSegment) - 1};
    const uint64_t version = store_->PageVersion(seg);
    write_pages_.emplace(seg, version);
  }

  bool Exists(uint32_t tid, int64_t key) {
    auto it = writes_.find({tid, key});
    if (it != writes_.end()) return it->second.has_value();
    return store_->RowExists(tid, key);
  }

  void Clear() {
    active_ = false;
    writes_.clear();
    write_pages_.clear();
  }

  AuroraMmDatabase* db_;
  SimStore* store_;
  const int node_;
  bool active_ = false;
  std::map<std::pair<uint32_t, int64_t>, std::optional<std::string>> writes_;
  std::map<SimPageKey, uint64_t> write_pages_;  // version at first touch
};

AuroraMmDatabase::AuroraMmDatabase(const LatencyProfile& profile, int nodes)
    : store_(profile), nodes_(nodes) {
  for (int i = 0; i < nodes; ++i) node_caches_.emplace_back(new NodeCache());
}

Status AuroraMmDatabase::CreateTable(const std::string& name,
                                     uint32_t num_indexes) {
  if (num_indexes != 0) {
    return Status::NotSupported(
        "the Aurora-MM model does not simulate GSIs (not part of Fig. 13)");
  }
  return store_.CreateTable(name).status();
}

uint64_t AuroraMmDatabase::TouchPage(int node, SimPageKey page) {
  const uint64_t current = store_.PageVersion(page);
  NodeCache& cache = *node_caches_[node];
  bool stale;
  {
    MutexLock lock(cache.mu);
    auto it = cache.versions.find(page);
    stale = it == cache.versions.end() || it->second < current;
    cache.versions[page] = current;
  }
  if (stale) {
    // Page (re)fetch from the storage tier — Aurora-MM has no DBP, so every
    // remotely-modified page costs a storage read on next access.
    SimDelay(store_.profile().storage_read_ns);
  }
  return current;
}

StatusOr<std::unique_ptr<Connection>> AuroraMmDatabase::Connect(
    int node_index) {
  return std::unique_ptr<Connection>(
      new AuroraConnection(this, &store_, node_index % nodes_));
}

}  // namespace polarmp
