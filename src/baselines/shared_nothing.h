#ifndef POLARMP_BASELINES_SHARED_NOTHING_H_
#define POLARMP_BASELINES_SHARED_NOTHING_H_

#include <atomic>

#include "baselines/database.h"
#include "baselines/sim_store.h"
#include "common/lock_rank.h"
#include "obs/metrics.h"

namespace polarmp {

// Shared-nothing distributed SQL behavioral model (§2.2, §5.4 — the
// TiDB/CockroachDB/OceanBase class of systems).
//
// Rows are hash-partitioned across nodes; an operation on a row owned by a
// different node is a remote execution (one RPC). Global secondary indexes
// are partitioned *by index key*, independently of the base table, so
// "when updating a GSI, it has to update more than one partition ... So
// the two-phase commit must be applied" — a commit touching P>1
// participants pays the full 2PC: a prepare round (RPC + forced prepare
// record per participant) and a commit round (coordinator decision record
// + RPC per participant).
//
// Scale-out requires repartitioning ("a process often fraught with heavy,
// time-consuming data movements") and is not supported online.
class SharedNothingDatabase : public Database {
 public:
  struct Options {
    LatencyProfile profile;
    int nodes = 1;
    uint64_t lock_timeout_ms = 2'000;
  };

  explicit SharedNothingDatabase(const Options& options);

  const char* name() const override { return "Shared-Nothing"; }
  int num_nodes() const override { return options_.nodes; }
  Status AddNode() override {
    return Status::NotSupported(
        "shared-nothing scale-out requires repartitioning");
  }
  Status CreateTable(const std::string& name, uint32_t num_indexes) override;
  StatusOr<std::unique_ptr<Connection>> Connect(int node_index) override;

  uint64_t two_phase_commits() const { return two_phase_commits_.Value(); }
  uint64_t single_partition_commits() const {
    return single_partition_commits_.Value();
  }

  // Number of partitioned GSIs on `table` (0 if unknown).
  uint32_t IndexesOf(const std::string& table);

 private:
  friend class SharedNothingConnection;

  int OwnerOf(uint32_t table, int64_t key) const {
    // SplitMix64 finalizer: std::hash on integers is the identity on
    // common standard libraries, which would correlate partition choice
    // with low key bits.
    uint64_t h = (static_cast<uint64_t>(table) << 40) ^
                 (static_cast<uint64_t>(key) + 0x9E3779B97F4A7C15ull);
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    h ^= h >> 31;
    return static_cast<int>(h % static_cast<uint64_t>(options_.nodes));
  }

  const Options options_;
  // polarlint: unguarded(internally synchronized)
  SimStore store_;
  // polarlint: unguarded(internally synchronized)
  SimLockTable locks_;
  RankedMutex meta_mu_{LockRank::kBaselineNode, "shared_nothing.meta"};
  // name -> #GSIs
  std::map<std::string, uint32_t> table_indexes_ GUARDED_BY(meta_mu_);
  obs::Counter two_phase_commits_{"shared_nothing.two_phase_commits"};
  obs::Counter single_partition_commits_{
      "shared_nothing.single_partition_commits"};
  // polarlint: allow(raw-atomic) transaction-id allocator, not a counter
  // polarlint: unguarded(lock-free id allocator)
  std::atomic<uint64_t> next_trx_{1};
};

}  // namespace polarmp

#endif  // POLARMP_BASELINES_SHARED_NOTHING_H_
