#ifndef POLARMP_BASELINES_TAURUS_MM_H_
#define POLARMP_BASELINES_TAURUS_MM_H_

#include <atomic>

#include "baselines/database.h"
#include "baselines/sim_store.h"
#include "common/lock_rank.h"
#include "obs/metrics.h"

namespace polarmp {

// Taurus Multi-Master behavioral model (§2.3, §5.3).
//
// Pessimistic concurrency control: a global lock manager hands out page
// locks (one RPC each, 2PL, held to commit — modeling its hybrid page/row
// scheme at the page level, which is where cross-node conflicts bind), and
// vector-scalar clocks order events (modeled by a merged scalar clock —
// the ordering cost is in the messages, already charged).
//
// The defining weakness the paper contrasts against: no shared memory.
// "When a node requests a page that has been modified by another node, it
// must request both the page and corresponding logs from the page/log
// stores, and then apply the logs" — each stale page access pays a storage
// read plus a per-record replay charge proportional to how far behind the
// cached copy is.
class TaurusMmDatabase : public Database {
 public:
  struct Options {
    LatencyProfile profile;
    int nodes = 1;
    uint64_t lock_timeout_ms = 2'000;
  };

  explicit TaurusMmDatabase(const Options& options);

  const char* name() const override { return "Taurus-MM"; }
  int num_nodes() const override { return nodes_; }
  Status AddNode() override {
    ++nodes_;
    node_caches_.emplace_back(new NodeCache());
    return Status::OK();
  }
  Status CreateTable(const std::string& name, uint32_t num_indexes) override;
  StatusOr<std::unique_ptr<Connection>> Connect(int node_index) override;

  uint64_t replayed_records() const { return replayed_records_.Value(); }
  uint64_t lock_timeouts() const { return lock_timeouts_.Value(); }

 private:
  friend class TaurusConnection;

  struct NodeCache {
    // Held while reading store page versions (SimStore mu_, kSimStore).
    RankedMutex mu{LockRank::kBaselineNode, "taurus.node_cache"};
    std::unordered_map<SimPageKey, uint64_t, SimPageKeyHash> versions
        GUARDED_BY(mu);
    // Vector-scalar clock, scalar component.
    uint64_t scalar_clock GUARDED_BY(mu) = 0;
  };

  // Refreshes the node's copy of `page`: stale copies pay a storage read
  // plus per-version log replay.
  void RefreshPage(int node, SimPageKey page);

  const Options options_;
  SimStore store_;
  SimLockTable locks_;
  int nodes_;
  std::vector<std::unique_ptr<NodeCache>> node_caches_;
  obs::Counter replayed_records_{"taurus_mm.replayed_records"};
  obs::Counter lock_timeouts_{"taurus_mm.lock_timeouts"};
  // polarlint: allow(raw-atomic) transaction-id allocator, not a counter
  std::atomic<uint64_t> next_trx_{1};
};

}  // namespace polarmp

#endif  // POLARMP_BASELINES_TAURUS_MM_H_
