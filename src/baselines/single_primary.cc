#include "baselines/single_primary.h"

namespace polarmp {

StatusOr<std::unique_ptr<SinglePrimaryDatabase>> SinglePrimaryDatabase::Create(
    const ClusterOptions& options) {
  POLARMP_ASSIGN_OR_RETURN(std::unique_ptr<PolarMpDatabase> inner,
                           PolarMpDatabase::Create(options, /*nodes=*/1));
  return std::unique_ptr<SinglePrimaryDatabase>(
      new SinglePrimaryDatabase(std::move(inner)));
}

}  // namespace polarmp
