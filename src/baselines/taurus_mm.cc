#include "baselines/taurus_mm.h"

#include <optional>

namespace polarmp {

class TaurusConnection : public Connection {
 public:
  TaurusConnection(TaurusMmDatabase* db, SimStore* store, SimLockTable* locks,
                   int node, uint64_t lock_timeout_ms)
      : db_(db),
        store_(store),
        locks_(locks),
        node_(node),
        lock_timeout_ms_(lock_timeout_ms) {}

  ~TaurusConnection() override {
    if (active_) locks_->ReleaseAll(trx_, /*charge_rpc=*/false);
  }

  Status Begin() override {
    POLARMP_CHECK(!active_);
    active_ = true;
    trx_ = db_->next_trx_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  Status Rollback() override {
    locks_->ReleaseAll(trx_, /*charge_rpc=*/true);
    Clear();
    return Status::OK();
  }

  Status Commit() override {
    POLARMP_CHECK(active_);
    if (!writes_.empty()) {
      // Ship this transaction's log (the vector-scalar clock rides along)
      // plus the engine work every real write transaction performs.
      SimDelay(store_->profile().baseline_commit_overhead_ns);
      store_->log_device()->CommitForce(node_);
      for (const auto& [row, value] : writes_) {
        if (value.has_value()) {
          store_->PutRow(row.first, row.second, *value);
        } else {
          store_->EraseRow(row.first, row.second);
        }
        store_->BumpPageVersion(store_->PageOf(row.first, row.second));
      }
      // Our cache stays current for the pages we hold locked.
      auto& cache = *db_->node_caches_[node_];
      MutexLock lock(cache.mu);
      ++cache.scalar_clock;
      for (const auto& [row, value] : writes_) {
        const SimPageKey page = store_->PageOf(row.first, row.second);
        cache.versions[page] = store_->PageVersion(page);
      }
    }
    locks_->ReleaseAll(trx_, /*charge_rpc=*/true);
    Clear();
    return Status::OK();
  }

  Status Insert(const std::string& table, int64_t key, Slice value) override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    POLARMP_RETURN_IF_ERROR(Access(tid, key, LockMode::kExclusive));
    if (Exists(tid, key)) return Status::AlreadyExists("key exists");
    writes_[{tid, key}] = value.ToString();
    return Status::OK();
  }

  Status Update(const std::string& table, int64_t key, Slice value) override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    POLARMP_RETURN_IF_ERROR(Access(tid, key, LockMode::kExclusive));
    if (!Exists(tid, key)) return Status::NotFound("no row");
    writes_[{tid, key}] = value.ToString();
    return Status::OK();
  }

  Status Put(const std::string& table, int64_t key, Slice value) override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    POLARMP_RETURN_IF_ERROR(Access(tid, key, LockMode::kExclusive));
    writes_[{tid, key}] = value.ToString();
    return Status::OK();
  }

  Status Delete(const std::string& table, int64_t key) override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    POLARMP_RETURN_IF_ERROR(Access(tid, key, LockMode::kExclusive));
    if (!Exists(tid, key)) return Status::NotFound("no row");
    writes_[{tid, key}] = std::nullopt;
    return Status::OK();
  }

  StatusOr<std::string> Get(const std::string& table, int64_t key) override {
    // Taurus-MM reads are MVCC snapshot reads — no global lock, but a
    // stale page still pays the page-store fetch + log replay.
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    SimDelay(store_->profile().baseline_op_overhead_ns);
    db_->RefreshPage(node_, store_->PageOf(tid, key));
    auto it = writes_.find({tid, key});
    if (it != writes_.end()) {
      if (!it->second.has_value()) return Status::NotFound("deleted");
      return *it->second;
    }
    return store_->GetRow(tid, key);
  }

  Status Scan(const std::string& table, int64_t lo, int64_t hi,
              const std::function<bool(int64_t, const std::string&)>& fn)
      override {
    POLARMP_ASSIGN_OR_RETURN(uint32_t tid, store_->TableId(table));
    SimPageKey last{UINT32_MAX, 0};
    return store_->ScanRows(
        tid, lo, hi, [&](int64_t key, const std::string& value) {
          const SimPageKey page = store_->PageOf(tid, key);
          if (!(page == last)) {
            db_->RefreshPage(node_, page);
            last = page;
          }
          return fn(key, value);
        });
  }

 private:
  // 2PL page access: global lock-manager RPC, then coherence refresh.
  Status Access(uint32_t tid, int64_t key, LockMode mode) {
    const SimPageKey page = store_->PageOf(tid, key);
    const uint64_t resource = SimPageKeyHash()(page);
    const Status s = locks_->Acquire(resource, trx_, mode, lock_timeout_ms_,
                                     /*charge_rpc=*/true);
    if (s.IsBusy()) {
      // Timeout-based deadlock resolution: the transaction is the victim
      // and has been rolled back per the Connection contract.
      db_->lock_timeouts_.Inc();
      locks_->ReleaseAll(trx_, /*charge_rpc=*/true);
      Clear();
      return Status::Busy("lock timeout (Taurus-MM)");
    }
    POLARMP_RETURN_IF_ERROR(s);
    SimDelay(store_->profile().baseline_op_overhead_ns);
    db_->RefreshPage(node_, page);
    return Status::OK();
  }

  bool Exists(uint32_t tid, int64_t key) {
    auto it = writes_.find({tid, key});
    if (it != writes_.end()) return it->second.has_value();
    return store_->RowExists(tid, key);
  }

  void Clear() {
    active_ = false;
    writes_.clear();
  }

  TaurusMmDatabase* db_;
  SimStore* store_;
  SimLockTable* locks_;
  const int node_;
  const uint64_t lock_timeout_ms_;
  bool active_ = false;
  uint64_t trx_ = 0;
  std::map<std::pair<uint32_t, int64_t>, std::optional<std::string>> writes_;
};

TaurusMmDatabase::TaurusMmDatabase(const Options& options)
    : options_(options),
      store_(options.profile),
      locks_(options.profile),
      nodes_(options.nodes) {
  for (int i = 0; i < nodes_; ++i) node_caches_.emplace_back(new NodeCache());
}

Status TaurusMmDatabase::CreateTable(const std::string& name,
                                     uint32_t num_indexes) {
  if (num_indexes != 0) {
    return Status::NotSupported(
        "the Taurus-MM model does not simulate GSIs (not part of Fig. 13)");
  }
  return store_.CreateTable(name).status();
}

void TaurusMmDatabase::RefreshPage(int node, SimPageKey page) {
  const uint64_t current = store_.PageVersion(page);
  NodeCache& cache = *node_caches_[node];
  uint64_t cached;
  {
    MutexLock lock(cache.mu);
    auto it = cache.versions.find(page);
    cached = it == cache.versions.end() ? 0 : it->second;
    cache.versions[page] = current;
  }
  if (cached < current) {
    // "Request both the page and corresponding logs from the page/log
    // stores, and then apply the logs" — storage I/O plus replay CPU.
    SimDelay(store_.profile().storage_read_ns);
    const uint64_t behind = current - cached;
    replayed_records_.Inc(behind);
    SimDelay(behind * store_.profile().log_replay_per_record_ns);
  }
}

StatusOr<std::unique_ptr<Connection>> TaurusMmDatabase::Connect(
    int node_index) {
  return std::unique_ptr<Connection>(
      new TaurusConnection(this, &store_, &locks_, node_index % nodes_,
                           options_.lock_timeout_ms));
}

}  // namespace polarmp
