#include "rdma/fabric.h"

#include "obs/trace.h"

#include <cstring>
#include <vector>

namespace polarmp {

namespace {

// One open doorbell batch: while it is on the stack, further RPCs from
// `from` to `to` on this Fabric ride the first RPC's doorbell.
struct RpcBatchFrame {
  const Fabric* fabric;
  EndpointId from;
  EndpointId to;
  bool charged;  // the batch's first (paying) RPC has happened
};

// Batches are a property of the issuing thread (a real doorbell is rung by
// one CPU posting a WR chain), so a plain thread_local stack needs no lock.
thread_local std::vector<RpcBatchFrame> g_rpc_batches;

RpcBatchFrame* FindBatch(const Fabric* fabric, EndpointId from,
                         EndpointId to) {
  for (auto it = g_rpc_batches.rbegin(); it != g_rpc_batches.rend(); ++it) {
    if (it->fabric == fabric && it->from == from && it->to == to) return &*it;
  }
  return nullptr;
}

}  // namespace

Status Fabric::RegisterRegion(EndpointId endpoint, uint32_t region, void* base,
                              size_t size) {
  WriterLock lock(mu_);
  const uint64_t key = Key(endpoint, region);
  if (regions_.count(key) != 0) {
    return Status::AlreadyExists("region already registered: " +
                                 std::to_string(endpoint) + "/" +
                                 std::to_string(region));
  }
  regions_[key] = Region{static_cast<char*>(base), size};
  endpoint_alive_[endpoint] = true;
  return Status::OK();
}

Status Fabric::DeregisterRegion(EndpointId endpoint, uint32_t region) {
  WriterLock lock(mu_);
  if (regions_.erase(Key(endpoint, region)) == 0) {
    return Status::NotFound("region not registered");
  }
  return Status::OK();
}

void Fabric::DeregisterEndpoint(EndpointId endpoint) {
  WriterLock lock(mu_);
  for (auto it = regions_.begin(); it != regions_.end();) {
    if (static_cast<EndpointId>(it->first >> 32) == endpoint) {
      it = regions_.erase(it);
    } else {
      ++it;
    }
  }
  endpoint_alive_[endpoint] = false;
}

bool Fabric::EndpointAlive(EndpointId endpoint) const {
  ReaderLock lock(mu_);
  auto it = endpoint_alive_.find(endpoint);
  return it != endpoint_alive_.end() && it->second;
}

StatusOr<char*> Fabric::Resolve(EndpointId to, uint32_t region,
                                uint64_t offset, size_t len) const {
  ReaderLock lock(mu_);
  auto alive = endpoint_alive_.find(to);
  if (alive == endpoint_alive_.end() || !alive->second) {
    return Status::Unavailable("endpoint down: " + std::to_string(to));
  }
  auto it = regions_.find(Key(to, region));
  if (it == regions_.end()) {
    return Status::NotFound("region not registered: " + std::to_string(to) +
                            "/" + std::to_string(region));
  }
  if (offset + len > it->second.size) {
    return Status::InvalidArgument("remote access out of bounds");
  }
  return it->second.base + offset;
}

void Fabric::CountService(EndpointId to) const {
  if (to == kPmfsEndpoint) {
    ops_pmfs_.Inc();
  } else if (to == kStorageEndpoint) {
    ops_storage_.Inc();
  } else if (to >= kDsmEndpointBase) {
    ops_dsm_.Inc();
  } else {
    ops_node_.Inc();
  }
}

Status Fabric::InjectVerbFault(EndpointId from, EndpointId to, FaultOp op,
                               bool* duplicate) const {
  if (from == to) return Status::OK();  // loopback: the NIC is not involved
  const FaultDecision fault = injector_.Decide(op);
  switch (fault.kind) {
    case FaultKind::kNone:
      return Status::OK();
    case FaultKind::kUnavailable:
      faults_injected_.Inc();
      return InjectedUnavailable("verb to endpoint " + std::to_string(to));
    case FaultKind::kDelay:
      faults_injected_.Inc();
      SimDelay(fault.delay_ns);
      return Status::OK();
    case FaultKind::kDuplicate:
      faults_injected_.Inc();
      if (duplicate != nullptr) *duplicate = true;
      return Status::OK();
    default:
      // kTimeout / kTorn are RPC- and seqlock-specific; a plan that asks
      // for them on a plain verb degrades to a transparent delivery.
      return Status::OK();
  }
}

Status Fabric::InjectRpcFault(EndpointId from, EndpointId to,
                              FaultOp stage) const {
  if (from == to) return Status::OK();
  const FaultDecision fault = injector_.Decide(stage);
  switch (fault.kind) {
    case FaultKind::kNone:
      return Status::OK();
    case FaultKind::kUnavailable:
      faults_injected_.Inc();
      return InjectedUnavailable(
          (stage == FaultOp::kRpcRequest ? "rpc request to endpoint "
                                         : "rpc reply from endpoint ") +
          std::to_string(to));
    case FaultKind::kTimeout:
      // The caller waited a full round trip for nothing.
      faults_injected_.Inc();
      SimDelay(profile_.rpc_ns);
      return InjectedTimeout("rpc to endpoint " + std::to_string(to));
    case FaultKind::kDelay:
      faults_injected_.Inc();
      SimDelay(fault.delay_ns);
      return Status::OK();
    default:
      return Status::OK();
  }
}

Status Fabric::Read(EndpointId from, EndpointId to, uint32_t region,
                    uint64_t offset, void* dst, size_t len) const {
  POLARMP_RETURN_IF_ERROR(InjectVerbFault(from, to, FaultOp::kRead));
  POLARMP_ASSIGN_OR_RETURN(char* src, Resolve(to, region, offset, len));
  if (from != to) {
    remote_reads_.Inc();
    CountService(to);
    obs::TraceSpan span(&read_ns_);
    SimDelay(profile_.rdma_read_ns);
  }
  std::memcpy(dst, src, len);
  return Status::OK();
}

Status Fabric::Write(EndpointId from, EndpointId to, uint32_t region,
                     uint64_t offset, const void* src, size_t len) const {
  bool duplicate = false;
  POLARMP_RETURN_IF_ERROR(
      InjectVerbFault(from, to, FaultOp::kWrite, &duplicate));
  POLARMP_ASSIGN_OR_RETURN(char* dst, Resolve(to, region, offset, len));
  if (from != to) {
    remote_writes_.Inc();
    CountService(to);
    obs::TraceSpan span(&write_ns_);
    SimDelay(profile_.rdma_write_ns);
  }
  std::memcpy(dst, src, len);
  if (duplicate) {
    // Duplicated delivery: the same payload lands twice. Idempotent for
    // plain writes by construction; the fault exists to prove callers never
    // layer non-idempotent semantics onto raw write verbs.
    std::memcpy(dst, src, len);
  }
  return Status::OK();
}

StatusOr<uint64_t> Fabric::FetchAdd64(EndpointId from, EndpointId to,
                                      uint32_t region, uint64_t offset,
                                      uint64_t delta) const {
  // Inject BEFORE executing: a failed atomic must not have mutated the
  // target, so the caller's retry re-runs exactly one effective op.
  POLARMP_RETURN_IF_ERROR(InjectVerbFault(from, to, FaultOp::kAtomic));
  POLARMP_ASSIGN_OR_RETURN(char* p, Resolve(to, region, offset, 8));
  if (from != to) {
    remote_atomics_.Inc();
    CountService(to);
    obs::TraceSpan span(&atomic_ns_);
    SimDelay(profile_.rdma_cas_ns);
  }
  auto* a = reinterpret_cast<std::atomic<uint64_t>*>(p);
  return a->fetch_add(delta, std::memory_order_acq_rel);
}

StatusOr<uint64_t> Fabric::CompareSwap64(EndpointId from, EndpointId to,
                                         uint32_t region, uint64_t offset,
                                         uint64_t expected,
                                         uint64_t desired) const {
  POLARMP_RETURN_IF_ERROR(InjectVerbFault(from, to, FaultOp::kAtomic));
  POLARMP_ASSIGN_OR_RETURN(char* p, Resolve(to, region, offset, 8));
  if (from != to) {
    remote_atomics_.Inc();
    CountService(to);
    obs::TraceSpan span(&atomic_ns_);
    SimDelay(profile_.rdma_cas_ns);
  }
  auto* a = reinterpret_cast<std::atomic<uint64_t>*>(p);
  uint64_t exp = expected;
  a->compare_exchange_strong(exp, desired, std::memory_order_acq_rel);
  return exp;  // value observed before the swap, as RDMA CAS returns
}

StatusOr<uint64_t> Fabric::Load64(EndpointId from, EndpointId to,
                                  uint32_t region, uint64_t offset) const {
  POLARMP_RETURN_IF_ERROR(InjectVerbFault(from, to, FaultOp::kRead));
  POLARMP_ASSIGN_OR_RETURN(char* p, Resolve(to, region, offset, 8));
  if (from != to) {
    remote_reads_.Inc();
    CountService(to);
    obs::TraceSpan span(&read_ns_);
    SimDelay(profile_.rdma_read_ns);
  }
  auto* a = reinterpret_cast<std::atomic<uint64_t>*>(p);
  return a->load(std::memory_order_acquire);
}

Status Fabric::Store64(EndpointId from, EndpointId to, uint32_t region,
                       uint64_t offset, uint64_t value) const {
  POLARMP_RETURN_IF_ERROR(InjectVerbFault(from, to, FaultOp::kAtomic));
  POLARMP_ASSIGN_OR_RETURN(char* p, Resolve(to, region, offset, 8));
  if (from != to) {
    remote_writes_.Inc();
    CountService(to);
    obs::TraceSpan span(&write_ns_);
    SimDelay(profile_.rdma_write_ns);
  }
  auto* a = reinterpret_cast<std::atomic<uint64_t>*>(p);
  a->store(value, std::memory_order_release);
  return Status::OK();
}

void Fabric::ChargeRpc(EndpointId from, EndpointId to) const {
  if (from == to) return;
  if (RpcBatchFrame* batch = FindBatch(this, from, to)) {
    if (batch->charged) {
      // Rides the batch's already-rung doorbell: no extra round trip, no
      // extra latency. Counted separately so benches can report how many
      // control messages the batching absorbed.
      rpcs_coalesced_.Inc();
      return;
    }
    batch->charged = true;
  }
  rpcs_.Inc();
  CountService(to);
  obs::TraceSpan span(&rpc_ns_);
  SimDelay(profile_.rpc_ns);
}

void Fabric::ChargeOneSidedRead(EndpointId from, EndpointId to) const {
  if (from == to) return;
  remote_reads_.Inc();
  CountService(to);
  obs::TraceSpan span(&read_ns_);
  SimDelay(profile_.rdma_read_ns);
}

void Fabric::ChargeOneSidedWrite(EndpointId from, EndpointId to) const {
  if (from == to) return;
  remote_writes_.Inc();
  CountService(to);
  obs::TraceSpan span(&write_ns_);
  SimDelay(profile_.rdma_write_ns);
}

void Fabric::BeginRpcBatch(EndpointId from, EndpointId to) const {
  g_rpc_batches.push_back(RpcBatchFrame{this, from, to, /*charged=*/false});
}

void Fabric::EndRpcBatch(EndpointId from, EndpointId to) const {
  POLARMP_CHECK(!g_rpc_batches.empty());
  const RpcBatchFrame& top = g_rpc_batches.back();
  POLARMP_CHECK(top.fabric == this && top.from == from && top.to == to)
      << "mismatched EndRpcBatch";
  g_rpc_batches.pop_back();
}

void Fabric::ResetCounters() {
  remote_reads_.Reset();
  remote_writes_.Reset();
  remote_atomics_.Reset();
  rpcs_.Reset();
  rpcs_coalesced_.Reset();
  ops_pmfs_.Reset();
  ops_storage_.Reset();
  ops_dsm_.Reset();
  ops_node_.Reset();
  faults_injected_.Reset();
  retries_.Reset();
  rpc_dedup_hits_.Reset();
  read_ns_.Reset();
  write_ns_.Reset();
  atomic_ns_.Reset();
  rpc_ns_.Reset();
}

}  // namespace polarmp
