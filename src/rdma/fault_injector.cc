#include "rdma/fault_injector.h"

namespace polarmp {

namespace {

// SplitMix64: one multiply-xorshift pass per draw keeps Decide cheap while
// giving per-op-class streams that diverge even for adjacent seeds.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

void FaultInjector::Arm(const FaultPlan& plan) {
  MutexLock lock(mu_);
  plan_ = plan;
  plan_armed_ = true;
  for (int i = 0; i < kFaultOpCount; ++i) draws_[i] = 0;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  MutexLock lock(mu_);
  plan_armed_ = false;
  for (int i = 0; i < kFaultOpCount; ++i) scripted_[i].clear();
  armed_.store(false, std::memory_order_release);
}

void FaultInjector::ScriptFault(FaultOp op, FaultKind kind, int count,
                                uint64_t delay_ns) {
  MutexLock lock(mu_);
  for (int i = 0; i < count; ++i) {
    scripted_[static_cast<int>(op)].push_back(FaultDecision{kind, delay_ns});
  }
  armed_.store(true, std::memory_order_release);
}

FaultDecision FaultInjector::Decide(FaultOp op) {
  if (!armed_.load(std::memory_order_acquire)) return FaultDecision{};
  MutexLock lock(mu_);
  return DecideLocked(op);
}

FaultDecision FaultInjector::DecideLocked(FaultOp op) {
  std::deque<FaultDecision>& queue = scripted_[static_cast<int>(op)];
  if (!queue.empty()) {
    FaultDecision decision = queue.front();
    queue.pop_front();
    return decision;
  }
  if (!plan_armed_) return FaultDecision{};
  // One seeded draw per op, banded over the plan's cumulative per-mille
  // rates for this op class. The draw sequence is per-class, so the
  // decision stream for (seed, class) depends only on how many ops of that
  // class ran before — reordering reads against writes does not reshuffle
  // either stream.
  const uint64_t n = ++draws_[static_cast<int>(op)];
  const uint64_t draw =
      Mix64(plan_.seed ^ (static_cast<uint64_t>(op) << 56) ^ n) % 1000;
  uint64_t band = 0;
  auto hits = [&](uint32_t pm) {
    band += pm;
    return draw < band;
  };
  switch (op) {
    case FaultOp::kRead:
      if (hits(plan_.read_unavailable_pm)) {
        return FaultDecision{FaultKind::kUnavailable, 0};
      }
      break;
    case FaultOp::kWrite:
      if (hits(plan_.write_unavailable_pm)) {
        return FaultDecision{FaultKind::kUnavailable, 0};
      }
      if (hits(plan_.write_delay_pm)) {
        return FaultDecision{FaultKind::kDelay, plan_.delay_ns};
      }
      if (hits(plan_.write_duplicate_pm)) {
        return FaultDecision{FaultKind::kDuplicate, 0};
      }
      break;
    case FaultOp::kAtomic:
      if (hits(plan_.atomic_unavailable_pm)) {
        return FaultDecision{FaultKind::kUnavailable, 0};
      }
      break;
    case FaultOp::kSeqlockedWrite:
      if (hits(plan_.seqlock_torn_pm)) {
        return FaultDecision{FaultKind::kTorn, plan_.delay_ns};
      }
      break;
    case FaultOp::kRpcRequest:
      if (hits(plan_.rpc_request_lost_pm)) {
        return FaultDecision{FaultKind::kUnavailable, 0};
      }
      if (hits(plan_.rpc_timeout_pm)) {
        return FaultDecision{FaultKind::kTimeout, 0};
      }
      break;
    case FaultOp::kRpcReply:
      if (hits(plan_.rpc_reply_lost_pm)) {
        return FaultDecision{FaultKind::kUnavailable, 0};
      }
      if (hits(plan_.rpc_timeout_pm)) {
        return FaultDecision{FaultKind::kTimeout, 0};
      }
      break;
  }
  return FaultDecision{};
}

}  // namespace polarmp
