#ifndef POLARMP_RDMA_RETRY_POLICY_H_
#define POLARMP_RDMA_RETRY_POLICY_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/lock_rank.h"
#include "common/sim_latency.h"
#include "common/status.h"
#include "rdma/fabric.h"

namespace polarmp {

// Retry/backoff policy for fabric operations, and the request-id dedup
// cache that makes non-idempotent RPCs safe to retransmit.
//
// Per-site policy (DESIGN.md § Fault injection & failure takeover):
//   - Idempotent one-sided ops (reads, flag stores, page pushes) retry
//     injected transients with capped exponential backoff.
//   - Non-idempotent RPCs carry a client-minted request id; the service
//     records the outcome per id, so a retransmit after a lost reply
//     returns the recorded result instead of re-executing.
//   - Exhausted budgets degrade to Busy backpressure — the caller's
//     existing Busy handling (abort-and-retry the statement) takes over;
//     nothing in the stack turns a transient into a hard failure.
//
// Only statuses tagged by the fault injector are retried
// (IsInjectedTransient): a GENUINE Unavailable means the target endpoint is
// really gone, and the correct reaction is failure takeover, not a retry
// loop against a dead node.

struct RetryPolicy {
  int max_attempts = 4;                  // 1 try + up to 3 retries
  uint64_t initial_backoff_ns = 20'000;  // ~1.3 RDMA ops
  uint64_t max_backoff_ns = 1'000'000;   // cap: under one log force
};

// Runs `op` (returning Status) under the policy. Retries only injected
// transients; first genuine status (ok or error) is returned as-is.
template <typename F>
Status RetryTransient(const Fabric* fabric, F&& op, RetryPolicy policy = {}) {
  uint64_t backoff = policy.initial_backoff_ns;
  Status last;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      fabric->CountRetry();
      SimDelay(backoff);
      backoff = std::min(backoff * 2, policy.max_backoff_ns);
    }
    last = op();
    if (!IsInjectedTransient(last)) return last;
  }
  // Budget exhausted: degrade to Busy. The message drops the injected tag,
  // so an outer wrapper never re-retries an already-exhausted budget.
  return Status::Busy("fabric retry budget exhausted: " + last.message());
}

// StatusOr flavor of RetryTransient for the value-returning verbs.
template <typename F>
auto RetryTransientOr(const Fabric* fabric, F&& op, RetryPolicy policy = {})
    -> decltype(op()) {
  uint64_t backoff = policy.initial_backoff_ns;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      fabric->CountRetry();
      SimDelay(backoff);
      backoff = std::min(backoff * 2, policy.max_backoff_ns);
    }
    auto result = op();
    if (!IsInjectedTransient(result.status())) return result;
    if (attempt + 1 >= policy.max_attempts) {
      return Status::Busy("fabric retry budget exhausted: " +
                          result.status().message());
    }
  }
}

// Service-side dedup for non-idempotent RPCs. The client mints a request id
// per logical call and reuses it across retransmits; the service consults
// Lookup before executing and Records the outcome after. A retransmit whose
// original execution completed (reply lost on the wire) replays the
// recorded result without re-executing. The window is bounded per client:
// a retransmit always lands within a handful of ids of the newest, so 256
// outcomes of history is orders of magnitude more than retry budgets need.
class RpcDedupCache {
 public:
  explicit RpcDedupCache(const char* name) : mu_(LockRank::kRpc, name) {}
  RpcDedupCache(const RpcDedupCache&) = delete;
  RpcDedupCache& operator=(const RpcDedupCache&) = delete;

  std::optional<Status> Lookup(uint64_t client, uint64_t request_id) const {
    MutexLock lock(mu_);
    auto it = windows_.find(client);
    if (it == windows_.end()) return std::nullopt;
    auto hit = it->second.results.find(request_id);
    if (hit == it->second.results.end()) return std::nullopt;
    return hit->second;
  }

  void Record(uint64_t client, uint64_t request_id, Status result) {
    MutexLock lock(mu_);
    Window& window = windows_[client];
    if (window.results.emplace(request_id, std::move(result)).second) {
      window.order.push_back(request_id);
      while (window.order.size() > kWindowSize) {
        window.results.erase(window.order.front());
        window.order.pop_front();
      }
    }
  }

  void ForgetClient(uint64_t client) {
    MutexLock lock(mu_);
    windows_.erase(client);
  }

 private:
  struct Window {
    std::unordered_map<uint64_t, Status> results;
    std::deque<uint64_t> order;
  };
  static constexpr size_t kWindowSize = 256;

  mutable RankedMutex mu_;
  std::unordered_map<uint64_t, Window> windows_ GUARDED_BY(mu_);
};

}  // namespace polarmp

#endif  // POLARMP_RDMA_RETRY_POLICY_H_
