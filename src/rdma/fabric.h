#ifndef POLARMP_RDMA_FABRIC_H_
#define POLARMP_RDMA_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "common/lock_rank.h"
#include "common/sim_latency.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "rdma/fault_injector.h"

namespace polarmp {

// Endpoint ids on the fabric. Compute nodes use their NodeId directly;
// infrastructure services live at fixed well-known endpoints.
using EndpointId = uint32_t;

inline constexpr EndpointId kPmfsEndpoint = 60'000;     // fusion server
inline constexpr EndpointId kStorageEndpoint = 60'001;  // shared storage
inline constexpr EndpointId kDsmEndpointBase = 61'000;  // memory servers

// Simulated RDMA fabric.
//
// Real deployment: every PolarDB-MP node registers memory regions with the
// NIC and peers access them with one-sided verbs (§4.1: remote TIT reads,
// §4.2: DBP page push/fetch). Here a region is host memory registered under
// an (endpoint, region) key; one-sided READ/WRITE are memcpys and atomic
// ops are real atomics, each charging the configured latency when the
// initiator is a different endpoint than the target.
//
// One-sided semantics are preserved: the target endpoint's "CPU" is never
// involved, so data structures reachable via the fabric must be designed
// for concurrent raw access (the TIT uses per-field atomics, DBP frames use
// a seqlock) exactly as they would be on real RDMA hardware.
//
// Crash simulation: DeregisterEndpoint() makes all subsequent accesses to
// that endpoint fail with Unavailable until it re-registers, modelling a
// node crash taking its registered memory with it.
class Fabric {
 public:
  explicit Fabric(const LatencyProfile& profile) : profile_(profile) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const LatencyProfile& profile() const { return profile_; }

  Status RegisterRegion(EndpointId endpoint, uint32_t region, void* base,
                        size_t size);
  Status DeregisterRegion(EndpointId endpoint, uint32_t region);
  // Removes every region owned by `endpoint` (crash simulation).
  void DeregisterEndpoint(EndpointId endpoint);
  bool EndpointAlive(EndpointId endpoint) const;

  // One-sided verbs. `from == to-endpoint` skips the latency charge (local
  // access through the NIC loopback is effectively a memcpy).
  Status Read(EndpointId from, EndpointId to, uint32_t region, uint64_t offset,
              void* dst, size_t len) const;
  Status Write(EndpointId from, EndpointId to, uint32_t region,
               uint64_t offset, const void* src, size_t len) const;

  // 64-bit remote atomics. The target location must be a std::atomic<uint64_t>
  // (or have equivalent alignment/lifetime) inside the registered region.
  StatusOr<uint64_t> FetchAdd64(EndpointId from, EndpointId to, uint32_t region,
                                uint64_t offset, uint64_t delta) const;
  StatusOr<uint64_t> CompareSwap64(EndpointId from, EndpointId to,
                                   uint32_t region, uint64_t offset,
                                   uint64_t expected, uint64_t desired) const;
  StatusOr<uint64_t> Load64(EndpointId from, EndpointId to, uint32_t region,
                            uint64_t offset) const;
  // Atomic 8-byte remote store (release ordering); same target requirements
  // as the other 64-bit atomics.
  Status Store64(EndpointId from, EndpointId to, uint32_t region,
                 uint64_t offset, uint64_t value) const;

  // Charge one RPC round-trip worth of latency (used by service stubs whose
  // control messages ride RDMA-based RPC).
  void ChargeRpc(EndpointId from, EndpointId to) const;

  // Fault injection (rdma/fault_injector.h). The injector is consulted by
  // every verb; service stubs additionally call InjectRpcFault on the
  // request and reply legs of their RPCs. Disarmed injection costs one
  // atomic load per verb.
  FaultInjector* fault_injector() const { return &injector_; }

  // Consults the injector for an RPC leg (`stage` is kRpcRequest or
  // kRpcReply). Returns OK, a tagged transient Unavailable (leg lost), or a
  // tagged Busy after charging a full round trip (timeout). No-op when
  // from == to (local loopback cannot lose messages).
  Status InjectRpcFault(EndpointId from, EndpointId to, FaultOp stage) const;

  // Bookkeeping hooks for the retry layer (rdma/retry_policy.h) and the
  // dedup-capable service stubs: all robustness events land in the fabric's
  // books so one sidecar carries the whole chaos story.
  void CountRetry() const { retries_.Inc(); }
  void CountRpcDedupHit() const { rpc_dedup_hits_.Inc(); }
  void CountFaultInjected() const { faults_injected_.Inc(); }

  // Accounting entry points for seqlock-framed page transfers. The payload
  // memcpy and the guard-word discipline live in src/dsm (the frame layout
  // is Dsm's business), but the latency and the round-trip count belong to
  // the fabric so every cross-endpoint op lands in one set of books.
  // No-ops when from == to.
  void ChargeOneSidedRead(EndpointId from, EndpointId to) const;
  void ChargeOneSidedWrite(EndpointId from, EndpointId to) const;

  // Doorbell batching (§4.1-style WR chaining): between BeginRpcBatch and
  // the matching EndRpcBatch on the SAME thread, the first ChargeRpc to
  // (from, to) pays latency and counts as a round trip; every further
  // ChargeRpc to the same pair rides the same doorbell — it counts only in
  // fabric.rpcs_coalesced and is free. Batches nest LIFO (a handler that
  // runs inside an RPC may open its own batch for a different pair).
  // Prefer the RpcBatch RAII wrapper in rdma/rpc.h.
  void BeginRpcBatch(EndpointId from, EndpointId to) const;
  void EndRpcBatch(EndpointId from, EndpointId to) const;

  // Telemetry: number of remote (cross-endpoint) operations by kind. Thin
  // shims over this instance's registry handles ("fabric.*" families); the
  // per-verb latency distributions live in "fabric.{read,write,atomic,
  // rpc}_ns". Per-destination-service totals (every remote verb + rpc,
  // classified by target endpoint) are in "fabric.ops_{pmfs,storage,dsm,
  // node}".
  uint64_t remote_reads() const { return remote_reads_.Value(); }
  uint64_t remote_writes() const { return remote_writes_.Value(); }
  uint64_t remote_atomics() const { return remote_atomics_.Value(); }
  uint64_t rpcs() const { return rpcs_.Value(); }
  uint64_t rpcs_coalesced() const { return rpcs_coalesced_.Value(); }
  uint64_t faults_injected() const { return faults_injected_.Value(); }
  uint64_t retries() const { return retries_.Value(); }
  uint64_t rpc_dedup_hits() const { return rpc_dedup_hits_.Value(); }
  void ResetCounters();

 private:
  struct Region {
    char* base = nullptr;
    size_t size = 0;
  };

  // Resolves (endpoint, region, offset, len) to a host pointer or fails.
  StatusOr<char*> Resolve(EndpointId to, uint32_t region, uint64_t offset,
                          size_t len) const;

  // Bumps the per-destination-service op counter for a remote op to `to`.
  void CountService(EndpointId to) const;

  // Consults the injector for a one-sided verb. Returns a tagged transient
  // error, or OK after applying any kDelay in place; a kDuplicate decision
  // (write path) is reported through *duplicate for the caller to apply.
  Status InjectVerbFault(EndpointId from, EndpointId to, FaultOp op,
                         bool* duplicate = nullptr) const;

  static uint64_t Key(EndpointId endpoint, uint32_t region) {
    return (static_cast<uint64_t>(endpoint) << 32) | region;
  }

  const LatencyProfile profile_;
  // polarlint: unguarded(internally synchronized: own RankedMutex + armed flag)
  mutable FaultInjector injector_;
  mutable RankedSharedMutex mu_{LockRank::kFabric, "fabric.regions"};
  std::unordered_map<uint64_t, Region> regions_ GUARDED_BY(mu_);
  std::unordered_map<EndpointId, bool> endpoint_alive_ GUARDED_BY(mu_);

  mutable obs::Counter remote_reads_{"fabric.remote_reads"};
  mutable obs::Counter remote_writes_{"fabric.remote_writes"};
  mutable obs::Counter remote_atomics_{"fabric.remote_atomics"};
  mutable obs::Counter rpcs_{"fabric.rpcs"};
  mutable obs::Counter rpcs_coalesced_{"fabric.rpcs_coalesced"};
  mutable obs::Counter ops_pmfs_{"fabric.ops_pmfs"};
  mutable obs::Counter ops_storage_{"fabric.ops_storage"};
  mutable obs::Counter ops_dsm_{"fabric.ops_dsm"};
  mutable obs::Counter ops_node_{"fabric.ops_node"};
  mutable obs::Counter faults_injected_{"fabric.faults_injected"};
  mutable obs::Counter retries_{"fabric.retries"};
  mutable obs::Counter rpc_dedup_hits_{"fabric.rpc_dedup_hits"};
  mutable obs::LatencyHistogram read_ns_{"fabric.read_ns"};
  mutable obs::LatencyHistogram write_ns_{"fabric.write_ns"};
  mutable obs::LatencyHistogram atomic_ns_{"fabric.atomic_ns"};
  mutable obs::LatencyHistogram rpc_ns_{"fabric.rpc_ns"};
};

}  // namespace polarmp

#endif  // POLARMP_RDMA_FABRIC_H_
