#ifndef POLARMP_RDMA_FAULT_INJECTOR_H_
#define POLARMP_RDMA_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>

#include "common/lock_rank.h"
#include "common/status.h"

namespace polarmp {

// Deterministic fault injection for the simulated RDMA fabric.
//
// Real fabrics fail in finer ways than a clean node crash: verbs come back
// with transient completion errors, RPCs time out, writes are delivered
// late or twice, and a multi-cacheline write can land torn if the reader
// races the NIC. The injector models exactly those modes, seeded so a
// given (seed, op-stream) pair always injects the same faults — chaos runs
// are reproducible and test failures replay.
//
// Two sources of faults, scripted taking priority over planned:
//   - ScriptFault() queues N one-shot faults for an op class (tests).
//   - Arm(plan) draws per-op-class faults from seeded per-mille bands.
//
// Injected errors are TAGGED in the status message (kInjectedFaultTag) so
// retry wrappers (rdma/retry_policy.h) can distinguish a transient injected
// fault (retry) from a genuine endpoint-down Unavailable (propagate: the
// node really is dead and takeover, not retry, is the answer).

// What kind of operation a fault decision is being made for.
enum class FaultOp : uint8_t {
  kRead = 0,            // one-sided read / Load64
  kWrite = 1,           // one-sided write
  kAtomic = 2,          // FetchAdd64 / CompareSwap64 / Store64
  kSeqlockedWrite = 3,  // seqlock-framed page write (torn-write candidate)
  kRpcRequest = 4,      // RPC request leg (lost before the service ran)
  kRpcReply = 5,        // RPC reply leg (lost after the service ran)
};
inline constexpr int kFaultOpCount = 6;

enum class FaultKind : uint8_t {
  kNone = 0,
  kUnavailable,  // transient verb failure (retryable when injected)
  kTimeout,      // RPC timed out: latency charged, Busy returned
  kDelay,        // delivered, but late (extra latency)
  kDuplicate,    // one-sided write applied twice
  kTorn,         // seqlocked write left mid-flight for a window
};

struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  uint64_t delay_ns = 0;  // for kDelay / kTorn: how long the window lasts
};

// Per-mille fault rates per op class. Rates in one class are cumulative
// bands over a single draw, so their sum must stay <= 1000.
struct FaultPlan {
  uint64_t seed = 0;
  uint32_t read_unavailable_pm = 0;
  uint32_t write_unavailable_pm = 0;
  uint32_t atomic_unavailable_pm = 0;
  uint32_t rpc_request_lost_pm = 0;
  uint32_t rpc_reply_lost_pm = 0;
  uint32_t rpc_timeout_pm = 0;
  uint32_t write_delay_pm = 0;
  uint32_t write_duplicate_pm = 0;
  uint32_t seqlock_torn_pm = 0;
  uint64_t delay_ns = 50'000;  // extra latency for kDelay / torn window
};

// The plan used by `scripts/check.sh chaos` and POLARMP_FAULT_SEED: every
// fault mode on, at rates low enough that retry budgets absorb them.
inline FaultPlan DefaultChaosPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.read_unavailable_pm = 5;
  plan.write_unavailable_pm = 5;
  plan.atomic_unavailable_pm = 3;
  plan.rpc_request_lost_pm = 5;
  plan.rpc_reply_lost_pm = 5;
  plan.rpc_timeout_pm = 2;
  plan.write_delay_pm = 10;
  plan.write_duplicate_pm = 5;
  plan.seqlock_torn_pm = 5;
  plan.delay_ns = 50'000;
  return plan;
}

// Message tag marking a status as injector-made. Retry wrappers retry ONLY
// tagged transients; a real "endpoint down" passes through untouched.
inline constexpr const char kInjectedFaultTag[] = "injected-fault: ";

inline Status InjectedUnavailable(const std::string& what) {
  return Status::Unavailable(std::string(kInjectedFaultTag) + what);
}
inline Status InjectedTimeout(const std::string& what) {
  return Status::Busy(std::string(kInjectedFaultTag) + what + " timed out");
}
inline bool IsInjectedTransient(const Status& s) {
  if (!s.IsUnavailable() && !s.IsBusy()) return false;
  return s.message().rfind(kInjectedFaultTag, 0) == 0;
}

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs a seeded plan; subsequent Decide() calls draw from it.
  void Arm(const FaultPlan& plan);
  // Stops all injection (planned and scripted).
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // Queues `count` one-shot faults of `kind` for `op`; scripted faults are
  // consumed before the plan is consulted. Deterministic by construction.
  void ScriptFault(FaultOp op, FaultKind kind, int count,
                   uint64_t delay_ns = 0);

  // The per-verb hook: what (if anything) fails for this operation. Cheap
  // when disarmed (one relaxed atomic load, no lock).
  FaultDecision Decide(FaultOp op);

 private:
  FaultDecision DecideLocked(FaultOp op) REQUIRES(mu_);

  // Fast path: disarmed fabrics pay a single atomic load per verb.
  std::atomic<bool> armed_{false};
  mutable RankedMutex mu_{LockRank::kFabric, "fabric.injector"};
  bool plan_armed_ GUARDED_BY(mu_) = false;
  FaultPlan plan_ GUARDED_BY(mu_);
  uint64_t draws_[kFaultOpCount] GUARDED_BY(mu_) = {};
  std::deque<FaultDecision> scripted_[kFaultOpCount] GUARDED_BY(mu_);
};

}  // namespace polarmp

#endif  // POLARMP_RDMA_FAULT_INJECTOR_H_
