#include "rdma/rpc.h"

namespace polarmp {

Status Rpc::RegisterHandler(EndpointId endpoint, uint32_t method,
                            Handler handler) {
  WriterLock lock(mu_);
  const uint64_t key = Key(endpoint, method);
  if (handlers_.count(key) != 0) {
    return Status::AlreadyExists("rpc handler exists: " +
                                 std::to_string(endpoint) + "/" +
                                 std::to_string(method));
  }
  handlers_[key] = std::move(handler);
  return Status::OK();
}

Status Rpc::UnregisterEndpoint(EndpointId endpoint) {
  WriterLock lock(mu_);
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if (static_cast<EndpointId>(it->first >> 32) == endpoint) {
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Status Rpc::Call(EndpointId from, EndpointId to, uint32_t method,
                 const std::string& request, std::string* response) const {
  Handler handler;
  {
    ReaderLock lock(mu_);
    if (!fabric_->EndpointAlive(to)) {
      return Status::Unavailable("rpc target down: " + std::to_string(to));
    }
    auto it = handlers_.find(Key(to, method));
    if (it == handlers_.end()) {
      return Status::NotFound("no rpc handler: " + std::to_string(to) + "/" +
                              std::to_string(method));
    }
    handler = it->second;  // copy so the handler can run without the lock
  }
  fabric_->ChargeRpc(from, to);
  return handler(request, response);
}

}  // namespace polarmp
