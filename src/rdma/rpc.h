#ifndef POLARMP_RDMA_RPC_H_
#define POLARMP_RDMA_RPC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/lock_rank.h"
#include "rdma/fabric.h"

namespace polarmp {

// RDMA-based RPC (paper §3: "all communications between the primary nodes
// and PMFS leverage one-sided RDMA or RDMA-based RPC").
//
// Handlers are registered per (endpoint, method) and execute synchronously
// in the caller's thread after the fabric charges one RPC round trip — the
// same cost model as a polling RPC server on the real fabric. Handlers may
// block (e.g., a PLock grant that must wait for another node to release),
// which models the server parking the request and replying later.
class Rpc {
 public:
  using Handler =
      std::function<Status(const std::string& request, std::string* response)>;

  explicit Rpc(Fabric* fabric) : fabric_(fabric) {}

  Rpc(const Rpc&) = delete;
  Rpc& operator=(const Rpc&) = delete;

  Status RegisterHandler(EndpointId endpoint, uint32_t method, Handler handler);
  Status UnregisterEndpoint(EndpointId endpoint);

  Status Call(EndpointId from, EndpointId to, uint32_t method,
              const std::string& request, std::string* response) const;

 private:
  static uint64_t Key(EndpointId endpoint, uint32_t method) {
    return (static_cast<uint64_t>(endpoint) << 32) | method;
  }

  Fabric* const fabric_;
  mutable RankedSharedMutex mu_{LockRank::kRpc, "rpc.handlers"};
  std::unordered_map<uint64_t, Handler> handlers_ GUARDED_BY(mu_);
};

// Doorbell batch scope: while alive, every RPC this thread issues from
// `from` to `to` after the first one rides the first one's doorbell — one
// fabric round trip carries all of them (a WR chain posted with a single
// doorbell ring). Used by multi-RPC sequences that a real client would
// batch: Mtr::Acquire's PLock-pin + page-fetch pair, the buffer pool's
// evict-time release + copy-unregister pair, the PLock release's
// flush-notify + unlock pair. Scopes nest LIFO; destruction order must
// mirror construction order on the thread.
class RpcBatch {
 public:
  RpcBatch(Fabric* fabric, EndpointId from, EndpointId to)
      : fabric_(fabric), from_(from), to_(to) {
    fabric_->BeginRpcBatch(from_, to_);
  }
  ~RpcBatch() { fabric_->EndRpcBatch(from_, to_); }

  RpcBatch(const RpcBatch&) = delete;
  RpcBatch& operator=(const RpcBatch&) = delete;

 private:
  Fabric* const fabric_;
  const EndpointId from_;
  const EndpointId to_;
};

}  // namespace polarmp

#endif  // POLARMP_RDMA_RPC_H_
