#ifndef POLARMP_STORAGE_LOG_STORE_H_
#define POLARMP_STORAGE_LOG_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/sim_latency.h"
#include "common/status.h"
#include "common/types.h"

namespace polarmp {

// Per-node append-only redo-log streams on shared storage (§4.4: "each node
// maintains its own sets of redo log and undo log files. This design enables
// different nodes to simultaneously synchronize these logs to the storage
// without explicit concurrency control").
//
// An LSN is a byte offset in the node's stream, exactly as in the paper
// ("this LSN also serves as the offset within the redo log file").
// Appends charge the log-force latency; recovery reads charge storage-read
// latency per chunk. Checkpoint LSNs are stored durably alongside the log.
class LogStore {
 public:
  explicit LogStore(const LatencyProfile& profile) : profile_(profile) {}

  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  Status CreateLog(NodeId node);
  bool LogExists(NodeId node) const;
  // Every log stream that exists (recovery iterates all of them).
  std::vector<NodeId> AllLogs() const;

  // Durably appends `data`; returns the LSN (stream offset) of its first
  // byte. Thread-safe; each call is one forced write.
  StatusOr<Lsn> Append(NodeId node, const std::string& data);

  // End offset of the durable stream.
  StatusOr<Lsn> DurableLsn(NodeId node) const;

  // Reads up to `max_len` bytes at `offset` into `out` (may return fewer at
  // end of stream). Reading below the truncation point is a Corruption.
  Status ReadAt(NodeId node, Lsn offset, uint64_t max_len,
                std::string* out) const;

  // Logical truncation after a checkpoint: bytes below `new_start` may be
  // discarded.
  Status Truncate(NodeId node, Lsn new_start);

  // Durable checkpoint bookkeeping (recovery starts replay here).
  Status SetCheckpoint(NodeId node, Lsn lsn);
  StatusOr<Lsn> GetCheckpoint(NodeId node) const;

  // Durable restart-epoch counter, used to keep TIT slot versions unique
  // across restarts (a fresh TIT seeds slot versions from the epoch).
  uint64_t BumpNodeEpoch(NodeId node);
  uint64_t GetNodeEpoch(NodeId node) const;

  // Test-only fault injection: the next `n` Appends (any node) fail with an
  // IO error after charging the device latency, leaving the stream
  // untouched. Exercises the force-error completion path of the group
  // commit pipeline (every queued committer must see the failure).
  void FailNextAppends(int n);

 private:
  struct Stream {
    std::string data;      // bytes from `start` onward
    Lsn start = 0;         // truncation point
    Lsn checkpoint = 0;
    uint64_t epoch = 0;
  };

  const LatencyProfile profile_;
  mutable RankedMutex mu_{LockRank::kStorage, "log_store.streams"};
  std::map<NodeId, Stream> streams_ GUARDED_BY(mu_);
  int fail_appends_ GUARDED_BY(mu_) = 0;
};

}  // namespace polarmp

#endif  // POLARMP_STORAGE_LOG_STORE_H_
