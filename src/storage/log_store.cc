#include "storage/log_store.h"

#include <algorithm>

namespace polarmp {

Status LogStore::CreateLog(NodeId node) {
  MutexLock lock(mu_);
  if (streams_.count(node) != 0) {
    return Status::AlreadyExists("log exists: node " + std::to_string(node));
  }
  streams_[node] = Stream{};
  return Status::OK();
}

bool LogStore::LogExists(NodeId node) const {
  MutexLock lock(mu_);
  return streams_.count(node) != 0;
}

std::vector<NodeId> LogStore::AllLogs() const {
  MutexLock lock(mu_);
  std::vector<NodeId> out;
  out.reserve(streams_.size());
  for (const auto& [node, stream] : streams_) out.push_back(node);
  return out;
}

StatusOr<Lsn> LogStore::Append(NodeId node, const std::string& data) {
  SimDelay(profile_.log_append_ns);
  MutexLock lock(mu_);
  if (fail_appends_ > 0) {
    --fail_appends_;
    return Status::IOError("injected log append failure");
  }
  auto it = streams_.find(node);
  if (it == streams_.end()) {
    return Status::NotFound("log missing: node " + std::to_string(node));
  }
  const Lsn lsn = it->second.start + it->second.data.size();
  it->second.data += data;
  return lsn;
}

void LogStore::FailNextAppends(int n) {
  MutexLock lock(mu_);
  fail_appends_ = n;
}

StatusOr<Lsn> LogStore::DurableLsn(NodeId node) const {
  MutexLock lock(mu_);
  auto it = streams_.find(node);
  if (it == streams_.end()) {
    return Status::NotFound("log missing: node " + std::to_string(node));
  }
  return it->second.start + it->second.data.size();
}

Status LogStore::ReadAt(NodeId node, Lsn offset, uint64_t max_len,
                        std::string* out) const {
  SimDelay(profile_.storage_read_ns);
  MutexLock lock(mu_);
  auto it = streams_.find(node);
  if (it == streams_.end()) {
    return Status::NotFound("log missing: node " + std::to_string(node));
  }
  const Stream& s = it->second;
  if (offset < s.start) {
    return Status::Corruption("read below log truncation point");
  }
  const uint64_t rel = offset - s.start;
  if (rel >= s.data.size()) {
    out->clear();
    return Status::OK();
  }
  const uint64_t n = std::min<uint64_t>(max_len, s.data.size() - rel);
  out->assign(s.data.data() + rel, n);
  return Status::OK();
}

Status LogStore::Truncate(NodeId node, Lsn new_start) {
  MutexLock lock(mu_);
  auto it = streams_.find(node);
  if (it == streams_.end()) {
    return Status::NotFound("log missing: node " + std::to_string(node));
  }
  Stream& s = it->second;
  if (new_start < s.start) return Status::OK();  // already truncated past it
  const Lsn end = s.start + s.data.size();
  if (new_start > end) {
    return Status::InvalidArgument("truncate beyond end of log");
  }
  s.data.erase(0, new_start - s.start);
  s.start = new_start;
  return Status::OK();
}

Status LogStore::SetCheckpoint(NodeId node, Lsn lsn) {
  MutexLock lock(mu_);
  auto it = streams_.find(node);
  if (it == streams_.end()) {
    return Status::NotFound("log missing: node " + std::to_string(node));
  }
  it->second.checkpoint = std::max(it->second.checkpoint, lsn);
  return Status::OK();
}

uint64_t LogStore::BumpNodeEpoch(NodeId node) {
  MutexLock lock(mu_);
  return ++streams_[node].epoch;
}

uint64_t LogStore::GetNodeEpoch(NodeId node) const {
  MutexLock lock(mu_);
  auto it = streams_.find(node);
  return it == streams_.end() ? 0 : it->second.epoch;
}

StatusOr<Lsn> LogStore::GetCheckpoint(NodeId node) const {
  MutexLock lock(mu_);
  auto it = streams_.find(node);
  if (it == streams_.end()) {
    return Status::NotFound("log missing: node " + std::to_string(node));
  }
  return it->second.checkpoint;
}

}  // namespace polarmp
