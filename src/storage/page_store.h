#ifndef POLARMP_STORAGE_PAGE_STORE_H_
#define POLARMP_STORAGE_PAGE_STORE_H_

#include <atomic>
#include <memory>
#include <unordered_map>

#include "common/lock_rank.h"
#include "common/sim_latency.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace polarmp {

// Disaggregated shared page store (the PolarStore/PolarFS substitute).
//
// Every node in the cluster has equal read/write access to every page —
// the property that lets PolarDB-MP process any transaction on any node
// without distributed transactions (§1, §3). Pages are stored by PageId;
// each access charges the configured storage I/O latency, which is what
// makes DBP hits (RDMA-priced) so much cheaper than storage reads and
// drives the Buffer Fusion results.
//
// Durability model: contents survive compute-node crashes and DSM loss in
// the simulation. "Durable" here means "held by this object", standing in
// for PolarStore's replicated persistence.
class PageStore {
 public:
  PageStore(const LatencyProfile& profile, uint32_t page_size)
      : profile_(profile), page_size_(page_size) {}

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  uint32_t page_size() const { return page_size_; }

  Status CreateSpace(SpaceId space);
  Status DropSpace(SpaceId space);
  bool SpaceExists(SpaceId space) const;

  // Hands out fresh page numbers for a space (file-extension equivalent).
  StatusOr<PageNo> AllocPageNo(SpaceId space);
  // Highest page number allocated so far (for recovery scans).
  StatusOr<PageNo> MaxPageNo(SpaceId space) const;

  // `dst`/`src` must be page_size() bytes. Reads of never-written pages
  // return NotFound (the engine then formats a fresh page).
  Status ReadPage(PageId page_id, char* dst) const;
  Status WritePage(PageId page_id, const char* src);
  bool PageExists(PageId page_id) const;

  // Telemetry shims over this instance's registry handles ("page_store.*"
  // families); I/O latency distributions are "page_store.{read,write}_ns".
  uint64_t reads() const { return reads_.Value(); }
  uint64_t writes() const { return writes_.Value(); }
  void ResetCounters();

 private:
  struct Space {
    std::atomic<PageNo> next_page_no{0};
  };

  const LatencyProfile profile_;
  const uint32_t page_size_;

  mutable RankedSharedMutex mu_{LockRank::kStorage, "page_store.spaces"};
  // Guards the maps only: Space objects are never erased while in use, and
  // page buffers are written through stable char[] allocations.
  std::unordered_map<SpaceId, std::unique_ptr<Space>> spaces_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::unique_ptr<char[]>> pages_ GUARDED_BY(mu_);

  mutable obs::Counter reads_{"page_store.reads"};
  obs::Counter writes_{"page_store.writes"};
  mutable obs::LatencyHistogram read_ns_{"page_store.read_ns"};
  obs::LatencyHistogram write_ns_{"page_store.write_ns"};
};

}  // namespace polarmp

#endif  // POLARMP_STORAGE_PAGE_STORE_H_
