#include "storage/page_store.h"

#include "obs/trace.h"

#include <cstring>

namespace polarmp {

Status PageStore::CreateSpace(SpaceId space) {
  WriterLock lock(mu_);
  if (spaces_.count(space) != 0) {
    return Status::AlreadyExists("space exists: " + std::to_string(space));
  }
  spaces_[space] = std::make_unique<Space>();
  return Status::OK();
}

Status PageStore::DropSpace(SpaceId space) {
  WriterLock lock(mu_);
  if (spaces_.erase(space) == 0) {
    return Status::NotFound("space missing: " + std::to_string(space));
  }
  for (auto it = pages_.begin(); it != pages_.end();) {
    if (static_cast<SpaceId>(it->first >> 32) == space) {
      it = pages_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

bool PageStore::SpaceExists(SpaceId space) const {
  ReaderLock lock(mu_);
  return spaces_.count(space) != 0;
}

StatusOr<PageNo> PageStore::AllocPageNo(SpaceId space) {
  ReaderLock lock(mu_);
  auto it = spaces_.find(space);
  if (it == spaces_.end()) {
    return Status::NotFound("space missing: " + std::to_string(space));
  }
  return it->second->next_page_no.fetch_add(1, std::memory_order_relaxed);
}

StatusOr<PageNo> PageStore::MaxPageNo(SpaceId space) const {
  ReaderLock lock(mu_);
  auto it = spaces_.find(space);
  if (it == spaces_.end()) {
    return Status::NotFound("space missing: " + std::to_string(space));
  }
  return it->second->next_page_no.load(std::memory_order_relaxed);
}

Status PageStore::ReadPage(PageId page_id, char* dst) const {
  reads_.Inc();
  obs::TraceSpan span(&read_ns_);
  SimDelay(profile_.storage_read_ns);
  ReaderLock lock(mu_);
  auto it = pages_.find(page_id.Pack());
  if (it == pages_.end()) {
    return Status::NotFound("page not in store: " + page_id.ToString());
  }
  std::memcpy(dst, it->second.get(), page_size_);
  return Status::OK();
}

Status PageStore::WritePage(PageId page_id, const char* src) {
  writes_.Inc();
  obs::TraceSpan span(&write_ns_);
  SimDelay(profile_.storage_write_ns);
  WriterLock lock(mu_);
  if (spaces_.count(page_id.space) == 0) {
    return Status::NotFound("space missing: " + std::to_string(page_id.space));
  }
  auto& slot = pages_[page_id.Pack()];
  if (slot == nullptr) slot = std::make_unique<char[]>(page_size_);
  std::memcpy(slot.get(), src, page_size_);
  return Status::OK();
}

bool PageStore::PageExists(PageId page_id) const {
  ReaderLock lock(mu_);
  return pages_.count(page_id.Pack()) != 0;
}

void PageStore::ResetCounters() {
  reads_.Reset();
  writes_.Reset();
  read_ns_.Reset();
  write_ns_.Reset();
}

}  // namespace polarmp
