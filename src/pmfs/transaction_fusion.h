#ifndef POLARMP_PMFS_TRANSACTION_FUSION_H_
#define POLARMP_PMFS_TRANSACTION_FUSION_H_

#include <atomic>
#include <map>

#include "common/lock_rank.h"
#include "obs/metrics.h"
#include "pmfs/tso.h"

namespace polarmp {

// Transaction Fusion (§4.1): hosts the TSO and aggregates the per-node
// minimum active views into a global minimum view, which drives TIT slot
// recycling and undo purge ("each node runs a background thread that sends
// its minimal view to Transaction Fusion. Transaction Fusion consolidates
// these views to form a global minimum view, which is then broadcast to
// all nodes").
//
// The "broadcast" is implemented the RDMA-friendly way: the global minimum
// lives in fabric-registered memory and nodes read it with a one-sided
// RDMA read whenever they need it.
class TransactionFusion {
 public:
  explicit TransactionFusion(Fabric* fabric);
  ~TransactionFusion();

  TransactionFusion(const TransactionFusion&) = delete;
  TransactionFusion& operator=(const TransactionFusion&) = delete;

  Tso* tso() { return &tso_; }

  // Registers a node so its (yet unreported) view constrains the global
  // minimum; must be called before the node serves transactions.
  void AddNode(NodeId node);
  void RemoveNode(NodeId node);

  // RPC from a node's background thread: `min_view` is the smallest CTS any
  // of its active transactions / read views can still observe.
  Status ReportMinView(NodeId node, Csn min_view);

  // One-sided read of the consolidated minimum (from a node).
  StatusOr<Csn> GlobalMinView(EndpointId from) const;

  // Server-local read (no fabric charge), for tests and co-located logic.
  Csn GlobalMinViewLocal() const {
    return global_min_.load(std::memory_order_acquire);
  }

  // Max-merges `local` into the cluster-wide LLSN watermark and returns the
  // merged value (one one-sided RDMA op). Nodes fold the result into their
  // LLSN clocks before emitting heartbeat marks, so an idle node's log
  // horizon tracks the cluster instead of its own last write — which is
  // what lets LLSN_bound consumers (standby, recovery) drain past it.
  // Inflating a node's clock is always safe: only per-page monotonicity
  // matters, and that is enforced by the page-stamp max-merge.
  StatusOr<Llsn> MergeLlsnWatermark(EndpointId from, Llsn local);

  // ---- telemetry ------------------------------------------------------------
  // Shims over this instance's registry handles ("txn_fusion.*" families).
  // The commit-path latency decomposition ("txn_fusion.commit*_ns":
  // enqueue/tso on the committer thread, log across the group force,
  // finalize on the commit finalizer thread) is recorded node-side by
  // TrxManager::CommitAsync and FinishCommit.
  uint64_t min_view_reports() const { return min_view_reports_.Value(); }
  uint64_t min_view_reads() const { return min_view_reads_.Value(); }
  uint64_t llsn_merges() const { return llsn_merges_.Value(); }
  void ResetCounters();

 private:
  void Recompute() REQUIRES(mu_);

  Fabric* const fabric_;
  // polarlint: unguarded(internally synchronized)
  Tso tso_;

  mutable RankedMutex mu_{LockRank::kPmfsService, "txn_fusion.reported"};
  // kCsnInit = registered, not yet reported
  std::map<NodeId, Csn> reported_ GUARDED_BY(mu_);

  // Fabric-registered broadcast cells.
  // polarlint: allow(raw-atomic) one-sided RDMA target (broadcast cell)
  // polarlint: unguarded(lock-free broadcast cell; CAS-published)
  std::atomic<uint64_t> global_min_;
  // polarlint: allow(raw-atomic) one-sided RDMA target (broadcast cell)
  // polarlint: unguarded(lock-free broadcast cell; CAS-published)
  std::atomic<uint64_t> global_llsn_{0};

  obs::Counter min_view_reports_{"txn_fusion.min_view_reports"};
  mutable obs::Counter min_view_reads_{"txn_fusion.min_view_reads"};
  obs::Counter llsn_merges_{"txn_fusion.llsn_merges"};
};

}  // namespace polarmp

#endif  // POLARMP_PMFS_TRANSACTION_FUSION_H_
