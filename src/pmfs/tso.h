#ifndef POLARMP_PMFS_TSO_H_
#define POLARMP_PMFS_TSO_H_

#include <atomic>
#include <chrono>

#include "common/lock_rank.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "rdma/fabric.h"

namespace polarmp {

// Fabric region ids hosted at the PMFS endpoint.
inline constexpr uint32_t kTsoRegion = 1;
inline constexpr uint32_t kGlobalMinViewRegion = 2;
inline constexpr uint32_t kGlobalLlsnRegion = 3;

// Timestamp Oracle (§4.1): a logical, incrementally assigned commit
// timestamp counter hosted on PMFS. Nodes fetch commit timestamps with a
// one-sided RDMA fetch-add and read the current value with a one-sided
// read — "typically completed within several microseconds" and priced as
// such by the fabric.
class Tso {
 public:
  explicit Tso(Fabric* fabric);
  ~Tso();

  Tso(const Tso&) = delete;
  Tso& operator=(const Tso&) = delete;

  // Allocates the next commit timestamp (one-sided RDMA fetch-add).
  StatusOr<Csn> NextCts(EndpointId from);

  // Reads the latest assigned CTS without advancing (read views).
  StatusOr<Csn> CurrentCts(EndpointId from);

 private:
  Fabric* const fabric_;
  // counter_ holds the last CTS handed out; starts at kCsnFirst - 1.
  // polarlint: allow(raw-atomic) one-sided RDMA fetch-add target (kTsoRegion)
  // polarlint: unguarded(lock-free fetch-add cell)
  std::atomic<uint64_t> counter_;
};

// Client-side timestamp cache implementing the Linear Lamport Timestamp
// optimization from PolarDB-SCC (§4.1 "Timestamp fetching"): a request may
// reuse a timestamp that was *fetched after the request arrived*, which
// collapses concurrent read-view fetches into one TSO round trip under
// read-committed isolation.
class TsoClient {
 public:
  TsoClient(Tso* tso, EndpointId self, bool use_linear_lamport)
      : tso_(tso), self_(self), use_linear_lamport_(use_linear_lamport) {}

  TsoClient(const TsoClient&) = delete;
  TsoClient& operator=(const TsoClient&) = delete;

  // Returns a CTS valid for a read view of a request arriving "now".
  StatusOr<Csn> ReadTimestamp();

  // Commit timestamps are always fresh fetch-adds.
  StatusOr<Csn> CommitTimestamp();

  // Telemetry shims over this instance's registry handles ("tso.*").
  uint64_t fetches() const { return fetches_.Value(); }
  uint64_t reuses() const { return reuses_.Value(); }

 private:
  static uint64_t NowNanos() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  Tso* const tso_;
  const EndpointId self_;
  const bool use_linear_lamport_;

  // polarlint: unguarded(lock-free cache; published before fetch_started_at_)
  std::atomic<Csn> cached_ts_{0};
  // Start time of the last *completed* fetch (published after the value).
  // polarlint: allow(raw-atomic) publication timestamp, not a counter
  // polarlint: unguarded(lock-free publication watermark)
  std::atomic<uint64_t> fetch_started_at_{0};  // ns; 0 = never fetched

  // Fetch coalescing: one thread fetches, concurrent requesters whose
  // arrival predates that fetch's start reuse its result.
  RankedMutex fetch_mu_{LockRank::kPmfsService, "tso.fetch"};
  CondVar fetch_cv_;
  bool fetch_in_flight_ GUARDED_BY(fetch_mu_) = false;

  obs::Counter fetches_{"tso.fetches"};
  obs::Counter reuses_{"tso.reuses"};
};

}  // namespace polarmp

#endif  // POLARMP_PMFS_TSO_H_
