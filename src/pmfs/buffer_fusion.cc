#include "pmfs/buffer_fusion.h"

#include <chrono>
#include <cstring>
#include <tuple>

#include "rdma/retry_policy.h"

namespace polarmp {

BufferFusion::BufferFusion(Fabric* fabric, Dsm* dsm, PageStore* page_store,
                           const Options& options)
    : fabric_(fabric), dsm_(dsm), page_store_(page_store), options_(options) {}

BufferFusion::~BufferFusion() { Stop(); }

void BufferFusion::Start() {
  MutexLock lock(flusher_mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  flusher_ = std::thread([this] { FlusherLoop(); });
}

void BufferFusion::Stop() {
  {
    MutexLock lock(flusher_mu_);
    if (!started_) return;
    stop_ = true;
    flusher_cv_.notify_all();
  }
  flusher_.join();
  MutexLock lock(flusher_mu_);
  started_ = false;
}

void BufferFusion::AddNode(NodeId node) { (void)node; }

void BufferFusion::RemoveNode(NodeId node) {
  MutexLock lock(mu_);
  for (auto& [key, entry] : directory_) {
    // Drop the node's copies in every flag region (LBP + index cache).
    for (auto it = entry.copies.begin(); it != entry.copies.end();) {
      if (it->first.first == node) {
        it = entry.copies.erase(it);
      } else {
        ++it;
      }
    }
  }
}

StatusOr<DsmPtr> BufferFusion::AllocFrameLocked() {
  if (!free_frames_.empty()) {
    DsmPtr frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (frames_allocated_ >= options_.capacity_pages) {
    if (!EvictOneLocked()) {
      return Status::Internal("DBP full: no evictable frame");
    }
    DsmPtr frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  POLARMP_ASSIGN_OR_RETURN(DsmPtr frame, dsm_->Allocate(FrameBytes()));
  ++frames_allocated_;
  return frame;
}

bool BufferFusion::EvictOneLocked() {
  // A frame address (r_addr) must stay stable while any node caches the
  // page, so only copy-free, clean entries are evictable.
  for (auto it = directory_.begin(); it != directory_.end(); ++it) {
    Entry& e = it->second;
    if (e.present && e.copies.empty() && !e.dirty) {
      free_frames_.push_back(e.frame);
      directory_.erase(it);
      return true;
    }
  }
  return false;
}

StatusOr<BufferFusion::RegisterResult> BufferFusion::RegisterCopy(
    NodeId node, PageId page, uint64_t flag_offset, uint32_t flag_region) {
  return RetryTransientOr(fabric_, [&]() -> StatusOr<RegisterResult> {
    POLARMP_RETURN_IF_ERROR(
        fabric_->InjectRpcFault(node, kPmfsEndpoint, FaultOp::kRpcRequest));
    auto result = RegisterCopyImpl(node, page, flag_offset, flag_region);
    if (!result.ok()) return result;
    POLARMP_RETURN_IF_ERROR(
        fabric_->InjectRpcFault(node, kPmfsEndpoint, FaultOp::kRpcReply));
    return result;
  });
}

StatusOr<BufferFusion::RegisterResult> BufferFusion::RegisterCopyImpl(
    NodeId node, PageId page, uint64_t flag_offset, uint32_t flag_region) {
  fabric_->ChargeRpc(node, kPmfsEndpoint);
  MutexLock lock(mu_);
  auto it = directory_.find(page.Pack());
  if (it == directory_.end()) {
    POLARMP_ASSIGN_OR_RETURN(DsmPtr frame, AllocFrameLocked());
    // Fresh frame: zero the seqlock word so readers see "stable".
    std::memset(dsm_->HostPtr(frame), 0, 8);
    Entry entry;
    entry.frame = frame;
    it = directory_.emplace(page.Pack(), entry).first;
  }
  it->second.copies[{node, flag_region}] = flag_offset;
  return RegisterResult{it->second.frame, it->second.present};
}

Status BufferFusion::UnregisterCopy(NodeId node, PageId page,
                                    uint32_t flag_region) {
  return RetryTransient(fabric_, [&] {
    POLARMP_RETURN_IF_ERROR(
        fabric_->InjectRpcFault(node, kPmfsEndpoint, FaultOp::kRpcRequest));
    POLARMP_RETURN_IF_ERROR(UnregisterCopyImpl(node, page, flag_region));
    return fabric_->InjectRpcFault(node, kPmfsEndpoint, FaultOp::kRpcReply);
  });
}

Status BufferFusion::UnregisterCopyImpl(NodeId node, PageId page,
                                        uint32_t flag_region) {
  fabric_->ChargeRpc(node, kPmfsEndpoint);
  MutexLock lock(mu_);
  auto it = directory_.find(page.Pack());
  if (it == directory_.end()) return Status::OK();
  it->second.copies.erase({node, flag_region});
  return Status::OK();
}

Status BufferFusion::NotifyPush(NodeId node, PageId page, Llsn llsn,
                                bool clean_load) {
  // Idempotent: replaying a push notification re-marks the same state and
  // re-sets invalid flags that are already 1.
  return RetryTransient(fabric_, [&] {
    POLARMP_RETURN_IF_ERROR(
        fabric_->InjectRpcFault(node, kPmfsEndpoint, FaultOp::kRpcRequest));
    POLARMP_RETURN_IF_ERROR(NotifyPushImpl(node, page, llsn, clean_load));
    return fabric_->InjectRpcFault(node, kPmfsEndpoint, FaultOp::kRpcReply);
  });
}

Status BufferFusion::NotifyPushImpl(NodeId node, PageId page, Llsn llsn,
                                    bool clean_load) {
  fabric_->ChargeRpc(node, kPmfsEndpoint);
  // (node, flag region, flag offset)
  std::vector<std::tuple<NodeId, uint32_t, uint64_t>> to_invalidate;
  {
    MutexLock lock(mu_);
    auto it = directory_.find(page.Pack());
    if (it == directory_.end()) {
      return Status::NotFound("page not registered in DBP: " +
                              page.ToString());
    }
    Entry& entry = it->second;
    const bool already_current = entry.present && entry.pushed_llsn >= llsn;
    entry.present = true;
    if (llsn > entry.pushed_llsn) entry.pushed_llsn = llsn;
    if (clean_load) {
      // Content straight from storage: storage already has this version.
      if (llsn > entry.flushed_llsn) entry.flushed_llsn = llsn;
    } else if (llsn > entry.flushed_llsn) {
      entry.dirty = true;
    }
    if (!clean_load && !already_current) {
      for (const auto& [copy_key, offset] : entry.copies) {
        // Skip only the pusher's own LBP frame — its content IS the new
        // version. The pusher's index-cache slot (if any) still holds the
        // old image and must be invalidated like everyone else's.
        if (copy_key.first == node && copy_key.second == kLbpFlagsRegion) {
          continue;
        }
        to_invalidate.emplace_back(copy_key.first, copy_key.second, offset);
      }
    }
  }
  for (const auto& [copy_node, region, offset] : to_invalidate) {
    InvalidateCopy(copy_node, region, offset);
  }
  return Status::OK();
}

void BufferFusion::InvalidateCopy(NodeId node, uint32_t flag_region,
                                  uint64_t flag_offset) {
  // One-sided write of the copy's invalid flag (Fig. 4). Widened retry
  // budget: a dropped invalidation leaves a STALE VALID copy, so transient
  // faults must not be allowed to win here.
  RetryPolicy policy;
  policy.max_attempts = 8;
  const Status s = RetryTransient(
      fabric_,
      [&] {
        return fabric_->Store64(kPmfsEndpoint, node, flag_region, flag_offset,
                                1);
      },
      policy);
  if (s.ok()) {
    invalidations_.Inc();
  } else if (!s.IsUnavailable() && !s.IsNotFound()) {
    // Unavailable/NotFound: the copy died with its node (endpoint or flag
    // region deregistered) — nothing left to invalidate. Anything else is
    // a coherence hole worth shouting about.
    POLARMP_LOG(Warn) << "copy invalidation failed for node " << node << ": "
                      << s.ToString();
  }
}

Status BufferFusion::FetchPage(EndpointId from, DsmPtr frame,
                               char* dst) const {
  fetches_.Inc();
  return dsm_->ReadSeqlocked(from, frame, dst, options_.page_size);
}

Status BufferFusion::PushPage(EndpointId from, DsmPtr frame,
                              const char* src) const {
  pushes_.Inc();
  return dsm_->WriteSeqlocked(from, frame, src, options_.page_size);
}

Status BufferFusion::FetchPageVersioned(EndpointId from, DsmPtr frame,
                                        char* dst,
                                        uint64_t* version_out) const {
  fetches_.Inc();
  return dsm_->ReadSeqlocked(from, frame, dst, options_.page_size,
                             version_out);
}

// polarlint: seqlock-payload(stable-read loop over the frame's seq word; a
// torn copy fails the seq recheck and retries — see tsan.supp)
Status BufferFusion::FlushEntryLocked(PageId page) {
  auto it = directory_.find(page.Pack());
  if (it == directory_.end() || !it->second.dirty || !it->second.present) {
    return Status::OK();
  }
  const DsmPtr frame = it->second.frame;
  const Llsn snapshot_llsn = it->second.pushed_llsn;
  mu_.unlock();

  // Host-side stable read (the flusher is co-located with the DSM servers,
  // so no fabric charge; the storage write below charges I/O latency).
  std::string buf(options_.page_size, '\0');
  // polarlint: allow(raw-atomic) seqlock word view, not a counter
  auto* seq = reinterpret_cast<std::atomic<uint64_t>*>(dsm_->HostPtr(frame));
  const char* data = dsm_->HostPtr(DsmPtr{frame.server, frame.offset + 8});
  for (;;) {
    const uint64_t s1 = seq->load(std::memory_order_acquire);
    if (s1 % 2 == 1) {
      std::this_thread::yield();
      continue;
    }
    std::memcpy(buf.data(), data, options_.page_size);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq->load(std::memory_order_acquire) == s1) break;
  }
  const Status write = page_store_->WritePage(page, buf.data());

  mu_.lock();
  if (!write.ok()) return write;
  storage_flushes_.Inc();
  auto it2 = directory_.find(page.Pack());
  if (it2 != directory_.end()) {
    Entry& e = it2->second;
    if (snapshot_llsn > e.flushed_llsn) e.flushed_llsn = snapshot_llsn;
    if (e.flushed_llsn >= e.pushed_llsn) e.dirty = false;
  }
  return Status::OK();
}

Status BufferFusion::FlushPages(NodeId node,
                                const std::vector<PageId>& pages) {
  fabric_->ChargeRpc(node, kPmfsEndpoint);
  MutexLock lock(mu_);
  for (PageId page : pages) {
    POLARMP_RETURN_IF_ERROR(FlushEntryLocked(page));
  }
  return Status::OK();
}

Status BufferFusion::FlushAllDirty(NodeId node) {
  fabric_->ChargeRpc(node, kPmfsEndpoint);
  std::vector<PageId> dirty;
  {
    MutexLock lock(mu_);
    for (const auto& [key, entry] : directory_) {
      if (entry.dirty && entry.present) dirty.push_back(PageId::Unpack(key));
    }
  }
  MutexLock lock(mu_);
  for (PageId page : dirty) {
    POLARMP_RETURN_IF_ERROR(FlushEntryLocked(page));
  }
  return Status::OK();
}

Llsn BufferFusion::LastFlushedLlsn(PageId page) const {
  MutexLock lock(mu_);
  auto it = directory_.find(page.Pack());
  return it == directory_.end() ? 0 : it->second.flushed_llsn;
}

bool BufferFusion::HasValidPage(PageId page) const {
  MutexLock lock(mu_);
  auto it = directory_.find(page.Pack());
  return it != directory_.end() && it->second.present;
}

Status BufferFusion::ReadPageForRecovery(EndpointId from, PageId page,
                                         char* dst) const {
  DsmPtr frame;
  {
    MutexLock lock(mu_);
    auto it = directory_.find(page.Pack());
    if (it == directory_.end() || !it->second.present) {
      return Status::NotFound("page not valid in DBP: " + page.ToString());
    }
    frame = it->second.frame;
  }
  return FetchPage(from, frame, dst);
}

Status BufferFusion::HostWritePage(PageId page, const char* data, Llsn llsn,
                                   bool flushed) {
  std::vector<std::tuple<NodeId, uint32_t, uint64_t>> to_invalidate;
  DsmPtr frame;
  {
    MutexLock lock(mu_);
    auto it = directory_.find(page.Pack());
    if (it == directory_.end()) {
      POLARMP_ASSIGN_OR_RETURN(DsmPtr f, AllocFrameLocked());
      std::memset(dsm_->HostPtr(f), 0, 8);
      Entry entry;
      entry.frame = f;
      it = directory_.emplace(page.Pack(), entry).first;
    }
    Entry& entry = it->second;
    frame = entry.frame;
    entry.present = true;
    if (llsn > entry.pushed_llsn) entry.pushed_llsn = llsn;
    if (flushed) {
      if (llsn > entry.flushed_llsn) entry.flushed_llsn = llsn;
      if (entry.flushed_llsn >= entry.pushed_llsn) entry.dirty = false;
    } else if (llsn > entry.flushed_llsn) {
      entry.dirty = true;
    }
    for (const auto& [copy_key, offset] : entry.copies) {
      to_invalidate.emplace_back(copy_key.first, copy_key.second, offset);
    }
  }
  dsm_->HostWriteSeqlocked(frame, data, options_.page_size);
  for (const auto& [copy_node, region, offset] : to_invalidate) {
    InvalidateCopy(copy_node, region, offset);
  }
  return Status::OK();
}

void BufferFusion::FlusherLoop() {
  for (;;) {
    {
      UniqueLock lock(flusher_mu_);
      flusher_cv_.wait_for(lock,
                           std::chrono::milliseconds(options_.flush_interval_ms),
                           [&] { return stop_; });
      if (stop_) return;
    }
    // Collect dirty pages, then flush them one by one.
    std::vector<PageId> dirty;
    {
      MutexLock lock(mu_);
      for (const auto& [key, entry] : directory_) {
        if (entry.dirty && entry.present) dirty.push_back(PageId::Unpack(key));
      }
    }
    MutexLock lock(mu_);
    for (PageId page : dirty) {
      const Status s = FlushEntryLocked(page);
      if (!s.ok()) {
        POLARMP_LOG(Warn) << "DBP flush failed for page " << page.ToString()
                          << ": " << s.ToString();
      }
    }
  }
}

}  // namespace polarmp
