#include "pmfs/lock_fusion.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"

namespace polarmp {

void LockFusion::AddNode(NodeId node, NegotiateHandler handler) {
  MutexLock lock(mu_);
  nodes_[node] = std::move(handler);
}

void LockFusion::RemoveNode(NodeId node) {
  std::vector<std::pair<PageId, NodeId>> to_negotiate;
  {
    MutexLock lock(mu_);
    nodes_.erase(node);
    for (auto& [key, entry] : plocks_) {
      // Exclusive holds become ghost holds until recovery replays the
      // node's log (see header comment); shared holds can go now.
      auto held = entry.holders.find(node);
      if (held != entry.holders.end() &&
          held->second == LockMode::kShared) {
        entry.holders.erase(held);
      }
      entry.negotiated.erase(node);
      for (auto& w : entry.queue) {
        if (w->node == node) w->failed = true;
      }
      std::vector<NodeId> targets;
      TryGrant(PageId::Unpack(key), &entry, &targets);
      for (NodeId t : targets) to_negotiate.emplace_back(PageId::Unpack(key), t);
    }
    // Row-lock waits originated by the crashed node's transactions die with
    // their worker threads.
    for (auto it = waits_by_waiter_.begin(); it != waits_by_waiter_.end();) {
      if (GTrxNode(it->first) == node) {
        it->second->done = true;
        it = waits_by_waiter_.erase(it);
      } else {
        ++it;
      }
    }
    // Waiters blocked on the crashed node's transactions are woken so they
    // re-examine the row; the locks clear once recovery rolls the
    // transactions back.
    for (auto it = waits_by_holder_.begin(); it != waits_by_holder_.end();) {
      if (GTrxNode(it->first) == node) {
        for (auto& w : it->second) w->done = true;
        it = waits_by_holder_.erase(it);
      } else {
        ++it;
      }
    }
    cv_.notify_all();
  }
  for (auto& [page, target] : to_negotiate) {
    NegotiateHandler handler;
    {
      MutexLock lock(mu_);
      auto it = nodes_.find(target);
      if (it == nodes_.end()) continue;
      handler = it->second;
    }
    handler(page);
  }
}

void LockFusion::ReleaseAllHolds(NodeId node) {
  std::vector<std::pair<PageId, NodeId>> to_negotiate;
  {
    MutexLock lock(mu_);
    for (auto it = plocks_.begin(); it != plocks_.end();) {
      PLockEntry& entry = it->second;
      entry.holders.erase(node);
      entry.negotiated.erase(node);
      std::vector<NodeId> targets;
      TryGrant(PageId::Unpack(it->first), &entry, &targets);
      for (NodeId t : targets) {
        to_negotiate.emplace_back(PageId::Unpack(it->first), t);
      }
      if (entry.holders.empty() && entry.queue.empty()) {
        it = plocks_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& [page, target] : to_negotiate) {
    NegotiateHandler handler;
    {
      MutexLock lock(mu_);
      auto it = nodes_.find(target);
      if (it == nodes_.end()) continue;
      handler = it->second;
    }
    handler(page);
  }
}

bool LockFusion::CanGrant(const PLockEntry& entry, const PLockWaiter& w) {
  for (const auto& [holder, mode] : entry.holders) {
    if (holder == w.node) continue;  // own hold never blocks an upgrade
    if (LockModesConflict(mode, w.mode)) return false;
  }
  return true;
}

void LockFusion::TryGrant(PageId page, PLockEntry* entry,
                          std::vector<NodeId>* negotiate_targets) {
  (void)page;
  bool granted_any = false;
  while (!entry->queue.empty()) {
    auto w = entry->queue.front();
    if (w->failed) {
      entry->queue.pop_front();
      continue;
    }
    if (!CanGrant(*entry, *w)) break;
    auto& held = entry->holders[w->node];  // inserts kShared(=0) if absent
    held = std::max(held, w->mode);
    // A grant resets negotiation state for this node: it is a fresh hold.
    entry->negotiated.erase(w->node);
    w->granted = true;
    entry->queue.pop_front();
    granted_any = true;
  }
  if (!entry->queue.empty()) {
    // Front waiter is blocked: ask every conflicting holder (once) to give
    // the lock back when its local references drain (§4.3.1 negotiation).
    const auto& front = *entry->queue.front();
    for (const auto& [holder, mode] : entry->holders) {
      if (holder == front.node) continue;
      if (!LockModesConflict(mode, front.mode)) continue;
      if (entry->negotiated[holder]) continue;
      entry->negotiated[holder] = true;
      negotiations_sent_.Inc();
      negotiate_targets->push_back(holder);
    }
  }
  if (granted_any) cv_.notify_all();
}

Status LockFusion::AcquirePLock(NodeId node, PageId page, LockMode mode,
                                uint64_t timeout_ms) {
  // One request id per logical call, reused across retransmits, so the
  // service can recognize a retry of an acquire it already executed.
  const uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  return RetryTransient(fabric_, [&] {
    return AcquirePLockRpc(node, page, mode, timeout_ms, request_id);
  });
}

Status LockFusion::AcquirePLockRpc(NodeId node, PageId page, LockMode mode,
                                   uint64_t timeout_ms, uint64_t request_id) {
  POLARMP_RETURN_IF_ERROR(
      fabric_->InjectRpcFault(node, kPmfsEndpoint, FaultOp::kRpcRequest));
  if (auto hit = dedup_.Lookup(node, request_id)) {
    // Retransmit of an acquire that already executed (reply was lost):
    // replay the recorded outcome — one round trip, no second grant.
    fabric_->CountRpcDedupHit();
    fabric_->ChargeRpc(node, kPmfsEndpoint);
    return *hit;
  }
  const Status result = AcquirePLockImpl(node, page, mode, timeout_ms);
  dedup_.Record(node, request_id, result);
  POLARMP_RETURN_IF_ERROR(
      fabric_->InjectRpcFault(node, kPmfsEndpoint, FaultOp::kRpcReply));
  return result;
}

Status LockFusion::AcquirePLockImpl(NodeId node, PageId page, LockMode mode,
                                    uint64_t timeout_ms) {
  plock_acquire_rpcs_.Inc();
  // Request arrival to grant/timeout: the PLock wait time of §4.3.1
  // (covers the negotiate -> release -> grant round when contended).
  obs::TraceSpan span(&plock_wait_ns_);
  fabric_->ChargeRpc(node, kPmfsEndpoint);
  auto waiter = std::make_shared<PLockWaiter>();
  waiter->node = node;
  waiter->mode = mode;

  std::vector<NodeId> targets;
  {
    UniqueLock lock(mu_);
    PLockEntry& entry = plocks_[page.Pack()];
    auto held = entry.holders.find(node);
    if (held != entry.holders.end() &&
        (held->second == LockMode::kExclusive || held->second == mode)) {
      return Status::OK();  // already holds a sufficient mode
    }
    entry.queue.push_back(waiter);
    TryGrant(page, &entry, &targets);
  }
  for (NodeId t : targets) {
    NegotiateHandler handler;
    {
      MutexLock lock(mu_);
      auto it = nodes_.find(t);
      if (it == nodes_.end()) continue;
      handler = it->second;
    }
    handler(page);
  }

  UniqueLock lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!waiter->granted && !waiter->failed) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        !waiter->granted && !waiter->failed) {
      // Withdraw the request; the grant logic skips failed waiters.
      waiter->failed = true;
      auto it = plocks_.find(page.Pack());
      std::string holders;
      if (it != plocks_.end()) {
        for (const auto& [h, m] : it->second.holders) {
          holders += std::to_string(h) +
                     (m == LockMode::kExclusive ? "X " : "S ");
        }
        std::vector<NodeId> more;
        TryGrant(page, &it->second, &more);
        // Timed-out path: skip extra negotiations; the next acquire retries.
      }
      POLARMP_LOG(Warn) << "PLock timeout: node " << node << " wanted "
                        << (mode == LockMode::kExclusive ? "X" : "S")
                        << " on page " << page.ToString() << "; holders: "
                        << holders;
      return Status::Busy("PLock timeout on page " + page.ToString());
    }
  }
  if (waiter->failed) {
    return Status::Unavailable("node removed while waiting for PLock");
  }
  return Status::OK();
}

Status LockFusion::ReleasePLock(NodeId node, PageId page) {
  const uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  return RetryTransient(fabric_, [&] {
    return ReleasePLockRpc(node, page, request_id);
  });
}

Status LockFusion::ReleasePLockRpc(NodeId node, PageId page,
                                   uint64_t request_id) {
  POLARMP_RETURN_IF_ERROR(
      fabric_->InjectRpcFault(node, kPmfsEndpoint, FaultOp::kRpcRequest));
  if (auto hit = dedup_.Lookup(node, request_id)) {
    // Without dedup a re-executed release would see "node does not hold
    // PLock" and turn a lost reply into a spurious NotFound.
    fabric_->CountRpcDedupHit();
    fabric_->ChargeRpc(node, kPmfsEndpoint);
    return *hit;
  }
  const Status result = ReleasePLockImpl(node, page);
  dedup_.Record(node, request_id, result);
  POLARMP_RETURN_IF_ERROR(
      fabric_->InjectRpcFault(node, kPmfsEndpoint, FaultOp::kRpcReply));
  return result;
}

Status LockFusion::ReleasePLockImpl(NodeId node, PageId page) {
  plock_release_rpcs_.Inc();
  fabric_->ChargeRpc(node, kPmfsEndpoint);
  std::vector<NodeId> targets;
  {
    MutexLock lock(mu_);
    auto it = plocks_.find(page.Pack());
    if (it == plocks_.end()) {
      return Status::NotFound("PLock entry missing: " + page.ToString());
    }
    PLockEntry& entry = it->second;
    if (entry.holders.erase(node) == 0) {
      return Status::NotFound("node does not hold PLock: " + page.ToString());
    }
    entry.negotiated.erase(node);
    TryGrant(page, &entry, &targets);
    if (entry.holders.empty() && entry.queue.empty()) {
      plocks_.erase(it);
    }
  }
  for (NodeId t : targets) {
    NegotiateHandler handler;
    {
      MutexLock lock(mu_);
      auto hit = nodes_.find(t);
      if (hit == nodes_.end()) continue;
      handler = hit->second;
    }
    handler(page);
  }
  return Status::OK();
}

bool LockFusion::HoldsPLock(NodeId node, PageId page, LockMode mode) const {
  MutexLock lock(mu_);
  auto it = plocks_.find(page.Pack());
  if (it == plocks_.end()) return false;
  auto h = it->second.holders.find(node);
  if (h == it->second.holders.end()) return false;
  return h->second == LockMode::kExclusive || h->second == mode;
}

Status LockFusion::RegisterWait(GTrxId waiter, GTrxId holder) {
  POLARMP_CHECK_NE(waiter, holder);
  // Only the request leg is injected here: a wait registration mutates the
  // wait-for graph, and re-registering an already-registered waiter is a
  // protocol violation (the CHECK below), so retries are safe exactly when
  // the request was lost BEFORE execution. Reply loss is not modeled for
  // this verb — in the real system the registration rides the (idempotent)
  // ref-flag write's completion.
  return RetryTransient(fabric_, [&] {
    POLARMP_RETURN_IF_ERROR(fabric_->InjectRpcFault(
        GTrxNode(waiter), kPmfsEndpoint, FaultOp::kRpcRequest));
    return RegisterWaitImpl(waiter, holder);
  });
}

Status LockFusion::RegisterWaitImpl(GTrxId waiter, GTrxId holder) {
  fabric_->ChargeRpc(GTrxNode(waiter), kPmfsEndpoint);
  MutexLock lock(mu_);
  rlock_waits_.Inc();
  if (WaitChainReaches(holder, waiter)) {
    deadlocks_detected_.Inc();
    return Status::Aborted("deadlock: wait-for cycle detected");
  }
  POLARMP_CHECK_EQ(waits_by_waiter_.count(waiter), 0u)
      << "transaction already has a registered wait";
  auto wait = std::make_shared<TrxWait>();
  wait->waiter = waiter;
  wait->holder = holder;
  waits_by_waiter_[waiter] = wait;
  waits_by_holder_[holder].push_back(wait);
  return Status::OK();
}

bool LockFusion::WaitChainReaches(GTrxId from, GTrxId target) const {
  GTrxId cur = from;
  for (int depth = 0; depth < 256; ++depth) {
    if (cur == target) return true;
    auto it = waits_by_waiter_.find(cur);
    if (it == waits_by_waiter_.end()) return false;
    cur = it->second->holder;
  }
  // Pathologically deep chain: treat as a deadlock rather than risk a hang.
  return true;
}

Status LockFusion::AwaitHolder(GTrxId waiter, uint64_t timeout_ms) {
  obs::TraceSpan span(&rlock_wait_ns_);
  UniqueLock lock(mu_);
  auto it = waits_by_waiter_.find(waiter);
  if (it == waits_by_waiter_.end()) {
    return Status::OK();  // already notified and cleaned up
  }
  auto wait = it->second;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!wait->done) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        !wait->done) {
      RemoveWaitLocked(waiter);
      return Status::Busy("row-lock wait timeout");
    }
  }
  RemoveWaitLocked(waiter);
  return Status::OK();
}

void LockFusion::CancelWait(GTrxId waiter) {
  fabric_->ChargeRpc(GTrxNode(waiter), kPmfsEndpoint);
  MutexLock lock(mu_);
  RemoveWaitLocked(waiter);
}

void LockFusion::RemoveWaitLocked(GTrxId waiter) {
  auto it = waits_by_waiter_.find(waiter);
  if (it == waits_by_waiter_.end()) return;
  auto wait = it->second;
  waits_by_waiter_.erase(it);
  auto hit = waits_by_holder_.find(wait->holder);
  if (hit != waits_by_holder_.end()) {
    auto& vec = hit->second;
    vec.erase(std::remove(vec.begin(), vec.end(), wait), vec.end());
    if (vec.empty()) waits_by_holder_.erase(hit);
  }
}

void LockFusion::NotifyTrxFinished(GTrxId holder) {
  fabric_->ChargeRpc(GTrxNode(holder), kPmfsEndpoint);
  MutexLock lock(mu_);
  auto it = waits_by_holder_.find(holder);
  if (it == waits_by_holder_.end()) return;
  for (auto& w : it->second) w->done = true;
  waits_by_holder_.erase(it);
  cv_.notify_all();
}

std::string LockFusion::DebugDump() const {
  MutexLock lock(mu_);
  std::string out = "LockFusion state:\n";
  for (const auto& [key, entry] : plocks_) {
    if (entry.queue.empty() && entry.holders.empty()) continue;
    out += "  page " + PageId::Unpack(key).ToString() + ": holders[";
    for (const auto& [h, m] : entry.holders) {
      out += std::to_string(h) + (m == LockMode::kExclusive ? "X" : "S") + " ";
    }
    out += "] queue[";
    for (const auto& w : entry.queue) {
      out += std::to_string(w->node) +
             (w->mode == LockMode::kExclusive ? "X" : "S") +
             (w->granted ? "(g)" : "") + (w->failed ? "(f)" : "") + " ";
    }
    out += "]\n";
  }
  for (const auto& [waiter, wait] : waits_by_waiter_) {
    out += "  rlock wait: " + std::to_string(waiter) + " -> " +
           std::to_string(wait->holder) +
           (wait->done ? " (done)" : "") + "\n";
  }
  return out;
}

void LockFusion::ResetCounters() {
  plock_acquire_rpcs_.Reset();
  plock_release_rpcs_.Reset();
  negotiations_sent_.Reset();
  rlock_waits_.Reset();
  deadlocks_detected_.Reset();
  plock_wait_ns_.Reset();
  rlock_wait_ns_.Reset();
}

}  // namespace polarmp
