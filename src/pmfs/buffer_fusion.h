#ifndef POLARMP_PMFS_BUFFER_FUSION_H_
#define POLARMP_PMFS_BUFFER_FUSION_H_

#include <atomic>
#include <deque>
#include <map>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/lock_rank.h"
#include "dsm/dsm.h"
#include "storage/page_store.h"
#include "obs/metrics.h"

namespace polarmp {

// Fabric region at each node endpoint holding the LBP frames' invalid
// flags, so Buffer Fusion can invalidate copies with one-sided writes.
inline constexpr uint32_t kLbpFlagsRegion = 2;

// Fabric region at each node endpoint holding the compute-side index
// cache's slot invalid flags. The cache registers its copies in the same
// directory as LBP copies, under this region, so one NotifyPush invalidates
// both kinds of replica with the same one-sided flag writes.
inline constexpr uint32_t kCacheFlagsRegion = 3;

// Buffer Fusion (§4.2, Fig. 4): the distributed buffer pool (DBP) living in
// disaggregated shared memory plus the directory that keeps all nodes'
// local buffer pools coherent.
//
// Directory state per page: the DSM frame address (`r_addr` handed to the
// nodes), which nodes hold copies and where each copy's invalid flag lives,
// whether the DBP content is valid, and flush bookkeeping for the
// background DBP→storage writer.
//
// Data-plane operations are one-sided:
//   * PushPage — seqlock-guarded RDMA write of a page into its frame
//     (performed by the holder of the page's exclusive PLock, so pushes of
//     *different* versions never race; the seqlock protects readers and the
//     flusher from torn reads).
//   * FetchPage — seqlock-guarded RDMA read.
// Control-plane operations (RegisterCopy / NotifyPush / UnregisterCopy /
// FlushPages) are RPCs.
class BufferFusion {
 public:
  struct Options {
    uint64_t capacity_pages = 4096;
    uint32_t page_size = 8192;
    // Background flusher scan interval.
    uint64_t flush_interval_ms = 50;
  };

  BufferFusion(Fabric* fabric, Dsm* dsm, PageStore* page_store,
               const Options& options);
  ~BufferFusion();

  BufferFusion(const BufferFusion&) = delete;
  BufferFusion& operator=(const BufferFusion&) = delete;

  void Start();  // launches the background flusher
  void Stop();

  void AddNode(NodeId node);
  void RemoveNode(NodeId node);  // crash: drop the node's copies

  struct RegisterResult {
    DsmPtr frame;       // the page's stable DBP address (r_addr)
    bool present;       // DBP already holds valid content
  };

  // RPC — node `node` wants to cache `page`; `flag_offset` addresses the
  // invalid flag of the frame/slot the node chose, inside its `flag_region`
  // (kLbpFlagsRegion for LBP frames, kCacheFlagsRegion for index-cache
  // slots — a node may hold both kinds of copy of the same page at once).
  // If !present the node must load the page from storage and push it ("once
  // loaded by a node, the page is registered to the DBP and remotely
  // written to it").
  StatusOr<RegisterResult> RegisterCopy(NodeId node, PageId page,
                                        uint64_t flag_offset,
                                        uint32_t flag_region = kLbpFlagsRegion);

  // RPC — the node evicted its copy of `page` from the given region's
  // structure (LBP frame or cache slot).
  Status UnregisterCopy(NodeId node, PageId page,
                        uint32_t flag_region = kLbpFlagsRegion);

  // RPC — the node finished a one-sided push of `page` at `llsn`. Marks the
  // DBP content valid/dirty and remotely invalidates every other copy.
  // `clean_load` pushes (content read unmodified from storage) skip both
  // invalidation and dirty marking when the DBP already has that version.
  Status NotifyPush(NodeId node, PageId page, Llsn llsn, bool clean_load);

  // One-sided data plane. `dst`/`src` are page_size() bytes.
  Status FetchPage(EndpointId from, DsmPtr frame, char* dst) const;
  Status PushPage(EndpointId from, DsmPtr frame, const char* src) const;

  // FetchPage that also returns the frame's seqlock word at the stable
  // read — a content version the index cache uses to detect refreshes that
  // pulled an unchanged image.
  Status FetchPageVersioned(EndpointId from, DsmPtr frame, char* dst,
                            uint64_t* version_out) const;

  // RPC — synchronously flush the given pages (if dirty) to storage.
  Status FlushPages(NodeId node, const std::vector<PageId>& pages);

  // RPC — synchronously flush every dirty DBP page to storage. Node
  // checkpoints use this: a change the node logged may live only in the
  // DBP (pushed on negotiation, not yet background-flushed), and the
  // checkpoint must not advance past it while storage lacks it.
  Status FlushAllDirty(NodeId node);

  // Highest LLSN known durable in storage for `page` (kCsnInit/0 if never
  // flushed). Host-side (used by checkpoint logic via FlushPages' reply in
  // production; exposed directly here).
  Llsn LastFlushedLlsn(PageId page) const;

  // True if the DBP holds valid content for the page (recovery fast path).
  bool HasValidPage(PageId page) const;

  // Recovery fast path (§5.5): a restarting node fetches the latest page
  // from disaggregated memory instead of storage. Priced as one one-sided
  // read. NotFound if the DBP has no valid content for the page.
  Status ReadPageForRecovery(EndpointId from, PageId page, char* dst) const;

  // Host-side write used by recovery to publish a recovered page into the
  // DBP: allocates the entry if needed, performs a seqlock-protected write
  // and invalidates every cached copy. `flushed` marks the content as
  // already durable in storage.
  Status HostWritePage(PageId page, const char* data, Llsn llsn, bool flushed);

  uint32_t page_size() const { return options_.page_size; }

  // Telemetry shims over this instance's registry handles
  // ("buffer_fusion.*").
  uint64_t pushes() const { return pushes_.Value(); }
  uint64_t fetches() const { return fetches_.Value(); }
  uint64_t invalidations() const { return invalidations_.Value(); }
  uint64_t storage_flushes() const { return storage_flushes_.Value(); }

 private:
  // Service bodies behind the fault-injected RPC stubs. All three control
  // RPCs are idempotent (directory writes of the same values), so the
  // public stubs retry injected transients without request-id dedup.
  StatusOr<RegisterResult> RegisterCopyImpl(NodeId node, PageId page,
                                            uint64_t flag_offset,
                                            uint32_t flag_region);
  Status UnregisterCopyImpl(NodeId node, PageId page, uint32_t flag_region);
  Status NotifyPushImpl(NodeId node, PageId page, Llsn llsn, bool clean_load);

  // One-sided invalidation of a cached copy's invalid flag, retried under a
  // widened budget: a LOST invalidation is a stale read waiting to happen,
  // so only a genuinely dead copy holder excuses skipping it.
  void InvalidateCopy(NodeId node, uint32_t flag_region, uint64_t flag_offset);

  struct Entry {
    DsmPtr frame;          // seq(u64) + page bytes
    bool present = false;  // frame holds valid content
    bool dirty = false;    // newer than storage
    Llsn pushed_llsn = 0;  // latest version pushed
    Llsn flushed_llsn = 0; // latest version in storage
    // (node, flag region) -> invalid-flag offset. One node can appear twice:
    // once for its LBP frame and once for its index-cache slot.
    std::map<std::pair<NodeId, uint32_t>, uint64_t> copies;
  };

  // Allocates or reuses a frame.
  StatusOr<DsmPtr> AllocFrameLocked() REQUIRES(mu_);
  // Evicts one clean, copy-free entry to the free list.
  bool EvictOneLocked() REQUIRES(mu_);
  // Flushes one entry to storage. Drops mu_ around the storage I/O and
  // reacquires it before returning (invisible to the static analysis; the
  // contract is held-on-entry, held-on-exit).
  Status FlushEntryLocked(PageId page) REQUIRES(mu_);

  void FlusherLoop();

  uint64_t FrameBytes() const { return 8 + options_.page_size; }

  Fabric* const fabric_;
  Dsm* const dsm_;
  PageStore* const page_store_;
  const Options options_;

  mutable RankedMutex mu_{LockRank::kPmfsService, "buffer_fusion.directory"};
  // key: PageId::Pack()
  std::unordered_map<uint64_t, Entry> directory_ GUARDED_BY(mu_);
  std::vector<DsmPtr> free_frames_ GUARDED_BY(mu_);
  uint64_t frames_allocated_ GUARDED_BY(mu_) = 0;

  // polarlint: unguarded(set in Start under flusher_mu_; joined in Stop
  // after the stop_ handshake, necessarily outside the lock)
  std::thread flusher_;
  RankedMutex flusher_mu_{LockRank::kPmfsFlusher, "buffer_fusion.flusher"};
  CondVar flusher_cv_;
  bool stop_ GUARDED_BY(flusher_mu_) = false;
  bool started_ GUARDED_BY(flusher_mu_) = false;

  mutable obs::Counter pushes_{"buffer_fusion.pushes"};
  mutable obs::Counter fetches_{"buffer_fusion.fetches"};
  obs::Counter invalidations_{"buffer_fusion.invalidations"};
  obs::Counter storage_flushes_{"buffer_fusion.storage_flushes"};
};

}  // namespace polarmp

#endif  // POLARMP_PMFS_BUFFER_FUSION_H_
