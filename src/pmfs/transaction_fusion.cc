#include "pmfs/transaction_fusion.h"

#include "rdma/retry_policy.h"

namespace polarmp {

TransactionFusion::TransactionFusion(Fabric* fabric)
    : fabric_(fabric), tso_(fabric), global_min_(kCsnFirst) {
  const Status s =
      fabric_->RegisterRegion(kPmfsEndpoint, kGlobalMinViewRegion,
                              &global_min_, sizeof(global_min_));
  POLARMP_CHECK(s.ok()) << s.ToString();
  const Status s2 = fabric_->RegisterRegion(
      kPmfsEndpoint, kGlobalLlsnRegion, &global_llsn_, sizeof(global_llsn_));
  POLARMP_CHECK(s2.ok()) << s2.ToString();
}

TransactionFusion::~TransactionFusion() {
  // Teardown: nothing to report to.
  // polarlint: allow(unchecked-fabric-status)
  (void)fabric_->DeregisterRegion(kPmfsEndpoint, kGlobalMinViewRegion);
  // polarlint: allow(unchecked-fabric-status)
  (void)fabric_->DeregisterRegion(kPmfsEndpoint, kGlobalLlsnRegion);
}

StatusOr<Llsn> TransactionFusion::MergeLlsnWatermark(EndpointId from,
                                                     Llsn local) {
  llsn_merges_.Inc();
  // One one-sided fetch-style op: charge once, merge host-side.
  if (from != kPmfsEndpoint) SimDelay(fabric_->profile().rdma_cas_ns);
  uint64_t cur = global_llsn_.load(std::memory_order_acquire);
  while (local > cur && !global_llsn_.compare_exchange_weak(
                            cur, local, std::memory_order_acq_rel)) {
  }
  return std::max<Llsn>(cur, local);
}

void TransactionFusion::AddNode(NodeId node) {
  MutexLock lock(mu_);
  reported_.emplace(node, kCsnInit);
  Recompute();
}

void TransactionFusion::RemoveNode(NodeId node) {
  MutexLock lock(mu_);
  reported_.erase(node);
  Recompute();
}

Status TransactionFusion::ReportMinView(NodeId node, Csn min_view) {
  // Idempotent RPC (monotone max), so retransmits re-execute freely.
  return RetryTransient(fabric_, [&]() -> Status {
    POLARMP_RETURN_IF_ERROR(
        fabric_->InjectRpcFault(node, kPmfsEndpoint, FaultOp::kRpcRequest));
    min_view_reports_.Inc();
    fabric_->ChargeRpc(node, kPmfsEndpoint);
    {
      MutexLock lock(mu_);
      auto it = reported_.find(node);
      if (it == reported_.end()) {
        return Status::NotFound("node not registered with transaction fusion");
      }
      // Views only move forward; a late report must not regress the minimum.
      if (min_view > it->second) it->second = min_view;
      Recompute();
    }
    return fabric_->InjectRpcFault(node, kPmfsEndpoint, FaultOp::kRpcReply);
  });
}

void TransactionFusion::Recompute() {
  Csn min = kCsnMax;
  bool any_unreported = false;
  for (const auto& [node, view] : reported_) {
    if (view == kCsnInit) {
      any_unreported = true;
      break;
    }
    if (view < min) min = view;
  }
  if (any_unreported || reported_.empty()) {
    // A freshly added node constrains recycling completely until it reports
    // (it may open a view at any CTS ≥ the current global minimum).
    return;
  }
  // Monotone publish.
  uint64_t cur = global_min_.load(std::memory_order_relaxed);
  while (min > cur && !global_min_.compare_exchange_weak(
                          cur, min, std::memory_order_acq_rel)) {
  }
}

StatusOr<Csn> TransactionFusion::GlobalMinView(EndpointId from) const {
  min_view_reads_.Inc();
  return RetryTransientOr(fabric_, [&] {
    return fabric_->Load64(from, kPmfsEndpoint, kGlobalMinViewRegion,
                           /*offset=*/0);
  });
}

void TransactionFusion::ResetCounters() {
  min_view_reports_.Reset();
  min_view_reads_.Reset();
  llsn_merges_.Reset();
}

}  // namespace polarmp
