#ifndef POLARMP_PMFS_LOCK_FUSION_H_
#define POLARMP_PMFS_LOCK_FUSION_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/lock_rank.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "rdma/fabric.h"
#include "rdma/retry_policy.h"

namespace polarmp {

// Lock Fusion (§4.3): the PMFS service implementing the two cross-node
// locking protocols.
//
//  * PLock (§4.3.1, Fig. 5) — node-granularity page locks guaranteeing
//    physical consistency. Lock Fusion tracks each lock's holders and a
//    FIFO waiter queue. Nodes retain released locks locally ("lazy
//    releasing"); when another node's request conflicts, Lock Fusion sends
//    the holder a *negotiation message* asking it to hand the lock back
//    once its local reference count drains.
//
//  * RLock (§4.3.2, Fig. 6) — row-lock metadata is embedded in the rows
//    themselves; Lock Fusion only keeps the wait-for relation. A blocked
//    transaction registers (waiter → holder), the holder's commit sends a
//    notification, and Lock Fusion wakes the waiters. The wait-for graph
//    also gives cross-node deadlock detection for free.
//
// All entry points charge one RPC on the fabric (callers are remote nodes).
class LockFusion {
 public:
  // Delivered to the holding node when another node wants a conflicting
  // PLock; the node must release once its reference count reaches zero.
  // Invoked WITHOUT LockFusion's internal mutex held; the handler may call
  // back into ReleasePLock.
  using NegotiateHandler = std::function<void(PageId page)>;

  explicit LockFusion(Fabric* fabric) : fabric_(fabric) {}

  LockFusion(const LockFusion&) = delete;
  LockFusion& operator=(const LockFusion&) = delete;

  // ---- node lifecycle -----------------------------------------------------
  void AddNode(NodeId node, NegotiateHandler handler);
  // Crash path: fails the node's waiters, clears its row-lock waits and
  // releases its SHARED holds. Exclusive holds are retained as "ghost"
  // holds: the crashed node may have logged changes to those pages that are
  // not yet in the DBP/storage, so other nodes must not touch them until
  // recovery has replayed the node's log and called ReleaseAllHolds.
  void RemoveNode(NodeId node);
  // Recovery-complete path: drops every remaining hold of `node` and grants
  // waiters.
  void ReleaseAllHolds(NodeId node);

  // ---- PLock ---------------------------------------------------------------
  // Blocks until granted. If the node already holds the page, the call is an
  // upgrade request (granted when no other node holds the page). Returns
  // Busy on timeout, Unavailable if the node was removed while waiting.
  //
  // Acquire/Release are NOT idempotent, so the client stub mints a request
  // id per logical call and retries injected transients with it; the
  // service keeps a per-client outcome window (RpcDedupCache) and replays
  // the recorded result for a retransmit whose original execution finished
  // (the lost-reply case) instead of granting twice.
  Status AcquirePLock(NodeId node, PageId page, LockMode mode,
                      uint64_t timeout_ms);
  // Gives the node's hold back entirely (called when the local reference
  // count is zero and a negotiation asked for the page, or on eviction).
  Status ReleasePLock(NodeId node, PageId page);

  // True if fusion records `node` as holding `page` at ≥ `mode`.
  bool HoldsPLock(NodeId node, PageId page, LockMode mode) const;

  // ---- RLock wait-for table -------------------------------------------------
  // Registers waiter→holder. Returns Aborted if the edge closes a cycle in
  // the wait-for graph (the requester is chosen as the deadlock victim).
  Status RegisterWait(GTrxId waiter, GTrxId holder);
  // Blocks until the holder finishes or timeout (Busy). Deregisters the
  // wait before returning. Must follow a successful RegisterWait.
  Status AwaitHolder(GTrxId waiter, uint64_t timeout_ms);
  // Deregisters without waiting (the waiter noticed the holder finished).
  void CancelWait(GTrxId waiter);
  // From a committing/rolling-back transaction whose TIT ref flag was set.
  void NotifyTrxFinished(GTrxId holder);

  // Human-readable dump of every held/contended PLock and wait edge
  // (deadlock forensics).
  std::string DebugDump() const;

  Fabric* fabric() const { return fabric_; }

  // ---- telemetry -------------------------------------------------------------
  // Thin shims over this instance's registry handles ("lock_fusion.*"
  // families). Safe to read lock-free from any thread; wait-time
  // distributions live in "lock_fusion.{plock,rlock}_wait_ns".
  uint64_t plock_acquire_rpcs() const { return plock_acquire_rpcs_.Value(); }
  uint64_t plock_release_rpcs() const { return plock_release_rpcs_.Value(); }
  uint64_t negotiations_sent() const { return negotiations_sent_.Value(); }
  uint64_t rlock_waits() const { return rlock_waits_.Value(); }
  uint64_t deadlocks_detected() const { return deadlocks_detected_.Value(); }
  void ResetCounters();

 private:
  struct PLockWaiter {
    NodeId node;
    LockMode mode;
    bool granted = false;
    bool failed = false;  // node removed while waiting
  };

  struct PLockEntry {
    std::map<NodeId, LockMode> holders;
    std::deque<std::shared_ptr<PLockWaiter>> queue;
    // Holders already sent a negotiation for the current conflict.
    std::map<NodeId, bool> negotiated;
  };

  struct TrxWait {
    GTrxId waiter;
    GTrxId holder;
    bool done = false;
  };

  // RPC wire layer: request-leg fault injection, dedup lookup, execution,
  // outcome recording, reply-leg fault injection. The public stubs retry
  // injected transients around these with the SAME request id.
  Status AcquirePLockRpc(NodeId node, PageId page, LockMode mode,
                         uint64_t timeout_ms, uint64_t request_id);
  Status ReleasePLockRpc(NodeId node, PageId page, uint64_t request_id);
  // Service bodies (the pre-fault-injection semantics, verbatim).
  Status AcquirePLockImpl(NodeId node, PageId page, LockMode mode,
                          uint64_t timeout_ms);
  Status ReleasePLockImpl(NodeId node, PageId page);
  Status RegisterWaitImpl(GTrxId waiter, GTrxId holder);

  // Grants as many FIFO waiters as compatibility allows. Returns the pages'
  // holders that need (new) negotiation messages.
  void TryGrant(PageId page, PLockEntry* entry,
                std::vector<NodeId>* negotiate_targets) REQUIRES(mu_);
  static bool CanGrant(const PLockEntry& entry, const PLockWaiter& w);

  // True if starting from `from` the wait-for chain reaches `target`.
  bool WaitChainReaches(GTrxId from, GTrxId target) const REQUIRES(mu_);
  // Removes the waiter's edge from both indexes.
  void RemoveWaitLocked(GTrxId waiter) REQUIRES(mu_);

  Fabric* const fabric_;

  // Client-side request-id mint for the dedup-capable RPCs. Monotonic and
  // process-wide unique; never read back, so no ordering is needed.
  // polarlint: allow(raw-atomic) lock-free id mint, no associated state
  // polarlint: unguarded(atomic mint, independent of lock-fusion state)
  std::atomic<uint64_t> next_request_id_{1};
  // Service-side request-id -> outcome window (keyed by client node).
  // polarlint: unguarded(internally synchronized: own RankedMutex at kRpc)
  RpcDedupCache dedup_{"lock_fusion.dedup"};

  mutable RankedMutex mu_{LockRank::kPmfsService, "lock_fusion.state"};
  CondVar cv_;
  // key: PageId::Pack()
  std::unordered_map<uint64_t, PLockEntry> plocks_ GUARDED_BY(mu_);
  std::map<NodeId, NegotiateHandler> nodes_ GUARDED_BY(mu_);

  std::unordered_map<GTrxId, std::shared_ptr<TrxWait>> waits_by_waiter_
      GUARDED_BY(mu_);
  std::unordered_map<GTrxId, std::vector<std::shared_ptr<TrxWait>>>
      waits_by_holder_ GUARDED_BY(mu_);

  obs::Counter plock_acquire_rpcs_{"lock_fusion.plock_acquire_rpcs"};
  obs::Counter plock_release_rpcs_{"lock_fusion.plock_release_rpcs"};
  obs::Counter negotiations_sent_{"lock_fusion.negotiations_sent"};
  obs::Counter rlock_waits_{"lock_fusion.rlock_waits"};
  obs::Counter deadlocks_detected_{"lock_fusion.deadlocks_detected"};
  obs::LatencyHistogram plock_wait_ns_{"lock_fusion.plock_wait_ns"};
  obs::LatencyHistogram rlock_wait_ns_{"lock_fusion.rlock_wait_ns"};
};

}  // namespace polarmp

#endif  // POLARMP_PMFS_LOCK_FUSION_H_
