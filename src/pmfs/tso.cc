#include "pmfs/tso.h"

#include "rdma/retry_policy.h"

namespace polarmp {

Tso::Tso(Fabric* fabric) : fabric_(fabric), counter_(kCsnFirst - 1) {
  const Status s = fabric_->RegisterRegion(kPmfsEndpoint, kTsoRegion,
                                           &counter_, sizeof(counter_));
  POLARMP_CHECK(s.ok()) << s.ToString();
}

// polarlint: allow(unchecked-fabric-status) teardown: nothing to report to.
Tso::~Tso() { (void)fabric_->DeregisterRegion(kPmfsEndpoint, kTsoRegion); }

StatusOr<Csn> Tso::NextCts(EndpointId from) {
  // Safe to retry: the fabric injects atomic faults BEFORE execution, so a
  // failed fetch-add never consumed a timestamp. (A retry that does skip a
  // CSN would still be harmless — the sequence only needs to be monotone.)
  POLARMP_ASSIGN_OR_RETURN(uint64_t prev, RetryTransientOr(fabric_, [&] {
                             return fabric_->FetchAdd64(from, kPmfsEndpoint,
                                                        kTsoRegion,
                                                        /*offset=*/0,
                                                        /*delta=*/1);
                           }));
  return prev + 1;
}

StatusOr<Csn> Tso::CurrentCts(EndpointId from) {
  return RetryTransientOr(fabric_, [&] {
    return fabric_->Load64(from, kPmfsEndpoint, kTsoRegion, /*offset=*/0);
  });
}

StatusOr<Csn> TsoClient::ReadTimestamp() {
  if (!use_linear_lamport_) {
    fetches_.Inc();
    return tso_->CurrentCts(self_);
  }
  const uint64_t arrival = NowNanos();
  for (;;) {
    // Reuse a timestamp whose fetch *started* after our arrival: the TSO
    // sample then reflects every commit that completed before we arrived,
    // which is all read committed needs (PolarDB-SCC's Linear Lamport
    // argument). The watermark is only published after the value, so a
    // match always pairs with a fresh-enough cached value.
    if (fetch_started_at_.load(std::memory_order_acquire) >= arrival) {
      reuses_.Inc();
      return cached_ts_.load(std::memory_order_acquire);
    }
    UniqueLock lock(fetch_mu_);
    if (fetch_in_flight_) {
      // Piggyback: when the in-flight fetch lands, re-check the watermark
      // (it serves us iff it started after our arrival).
      fetch_cv_.wait(lock, [&] { return !fetch_in_flight_; });
      continue;
    }
    if (fetch_started_at_.load(std::memory_order_acquire) >= arrival) {
      continue;  // a fetch landed between our check and the lock
    }
    fetch_in_flight_ = true;
    lock.unlock();

    const uint64_t started = NowNanos();
    auto ts = tso_->CurrentCts(self_);
    fetches_.Inc();
    if (ts.ok()) {
      cached_ts_.store(ts.value(), std::memory_order_release);
      fetch_started_at_.store(started, std::memory_order_release);
    }

    lock.lock();
    fetch_in_flight_ = false;
    fetch_cv_.notify_all();
    return ts;
  }
}

StatusOr<Csn> TsoClient::CommitTimestamp() {
  fetches_.Inc();
  return tso_->NextCts(self_);
}

}  // namespace polarmp
