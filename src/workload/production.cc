#include "workload/production.h"

namespace polarmp {

Status ProductionWorkload::Setup(Database* db) {
  const std::string value(options_.value_size, 'o');
  for (int node = 0; node < options_.num_nodes; ++node) {
    const std::string table = TableFor(node);
    POLARMP_RETURN_IF_ERROR(db->CreateTable(table, 0));
    POLARMP_ASSIGN_OR_RETURN(auto conn, db->Connect(0));
    constexpr int64_t kBatch = 500;
    for (int64_t base = 0; base < options_.orders_per_node; base += kBatch) {
      POLARMP_RETURN_IF_ERROR(conn->Begin());
      for (int64_t k = base;
           k < base + kBatch && k < options_.orders_per_node; ++k) {
        POLARMP_RETURN_IF_ERROR(conn->Insert(table, k, value));
      }
      POLARMP_RETURN_IF_ERROR(conn->Commit());
    }
  }
  return Status::OK();
}

Status ProductionWorkload::RunOne(Connection* conn, int node, int worker,
                                  Random* rng) {
  (void)worker;
  const std::string table = TableFor(node);
  const std::string value(options_.value_size, 'n');
  const uint64_t dice = rng->Uniform(10);

  POLARMP_RETURN_IF_ERROR(conn->Begin());
  if (dice < 3) {  // insert (new order)
    const int64_t key =
        next_insert_.fetch_add(1, std::memory_order_relaxed) * 100 + node;
    const Status st = conn->Insert(table, key, value);
    if (!st.ok() && !st.IsAlreadyExists()) return st;
  } else if (dice < 5) {  // update (order state change)
    const int64_t key = static_cast<int64_t>(
        rng->Uniform(static_cast<uint64_t>(options_.orders_per_node)));
    const Status st = conn->Put(table, key, value);
    if (!st.ok()) return st;
  } else {  // select (order lookup)
    const int64_t key = static_cast<int64_t>(
        rng->Uniform(static_cast<uint64_t>(options_.orders_per_node)));
    auto v = conn->Get(table, key);
    if (!v.ok() && !v.status().IsNotFound()) {
      (void)conn->Rollback();
      return v.status();
    }
  }
  return conn->Commit();
}

}  // namespace polarmp
