#include "workload/sysbench.h"

namespace polarmp {

std::string SysbenchWorkload::TableName(int group, int table) const {
  return "sbtest_g" + std::to_string(group) + "_t" + std::to_string(table);
}

Status SysbenchWorkload::Setup(Database* db) {
  const std::string value(options_.value_size, 'v');
  for (int group = 0; group <= options_.num_nodes; ++group) {
    // Load only groups the run can touch: private groups unless everything
    // is shared, the shared group unless nothing is.
    const bool is_shared = group == options_.num_nodes;
    const bool used = is_shared ? options_.shared_pct > 0
                                : options_.shared_pct < 100;
    for (int table = 0; table < options_.tables_per_group; ++table) {
      const std::string name = TableName(group, table);
      POLARMP_RETURN_IF_ERROR(db->CreateTable(name, 0));
      if (!used) continue;
      // Batched load to bound commit count.
      POLARMP_ASSIGN_OR_RETURN(auto conn, db->Connect(group % db->num_nodes()));
      constexpr int64_t kBatch = 500;
      for (int64_t base = 1; base <= options_.rows_per_table; base += kBatch) {
        POLARMP_RETURN_IF_ERROR(conn->Begin());
        for (int64_t key = base;
             key < base + kBatch && key <= options_.rows_per_table; ++key) {
          POLARMP_RETURN_IF_ERROR(conn->Insert(name, key, value));
        }
        POLARMP_RETURN_IF_ERROR(conn->Commit());
      }
    }
  }
  return Status::OK();
}

void SysbenchWorkload::PickTarget(int node, Random* rng, std::string* table,
                                  int64_t* key) {
  const int group = rng->Percent(static_cast<uint32_t>(options_.shared_pct))
                        ? options_.num_nodes
                        : node;
  const int t = static_cast<int>(rng->Uniform(options_.tables_per_group));
  *table = TableName(group, t);
  *key = 1 + static_cast<int64_t>(
                 rng->Uniform(static_cast<uint64_t>(options_.rows_per_table)));
}

Status SysbenchWorkload::RunOne(Connection* conn, int node, int worker,
                                Random* rng) {
  (void)worker;
  POLARMP_RETURN_IF_ERROR(conn->Begin());
  const std::string value(options_.value_size, 'w');
  std::string table;
  int64_t key;

  const bool do_reads = options_.mix != SysbenchOptions::Mix::kWriteOnly;
  const bool do_writes = options_.mix != SysbenchOptions::Mix::kReadOnly;

  if (do_reads) {
    for (int i = 0; i < options_.reads_per_txn; ++i) {
      PickTarget(node, rng, &table, &key);
      const auto v = conn->Get(table, key);
      if (!v.ok() && !v.status().IsNotFound()) {
        (void)conn->Rollback();
        return v.status();
      }
    }
  }
  if (do_writes) {
    // sysbench oltp write set: index updates plus a delete + insert pair on
    // the same key (the pair keeps the table stable while exercising
    // tombstones and reinsertion, and raises genuine row conflict).
    for (int i = 0; i < options_.writes_per_txn - 2; ++i) {
      PickTarget(node, rng, &table, &key);
      const Status st = conn->Put(table, key, value);
      if (!st.ok()) return st;  // already rolled back per contract
    }
    PickTarget(node, rng, &table, &key);
    Status st = conn->Delete(table, key);
    if (!st.ok() && !st.IsNotFound()) return st;
    st = conn->Put(table, key, value);
    if (!st.ok()) return st;
  }
  return conn->Commit();
}

}  // namespace polarmp
