#ifndef POLARMP_WORKLOAD_PRODUCTION_H_
#define POLARMP_WORKLOAD_PRODUCTION_H_

#include <atomic>

#include "workload/driver.h"

namespace polarmp {

// Alibaba trading-service production mix (§5.2 Fig. 10): memory-intensive,
// 3:2:5 insert:update:select, well-partitioned at the application level
// (each node serves its own slice of the trading traffic).
struct ProductionOptions {
  int num_nodes = 1;
  int64_t orders_per_node = 5'000;  // preloaded working set per node
  int value_size = 96;
};

class ProductionWorkload : public Workload {
 public:
  explicit ProductionWorkload(const ProductionOptions& options)
      : options_(options), next_insert_(options.orders_per_node) {}

  Status Setup(Database* db) override;
  Status RunOne(Connection* conn, int node, int worker, Random* rng) override;

 private:
  static std::string TableFor(int node) {
    return "trade_orders_n" + std::to_string(node);
  }

  ProductionOptions options_;
  std::atomic<int64_t> next_insert_;
};

}  // namespace polarmp

#endif  // POLARMP_WORKLOAD_PRODUCTION_H_
