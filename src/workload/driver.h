#ifndef POLARMP_WORKLOAD_DRIVER_H_
#define POLARMP_WORKLOAD_DRIVER_H_

#include <string>
#include <vector>

#include "baselines/database.h"
#include "common/histogram.h"
#include "common/random.h"

namespace polarmp {

// A benchmark workload: table setup/load plus a transaction generator.
class Workload {
 public:
  virtual ~Workload() = default;

  // Creates tables and loads initial data (benches run this under
  // SetSimTimeScale(0) so loading does not consume wall-clock).
  virtual Status Setup(Database* db) = 0;

  // Executes ONE transaction (Begin through Commit/Rollback) on `conn`,
  // which is bound to node `node`. Returns OK on commit; Aborted/Busy count
  // as aborts (the driver retries with a fresh transaction); anything else
  // is an error.
  virtual Status RunOne(Connection* conn, int node, int worker,
                        Random* rng) = 0;
};

struct DriverOptions {
  int num_nodes = 1;           // workers spread round-robin over nodes
  int threads_per_node = 2;
  uint64_t warmup_ms = 300;
  uint64_t duration_ms = 2'000;
  uint64_t seed = 42;
};

struct DriverResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t errors = 0;
  double elapsed_s = 0;
  double throughput = 0;  // committed/s in the measurement window
  Histogram latency;      // per-transaction latency (committed only), ns
  // Committed transactions per second, warmup included (timeline figures).
  std::vector<uint64_t> per_second;

  double abort_rate() const {
    const uint64_t total = committed + aborted;
    return total == 0 ? 0.0
                      : static_cast<double>(aborted) /
                            static_cast<double>(total);
  }
  std::string ToString() const;
};

// Runs `workload` against `db` (Setup must already have happened).
DriverResult RunWorkload(Database* db, Workload* workload,
                         const DriverOptions& options);

}  // namespace polarmp

#endif  // POLARMP_WORKLOAD_DRIVER_H_
