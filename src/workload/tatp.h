#ifndef POLARMP_WORKLOAD_TATP_H_
#define POLARMP_WORKLOAD_TATP_H_

#include "workload/driver.h"

namespace polarmp {

// TATP (§5.2 Fig. 8): telecom subscriber workload, perfectly partitionable
// by subscriber id. Each node owns a contiguous subscriber range; the
// standard mix is ~80% reads / ~20% writes:
//   35% GET_SUBSCRIBER_DATA, 35% GET_ACCESS_DATA, 10% GET_NEW_DESTINATION,
//   14% UPDATE_LOCATION, 2% UPDATE_SUBSCRIBER_DATA,
//   2% INSERT_CALL_FORWARDING, 2% DELETE_CALL_FORWARDING.
struct TatpOptions {
  int num_nodes = 1;
  int64_t subscribers_per_node = 20'000;  // paper: 20M
};

class TatpWorkload : public Workload {
 public:
  explicit TatpWorkload(const TatpOptions& options) : options_(options) {}

  Status Setup(Database* db) override;
  Status RunOne(Connection* conn, int node, int worker, Random* rng) override;

 private:
  int64_t PickSubscriber(int node, Random* rng) const {
    return node * options_.subscribers_per_node +
           static_cast<int64_t>(rng->Uniform(
               static_cast<uint64_t>(options_.subscribers_per_node)));
  }

  TatpOptions options_;
};

}  // namespace polarmp

#endif  // POLARMP_WORKLOAD_TATP_H_
