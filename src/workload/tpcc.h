#ifndef POLARMP_WORKLOAD_TPCC_H_
#define POLARMP_WORKLOAD_TPCC_H_

#include "obs/metrics.h"
#include "workload/driver.h"

namespace polarmp {

// TPC-C (scaled down for the simulator) with zero think/keying time (§5.2).
//
// Schema over int64-keyed tables:
//   tpcc_warehouse  key = w
//   tpcc_district   key = w*100 + d                (10 districts/warehouse)
//   tpcc_customer   key = (w*100 + d)*1000 + c     (customers/district)
//   tpcc_stock      key = w*1000000 + i            (items/warehouse)
//   tpcc_orders     key = ((w*100 + d) << 24) | o_id
//
// Transaction mix: 50% New-Order (the tpmC metric), 50% Payment. Each
// worker has a home warehouse on its node; ~1% of New-Order items hit a
// remote warehouse's stock, giving the paper's ~11% cross-warehouse
// transactions at 10 items/order.
struct TpccOptions {
  int num_nodes = 1;
  int warehouses_per_node = 2;
  int customers_per_district = 100;
  int items = 200;  // per warehouse (paper: 100k; scaled for load time)
  int remote_item_pct = 1;
  int64_t order_payload = 64;
};

class TpccWorkload : public Workload {
 public:
  explicit TpccWorkload(const TpccOptions& options) : options_(options) {}

  Status Setup(Database* db) override;
  Status RunOne(Connection* conn, int node, int worker, Random* rng) override;

  // New-Order commits (the figure reports tpmC, not total commits).
  uint64_t new_orders() const { return new_orders_.Value(); }
  void ResetNewOrders() { new_orders_.Reset(); }

 private:
  int TotalWarehouses() const {
    return options_.num_nodes * options_.warehouses_per_node;
  }
  int HomeWarehouse(int node, int worker) const;
  Status NewOrder(Connection* conn, int warehouse, Random* rng);
  Status Payment(Connection* conn, int warehouse, Random* rng);

  TpccOptions options_;
  obs::Counter new_orders_{"tpcc.new_orders"};
};

}  // namespace polarmp

#endif  // POLARMP_WORKLOAD_TPCC_H_
