#include "workload/driver.h"

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

namespace polarmp {

std::string DriverResult::ToString() const {
  std::ostringstream os;
  os << "committed=" << committed << " aborted=" << aborted
     << " errors=" << errors << " tps=" << throughput
     << " p95_ms=" << static_cast<double>(latency.Percentile(95)) / 1e6;
  return os.str();
}

DriverResult RunWorkload(Database* db, Workload* workload,
                         const DriverOptions& options) {
  const int num_workers = options.num_nodes * options.threads_per_node;
  const uint64_t total_ms = options.warmup_ms + options.duration_ms;
  const size_t seconds = total_ms / 1000 + 2;

  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  // polarlint: allow(raw-atomic) per-second throughput bins, stack-local
  std::vector<std::atomic<uint64_t>> per_second(seconds);
  for (auto& s : per_second) s.store(0);

  struct WorkerStats {
    uint64_t committed = 0, aborted = 0, errors = 0;
    Histogram latency;
  };
  std::vector<WorkerStats> stats(num_workers);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    threads.emplace_back([&, w] {
      const int node = w % options.num_nodes;
      Random rng(options.seed * 1000003 + w);
      auto conn = db->Connect(node);
      while (!stop.load(std::memory_order_relaxed)) {
        if (!conn.ok()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          conn = db->Connect(node);
          continue;
        }
        const auto t0 = std::chrono::steady_clock::now();
        const Status st = workload->RunOne(conn->get(), node, w, &rng);
        const auto t1 = std::chrono::steady_clock::now();
        if (st.ok()) {
          if (measuring.load(std::memory_order_relaxed)) {
            ++stats[w].committed;
            stats[w].latency.Add(static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()));
          }
          const size_t sec = static_cast<size_t>(
              std::chrono::duration_cast<std::chrono::seconds>(t1 - start)
                  .count());
          if (sec < seconds) {
            per_second[sec].fetch_add(1, std::memory_order_relaxed);
          }
        } else if (st.IsAborted() || st.IsBusy()) {
          // Rolled back per the Connection contract; Rollback is an
          // idempotent no-op here but keeps misbehaving workloads honest.
          (void)(*conn)->Rollback();
          if (measuring.load(std::memory_order_relaxed)) ++stats[w].aborted;
        } else if (st.IsUnavailable()) {
          // Node gone (crash benches); reconnect after a beat.
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          conn = db->Connect(node);
        } else {
          // Application-level failure (e.g. duplicate insert): close the
          // transaction and move on.
          (void)(*conn)->Rollback();
          if (measuring.load(std::memory_order_relaxed)) ++stats[w].errors;
          if (stats[w].errors > 100) break;  // give up on a broken setup
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(options.warmup_ms));
  measuring.store(true);
  const auto measure_start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(options.duration_ms));
  measuring.store(false);
  const auto measure_end = std::chrono::steady_clock::now();
  stop.store(true);
  for (auto& t : threads) t.join();

  DriverResult result;
  for (const WorkerStats& s : stats) {
    result.committed += s.committed;
    result.aborted += s.aborted;
    result.errors += s.errors;
    result.latency.Merge(s.latency);
  }
  result.elapsed_s =
      std::chrono::duration<double>(measure_end - measure_start).count();
  result.throughput =
      result.elapsed_s > 0
          ? static_cast<double>(result.committed) / result.elapsed_s
          : 0;
  result.per_second.reserve(seconds);
  for (const auto& s : per_second) {
    result.per_second.push_back(s.load(std::memory_order_relaxed));
  }
  return result;
}

}  // namespace polarmp
