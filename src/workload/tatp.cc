#include "workload/tatp.h"

namespace polarmp {

namespace {
// Call-forwarding rows live beside their subscriber: key = sub*4 + slot.
int64_t ForwardingKey(int64_t sub, int slot) { return sub * 4 + slot; }
}  // namespace

Status TatpWorkload::Setup(Database* db) {
  POLARMP_RETURN_IF_ERROR(db->CreateTable("tatp_subscriber", 0));
  POLARMP_RETURN_IF_ERROR(db->CreateTable("tatp_access_info", 0));
  POLARMP_RETURN_IF_ERROR(db->CreateTable("tatp_call_forwarding", 0));
  const int64_t total =
      static_cast<int64_t>(options_.num_nodes) * options_.subscribers_per_node;
  POLARMP_ASSIGN_OR_RETURN(auto conn, db->Connect(0));
  constexpr int64_t kBatch = 500;
  for (int64_t base = 0; base < total; base += kBatch) {
    POLARMP_RETURN_IF_ERROR(conn->Begin());
    for (int64_t sub = base; sub < base + kBatch && sub < total; ++sub) {
      POLARMP_RETURN_IF_ERROR(
          conn->Insert("tatp_subscriber", sub, "subscriber-data-0"));
      POLARMP_RETURN_IF_ERROR(
          conn->Insert("tatp_access_info", sub, "access-data"));
    }
    POLARMP_RETURN_IF_ERROR(conn->Commit());
  }
  return Status::OK();
}

Status TatpWorkload::RunOne(Connection* conn, int node, int worker,
                            Random* rng) {
  (void)worker;
  const int64_t sub = PickSubscriber(node, rng);
  const uint64_t dice = rng->Uniform(100);

  POLARMP_RETURN_IF_ERROR(conn->Begin());
  if (dice < 35) {  // GET_SUBSCRIBER_DATA
    auto v = conn->Get("tatp_subscriber", sub);
    if (!v.ok() && !v.status().IsNotFound()) {
      (void)conn->Rollback();
      return v.status();
    }
  } else if (dice < 70) {  // GET_ACCESS_DATA
    auto v = conn->Get("tatp_access_info", sub);
    if (!v.ok() && !v.status().IsNotFound()) {
      (void)conn->Rollback();
      return v.status();
    }
  } else if (dice < 80) {  // GET_NEW_DESTINATION: scan the 4 forwarding slots
    const Status st = conn->Scan("tatp_call_forwarding", ForwardingKey(sub, 0),
                                 ForwardingKey(sub, 3),
                                 [](int64_t, const std::string&) { return true; });
    if (!st.ok()) {
      (void)conn->Rollback();
      return st;
    }
  } else if (dice < 94) {  // UPDATE_LOCATION
    const Status st = conn->Put("tatp_subscriber", sub,
                                "subscriber-data-" + std::to_string(dice));
    if (!st.ok()) return st;
  } else if (dice < 96) {  // UPDATE_SUBSCRIBER_DATA
    const Status st = conn->Put("tatp_access_info", sub, "access-data-upd");
    if (!st.ok()) return st;
  } else if (dice < 98) {  // INSERT_CALL_FORWARDING
    const int slot = static_cast<int>(rng->Uniform(4));
    const Status st = conn->Put("tatp_call_forwarding",
                                ForwardingKey(sub, slot), "forward-to");
    if (!st.ok()) return st;
  } else {  // DELETE_CALL_FORWARDING
    const int slot = static_cast<int>(rng->Uniform(4));
    const Status st =
        conn->Delete("tatp_call_forwarding", ForwardingKey(sub, slot));
    if (!st.ok() && !st.IsNotFound()) return st;
  }
  return conn->Commit();
}

}  // namespace polarmp
