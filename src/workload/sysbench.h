#ifndef POLARMP_WORKLOAD_SYSBENCH_H_
#define POLARMP_WORKLOAD_SYSBENCH_H_

#include "workload/driver.h"

namespace polarmp {

// SysBench-style OLTP workload with the Taurus-MM/PolarDB-MP sharing knob
// (§5.1): tables are divided into N private groups (one per node) plus one
// shared group; X% of *queries* target the shared group, the rest the
// executing node's private group.
struct SysbenchOptions {
  enum class Mix { kReadOnly, kReadWrite, kWriteOnly };

  int num_nodes = 1;
  int tables_per_group = 4;     // paper: 40 (scaled down for the simulator)
  int64_t rows_per_table = 10'000;  // paper: 1M
  int shared_pct = 0;           // X% of queries on shared tables
  Mix mix = Mix::kReadWrite;
  int reads_per_txn = 10;       // sysbench oltp point selects
  int writes_per_txn = 4;       // sysbench oltp index updates
  int value_size = 64;
};

class SysbenchWorkload : public Workload {
 public:
  explicit SysbenchWorkload(const SysbenchOptions& options)
      : options_(options) {}

  Status Setup(Database* db) override;
  Status RunOne(Connection* conn, int node, int worker, Random* rng) override;

 private:
  // group == num_nodes is the shared group.
  std::string TableName(int group, int table) const;
  // Picks (table name, key) for one query issued by `node`.
  void PickTarget(int node, Random* rng, std::string* table, int64_t* key);

  SysbenchOptions options_;
};

}  // namespace polarmp

#endif  // POLARMP_WORKLOAD_SYSBENCH_H_
