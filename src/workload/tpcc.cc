#include "workload/tpcc.h"

#include "common/coding.h"

namespace polarmp {

namespace {
constexpr int kDistrictsPerWarehouse = 10;

// The warehouse row lives in the district table's key space, slot 99 of
// its own warehouse block: warehouse w's hot rows (wh + 10 districts, each
// padded toward realistic widths) then fill roughly one page owned by w's
// home node — the per-warehouse page locality a real TPC-C layout has.
int64_t DistrictKey(int w, int d) { return (w + 1) * 100 + d; }
int64_t WarehouseKey(int w) { return DistrictKey(w, 99); }
int64_t CustomerKey(int w, int d, int c) {
  return ((w + 1) * 100 + d) * 1000 + c;
}
int64_t StockKey(int w, int64_t i) { return (w + 1) * 1'000'000 + i; }
int64_t OrderKey(int w, int d, int64_t o_id) {
  return (((w + 1) * 100 + static_cast<int64_t>(d)) << 24) | o_id;
}

// Counter rows carry a decimal counter plus padding that mimics the real
// row widths: a TPC-C warehouse row is wide enough to have a page largely
// to itself, and districts of one warehouse share a couple of pages. If
// every warehouse shared one 8 KB page, the Payment hot row would turn
// into a single cluster-wide page hotspot no real deployment has.
std::string EncodeCounter(int64_t v, size_t pad = 0) {
  std::string s = std::to_string(v);
  if (pad > 0) {
    s.push_back('|');
    s.append(pad, 'p');
  }
  return s;
}
int64_t DecodeCounter(const std::string& s) { return std::stoll(s); }
constexpr size_t kWarehousePad = 700;
constexpr size_t kDistrictPad = 700;
constexpr size_t kStockPad = 48;
}  // namespace

int TpccWorkload::HomeWarehouse(int node, int worker) const {
  // Workers on a node rotate over that node's warehouses.
  const int within =
      (worker / options_.num_nodes) % options_.warehouses_per_node;
  return node * options_.warehouses_per_node + within;
}

Status TpccWorkload::Setup(Database* db) {
  for (const char* table : {"tpcc_district", "tpcc_customer",
                            "tpcc_stock", "tpcc_orders"}) {
    POLARMP_RETURN_IF_ERROR(db->CreateTable(table, 0));
  }
  POLARMP_ASSIGN_OR_RETURN(auto conn, db->Connect(0));
  for (int w = 0; w < TotalWarehouses(); ++w) {
    POLARMP_RETURN_IF_ERROR(conn->Begin());
    POLARMP_RETURN_IF_ERROR(
        conn->Insert("tpcc_district", WarehouseKey(w), EncodeCounter(0, kWarehousePad)));
    for (int d = 0; d < kDistrictsPerWarehouse; ++d) {
      POLARMP_RETURN_IF_ERROR(
          conn->Insert("tpcc_district", DistrictKey(w, d), EncodeCounter(1, kDistrictPad)));
    }
    POLARMP_RETURN_IF_ERROR(conn->Commit());
    POLARMP_RETURN_IF_ERROR(conn->Begin());
    for (int d = 0; d < kDistrictsPerWarehouse; ++d) {
      for (int c = 0; c < options_.customers_per_district; ++c) {
        POLARMP_RETURN_IF_ERROR(conn->Insert(
            "tpcc_customer", CustomerKey(w, d, c), EncodeCounter(0)));
      }
    }
    POLARMP_RETURN_IF_ERROR(conn->Commit());
    constexpr int kBatch = 500;
    for (int64_t i = 0; i < options_.items; i += kBatch) {
      POLARMP_RETURN_IF_ERROR(conn->Begin());
      for (int64_t j = i; j < i + kBatch && j < options_.items; ++j) {
        POLARMP_RETURN_IF_ERROR(
            conn->Insert("tpcc_stock", StockKey(w, j), EncodeCounter(1000)));
      }
      POLARMP_RETURN_IF_ERROR(conn->Commit());
    }
  }
  return Status::OK();
}

Status TpccWorkload::NewOrder(Connection* conn, int warehouse, Random* rng) {
  POLARMP_RETURN_IF_ERROR(conn->Begin());
  const int d = static_cast<int>(rng->Uniform(kDistrictsPerWarehouse));

  // Warehouse tax read.
  auto wrow = conn->Get("tpcc_district", WarehouseKey(warehouse));
  if (!wrow.ok()) {
    (void)conn->Rollback();
    return wrow.status();
  }
  // District: read and bump next_o_id.
  auto drow = conn->Get("tpcc_district", DistrictKey(warehouse, d));
  if (!drow.ok()) {
    (void)conn->Rollback();
    return drow.status();
  }
  const int64_t o_id = DecodeCounter(drow.value());
  Status st = conn->Update("tpcc_district", DistrictKey(warehouse, d),
                           EncodeCounter(o_id + 1, kDistrictPad));
  if (!st.ok()) return st;

  // Customer read.
  const int c = static_cast<int>(rng->Uniform(options_.customers_per_district));
  auto crow = conn->Get("tpcc_customer", CustomerKey(warehouse, d, c));
  if (!crow.ok()) {
    (void)conn->Rollback();
    return crow.status();
  }

  // Order lines: 5-15 items, each 1% from a remote warehouse.
  const int ol_cnt = 5 + static_cast<int>(rng->Uniform(11));
  for (int line = 0; line < ol_cnt; ++line) {
    int supply_w = warehouse;
    if (TotalWarehouses() > 1 &&
        rng->Percent(static_cast<uint32_t>(options_.remote_item_pct))) {
      do {
        supply_w = static_cast<int>(rng->Uniform(TotalWarehouses()));
      } while (supply_w == warehouse);
    }
    const int64_t item = static_cast<int64_t>(rng->Uniform(options_.items));
    auto srow = conn->Get("tpcc_stock", StockKey(supply_w, item));
    if (!srow.ok()) {
      (void)conn->Rollback();
      return srow.status();
    }
    int64_t quantity = DecodeCounter(srow.value());
    quantity = quantity > 10 ? quantity - static_cast<int64_t>(rng->Uniform(10)) - 1
                             : quantity + 91;
    st = conn->Update("tpcc_stock", StockKey(supply_w, item),
                      EncodeCounter(quantity, kStockPad));
    if (!st.ok()) return st;
  }

  // Order record (order lines folded into the payload). Two transactions
  // can read the same next_o_id under read committed before either update
  // commits (real TPC-C uses SELECT FOR UPDATE); an upsert keeps the
  // workload honest without spurious duplicate-key errors.
  st = conn->Put("tpcc_orders", OrderKey(warehouse, d, o_id),
                 std::string(static_cast<size_t>(options_.order_payload),
                             static_cast<char>('a' + o_id % 26)));
  if (!st.ok()) return st;
  st = conn->Commit();
  if (st.ok()) new_orders_.Inc();
  return st;
}

Status TpccWorkload::Payment(Connection* conn, int warehouse, Random* rng) {
  POLARMP_RETURN_IF_ERROR(conn->Begin());
  const int d = static_cast<int>(rng->Uniform(kDistrictsPerWarehouse));
  const int c = static_cast<int>(rng->Uniform(options_.customers_per_district));

  // Warehouse YTD (the classic per-warehouse hot row).
  auto wrow = conn->Get("tpcc_district", WarehouseKey(warehouse));
  if (!wrow.ok()) {
    (void)conn->Rollback();
    return wrow.status();
  }
  Status st = conn->Update("tpcc_district", WarehouseKey(warehouse),
                           EncodeCounter(DecodeCounter(wrow.value()) + 1,
                                         kWarehousePad));
  if (!st.ok()) return st;
  // Customer balance.
  auto crow = conn->Get("tpcc_customer", CustomerKey(warehouse, d, c));
  if (!crow.ok()) {
    (void)conn->Rollback();
    return crow.status();
  }
  st = conn->Update("tpcc_customer", CustomerKey(warehouse, d, c),
                    EncodeCounter(DecodeCounter(crow.value()) + 1));
  if (!st.ok()) return st;
  return conn->Commit();
}

Status TpccWorkload::RunOne(Connection* conn, int node, int worker,
                            Random* rng) {
  const int warehouse = HomeWarehouse(node, worker);
  if (rng->Percent(50)) return NewOrder(conn, warehouse, rng);
  return Payment(conn, warehouse, rng);
}

}  // namespace polarmp
