#ifndef POLARMP_CLUSTER_CLUSTER_H_
#define POLARMP_CLUSTER_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "node/db_node.h"
#include "node/session.h"
#include "obs/metrics.h"

namespace polarmp {

struct ClusterOptions {
  // Zero by default so tests run at memory speed; benches install
  // BenchLatencyProfile() to price RDMA/RPC/storage realistically.
  LatencyProfile latency = ZeroLatencyProfile();
  uint32_t page_size = 8192;
  uint32_t dsm_servers = 2;
  uint64_t dsm_bytes_per_server = 192ull << 20;
  uint64_t dbp_capacity_pages = 16384;
  uint64_t dbp_flush_interval_ms = 50;
  uint32_t tit_slots_per_node = 4096;
  uint64_t undo_segment_bytes = 48ull << 20;
  // Nonzero: arm the fabric's fault injector with DefaultChaosPlan(seed) at
  // construction, so the whole run sees seeded transient faults (chaos CI
  // mode; benches wire this to POLARMP_FAULT_SEED).
  uint64_t chaos_fault_seed = 0;
  NodeOptions node;
};

// A PolarDB-MP cluster: the disaggregated substrates (fabric, DSM, shared
// page/log stores), PMFS (transaction/buffer/lock fusion) and N primary
// nodes. Nodes can be added online (§5.2 production workload), stopped
// gracefully, crashed and restarted with recovery (§5.5).
class Cluster {
 public:
  static StatusOr<std::unique_ptr<Cluster>> Create(
      const ClusterOptions& options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Adds a primary node (ids are assigned 1, 2, ...).
  StatusOr<DbNode*> AddNode();
  Status StopNode(NodeId id);
  // Crash simulation. Callers must have stopped issuing requests to the
  // node (in-flight sessions would be talking to freed state).
  Status CrashNode(NodeId id);
  // Restart after CrashNode: replays the node's log, rolls back in-flight
  // transactions, rejoins the cluster.
  StatusOr<DbNode*> RestartNode(NodeId id);

  // Crashed nodes that still need takeover or restart: their fabric
  // endpoint is down and no recovery has re-baselined them yet.
  std::vector<NodeId> DeadNodes() const;

  // Online single-node failure takeover: `survivor` recovers `dead`'s state
  // while the rest of the cluster keeps committing. Ordering (see DESIGN.md
  // § Fault injection & failure takeover): detect death via fabric
  // liveness, replay the dead node's log tail (DBP fast path, undo segment
  // kept — it survived in DSM), roll back its in-flight transactions
  // offline, publish recovered pages (which invalidates stale copies), then
  // re-baseline its TIT (epoch bump + departed) and finally release its
  // ghost PLocks — the locks fence survivors off the dead node's dirty
  // pages until every earlier step has made them consistent.
  StatusOr<RecoveryStats> TakeoverNode(NodeId dead, NodeId survivor);

  uint64_t takeovers() const { return takeovers_.Value(); }

  DbNode* node(NodeId id);
  std::vector<DbNode*> live_nodes();

  // Creates a table (clustered tree + GSIs) cluster-wide.
  StatusOr<TableInfo> CreateTable(const std::string& name,
                                  uint32_t num_indexes = 0);

  // Full-cluster recovery: with every node stopped/crashed, replays all
  // logs in LLSN order, rolls back in-flight transactions offline and
  // re-baselines storage. `dsm_lost` additionally resets the DSM tier
  // first (memory-server failure: recovery must come from storage alone).
  StatusOr<RecoveryStats> RecoverAll(bool dsm_lost);

  ClusterServices* services() { return &services_; }
  Fabric* fabric() { return fabric_.get(); }
  PageStore* page_store() { return page_store_.get(); }
  LogStore* log_store() { return log_store_.get(); }
  BufferFusion* buffer_fusion() { return buffer_fusion_.get(); }
  LockFusion* lock_fusion() { return lock_fusion_.get(); }
  TransactionFusion* txn_fusion() { return txn_fusion_.get(); }
  Dsm* dsm() { return dsm_.get(); }
  const ClusterOptions& options() const { return options_; }

 private:
  explicit Cluster(const ClusterOptions& options);

  ClusterOptions options_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<Dsm> dsm_;
  std::unique_ptr<PageStore> page_store_;
  std::unique_ptr<LogStore> log_store_;
  std::unique_ptr<TransactionFusion> txn_fusion_;
  std::unique_ptr<BufferFusion> buffer_fusion_;
  std::unique_ptr<LockFusion> lock_fusion_;
  std::unique_ptr<Tit> tit_;
  std::unique_ptr<UndoStore> undo_;
  std::unique_ptr<Catalog> catalog_;
  ClusterServices services_;

  NodeId next_node_id_ = 1;
  std::map<NodeId, std::unique_ptr<DbNode>> nodes_;

  obs::Counter takeovers_{"cluster.takeovers"};
};

}  // namespace polarmp

#endif  // POLARMP_CLUSTER_CLUSTER_H_
