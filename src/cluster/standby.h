#ifndef POLARMP_CLUSTER_STANDBY_H_
#define POLARMP_CLUSTER_STANDBY_H_

#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>

#include "common/lock_rank.h"
#include "engine/row.h"
#include "storage/log_store.h"
#include "wal/log_record.h"

namespace polarmp {

// Cross-region standby (§3: "PolarDB-MP also incorporates a standby node to
// ensure high availability across regions. Changes occurring in the primary
// cluster are synchronized to the standby cluster using the write-ahead
// log").
//
// The replicator tails every primary node's redo stream and continuously
// applies the records to its own page store using the same LLSN-gated,
// chunk-merged application as crash recovery — the standby is, in effect, a
// perpetually-recovering cluster. Applied state is crash-consistent at
// every instant: reads (`ScanTable`) see a transactionally-unsplit prefix
// only after `WaitForCatchUp` on a quiesced primary, which is how the
// cross-region failover runbook uses it.
class StandbyReplicator {
 public:
  struct Options {
    uint64_t poll_interval_ms = 20;
    uint64_t chunk_bytes = 1 << 20;
    uint32_t page_size = 8192;
  };

  // Tails `primary_log` (the primary region's log store); applied pages
  // live in the standby's own memory (its region's storage stand-in).
  StandbyReplicator(LogStore* primary_log, const Options& options);
  ~StandbyReplicator();

  StandbyReplicator(const StandbyReplicator&) = delete;
  StandbyReplicator& operator=(const StandbyReplicator&) = delete;

  void Start();
  void Stop();

  // Blocks until every known primary stream has been applied up to its
  // durable end at call time. Returns false on timeout.
  bool WaitForCatchUp(uint64_t timeout_ms);

  // Bytes of redo not yet applied, summed over streams.
  uint64_t LagBytes() const;
  uint64_t records_applied() const;

  // Read a table directly from the standby's pages (failover / verify
  // path). Walks the tree from `space`'s root, emitting the latest row
  // versions; rows whose transactions were uncommitted at the applied
  // horizon surface with their in-flight values, as on a physical replica
  // promoted without undo processing — callers quiesce the primary first.
  Status ScanTable(SpaceId space,
                   const std::function<bool(const RowView&)>& fn) const;

 private:
  void ReplicationLoop();
  // Drains whatever is durable beyond our cursors; returns records applied.
  StatusOr<uint64_t> ApplyAvailable() EXCLUDES(mu_);
  Status ApplyRecord(const LogRecord& rec) REQUIRES(mu_);
  StatusOr<char*> PageFor(PageId page_id) REQUIRES(mu_);

  LogStore* const primary_log_;
  const Options options_;

  mutable RankedMutex mu_{LockRank::kStandby, "standby.apply"};
  CondVar cv_;
  std::map<NodeId, Lsn> cursors_ GUARDED_BY(mu_);
  // Undecoded tails per stream.
  std::map<NodeId, std::string> partial_ GUARDED_BY(mu_);
  // Decoded LLSN horizon per stream.
  std::map<NodeId, Llsn> high_llsn_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::unique_ptr<char[]>> cache_ GUARDED_BY(mu_);
  uint64_t records_applied_ GUARDED_BY(mu_) = 0;

  // Set in Start under stop_mu_; joined in Stop after the stop_ handshake,
  // necessarily outside the lock.
  // polarlint: unguarded(lifecycle thread; Start/Stop are serialized)
  std::thread replicator_;
  RankedMutex stop_mu_{LockRank::kStandbyStop, "standby.stop"};
  CondVar stop_cv_;
  bool stop_ GUARDED_BY(stop_mu_) = false;
  bool started_ GUARDED_BY(stop_mu_) = false;
};

}  // namespace polarmp

#endif  // POLARMP_CLUSTER_STANDBY_H_
