#include "cluster/standby.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <vector>

#include "common/coding.h"
#include "engine/btree.h"
#include "engine/page.h"

namespace polarmp {

StandbyReplicator::StandbyReplicator(LogStore* primary_log,
                                     const Options& options)
    : primary_log_(primary_log), options_(options) {}

StandbyReplicator::~StandbyReplicator() { Stop(); }

void StandbyReplicator::Start() {
  MutexLock lock(stop_mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  replicator_ = std::thread([this] { ReplicationLoop(); });
}

void StandbyReplicator::Stop() {
  {
    MutexLock lock(stop_mu_);
    if (!started_) return;
    stop_ = true;
    stop_cv_.notify_all();
  }
  replicator_.join();
  MutexLock lock(stop_mu_);
  started_ = false;
}

void StandbyReplicator::ReplicationLoop() {
  for (;;) {
    {
      UniqueLock lock(stop_mu_);
      stop_cv_.wait_for(lock,
                        std::chrono::milliseconds(options_.poll_interval_ms),
                        [&] { return stop_; });
      if (stop_) return;
    }
    const auto applied = ApplyAvailable();
    if (!applied.ok()) {
      POLARMP_LOG(Warn) << "standby apply failed: "
                        << applied.status().ToString();
    }
  }
}

StatusOr<char*> StandbyReplicator::PageFor(PageId page_id) {
  auto it = cache_.find(page_id.Pack());
  if (it == cache_.end()) {
    auto buf = std::make_unique<char[]>(options_.page_size);
    std::memset(buf.get(), 0, options_.page_size);
    it = cache_.emplace(page_id.Pack(), std::move(buf)).first;
  }
  return it->second.get();
}

Status StandbyReplicator::ApplyRecord(const LogRecord& rec) {
  if (!rec.IsPageRecord()) return Status::OK();  // txn/undo/heartbeat
  POLARMP_ASSIGN_OR_RETURN(char* buf, PageFor(rec.page_id));
  Page page(buf, options_.page_size);
  if (page.llsn() >= rec.llsn) return Status::OK();
  switch (rec.type) {
    case LogRecordType::kInitPage: {
      if (rec.body.size() < 9) return Status::Corruption("bad kInitPage");
      page.Init(rec.page_id, static_cast<uint8_t>(rec.body[0]),
                DecodeFixed32(rec.body.data() + 1),
                DecodeFixed32(rec.body.data() + 5));
      break;
    }
    case LogRecordType::kWriteRow:
      POLARMP_RETURN_IF_ERROR(page.WriteRow(rec.body));
      break;
    case LogRecordType::kRemoveRow: {
      const Status s = page.RemoveRow(
          static_cast<int64_t>(DecodeFixed64(rec.body.data())));
      if (!s.ok() && !s.IsNotFound()) return s;
      break;
    }
    case LogRecordType::kSetPageLinks:
      page.set_links(DecodeFixed32(rec.body.data()),
                     DecodeFixed32(rec.body.data() + 4));
      break;
    case LogRecordType::kLoadRows:
      POLARMP_RETURN_IF_ERROR(page.LoadRows(rec.body));
      break;
    case LogRecordType::kTruncateRows:
      page.TruncateFromKey(static_cast<int64_t>(rec.aux));
      break;
    default:
      return Status::Corruption("unexpected record type on standby");
  }
  page.set_llsn(rec.llsn);
  ++records_applied_;
  return Status::OK();
}

StatusOr<uint64_t> StandbyReplicator::ApplyAvailable() {
  MutexLock lock(mu_);
  struct Stream {
    NodeId node;
    std::deque<LogRecord> pending;
    Llsn last_llsn = 0;
  };
  std::vector<Stream> streams;
  // Pull everything durable beyond our cursors.
  for (NodeId node : primary_log_->AllLogs()) {
    Stream s;
    s.node = node;
    Lsn& cursor = cursors_[node];
    std::string& partial = partial_[node];
    for (;;) {
      std::string chunk;
      POLARMP_RETURN_IF_ERROR(primary_log_->ReadAt(
          node, cursor, options_.chunk_bytes, &chunk));
      if (chunk.empty()) break;
      cursor += chunk.size();
      partial += chunk;
    }
    size_t pos = 0;
    while (pos < partial.size()) {
      size_t consumed = 0;
      auto rec =
          LogRecord::Decode(std::string_view(partial).substr(pos), &consumed);
      if (!rec.ok()) break;  // torn tail; completed by the next poll
      if (rec.value().llsn > 0) {
        s.last_llsn = std::max(s.last_llsn, rec.value().llsn);
      }
      s.pending.push_back(std::move(rec).value());
      pos += consumed;
    }
    partial.erase(0, pos);
    // Remember the horizon across polls (heartbeats advance it even when a
    // stream is otherwise idle).
    Llsn& seen = high_llsn_[node];
    seen = std::max(seen, s.last_llsn);
    s.last_llsn = seen;
    streams.push_back(std::move(s));
  }
  if (streams.empty()) return uint64_t{0};

  // LLSN_bound merge, exactly as in crash recovery: only records at or
  // below every stream's decoded horizon may apply this round; later
  // records wait for the lagging stream (heartbeat marks keep idle streams'
  // horizons moving).
  Llsn bound = UINT64_MAX;
  for (const Stream& s : streams) bound = std::min(bound, s.last_llsn);

  std::vector<LogRecord> batch;
  for (Stream& s : streams) {
    while (!s.pending.empty()) {
      const LogRecord& front = s.pending.front();
      if (front.llsn != 0 && front.llsn > bound) break;
      batch.push_back(std::move(s.pending.front()));
      s.pending.pop_front();
    }
    // Records above the bound return to the stream's carry-over buffer.
    std::string carry;
    for (const LogRecord& rec : s.pending) rec.AppendTo(&carry);
    partial_[s.node] = carry + partial_[s.node];
  }
  std::stable_sort(batch.begin(), batch.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     return a.llsn < b.llsn;
                   });
  for (const LogRecord& rec : batch) {
    POLARMP_RETURN_IF_ERROR(ApplyRecord(rec));
  }
  cv_.notify_all();
  return static_cast<uint64_t>(batch.size());
}

bool StandbyReplicator::WaitForCatchUp(uint64_t timeout_ms) {
  std::map<NodeId, Lsn> targets;
  for (NodeId node : primary_log_->AllLogs()) {
    auto end = primary_log_->DurableLsn(node);
    if (end.ok()) targets[node] = end.value();
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  UniqueLock lock(mu_);
  return cv_.wait_until(lock, deadline, [&] {
    for (const auto& [node, target] : targets) {
      auto it = cursors_.find(node);
      if (it == cursors_.end() || it->second < target) return false;
      auto partial = partial_.find(node);
      if (partial != partial_.end() && !partial->second.empty()) return false;
    }
    return true;
  });
}

uint64_t StandbyReplicator::LagBytes() const {
  MutexLock lock(mu_);
  uint64_t lag = 0;
  for (NodeId node : primary_log_->AllLogs()) {
    auto end = primary_log_->DurableLsn(node);
    if (!end.ok()) continue;
    auto it = cursors_.find(node);
    const Lsn applied = it == cursors_.end() ? 0 : it->second;
    lag += end.value() - applied;
    auto partial = partial_.find(node);
    if (partial != partial_.end()) lag += partial->second.size();
  }
  return lag;
}

uint64_t StandbyReplicator::records_applied() const {
  MutexLock lock(mu_);
  return records_applied_;
}

Status StandbyReplicator::ScanTable(
    SpaceId space, const std::function<bool(const RowView&)>& fn) const {
  MutexLock lock(mu_);
  auto root_it = cache_.find(PageId{space, 0}.Pack());
  if (root_it == cache_.end()) {
    return Status::NotFound("space not replicated: " + std::to_string(space));
  }
  // Descend the leftmost path, then walk the leaf chain.
  const char* buf = root_it->second.get();
  for (int depth = 0; depth < 64; ++depth) {
    Page page(const_cast<char*>(buf), options_.page_size);
    if (page.is_leaf()) break;
    POLARMP_CHECK_GT(page.nslots(), 0);
    auto row = page.RowAt(0);
    POLARMP_RETURN_IF_ERROR(row.status());
    const PageNo child = DecodeFixed32(row.value().value.data());
    auto it = cache_.find(PageId{space, child}.Pack());
    if (it == cache_.end()) return Status::Corruption("missing child page");
    buf = it->second.get();
  }
  for (;;) {
    Page page(const_cast<char*>(buf), options_.page_size);
    for (int slot = 0; slot < page.nslots(); ++slot) {
      auto row = page.RowAt(slot);
      POLARMP_RETURN_IF_ERROR(row.status());
      if (!fn(row.value())) return Status::OK();
    }
    const PageNo next = page.next();
    if (next == kInvalidPageNo) break;
    auto it = cache_.find(PageId{space, next}.Pack());
    if (it == cache_.end()) return Status::Corruption("missing leaf page");
    buf = it->second.get();
  }
  return Status::OK();
}

}  // namespace polarmp
