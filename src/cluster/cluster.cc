#include "cluster/cluster.h"

namespace polarmp {

Cluster::Cluster(const ClusterOptions& options) : options_(options) {
  fabric_ = std::make_unique<Fabric>(options.latency);
  if (options.chaos_fault_seed != 0) {
    fabric_->fault_injector()->Arm(DefaultChaosPlan(options.chaos_fault_seed));
  }
  dsm_ = std::make_unique<Dsm>(fabric_.get(), options.dsm_servers,
                               options.dsm_bytes_per_server);
  page_store_ =
      std::make_unique<PageStore>(options.latency, options.page_size);
  log_store_ = std::make_unique<LogStore>(options.latency);
  txn_fusion_ = std::make_unique<TransactionFusion>(fabric_.get());
  BufferFusion::Options bf;
  bf.capacity_pages = options.dbp_capacity_pages;
  bf.page_size = options.page_size;
  bf.flush_interval_ms = options.dbp_flush_interval_ms;
  buffer_fusion_ = std::make_unique<BufferFusion>(fabric_.get(), dsm_.get(),
                                                  page_store_.get(), bf);
  lock_fusion_ = std::make_unique<LockFusion>(fabric_.get());
  tit_ = std::make_unique<Tit>(fabric_.get(), options.tit_slots_per_node);
  undo_ = std::make_unique<UndoStore>(dsm_.get(), options.undo_segment_bytes);
  catalog_ = std::make_unique<Catalog>();

  services_.fabric = fabric_.get();
  services_.dsm = dsm_.get();
  services_.page_store = page_store_.get();
  services_.log_store = log_store_.get();
  services_.txn_fusion = txn_fusion_.get();
  services_.buffer_fusion = buffer_fusion_.get();
  services_.lock_fusion = lock_fusion_.get();
  services_.tit = tit_.get();
  services_.undo = undo_.get();
  services_.catalog = catalog_.get();
}

StatusOr<std::unique_ptr<Cluster>> Cluster::Create(
    const ClusterOptions& options) {
  std::unique_ptr<Cluster> cluster(new Cluster(options));
  cluster->buffer_fusion_->Start();
  return cluster;
}

Cluster::~Cluster() {
  for (auto& [id, node] : nodes_) {
    if (node->running()) {
      const Status s = node->Stop();
      if (!s.ok()) {
        POLARMP_LOG(Warn) << "stopping node " << id
                          << " failed: " << s.ToString();
      }
    }
  }
  nodes_.clear();
  buffer_fusion_->Stop();
}

StatusOr<DbNode*> Cluster::AddNode() {
  const NodeId id = next_node_id_++;
  auto node = std::make_unique<DbNode>(id, services_, options_.node);
  POLARMP_RETURN_IF_ERROR(node->Start(/*run_recovery=*/false));
  DbNode* ptr = node.get();
  nodes_[id] = std::move(node);
  return ptr;
}

Status Cluster::StopNode(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return Status::NotFound("no such node");
  POLARMP_RETURN_IF_ERROR(it->second->Stop());
  nodes_.erase(it);
  return Status::OK();
}

Status Cluster::CrashNode(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return Status::NotFound("no such node");
  it->second->Crash();
  nodes_.erase(it);  // the volatile instance is gone; PMFS keeps ghosts
  return Status::OK();
}

StatusOr<DbNode*> Cluster::RestartNode(NodeId id) {
  if (nodes_.count(id) != 0) {
    return Status::AlreadyExists("node still present: " + std::to_string(id));
  }
  auto node = std::make_unique<DbNode>(id, services_, options_.node);
  POLARMP_RETURN_IF_ERROR(node->Start(/*run_recovery=*/true));
  DbNode* ptr = node.get();
  nodes_[id] = std::move(node);
  return ptr;
}

std::vector<NodeId> Cluster::DeadNodes() const {
  std::vector<NodeId> dead;
  for (NodeId node : log_store_->AllLogs()) {
    if (nodes_.count(node) != 0) continue;      // live (or gracefully leaving)
    if (fabric_->EndpointAlive(node)) continue;
    if (tit_->IsDeparted(node)) continue;       // already taken over/stopped
    dead.push_back(node);
  }
  return dead;
}

StatusOr<RecoveryStats> Cluster::TakeoverNode(NodeId dead, NodeId survivor) {
  if (nodes_.count(dead) != 0) {
    return Status::InvalidArgument("node still present: " +
                                   std::to_string(dead));
  }
  auto it = nodes_.find(survivor);
  if (it == nodes_.end() || !it->second->running()) {
    return Status::InvalidArgument("survivor not running: " +
                                   std::to_string(survivor));
  }
  if (fabric_->EndpointAlive(dead)) {
    return Status::InvalidArgument("endpoint still alive: node " +
                                   std::to_string(dead));
  }
  if (tit_->IsDeparted(dead)) {
    return Status::AlreadyExists("node already recovered: " +
                                 std::to_string(dead));
  }
  // Crash() normally drops the dead node's LBP/cache copies on its way
  // down; repeat it here in case the node died before its epilogue ran.
  buffer_fusion_->RemoveNode(dead);
  // Survivors keep running: the dead node's un-pushed dirty pages are
  // fenced by its retained exclusive PLocks (RemoveNode keeps X holds as
  // ghosts), so nothing below races live writers on those pages. The undo
  // segment lives in DSM and survived the node, so replay skips rebuilding
  // it — survivors may be reading those bytes right now.
  Recovery::Options ro;
  ro.reader = survivor;
  ro.rebuild_undo = false;
  Recovery recovery(log_store_.get(), page_store_.get(), undo_.get(),
                    buffer_fusion_.get(), options_.page_size, ro);
  POLARMP_ASSIGN_OR_RETURN(auto uncommitted, recovery.RedoReplay({dead}));
  POLARMP_RETURN_IF_ERROR(recovery.OfflineRollback(uncommitted));
  POLARMP_RETURN_IF_ERROR(recovery.FlushPages());
  POLARMP_RETURN_IF_ERROR(recovery.AdvanceCheckpoints({dead}));
  // Re-baseline the TIT before releasing locks: once survivors can touch
  // the recovered pages, the dead node's old g_trx_ids must already resolve
  // as "slot reused ⇒ visible" rather than block on an unreachable table.
  // Deliberately NOT Tit::AddNode here: re-registering the TIT region would
  // resurrect the dead endpoint on the fabric (RegisterRegion marks it
  // alive), making the node look undead to DeadNodes/TakeoverNode. The
  // departed mark answers all visibility questions locally without fabric
  // reads; the node's own restart re-registers under a fresh epoch.
  tit_->ResetNode(dead);
  tit_->MarkDeparted(dead, true);
  // Last: drop the ghost fence. Waiters blocked on the dead node's PLocks
  // resume against fully recovered state.
  lock_fusion_->ReleaseAllHolds(dead);
  takeovers_.Inc();
  return recovery.stats();
}

DbNode* Cluster::node(NodeId id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<DbNode*> Cluster::live_nodes() {
  std::vector<DbNode*> out;
  for (auto& [id, node] : nodes_) {
    if (node->running()) out.push_back(node.get());
  }
  return out;
}

StatusOr<TableInfo> Cluster::CreateTable(const std::string& name,
                                         uint32_t num_indexes) {
  POLARMP_ASSIGN_OR_RETURN(TableInfo info,
                           catalog_->CreateTable(name, num_indexes));
  auto live = live_nodes();
  if (live.empty()) {
    return Status::Internal("no live node to create table trees");
  }
  POLARMP_RETURN_IF_ERROR(live.front()->CreateTreesFor(info));
  return info;
}

StatusOr<RecoveryStats> Cluster::RecoverAll(bool dsm_lost) {
  if (!nodes_.empty()) {
    return Status::InvalidArgument(
        "full-cluster recovery requires every node down");
  }
  if (dsm_lost) {
    dsm_->Reset();
    // The DBP directory points into reset memory; rebuild it empty by
    // restarting Buffer Fusion with a fresh instance.
    buffer_fusion_->Stop();
    BufferFusion::Options bf;
    bf.capacity_pages = options_.dbp_capacity_pages;
    bf.page_size = options_.page_size;
    bf.flush_interval_ms = options_.dbp_flush_interval_ms;
    buffer_fusion_ = std::make_unique<BufferFusion>(fabric_.get(), dsm_.get(),
                                                    page_store_.get(), bf);
    services_.buffer_fusion = buffer_fusion_.get();
    buffer_fusion_->Start();
    // Undo segments lived in the lost DSM as well.
    undo_ = std::make_unique<UndoStore>(dsm_.get(),
                                        options_.undo_segment_bytes);
    services_.undo = undo_.get();
  }
  Recovery recovery(log_store_.get(), page_store_.get(), undo_.get(),
                    dsm_lost ? nullptr : buffer_fusion_.get(),
                    options_.page_size);
  POLARMP_ASSIGN_OR_RETURN(auto uncommitted,
                           recovery.RedoReplay(log_store_->AllLogs()));
  POLARMP_RETURN_IF_ERROR(recovery.OfflineRollback(uncommitted));
  POLARMP_RETURN_IF_ERROR(recovery.FlushPages());
  POLARMP_RETURN_IF_ERROR(recovery.AdvanceCheckpoints(log_store_->AllLogs()));
  // Re-baseline every participating node: recovery has made all surviving
  // row versions committed state, so old g_trx_ids must resolve as "slot
  // reused ⇒ visible to all" (version bump) rather than block behind an
  // unreachable TIT; and the crashed nodes' ghost PLocks are obsolete.
  for (NodeId node : log_store_->AllLogs()) {
    const uint64_t epoch = log_store_->BumpNodeEpoch(node);
    POLARMP_RETURN_IF_ERROR(tit_->AddNode(node, epoch << 20));
    tit_->ResetNode(node);
    tit_->MarkDeparted(node, true);
    lock_fusion_->ReleaseAllHolds(node);
  }
  return recovery.stats();
}

}  // namespace polarmp
