#ifndef POLARMP_COMMON_CODING_H_
#define POLARMP_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace polarmp {

// Little-endian fixed-width encoding helpers used by the page/row/log
// serialization code. All reads assume the caller validated the length.

inline void EncodeFixed16(char* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

inline void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  EncodeFixed16(buf, v);
  dst->append(buf, 2);
}
inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

inline void PutLengthPrefixed(std::string* dst, const char* data, size_t n) {
  PutFixed32(dst, static_cast<uint32_t>(n));
  dst->append(data, n);
}

// FNV-1a, used for page checksums and hash partitioning in baselines.
inline uint64_t Fnv1a64(const char* data, size_t n, uint64_t seed = 14695981039346656037ull) {
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace polarmp

#endif  // POLARMP_COMMON_CODING_H_
