#include "common/status.h"

namespace polarmp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kBusy: return "Busy";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace polarmp
