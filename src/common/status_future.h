#ifndef POLARMP_COMMON_STATUS_FUTURE_H_
#define POLARMP_COMMON_STATUS_FUTURE_H_

#include <memory>
#include <utility>

#include "common/lock_rank.h"
#include "common/status.h"

namespace polarmp {

// One-shot completion primitive for the async commit pipeline: a producer
// (the log writer's flusher, the transaction manager's finalizer) completes
// it exactly once with a Status; any number of consumers Wait() or poll
// done(). std::future<Status> would do the same job but cannot participate
// in the lock-rank order — the shared state's mutex here is a RankedMutex
// at kFutureState, so completing or awaiting a future while holding an
// engine lock is caught like any other inversion.
//
// Copyable (shared-state semantics): LogWriter::ForceHandle and
// TrxManager::CommitFuture are aliases of this type.

namespace status_future_internal {

struct State {
  mutable RankedMutex mu{LockRank::kFutureState, "future.state"};
  CondVar cv;
  bool done GUARDED_BY(mu) = false;
  Status status GUARDED_BY(mu) = Status::OK();
};

}  // namespace status_future_internal

class StatusFuture {
 public:
  // A default-constructed future is "null": done() is true and Wait()
  // returns OK immediately (used for fast paths that complete inline).
  StatusFuture() = default;

  bool valid() const { return state_ != nullptr; }

  bool done() const {
    if (state_ == nullptr) return true;
    MutexLock lock(state_->mu);
    return state_->done;
  }

  // Blocks until the producer completes the future; returns its Status.
  // Must be called with no engine locks held (rank kFutureState).
  Status Wait() const {
    if (state_ == nullptr) return Status::OK();
    UniqueLock lock(state_->mu);
    state_->cv.wait(lock, [&]() REQUIRES(state_->mu) { return state_->done; });
    return state_->status;
  }

 private:
  friend class StatusPromise;
  explicit StatusFuture(std::shared_ptr<status_future_internal::State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<status_future_internal::State> state_;
};

class StatusPromise {
 public:
  StatusPromise() : state_(std::make_shared<status_future_internal::State>()) {}

  StatusFuture future() const { return StatusFuture(state_); }

  // Completes every current and future waiter. Must be called exactly once.
  void Set(Status status) {
    {
      MutexLock lock(state_->mu);
      POLARMP_CHECK(!state_->done) << "StatusPromise completed twice";
      state_->status = std::move(status);
      state_->done = true;
    }
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<status_future_internal::State> state_;
};

}  // namespace polarmp

#endif  // POLARMP_COMMON_STATUS_FUTURE_H_
