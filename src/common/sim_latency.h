#ifndef POLARMP_COMMON_SIM_LATENCY_H_
#define POLARMP_COMMON_SIM_LATENCY_H_

#include <atomic>
#include <cstdint>

namespace polarmp {

// The reproduction runs on commodity hardware with no RDMA NIC and no
// disaggregated-memory fabric, so every "remote" operation charges a
// configurable simulated latency instead. The benchmark harness relies on
// the *ratios* between these costs (RDMA ~30-50x cheaper than a storage
// I/O, RPC a few times an RDMA op), which mirror the paper's platform
// (ConnectX-6 RDMA ~2-5us vs NVMe/PolarStore ~100us+).
//
// Absolute values default to ~10-30x real hardware so that sleeps ride
// above the OS timer granularity; tests use ZeroLatencyProfile() so the
// full stack runs at memory speed.
// Default ratios (what the figures depend on): a log force costs ~30 RDMA
// ops, a storage page I/O ~60, an RPC ~2.4 — mirroring the paper's platform
// where RDMA is single-digit microseconds against 100us-class storage.
struct LatencyProfile {
  uint64_t rdma_read_ns = 15'000;      // one-sided RDMA read
  uint64_t rdma_write_ns = 15'000;     // one-sided RDMA write
  uint64_t rdma_cas_ns = 15'000;       // one-sided RDMA compare-and-swap
  uint64_t rpc_ns = 40'000;            // RDMA-based RPC round trip
  uint64_t storage_read_ns = 3'000'000;   // shared-storage page read
  uint64_t storage_write_ns = 3'000'000;  // shared-storage page write
  uint64_t log_append_ns = 1'200'000;  // redo-log force to storage
  uint64_t log_replay_per_record_ns = 15'000;  // CPU charge to apply one
                                               // redo record (baselines)
  // Engine-work equivalents charged by the behavioral baseline models so
  // their per-statement / per-commit base costs match the full engine that
  // backs PolarDB-MP (B-tree descent, MVCC bookkeeping, undo generation).
  // Calibrated against single-node PolarDB-MP throughput, which the paper
  // reports as comparable across systems.
  uint64_t baseline_op_overhead_ns = 100'000;
  uint64_t baseline_commit_overhead_ns = 1'000'000;
};

LatencyProfile ZeroLatencyProfile();

// Default profile used by benchmarks; see struct defaults.
LatencyProfile BenchLatencyProfile();

// Injects a delay of `ns` nanoseconds: short delays busy-spin (accurate to
// ~100ns), long ones sleep so that latency-bound worker threads overlap on
// a small host. A process-wide scale factor lets benches compress time.
void SimDelay(uint64_t ns);

// Multiplies every SimDelay by `scale` (default 1.0). Benches may use
// <1.0 to compress wall-clock time uniformly, preserving ratios.
void SetSimTimeScale(double scale);
double GetSimTimeScale();

// Counters for observability: total simulated nanoseconds injected and
// number of injections, process-wide.
uint64_t TotalSimDelayNanos();
uint64_t TotalSimDelayCount();
void ResetSimDelayCounters();

}  // namespace polarmp

#endif  // POLARMP_COMMON_SIM_LATENCY_H_
