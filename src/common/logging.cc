#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

namespace polarmp {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  const bool emit =
      static_cast<int>(level_) >=
          g_min_level.load(std::memory_order_relaxed) ||
      level_ == LogLevel::kFatal;
  if (emit) {
    stream_ << "\n";
    const std::string s = stream_.str();
    std::fwrite(s.data(), 1, s.size(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace polarmp
