#ifndef POLARMP_COMMON_LOGGING_H_
#define POLARMP_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

namespace polarmp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Accumulates a message and emits it (to stderr) on destruction.
// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define POLARMP_LOG(level)                                        \
  ::polarmp::internal_logging::LogMessage(                        \
      ::polarmp::LogLevel::k##level, __FILE__, __LINE__)          \
      .stream()

// CHECK macros terminate on violated invariants; they are active in all
// build types (database invariants are too important to strip in release).
#define POLARMP_CHECK(cond)                                       \
  (cond) ? (void)0                                                \
         : ::polarmp::internal_logging::CheckFailVoidify() &      \
               ::polarmp::internal_logging::LogMessage(           \
                   ::polarmp::LogLevel::kFatal, __FILE__, __LINE__) \
                   .stream()                                      \
               << "Check failed: " #cond " "

#define POLARMP_CHECK_EQ(a, b) POLARMP_CHECK((a) == (b))
#define POLARMP_CHECK_NE(a, b) POLARMP_CHECK((a) != (b))
#define POLARMP_CHECK_LT(a, b) POLARMP_CHECK((a) < (b))
#define POLARMP_CHECK_LE(a, b) POLARMP_CHECK((a) <= (b))
#define POLARMP_CHECK_GT(a, b) POLARMP_CHECK((a) > (b))
#define POLARMP_CHECK_GE(a, b) POLARMP_CHECK((a) >= (b))

#ifndef NDEBUG
#define POLARMP_DCHECK(cond) POLARMP_CHECK(cond)
#else
#define POLARMP_DCHECK(cond) \
  while (false) ::polarmp::internal_logging::NullStream()
#endif

namespace internal_logging {
// Enables the ternary in POLARMP_CHECK: operator& has lower precedence than
// << so the streamed message binds to the LogMessage first, then the whole
// expression is voidified to match the (void)0 arm.
struct CheckFailVoidify {
  void operator&(std::ostream&) {}
};
}  // namespace internal_logging

}  // namespace polarmp

#endif  // POLARMP_COMMON_LOGGING_H_
