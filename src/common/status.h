#ifndef POLARMP_COMMON_STATUS_H_
#define POLARMP_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace polarmp {

// Error taxonomy for the whole library. The set is deliberately small;
// database-specific outcomes that callers routinely branch on (NotFound,
// Busy for lock waits that timed out, Aborted for OCC/deadlock victims)
// get their own codes, everything else is an InvalidArgument/Internal/
// IOError style bucket.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kIOError = 4,
  kInternal = 5,
  kAborted = 6,        // transaction aborted (deadlock victim, OCC conflict)
  kBusy = 7,           // lock wait timed out
  kNotSupported = 8,
  kCorruption = 9,
  kUnavailable = 10,   // node crashed / shutting down
};

const char* StatusCodeToString(StatusCode code);

// Status carries an error code plus a human-readable message. Cheap to copy
// in the OK case (no allocation), allocation only on error construction.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code();
}

// StatusOr<T>: either a value or an error status. value() asserts ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    POLARMP_CHECK(!std::get<Status>(rep_).ok())
        << "StatusOr constructed from OK status without a value";
  }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    POLARMP_CHECK(ok()) << "value() on error StatusOr: "
                        << std::get<Status>(rep_).ToString();
    return std::get<T>(rep_);
  }
  T& value() & {
    POLARMP_CHECK(ok()) << "value() on error StatusOr: "
                        << std::get<Status>(rep_).ToString();
    return std::get<T>(rep_);
  }
  T&& value() && {
    POLARMP_CHECK(ok()) << "value() on error StatusOr: "
                        << std::get<Status>(rep_).ToString();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

// Propagate errors upward without exceptions.
#define POLARMP_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::polarmp::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                         \
  } while (0)

#define POLARMP_ASSIGN_OR_RETURN_IMPL(var, lhs, expr)  \
  auto var = (expr);                                   \
  if (!var.ok()) return var.status();                  \
  lhs = std::move(var).value()

#define POLARMP_CONCAT_INNER(a, b) a##b
#define POLARMP_CONCAT(a, b) POLARMP_CONCAT_INNER(a, b)

#define POLARMP_ASSIGN_OR_RETURN(lhs, expr) \
  POLARMP_ASSIGN_OR_RETURN_IMPL(            \
      POLARMP_CONCAT(_status_or_, __LINE__), lhs, expr)

}  // namespace polarmp

#endif  // POLARMP_COMMON_STATUS_H_
