#include "common/sim_latency.h"

#include <chrono>
#include <thread>

namespace polarmp {

namespace {
std::atomic<double> g_scale{1.0};
// Process totals for the simulated-latency budget. These are counters, but
// obs::Counter would register them with the global metrics registry whose
// construction order we cannot depend on here (SimDelay runs from static
// initializers in some benches).
// polarlint: allow(raw-atomic) pre-registry process totals
std::atomic<uint64_t> g_total_ns{0};
// polarlint: allow(raw-atomic) pre-registry process totals
std::atomic<uint64_t> g_total_count{0};

// Linux sleeps overshoot by 60-90us (timer slack) and spinning to a
// deadline burns the single host core, so neither pure strategy works for
// RDMA-class (tens of us) delays. SimDelay instead BATCHES per thread:
// short delays accrue in a thread-local account and are slept off together
// once the account passes kBatchNanos. A worker's cumulative simulated
// latency — what throughput measurements integrate over — stays exact up
// to one sleep's overshoot per batch (a uniform few-percent inflation that
// cancels in every ratio); only sub-batch timing interleavings are
// approximated. Delays at or above the threshold sleep immediately.
constexpr uint64_t kBatchNanos = 300'000;
thread_local uint64_t t_pending_ns = 0;
}  // namespace

LatencyProfile ZeroLatencyProfile() {
  LatencyProfile p;
  p.rdma_read_ns = 0;
  p.rdma_write_ns = 0;
  p.rdma_cas_ns = 0;
  p.rpc_ns = 0;
  p.storage_read_ns = 0;
  p.storage_write_ns = 0;
  p.log_append_ns = 0;
  p.log_replay_per_record_ns = 0;
  p.baseline_op_overhead_ns = 0;
  p.baseline_commit_overhead_ns = 0;
  return p;
}

LatencyProfile BenchLatencyProfile() { return LatencyProfile(); }

void SetSimTimeScale(double scale) {
  g_scale.store(scale, std::memory_order_relaxed);
}

double GetSimTimeScale() { return g_scale.load(std::memory_order_relaxed); }

uint64_t TotalSimDelayNanos() {
  return g_total_ns.load(std::memory_order_relaxed);
}
uint64_t TotalSimDelayCount() {
  return g_total_count.load(std::memory_order_relaxed);
}
void ResetSimDelayCounters() {
  g_total_ns.store(0, std::memory_order_relaxed);
  g_total_count.store(0, std::memory_order_relaxed);
}

void SimDelay(uint64_t ns) {
  if (ns == 0) return;
  const double scale = g_scale.load(std::memory_order_relaxed);
  const uint64_t scaled = static_cast<uint64_t>(static_cast<double>(ns) * scale);
  g_total_ns.fetch_add(scaled, std::memory_order_relaxed);
  g_total_count.fetch_add(1, std::memory_order_relaxed);
  if (scaled == 0) return;
  t_pending_ns += scaled;
  if (t_pending_ns < kBatchNanos) return;
  const uint64_t to_sleep = t_pending_ns;
  t_pending_ns = 0;
  std::this_thread::sleep_for(std::chrono::nanoseconds(to_sleep));
}

}  // namespace polarmp
