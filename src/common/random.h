#ifndef POLARMP_COMMON_RANDOM_H_
#define POLARMP_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace polarmp {

// xoshiro256** — fast, high-quality PRNG for workload generation. Not
// thread-safe; give each worker thread its own instance.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding so nearby seeds diverge.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // True with probability pct/100.
  bool Percent(uint32_t pct) { return Uniform(100) < pct; }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

// Zipfian distribution over [0, n) with parameter theta, per the YCSB
// implementation (Gray et al.). Precomputes zeta(n).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 1)
      : n_(n), theta_(theta), rng_(seed) {
    zeta_n_ = Zeta(n);
    zeta2_ = Zeta(2);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zeta_n_);
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zeta_n_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  double Zeta(uint64_t n) const {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta_);
    return sum;
  }

  uint64_t n_;
  double theta_;
  Random rng_;
  double zeta_n_, zeta2_, alpha_, eta_;
};

}  // namespace polarmp

#endif  // POLARMP_COMMON_RANDOM_H_
