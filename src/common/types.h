#ifndef POLARMP_COMMON_TYPES_H_
#define POLARMP_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

namespace polarmp {

// ---------------------------------------------------------------------------
// Cluster-wide identifier vocabulary.
// ---------------------------------------------------------------------------

using NodeId = uint16_t;   // primary node id, < kMaxNodes
using SpaceId = uint32_t;  // tablespace: one per table / index tree
using PageNo = uint32_t;   // page number within a space
using TableId = uint32_t;
using Lsn = uint64_t;      // node-local log sequence number (byte offset)
using Llsn = uint64_t;     // logical LSN: cluster-wide partial order (§4.4)
using Csn = uint64_t;      // commit sequence number / commit timestamp (CTS)
using TrxId = uint64_t;    // node-local transaction id

inline constexpr int kMaxNodes = 1024;

// CTS sentinel values (paper §4.1 / Algorithm 1).
inline constexpr Csn kCsnInit = 0;   // transaction not yet committed
inline constexpr Csn kCsnMin = 1;    // visible to every transaction
inline constexpr Csn kCsnMax = UINT64_MAX;  // visible to no one (active trx)

// First CTS the TSO hands out (must be > kCsnMin).
inline constexpr Csn kCsnFirst = 2;

// Provisional-CTS flag (bit 63), stored only in TIT slots. A committer
// publishes `cts | kCsnProvisionalBit` BEFORE its log force and finalizes
// the slot with a CTS fetched AFTER the force. A reader that observes the
// provisional bit therefore knows its view CTS predates the committer's
// final CTS, and resolves the transaction as active (kCsnMax) without
// waiting — closing the SI commit-publication lost-update window (DESIGN.md
// §6). The bit can never collide with a real timestamp: the TSO counts up
// from kCsnFirst and would need 2^63 commits to reach it, and neither
// kCsnInit nor row CTSes ever carry it.
inline constexpr Csn kCsnProvisionalBit = 1ull << 63;

inline constexpr bool CsnIsProvisional(Csn slot_cts) {
  return slot_cts != kCsnMax && (slot_cts & kCsnProvisionalBit) != 0;
}
inline constexpr Csn MakeProvisionalCsn(Csn cts) {
  return cts | kCsnProvisionalBit;
}
// The raw TSO value under the provisional bit. Only async-commit early lock
// release looks at it: a writer may overwrite a commit-pending row, and the
// first-committer-wins check then runs against this pre-force timestamp.
inline constexpr Csn CsnProvisionalValue(Csn slot_cts) {
  return slot_cts & ~kCsnProvisionalBit;
}

// ---------------------------------------------------------------------------
// PageId: (space, page_no) packed into 64 bits so the lock/buffer fusion
// tables key on a single integer.
// ---------------------------------------------------------------------------
struct PageId {
  SpaceId space = 0;
  PageNo page_no = 0;

  uint64_t Pack() const {
    return (static_cast<uint64_t>(space) << 32) | page_no;
  }
  static PageId Unpack(uint64_t v) {
    return PageId{static_cast<SpaceId>(v >> 32),
                  static_cast<PageNo>(v & 0xFFFFFFFFu)};
  }
  bool operator==(const PageId& o) const {
    return space == o.space && page_no == o.page_no;
  }
  std::string ToString() const {
    return std::to_string(space) + ":" + std::to_string(page_no);
  }
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return std::hash<uint64_t>()(id.Pack() * 0x9E3779B97F4A7C15ull);
  }
};

// ---------------------------------------------------------------------------
// Global transaction id (§4.1): identifies the owning node, the TIT slot and
// the slot's reuse version in one u64 that is stored in every row's metadata
// (and doubles as the embedded row-lock field, §4.3.2).
//
// Layout: node_id(10 bits) | tit_slot(22 bits) | version(32 bits).
// The node-local trx_id lives in the TIT slot itself; rows only need enough
// to address + validate the slot remotely.
// ---------------------------------------------------------------------------
using GTrxId = uint64_t;

inline constexpr GTrxId kInvalidGTrxId = 0;

inline constexpr GTrxId MakeGTrxId(NodeId node, uint32_t slot,
                                   uint32_t version) {
  return (static_cast<uint64_t>(node) << 54) |
         (static_cast<uint64_t>(slot & 0x3FFFFFu) << 32) |
         static_cast<uint64_t>(version);
}
inline constexpr NodeId GTrxNode(GTrxId id) {
  return static_cast<NodeId>(id >> 54);
}
inline constexpr uint32_t GTrxSlot(GTrxId id) {
  return static_cast<uint32_t>((id >> 32) & 0x3FFFFFu);
}
inline constexpr uint32_t GTrxVersion(GTrxId id) {
  return static_cast<uint32_t>(id & 0xFFFFFFFFu);
}

// ---------------------------------------------------------------------------
// Isolation levels supported by the transaction layer (§2.4, §5.1: the
// evaluation runs read committed; snapshot isolation is also implemented).
// ---------------------------------------------------------------------------
enum class IsolationLevel : uint8_t {
  kReadCommitted = 0,
  kSnapshotIsolation = 1,
};

// Lock modes shared by PLock and row-lock paths.
enum class LockMode : uint8_t { kShared = 0, kExclusive = 1 };

inline bool LockModesConflict(LockMode a, LockMode b) {
  return a == LockMode::kExclusive || b == LockMode::kExclusive;
}

}  // namespace polarmp

#endif  // POLARMP_COMMON_TYPES_H_
