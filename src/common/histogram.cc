#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace polarmp {

Histogram::Histogram()
    : count_(0), sum_(0), min_(UINT64_MAX), max_(0), buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(uint64_t v) {
  if (v < 8) return static_cast<int>(v);
  const int log2 = 63 - std::countl_zero(v);
  const int sub = static_cast<int>((v >> (log2 - 3)) & 7);  // top 3 bits below msb
  const int b = log2 * 8 + sub;
  return std::min(b, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int b) {
  if (b < 8) return static_cast<uint64_t>(b);
  const int log2 = b / 8;
  const int sub = b % 8;
  return (uint64_t{1} << log2) + (static_cast<uint64_t>(sub + 1) << (log2 - 3)) - 1;
}

void Histogram::Add(uint64_t value_ns) {
  ++count_;
  sum_ += value_ns;
  min_ = std::min(min_, value_ns);
  max_ = std::max(max_, value_ns);
  ++buckets_[BucketFor(value_ns)];
}

void Histogram::Merge(const Histogram& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Clear() {
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const uint64_t target = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean_us=" << Mean() / 1000.0
     << " p50_us=" << static_cast<double>(Percentile(50)) / 1000.0
     << " p95_us=" << static_cast<double>(Percentile(95)) / 1000.0
     << " p99_us=" << static_cast<double>(Percentile(99)) / 1000.0
     << " max_us=" << static_cast<double>(max()) / 1000.0;
  return os.str();
}

}  // namespace polarmp
