#ifndef POLARMP_COMMON_LOCK_RANK_H_
#define POLARMP_COMMON_LOCK_RANK_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

#if !defined(POLARMP_LOCK_RANK_CHECKS)
// CMake normally supplies this (option POLARMP_LOCK_RANK_CHECKS, default ON);
// standalone inclusion gets checks unless NDEBUG says otherwise.
#ifdef NDEBUG
#define POLARMP_LOCK_RANK_CHECKS 0
#else
#define POLARMP_LOCK_RANK_CHECKS 1
#endif
#endif

#if POLARMP_LOCK_RANK_CHECKS
#include <cstdio>
#include <cstdlib>
#if defined(__GLIBC__) || defined(__linux__)
#include <execinfo.h>
#define POLARMP_LOCK_RANK_HAS_BACKTRACE 1
#else
#define POLARMP_LOCK_RANK_HAS_BACKTRACE 0
#endif
#endif

namespace polarmp {

// Global latch order. Every mutex in the tree is a RankedMutex (or
// RankedSharedMutex) carrying one of these ranks; a thread may acquire a
// mutex only if its rank is STRICTLY LOWER than the rank of every mutex the
// thread already holds (equal ranks are allowed only for ranks explicitly
// marked same-rank reentrant, e.g. page latches during B-tree crabbing).
// Acquisition therefore always descends: outermost structures carry the
// highest numbers, the fabric and the observability registry the lowest.
//
// The derivation of this order from the code's real acquisition DAG — and
// why the log writer sits BELOW the page latches even though the issue that
// introduced ranking sketched it above them — is documented in DESIGN.md
// ("Static analysis & lock ranking"). Do not renumber casually: polarlint
// enforces that every mutex declares a rank, and the runtime checker aborts
// on the first inversion it sees.
enum class LockRank : unsigned {
  // ---- innermost: observability (recordable while holding anything) ----
  kObsHistogram = 10,  // obs::LatencyHistogram shard
  kObsRegistry = 20,   // obs::MetricsRegistry family map (merges shards)

  // ---- fabric / DSM / storage tiers ----
  kFabric = 30,      // Fabric region table
  kRpc = 35,         // Rpc handler registry (resolves liveness via kFabric)
  kDsm = 40,         // Dsm bump allocator
  kStorage = 50,     // PageStore / LogStore maps
  kUndoSegment = 60, // UndoStore per-segment append lock
  kUndoTable = 65,   // UndoStore segment map

  // ---- PMFS services ----
  kPmfsService = 70, // LockFusion / TransactionFusion / BufferFusion / TSO
  kPmfsFlusher = 75, // BufferFusion flusher lifecycle
  kTit = 80,         // TIT table map

  // ---- node engine ----
  kCacheSlot = 82,    // IndexCache per-slot latch (taken under kIndexCache;
                      // shields slot bytes during routes and refreshes)
  kIndexCache = 85,   // IndexCache indirection table (may call into
                      // BufferFusion (kPmfsService) while held, hence above
                      // it; taken under page latches during installs, hence
                      // below kPageLatch)
  kPlock = 90,        // PLockManager entry table
  kBufferPool = 100,  // LBP frame table
  kFutureState = 105, // StatusFuture shared state (completed/awaited with
                      // no other locks held; below kLogWriter so a force
                      // completion can never invert against the buffer)
  kLogWriter = 110,   // redo log buffer
  kLogFlusher = 115,  // group-commit flusher queue (held while claiming the
                      // kLogWriter buffer, hence strictly above it)
  kLlsnOrder = 120,   // LLSN-assignment/append atomicity
  kCommitGate = 130,  // mtr-commit vs checkpoint-snapshot gate
  kPageLatch = 140,   // per-frame page latch (same-rank: crabbing holds
                      // several at once; see DESIGN.md on why this is safe)
  kCommitFinalize = 145,  // TrxManager finalize queue (commit completions
                          // handed off the flusher to the finalizer thread)
  kTrxManager = 150,  // active-transaction table

  // ---- node/cluster control plane ----
  kCatalog = 160,
  kNodeTrees = 165,
  kNodeBackground = 170,
  kStandby = 175,
  kStandbyStop = 178,

  // ---- baseline cost models (disjoint subsystem) ----
  kSimLockTable = 183,
  kSimLogDevice = 184,  // baseline group-commit log device queue
  kSimStore = 185,
  kBaselineNode = 190,  // per-node caches / metadata in the MM baselines

  // ---- test-only ranks (outermost; free for harness scaffolding) ----
  kTestLow = 200,
  kTestMid = 210,
  kTestHigh = 220,
};

// Ranks whose mutexes may be held several at a time by one thread (page
// latches during descent/crabbing). Deadlock freedom among same-rank holds
// comes from a structural discipline the rank checker cannot model (the
// B-tree's top-down, left-right descent), which is also why TSan runs with
// detect_deadlocks=0 — see scripts/check.sh.
enum class SameRank : bool { kForbid = false, kAllow = true };

namespace lock_rank_internal {

struct Held {
  const void* mu;
  LockRank rank;
  const char* name;
  bool allow_same;
};

inline constexpr int kMaxHeld = 32;

struct HeldStack {
  Held entries[kMaxHeld];
  int depth = 0;
};

inline HeldStack& TlsStack() {
  thread_local HeldStack stack;
  return stack;
}

#if POLARMP_LOCK_RANK_CHECKS
[[noreturn]] inline void Die(const HeldStack& held, LockRank rank,
                             const char* name, const char* why) {
  std::fprintf(stderr,
               "\n==== polarmp lock-rank violation ====\n"
               "%s while acquiring '%s' (rank %u)\n"
               "locks held by this thread (outermost first):\n",
               why, name, static_cast<unsigned>(rank));
  for (int i = 0; i < held.depth; ++i) {
    std::fprintf(stderr, "  #%d  '%s' (rank %u)\n", i, held.entries[i].name,
                 static_cast<unsigned>(held.entries[i].rank));
  }
#if POLARMP_LOCK_RANK_HAS_BACKTRACE
  std::fprintf(stderr, "acquisition stack:\n");
  void* frames[32];
  const int n = backtrace(frames, 32);
  backtrace_symbols_fd(frames, n, /*stderr*/ 2);
#endif
  std::fprintf(stderr, "=====================================\n");
  std::fflush(stderr);
  std::abort();
}
#endif

inline void NoteAcquire(const void* mu, LockRank rank, const char* name,
                        bool allow_same) {
#if POLARMP_LOCK_RANK_CHECKS
  HeldStack& s = TlsStack();
  for (int i = 0; i < s.depth; ++i) {
    const Held& h = s.entries[i];
    if (h.mu == mu) {
      Die(s, rank, name, "recursive acquisition of the same mutex");
    }
    if (rank > h.rank) {
      Die(s, rank, name, "rank inversion (acquiring a higher rank)");
    }
    if (rank == h.rank && !(allow_same && h.allow_same)) {
      Die(s, rank, name, "same-rank acquisition without a same-rank policy");
    }
  }
  if (s.depth >= kMaxHeld) {
    Die(s, rank, name, "lock-rank stack overflow");
  }
  s.entries[s.depth++] = Held{mu, rank, name, allow_same};
#else
  (void)mu;
  (void)rank;
  (void)name;
  (void)allow_same;
#endif
}

inline bool IsHeld(const void* mu) {
#if POLARMP_LOCK_RANK_CHECKS
  const HeldStack& s = TlsStack();
  for (int i = 0; i < s.depth; ++i) {
    if (s.entries[i].mu == mu) return true;
  }
  return false;
#else
  (void)mu;
  return true;  // checks compiled out: AssertHeld() degrades to a no-op
#endif
}

#if POLARMP_LOCK_RANK_CHECKS
[[noreturn]] inline void DieNotHeld(const char* name) {
  std::fprintf(stderr,
               "==== polarmp lock-rank violation ====\n"
               "AssertHeld: '%s' is not held by this thread\n",
               name);
  std::fflush(stderr);
  std::abort();
}
#endif

inline void NoteRelease(const void* mu) {
#if POLARMP_LOCK_RANK_CHECKS
  HeldStack& s = TlsStack();
  // Releases are not always LIFO (scoped locks interleave); drop the most
  // recent entry for this mutex.
  for (int i = s.depth - 1; i >= 0; --i) {
    if (s.entries[i].mu == mu) {
      for (int j = i; j + 1 < s.depth; ++j) s.entries[j] = s.entries[j + 1];
      --s.depth;
      return;
    }
  }
  std::fprintf(stderr,
               "==== polarmp lock-rank violation ====\n"
               "release of a mutex this thread does not hold\n");
  std::fflush(stderr);
  std::abort();
#else
  (void)mu;
#endif
}

}  // namespace lock_rank_internal

// std::mutex with a declared place in the global latch order. A Clang
// `capability` for the static thread-safety analysis, and still a
// BasicLockable, so CondVar (condition_variable_any) can wait on it
// directly — waits release and re-acquire through the wrapper, keeping the
// held-rank stack exact across blocks.
class CAPABILITY("mutex") RankedMutex {
 public:
  explicit RankedMutex(LockRank rank, const char* name,
                       SameRank same = SameRank::kForbid)
      : rank_(rank), name_(name), allow_same_(same == SameRank::kAllow) {}

  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() ACQUIRE() {
    lock_rank_internal::NoteAcquire(this, rank_, name_, allow_same_);
    mu_.lock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    lock_rank_internal::NoteAcquire(this, rank_, name_, allow_same_);
    if (mu_.try_lock()) return true;
    lock_rank_internal::NoteRelease(this);
    return false;
  }
  void unlock() RELEASE() {
    mu_.unlock();
    lock_rank_internal::NoteRelease(this);
  }

  // Runtime check (via the thread-local held stack) plus a static assertion
  // teaching the analysis that this mutex is held — the primitive for latch
  // handoffs the analysis cannot follow lexically (crabbing, frame caches).
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#if POLARMP_LOCK_RANK_CHECKS
    if (!lock_rank_internal::IsHeld(this)) {
      lock_rank_internal::DieNotHeld(name_);
    }
#endif
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
  const bool allow_same_;
};

// std::shared_mutex with a declared rank. Shared and exclusive acquisitions
// count identically against the order (a shared hold still forbids
// acquiring higher-ranked mutexes).
class CAPABILITY("shared_mutex") RankedSharedMutex {
 public:
  explicit RankedSharedMutex(LockRank rank, const char* name,
                             SameRank same = SameRank::kForbid)
      : rank_(rank), name_(name), allow_same_(same == SameRank::kAllow) {}

  RankedSharedMutex(const RankedSharedMutex&) = delete;
  RankedSharedMutex& operator=(const RankedSharedMutex&) = delete;

  void lock() ACQUIRE() {
    lock_rank_internal::NoteAcquire(this, rank_, name_, allow_same_);
    mu_.lock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    lock_rank_internal::NoteAcquire(this, rank_, name_, allow_same_);
    if (mu_.try_lock()) return true;
    lock_rank_internal::NoteRelease(this);
    return false;
  }
  void unlock() RELEASE() {
    mu_.unlock();
    lock_rank_internal::NoteRelease(this);
  }

  void lock_shared() ACQUIRE_SHARED() {
    lock_rank_internal::NoteAcquire(this, rank_, name_, allow_same_);
    mu_.lock_shared();
  }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    lock_rank_internal::NoteAcquire(this, rank_, name_, allow_same_);
    if (mu_.try_lock_shared()) return true;
    lock_rank_internal::NoteRelease(this);
    return false;
  }
  void unlock_shared() RELEASE_SHARED() {
    mu_.unlock_shared();
    lock_rank_internal::NoteRelease(this);
  }

  // Exclusive-hold assertion. The rank stack does not distinguish shared
  // from exclusive holds, so the runtime side checks "held at all"; the
  // static side asserts the exclusive capability.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#if POLARMP_LOCK_RANK_CHECKS
    if (!lock_rank_internal::IsHeld(this)) {
      lock_rank_internal::DieNotHeld(name_);
    }
#endif
  }

  // Any-mode assertion: the crabbing handoff primitive for readers.
  void AssertAnyHeld() const ASSERT_SHARED_CAPABILITY(this) {
#if POLARMP_LOCK_RANK_CHECKS
    if (!lock_rank_internal::IsHeld(this)) {
      lock_rank_internal::DieNotHeld(name_);
    }
#endif
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
  const char* const name_;
  const bool allow_same_;
};

// Condition variable usable with RankedMutex (waits release and re-acquire
// through the wrapper, so the held-rank stack stays exact across blocks).
// Inside a REQUIRES(mu) helper, wait on the mutex itself — `cv.wait(mu)` —
// so the analysis's view (mutex held on entry and exit) matches the code;
// at top level, wait on the UniqueLock guard.
using CondVar = std::condition_variable_any;

// RAII guards over the ranked mutexes. These replace std::lock_guard /
// std::unique_lock / std::shared_lock in annotated code: the libstdc++
// guards carry no capability attributes, so locks taken through them are
// invisible to the analysis. SCOPED_CAPABILITY makes acquisition and
// release lexical facts the analysis can discharge.

// lock_guard-style: exclusive, held for the full scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(RankedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mu_.unlock(); }

 private:
  RankedMutex& mu_;
};

// unique_lock-style: exclusive, relockable (CondVar waits, and top-level
// code that opens an unlocked window mid-scope). `*Locked()` helpers that
// drop and retake the lock internally operate on the RankedMutex directly
// under a REQUIRES contract instead of taking one of these by reference —
// scoped objects passed by reference are opaque to the analysis.
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(RankedMutex& mu) ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_.lock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;
  ~UniqueLock() RELEASE() {
    if (owned_) mu_.unlock();
  }

  void lock() ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }
  void unlock() RELEASE() {
    owned_ = false;
    mu_.unlock();
  }
  bool owns_lock() const { return owned_; }

 private:
  RankedMutex& mu_;
  bool owned_;
};

// shared_lock-style: shared mode, held for the full scope.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(RankedSharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() RELEASE() { mu_.unlock_shared(); }

 private:
  RankedSharedMutex& mu_;
};

// lock_guard-style over a RankedSharedMutex: exclusive mode.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(RankedSharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() RELEASE() { mu_.unlock(); }

 private:
  RankedSharedMutex& mu_;
};

}  // namespace polarmp

#endif  // POLARMP_COMMON_LOCK_RANK_H_
