#ifndef POLARMP_COMMON_HISTOGRAM_H_
#define POLARMP_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace polarmp {

// Log-bucketed latency histogram (nanosecond samples). Thread-compatible:
// callers merge per-thread instances rather than sharing one.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value_ns);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  // p in [0, 100].
  uint64_t Percentile(double p) const;

  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 64 * 8;  // 8 sub-buckets per power of 2
  static int BucketFor(uint64_t v);
  static uint64_t BucketUpperBound(int b);

  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
  std::vector<uint64_t> buckets_;
};

}  // namespace polarmp

#endif  // POLARMP_COMMON_HISTOGRAM_H_
