#ifndef POLARMP_COMMON_THREAD_ANNOTATIONS_H_
#define POLARMP_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety (capability) analysis macros.
//
// These expand to Clang's `capability` attribute family when the compiler
// supports it and to nothing elsewhere (GCC, MSVC), so annotated headers stay
// warning-free on every toolchain. `scripts/check.sh wthread` builds the tree
// with `-Werror=thread-safety` under clang so the annotations are *proofs*,
// not comments; DESIGN.md §7 documents the conventions for when to use
// GUARDED_BY vs REQUIRES vs a `// polarlint: unguarded(...)` escape.
//
// The macro set mirrors the de-facto standard spelling (abseil / LevelDB):
//   CAPABILITY(x)          - class is a capability (a mutex)
//   SCOPED_CAPABILITY      - RAII class acquiring in ctor, releasing in dtor
//   GUARDED_BY(mu)         - field may only be read/written while holding mu
//   PT_GUARDED_BY(mu)      - pointee (not the pointer) is guarded by mu
//   REQUIRES(mu)           - function pre+postcondition: mu held exclusively
//   REQUIRES_SHARED(mu)    - function pre+postcondition: mu held (any mode)
//   ACQUIRE(mu)/RELEASE(mu)        - function acquires/releases mu
//   ACQUIRE_SHARED/RELEASE_SHARED  - shared-mode variants
//   RELEASE_GENERIC(mu)    - releases mu whatever the held mode
//   TRY_ACQUIRE(ok, mu)    - returns `ok` iff mu was acquired
//   EXCLUDES(mu)           - caller must NOT hold mu (deadlock guard)
//   ASSERT_CAPABILITY(mu)  - runtime assertion teaching the analysis mu is
//                            held (the crabbing handoff primitive)
//   RETURN_CAPABILITY(mu)  - function returns a reference to mu
//   NO_THREAD_SAFETY_ANALYSIS - opt a function body out of the analysis

#if defined(__clang__) && (!defined(SWIG))
#define POLARMP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define POLARMP_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

#define CAPABILITY(x) POLARMP_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY POLARMP_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) POLARMP_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) POLARMP_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  POLARMP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  POLARMP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  POLARMP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  POLARMP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) POLARMP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  POLARMP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) POLARMP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  POLARMP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  POLARMP_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  POLARMP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  POLARMP_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) POLARMP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) POLARMP_THREAD_ANNOTATION(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  POLARMP_THREAD_ANNOTATION(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) POLARMP_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  POLARMP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // POLARMP_COMMON_THREAD_ANNOTATIONS_H_
