#include "dsm/dsm.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "rdma/retry_policy.h"

namespace polarmp {

Dsm::Dsm(Fabric* fabric, uint32_t num_servers, uint64_t bytes_per_server)
    : fabric_(fabric),
      num_servers_(num_servers),
      bytes_per_server_(bytes_per_server),
      next_free_(num_servers, 0) {
  POLARMP_CHECK_GT(num_servers, 0u);
  memory_.reserve(num_servers);
  for (uint32_t i = 0; i < num_servers; ++i) {
    memory_.push_back(std::make_unique<char[]>(bytes_per_server));
    std::memset(memory_.back().get(), 0, bytes_per_server);
    const Status s = fabric_->RegisterRegion(ServerEndpoint(i), /*region=*/0,
                                             memory_.back().get(),
                                             bytes_per_server);
    POLARMP_CHECK(s.ok()) << s.ToString();
  }
}

Dsm::~Dsm() {
  for (uint32_t i = 0; i < num_servers_; ++i) {
    fabric_->DeregisterEndpoint(ServerEndpoint(i));
  }
}

StatusOr<DsmPtr> Dsm::Allocate(uint64_t size) {
  const uint64_t aligned = (size + 7) & ~uint64_t{7};
  MutexLock lock(alloc_mu_);
  // Least-loaded server keeps the pool balanced like a real allocator would.
  uint32_t best = 0;
  for (uint32_t i = 1; i < num_servers_; ++i) {
    if (next_free_[i] < next_free_[best]) best = i;
  }
  if (next_free_[best] + aligned > bytes_per_server_) {
    return Status::Internal("DSM out of memory");
  }
  DsmPtr ptr{best, next_free_[best]};
  next_free_[best] += aligned;
  return ptr;
}

// Every DSM access is idempotent at this layer (reads, full-image writes,
// and atomics whose faults are injected before execution), so each verb
// retries injected transients with capped backoff. Genuine errors — the
// memory server really deregistered — pass straight through.

Status Dsm::Read(EndpointId from, DsmPtr ptr, void* dst, uint64_t len) const {
  return RetryTransient(fabric_, [&] {
    return fabric_->Read(from, ServerEndpoint(ptr.server), 0, ptr.offset, dst,
                         len);
  });
}

Status Dsm::Write(EndpointId from, DsmPtr ptr, const void* src,
                  uint64_t len) const {
  return RetryTransient(fabric_, [&] {
    return fabric_->Write(from, ServerEndpoint(ptr.server), 0, ptr.offset, src,
                          len);
  });
}

StatusOr<uint64_t> Dsm::FetchAdd64(EndpointId from, DsmPtr ptr,
                                   uint64_t delta) const {
  return RetryTransientOr(fabric_, [&] {
    return fabric_->FetchAdd64(from, ServerEndpoint(ptr.server), 0, ptr.offset,
                               delta);
  });
}

StatusOr<uint64_t> Dsm::Load64(EndpointId from, DsmPtr ptr) const {
  return RetryTransientOr(fabric_, [&] {
    return fabric_->Load64(from, ServerEndpoint(ptr.server), 0, ptr.offset);
  });
}

Status Dsm::Store64(EndpointId from, DsmPtr ptr, uint64_t value) const {
  return RetryTransient(fabric_, [&] {
    return fabric_->Write(from, ServerEndpoint(ptr.server), 0, ptr.offset,
                          &value, sizeof(value));
  });
}

Status Dsm::WriteSeqlocked(EndpointId from, DsmPtr frame, const void* src,
                           uint64_t len) const {
  const EndpointId server = ServerEndpoint(frame.server);
  if (!fabric_->EndpointAlive(server)) {
    return Status::Unavailable("memory server down");
  }
  if (from != server) {
    const FaultDecision fault =
        fabric_->fault_injector()->Decide(FaultOp::kSeqlockedWrite);
    if (fault.kind == FaultKind::kTorn) {
      // Torn delivery: the guard word goes odd, the leading cachelines
      // land, and the tail trails in after a window. The seqlock is what
      // makes this survivable — a concurrent ReadSeqlocked sees an odd (or
      // changed) guard and retries until the tail lands; no reader can
      // observe the half-written image as stable.
      fabric_->CountFaultInjected();
      fabric_->ChargeOneSidedWrite(from, server);
      auto* seq = reinterpret_cast<std::atomic<uint64_t>*>(HostPtr(frame));
      char* data = HostPtr(DsmPtr{frame.server, frame.offset + 8});
      seq->fetch_add(1, std::memory_order_acq_rel);  // odd: write in flight
      const uint64_t head = len / 2;
      std::memcpy(data, src, head);
      SimDelay(fault.delay_ns);  // the torn window readers must survive
      std::memcpy(data + head, static_cast<const char*>(src) + head,
                  len - head);
      seq->fetch_add(1, std::memory_order_acq_rel);  // even: stable
      return Status::OK();
    }
  }
  fabric_->ChargeOneSidedWrite(from, server);
  HostWriteSeqlocked(frame, src, len);
  return Status::OK();
}

Status Dsm::ReadSeqlocked(EndpointId from, DsmPtr frame, void* dst,
                          uint64_t len) const {
  return ReadSeqlocked(from, frame, dst, len, /*version_out=*/nullptr);
}

Status Dsm::ReadSeqlocked(EndpointId from, DsmPtr frame, void* dst,
                          uint64_t len, uint64_t* version_out) const {
  return RetryTransient(fabric_, [&] {
    return ReadSeqlockedOnce(from, frame, dst, len, version_out);
  });
}

Status Dsm::ReadSeqlockedOnce(EndpointId from, DsmPtr frame, void* dst,
                              uint64_t len, uint64_t* version_out) const {
  const EndpointId server = ServerEndpoint(frame.server);
  if (!fabric_->EndpointAlive(server)) {
    return Status::Unavailable("memory server down");
  }
  if (from != server) {
    const FaultDecision fault =
        fabric_->fault_injector()->Decide(FaultOp::kRead);
    if (fault.kind == FaultKind::kUnavailable) {
      fabric_->CountFaultInjected();
      return InjectedUnavailable("seqlocked read");
    }
    if (fault.kind == FaultKind::kDelay) {
      fabric_->CountFaultInjected();
      SimDelay(fault.delay_ns);
    }
  }
  fabric_->ChargeOneSidedRead(from, server);
  auto* seq = reinterpret_cast<std::atomic<uint64_t>*>(HostPtr(frame));
  const char* data = HostPtr(DsmPtr{frame.server, frame.offset + 8});
  for (int attempt = 0; attempt < 100000; ++attempt) {
    const uint64_t s1 = seq->load(std::memory_order_acquire);
    if (s1 % 2 == 1) {
      std::this_thread::yield();
      continue;
    }
    std::memcpy(dst, data, len);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq->load(std::memory_order_acquire) == s1) {
      if (version_out != nullptr) *version_out = s1;
      return Status::OK();
    }
  }
  return Status::Internal("seqlocked read livelock");
}

char* Dsm::HostPtr(DsmPtr ptr) const {
  POLARMP_CHECK_LT(ptr.server, num_servers_);
  POLARMP_CHECK_LT(ptr.offset, bytes_per_server_);
  return memory_[ptr.server].get() + ptr.offset;
}

void Dsm::HostWrite(DsmPtr ptr, const void* src, uint64_t len) const {
  POLARMP_CHECK_LE(ptr.offset + len, bytes_per_server_);
  std::memcpy(HostPtr(ptr), src, len);
}

void Dsm::HostWriteSeqlocked(DsmPtr frame, const void* src,
                             uint64_t len) const {
  auto* seq = reinterpret_cast<std::atomic<uint64_t>*>(HostPtr(frame));
  seq->fetch_add(1, std::memory_order_acq_rel);  // odd: write in progress
  std::memcpy(HostPtr(DsmPtr{frame.server, frame.offset + 8}), src, len);
  seq->fetch_add(1, std::memory_order_acq_rel);  // even: stable
}

void Dsm::Reset() {
  MutexLock lock(alloc_mu_);
  for (uint32_t i = 0; i < num_servers_; ++i) {
    std::memset(memory_[i].get(), 0, bytes_per_server_);
    next_free_[i] = 0;
  }
}

uint64_t Dsm::allocated_bytes() const {
  MutexLock lock(alloc_mu_);
  uint64_t total = 0;
  for (uint64_t v : next_free_) total += v;
  return total;
}

}  // namespace polarmp
