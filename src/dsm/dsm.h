#ifndef POLARMP_DSM_DSM_H_
#define POLARMP_DSM_DSM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/lock_rank.h"
#include "rdma/fabric.h"

namespace polarmp {

// Pointer into disaggregated shared memory: (memory-server index, offset).
struct DsmPtr {
  uint32_t server = UINT32_MAX;
  uint64_t offset = 0;

  bool valid() const { return server != UINT32_MAX; }
  uint64_t Pack() const { return (static_cast<uint64_t>(server) << 48) | offset; }
  static DsmPtr Unpack(uint64_t v) {
    return DsmPtr{static_cast<uint32_t>(v >> 48), v & 0xFFFFFFFFFFFFull};
  }
  bool operator==(const DsmPtr& o) const {
    return server == o.server && offset == o.offset;
  }
};

inline constexpr DsmPtr kNullDsmPtr{};

// Disaggregated shared memory (§3: "PMFS is implemented with a disaggregated
// shared memory, typically consisting of multiple nodes and providing high
// availability").
//
// A Dsm instance models a pool of memory servers, each hosting one large
// fabric-registered region. Compute nodes read/write DSM through one-sided
// fabric verbs; PMFS components that are co-located with the memory servers
// (the DBP directory, the flusher) use HostPtr() for latency-free access,
// exactly as server-side software touches its own DRAM.
//
// DSM survives compute-node crashes (the memory servers are a separate
// failure domain); that is what enables PolarDB-MP's fast recovery (§5.5).
// Memory-server failure is handled in the paper by replication inside the
// DSM layer; here DSM loss is simulated by Reset(), after which recovery
// must fall back to shared storage + logs.
class Dsm {
 public:
  // Creates `num_servers` simulated memory servers of `bytes_per_server`.
  Dsm(Fabric* fabric, uint32_t num_servers, uint64_t bytes_per_server);
  ~Dsm();

  Dsm(const Dsm&) = delete;
  Dsm& operator=(const Dsm&) = delete;

  // Bump-allocates `size` bytes (8-byte aligned) on the least-loaded server.
  StatusOr<DsmPtr> Allocate(uint64_t size);

  // One-sided access from compute node `from` (a fabric endpoint id).
  Status Read(EndpointId from, DsmPtr ptr, void* dst, uint64_t len) const;
  Status Write(EndpointId from, DsmPtr ptr, const void* src, uint64_t len) const;
  StatusOr<uint64_t> FetchAdd64(EndpointId from, DsmPtr ptr, uint64_t delta) const;
  StatusOr<uint64_t> Load64(EndpointId from, DsmPtr ptr) const;
  Status Store64(EndpointId from, DsmPtr ptr, uint64_t value) const;

  // Seqlock-framed page transfer, priced as ONE verb: real RDMA NICs post
  // the guard-word updates and the payload as a single doorbell-batched
  // work request. Layout at `frame`: [seq u64][payload...].
  Status WriteSeqlocked(EndpointId from, DsmPtr frame, const void* src,
                        uint64_t len) const;
  Status ReadSeqlocked(EndpointId from, DsmPtr frame, void* dst,
                       uint64_t len) const;
  // Same read, additionally returning the (even) seqlock word the stable
  // copy was taken at. The word only changes when a writer publishes a new
  // version, so callers can keep it as a content version: a later read that
  // observes the same word read an identical image (the compute-side index
  // cache uses this to tell "refreshed, content unchanged" from "refreshed
  // to a newer image" without diffing pages).
  Status ReadSeqlocked(EndpointId from, DsmPtr frame, void* dst, uint64_t len,
                       uint64_t* version_out) const;

  // Direct host access for components co-located with the memory servers.
  char* HostPtr(DsmPtr ptr) const;

  // Host-side (latency-free) write into a segment by a co-located component
  // — the undo store's local image, the DBP flusher. Writes into
  // fabric-registered memory must go through the Dsm so torn-access
  // disciplines stay in one place (polarlint rule no-hostptr-memcpy bans
  // raw memcpy into HostPtr memory outside src/dsm + src/rdma).
  void HostWrite(DsmPtr ptr, const void* src, uint64_t len) const;

  // Host-side seqlock-framed page write; same layout as WriteSeqlocked
  // ([seq u64][payload...]) with no latency charge.
  void HostWriteSeqlocked(DsmPtr frame, const void* src, uint64_t len) const;

  // Drops all contents (simulates losing the DSM tier); allocations reset.
  void Reset();

  const LatencyProfile& fabric_profile() const { return fabric_->profile(); }

  uint64_t bytes_per_server() const { return bytes_per_server_; }
  uint32_t num_servers() const { return num_servers_; }
  uint64_t allocated_bytes() const;

  static EndpointId ServerEndpoint(uint32_t server) {
    return kDsmEndpointBase + server;
  }

 private:
  // One attempt of the seqlocked read; the public entry retries injected
  // transients (rdma/retry_policy.h) around it.
  Status ReadSeqlockedOnce(EndpointId from, DsmPtr frame, void* dst,
                           uint64_t len, uint64_t* version_out) const;

  Fabric* const fabric_;
  const uint32_t num_servers_;
  const uint64_t bytes_per_server_;
  // Sized in the constructor and never resized; segment contents are
  // synchronized by the fabric's access disciplines (seqlock framing,
  // remote atomics), not by alloc_mu_.
  // polarlint: unguarded(vector frozen after construction)
  std::vector<std::unique_ptr<char[]>> memory_;
  mutable RankedMutex alloc_mu_{LockRank::kDsm, "dsm.alloc"};
  std::vector<uint64_t> next_free_ GUARDED_BY(alloc_mu_);
};

}  // namespace polarmp

#endif  // POLARMP_DSM_DSM_H_
