// Figure 10 — Alibaba production (trading) workload: throughput timeline
// while nodes are added online.
//
// Paper setup: starts with one node; nodes are added at t=60/120/180 s.
// The workload is well-partitioned at the application level, so each
// addition steps the throughput up near-linearly.
//
// Scaled down: nodes added every `phase_ms` (default 3 s), per-second
// throughput printed as the timeline.

#include <thread>

#include "bench/bench_util.h"
#include "workload/production.h"

using namespace polarmp;         // NOLINT
using namespace polarmp::bench;  // NOLINT

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  const int max_nodes = std::min(4, cfg.max_nodes);
  const uint64_t phase_ms =
      std::getenv("POLARMP_BENCH_PHASE_MS")
          ? std::strtoull(std::getenv("POLARMP_BENCH_PHASE_MS"), nullptr, 10)
          : 3'000;
  PrintFigureHeader("Figure 10",
                    "production mix timeline with online node additions");

  auto db = PolarMpDatabase::Create(MakeBenchClusterOptions(max_nodes), 1);
  if (!db.ok()) {
    std::fprintf(stderr, "cluster: %s\n", db.status().ToString().c_str());
    return 1;
  }
  ProductionOptions wopts;
  wopts.num_nodes = max_nodes;  // tables for every future node pre-created
  wopts.orders_per_node = 4'000;
  ProductionWorkload workload(wopts);
  SetSimTimeScale(0.0);
  if (const Status s = workload.Setup(db->get()); !s.ok()) {
    std::fprintf(stderr, "setup: %s\n", s.ToString().c_str());
    return 1;
  }
  SetSimTimeScale(1.0);

  // Custom driver: workers for node k start once node k exists; the
  // coordinator adds a node at each phase boundary (the paper's t=60/120/
  // 180 s events, scaled).
  std::atomic<bool> stop{false};
  const auto t0 = std::chrono::steady_clock::now();
  const size_t total_seconds = (phase_ms * max_nodes) / 1000 + 2;
  std::vector<std::atomic<uint64_t>> per_second(total_seconds);
  for (auto& s : per_second) s.store(0);

  std::vector<std::thread> workers;
  auto spawn_workers_for = [&](int node_index) {
    for (int t = 0; t < cfg.threads_per_node; ++t) {
      workers.emplace_back([&, node_index, t] {
        Random rng(1000 * node_index + t);
        auto conn = db->get()->Connect(node_index);
        while (!stop.load(std::memory_order_relaxed)) {
          if (!conn.ok()) {
            conn = db->get()->Connect(node_index);
            continue;
          }
          const Status st =
              workload.RunOne(conn->get(), node_index, node_index, &rng);
          if (st.ok()) {
            const size_t sec = static_cast<size_t>(
                std::chrono::duration_cast<std::chrono::seconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            if (sec < total_seconds) per_second[sec].fetch_add(1);
          } else {
            (void)(*conn)->Rollback();
          }
        }
      });
    }
  };

  spawn_workers_for(0);
  for (int added = 1; added < max_nodes; ++added) {
    std::this_thread::sleep_for(std::chrono::milliseconds(phase_ms));
    if (const Status s = db->get()->AddNode(); !s.ok()) {
      std::fprintf(stderr, "add node: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("t=%llus: node %d added\n",
                static_cast<unsigned long long>(added * phase_ms / 1000),
                added + 1);
    spawn_workers_for(added);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(phase_ms));
  stop.store(true);
  for (auto& w : workers) w.join();

  std::printf("\n%-6s %12s\n", "sec", "committed/s");
  for (size_t s = 0; s + 1 < per_second.size(); ++s) {
    std::printf("%-6zu %12llu\n", s,
                static_cast<unsigned long long>(per_second[s].load()));
  }
  std::printf("\npaper reference: step-up at each node addition, "
              "near-linear total gain (well-partitioned workload)\n");
  bench::EmitMetricsSidecar("fig10_production_timeline");
  return 0;
}
