// Figure 9 — TPC-C on a large cluster: tpmC and P95 latency vs nodes.
//
// Paper setup: up to 32 nodes x 32 vCPUs (1024 vCPUs), zero think time,
// ~11% cross-warehouse transactions. Paper shape: near-linear to 24 nodes,
// a mild dip in scalability at 32 (28x at 32 nodes, 9.1M tpmC), with P95
// latency rising only slightly.
//
// Scaled down: 1 worker per node (the host has one core), 2 warehouses per
// node, node sweep 1..32 by powers of two.

#include "bench/bench_util.h"
#include "workload/tpcc.h"

using namespace polarmp;         // NOLINT
using namespace polarmp::bench;  // NOLINT

int main() {
  BenchConfig cfg = BenchConfig::FromEnv();
  if (std::getenv("POLARMP_BENCH_THREADS") == nullptr) {
    cfg.threads_per_node = 1;  // 32 nodes on one host core
  }
  if (std::getenv("POLARMP_BENCH_MAX_NODES") == nullptr) {
    cfg.max_nodes = 32;
  }
  // Stretch simulated time uniformly: the host core caps absolute
  // transactions/second, so a slower per-transaction baseline buys the
  // 32-node point headroom below that ceiling without changing any ratio.
  const double kTimeStretch = 6.0;
  SetSimTimeScale(kTimeStretch);
  cfg.measure_ms = static_cast<uint64_t>(cfg.measure_ms * kTimeStretch);
  cfg.warmup_ms = static_cast<uint64_t>(cfg.warmup_ms * kTimeStretch);
  PrintFigureHeader("Figure 9", "TPC-C tpmC and P95 vs nodes (large cluster)");

  double baseline = 0;
  for (int nodes : cfg.NodeSweep({1, 2, 4, 8, 16, 24, 32})) {
    auto db = PolarMpDatabase::Create(MakeBenchClusterOptions(nodes), nodes);
    if (!db.ok()) {
      std::fprintf(stderr, "cluster: %s\n", db.status().ToString().c_str());
      return 1;
    }
    TpccOptions wopts;
    wopts.num_nodes = nodes;
    wopts.warehouses_per_node = 2;
    wopts.customers_per_district = 50;
    wopts.items = 200;
    TpccWorkload workload(wopts);
    SetSimTimeScale(0.0);
    if (const Status s = workload.Setup(db->get()); !s.ok()) {
      std::fprintf(stderr, "setup: %s\n", s.ToString().c_str());
      return 1;
    }
    SetSimTimeScale(kTimeStretch);
    DriverOptions dopts;
    dopts.num_nodes = nodes;
    dopts.threads_per_node = cfg.threads_per_node;
    dopts.warmup_ms = cfg.warmup_ms;
    dopts.duration_ms = cfg.measure_ms;
    const DriverResult result = RunWorkload(db->get(), &workload, dopts);
    // tpmC = New-Order transactions per minute.
    const double tpmc = result.elapsed_s > 0
                            ? static_cast<double>(workload.new_orders()) /
                                  result.elapsed_s * 60.0
                            : 0;
    if (nodes == 1) baseline = tpmc;
    std::printf("nodes=%-3d %10.0f tpmC   %5.2fx   p95 %6.2f ms   "
                "aborts %4.1f%%\n",
                nodes, tpmc, baseline > 0 ? tpmc / baseline : 1.0,
                static_cast<double>(result.latency.Percentile(95)) / 1e6,
                result.abort_rate() * 100.0);
  }
  std::printf("\npaper reference: ~28x at 32 nodes (9.1M tpmC), near-linear "
              "to 24 nodes, P95 rising slightly\n");
  bench::EmitMetricsSidecar("fig9_tpcc_large");
  return 0;
}
