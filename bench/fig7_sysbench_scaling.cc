// Figure 7 — SysBench scalability on PolarDB-MP.
//
// Paper setup: 8c32g nodes, 40 tables/group, 1M rows/table; read-only,
// read-write and write-only mixes with 0%-100% shared data; left axis
// absolute throughput, right axis throughput relative to one node.
//
// Paper shape to reproduce: read-only scales linearly regardless of
// sharing; read-write/write-only scale near-linearly at 0% shared and
// degrade gracefully as sharing grows — at 8 nodes / 100% shared the paper
// reports 5.4x (read-write) and 3x (write-only) over one node.
//
// Scaled-down defaults (simulator): 4 tables/group, 2k rows, 1.5 s windows.

#include "bench/bench_util.h"
#include "workload/sysbench.h"

using namespace polarmp;         // NOLINT
using namespace polarmp::bench;  // NOLINT

namespace {

const char* MixName(SysbenchOptions::Mix mix) {
  switch (mix) {
    case SysbenchOptions::Mix::kReadOnly: return "read-only";
    case SysbenchOptions::Mix::kReadWrite: return "read-write";
    case SysbenchOptions::Mix::kWriteOnly: return "write-only";
  }
  return "?";
}

double RunPoint(SysbenchOptions::Mix mix, int shared_pct, int nodes,
                const BenchConfig& cfg, double baseline,
                const char* label_prefix) {
  auto db = PolarMpDatabase::Create(MakeBenchClusterOptions(nodes), nodes);
  if (!db.ok()) {
    std::fprintf(stderr, "cluster: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  SysbenchOptions wopts;
  wopts.num_nodes = nodes;
  wopts.mix = mix;
  wopts.shared_pct = shared_pct;
  SysbenchWorkload workload(wopts);
  const DriverResult result = SetupAndRun(db->get(), &workload, nodes, cfg);
  const double rel = baseline > 0 ? result.throughput / baseline : 1.0;
  PrintRow(std::string(label_prefix) + " nodes=" + std::to_string(nodes),
           result.throughput, rel, result.abort_rate(),
           static_cast<double>(result.latency.Percentile(95)) / 1e6);
  return result.throughput;
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintFigureHeader("Figure 7", "SysBench throughput vs nodes and shared-%");

  struct Series {
    SysbenchOptions::Mix mix;
    int shared_pct;
  };
  std::vector<Series> series = {
      {SysbenchOptions::Mix::kReadOnly, 0},
      {SysbenchOptions::Mix::kReadWrite, 0},
      {SysbenchOptions::Mix::kReadWrite, 100},
      {SysbenchOptions::Mix::kWriteOnly, 0},
      {SysbenchOptions::Mix::kWriteOnly, 100},
  };
  if (std::getenv("POLARMP_BENCH_FULL") != nullptr) {
    series = {{SysbenchOptions::Mix::kReadOnly, 0},
              {SysbenchOptions::Mix::kReadWrite, 0},
              {SysbenchOptions::Mix::kReadWrite, 10},
              {SysbenchOptions::Mix::kReadWrite, 50},
              {SysbenchOptions::Mix::kReadWrite, 100},
              {SysbenchOptions::Mix::kWriteOnly, 0},
              {SysbenchOptions::Mix::kWriteOnly, 10},
              {SysbenchOptions::Mix::kWriteOnly, 50},
              {SysbenchOptions::Mix::kWriteOnly, 100}};
  }
  const std::vector<int> node_sweep = cfg.NodeSweep({1, 2, 4, 8});

  for (const Series& s : series) {
    std::printf("--- %s, %d%% shared ---\n", MixName(s.mix), s.shared_pct);
    double baseline = 0;
    for (int nodes : node_sweep) {
      const std::string prefix =
          std::string(MixName(s.mix)) + "/" + std::to_string(s.shared_pct) + "%";
      const double tps =
          RunPoint(s.mix, s.shared_pct, nodes, cfg, baseline, prefix.c_str());
      if (nodes == 1) baseline = tps;
    }
  }
  std::printf("\npaper reference @8 nodes: read-only ~8x; read-write 100%% "
              "shared ~5.4x; write-only 100%% shared ~3x\n");
  bench::EmitMetricsSidecar("fig7_sysbench_scaling");
  return 0;
}
