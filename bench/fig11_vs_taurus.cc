// Figure 11 — PolarDB-MP vs Taurus-MM at high sharing.
//
// Paper setup (mirroring Taurus-MM's evaluation): SysBench read-write with
// 50% shared data and write-only with 30% shared, 1/2/4/8 nodes. Paper
// results: comparable single-node throughput; at 8 nodes PolarDB-MP is
// 3.17x (read-write) / 4.02x (write-only) Taurus-MM's throughput, with
// scalability 5.64 vs 1.88 (read-write) and 4.62 vs 1.5 (write-only).
//
// Both systems here pay the same latency profile; the difference is pure
// architecture — Taurus-MM refreshes stale pages from the page/log stores
// with log replay instead of RDMA-fetching them from disaggregated memory.

#include "baselines/taurus_mm.h"
#include "bench/bench_util.h"
#include "workload/sysbench.h"

using namespace polarmp;         // NOLINT
using namespace polarmp::bench;  // NOLINT

namespace {

struct SeriesResult {
  std::vector<double> tps;
};

SeriesResult RunSeries(bool taurus, SysbenchOptions::Mix mix, int shared_pct,
                       const std::vector<int>& nodes,
                       const BenchConfig& cfg) {
  SeriesResult out;
  for (int n : nodes) {
    std::unique_ptr<Database> db;
    if (taurus) {
      TaurusMmDatabase::Options topts;
      topts.profile = BenchLatencyProfile();
      topts.nodes = n;
      db = std::make_unique<TaurusMmDatabase>(topts);
    } else {
      auto polar = PolarMpDatabase::Create(MakeBenchClusterOptions(n), n);
      if (!polar.ok()) {
        std::fprintf(stderr, "cluster: %s\n",
                     polar.status().ToString().c_str());
        std::exit(1);
      }
      db = std::move(polar).value();
    }
    SysbenchOptions wopts;
    wopts.num_nodes = n;
    wopts.mix = mix;
    wopts.shared_pct = shared_pct;
    SysbenchWorkload workload(wopts);
    const DriverResult result = SetupAndRun(db.get(), &workload, n, cfg);
    out.tps.push_back(result.throughput);
    PrintRow(std::string(db->name()) + " nodes=" + std::to_string(n),
             result.throughput,
             out.tps.front() > 0 ? result.throughput / out.tps.front() : 1.0,
             result.abort_rate(),
             static_cast<double>(result.latency.Percentile(95)) / 1e6);
  }
  return out;
}

void Compare(const char* title, SysbenchOptions::Mix mix, int shared_pct,
             const BenchConfig& cfg) {
  std::printf("--- %s ---\n", title);
  const std::vector<int> nodes = cfg.NodeSweep({1, 2, 4, 8});
  const SeriesResult polar = RunSeries(false, mix, shared_pct, nodes, cfg);
  const SeriesResult taurus = RunSeries(true, mix, shared_pct, nodes, cfg);
  if (polar.tps.size() == nodes.size() && taurus.tps.back() > 0) {
    std::printf("PolarDB-MP / Taurus-MM at %d nodes: %.2fx\n", nodes.back(),
                polar.tps.back() / taurus.tps.back());
  }
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintFigureHeader("Figure 11", "PolarDB-MP vs Taurus-MM, high sharing");
  Compare("read-write, 50% shared", SysbenchOptions::Mix::kReadWrite, 50, cfg);
  Compare("write-only, 30% shared", SysbenchOptions::Mix::kWriteOnly, 30, cfg);
  std::printf("\npaper reference @8 nodes: Polar 3.17x Taurus (read-write), "
              "4.02x (write-only); scalability 5.64 vs 1.88 and 4.62 vs 1.5\n");
  bench::EmitMetricsSidecar("fig11_vs_taurus");
  return 0;
}
