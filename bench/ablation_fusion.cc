// Ablations of the paper's design choices (no figure; backs §4.1/§4.3.1):
//
//   1. Lazy PLock releasing (§4.3.1) vs eager release-on-unpin: lazy
//      retention converts repeat same-node page accesses into local grants,
//      cutting Lock Fusion RPCs.
//   2. Linear Lamport Timestamp (§4.1) vs fetching a fresh read timestamp
//      from the TSO for every statement: LLT coalesces concurrent fetches.
//
// Both run SysBench read-write at 30% shared data on 2 nodes, reporting
// throughput and the relevant fusion-traffic counters.

#include "bench/bench_util.h"
#include "workload/sysbench.h"

using namespace polarmp;         // NOLINT
using namespace polarmp::bench;  // NOLINT

namespace {

struct AblationResult {
  double tps = 0;
  uint64_t fusion_acquires = 0;
  uint64_t local_grants = 0;
  uint64_t tso_fetches = 0;
  uint64_t tso_reuses = 0;
};

AblationResult RunVariant(bool lazy_plock, bool linear_lamport,
                          const BenchConfig& cfg) {
  constexpr int kNodes = 2;
  ClusterOptions options = MakeBenchClusterOptions(kNodes);
  options.node.lazy_plock_release = lazy_plock;
  options.node.linear_lamport = linear_lamport;
  auto db = PolarMpDatabase::Create(options, kNodes);
  if (!db.ok()) std::exit(1);

  SysbenchOptions wopts;
  wopts.num_nodes = kNodes;
  wopts.mix = SysbenchOptions::Mix::kReadWrite;
  wopts.shared_pct = 30;
  SysbenchWorkload workload(wopts);
  const DriverResult result = SetupAndRun(db->get(), &workload, kNodes, cfg);

  AblationResult out;
  out.tps = result.throughput;
  for (DbNode* node : (*db)->cluster()->live_nodes()) {
    out.fusion_acquires += node->plock_manager()->fusion_acquires();
    out.local_grants += node->plock_manager()->local_grants();
    out.tso_fetches += node->tso_client()->fetches();
    out.tso_reuses += node->tso_client()->reuses();
  }
  return out;
}

void Print(const char* label, const AblationResult& r) {
  std::printf("%-28s %9.0f tps   plock rpc %8llu   local grants %8llu   "
              "tso fetch %8llu   reuse %8llu\n",
              label, r.tps, static_cast<unsigned long long>(r.fusion_acquires),
              static_cast<unsigned long long>(r.local_grants),
              static_cast<unsigned long long>(r.tso_fetches),
              static_cast<unsigned long long>(r.tso_reuses));
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintFigureHeader("Ablation", "lazy PLock release and Linear Lamport");
  Print("baseline (both on)", RunVariant(true, true, cfg));
  Print("eager PLock release", RunVariant(false, true, cfg));
  Print("no Linear Lamport", RunVariant(true, false, cfg));
  Print("both off", RunVariant(false, false, cfg));
  std::printf("\nexpectation: eager release multiplies PLock RPCs; disabling "
              "LLT multiplies TSO fetches; both cost throughput\n");
  bench::EmitMetricsSidecar("ablation_fusion");
  return 0;
}
